// Package hwdp is a simulation library reproducing "A Case for
// Hardware-Based Demand Paging" (ISCA 2020). It models a complete machine —
// CPU cores with SMT, MMU/TLB, x86-64-style page tables, an NVMe stack,
// ultra-low-latency SSDs, and an operating system with a page cache and
// demand paging — plus the paper's two architectural extensions: the
// LBA-augmented page table and the Storage Management Unit (SMU).
//
// The same workload can run under three demand-paging schemes:
//
//   - OSDP: the conventional kernel page-fault path (exception, block
//     layer, context switch, interrupt).
//   - SWOnly: LBA-augmented PTEs with a software-emulated SMU (the paper's
//     Fig. 17 baseline).
//   - HWDP: full hardware handling — the pipeline stalls while the SMU
//     fetches the page directly over NVMe.
//
// Quickstart:
//
//	sys := hwdp.New(hwdp.Config{Scheme: hwdp.HWDP})
//	lat, _ := sys.ColdPageLatency()
//	fmt.Println("one hardware-handled page miss:", lat)
//
// The heavy lifting lives in the internal packages; this package offers a
// small synchronous API for experiments and examples, advancing the
// discrete-event simulation under the hood. For full control (custom
// workloads, async operation, per-component stats) use the internal
// packages directly; cmd/hwdpbench regenerates every figure of the paper.
package hwdp

import (
	"fmt"
	"io"

	"hwdp/internal/check"
	"hwdp/internal/core"
	"hwdp/internal/fault"
	"hwdp/internal/fs"
	"hwdp/internal/kernel"
	"hwdp/internal/kvs"
	"hwdp/internal/metrics"
	"hwdp/internal/mmu"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
	"hwdp/internal/smu"
	"hwdp/internal/ssd"
	"hwdp/internal/trace"
	"hwdp/internal/workload"
)

// Scheme selects the demand-paging implementation.
type Scheme int

// Schemes.
const (
	OSDP Scheme = iota
	SWOnly
	HWDP
)

// String returns the scheme's display name (OSDP, SW-only, HWDP).
func (s Scheme) String() string { return s.kernel().String() }

func (s Scheme) kernel() kernel.Scheme {
	switch s {
	case OSDP:
		return kernel.OSDP
	case SWOnly:
		return kernel.SWDP
	default:
		return kernel.HWDP
	}
}

// Device selects the storage latency profile.
type Device int

// Devices (Fig. 17's three generations).
const (
	ZSSD Device = iota
	OptaneSSD
	OptaneDCPMM
)

func (d Device) profile() ssd.Profile {
	switch d {
	case OptaneSSD:
		return ssd.OptaneSSD
	case OptaneDCPMM:
		return ssd.OptaneDCPMM
	default:
		return ssd.ZSSD
	}
}

// Duration is virtual time in picoseconds (re-exported from the simulator).
type Duration = sim.Time

// Config describes a machine. Zero values pick the evaluation defaults
// (8 cores × 2 SMT at 2.8 GHz, 64 MiB memory, Z-SSD).
type Config struct {
	Scheme   Scheme
	Device   Device
	MemoryMB int
	Cores    int
	Seed     uint64
	// Deterministic disables device service-time jitter (exact latencies).
	Deterministic bool
	// PrefetchDegree enables the SMU's sequential prefetcher (Section V
	// future work): on a miss, the next N LBA-augmented pages are fetched
	// speculatively.
	PrefetchDegree int
	// PerCoreFreeQueues gives the SMU one free page queue per logical
	// core (Section V's per-thread memory-policy option).
	PerCoreFreeQueues bool
	// LogStructuredFS makes the file system remap blocks on write
	// (CoW/LFS), exercising the LBA-patching control plane.
	LogStructuredFS bool
	// StallTimeoutUS bounds HWDP pipeline stalls: past it, a timeout
	// exception context-switches the thread away (Section V, long-latency
	// I/O). Zero disables.
	StallTimeoutUS int
	// Faults attaches a deterministic fault injector to every device.
	// Injection draws come from a PRNG stream forked off Seed, so two runs
	// with the same Config produce bit-identical outcomes, faults included.
	Faults []FaultRule
	// SMUCmdTimeoutUS arms the SMU's per-command completion timeout (needed
	// to recover from dropped commands on the hardware path). Zero keeps
	// the timeout disabled.
	SMUCmdTimeoutUS int
	// Trace enables the per-miss observability tracer: every page miss is
	// followed through MMU → SMU → NVMe → SSD and the kernel exception
	// path, and the System exposes WriteTrace (Chrome trace JSON),
	// BreakdownReport (critical-path attribution) and FlightDump
	// (flight-recorder postmortems). Off by default; when off, the miss
	// path does no tracing work and performs no allocations for it.
	Trace bool
	// TraceRing sets the flight-recorder depth in misses (0 picks the
	// default of 64). Only meaningful with Trace enabled.
	TraceRing int
	// Lanes shards the simulation engine for parallel-in-run execution
	// (see docs/ENGINE.md): 0 or 1 keeps the zero-overhead sequential
	// engine; N >= 2 runs each device domain on its own lane. Fixed-seed
	// output is byte-identical across lane counts. Incompatible features
	// (Faults, Trace) silently fall back to the sequential engine.
	Lanes int
}

// FaultKind classifies an injected device fault.
type FaultKind int

// Fault kinds.
const (
	// FaultTransient completes the command with a retryable error status;
	// a resubmission usually succeeds.
	FaultTransient FaultKind = iota + 1
	// FaultUECC is an unrecoverable media error: retries never help, and a
	// faulting read ends in an OS-delivered SIGBUS kill.
	FaultUECC
	// FaultDrop loses the command inside the device — no completion, no
	// DMA; only host timeouts recover.
	FaultDrop
	// FaultSpike multiplies the command's service time (latency outlier).
	FaultSpike
)

// FaultRule describes one fault-injection scenario.
type FaultRule struct {
	Kind FaultKind
	// Prob is the per-matching-command injection probability in [0, 1].
	Prob float64
	// LBAStart/LBAEnd restrict the rule to [LBAStart, LBAEnd); both zero
	// means all LBAs.
	LBAStart, LBAEnd uint64
	// ReadsOnly / WritesOnly restrict the rule to one opcode class.
	ReadsOnly, WritesOnly bool
	// SMUPathOnly restricts the rule to the SMU's isolated queue,
	// exercising hardware-path degradation without touching OS I/O.
	SMUPathOnly bool
	// Burst injects on the next Burst-1 matching commands after each
	// probability hit (clustered errors).
	Burst int
	// SpikeFactor is the service-time multiplier for FaultSpike (default
	// 10x when zero).
	SpikeFactor float64
	// MaxInjections caps the rule's total injections (0 = unlimited).
	MaxInjections uint64
}

func (r FaultRule) rule() fault.Rule {
	out := fault.Rule{
		Kind:          fault.Kind(r.Kind),
		Prob:          r.Prob,
		LBAStart:      r.LBAStart,
		LBAEnd:        r.LBAEnd,
		ReadsOnly:     r.ReadsOnly,
		WritesOnly:    r.WritesOnly,
		Burst:         r.Burst,
		SpikeFactor:   r.SpikeFactor,
		MaxInjections: r.MaxInjections,
	}
	if r.SMUPathOnly {
		out.Queue = core.SMUQueueID
	}
	return out
}

// System is one simulated machine plus its primary process.
type System struct {
	sys *core.System
}

// New builds and boots a machine.
func New(cfg Config) *System {
	c := core.DefaultConfig(cfg.Scheme.kernel())
	if cfg.MemoryMB > 0 {
		c.MemoryBytes = uint64(cfg.MemoryMB) << 20
	} else {
		c.MemoryBytes = 64 << 20
	}
	if cfg.Cores > 0 {
		c.Cores = cfg.Cores
	}
	if cfg.Seed != 0 {
		c.Seed = cfg.Seed
	}
	c.Device = cfg.Device.profile()
	c.DeviceJitter = !cfg.Deterministic
	c.PrefetchDegree = cfg.PrefetchDegree
	c.PerCoreFreeQueues = cfg.PerCoreFreeQueues
	c.LogStructuredFS = cfg.LogStructuredFS
	c.Kernel.StallTimeout = sim.Time(cfg.StallTimeoutUS) * sim.Microsecond
	for _, r := range cfg.Faults {
		c.FaultRules = append(c.FaultRules, r.rule())
	}
	if cfg.SMUCmdTimeoutUS > 0 {
		p := smu.DefaultRetryPolicy()
		p.CmdTimeout = sim.Time(cfg.SMUCmdTimeoutUS) * sim.Microsecond
		c.SMURetry = &p
	}
	c.TraceEnabled = cfg.Trace
	c.TraceRing = cfg.TraceRing
	c.Lanes = cfg.Lanes
	return &System{sys: c.Build()}
}

// Raw exposes the underlying machine for advanced use.
func (s *System) Raw() *core.System { return s.sys }

// Now returns the current virtual time.
func (s *System) Now() Duration { return s.sys.Eng.Now() }

// RunFor advances virtual time (background kernel threads keep working).
func (s *System) RunFor(d Duration) { s.sys.RunFor(d) }

// await steps the simulation until *done is true.
func (s *System) await(done *bool) {
	s.sys.RunWhile(func() bool { return !*done })
	if !*done {
		panic("hwdp: operation never completed (event queue drained)")
	}
}

// ColdPageLatency maps a fresh file and measures one cold page miss
// end-to-end under the configured scheme.
func (s *System) ColdPageLatency() (Duration, error) {
	name := fmt.Sprintf("probe-%d", s.sys.Eng.Fired())
	va, _, err := s.sys.MapFile(name, 16, fs.SeededInit(1), s.sys.FastFlags())
	if err != nil {
		return 0, err
	}
	lat, _ := s.sys.MeasureSingleFault(s.sys.WorkloadThread(0), va)
	return lat, nil
}

// FIOResult summarizes a FIO run.
type FIOResult struct {
	Ops          uint64
	Throughput   float64  // ops per virtual second
	MeanLatency  Duration // per 4 KiB read
	P99Latency   Duration
	HWMisses     uint64
	OSFaults     uint64
	KernelInstr  uint64 // on the workload threads
	UserInstr    uint64
	UserIPC      float64
	StallTime    Duration
	ContextSwaps uint64
}

// RunFIO runs the FIO random-read microbenchmark: `threads` threads, each
// performing `opsPerThread` 4 KiB reads over a file `filePages` long.
func (s *System) RunFIO(threads, opsPerThread, filePages int) (FIOResult, error) {
	name := fmt.Sprintf("fio-%d", s.sys.Eng.Fired())
	fio, err := workload.SetupFIO(s.sys, name, filePages, s.sys.FastFlags())
	if err != nil {
		return FIOResult{}, err
	}
	ths := make([]*kernel.Thread, threads)
	for i := range ths {
		ths[i] = s.sys.WorkloadThread(i)
	}
	rs := workload.Run(s.sys, ths, fio, workload.RunOptions{OpsPerThread: opsPerThread})
	m := workload.Merge(rs)
	var res FIOResult
	res.Ops = m.Ops
	res.Throughput = m.Throughput()
	res.MeanLatency = m.MeanLatency()
	res.P99Latency = Duration(m.Lat.Percentile(99))
	mmuSt := s.sys.MMU.Stats()
	res.HWMisses = mmuSt.HWMisses
	res.OSFaults = mmuSt.OSFaults
	for _, th := range ths {
		res.KernelInstr += th.HW.KernelInstr
		res.UserInstr += th.HW.UserInstr
		res.StallTime += th.HW.StallTime
		res.ContextSwaps += th.HW.ContextSwaps
	}
	if len(ths) > 0 {
		res.UserIPC = ths[0].HW.Counters.UserIPC()
	}
	return res, nil
}

// Store is a synchronous view of the mini NoSQL record store.
type Store struct {
	s  *System
	st *kvs.Store
	th *kernel.Thread
	wb []byte
}

// CreateStore builds a record store of `keys` 4 KiB records, mapped with
// the scheme's mmap flags (fast mmap under HWDP/SW-only).
func (s *System) CreateStore(name string, keys uint64) (*Store, error) {
	st, err := kvs.Create(s.sys.K, s.sys.FS, s.sys.Proc, name, keys, 0, 0, s.sys.FastFlags())
	if err != nil {
		return nil, err
	}
	return &Store{s: s, st: st, th: s.sys.WorkloadThread(0), wb: make([]byte, kvs.RecordSize)}, nil
}

// Keys returns the number of records.
func (st *Store) Keys() uint64 { return st.st.Keys() }

// Get reads and validates one record, returning its payload bytes and
// version.
func (st *Store) Get(key uint64) (payload []byte, version uint64, err error) {
	done := false
	var gv uint64
	var ge error
	st.st.Get(st.th, key, st.wb, func(v uint64, e error) { gv, ge, done = v, e, true })
	st.s.await(&done)
	out := make([]byte, kvs.PayloadSize)
	copy(out, st.wb[kvs.RecordSize-kvs.PayloadSize:])
	return out, gv, ge
}

// Put writes one record at the given version.
func (st *Store) Put(key, version uint64) error {
	done := false
	var pe error
	st.st.Put(st.th, key, version, st.wb, func(e error) { pe, done = e, true })
	st.s.await(&done)
	return pe
}

// ReadModifyWrite bumps a record's version atomically from the client's
// point of view.
func (st *Store) ReadModifyWrite(key uint64) error {
	done := false
	var pe error
	st.st.ReadModifyWrite(st.th, key, st.wb, func(e error) { pe, done = e, true })
	st.s.await(&done)
	return pe
}

// YCSBResult summarizes a YCSB run.
type YCSBResult struct {
	Ops         uint64
	Throughput  float64
	MeanLatency Duration
	UserIPC     float64
	Errors      uint64
}

// RunYCSB runs a YCSB core workload (variant 'A'..'F') over a fresh store
// sized to `keys` records.
func (s *System) RunYCSB(variant byte, threads, opsPerThread int, keys uint64) (YCSBResult, error) {
	name := fmt.Sprintf("ycsb-%c-%d", variant, s.sys.Eng.Fired())
	st, err := kvs.Create(s.sys.K, s.sys.FS, s.sys.Proc, name, keys, 0, 0, s.sys.FastFlags())
	if err != nil {
		return YCSBResult{}, err
	}
	w, err := workload.NewYCSB(s.sys, st, variant)
	if err != nil {
		return YCSBResult{}, err
	}
	ths := make([]*kernel.Thread, threads)
	for i := range ths {
		ths[i] = s.sys.WorkloadThread(i)
	}
	rs := workload.Run(s.sys, ths, w, workload.RunOptions{OpsPerThread: opsPerThread})
	m := workload.Merge(rs)
	return YCSBResult{
		Ops:         m.Ops,
		Throughput:  m.Throughput(),
		MeanLatency: m.MeanLatency(),
		UserIPC:     ths[0].HW.Counters.UserIPC(),
		Errors:      m.Errors,
	}, nil
}

// MmapAnon maps anonymous (heap-style) memory. First touches are handled
// as zero-fills — under HWDP without any I/O, via the reserved first-touch
// LBA constant — and dirty pages evicted under pressure swap out and back
// in through the configured demand-paging scheme. It returns an opaque
// handle usable with Touch/Read/Write-style access through Raw().
func (s *System) MmapAnon(pages int) (AnonRegion, error) {
	va, err := s.sys.K.MmapAnon(s.sys.Proc, 0, 0, pages,
		anonProt(), s.sys.Cfg.Scheme != kernelOSDP())
	if err != nil {
		return AnonRegion{}, err
	}
	return AnonRegion{s: s, base: va, pages: pages,
		th: s.sys.WorkloadThread(0)}, nil
}

// AnonRegion is a mapped anonymous memory region with synchronous access
// helpers.
type AnonRegion struct {
	s     *System
	base  pagetable.VAddr
	pages int
	th    *kernel.Thread
}

// Pages returns the region length in 4 KiB pages.
func (a AnonRegion) Pages() int { return a.pages }

// Write stores data at byte offset off.
func (a AnonRegion) Write(off int, data []byte) error {
	if off < 0 || off+len(data) > a.pages*4096 {
		return fmt.Errorf("hwdp: write outside region")
	}
	done := false
	a.s.sys.K.Store(a.th, a.base+pagetable.VAddr(off), data, func(mmu.Result) { done = true })
	a.s.await(&done)
	return nil
}

// Read loads len(buf) bytes at byte offset off.
func (a AnonRegion) Read(off int, buf []byte) error {
	if off < 0 || off+len(buf) > a.pages*4096 {
		return fmt.Errorf("hwdp: read outside region")
	}
	done := false
	a.s.sys.K.Load(a.th, a.base+pagetable.VAddr(off), buf, func(mmu.Result) { done = true })
	a.s.await(&done)
	return nil
}

// Stats is a machine-wide counter snapshot.
type Stats struct {
	HWMisses       uint64
	OSFaults       uint64
	MajorFaults    uint64
	MinorFaults    uint64
	HWBounceFaults uint64
	Evictions      uint64
	Writebacks     uint64
	KptedSyncs     uint64
	KpooldFrames   uint64
	DeviceReads    uint64
	DeviceWrites   uint64
	PMSHRCoalesced uint64
	AnonZeroFills  uint64
	Prefetches     uint64
	StallTimeouts  uint64
}

// Stats snapshots the machine counters.
func (s *System) Stats() Stats {
	ks := s.sys.K.Stats()
	ms := s.sys.MMU.Stats()
	ds := s.sys.Dev.Stats()
	ss := s.sys.SMU.Stats()
	return Stats{
		HWMisses:       ms.HWMisses,
		OSFaults:       ms.OSFaults,
		MajorFaults:    ks.MajorFaults,
		MinorFaults:    ks.MinorFaults,
		HWBounceFaults: ks.HWBounceFaults,
		Evictions:      ks.Evictions,
		Writebacks:     ks.Writebacks,
		KptedSyncs:     ks.KptedSyncs,
		KpooldFrames:   ks.KpooldFrames,
		DeviceReads:    ds.Reads,
		DeviceWrites:   ds.Writes,
		PMSHRCoalesced: ss.Coalesced,
		AnonZeroFills:  ss.AnonZeroFill,
		Prefetches:     ms.Prefetches,
		StallTimeouts:  ks.StallTimeouts,
	}
}

// Recovery reports the per-layer error-recovery counters: injected faults
// at the device boundary, SMU retries/timeouts, block-layer retries, and
// OS-level degradation (bounced faults, SIGBUS kills, abandoned
// writebacks). All zero on a fault-free run.
func (s *System) Recovery() metrics.Recovery { return s.sys.Recovery() }

// Tracer exposes the observability tracer, nil unless Config.Trace was
// set. Most callers want WriteTrace, BreakdownReport or FlightDump
// instead; the tracer itself offers the raw per-miss records.
func (s *System) Tracer() *trace.Tracer { return s.sys.Trace }

// WriteTrace writes every traced miss as Chrome trace_event JSON,
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
// The output is byte-deterministic for a given seed and config. It
// returns an error if tracing is disabled or the writer fails.
func (s *System) WriteTrace(w io.Writer) error {
	if s.sys.Trace == nil {
		return fmt.Errorf("hwdp: tracing disabled (set Config.Trace)")
	}
	return trace.WriteChrome(w, trace.Process{Name: s.sys.Cfg.Scheme.String(), T: s.sys.Trace})
}

// BreakdownReport renders the critical-path attribution tables: per-layer
// and per-phase time-in-layer statistics (count, mean, p50, p99) over all
// traced misses, plus a per-cause census. Returns a note when tracing is
// disabled.
func (s *System) BreakdownReport() string { return s.sys.Trace.Report() }

// FlightDump renders the flight recorder — the last traced misses, span
// by span — plus any postmortems captured at SIGBUS kills. Returns a note
// when tracing is disabled.
func (s *System) FlightDump() string { return s.sys.Trace.FlightDump() }

// CheckInvariants validates the machine's structural invariants (frame
// accounting, no page aliasing, Table I discipline, PMSHR bounds) and
// returns human-readable violations — empty on a healthy machine.
func (s *System) CheckInvariants() []string {
	var out []string
	for _, v := range check.System(s.sys) {
		out = append(out, v.String())
	}
	return out
}

func anonProt() pagetable.Prot { return pagetable.Prot{Write: true, User: true} }

func kernelOSDP() kernel.Scheme { return kernel.OSDP }
