package hwdp_test

import (
	"fmt"

	"hwdp"
)

// The simulation is fully deterministic, so these examples assert exact
// latencies: one cold 4 KiB page miss on the Z-SSD profile costs 19.72 µs
// through the OS fault path (doorbell and interrupt wire latencies
// included) and 11.05 µs through the SMU.

func Example_schemes() {
	for _, scheme := range []hwdp.Scheme{hwdp.OSDP, hwdp.SWOnly, hwdp.HWDP} {
		sys := hwdp.New(hwdp.Config{Scheme: scheme, MemoryMB: 16, Deterministic: true})
		lat, err := sys.ColdPageLatency()
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8v %v\n", scheme, lat)
	}
	// Output:
	// OSDP     19.72us
	// SW-only  13.00us
	// HWDP     11.05us
}

func Example_devices() {
	for _, dev := range []hwdp.Device{hwdp.ZSSD, hwdp.OptaneSSD, hwdp.OptaneDCPMM} {
		sys := hwdp.New(hwdp.Config{
			Scheme: hwdp.HWDP, Device: dev, MemoryMB: 16, Deterministic: true,
		})
		lat, err := sys.ColdPageLatency()
		if err != nil {
			panic(err)
		}
		fmt.Println(lat)
	}
	// Output:
	// 11.05us
	// 6.65us
	// 2.25us
}

func ExampleSystem_CreateStore() {
	sys := hwdp.New(hwdp.Config{Scheme: hwdp.HWDP, MemoryMB: 16, Deterministic: true})
	db, err := sys.CreateStore("records", 1024)
	if err != nil {
		panic(err)
	}
	if err := db.Put(7, 3); err != nil {
		panic(err)
	}
	_, version, err := db.Get(7)
	if err != nil {
		panic(err)
	}
	fmt.Println("version:", version)
	// Output:
	// version: 3
}

func ExampleSystem_MmapAnon() {
	sys := hwdp.New(hwdp.Config{Scheme: hwdp.HWDP, MemoryMB: 16, Deterministic: true})
	heap, err := sys.MmapAnon(32)
	if err != nil {
		panic(err)
	}
	if err := heap.Write(12345, []byte("hello")); err != nil {
		panic(err)
	}
	buf := make([]byte, 5)
	if err := heap.Read(12345, buf); err != nil {
		panic(err)
	}
	fmt.Printf("%s, zero-fills: %d > 0\n", buf, min1(sys.Stats().AnonZeroFills))
	// Output:
	// hello, zero-fills: 1 > 0
}

func min1(v uint64) uint64 {
	if v > 1 {
		return 1
	}
	return v
}
