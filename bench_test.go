// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each bench runs the corresponding experiment and reports the headline
// quantities as custom metrics (so `go test -bench` output is a compact
// paper-vs-measured summary). Use -short for reduced op counts.
//
//	go test -bench=. -benchmem
package hwdp_test

import (
	"testing"

	"hwdp/internal/area"
	"hwdp/internal/figures"
)

func params(b *testing.B) figures.Params {
	b.Helper()
	if testing.Short() {
		return figures.Quick()
	}
	return figures.Default()
}

func BenchmarkFig01_YCSBBreakdownVsRatio(b *testing.B) {
	p := params(b)
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig1(p)
		if err != nil {
			b.Fatal(err)
		}
		last := r.Rows[len(r.Rows)-1]
		b.ReportMetric(100*last.PageFaultFrac, "fault%@4:1")
		b.ReportMetric(100*r.Rows[0].PageFaultFrac, "fault%@0.5:1")
	}
}

func BenchmarkFig03_SingleFaultBreakdown(b *testing.B) {
	p := params(b)
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig3(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.OverheadFrac, "overhead%of-device(paper:76.3)")
		b.ReportMetric(r.Measured.Micros(), "fault-us")
	}
}

func BenchmarkFig04_FaultImpactOnYCSB(b *testing.B) {
	p := params(b)
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig4(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ThroughputNorm, "osdp/ideal-throughput(paper:<0.5)")
		b.ReportMetric(r.IPCNorm, "osdp/ideal-ipc")
	}
}

func BenchmarkFig11_BeforeAfterDevice(b *testing.B) {
	p := params(b)
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig11(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.BeforeReduction.Micros(), "before-reduction-us(paper:2.38)")
		b.ReportMetric(r.AfterReduction.Micros(), "after-reduction-us(paper:6.16)")
	}
}

func BenchmarkFig12_FIOLatency(b *testing.B) {
	p := params(b)
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig12(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Rows[0].Reduction, "reduction%@1T(paper:37.0)")
		b.ReportMetric(100*r.Rows[3].Reduction, "reduction%@8T(paper:27.0)")
	}
}

func BenchmarkFig13_ThroughputGains(b *testing.B) {
	p := params(b)
	threads := []int{1, 2, 4, 8}
	if testing.Short() {
		threads = []int{1, 4}
	}
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig13(p, threads)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Gain("FIO", 1), "fio-gain%@1T(paper:57.1)")
		b.ReportMetric(100*r.Gain("YCSB-C", 1), "ycsbC-gain%@1T(paper:27.3)")
		b.ReportMetric(100*r.Gain("YCSB-A", 4), "ycsbA-gain%@4T")
	}
}

func BenchmarkFig14_UserIPC(b *testing.B) {
	p := params(b)
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig14(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.IPCGain, "ipc-gain%(paper:7.0)")
		b.ReportMetric(100*r.HWHandledFrac, "hw-handled%(paper:99.9)")
	}
}

func BenchmarkFig15_KernelInstructions(b *testing.B) {
	p := params(b)
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig15(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.InstrReduction, "kinstr-reduction%(paper:62.6)")
	}
}

func BenchmarkFig16_SMTCoScheduling(b *testing.B) {
	p := params(b)
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig16(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].FIOGain, "fio-speedup-x(paper:>=1.72)")
		b.ReportMetric(100*r.Rows[0].SPECIPCGain, "spec-ipc-gain%")
	}
}

func BenchmarkFig17_SWOnlyVsHardware(b *testing.B) {
	p := params(b)
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig17(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Rows[0].Reduction, "zssd-reduction%(paper:14)")
		b.ReportMetric(100*r.Rows[2].Reduction, "pmm-reduction%(paper:44)")
	}
}

func BenchmarkKpooldAblation(b *testing.B) {
	p := params(b)
	for i := 0; i < b.N; i++ {
		r, err := figures.KpooldAblation(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Reduction, "refill-fault-reduction%(paper:44-78)")
	}
}

func BenchmarkAreaModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := area.SMUReport(22)
		b.ReportMetric(r.Total, "smu-mm2(paper:0.014)")
		b.ReportMetric(100*r.DieFraction, "die%(paper:0.004)")
	}
}

func BenchmarkAblationPMSHR(b *testing.B) {
	p := params(b)
	for i := 0; i < b.N; i++ {
		r, err := figures.AblationPMSHR(p)
		if err != nil {
			b.Fatal(err)
		}
		small := r.Rows[0].Throughput
		big := r.Rows[4].Throughput
		b.ReportMetric(big/small, "speedup-2to32-entries")
		b.ReportMetric(float64(r.Rows[0].Backlogged), "backlogged@2")
	}
}

func BenchmarkAblationDeviceSweep(b *testing.B) {
	p := params(b)
	for i := 0; i < b.N; i++ {
		r, err := figures.AblationDeviceSweep(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Rows[0].Reduction, "zssd-fault-reduction%")
		b.ReportMetric(100*r.Rows[2].Reduction, "pmm-fault-reduction%")
	}
}

// TestBenchmarkedFiguresAreSane asserts the correctness of what the figure
// benchmarks above report: the static Fig. 2 table renders every era, and a
// quick Fig. 3 run yields a positive measured fault latency with a hardware
// overhead fraction strictly inside (0, 1) — the quantities the benchmarks
// publish as metrics.
func TestBenchmarkedFiguresAreSane(t *testing.T) {
	f2 := figures.Fig2()
	if len(f2.Rows) == 0 || f2.String() == "" {
		t.Fatal("Fig2 produced no rows")
	}
	r, err := figures.Fig3(figures.Quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.Measured <= 0 {
		t.Fatalf("Fig3 measured fault latency %v, want > 0", r.Measured)
	}
	if r.OverheadFrac <= 0 || r.OverheadFrac >= 1 {
		t.Fatalf("Fig3 overhead fraction %v, want in (0, 1)", r.OverheadFrac)
	}
	if rep := area.SMUReport(22); rep.Total <= 0 {
		t.Fatalf("area model reports %v mm2, want > 0", rep.Total)
	}
}
