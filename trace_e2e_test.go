package hwdp

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// tracedRun executes a fixed FIO workload with tracing on and returns the
// Chrome trace bytes plus the rendered breakdown report.
func tracedRun(t *testing.T, cfg Config) ([]byte, string) {
	t.Helper()
	cfg.Trace = true
	sys := New(cfg)
	if _, err := sys.RunFIO(2, 250, 4096); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), sys.BreakdownReport()
}

// TestTraceDeterministic pins the central observability contract: same
// seed and config produce byte-identical trace JSON and breakdown report
// across independent runs, for every scheme.
func TestTraceDeterministic(t *testing.T) {
	for _, s := range []Scheme{OSDP, SWOnly, HWDP} {
		j1, r1 := tracedRun(t, det(s))
		j2, r2 := tracedRun(t, det(s))
		if !bytes.Equal(j1, j2) {
			t.Fatalf("%v: trace JSON diverged across identical runs", s)
		}
		if r1 != r2 {
			t.Fatalf("%v: breakdown report diverged:\n%s\n---\n%s", s, r1, r2)
		}
	}
}

// TestTraceDeterministicUnderFaultStorm repeats the determinism check
// under the chaos mix from the fault-injection suite: injected device
// errors, retries, timeouts and OS fallbacks must all trace identically
// given the same seed.
func TestTraceDeterministicUnderFaultStorm(t *testing.T) {
	storm := func() Config {
		cfg := det(HWDP)
		cfg.Faults = []FaultRule{
			{Kind: FaultTransient, Prob: 0.1},
			{Kind: FaultDrop, Prob: 0.01, SMUPathOnly: true},
			{Kind: FaultSpike, Prob: 0.05},
		}
		cfg.SMUCmdTimeoutUS = 500
		return cfg
	}
	j1, r1 := tracedRun(t, storm())
	j2, r2 := tracedRun(t, storm())
	if !bytes.Equal(j1, j2) {
		t.Fatal("trace JSON diverged under fault storm")
	}
	if r1 != r2 {
		t.Fatalf("breakdown report diverged under fault storm:\n%s\n---\n%s", r1, r2)
	}
}

// TestTraceChromeJSONWellFormed checks the export is real JSON in Chrome
// trace_event shape — loadable by Perfetto — and that the report names
// every layer.
func TestTraceChromeJSONWellFormed(t *testing.T) {
	raw, report := tracedRun(t, det(HWDP))
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	var sawMiss, sawMeta bool
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			if strings.HasPrefix(e.Name, "miss ") {
				sawMiss = true
			}
		case "M":
			sawMeta = true
		}
	}
	if !sawMiss || !sawMeta {
		t.Fatalf("missing event kinds: miss=%v meta=%v", sawMiss, sawMeta)
	}
	for _, layer := range []string{"mmu", "smu", "nvme", "ssd", "kernel", "TOTAL"} {
		if !strings.Contains(report, layer) {
			t.Fatalf("report missing layer %q:\n%s", layer, report)
		}
	}
}

// TestTraceDisabledFacade checks the facade degrades gracefully without
// Config.Trace: WriteTrace errors, the report and dump carry a notice,
// and the tracer accessor is nil.
func TestTraceDisabledFacade(t *testing.T) {
	sys := New(det(HWDP))
	if _, err := sys.RunFIO(1, 50, 1024); err != nil {
		t.Fatal(err)
	}
	if sys.Tracer() != nil {
		t.Fatal("tracer non-nil with tracing disabled")
	}
	if err := sys.WriteTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteTrace succeeded with tracing disabled")
	}
	if !strings.Contains(sys.BreakdownReport(), "disabled") {
		t.Fatal("report missing disabled notice")
	}
	if !strings.Contains(sys.FlightDump(), "disabled") {
		t.Fatal("flight dump missing disabled notice")
	}
}
