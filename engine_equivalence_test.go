package hwdp

// Engine-equivalence pins for the lane scheduler. The parallel engine's
// whole contract is that -lanes N is an execution strategy, not a model
// change: fixed-seed output must be byte-identical to the sequential
// engine's, and the per-lane event streams must be byte-identical whether
// the rounds run serially or on worker goroutines. These tests check both
// directly (no pinned constants needed — the sequential run IS the
// reference) and pin the -lanes 8 event-stream digest so an accidental
// timing-model change cannot hide behind "both sides moved together".

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"runtime"
	"testing"

	"hwdp/internal/figures"
)

// laneStream renders the determinism-sensitive outputs of a fixed-seed
// multi-scheme run at the given lane count. Tracing stays off: lane mode
// excludes it (and would silently fall back to the sequential engine,
// making the comparison vacuous).
func laneStream(t *testing.T, lanes int) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, s := range []Scheme{OSDP, SWOnly, HWDP} {
		cfg := det(s)
		cfg.Lanes = lanes
		sys := New(cfg)
		res, err := sys.RunFIO(2, 250, 4096)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&buf, "%v %+v\n", s, res)
		fmt.Fprintf(&buf, "%+v\n", sys.Stats())
	}
	p := figures.Quick()
	p.Lanes = lanes
	fig3, err := figures.Fig3(p)
	if err != nil {
		t.Fatal(err)
	}
	buf.WriteString(fig3.String())
	fig17, err := figures.Fig17(p)
	if err != nil {
		t.Fatal(err)
	}
	buf.WriteString(fig17.String())
	return buf.Bytes()
}

// TestLaneFigureOutputEquivalence is the j1-vs-j8 acceptance check: the
// same fixed-seed workloads and figures rendered under -lanes 8 must be
// byte-identical to the sequential engine's output.
func TestLaneFigureOutputEquivalence(t *testing.T) {
	seq := laneStream(t, 1)
	par := laneStream(t, 8)
	if !bytes.Equal(seq, par) {
		a, b := seq, par
		for len(a) > 0 && len(b) > 0 && a[0] == b[0] {
			a, b = a[1:], b[1:]
		}
		if len(a) > 120 {
			a = a[:120]
		}
		if len(b) > 120 {
			b = b[:120]
		}
		t.Fatalf("-lanes 8 output diverged from -lanes 1 at the marked point:\n  lanes=1: %q\n  lanes=8: %q", a, b)
	}
}

// eventStreamDigest runs the fixed-seed FIO workload with an observer on
// every lane and returns a SHA-256 over the per-lane fired-event timestamp
// streams. Each lane hashes its own stream into its own state (observers
// run on that lane's worker goroutine; sharing one hash across lanes would
// be a data race and interleaving-dependent), and the per-lane digests are
// folded together in fixed lane order — so the result is independent of
// worker scheduling, and an event migrating between lanes cannot cancel
// out.
func eventStreamDigest(t *testing.T, lanes int) string {
	t.Helper()
	cfg := det(HWDP)
	cfg.Lanes = lanes
	sys := New(cfg)
	mkObserver := func() (func() []byte, func(Duration)) {
		h := sha256.New()
		var scratch [8]byte
		return func() []byte { return h.Sum(nil) }, func(at Duration) {
			binary.LittleEndian.PutUint64(scratch[:], uint64(at))
			h.Write(scratch[:])
		}
	}
	var sums []func() []byte
	if grp := sys.Raw().Grp; grp != nil {
		for i := 0; i < grp.Lanes(); i++ {
			sum, observe := mkObserver()
			sums = append(sums, sum)
			grp.Lane(i).SetObserver(observe)
		}
	} else {
		sum, observe := mkObserver()
		sums = append(sums, sum)
		sys.Raw().Eng.SetObserver(observe)
	}
	if _, err := sys.RunFIO(2, 250, 4096); err != nil {
		t.Fatal(err)
	}
	final := sha256.New()
	for i, sum := range sums {
		final.Write([]byte{byte(i)}) // lane boundary marker
		final.Write(sum())
	}
	return hex.EncodeToString(final.Sum(nil))
}

// laneEventPin is the -lanes 8 per-lane event-stream digest of the
// fixed-seed FIO run on the seed implementation (amd64; the workload does
// integer-only timing arithmetic but the device jitter path renders through
// float64, so the pin follows the golden pin's amd64 restriction). Re-pin
// together with goldenPin on intentional timing-model changes.
const laneEventPin = "5ef533df17e766f575296c2baa5c1c8faf11770c4ae2b2a88397ab30e67cbb20"

func TestLaneEventStreamPinned(t *testing.T) {
	d1 := eventStreamDigest(t, 8)
	d2 := eventStreamDigest(t, 8)
	if d1 != d2 {
		t.Fatalf("-lanes 8 event stream diverged across two in-process runs:\n  %s\n  %s", d1, d2)
	}
	if runtime.GOARCH != "amd64" {
		t.Skipf("pinned digest is amd64-only; got %s on %s", d1, runtime.GOARCH)
	}
	if d1 != laneEventPin {
		t.Fatalf("-lanes 8 event-stream digest changed:\n  got  %s\n  want %s\n"+
			"(re-pin only together with goldenPin, for sanctioned timing-model changes)", d1, laneEventPin)
	}
}
