package hwdp

import (
	"testing"
)

func det(scheme Scheme) Config {
	return Config{Scheme: scheme, MemoryMB: 16, Cores: 4, Deterministic: true, Seed: 7}
}

func TestColdPageLatencyOrdering(t *testing.T) {
	var lats [3]Duration
	for i, s := range []Scheme{HWDP, SWOnly, OSDP} {
		sys := New(det(s))
		lat, err := sys.ColdPageLatency()
		if err != nil {
			t.Fatal(err)
		}
		lats[i] = lat
	}
	if !(lats[0] < lats[1] && lats[1] < lats[2]) {
		t.Fatalf("ordering: hw=%v sw=%v os=%v", lats[0], lats[1], lats[2])
	}
	// Headline: HWDP ≈ 43% below OSDP on the raw fault.
	red := 1 - float64(lats[0])/float64(lats[2])
	if red < 0.35 || red > 0.50 {
		t.Fatalf("raw fault reduction = %.2f", red)
	}
}

func TestSchemeAndDeviceStrings(t *testing.T) {
	if OSDP.String() != "OSDP" || SWOnly.String() != "SW-only" || HWDP.String() != "HWDP" {
		t.Fatal("scheme strings")
	}
}

func TestDeviceLatencyScales(t *testing.T) {
	var lats []Duration
	for _, d := range []Device{OptaneDCPMM, OptaneSSD, ZSSD} {
		cfg := det(HWDP)
		cfg.Device = d
		lat, err := New(cfg).ColdPageLatency()
		if err != nil {
			t.Fatal(err)
		}
		lats = append(lats, lat)
	}
	if !(lats[0] < lats[1] && lats[1] < lats[2]) {
		t.Fatalf("device ordering: %v", lats)
	}
}

func TestRunFIO(t *testing.T) {
	sys := New(det(HWDP))
	res, err := sys.RunFIO(2, 200, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 400 {
		t.Fatalf("ops = %d", res.Ops)
	}
	if res.HWMisses == 0 || res.Throughput <= 0 {
		t.Fatalf("res = %+v", res)
	}
	if res.P99Latency < res.MeanLatency {
		t.Fatal("p99 below mean")
	}
	// Hardware handling avoids context switches except for the rare
	// free-queue-empty bounces.
	if res.ContextSwaps > res.Ops/10 {
		t.Fatalf("too many context switches under HWDP: %d of %d ops",
			res.ContextSwaps, res.Ops)
	}
	if res.StallTime == 0 {
		t.Fatal("HWDP misses must stall the pipeline")
	}
}

func TestRunFIOOSDPContextSwitches(t *testing.T) {
	sys := New(det(OSDP))
	res, err := sys.RunFIO(1, 100, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if res.ContextSwaps == 0 {
		t.Fatal("OSDP faults must context switch")
	}
	if res.KernelInstr == 0 {
		t.Fatal("OSDP faults must run kernel code on the app thread")
	}
}

func TestStoreSyncAPI(t *testing.T) {
	sys := New(det(HWDP))
	st, err := sys.CreateStore("db", 512)
	if err != nil {
		t.Fatal(err)
	}
	if st.Keys() != 512 {
		t.Fatal("keys")
	}
	payload, v, err := st.Get(100)
	if err != nil || v != 0 {
		t.Fatalf("get: v=%d err=%v", v, err)
	}
	if len(payload) == 0 {
		t.Fatal("empty payload")
	}
	if err := st.Put(100, 5); err != nil {
		t.Fatal(err)
	}
	_, v, err = st.Get(100)
	if err != nil || v != 5 {
		t.Fatalf("get after put: v=%d err=%v", v, err)
	}
	if err := st.ReadModifyWrite(100); err != nil {
		t.Fatal(err)
	}
	_, v, _ = st.Get(100)
	if v != 6 {
		t.Fatalf("rmw version = %d", v)
	}
}

func TestRunYCSB(t *testing.T) {
	sys := New(det(HWDP))
	res, err := sys.RunYCSB('C', 2, 150, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 300 || res.Errors != 0 {
		t.Fatalf("res = %+v", res)
	}
	if res.UserIPC <= 0 {
		t.Fatal("no IPC measured")
	}
}

func TestStatsSnapshot(t *testing.T) {
	sys := New(det(HWDP))
	if _, err := sys.RunFIO(1, 150, 2048); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.HWMisses == 0 || st.DeviceReads == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MajorFaults != 0 && st.HWBounceFaults == 0 {
		t.Fatalf("OSDP faults under HWDP without bounces: %+v", st)
	}
}

func TestRunForAdvancesTime(t *testing.T) {
	sys := New(det(HWDP))
	t0 := sys.Now()
	sys.RunFor(5 * 1_000_000_000) // 5 ms in picoseconds
	if sys.Now() <= t0 {
		t.Fatal("time did not advance")
	}
}

func TestAnonRegionAPI(t *testing.T) {
	sys := New(det(HWDP))
	region, err := sys.MmapAnon(64)
	if err != nil {
		t.Fatal(err)
	}
	if region.Pages() != 64 {
		t.Fatal("pages")
	}
	data := []byte("anonymous bytes")
	if err := region.Write(4096*3+17, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if err := region.Read(4096*3+17, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(data) {
		t.Fatalf("round trip: %q", buf)
	}
	// Untouched pages read as zero.
	if err := region.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("untouched anon page not zero")
		}
	}
	if sys.Stats().AnonZeroFills == 0 {
		t.Fatal("no hardware zero-fills recorded")
	}
	// Bounds checks.
	if err := region.Write(64*4096-2, data); err == nil {
		t.Fatal("out-of-bounds write accepted")
	}
	if err := region.Read(-1, buf); err == nil {
		t.Fatal("negative read accepted")
	}
}

func TestFacadePrefetchConfig(t *testing.T) {
	cfg := det(HWDP)
	cfg.PrefetchDegree = 2
	sys := New(cfg)
	if _, err := sys.RunFIO(1, 100, 2048); err != nil {
		t.Fatal(err)
	}
	if sys.Stats().Prefetches == 0 {
		t.Fatal("prefetcher never ran")
	}
}

func TestFacadeStallTimeout(t *testing.T) {
	cfg := det(HWDP)
	cfg.StallTimeoutUS = 1 // absurdly tight: every Z-SSD miss times out
	sys := New(cfg)
	if _, err := sys.ColdPageLatency(); err != nil {
		t.Fatal(err)
	}
	if sys.Stats().StallTimeouts == 0 {
		t.Fatal("stall timeout never fired")
	}
}

func TestFacadeLogStructuredFS(t *testing.T) {
	cfg := det(HWDP)
	cfg.LogStructuredFS = true
	sys := New(cfg)
	st, err := sys.CreateStore("lfs-db", 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(5, 1); err != nil {
		t.Fatal(err)
	}
	_, v, err := st.Get(5)
	if err != nil || v != 1 {
		t.Fatalf("LFS store get: v=%d err=%v", v, err)
	}
}

func TestCheckInvariantsAfterWorkload(t *testing.T) {
	sys := New(det(HWDP))
	if _, err := sys.RunFIO(2, 300, 4096); err != nil {
		t.Fatal(err)
	}
	if vs := sys.CheckInvariants(); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}
