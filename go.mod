module hwdp

go 1.22
