package hwdp

// Golden determinism pin. The discrete-event engine is the substrate under
// every figure and trace in the repo; any change to it (or to the per-miss
// path it drives) must keep metrics, figure text and trace JSON
// byte-identical for a fixed seed. This test renders a fixed-seed workload
// across schemes — run results, Chrome trace JSON, breakdown report and a
// figure — and compares the SHA-256 of the whole byte stream against a
// pinned constant captured from the seed implementation.
//
// If this test fails after an intentional semantic change to the timing
// model, re-pin the constant and say so in the commit message. If it fails
// after a "pure refactor" of the engine or the miss path, the refactor
// changed event ordering and is not pure.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"testing"

	"hwdp/internal/figures"
)

// goldenStream renders every determinism-sensitive output of a fixed-seed
// run into one byte stream.
func goldenStream(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, s := range []Scheme{OSDP, SWOnly, HWDP} {
		cfg := det(s)
		cfg.Trace = true
		sys := New(cfg)
		res, err := sys.RunFIO(2, 250, 4096)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&buf, "%v %+v\n", s, res)
		if err := sys.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		buf.WriteString(sys.BreakdownReport())
	}
	fig, err := figures.Fig3(figures.Quick())
	if err != nil {
		t.Fatal(err)
	}
	buf.WriteString(fig.String())
	return buf.Bytes()
}

// goldenPin is the SHA-256 of goldenStream on the seed implementation
// (amd64). Floating-point rendering is identical on every platform Go
// guarantees no FMA contraction for separate statements, but the figure
// pipelines do arithmetic in single expressions where contraction is
// allowed, so the cross-run check below is unconditional and the pinned
// comparison is restricted to amd64.
const goldenPin = "cca3f1195c8c3155ebcb631a89a96b0adad71be74234a2360e053434d5ace1c0"

func TestGoldenOutputPinned(t *testing.T) {
	b1 := goldenStream(t)
	b2 := goldenStream(t)
	if !bytes.Equal(b1, b2) {
		t.Fatal("fixed-seed output diverged across two in-process runs")
	}
	sum := sha256.Sum256(b1)
	got := hex.EncodeToString(sum[:])
	if runtime.GOARCH != "amd64" {
		t.Skipf("pinned digest is amd64-only; got %s on %s", got, runtime.GOARCH)
	}
	if got != goldenPin {
		t.Fatalf("golden output digest changed:\n  got  %s\n  want %s\n"+
			"(an engine/miss-path refactor must keep fixed-seed output byte-identical)", got, goldenPin)
	}
}
