// Command fio is a standalone FIO-like microbenchmark over the simulated
// machine: random 4 KiB reads (optionally mixed with writes) on a
// memory-mapped file, under a selectable demand-paging scheme and device.
//
//	fio -scheme hwdp -threads 4 -ops 5000 -file-mb 64 -mem-mb 32
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hwdp/internal/core"
	"hwdp/internal/kernel"
	"hwdp/internal/ssd"
	"hwdp/internal/trace"
	"hwdp/internal/workload"
)

func main() {
	schemeFlag := flag.String("scheme", "hwdp", "demand paging scheme: osdp|sw|hwdp")
	device := flag.String("device", "zssd", "device profile: zssd|optane|pmm")
	threads := flag.Int("threads", 1, "worker threads (one per physical core)")
	ops := flag.Int("ops", 5000, "operations per thread")
	warmup := flag.Int("warmup", 500, "warmup operations per thread (not measured)")
	fileMB := flag.Int("file-mb", 64, "mapped file size")
	memMB := flag.Int("mem-mb", 32, "physical memory size")
	writeFrac := flag.Float64("write-frac", 0, "fraction of ops that are writes")
	cold := flag.Bool("cold", false, "touch only cold pages (pure miss latency)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	breakdown := flag.Bool("breakdown", false, "print per-layer miss-latency attribution after the run")
	tracePath := flag.String("trace", "", "write per-miss Chrome trace_event JSON to this file")
	flag.Parse()

	var scheme kernel.Scheme
	switch strings.ToLower(*schemeFlag) {
	case "osdp":
		scheme = kernel.OSDP
	case "sw", "swdp", "sw-only":
		scheme = kernel.SWDP
	case "hwdp":
		scheme = kernel.HWDP
	default:
		fmt.Fprintf(os.Stderr, "fio: unknown scheme %q\n", *schemeFlag)
		os.Exit(2)
	}
	var prof ssd.Profile
	switch strings.ToLower(*device) {
	case "zssd":
		prof = ssd.ZSSD
	case "optane":
		prof = ssd.OptaneSSD
	case "pmm":
		prof = ssd.OptaneDCPMM
	default:
		fmt.Fprintf(os.Stderr, "fio: unknown device %q\n", *device)
		os.Exit(2)
	}

	cfg := core.DefaultConfig(scheme)
	cfg.MemoryBytes = uint64(*memMB) << 20
	cfg.Device = prof
	cfg.Seed = *seed
	cfg.TraceEnabled = *breakdown || *tracePath != ""
	pages := *fileMB << 8 // MB -> 4KiB pages
	cfg.FSBlocks = uint64(pages) + (1 << 16)
	sys, err := core.NewSystem(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fio:", err)
		os.Exit(2)
	}

	fio, err := workload.SetupFIO(sys, "fio.dat", pages, sys.FastFlags())
	if err != nil {
		fmt.Fprintln(os.Stderr, "fio:", err)
		os.Exit(1)
	}
	fio.WriteFrac = *writeFrac
	fio.Cold = *cold

	ths := make([]*kernel.Thread, *threads)
	for i := range ths {
		ths[i] = sys.WorkloadThread(i)
	}
	rs := workload.Run(sys, ths, fio,
		workload.RunOptions{OpsPerThread: *ops, WarmupOps: *warmup})
	m := workload.Merge(rs)

	fmt.Printf("fio: scheme=%v device=%s threads=%d file=%dMiB mem=%dMiB cold=%v\n",
		scheme, prof.Name, *threads, *fileMB, *memMB, *cold)
	fmt.Printf("  ops            %d (errors %d)\n", m.Ops, m.Errors)
	fmt.Printf("  throughput     %.0f ops/s (%.1f MiB/s)\n",
		m.Throughput(), m.Throughput()*4096/(1<<20))
	fmt.Printf("  latency mean   %v\n", m.MeanLatency())
	fmt.Printf("  latency p50    %v\n", core.Dur(m.Lat.Percentile(50)))
	fmt.Printf("  latency p99    %v\n", core.Dur(m.Lat.Percentile(99)))
	ms := sys.MMU.Stats()
	ks := sys.K.Stats()
	fmt.Printf("  faults         hw=%d os=%d (major=%d minor=%d bounced=%d)\n",
		ms.HWMisses, ms.OSFaults, ks.MajorFaults, ks.MinorFaults, ks.HWBounceFaults)
	fmt.Printf("  memory         evictions=%d writebacks=%d\n", ks.Evictions, ks.Writebacks)
	ds := sys.Dev.Stats()
	fmt.Printf("  device         reads=%d writes=%d\n", ds.Reads, ds.Writes)

	if *breakdown {
		fmt.Printf("\n%s", sys.Trace.Report())
		if sys.Trace.Kills() > 0 {
			fmt.Printf("\n%s", sys.Trace.FlightDump())
		}
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fio:", err)
			os.Exit(1)
		}
		werr := trace.WriteChrome(f, trace.Process{Name: scheme.String(), T: sys.Trace})
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "fio:", werr)
			os.Exit(1)
		}
		fmt.Printf("  trace          wrote %s (open in https://ui.perfetto.dev)\n", *tracePath)
	}
}
