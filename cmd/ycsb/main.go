// Command ycsb runs YCSB core workloads (or DBBench readrandom) against
// the mmap-backed record store on the simulated machine, under a
// selectable demand-paging scheme.
//
//	ycsb -workload C -scheme hwdp -threads 4 -ops 5000 -records 16384
//	ycsb -workload dbbench -scheme osdp
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hwdp/internal/core"
	"hwdp/internal/kernel"
	"hwdp/internal/kvs"
	"hwdp/internal/ssd"
	"hwdp/internal/trace"
	"hwdp/internal/workload"
)

func main() {
	wl := flag.String("workload", "C", "YCSB variant A-F, or 'dbbench'")
	schemeFlag := flag.String("scheme", "hwdp", "demand paging scheme: osdp|sw|hwdp")
	device := flag.String("device", "zssd", "device profile: zssd|optane|pmm")
	threads := flag.Int("threads", 4, "client threads")
	ops := flag.Int("ops", 5000, "operations per thread")
	warmup := flag.Int("warmup", 1000, "warmup operations per thread")
	records := flag.Uint64("records", 16384, "record count (4 KiB each)")
	memMB := flag.Int("mem-mb", 32, "physical memory size")
	seed := flag.Uint64("seed", 1, "simulation seed")
	breakdown := flag.Bool("breakdown", false, "print per-layer miss-latency attribution after the run")
	tracePath := flag.String("trace", "", "write per-miss Chrome trace_event JSON to this file")
	flag.Parse()

	var scheme kernel.Scheme
	switch strings.ToLower(*schemeFlag) {
	case "osdp":
		scheme = kernel.OSDP
	case "sw", "swdp", "sw-only":
		scheme = kernel.SWDP
	case "hwdp":
		scheme = kernel.HWDP
	default:
		fail("unknown scheme %q", *schemeFlag)
	}
	var prof ssd.Profile
	switch strings.ToLower(*device) {
	case "zssd":
		prof = ssd.ZSSD
	case "optane":
		prof = ssd.OptaneSSD
	case "pmm":
		prof = ssd.OptaneDCPMM
	default:
		fail("unknown device %q", *device)
	}

	cfg := core.DefaultConfig(scheme)
	cfg.MemoryBytes = uint64(*memMB) << 20
	cfg.Device = prof
	cfg.Seed = *seed
	cfg.TraceEnabled = *breakdown || *tracePath != ""
	cfg.FSBlocks = *records*2 + (1 << 16)
	sys, err := core.NewSystem(cfg)
	if err != nil {
		fail("%v", err)
	}

	st, err := kvs.Create(sys.K, sys.FS, sys.Proc, "store", *records, 0, 0, sys.FastFlags())
	if err != nil {
		fail("%v", err)
	}
	var w workload.Workload
	name := strings.ToUpper(*wl)
	if strings.EqualFold(*wl, "dbbench") {
		w = workload.NewDBBenchReadRandom(sys, st)
		name = "DBBench-readrandom"
	} else {
		if len(name) != 1 {
			fail("workload must be A-F or dbbench")
		}
		y, err := workload.NewYCSB(sys, st, name[0])
		if err != nil {
			fail("%v", err)
		}
		w = y
		name = y.Name
	}

	ths := make([]*kernel.Thread, *threads)
	for i := range ths {
		ths[i] = sys.WorkloadThread(i)
	}
	rs := workload.Run(sys, ths, w,
		workload.RunOptions{OpsPerThread: *ops, WarmupOps: *warmup})
	m := workload.Merge(rs)

	fmt.Printf("%s: scheme=%v device=%s threads=%d records=%d (%.0f MiB) mem=%dMiB\n",
		name, scheme, prof.Name, *threads, *records, float64(*records)*4096/(1<<20), *memMB)
	fmt.Printf("  ops            %d (corrupt reads: %d)\n", m.Ops, m.Errors)
	fmt.Printf("  throughput     %.0f ops/s\n", m.Throughput())
	fmt.Printf("  latency        mean %v   p50 %v   p99 %v\n",
		m.MeanLatency(), core.Dur(m.Lat.Percentile(50)), core.Dur(m.Lat.Percentile(99)))
	var ipc float64
	for _, th := range ths {
		ipc += th.HW.Counters.UserIPC()
	}
	fmt.Printf("  user IPC       %.2f\n", ipc/float64(len(ths)))
	ms := sys.MMU.Stats()
	ks := sys.K.Stats()
	fmt.Printf("  page misses    hw=%d os=%d (major=%d minor=%d sw=%d bounced=%d)\n",
		ms.HWMisses, ms.OSFaults, ks.MajorFaults, ks.MinorFaults, ks.SWFaults, ks.HWBounceFaults)
	fmt.Printf("  memory         evictions=%d writebacks=%d kpted-syncs=%d\n",
		ks.Evictions, ks.Writebacks, ks.KptedSyncs)
	ds := sys.Dev.Stats()
	fmt.Printf("  device         reads=%d writes=%d\n", ds.Reads, ds.Writes)

	if *breakdown {
		fmt.Printf("\n%s", sys.Trace.Report())
		if sys.Trace.Kills() > 0 {
			fmt.Printf("\n%s", sys.Trace.FlightDump())
		}
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail("%v", err)
		}
		werr := trace.WriteChrome(f, trace.Process{Name: scheme.String(), T: sys.Trace})
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fail("%v", werr)
		}
		fmt.Printf("  trace          wrote %s (open in https://ui.perfetto.dev)\n", *tracePath)
	}
	if m.Errors > 0 {
		os.Exit(1)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ycsb: "+format+"\n", args...)
	os.Exit(2)
}
