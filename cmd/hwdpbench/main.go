// Command hwdpbench regenerates the paper's tables and figures on the
// simulated machine.
//
// Usage:
//
//	hwdpbench -fig 1|2|3|4|11|12|13|14|15|16|17|kpoold
//	hwdpbench -table 1|2|area
//	hwdpbench -all
//	hwdpbench -quick            # reduced op counts
//	hwdpbench -threads 1,4      # restrict Fig. 13's thread sweep
//	hwdpbench -breakdown        # per-layer miss-latency attribution, all schemes
//	hwdpbench -trace out.json   # Chrome trace of the same sweep (Perfetto)
//	hwdpbench -bench            # fixed-seed benchmark suite -> BENCH_hwdp.json
//	hwdpbench -bench -quick     # short variant (CI smoke)
//	hwdpbench -bench-out f.json # report path (default BENCH_hwdp.json)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"hwdp/internal/core"
	"hwdp/internal/figures"
	"hwdp/internal/kernel"
	"hwdp/internal/trace"
	"hwdp/internal/workload"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate (1,2,3,4,11,12,13,14,15,16,17,kpoold,pmshr,devices,prefetch)")
	table := flag.String("table", "", "table to regenerate (1,2,area)")
	all := flag.Bool("all", false, "regenerate everything")
	quick := flag.Bool("quick", false, "use reduced op counts")
	threadsFlag := flag.String("threads", "", "comma-separated thread counts for -fig 13")
	breakdown := flag.Bool("breakdown", false, "run a traced FIO sweep over all three schemes and print per-layer latency attribution")
	tracePath := flag.String("trace", "", "write the traced sweep as Chrome trace_event JSON to this file")
	bench := flag.Bool("bench", false, "run the fixed-seed benchmark suite and write a JSON report")
	benchOut := flag.String("bench-out", "BENCH_hwdp.json", "benchmark report path for -bench")
	flag.Parse()

	p := figures.Default()
	if *quick {
		p = figures.Quick()
	}
	var threads []int
	if *threadsFlag != "" {
		for _, s := range strings.Split(*threadsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatal(err)
			}
			threads = append(threads, n)
		}
	}

	targets := map[string]func() (fmt.Stringer, error){
		"1":  func() (fmt.Stringer, error) { return figures.Fig1(p) },
		"2":  func() (fmt.Stringer, error) { return figures.Fig2(), nil },
		"3":  func() (fmt.Stringer, error) { return figures.Fig3(p) },
		"4":  func() (fmt.Stringer, error) { return figures.Fig4(p) },
		"11": func() (fmt.Stringer, error) { return figures.Fig11(p) },
		"12": func() (fmt.Stringer, error) { return figures.Fig12(p) },
		"13": func() (fmt.Stringer, error) { return figures.Fig13(p, threads) },
		"14": func() (fmt.Stringer, error) { return figures.Fig14(p) },
		"15": func() (fmt.Stringer, error) { return figures.Fig15(p) },
		"16": func() (fmt.Stringer, error) { return figures.Fig16(p) },
		"17": func() (fmt.Stringer, error) { return figures.Fig17(p) },
		"kpoold": func() (fmt.Stringer, error) {
			return figures.KpooldAblation(p)
		},
		"pmshr": func() (fmt.Stringer, error) {
			return figures.AblationPMSHR(p)
		},
		"devices": func() (fmt.Stringer, error) {
			return figures.AblationDeviceSweep(p)
		},
		"prefetch": func() (fmt.Stringer, error) {
			return figures.AblationPrefetch(p)
		},
	}
	tableTargets := map[string]func() string{
		"1":    figures.TableI,
		"2":    func() string { return figures.TableII(p) },
		"area": figures.AreaTable,
	}

	order := []string{"1", "2", "3", "4", "11", "12", "13", "14", "15", "16", "17", "kpoold", "pmshr", "devices", "prefetch"}

	ran := false
	runFig := func(id string) {
		fn, ok := targets[id]
		if !ok {
			fatal(fmt.Errorf("unknown figure %q", id))
		}
		start := time.Now()
		r, err := fn()
		if err != nil {
			fatal(err)
		}
		fmt.Println(r.String())
		fmt.Printf("  [regenerated in %v]\n\n", time.Since(start).Round(time.Millisecond))
		ran = true
	}
	runTable := func(id string) {
		fn, ok := tableTargets[id]
		if !ok {
			fatal(fmt.Errorf("unknown table %q", id))
		}
		fmt.Println(fn())
		ran = true
	}

	if *breakdown || *tracePath != "" {
		traceSweep(*quick, *breakdown, *tracePath)
		ran = true
	}
	if *bench {
		runBench(*quick, *benchOut)
		ran = true
	}

	switch {
	case *all:
		for _, id := range []string{"1", "2", "area"} {
			runTable(id)
		}
		for _, id := range order {
			runFig(id)
		}
	case *fig != "":
		runFig(*fig)
	case *table != "":
		runTable(*table)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// traceSweep runs the same cold FIO workload under all three paging
// schemes with the observability tracer enabled, prints the per-layer
// critical-path attribution for each (when report is set), and optionally
// writes a combined Chrome trace with one process per scheme.
func traceSweep(quick, report bool, tracePath string) {
	ops, warm := 2000, 200
	if quick {
		ops, warm = 500, 100
	}
	const (
		filePages = 64 << 8 // 64 MiB mapped file
		memBytes  = 32 << 20
		threads   = 4
	)
	var procs []trace.Process
	for _, scheme := range []kernel.Scheme{kernel.OSDP, kernel.SWDP, kernel.HWDP} {
		cfg := core.DefaultConfig(scheme)
		cfg.MemoryBytes = memBytes
		cfg.Seed = 1
		cfg.FSBlocks = filePages + (1 << 16)
		cfg.TraceEnabled = true
		sys := core.NewSystem(cfg)
		fio, err := workload.SetupFIO(sys, "fio.dat", filePages, sys.FastFlags())
		if err != nil {
			fatal(err)
		}
		fio.Cold = true
		ths := make([]*kernel.Thread, threads)
		for i := range ths {
			ths[i] = sys.WorkloadThread(i)
		}
		workload.Run(sys, ths, fio,
			workload.RunOptions{OpsPerThread: ops, WarmupOps: warm})
		if report {
			fmt.Printf("=== %v ===\n%s\n", scheme, sys.Trace.Report())
		}
		procs = append(procs, trace.Process{Name: scheme.String(), T: sys.Trace})
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteChrome(f, procs...); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote Chrome trace to %s (open in https://ui.perfetto.dev)\n", tracePath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hwdpbench:", err)
	os.Exit(1)
}
