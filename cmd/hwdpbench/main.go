// Command hwdpbench regenerates the paper's tables and figures on the
// simulated machine.
//
// Usage:
//
//	hwdpbench -fig 1|2|3|4|11|12|13|14|15|16|17|kpoold
//	hwdpbench -table 1|2|area
//	hwdpbench -all
//	hwdpbench -quick            # reduced op counts
//	hwdpbench -threads 1,4      # restrict Fig. 13's thread sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"hwdp/internal/figures"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate (1,2,3,4,11,12,13,14,15,16,17,kpoold,pmshr,devices,prefetch)")
	table := flag.String("table", "", "table to regenerate (1,2,area)")
	all := flag.Bool("all", false, "regenerate everything")
	quick := flag.Bool("quick", false, "use reduced op counts")
	threadsFlag := flag.String("threads", "", "comma-separated thread counts for -fig 13")
	flag.Parse()

	p := figures.Default()
	if *quick {
		p = figures.Quick()
	}
	var threads []int
	if *threadsFlag != "" {
		for _, s := range strings.Split(*threadsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatal(err)
			}
			threads = append(threads, n)
		}
	}

	targets := map[string]func() (fmt.Stringer, error){
		"1":  func() (fmt.Stringer, error) { return figures.Fig1(p) },
		"2":  func() (fmt.Stringer, error) { return figures.Fig2(), nil },
		"3":  func() (fmt.Stringer, error) { return figures.Fig3(p) },
		"4":  func() (fmt.Stringer, error) { return figures.Fig4(p) },
		"11": func() (fmt.Stringer, error) { return figures.Fig11(p) },
		"12": func() (fmt.Stringer, error) { return figures.Fig12(p) },
		"13": func() (fmt.Stringer, error) { return figures.Fig13(p, threads) },
		"14": func() (fmt.Stringer, error) { return figures.Fig14(p) },
		"15": func() (fmt.Stringer, error) { return figures.Fig15(p) },
		"16": func() (fmt.Stringer, error) { return figures.Fig16(p) },
		"17": func() (fmt.Stringer, error) { return figures.Fig17(p) },
		"kpoold": func() (fmt.Stringer, error) {
			return figures.KpooldAblation(p)
		},
		"pmshr": func() (fmt.Stringer, error) {
			return figures.AblationPMSHR(p)
		},
		"devices": func() (fmt.Stringer, error) {
			return figures.AblationDeviceSweep(p)
		},
		"prefetch": func() (fmt.Stringer, error) {
			return figures.AblationPrefetch(p)
		},
	}
	tableTargets := map[string]func() string{
		"1":    figures.TableI,
		"2":    func() string { return figures.TableII(p) },
		"area": figures.AreaTable,
	}

	order := []string{"1", "2", "3", "4", "11", "12", "13", "14", "15", "16", "17", "kpoold", "pmshr", "devices", "prefetch"}

	ran := false
	runFig := func(id string) {
		fn, ok := targets[id]
		if !ok {
			fatal(fmt.Errorf("unknown figure %q", id))
		}
		start := time.Now()
		r, err := fn()
		if err != nil {
			fatal(err)
		}
		fmt.Println(r.String())
		fmt.Printf("  [regenerated in %v]\n\n", time.Since(start).Round(time.Millisecond))
		ran = true
	}
	runTable := func(id string) {
		fn, ok := tableTargets[id]
		if !ok {
			fatal(fmt.Errorf("unknown table %q", id))
		}
		fmt.Println(fn())
		ran = true
	}

	switch {
	case *all:
		for _, id := range []string{"1", "2", "area"} {
			runTable(id)
		}
		for _, id := range order {
			runFig(id)
		}
	case *fig != "":
		runFig(*fig)
	case *table != "":
		runTable(*table)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hwdpbench:", err)
	os.Exit(1)
}
