// Command hwdpbench regenerates the paper's tables and figures on the
// simulated machine. Runs are decomposed into named units and executed by
// the internal/sweep scheduler: a bounded worker pool (figure text stays
// byte-identical to a sequential run at any -j), a content-addressed
// result cache, per-run panic/timeout isolation, and a machine-readable
// manifest (SWEEP_hwdp.json) for CI.
//
// Usage:
//
//	hwdpbench -fig 1|2|3|4|11|12|13|14|15|16|17|kpoold|pmshr|devices|prefetch|ssd|gctail
//	hwdpbench -table 1|2|area
//	hwdpbench -all
//	hwdpbench -quick            # reduced op counts
//	hwdpbench -seed 7           # simulation seed for every unit (default 1)
//	hwdpbench -threads 1,4      # restrict Fig. 13's thread sweep
//	hwdpbench -j 8              # parallel run units (default GOMAXPROCS)
//	hwdpbench -lanes 8          # parallel-in-run engine lanes per simulation
//	hwdpbench -no-cache         # re-simulate even when a cached result exists
//	hwdpbench -ssd modeled      # FTL/GC media model for every unit (default profile)
//	hwdpbench -ssd-fill 0.8     # modeled preconditioning: fraction of LBAs filled
//	hwdpbench -ssd-churn 2      # modeled preconditioning: overwrite churn multiple
//	hwdpbench -cache-dir DIR    # result cache location (default .hwdpcache)
//	hwdpbench -run-timeout 15m  # per-unit wall-clock budget (0 disables)
//	hwdpbench -sweep-out f.json # sweep manifest path (default SWEEP_hwdp.json)
//	hwdpbench -breakdown        # per-layer miss-latency attribution, all schemes
//	hwdpbench -trace out.json   # Chrome trace of the same sweep (Perfetto)
//	hwdpbench -bench            # fixed-seed benchmark suite -> BENCH_hwdp.json
//	hwdpbench -bench -quick     # short variant (CI smoke)
//	hwdpbench -bench-out f.json # report path (default BENCH_hwdp.json)
//	hwdpbench -pressure         # chaos-pressure campaign -> CAMPAIGN_hwdp.json
//	hwdpbench -pressure -quick  # bounded variant (CI smoke)
//	hwdpbench -campaign-out f   # campaign manifest path (default CAMPAIGN_hwdp.json)
//	hwdpbench -fleet            # multi-tenant fleet sweep -> FLEET_hwdp.json
//	hwdpbench -fleet -quick     # CI-sized variant (one skew, both modes)
//	hwdpbench -fig fleet        # alias for -fleet
//	hwdpbench -tenants 5        # override the fleet sweep's tenant count
//	hwdpbench -qos ladder       # fleet admission: ladder (off+on), on, off
//	hwdpbench -fleet-out f.json # fleet manifest path (default FLEET_hwdp.json)
//
// Unit results (figure/table text) stream to stdout in deterministic
// order; progress, ETA and failure records go to stderr. A unit that
// panics or times out is recorded in the manifest and reported, the
// remaining units complete, and the exit status is 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hwdp/internal/campaign"
	"hwdp/internal/core"
	"hwdp/internal/figures"
	"hwdp/internal/fleet"
	"hwdp/internal/kernel"
	"hwdp/internal/sweep"
	"hwdp/internal/trace"
	"hwdp/internal/workload"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate (1,2,3,4,11,12,13,14,15,16,17,kpoold,pmshr,devices,prefetch)")
	table := flag.String("table", "", "table to regenerate (1,2,area)")
	all := flag.Bool("all", false, "regenerate everything")
	quick := flag.Bool("quick", false, "use reduced op counts")
	seed := flag.Uint64("seed", 1, "simulation seed threaded through every experiment")
	threadsFlag := flag.String("threads", "", "comma-separated thread counts for -fig 13")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "max run units executing in parallel")
	lanes := flag.Int("lanes", 1, "engine lanes per simulation (parallel-in-run; output is byte-identical across lane counts, see docs/ENGINE.md)")
	noCache := flag.Bool("no-cache", false, "ignore and don't write the result cache")
	ssdBackend := flag.String("ssd", "profile", "SSD media backend for figure units: profile or modeled (FTL + GC + plane parallelism, docs/SSD.md)")
	ssdFill := flag.Float64("ssd-fill", 0, "modeled-backend preconditioning fill fraction (0 = backend default of 1)")
	ssdChurn := flag.Float64("ssd-churn", 0, "modeled-backend preconditioning churn, in multiples of the filled capacity (0 = fresh drive)")
	cacheDir := flag.String("cache-dir", ".hwdpcache", "result cache directory")
	runTimeout := flag.Duration("run-timeout", 15*time.Minute, "per-unit wall-clock budget (0 disables)")
	sweepOut := flag.String("sweep-out", "SWEEP_hwdp.json", "sweep manifest path")
	breakdown := flag.Bool("breakdown", false, "run a traced FIO sweep over all three schemes and print per-layer latency attribution")
	tracePath := flag.String("trace", "", "write the traced sweep as Chrome trace_event JSON to this file")
	bench := flag.Bool("bench", false, "run the fixed-seed benchmark suite and write a JSON report")
	benchOut := flag.String("bench-out", "BENCH_hwdp.json", "benchmark report path for -bench")
	pressure := flag.Bool("pressure", false, "run the chaos-pressure campaign (oversubscription under fault storms) and write a JSON manifest")
	campaignOut := flag.String("campaign-out", "CAMPAIGN_hwdp.json", "campaign manifest path for -pressure")
	fleetRun := flag.Bool("fleet", false, "run the multi-tenant fleet sweep (noisy-neighbor isolation ladder, docs/FLEET.md) and write a JSON manifest")
	tenants := flag.Int("tenants", 0, "override the fleet sweep's tenant count (0 keeps the default)")
	qosMode := flag.String("qos", "ladder", "fleet admission modes to run: ladder (off and on), on, or off")
	fleetOut := flag.String("fleet-out", "FLEET_hwdp.json", "fleet manifest path for -fleet")
	flag.Parse()
	if *fig == "fleet" {
		// -fig fleet is sugar for -fleet: the fleet sweep is a figure
		// family, but its units come from internal/fleet, not figures.
		*fleetRun = true
		*fig = ""
	}

	p := figures.Default()
	if *quick {
		p = figures.Quick()
	}
	p.Seed = *seed
	p.Lanes = *lanes
	p.SSDBackend = *ssdBackend
	p.SSDFill = *ssdFill
	p.SSDChurn = *ssdChurn
	var threads []int
	if *threadsFlag != "" {
		for _, s := range strings.Split(*threadsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatal(err)
			}
			threads = append(threads, n)
		}
	}

	ran := false
	if *breakdown || *tracePath != "" {
		traceSweep(*quick, *breakdown, *tracePath, p)
		ran = true
	}

	units := figures.Units(p, threads)
	byName := make(map[string]sweep.Unit, len(units))
	for _, u := range units {
		byName[u.Name] = u
	}
	var sel []sweep.Unit
	if *bench {
		sel = append(sel, benchUnit(*quick, *lanes, *benchOut))
	}
	var campaignResults []campaign.Result
	if *pressure {
		scs := campaign.DefaultScenarios(*quick)
		cunits, cres := campaign.Units(scs)
		sel = append(sel, cunits...)
		campaignResults = cres
	}
	var fleetResults []fleet.Result
	if *fleetRun {
		cfgs := fleet.Ladder(*seed, *lanes)
		if *quick {
			cfgs = fleet.QuickLadder(*seed, *lanes)
		}
		kept := cfgs[:0]
		for _, c := range cfgs {
			if *tenants > 0 {
				c.Tenants = *tenants
			}
			switch *qosMode {
			case "ladder":
			case "on":
				if !c.QoS {
					continue
				}
			case "off":
				if c.QoS {
					continue
				}
			default:
				fatal(fmt.Errorf("unknown -qos mode %q (want ladder, on or off)", *qosMode))
			}
			if err := c.Validate(); err != nil {
				fatal(err)
			}
			kept = append(kept, c)
		}
		funits, fres := fleet.Units(kept)
		sel = append(sel, funits...)
		fleetResults = fres
	}
	switch {
	case *all:
		sel = append(sel, units...)
	case *fig != "":
		// Sharded figures (Fig. 13) expand to every fig/<name>/* unit so
		// -fig 13 still regenerates the whole table.
		found := false
		for _, u := range units {
			if u.Name == "fig/"+*fig || strings.HasPrefix(u.Name, "fig/"+*fig+"/") {
				sel = append(sel, u)
				found = true
			}
		}
		if !found {
			fatal(fmt.Errorf("unknown figure %q", *fig))
		}
	case *table != "":
		u, ok := byName["table/"+*table]
		if !ok {
			fatal(fmt.Errorf("unknown table %q", *table))
		}
		sel = append(sel, u)
	}
	failed := 0
	if len(sel) > 0 {
		failed = runSweep(sel, *jobs, *noCache, *cacheDir, *runTimeout, *sweepOut)
		ran = true
	}
	if *pressure {
		// The campaign manifest and the degradation figure are written even
		// when scenarios failed their audit — a dirty manifest is exactly
		// the artifact CI needs to diagnose the failure.
		m := campaign.NewManifest(campaignResults)
		if err := m.Write(*campaignOut); err != nil {
			fatal(err)
		}
		fmt.Println(campaign.RenderComparison(campaignResults))
		fmt.Fprintf(os.Stderr, "campaign: %d/%d scenarios clean (%d violations); manifest %s\n",
			m.Clean, m.Scenarios, m.Violations, *campaignOut)
	}
	if *fleetRun {
		m := fleet.NewManifest(fleetResults)
		if err := m.Write(*fleetOut); err != nil {
			fatal(err)
		}
		fmt.Println(fleet.RenderComparison(fleetResults))
		fmt.Fprintf(os.Stderr, "fleet: %d experiments, %d/%d tenant rows met SLO; manifest %s\n",
			m.Experiments, m.SLOMet, m.TenantRows, *fleetOut)
	}
	if failed > 0 {
		os.Exit(1)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// runSweep executes the selected units on the scheduler, writes the
// manifest, reports failures to stderr and returns the number of units
// that did not complete (the caller decides the exit status, after any
// post-sweep artifacts are written).
func runSweep(sel []sweep.Unit, jobs int, noCache bool, cacheDir string, runTimeout time.Duration, sweepOut string) int {
	var cache *sweep.Cache
	if !noCache {
		c, err := sweep.Open(cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hwdpbench: result cache disabled:", err)
		} else {
			cache = c
		}
	}
	start := time.Now()
	results := sweep.Run(sel, sweep.Options{
		Workers:     jobs,
		Cache:       cache,
		UnitTimeout: runTimeout,
		Progress:    os.Stderr,
		Out:         os.Stdout,
	})
	wall := time.Since(start)
	m := sweep.NewManifest(results, jobs, wall)
	if err := m.Write(sweepOut); err != nil {
		fatal(err)
	}
	for _, r := range results {
		if r.Status == sweep.StatusOK {
			continue
		}
		fmt.Fprintf(os.Stderr, "hwdpbench: %s %s: %s\n", r.Name, r.Status, r.Err)
		if r.Stack != "" {
			fmt.Fprintln(os.Stderr, r.Stack)
		}
	}
	fmt.Fprintf(os.Stderr,
		"sweep: %d/%d units ok (%d cached) in %v (aggregate %v, speedup %.2fx); manifest %s\n",
		m.OK, m.Units, m.CacheHits, wall.Round(10*time.Millisecond),
		time.Duration(m.AggregateMS*1e6).Round(10*time.Millisecond),
		m.ParallelSpeedup, sweepOut)
	return m.Failed
}

// traceSweep runs the same cold FIO workload under all three paging
// schemes with the observability tracer enabled, prints the per-layer
// critical-path attribution for each (when report is set), and optionally
// writes a combined Chrome trace with one process per scheme. The -ssd
// flags apply here too, so `-breakdown -ssd modeled` attributes mapping
// fetches, buffer stalls and plane waits alongside the profile backend's
// channel waits.
func traceSweep(quick, report bool, tracePath string, p figures.Params) {
	ops, warm := 2000, 200
	if quick {
		ops, warm = 500, 100
	}
	const (
		filePages = 64 << 8 // 64 MiB mapped file
		memBytes  = 32 << 20
		threads   = 4
	)
	var procs []trace.Process
	for _, scheme := range []kernel.Scheme{kernel.OSDP, kernel.SWDP, kernel.HWDP} {
		cfg := core.DefaultConfig(scheme)
		cfg.MemoryBytes = memBytes
		cfg.Seed = 1
		cfg.FSBlocks = filePages + (1 << 16)
		cfg.TraceEnabled = true
		p.ApplySSD(&cfg)
		sys, err := core.NewSystem(cfg)
		if err != nil {
			fatal(err)
		}
		fio, err := workload.SetupFIO(sys, "fio.dat", filePages, sys.FastFlags())
		if err != nil {
			fatal(err)
		}
		fio.Cold = true
		ths := make([]*kernel.Thread, threads)
		for i := range ths {
			ths[i] = sys.WorkloadThread(i)
		}
		workload.Run(sys, ths, fio,
			workload.RunOptions{OpsPerThread: ops, WarmupOps: warm})
		if report {
			fmt.Printf("=== %v ===\n%s\n", scheme, sys.Trace.Report())
		}
		procs = append(procs, trace.Process{Name: scheme.String(), T: sys.Trace})
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteChrome(f, procs...); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote Chrome trace to %s (open in https://ui.perfetto.dev)\n", tracePath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hwdpbench:", err)
	os.Exit(1)
}
