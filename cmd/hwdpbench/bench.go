package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"hwdp/internal/sweep"

	"hwdp/internal/core"
	"hwdp/internal/fleet"
	"hwdp/internal/kernel"
	"hwdp/internal/mem"
	"hwdp/internal/nvme"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
	"hwdp/internal/smu"
	"hwdp/internal/ssd"
	"hwdp/internal/workload"
)

// The -bench mode runs fixed-seed micro- and macro-benchmarks of the
// simulator hot path and writes a machine-readable report. CI runs the
// short variant on every push and uploads the report as an artifact, so
// performance regressions show up next to test failures rather than months
// later.
//
// All benchmarks are seeded: the simulated work is byte-identical across
// runs, so ns/op noise comes only from the host machine.

// benchResult is one benchmark row of the report.
type benchResult struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// SimEventsPerSec is discrete-event throughput (events retired per wall
	// second); only set for benchmarks that drive the full engine.
	SimEventsPerSec float64 `json:"sim_events_per_sec,omitempty"`
}

// benchBaseline pins the pre-optimization numbers (commit d31df3a, the
// container/heap engine with per-event closures) so the report carries its
// own point of comparison.
type benchBaseline struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// benchReport is the BENCH_hwdp.json schema.
type benchReport struct {
	Schema    int    `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Short     bool   `json:"short"`
	// Lanes is the -lanes value the lane_engine benchmark ran at;
	// GOMAXPROCS bounds how much of that lane count can turn into
	// wall-clock speedup, so the report records both.
	Lanes      int                      `json:"lanes"`
	GOMAXPROCS int                      `json:"gomaxprocs"`
	Bench      []benchResult            `json:"benchmarks"`
	Baseline   map[string]benchBaseline `json:"baseline"`
	// MissPathAllocsReductionPct is (1 - current/baseline) * 100 for the
	// miss_path benchmark's allocs/op — the headline number the
	// optimization work is judged by.
	MissPathAllocsReductionPct float64 `json:"miss_path_allocs_reduction_pct"`
}

// baselines are measured on the pre-optimization tree with the same
// benchmark bodies (go test -bench, linux/amd64).
var baselines = map[string]benchBaseline{
	"miss_path":                   {NsPerOp: 1948, AllocsPerOp: 20, BytesPerOp: 1179},
	"engine_schedule_fire_handle": {NsPerOp: 263.7, AllocsPerOp: 1, BytesPerOp: 48},
}

// benchUnit wraps the benchmark suite as a sweep unit. It is uncacheable
// by design: ns/op measures the host, not just the code and config, so a
// cached report would be a stale measurement.
func benchUnit(short bool, lanes int, outPath string) sweep.Unit {
	return sweep.Unit{
		Name:        "bench",
		Kind:        "bench",
		Fingerprint: fmt.Sprintf("short=%v lanes=%d out=%s", short, lanes, outPath),
		Uncacheable: true,
		Run:         func() (string, error) { return runBench(short, lanes, outPath) },
	}
}

// runBench executes the benchmark suite, writes the JSON report to
// outPath and returns the human-readable summary. Short mode shrinks the
// macro sweep so CI finishes in seconds.
func runBench(short bool, lanes int, outPath string) (string, error) {
	if lanes < 1 {
		lanes = 1
	}
	var sb strings.Builder
	rep := benchReport{
		Schema:     1,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Short:      short,
		Lanes:      lanes,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Baseline:   baselines,
	}
	add := func(name string, r testing.BenchmarkResult, eventsPerSec float64) {
		rep.Bench = append(rep.Bench, benchResult{
			Name:            name,
			Iters:           r.N,
			NsPerOp:         float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp:     r.AllocsPerOp(),
			BytesPerOp:      r.AllocedBytesPerOp(),
			SimEventsPerSec: eventsPerSec,
		})
		fmt.Fprintf(&sb, "%-28s %12d iters %10.1f ns/op %6d B/op %4d allocs/op",
			name, r.N, float64(r.T.Nanoseconds())/float64(r.N),
			r.AllocedBytesPerOp(), r.AllocsPerOp())
		if eventsPerSec > 0 {
			fmt.Fprintf(&sb, "  %11.0f sim-events/s", eventsPerSec)
		}
		sb.WriteString("\n")
	}

	add("engine_schedule_fire_post", benchEnginePost(), 0)
	add("engine_schedule_fire_handle", benchEngineHandle(), 0)
	r, eps := benchMissPath()
	add("miss_path", r, eps)
	r, eps = benchFigureSweep(short)
	add("figure_sweep", r, eps)
	r, seqEPS := benchLaneEngine(1, short)
	add("lane_engine_seq", r, seqEPS)
	var laneEPS float64
	if lanes > 1 {
		r, laneEPS = benchLaneEngine(lanes, short)
		add(fmt.Sprintf("lane_engine_lanes%d", lanes), r, laneEPS)
		if seqEPS > 0 {
			fmt.Fprintf(&sb, "lane_engine speedup at %d lanes: %.2fx (GOMAXPROCS=%d bounds wall-clock scaling)\n",
				lanes, laneEPS/seqEPS, runtime.GOMAXPROCS(0))
		}
	}
	add("fleet_fifo", benchFleet(short, false), 0)
	add("fleet_qos", benchFleet(short, true), 0)

	for _, b := range rep.Bench {
		if b.Name != "miss_path" {
			continue
		}
		base := baselines["miss_path"]
		rep.MissPathAllocsReductionPct =
			(1 - float64(b.AllocsPerOp)/float64(base.AllocsPerOp)) * 100
		fmt.Fprintf(&sb, "miss_path allocs/op: %d -> %d (%.0f%% reduction vs baseline)\n",
			base.AllocsPerOp, b.AllocsPerOp, rep.MissPathAllocsReductionPct)
	}

	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return "", err
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "wrote %s\n", outPath)
	return sb.String(), nil
}

// benchLaneEngine measures lane-scheduler throughput of the fleet-shaped
// Fig-13 event population (sim.RunFleet — the same model as the package's
// BenchmarkLaneFig13Mix). It is the sim_events_per_sec unit ISSUE's
// acceptance tracks: lanes=1 is the sequential baseline, lanes=N the
// sharded run of the identical population. Wall-clock speedup is bounded
// by min(lanes, GOMAXPROCS); the report records both so a 1-core CI runner
// is not misread as a scheduler regression.
func benchLaneEngine(lanes int, short bool) (testing.BenchmarkResult, float64) {
	virtual := sim.Milli(5)
	if short {
		virtual = sim.Milli(2)
	}
	var events uint64
	var wall time.Duration
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		start := time.Now()
		var fired uint64
		for i := 0; i < b.N; i++ {
			fired += sim.RunFleet(lanes, virtual).Fired
		}
		wall = time.Since(start)
		events = fired
	})
	eps := 0.0
	if wall > 0 {
		eps = float64(events) / wall.Seconds()
	}
	return r, eps
}

// benchEnginePost measures the pooled fire-and-forget schedule/fire path
// (the one the model's hot paths use).
func benchEnginePost() testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		e := sim.NewEngine()
		fn := func() {}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Post(sim.Time(i%1000), fn)
			if e.Pending() > 1024 {
				for e.Step() {
				}
			}
		}
		e.Run()
	})
}

// benchEngineHandle measures the allocating handle path (After), directly
// comparable to the pre-optimization baseline.
func benchEngineHandle() testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		e := sim.NewEngine()
		fn := func() {}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.After(sim.Time(i%1000), fn)
			if e.Pending() > 1024 {
				for e.Step() {
				}
			}
		}
		e.Run()
	})
}

// benchMissPath measures the full hardware miss path (SMU + NVMe device
// model) in isolation — the same shape as internal/smu's BenchmarkHandleMiss
// — and reports simulated-event throughput alongside ns/op.
func benchMissPath() (testing.BenchmarkResult, float64) {
	var events uint64
	var wall time.Duration
	r := testing.Benchmark(func(b *testing.B) {
		eng := sim.NewEngine()
		prof := ssd.ZSSD
		prof.JitterFrac = 0
		dev := ssd.New(eng, prof, sim.NewRand(1), nil)
		dev.AddNamespace(nvme.Namespace{ID: 1, Blocks: 1 << 30})
		s := smu.New(eng, 0, 1<<16)
		qp := nvme.NewQueuePair(1, 2*smu.PMSHREntries)
		s.AttachDevice(0, dev, qp, 1)
		tbl := pagetable.New()
		recs := make([]smu.FrameRecord, 0, 1024)
		for i := 0; i < 1024; i++ {
			recs = append(recs, smu.RecordFor(mem.FrameID(i)))
		}
		done := false
		complete := func(smu.Result, pagetable.Entry) { done = true }
		b.ReportAllocs()
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if s.FreeQueue().Len()+s.FreeQueue().Buffered() < 8 {
				s.Refill(recs)
			}
			va := pagetable.VAddr(uint64(i)%(1<<20)) << 12
			pud, pmd, pte := tbl.Ensure(va)
			blk := pagetable.BlockAddr{LBA: uint64(i)}
			pte.Set(pagetable.MakeLBA(blk, pagetable.Prot{}))
			done = false
			s.HandleMiss(smu.Request{PUD: pud, PMD: pmd, PTE: pte, Block: blk}, complete)
			for !done && eng.Step() {
			}
		}
		wall = time.Since(start)
		events = eng.Fired()
	})
	eps := 0.0
	if wall > 0 {
		eps = float64(events) / wall.Seconds()
	}
	return r, eps
}

// benchFleet measures one multi-tenant fleet experiment end to end (3
// tenants on 2 sockets, 16 threads, contended PMSHR) with admission FIFO
// or weighted-fair — the fleet_fifo row prices the tenant accounting
// mirror on the miss path, and fleet_qos adds the QoS gate/park/drain
// machinery on top.
func benchFleet(short, qos bool) testing.BenchmarkResult {
	c := fleet.DefaultConfig()
	c.QoS = qos
	c.Duration = 12 * sim.Millisecond
	c.Warmup = 3 * sim.Millisecond
	if short {
		c.Duration = 6 * sim.Millisecond
		c.Warmup = 2 * sim.Millisecond
	}
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fleet.Run(c); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchFigureSweep measures a full-system fixed-seed FIO sweep (kernel +
// MMU + SMU + device, HWDP scheme) — the macro workload behind the paper's
// figures. One iteration is one complete sweep.
func benchFigureSweep(short bool) (testing.BenchmarkResult, float64) {
	ops, warm := 2000, 200
	if short {
		ops, warm = 500, 100
	}
	const (
		filePages = 64 << 8
		memBytes  = 32 << 20
		threads   = 4
	)
	var events uint64
	var wall time.Duration
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		start := time.Now()
		var fired uint64
		for i := 0; i < b.N; i++ {
			cfg := core.DefaultConfig(kernel.HWDP)
			cfg.MemoryBytes = memBytes
			cfg.Seed = 1
			cfg.FSBlocks = filePages + (1 << 16)
			sys := cfg.Build()
			fio, err := workload.SetupFIO(sys, "fio.dat", filePages, sys.FastFlags())
			if err != nil {
				b.Fatal(err)
			}
			fio.Cold = true
			ths := make([]*kernel.Thread, threads)
			for t := range ths {
				ths[t] = sys.WorkloadThread(t)
			}
			workload.Run(sys, ths, fio,
				workload.RunOptions{OpsPerThread: ops, WarmupOps: warm})
			fired += sys.Eng.Fired()
		}
		wall = time.Since(start)
		events = fired
	})
	eps := 0.0
	if wall > 0 {
		eps = float64(events) / wall.Seconds()
	}
	return r, eps
}
