package main

// Golden sequential-vs-parallel equivalence. The sweep scheduler's whole
// claim is that `-j N` buys wall-clock speedup without touching a single
// output byte: the figure/table text and every deterministic field of the
// artifacts must be identical whether units run one at a time or
// interleaved on eight workers. These tests run the real `-all -quick`
// unit set (and the -bench report) both ways and compare.

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hwdp/internal/figures"
	"hwdp/internal/sweep"
)

// TestSweepParallelEquivalence asserts the `-all -quick` stdout stream is
// byte-identical at -j 1 and -j 8, and that the manifests' deterministic
// projections (unit names, statuses, output hashes) agree.
func TestSweepParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full -all -quick unit set twice; skipped in -short mode")
	}
	units := figures.Units(figures.Quick(), nil)
	runAt := func(workers int) (string, sweep.Manifest) {
		var out bytes.Buffer
		start := time.Now()
		rs := sweep.Run(units, sweep.Options{Workers: workers, Out: &out})
		m := sweep.NewManifest(rs, workers, time.Since(start))
		for _, r := range rs {
			if r.Status != sweep.StatusOK {
				t.Fatalf("workers=%d: unit %s %s: %s", workers, r.Name, r.Status, r.Err)
			}
		}
		return out.String(), m
	}
	seqOut, seqM := runAt(1)
	parOut, parM := runAt(8)
	if seqOut != parOut {
		i := 0
		for i < len(seqOut) && i < len(parOut) && seqOut[i] == parOut[i] {
			i++
		}
		t.Fatalf("-j 8 output diverges from -j 1 at byte %d:\n seq: %q\n par: %q",
			i, tail(seqOut, i), tail(parOut, i))
	}
	if seqM.DeterministicSignature() != parM.DeterministicSignature() {
		t.Fatalf("manifest determinism witness diverged:\n%s\nvs\n%s",
			seqM.DeterministicSignature(), parM.DeterministicSignature())
	}
}

// tail returns a short context window of s starting at i, for diffs.
func tail(s string, i int) string {
	end := i + 120
	if end > len(s) {
		end = len(s)
	}
	return s[i:end]
}

// TestBenchReportParallelEquivalence asserts BENCH_hwdp.json is
// byte-identical between a -j 1 and a -j 8 sweep once the host-timing
// fields (iters, ns/op, B/op, allocs/op, events/s) are normalized away —
// those measure the machine, not the simulation, and no amount of
// scheduling may change anything else. Benchmarks run one iteration
// (test.benchtime=1x): the report's structure is under test here, not
// its timing quality.
func TestBenchReportParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the benchmark suite twice; skipped in -short mode")
	}
	if err := flag.Set("test.benchtime", "1x"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	runAt := func(workers int, name string) benchReport {
		path := filepath.Join(dir, name)
		rs := sweep.Run([]sweep.Unit{benchUnit(true, 8, path)},
			sweep.Options{Workers: workers})
		if rs[0].Status != sweep.StatusOK {
			t.Fatalf("workers=%d: bench unit %s: %s", workers, rs[0].Status, rs[0].Err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var rep benchReport
		if err := json.Unmarshal(b, &rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}
	seq := normalizeBench(runAt(1, "seq.json"))
	par := normalizeBench(runAt(8, "par.json"))
	seqJSON, err := json.MarshalIndent(seq, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	parJSON, err := json.MarshalIndent(par, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqJSON, parJSON) {
		t.Fatalf("normalized BENCH reports diverge between -j 1 and -j 8:\n%s\nvs\n%s",
			seqJSON, parJSON)
	}
}

// normalizeBench zeroes the host-dependent measurement fields, keeping
// schema, benchmark identity/order and the pinned baselines.
func normalizeBench(rep benchReport) benchReport {
	for i := range rep.Bench {
		rep.Bench[i].Iters = 0
		rep.Bench[i].NsPerOp = 0
		rep.Bench[i].BytesPerOp = 0
		rep.Bench[i].AllocsPerOp = 0
		rep.Bench[i].SimEventsPerSec = 0
	}
	rep.MissPathAllocsReductionPct = 0
	return rep
}
