// Command hwdplint runs the repo's analyzer suite (simdeterminism,
// poolpair, simtime, eventcapture — see docs/ANALYSIS.md).
//
// It speaks the `go vet -vettool` protocol, so the canonical invocation is
//
//	go build -o bin/hwdplint ./cmd/hwdplint
//	go vet -vettool=$(pwd)/bin/hwdplint ./...
//
// (that is what `make lint` runs). Invoked with package patterns instead,
// it loads the packages itself:
//
//	./bin/hwdplint ./...
//
// Exit status is 2 when any diagnostic is reported, matching go vet.
package main

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"hwdp/internal/analysis"
	"hwdp/internal/analysis/loader"
	"hwdp/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			// The go command fingerprints vet tools for its action cache.
			fmt.Println("hwdplint version v1.0.0")
			return 0
		case "-flags", "--flags":
			// The go command asks which flags the tool accepts; hwdplint
			// has none beyond the protocol ones.
			fmt.Println("[]")
			return 0
		case "-h", "-help", "--help":
			usage()
			return 0
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runVetCfg(args[0])
	}
	if len(args) == 0 {
		usage()
		return 2
	}
	return runStandalone(args)
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: hwdplint <packages>   (or via go vet -vettool=hwdplint)\n\nanalyzers:\n")
	for _, a := range suite.Analyzers {
		fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nsuppress with: //hwdp:ignore <analyzer> <reason>   (reason required)\n")
}

// vetConfig mirrors the JSON the go command writes to <objdir>/vet.cfg for
// each vetted package (cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// runVetCfg analyzes one package unit as directed by a vet.cfg file.
func runVetCfg(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hwdplint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// Dependencies are vetted only for facts (VetxOnly); hwdplint keeps no
	// cross-package facts, and only this module's packages are checked.
	if cfg.VetxOnly || !strings.HasPrefix(analysis.NormalizePkgPath(cfg.ImportPath), "hwdp") {
		return 0
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	files, err := loader.ParseFiles(fset, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	info := analysis.NewInfo()
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		Sizes:     types.SizesFor(compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "hwdplint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	u := &analysis.Unit{Fset: fset, Files: files, Pkg: pkg, Info: info}
	diags, err := analysis.Run(u, suite.Analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hwdplint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	return report(fset, diags)
}

// runStandalone loads package patterns itself and analyzes each unit.
func runStandalone(patterns []string) int {
	units, err := loader.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hwdplint: %v\n", err)
		return 1
	}
	status := 0
	for _, u := range units {
		diags, err := analysis.Run(u, suite.Analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hwdplint: %s: %v\n", u.Pkg.Path(), err)
			return 1
		}
		if s := report(u.Fset, diags); s > status {
			status = s
		}
	}
	return status
}

// report prints diagnostics (paths relative to the working directory where
// possible) and returns the exit status vet expects: 2 when anything was
// found, 0 otherwise.
func report(fset *token.FileSet, diags []analysis.Diagnostic) int {
	if len(diags) == 0 {
		return 0
	}
	wd, _ := os.Getwd()
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		name := pos.Filename
		if wd != "" {
			if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s [%s]\n", name, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	return 2
}
