// Command hwdplint runs the repo's analyzer suite (simdeterminism,
// lanesafety, laneescape, poolpair, simtime, eventcapture, hotalloc,
// statuscase — see docs/ANALYSIS.md).
//
// It speaks the `go vet -vettool` protocol, so the canonical invocation is
//
//	go build -o bin/hwdplint ./cmd/hwdplint
//	go vet -vettool=$(pwd)/bin/hwdplint ./...
//
// (that is what `make lint` runs). In that mode the go command runs the
// tool once per package in dependency order; hwdplint writes each
// package's callgraph summary to the facts file the go command names
// (vet.cfg VetxOutput) and reads its dependencies' summaries back
// (PackageVetx), giving the interprocedural analyzers (laneescape,
// hotalloc) cross-package reach with full incremental caching. Invoked
// with package patterns instead, it loads the packages itself and threads
// the facts in-process:
//
//	./bin/hwdplint ./...
//
// Exit status is 2 when any diagnostic is reported, matching go vet.
package main

import (
	"crypto/sha256"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hwdp/internal/analysis"
	"hwdp/internal/analysis/callgraph"
	"hwdp/internal/analysis/loader"
	"hwdp/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			// The go command fingerprints vet tools for its action cache;
			// the fingerprint keys the cached facts files, so it must
			// change whenever the tool's behavior does. Hash the binary
			// itself: a constant string here would keep serving stale
			// facts across tool rebuilds.
			fmt.Printf("hwdplint version %s\n", selfHash())
			return 0
		case "-flags", "--flags":
			// The go command asks which flags the tool accepts; hwdplint
			// has none beyond the protocol ones.
			fmt.Println("[]")
			return 0
		case "-h", "-help", "--help":
			usage()
			return 0
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runVetCfg(args[0])
	}
	if len(args) == 0 {
		usage()
		return 2
	}
	return runStandalone(args)
}

// selfHash returns a content hash of the running binary, in the
// "name version <id>" shape the go command's toolID parser accepts.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "v0-unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "v0-unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "v0-unknown"
	}
	return fmt.Sprintf("v0-%x", h.Sum(nil)[:12])
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: hwdplint <packages>   (or via go vet -vettool=hwdplint)\n\nanalyzers:\n")
	for _, a := range suite.Analyzers {
		fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nsuppress with: //hwdp:ignore <analyzer> <reason>   (reason required)\n")
}

// runVetCfg analyzes one package unit as directed by a vet.cfg file,
// importing dependency facts and exporting this package's summary.
func runVetCfg(cfgPath string) int {
	cfg, err := loader.ReadVetConfig(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hwdplint: %v\n", err)
		return 1
	}
	// Packages outside this module carry no hwdp facts: write an empty
	// summary (the walk treats them as opaque) without parsing them.
	if !strings.HasPrefix(analysis.NormalizePkgPath(cfg.ImportPath), "hwdp") {
		writeFacts(cfg, &callgraph.PkgFacts{Version: callgraph.Version, Pkg: analysis.NormalizePkgPath(cfg.ImportPath)})
		return 0
	}
	u, err := cfg.LoadUnit()
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "hwdplint: %v\n", err)
		return 1
	}
	reg := callgraph.NewRegistry()
	for _, factsFile := range cfg.PackageVetx {
		reg.LoadFile(factsFile)
	}
	pf := callgraph.Summarize(u, reg)
	writeFacts(cfg, pf)
	if cfg.VetxOnly {
		return 0 // dependency run: facts only, no diagnostics
	}
	diags, err := analysis.Run(u, suite.Analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hwdplint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	return report(u.Fset, diags)
}

// writeFacts serializes a package summary to the vet.cfg's VetxOutput (a
// no-op when the go command did not ask for facts).
func writeFacts(cfg *loader.VetConfig, pf *callgraph.PkgFacts) {
	if cfg.VetxOutput == "" {
		return
	}
	data, err := pf.Encode()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hwdplint: encoding facts for %s: %v\n", cfg.ImportPath, err)
		return
	}
	if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
		fmt.Fprintf(os.Stderr, "hwdplint: writing facts for %s: %v\n", cfg.ImportPath, err)
	}
}

// runStandalone loads package patterns itself and analyzes each unit,
// threading callgraph facts in dependency order in-process.
func runStandalone(patterns []string) int {
	units, err := loader.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hwdplint: %v\n", err)
		return 1
	}
	results, err := suite.RunAll(units)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hwdplint: %v\n", err)
		return 1
	}
	status := 0
	for _, r := range results {
		if s := report(r.Unit.Fset, r.Diags); s > status {
			status = s
		}
	}
	return status
}

// report prints diagnostics (paths relative to the working directory where
// possible) and returns the exit status vet expects: 2 when anything was
// found, 0 otherwise.
func report(fset *token.FileSet, diags []analysis.Diagnostic) int {
	if len(diags) == 0 {
		return 0
	}
	wd, _ := os.Getwd()
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		name := pos.Filename
		if wd != "" {
			if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s [%s]\n", name, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	return 2
}
