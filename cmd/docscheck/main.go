// Command docscheck enforces the repo's documentation invariants. It is
// the engine behind `make docs-check` and the CI docs step.
//
// It checks, across every non-test Go file in the module:
//
//   - every package has a package doc comment;
//   - every exported top-level symbol (type, func, method, const, var)
//     has a doc comment;
//
// and, across every tracked markdown file:
//
//   - every relative link target ([text](path) and [text](path#anchor))
//     resolves to an existing file or directory;
//
// and, for the experiment driver:
//
//   - every flag cmd/hwdpbench registers is documented in EXPERIMENTS.md
//     (as `-name`), so the reference the docs promise cannot drift behind
//     the binary's actual surface.
//
// It exits non-zero and lists each violation as file:line when anything
// fails, so it slots directly into CI.
//
//	go run ./cmd/docscheck [-root dir]
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	root := flag.String("root", ".", "module root to check")
	flag.Parse()

	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	if err := checkGoDocs(*root, addf); err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
	if err := checkMarkdownLinks(*root, addf); err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
	if err := checkFlagDocs(*root, addf); err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}

	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Printf("docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

// checkGoDocs parses every non-test .go file and reports packages without
// a package comment and exported declarations without doc comments.
func checkGoDocs(root string, addf func(string, ...any)) error {
	fset := token.NewFileSet()
	// Track whether any file of a package carries the package comment:
	// one doc.go per package is enough.
	pkgDoc := map[string]bool{}       // dir -> has package doc
	pkgFiles := map[string][]string{} // dir -> files (for reporting)

	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		dir := filepath.Dir(path)
		pkgFiles[dir] = append(pkgFiles[dir], path)
		if f.Doc != nil {
			pkgDoc[dir] = true
		}
		for _, decl := range f.Decls {
			checkDecl(fset, decl, addf)
		}
		return nil
	})
	if err != nil {
		return err
	}
	for dir, files := range pkgFiles {
		if !pkgDoc[dir] {
			sort.Strings(files)
			addf("%s: package has no package doc comment", files[0])
		}
	}
	return nil
}

// checkDecl reports exported top-level symbols without doc comments.
func checkDecl(fset *token.FileSet, decl ast.Decl, addf func(string, ...any)) {
	pos := func(p token.Pos) string {
		position := fset.Position(p)
		return fmt.Sprintf("%s:%d", position.Filename, position.Line)
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return
		}
		// Only methods on exported receivers count as API surface.
		if d.Recv != nil && !exportedRecv(d.Recv) {
			return
		}
		addf("%s: exported %s %s is undocumented", pos(d.Pos()), kindOf(d), d.Name.Name)
	case *ast.GenDecl:
		// A doc comment on the GenDecl covers the whole block
		// (`// Schemes.` above a const block is idiomatic).
		blockDoc := d.Doc != nil
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && !blockDoc && s.Doc == nil && s.Comment == nil {
					addf("%s: exported type %s is undocumented", pos(s.Pos()), s.Name.Name)
				}
			case *ast.ValueSpec:
				if blockDoc || s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						addf("%s: exported %s %s is undocumented", pos(s.Pos()), tokenKind(d.Tok), n.Name)
					}
				}
			}
		}
	}
}

func kindOf(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

func tokenKind(t token.Token) string {
	if t == token.CONST {
		return "const"
	}
	return "var"
}

// exportedRecv reports whether a method receiver names an exported type.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return true
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}

// flagCtors are the flag-package constructors whose first argument names a
// command-line flag.
var flagCtors = map[string]bool{
	"Bool": true, "Int": true, "Int64": true, "Uint": true, "Uint64": true,
	"Float64": true, "String": true, "Duration": true,
	"BoolVar": true, "IntVar": true, "Int64Var": true, "UintVar": true,
	"Uint64Var": true, "Float64Var": true, "StringVar": true, "DurationVar": true,
}

// checkFlagDocs parses cmd/hwdpbench's flag registrations and requires
// every flag to appear as `-name` somewhere in EXPERIMENTS.md.
func checkFlagDocs(root string, addf func(string, ...any)) error {
	cmdDir := filepath.Join(root, "cmd", "hwdpbench")
	if _, err := os.Stat(cmdDir); err != nil {
		return nil // repo layout without the driver: nothing to enforce
	}
	docPath := filepath.Join(root, "EXPERIMENTS.md")
	doc, err := os.ReadFile(docPath)
	if err != nil {
		addf("%s: EXPERIMENTS.md missing but cmd/hwdpbench exists", docPath)
		return nil
	}
	fset := token.NewFileSet()
	entries, err := os.ReadDir(cmdDir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		path := filepath.Join(cmdDir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !flagCtors[sel.Sel.Name] || len(call.Args) == 0 {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "flag" {
				return true
			}
			// VarName forms take the name as the second argument.
			arg := call.Args[0]
			if strings.HasSuffix(sel.Sel.Name, "Var") {
				if len(call.Args) < 2 {
					return true
				}
				arg = call.Args[1]
			}
			lit, ok := arg.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			name := strings.Trim(lit.Value, `"`)
			if !strings.Contains(string(doc), "-"+name) {
				p := fset.Position(lit.Pos())
				addf("%s:%d: flag -%s is not documented in EXPERIMENTS.md", p.Filename, p.Line, name)
			}
			return true
		})
	}
	return nil
}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkMarkdownLinks verifies every relative markdown link target exists.
func checkMarkdownLinks(root string, addf func(string, ...any)) error {
	return filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
					strings.HasPrefix(target, "#") {
					continue
				}
				target = strings.SplitN(target, "#", 2)[0]
				resolved := filepath.Join(filepath.Dir(path), target)
				if _, err := os.Stat(resolved); err != nil {
					addf("%s:%d: broken link %q", path, i+1, m[1])
				}
			}
		}
		return nil
	})
}
