package sweep

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// progress reports live sweep state: one line per completed unit with the
// running count, outcome, duration, cache state and an ETA extrapolated
// from the observed completion rate (which already folds in the worker
// parallelism). It writes to stderr-style side channels only — never the
// aggregate output stream — so progress noise can't break the
// byte-determinism of the results.
type progress struct {
	mu    sync.Mutex
	w     io.Writer
	total int
	done  int
	start time.Time
}

// newProgress builds a reporter; a nil writer disables it.
func newProgress(w io.Writer, total int) *progress {
	return &progress{w: w, total: total, start: time.Now()}
}

// finished records one completed unit and emits its progress line.
func (p *progress) finished(r Result) {
	if p.w == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	line := fmt.Sprintf("sweep [%*d/%d] %-7s %-14s %8s",
		countWidth(p.total), p.done, p.total, r.Status, r.Name,
		r.Duration.Round(10*time.Millisecond))
	if r.Cache == "hit" {
		line += "  (cached)"
	}
	if p.done < p.total {
		elapsed := time.Since(p.start)
		eta := elapsed / time.Duration(p.done) * time.Duration(p.total-p.done)
		line += fmt.Sprintf("  eta ~%s", eta.Round(time.Second))
	}
	fmt.Fprintln(p.w, line)
}

// countWidth returns the print width of total for aligned counters.
func countWidth(total int) int {
	w := 1
	for total >= 10 {
		total /= 10
		w++
	}
	return w
}
