package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"
)

// ManifestSchema versions the SWEEP_hwdp.json layout.
const ManifestSchema = 1

// RunRecord is one unit's row in the sweep manifest.
type RunRecord struct {
	// Name and Kind identify the unit.
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Status is the unit outcome ("ok", "failed", "panic", "timeout").
	Status Status `json:"status"`
	// Cache is "hit", "miss" or "off".
	Cache string `json:"cache"`
	// CacheKey is the content address, when caching was enabled.
	CacheKey string `json:"cache_key,omitempty"`
	// DurationMS is wall-clock milliseconds spent on the unit.
	DurationMS float64 `json:"duration_ms"`
	// OutputSHA256 hashes the unit's output text; it is the per-unit
	// determinism witness (identical across -j values and cache hits).
	OutputSHA256 string `json:"output_sha256"`
	// Error and Stack describe failures.
	Error string `json:"error,omitempty"`
	Stack string `json:"stack,omitempty"`
}

// Manifest is the machine-readable record of one sweep, written as
// SWEEP_hwdp.json for CI artifacts.
type Manifest struct {
	// Schema is ManifestSchema.
	Schema int `json:"schema"`
	// GoVersion, GOOS and GOARCH describe the host toolchain.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// Workers is the requested pool bound (-j).
	Workers int `json:"workers"`
	// Units/OK/Failed/CacheHits/CacheMisses summarize the run.
	Units       int `json:"units"`
	OK          int `json:"ok"`
	Failed      int `json:"failed"`
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	// WallMS is the sweep's end-to-end wall-clock time; AggregateMS sums
	// the per-unit durations. Their ratio is the measured parallel
	// speedup (cache hits deflate AggregateMS, so compare uncached runs
	// when measuring scaling).
	WallMS          float64 `json:"wall_ms"`
	AggregateMS     float64 `json:"aggregate_ms"`
	ParallelSpeedup float64 `json:"parallel_speedup"`
	// Runs is one record per unit, in unit-list order.
	Runs []RunRecord `json:"runs"`
}

// NewManifest summarizes a sweep's results.
func NewManifest(results []Result, workers int, wall time.Duration) Manifest {
	m := Manifest{
		Schema:    ManifestSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Workers:   workers,
		Units:     len(results),
		WallMS:    float64(wall.Nanoseconds()) / 1e6,
	}
	var agg time.Duration
	for _, r := range results {
		rec := RunRecord{
			Name:         r.Name,
			Kind:         r.Kind,
			Status:       r.Status,
			Cache:        r.Cache,
			CacheKey:     r.CacheKey,
			DurationMS:   float64(r.Duration.Nanoseconds()) / 1e6,
			OutputSHA256: digest(r.Output),
			Error:        r.Err,
			Stack:        r.Stack,
		}
		switch {
		case r.Status == StatusOK:
			m.OK++
		default:
			m.Failed++
		}
		switch r.Cache {
		case "hit":
			m.CacheHits++
		case "miss":
			m.CacheMisses++
		}
		agg += r.Duration
		m.Runs = append(m.Runs, rec)
	}
	m.AggregateMS = float64(agg.Nanoseconds()) / 1e6
	if m.WallMS > 0 {
		m.ParallelSpeedup = m.AggregateMS / m.WallMS
	}
	return m
}

// Write marshals the manifest to path as indented JSON.
func (m Manifest) Write(path string) error {
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}

// DeterministicSignature projects the manifest onto its host-independent
// fields — unit names, kinds, statuses and output hashes, in order — so
// two sweeps of the same units can be compared regardless of worker
// count, timing or cache state. Equality of signatures is the
// sequential-vs-parallel equivalence check used by the golden tests.
func (m Manifest) DeterministicSignature() string {
	var b strings.Builder
	for _, r := range m.Runs {
		fmt.Fprintf(&b, "%s|%s|%s|%s\n", r.Name, r.Kind, r.Status, r.OutputSHA256)
	}
	return b.String()
}

// digest hex-encodes SHA-256 of s.
func digest(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}
