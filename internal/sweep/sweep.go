// Package sweep orchestrates experiment sweeps: it decomposes figure,
// table and benchmark regeneration into named, self-describing run units
// and executes them on a bounded worker pool while keeping every output
// byte-identical to a sequential run.
//
// The simulator itself is strictly single-threaded per System — the
// simdeterminism analyzer forbids goroutines inside the model packages —
// but the paper's artifacts are bags of *independent* fixed-seed runs, so
// the parallelism lives out here: each unit builds its own System, runs to
// completion on one goroutine, and returns its rendered text. Aggregation
// is deterministic by construction (results are emitted in unit-list
// order, never completion order), so `-j 8` and `-j 1` produce the same
// bytes on stdout.
//
// Robustness plumbing wraps every unit: a panicking run is captured with
// its stack and recorded as a structured failure without aborting the
// rest of the sweep, and a per-unit wall-clock timeout abandons runs that
// hang. A content-addressed result cache (see Cache) skips re-simulating
// units whose code and configuration are unchanged. See docs/SWEEP.md for
// the architecture and failure semantics.
package sweep

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Unit is one self-describing run of a sweep: a named experiment with a
// fixed configuration whose Run function produces the unit's rendered
// output. Units must be independent — each builds its own simulated
// machine — and deterministic for a fixed Fingerprint, which is what
// makes both parallel execution and result caching sound.
type Unit struct {
	// Name identifies the unit ("fig/12", "table/area", "bench"). It is
	// the stable key used for ordering, the manifest and the cache.
	Name string
	// Kind groups units for reporting: "figure", "table", "bench", ...
	Kind string
	// Fingerprint serializes every input that affects the unit's output
	// (parameters, seed, thread set). It is hashed into the cache key, so
	// any field that changes results must appear here.
	Fingerprint string
	// Run executes the experiment and returns its rendered text exactly
	// as it should appear on the aggregate output stream.
	Run func() (string, error)
	// Uncacheable marks units whose output depends on the host (e.g.
	// wall-clock benchmarks); they always re-run.
	Uncacheable bool
}

// Status classifies how a unit run ended.
type Status string

// Unit outcomes recorded in Result and the manifest.
const (
	// StatusOK means the unit completed and produced output.
	StatusOK Status = "ok"
	// StatusFailed means Run returned an error.
	StatusFailed Status = "failed"
	// StatusPanicked means Run panicked; the stack is in Result.Stack.
	StatusPanicked Status = "panic"
	// StatusTimeout means Run exceeded Options.UnitTimeout and was
	// abandoned (its goroutine keeps running detached; its eventual
	// result is discarded).
	StatusTimeout Status = "timeout"
)

// Result is the structured record of one unit run.
type Result struct {
	// Name and Kind echo the unit.
	Name string
	Kind string
	// Status is the outcome; output below is empty unless StatusOK.
	Status Status
	// Output is the unit's rendered text (from Run or the cache).
	Output string
	// Err is the failure description for non-OK statuses.
	Err string
	// Stack is the captured goroutine stack for StatusPanicked.
	Stack string
	// CacheKey is the content address of this unit's result ("" when
	// caching is off or the unit is uncacheable).
	CacheKey string
	// Cache is "hit", "miss" or "off".
	Cache string
	// Duration is the wall-clock time spent on this unit (≈0 on a hit).
	Duration time.Duration
}

// Options configures a sweep run.
type Options struct {
	// Workers bounds the worker pool; <=0 means runtime.GOMAXPROCS(0).
	Workers int
	// Cache, when non-nil, serves and stores unit results by content
	// address. Failed runs are never cached.
	Cache *Cache
	// UnitTimeout is the per-unit wall-clock budget; 0 disables it.
	UnitTimeout time.Duration
	// Progress, when non-nil, receives one human-readable line per
	// completed unit (count, status, duration, cache state, ETA).
	Progress io.Writer
	// Out, when non-nil, receives each unit's Output in unit-list order
	// regardless of completion order, streamed as soon as the ordered
	// prefix is complete.
	Out io.Writer
}

// Run executes units on a bounded worker pool and returns one Result per
// unit, index-aligned with the input. Output emission and the returned
// slice are deterministic in unit order; only scheduling is concurrent.
func Run(units []Unit, opt Options) []Result {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(units) {
		workers = len(units)
	}
	if workers < 1 {
		workers = 1
	}
	results := make([]Result, len(units))
	emit := &orderedEmitter{w: opt.Out, pending: make(map[int]string)}
	prog := newProgress(opt.Progress, len(units))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runUnit(units[i], opt)
				emit.deliver(i, results[i].Output)
				prog.finished(results[i])
			}
		}()
	}
	for i := range units {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// outcome carries a unit run's raw ending across the watchdog channel.
type outcome struct {
	status Status
	output string
	err    string
	stack  string
}

// runUnit executes one unit with cache lookup, panic capture and the
// wall-clock watchdog.
func runUnit(u Unit, opt Options) Result {
	res := Result{Name: u.Name, Kind: u.Kind, Cache: "off"}
	if opt.Cache != nil && !u.Uncacheable {
		res.CacheKey = opt.Cache.Key(u)
		if out, ok := opt.Cache.Get(res.CacheKey); ok {
			res.Status = StatusOK
			res.Output = out
			res.Cache = "hit"
			return res
		}
		res.Cache = "miss"
	}
	start := time.Now()
	// The unit runs on its own goroutine so the watchdog can abandon it:
	// a simulation stuck in an event loop cannot be preempted, only
	// detached. The buffered channel lets an abandoned run's eventual
	// outcome be dropped instead of leaking the goroutine forever.
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- outcome{
					status: StatusPanicked,
					err:    fmt.Sprintf("panic: %v", p),
					stack:  string(debug.Stack()),
				}
			}
		}()
		out, err := u.Run()
		if err != nil {
			ch <- outcome{status: StatusFailed, err: err.Error()}
			return
		}
		ch <- outcome{status: StatusOK, output: out}
	}()
	var timeout <-chan time.Time
	if opt.UnitTimeout > 0 {
		t := time.NewTimer(opt.UnitTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case oc := <-ch:
		res.Status = oc.status
		res.Output = oc.output
		res.Err = oc.err
		res.Stack = oc.stack
	case <-timeout:
		res.Status = StatusTimeout
		res.Err = fmt.Sprintf("exceeded the %v per-unit wall-clock budget; run abandoned", opt.UnitTimeout)
	}
	res.Duration = time.Since(start)
	if res.Status == StatusOK && res.Cache == "miss" {
		if err := opt.Cache.Put(res.CacheKey, res.Output); err != nil {
			// A cache write failure must not fail the sweep; the result
			// is still valid, only the next run loses the hit.
			res.Cache = "miss (store failed: " + err.Error() + ")"
		}
	}
	return res
}

// orderedEmitter streams unit outputs in unit-list order: a completed
// result is buffered until every earlier unit has been written, so the
// aggregate stream is byte-identical for any worker count.
type orderedEmitter struct {
	mu      sync.Mutex
	w       io.Writer
	next    int
	pending map[int]string
}

// deliver hands result i's output to the emitter, flushing the ready
// in-order prefix.
func (e *orderedEmitter) deliver(i int, out string) {
	if e.w == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pending[i] = out
	for {
		s, ok := e.pending[e.next]
		if !ok {
			return
		}
		delete(e.pending, e.next)
		io.WriteString(e.w, s)
		e.next++
	}
}
