package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// cacheKeyScheme versions the key derivation; bump it when the hashed
// inputs change so stale entries can never be served.
const cacheKeyScheme = "hwdp-sweep-v1"

// Cache is a content-addressed store of unit outputs keyed by
// SHA-256(code version ‖ unit name ‖ kind ‖ fingerprint). The code
// version is the hash of the running executable, so any rebuild that
// changes behaviour — a model edit, a figure tweak, a new Go toolchain —
// invalidates every entry automatically, while re-running an unchanged
// binary (Go builds are reproducible) hits. Entries are plain text files
// named by key, written atomically via rename.
type Cache struct {
	dir     string
	version string
}

// Open creates (if needed) and opens a cache rooted at dir, fingerprinting
// the current executable as the code version.
func Open(dir string) (*Cache, error) {
	version, err := executableDigest()
	if err != nil {
		return nil, fmt.Errorf("sweep: fingerprinting executable: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: creating cache dir: %w", err)
	}
	return &Cache{dir: dir, version: version}, nil
}

// executableDigest hashes the running binary. `go run` and `go test`
// produce bit-identical binaries for identical inputs, so the digest is a
// faithful stand-in for "code version" without requiring VCS stamping.
func executableDigest() (string, error) {
	exe, err := os.Executable()
	if err != nil {
		return "", err
	}
	f, err := os.Open(exe)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Version returns the code-version digest entries are keyed under.
func (c *Cache) Version() string { return c.version }

// Key derives the content address of a unit's result.
func (c *Cache) Key(u Unit) string {
	h := sha256.New()
	for _, part := range []string{cacheKeyScheme, c.version, u.Name, u.Kind, u.Fingerprint} {
		io.WriteString(h, part)
		h.Write([]byte{0}) // unambiguous field separator
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Get returns the cached output for key, if present.
func (c *Cache) Get(key string) (string, bool) {
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return "", false
	}
	return string(b), true
}

// Put stores output under key, atomically (write temp file, rename).
func (c *Cache) Put(key, output string) error {
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.WriteString(output); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(key))
}

// path maps a key to its entry file.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".out")
}
