package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fakeUnit builds a trivial unit whose output is derived from its name
// and whose runtime is an artificial delay, so scheduling order can be
// perturbed without touching the simulator.
func fakeUnit(name string, delay time.Duration) Unit {
	return Unit{
		Name: name, Kind: "fake", Fingerprint: "fp:" + name,
		Run: func() (string, error) {
			time.Sleep(delay)
			return "out:" + name + "\n", nil
		},
	}
}

// TestOrderedOutputAcrossWorkerCounts is the core determinism contract:
// the aggregate output stream and the result slice are byte-identical for
// any -j, even when later units finish first.
func TestOrderedOutputAcrossWorkerCounts(t *testing.T) {
	var units []Unit
	for i := 0; i < 12; i++ {
		// Earlier units sleep longer, so under parallel workers the later
		// units complete first and the emitter must reorder.
		units = append(units, fakeUnit(fmt.Sprintf("u%02d", i),
			time.Duration(12-i)*time.Millisecond))
	}
	var want bytes.Buffer
	for _, u := range units {
		want.WriteString("out:" + u.Name + "\n")
	}
	for _, workers := range []int{1, 4, 16} {
		var out bytes.Buffer
		results := Run(units, Options{Workers: workers, Out: &out})
		if out.String() != want.String() {
			t.Fatalf("workers=%d: output diverged from sequential order:\n%q", workers, out.String())
		}
		for i, r := range results {
			if r.Name != units[i].Name {
				t.Fatalf("workers=%d: result %d is %s, want %s", workers, i, r.Name, units[i].Name)
			}
			if r.Status != StatusOK {
				t.Fatalf("workers=%d: %s status = %s", workers, r.Name, r.Status)
			}
		}
	}
}

// TestPanicIsolation injects a panicking run and verifies it fails alone,
// with a structured record carrying the stack, while every other unit
// completes and the ordered output skips only the dead unit.
func TestPanicIsolation(t *testing.T) {
	units := []Unit{
		fakeUnit("a", 0),
		{Name: "boom", Kind: "fake", Fingerprint: "fp",
			Run: func() (string, error) { panic("injected failure") }},
		fakeUnit("b", 0),
	}
	var out bytes.Buffer
	results := Run(units, Options{Workers: 3, Out: &out})
	if got, want := out.String(), "out:a\nout:b\n"; got != want {
		t.Fatalf("output = %q, want %q", got, want)
	}
	r := results[1]
	if r.Status != StatusPanicked {
		t.Fatalf("status = %s, want %s", r.Status, StatusPanicked)
	}
	if !strings.Contains(r.Err, "injected failure") {
		t.Fatalf("error %q does not carry the panic value", r.Err)
	}
	if !strings.Contains(r.Stack, "sweep_test.go") {
		t.Fatalf("stack does not attribute the panic site:\n%s", r.Stack)
	}
	for _, i := range []int{0, 2} {
		if results[i].Status != StatusOK {
			t.Fatalf("unit %s did not survive the neighbouring panic", results[i].Name)
		}
	}
}

// TestErrorIsolation verifies a Run error becomes a failed record without
// stopping the sweep.
func TestErrorIsolation(t *testing.T) {
	units := []Unit{
		{Name: "bad", Kind: "fake", Fingerprint: "fp",
			Run: func() (string, error) { return "", fmt.Errorf("no such experiment") }},
		fakeUnit("ok", 0),
	}
	results := Run(units, Options{Workers: 2})
	if results[0].Status != StatusFailed || results[0].Err != "no such experiment" {
		t.Fatalf("failed record = %+v", results[0])
	}
	if results[1].Status != StatusOK {
		t.Fatal("healthy unit affected by neighbour failure")
	}
}

// TestTimeoutIsolation verifies the wall-clock watchdog abandons a hung
// unit with a structured record while the rest of the sweep completes.
func TestTimeoutIsolation(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	units := []Unit{
		{Name: "hung", Kind: "fake", Fingerprint: "fp",
			Run: func() (string, error) { <-release; return "late\n", nil }},
		fakeUnit("ok", 0),
	}
	var out bytes.Buffer
	results := Run(units, Options{Workers: 2, UnitTimeout: 20 * time.Millisecond, Out: &out})
	if results[0].Status != StatusTimeout {
		t.Fatalf("status = %s, want %s", results[0].Status, StatusTimeout)
	}
	if !strings.Contains(results[0].Err, "wall-clock budget") {
		t.Fatalf("timeout error = %q", results[0].Err)
	}
	if results[1].Status != StatusOK {
		t.Fatal("healthy unit affected by neighbour timeout")
	}
	if got, want := out.String(), "out:ok\n"; got != want {
		t.Fatalf("output = %q, want %q", got, want)
	}
}

// TestCacheRoundTrip verifies miss → store → hit, fingerprint
// sensitivity, and that uncacheable units bypass the cache.
func TestCacheRoundTrip(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	unit := Unit{Name: "u", Kind: "fake", Fingerprint: "v1",
		Run: func() (string, error) { ran++; return "payload\n", nil }}
	bench := Unit{Name: "bench", Kind: "bench", Fingerprint: "v1", Uncacheable: true,
		Run: func() (string, error) { ran++; return "timing\n", nil }}

	r1 := Run([]Unit{unit, bench}, Options{Workers: 1, Cache: cache})
	if r1[0].Cache != "miss" || r1[1].Cache != "off" {
		t.Fatalf("first run cache states = %s, %s", r1[0].Cache, r1[1].Cache)
	}
	r2 := Run([]Unit{unit, bench}, Options{Workers: 1, Cache: cache})
	if r2[0].Cache != "hit" {
		t.Fatalf("second run cache state = %s, want hit", r2[0].Cache)
	}
	if r2[0].Output != "payload\n" {
		t.Fatalf("cached output = %q", r2[0].Output)
	}
	if ran != 3 { // unit once, bench twice
		t.Fatalf("run count = %d, want 3 (hit must not re-run, uncacheable must)", ran)
	}

	// A config change must change the key and force a re-simulation.
	unit.Fingerprint = "v2"
	r3 := Run([]Unit{unit}, Options{Workers: 1, Cache: cache})
	if r3[0].Cache != "miss" {
		t.Fatalf("changed fingerprint cache state = %s, want miss", r3[0].Cache)
	}
	if r3[0].CacheKey == r1[0].CacheKey {
		t.Fatal("cache key ignored the fingerprint")
	}
}

// TestCacheNeverStoresFailures verifies failed runs are not poisoning the
// cache: a later fixed run must re-execute and then hit.
func TestCacheNeverStoresFailures(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fail := true
	unit := Unit{Name: "flaky", Kind: "fake", Fingerprint: "fp",
		Run: func() (string, error) {
			if fail {
				return "", fmt.Errorf("transient")
			}
			return "good\n", nil
		}}
	if r := Run([]Unit{unit}, Options{Cache: cache}); r[0].Status != StatusFailed {
		t.Fatalf("status = %s", r[0].Status)
	}
	fail = false
	r := Run([]Unit{unit}, Options{Cache: cache})
	if r[0].Cache != "miss" || r[0].Output != "good\n" {
		t.Fatalf("recovered run = %+v (a failure must not have been cached)", r[0])
	}
}

// TestManifest verifies counts, the determinism witness and the JSON
// round trip of the sweep manifest.
func TestManifest(t *testing.T) {
	units := []Unit{
		fakeUnit("a", 0),
		{Name: "boom", Kind: "fake", Fingerprint: "fp",
			Run: func() (string, error) { panic("x") }},
	}
	seq := NewManifest(Run(units, Options{Workers: 1}), 1, 5*time.Millisecond)
	par := NewManifest(Run(units, Options{Workers: 8}), 8, 5*time.Millisecond)
	if seq.OK != 1 || seq.Failed != 1 || seq.Units != 2 {
		t.Fatalf("manifest counts = %+v", seq)
	}
	if seq.DeterministicSignature() != par.DeterministicSignature() {
		t.Fatalf("deterministic signature depends on worker count:\n%s\nvs\n%s",
			seq.DeterministicSignature(), par.DeterministicSignature())
	}
	if !strings.Contains(seq.DeterministicSignature(), "boom|fake|panic|") {
		t.Fatalf("signature = %q", seq.DeterministicSignature())
	}

	path := filepath.Join(t.TempDir(), "SWEEP_test.json")
	if err := seq.Write(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Manifest
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Schema != ManifestSchema || len(got.Runs) != 2 {
		t.Fatalf("round-tripped manifest = %+v", got)
	}
	if got.Runs[1].Stack == "" {
		t.Fatal("panic stack missing from manifest")
	}
}

// TestProgressReporting verifies one line per unit lands on the progress
// writer and none of it leaks onto the output stream.
func TestProgressReporting(t *testing.T) {
	var out, prog bytes.Buffer
	units := []Unit{fakeUnit("a", 0), fakeUnit("b", 0), fakeUnit("c", 0)}
	Run(units, Options{Workers: 2, Out: &out, Progress: &prog})
	lines := strings.Split(strings.TrimRight(prog.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("progress lines = %d:\n%s", len(lines), prog.String())
	}
	for _, l := range lines {
		if !strings.Contains(l, "sweep [") || !strings.Contains(l, "/3]") {
			t.Fatalf("malformed progress line %q", l)
		}
	}
	if strings.Contains(out.String(), "sweep [") {
		t.Fatal("progress leaked into the deterministic output stream")
	}
}
