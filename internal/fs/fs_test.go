package fs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"hwdp/internal/pagetable"
)

func TestCreateOpenBlock(t *testing.T) {
	s := New(2, 3, 1, 1000)
	f, err := s.Create("db", 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Pages() != 10 {
		t.Fatalf("pages = %d", f.Pages())
	}
	if s.FreeBlocks() != 990 {
		t.Fatalf("free = %d", s.FreeBlocks())
	}
	got, err := s.Open("db")
	if err != nil || got != f {
		t.Fatalf("open: %v %v", got, err)
	}
	b, err := s.Block(f, 5)
	if err != nil {
		t.Fatal(err)
	}
	if b.SID != 2 || b.DeviceID != 3 {
		t.Fatalf("block addr = %v", b)
	}
	if _, err := s.Block(f, 10); !errors.Is(err, ErrBadPage) {
		t.Fatalf("oob: %v", err)
	}
	if _, err := s.Open("nope"); err == nil {
		t.Fatal("open of missing file succeeded")
	}
	if _, err := s.Create("db", 1, nil); err == nil {
		t.Fatal("duplicate create succeeded")
	}
}

func TestCreateExhaustsSpace(t *testing.T) {
	s := New(0, 0, 1, 5)
	if _, err := s.Create("big", 6, nil); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v", err)
	}
}

func TestUniqueBlockAssignment(t *testing.T) {
	s := New(0, 0, 1, 100)
	f1, _ := s.Create("a", 30, nil)
	f2, _ := s.Create("b", 30, nil)
	seen := map[uint64]bool{}
	for _, f := range []*File{f1, f2} {
		for i := 0; i < f.Pages(); i++ {
			b, _ := s.Block(f, i)
			if seen[b.LBA] {
				t.Fatalf("lba %d assigned twice", b.LBA)
			}
			seen[b.LBA] = true
		}
	}
}

func TestReadBlockDeterministicContent(t *testing.T) {
	s := New(0, 0, 1, 100)
	f, _ := s.Create("raw", 4, SeededInit(42))
	b, _ := s.Block(f, 2)
	buf1 := make([]byte, PageBytes)
	buf2 := make([]byte, PageBytes)
	_ = s.ReadBlock(b.LBA, buf1)
	_ = s.ReadBlock(b.LBA, buf2)
	if !bytes.Equal(buf1, buf2) {
		t.Fatal("content not deterministic")
	}
	// Different pages differ.
	b3, _ := s.Block(f, 3)
	_ = s.ReadBlock(b3.LBA, buf2)
	if bytes.Equal(buf1, buf2) {
		t.Fatal("pages identical; initializer ignores page index")
	}
}

func TestReadUnallocatedBlockIsZero(t *testing.T) {
	s := New(0, 0, 1, 100)
	buf := make([]byte, PageBytes)
	buf[0] = 0xFF
	if err := s.ReadBlock(99, buf); err != nil {
		t.Fatal(err)
	}
	for _, v := range buf {
		if v != 0 {
			t.Fatal("trimmed block not zero")
		}
	}
}

func TestWriteThenReadBack(t *testing.T) {
	s := New(0, 0, 1, 100)
	f, _ := s.Create("raw", 2, SeededInit(1))
	b, _ := s.Block(f, 0)
	data := make([]byte, PageBytes)
	for i := range data {
		data[i] = byte(i * 3)
	}
	if err := s.WriteBlock(b.LBA, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageBytes)
	_ = s.ReadBlock(b.LBA, got)
	if !bytes.Equal(got, data) {
		t.Fatal("read-after-write mismatch")
	}
	if s.Writes() != 1 {
		t.Fatalf("writes = %d", s.Writes())
	}
	if err := s.WriteBlock(1000, data); err == nil {
		t.Fatal("write beyond device succeeded")
	}
}

func TestWriteBlockCopiesData(t *testing.T) {
	s := New(0, 0, 1, 100)
	data := make([]byte, PageBytes)
	data[0] = 1
	_ = s.WriteBlock(5, data)
	data[0] = 99 // caller reuses its buffer
	got := make([]byte, PageBytes)
	_ = s.ReadBlock(5, got)
	if got[0] != 1 {
		t.Fatal("WriteBlock aliased caller buffer")
	}
}

func TestRemapPreservesContentAndNotifies(t *testing.T) {
	s := New(1, 2, 1, 100)
	f, _ := s.Create("db", 3, SeededInit(9))
	f.Marked = true
	var notified []pagetable.BlockAddr
	s.OnRemap(func(file *File, page int, nb pagetable.BlockAddr) {
		if file != f || page != 1 {
			t.Fatalf("remap cb: %v %d", file.Name, page)
		}
		notified = append(notified, nb)
	})
	before := make([]byte, PageBytes)
	old, _ := s.Block(f, 1)
	_ = s.ReadBlock(old.LBA, before)

	nb, err := s.Remap(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if nb.LBA == old.LBA {
		t.Fatal("remap did not move the block")
	}
	if len(notified) != 1 || notified[0] != nb {
		t.Fatalf("notify = %v", notified)
	}
	after := make([]byte, PageBytes)
	_ = s.ReadBlock(nb.LBA, after)
	if !bytes.Equal(before, after) {
		t.Fatal("remap lost content")
	}
	if s.Remaps() != 1 {
		t.Fatal("remap count")
	}
}

func TestRemapUnmarkedFileDoesNotNotify(t *testing.T) {
	s := New(0, 0, 1, 100)
	f, _ := s.Create("db", 1, nil)
	called := false
	s.OnRemap(func(*File, int, pagetable.BlockAddr) { called = true })
	if _, err := s.Remap(f, 0); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("unmarked file triggered remap callback")
	}
}

func TestRemapPreservesWrittenContent(t *testing.T) {
	s := New(0, 0, 1, 100)
	f, _ := s.Create("db", 1, SeededInit(3))
	b, _ := s.Block(f, 0)
	data := make([]byte, PageBytes)
	data[100] = 0xAA
	_ = s.WriteBlock(b.LBA, data)
	nb, _ := s.Remap(f, 0)
	got := make([]byte, PageBytes)
	_ = s.ReadBlock(nb.LBA, got)
	if got[100] != 0xAA {
		t.Fatal("written content lost across remap")
	}
	// Old block no longer maps to the file: reads as trimmed.
	_ = s.ReadBlock(b.LBA, got)
	if got[100] != 0 {
		t.Fatal("old block still holds file content")
	}
}

func TestRemapOutOfRange(t *testing.T) {
	s := New(0, 0, 1, 100)
	f, _ := s.Create("db", 1, nil)
	if _, err := s.Remap(f, 5); !errors.Is(err, ErrBadPage) {
		t.Fatalf("err = %v", err)
	}
}

// Property: after any sequence of remaps, every file page maps to a unique
// LBA and content remains the page's logical content.
func TestRemapInvariantProperty(t *testing.T) {
	f := func(pageSeq []uint8) bool {
		s := New(0, 0, 1, 10000)
		file, err := s.Create("f", 16, SeededInit(5))
		if err != nil {
			return false
		}
		want := make([][]byte, 16)
		for i := range want {
			want[i] = make([]byte, PageBytes)
			file.init(i, want[i])
		}
		for _, p := range pageSeq {
			page := int(p % 16)
			if _, err := s.Remap(file, page); err != nil {
				return false
			}
		}
		seen := map[uint64]bool{}
		for i := 0; i < 16; i++ {
			b, _ := s.Block(file, i)
			if seen[b.LBA] {
				return false
			}
			seen[b.LBA] = true
			got := make([]byte, PageBytes)
			_ = s.ReadBlock(b.LBA, got)
			if !bytes.Equal(got, want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRemapOnWriteMovesBlocks(t *testing.T) {
	s := New(0, 0, 1, 1000)
	s.RemapOnWrite = true
	f, _ := s.Create("lfs", 4, SeededInit(1))
	f.Marked = true
	var patches []pagetable.BlockAddr
	s.OnRemap(func(file *File, page int, nb pagetable.BlockAddr) {
		patches = append(patches, nb)
	})
	old, _ := s.Block(f, 2)
	data := make([]byte, PageBytes)
	data[0] = 0x5A
	if err := s.WriteBlock(old.LBA, data); err != nil {
		t.Fatal(err)
	}
	now, _ := s.Block(f, 2)
	if now.LBA == old.LBA {
		t.Fatal("LFS write did not move the block")
	}
	if len(patches) != 1 || patches[0].LBA != now.LBA {
		t.Fatalf("patches = %v", patches)
	}
	// New location reads the written data; old block is trimmed.
	buf := make([]byte, PageBytes)
	_ = s.ReadBlock(now.LBA, buf)
	if buf[0] != 0x5A {
		t.Fatal("data lost across LFS write")
	}
	_ = s.ReadBlock(old.LBA, buf)
	if buf[0] != 0 {
		t.Fatal("old block still live")
	}
	if s.Remaps() != 1 || s.Writes() != 1 {
		t.Fatalf("remaps=%d writes=%d", s.Remaps(), s.Writes())
	}
}

func TestRemapOnWriteUnmappedBlockInPlace(t *testing.T) {
	s := New(0, 0, 1, 1000)
	s.RemapOnWrite = true
	data := make([]byte, PageBytes)
	data[0] = 7
	if err := s.WriteBlock(500, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageBytes)
	_ = s.ReadBlock(500, buf)
	if buf[0] != 7 {
		t.Fatal("in-place write to unmapped block lost")
	}
}

func TestRemapOnWriteSequenceProperty(t *testing.T) {
	// Repeated LFS writes to random pages: mapping stays a bijection and
	// every page reads back its most recent write.
	f2 := func(writes []uint8) bool {
		s := New(0, 0, 1, 100000)
		s.RemapOnWrite = true
		file, err := s.Create("f", 8, SeededInit(9))
		if err != nil {
			return false
		}
		last := map[int]byte{}
		buf := make([]byte, PageBytes)
		for i, w := range writes {
			page := int(w % 8)
			blk, _ := s.Block(file, page)
			buf[0] = byte(i + 1)
			if err := s.WriteBlock(blk.LBA, buf); err != nil {
				return false
			}
			last[page] = byte(i + 1)
		}
		seen := map[uint64]bool{}
		for p := 0; p < 8; p++ {
			blk, _ := s.Block(file, p)
			if seen[blk.LBA] {
				return false
			}
			seen[blk.LBA] = true
			_ = s.ReadBlock(blk.LBA, buf)
			if want, wrote := last[p]; wrote && buf[0] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f2, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
