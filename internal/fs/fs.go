// Package fs is the storage-layout substrate: a minimal extent-style file
// system that maps file pages to logical block addresses on one NVMe
// namespace. It is the component that "bridges the semantic gap between CPU
// and kernel" — the OS consults it to LBA-augment PTEs (Section IV-B), and
// its block-remap hook models copy-on-write/log-structured file systems
// that must patch LBA-augmented PTEs when a file's block mapping changes.
//
// File contents are deterministic: each file carries an initializer that
// generates any page's bytes on demand, and explicit writes override pages.
// This lets the simulation address terabyte-scale layouts while only paying
// host memory for blocks actually written.
package fs

import (
	"errors"
	"fmt"

	"hwdp/internal/mem"
	"hwdp/internal/pagetable"
)

// PageBytes is the file page size (one 4 KiB block per page: the simulated
// namespaces use 4 KiB logical blocks, so a page is exactly one block).
const PageBytes = mem.PageSize

// Initializer produces the pristine content of file page `page` into buf
// (len PageBytes).
type Initializer func(page int, buf []byte)

// ZeroInit is the initializer for all-zero files.
func ZeroInit(page int, buf []byte) {
	for i := range buf {
		buf[i] = 0
	}
}

// SeededInit returns an initializer generating pseudorandom page contents
// from a seed; used by FIO-style raw files.
func SeededInit(seed uint64) Initializer {
	return func(page int, buf []byte) {
		s := seed ^ (uint64(page)+1)*0x9e3779b97f4a7c15
		for i := 0; i < len(buf); i += 8 {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			v := s
			for j := 0; j < 8 && i+j < len(buf); j++ {
				buf[i+j] = byte(v)
				v >>= 8
			}
		}
	}
}

// File is one file: a size and a per-page block mapping.
type File struct {
	Name  string
	pages []uint64 // page index -> LBA
	init  Initializer
	// Marked is set when the file is mapped with fast-mmap so that block
	// remaps are propagated to LBA-augmented PTEs (Section IV-B: "when a
	// file is mapped using LBA augmentation, the file is marked").
	Marked bool
}

// Pages returns the file length in pages.
func (f *File) Pages() int { return len(f.pages) }

// ErrNoSpace is returned when the namespace has no free blocks.
var ErrNoSpace = errors.New("fs: out of space")

// ErrBadPage is returned for out-of-range page indices.
var ErrBadPage = errors.New("fs: page out of range")

type blockRef struct {
	file *File
	page int
}

// RemapFunc observes block-mapping changes of marked files so the kernel
// can patch non-present LBA-augmented PTEs.
type RemapFunc func(f *File, page int, newBlock pagetable.BlockAddr)

// FS is one file system on one namespace of one device.
type FS struct {
	sid     uint8
	devID   uint8
	nsid    uint32
	blocks  uint64
	nextLBA uint64

	// RemapOnWrite turns the file system log-structured: every block
	// write goes to a freshly allocated location and the old block is
	// invalidated — the CoW/LFS behavior (Btrfs/ZFS-style) whose block
	// remaps must be reflected into LBA-augmented PTEs (Section IV-B).
	// Log cleaning is not modeled; the device is sized for the run.
	RemapOnWrite bool

	files     map[string]*File
	byLBA     map[uint64]blockRef
	overrides map[uint64][]byte
	onRemap   RemapFunc

	writes uint64
	remaps uint64
}

// New formats a file system over a namespace of the given capacity (in
// blocks) living at <sid, devID> / nsid.
func New(sid, devID uint8, nsid uint32, blocks uint64) *FS {
	return &FS{
		sid: sid, devID: devID, nsid: nsid, blocks: blocks,
		files:     make(map[string]*File),
		byLBA:     make(map[uint64]blockRef),
		overrides: make(map[uint64][]byte),
	}
}

// NSID returns the namespace the file system lives on.
func (s *FS) NSID() uint32 { return s.nsid }

// OnRemap installs the remap observer (at most one; the kernel).
func (s *FS) OnRemap(fn RemapFunc) { s.onRemap = fn }

// FreeBlocks returns the number of unallocated blocks.
func (s *FS) FreeBlocks() uint64 { return s.blocks - s.nextLBA }

func (s *FS) allocBlock() (uint64, error) {
	if s.nextLBA >= s.blocks {
		return 0, ErrNoSpace
	}
	lba := s.nextLBA
	s.nextLBA++
	return lba, nil
}

// Create allocates a file of the given page count. init may be nil (zero
// content).
func (s *FS) Create(name string, pages int, init Initializer) (*File, error) {
	if _, dup := s.files[name]; dup {
		return nil, fmt.Errorf("fs: file %q exists", name)
	}
	if init == nil {
		init = ZeroInit
	}
	f := &File{Name: name, pages: make([]uint64, pages), init: init}
	for i := 0; i < pages; i++ {
		lba, err := s.allocBlock()
		if err != nil {
			return nil, err
		}
		f.pages[i] = lba
		s.byLBA[lba] = blockRef{f, i}
	}
	s.files[name] = f
	return f, nil
}

// Open returns an existing file.
func (s *FS) Open(name string) (*File, error) {
	f, ok := s.files[name]
	if !ok {
		return nil, fmt.Errorf("fs: no such file %q", name)
	}
	return f, nil
}

// Block returns the block address of a file page — what the kernel records
// into an LBA-augmented PTE.
func (s *FS) Block(f *File, page int) (pagetable.BlockAddr, error) {
	if page < 0 || page >= len(f.pages) {
		return pagetable.BlockAddr{}, fmt.Errorf("%w: %s[%d]", ErrBadPage, f.Name, page)
	}
	return pagetable.BlockAddr{SID: s.sid, DeviceID: s.devID, LBA: f.pages[page]}, nil
}

// Remap moves a file page to a freshly allocated block (a CoW or
// log-structured update) and notifies the remap observer if the file is
// marked. It returns the new block address.
func (s *FS) Remap(f *File, page int) (pagetable.BlockAddr, error) {
	if page < 0 || page >= len(f.pages) {
		return pagetable.BlockAddr{}, fmt.Errorf("%w: %s[%d]", ErrBadPage, f.Name, page)
	}
	newLBA, err := s.allocBlock()
	if err != nil {
		return pagetable.BlockAddr{}, err
	}
	old := f.pages[page]
	// Preserve current content across the move.
	if data, ok := s.overrides[old]; ok {
		s.overrides[newLBA] = data
		delete(s.overrides, old)
	} else {
		buf := make([]byte, PageBytes)
		f.init(page, buf)
		s.overrides[newLBA] = buf
	}
	delete(s.byLBA, old)
	f.pages[page] = newLBA
	s.byLBA[newLBA] = blockRef{f, page}
	s.remaps++
	b := pagetable.BlockAddr{SID: s.sid, DeviceID: s.devID, LBA: newLBA}
	if f.Marked && s.onRemap != nil {
		s.onRemap(f, page, b)
	}
	return b, nil
}

// Remaps returns the cumulative remap count.
func (s *FS) Remaps() uint64 { return s.remaps }

// ReadBlock fills buf (len PageBytes) with the content of the block at lba
// — the device's DMA source for reads.
func (s *FS) ReadBlock(lba uint64, buf []byte) error {
	if data, ok := s.overrides[lba]; ok {
		copy(buf, data)
		return nil
	}
	ref, ok := s.byLBA[lba]
	if !ok {
		// Unallocated block: reads return zeros, like a trimmed SSD.
		ZeroInit(0, buf)
		return nil
	}
	ref.file.init(ref.page, buf)
	return nil
}

// WriteBlock stores data (len PageBytes) at lba — the device's DMA sink for
// writes (page writeback). In RemapOnWrite mode the data lands at a newly
// allocated block instead, the file's mapping moves, and marked files get
// their LBA-augmented PTEs patched via the remap observer.
func (s *FS) WriteBlock(lba uint64, data []byte) error {
	if lba >= s.blocks {
		return fmt.Errorf("fs: write beyond device: lba %d", lba)
	}
	s.writes++
	if s.RemapOnWrite {
		if ref, ok := s.byLBA[lba]; ok {
			newLBA, err := s.allocBlock()
			if err != nil {
				return err
			}
			cp := make([]byte, PageBytes)
			copy(cp, data)
			delete(s.overrides, lba)
			delete(s.byLBA, lba)
			s.overrides[newLBA] = cp
			ref.file.pages[ref.page] = newLBA
			s.byLBA[newLBA] = ref
			s.remaps++
			if ref.file.Marked && s.onRemap != nil {
				s.onRemap(ref.file, ref.page,
					pagetable.BlockAddr{SID: s.sid, DeviceID: s.devID, LBA: newLBA})
			}
			return nil
		}
		// Write to an unmapped block (trimmed): store in place.
	}
	cp := make([]byte, PageBytes)
	copy(cp, data)
	s.overrides[lba] = cp
	return nil
}

// Writes returns the cumulative block-write count.
func (s *FS) Writes() uint64 { return s.writes }
