package campaign

import (
	"encoding/json"
	"strings"
	"testing"

	"hwdp/internal/fault"
	"hwdp/internal/kernel"
	"hwdp/internal/sim"
)

// quickScenario is a small oversubscribed HWDP run under a fault storm
// with every pressure mechanism armed — the closest thing to a worst case
// that still finishes fast.
func quickScenario() Scenario {
	return Scenario{
		Name:           "test/all-on",
		Kind:           "test",
		Scheme:         kernel.HWDP,
		MemoryMB:       4,
		OversubRatio:   2.0,
		Procs:          2,
		Threads:        2,
		OpsPerThread:   1500,
		WriteFrac:      0.6,
		DirtyRatioFrac: 0.15,
		OOMStallLimit:  300 * sim.Microsecond,
		Faults: []fault.Rule{
			{Kind: fault.Transient, Prob: 0.03},
			{Kind: fault.Spike, Prob: 0.02, SpikeFactor: 10},
		},
		Seed: 7,
	}
}

// A campaign scenario must complete with a clean audit: the watchdog ran,
// recorded nothing, and every allocated frame is accounted for.
func TestScenarioCleanAudit(t *testing.T) {
	r := Run(quickScenario())
	if r.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if r.WatchdogRuns == 0 {
		t.Fatal("watchdog never ticked")
	}
	if len(r.WatchdogViolations) != 0 {
		t.Fatalf("watchdog violations: %v", r.WatchdogViolations)
	}
	if r.LeakedFrames != 0 {
		t.Fatalf("%d frames leaked", r.LeakedFrames)
	}
}

// The pressure machinery must actually engage under the storm — a clean
// audit of mechanisms that never fired proves nothing.
func TestScenarioExercisesPressure(t *testing.T) {
	r := Run(quickScenario())
	if r.Evictions == 0 {
		t.Fatal("no evictions despite 2x oversubscription")
	}
	if r.FlusherRuns == 0 && r.ThrottledWrites == 0 {
		t.Fatal("dirty-ratio machinery never engaged")
	}
	total := uint64(0)
	for _, row := range r.PSI {
		total += row.Stalls
	}
	if total == 0 {
		t.Fatal("no pressure stalls recorded")
	}
}

// Same scenario, same seed, same report: campaigns must be deterministic
// so the manifest is a regression artifact, not noise.
func TestScenarioDeterministic(t *testing.T) {
	a, err := json.Marshal(Run(quickScenario()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(Run(quickScenario()))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("two runs of one scenario differ:\n%s\n%s", a, b)
	}
}

// An OSDP scenario must run the same traffic through the software path
// (no SMU involvement) and still audit clean.
func TestScenarioOSDPClean(t *testing.T) {
	sc := quickScenario()
	sc.Scheme = kernel.OSDP
	sc.DirtyRatioFrac = 0 // throttle scenario is HWDP's; keep OSDP minimal
	r := Run(sc)
	if r.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if r.FallbackRate != 0 {
		t.Fatalf("OSDP has no hardware path to fall back from (rate %f)", r.FallbackRate)
	}
	if len(r.WatchdogViolations) != 0 || r.LeakedFrames != 0 {
		t.Fatalf("violations %v leaked %d", r.WatchdogViolations, r.LeakedFrames)
	}
}

// The manifest and the comparison figure render from results in scenario
// order and summarize cleanliness.
func TestManifestAndComparison(t *testing.T) {
	results := []Result{
		{Name: "ladder/hwdp/r1.5", Kind: "ladder", Scheme: "HWDP", OversubRatio: 1.5,
			P999US: 120.5, FallbackRate: 0.01},
		{Name: "ladder/osdp/r1.5", Kind: "ladder", Scheme: "OSDP", OversubRatio: 1.5,
			P999US: 240.1},
		{Name: "oom/hwdp", Kind: "oom", Scheme: "HWDP", OversubRatio: 2.5,
			LeakedFrames: 3},
	}
	m := NewManifest(results)
	if m.Scenarios != 3 || m.Clean != 2 {
		t.Fatalf("summary: scenarios %d clean %d", m.Scenarios, m.Clean)
	}
	fig := RenderComparison(results)
	for _, want := range []string{"HWDP p99.9", "OSDP p99.9", "120.50", "240.10", "1.5"} {
		if !strings.Contains(fig, want) {
			t.Fatalf("comparison figure missing %q:\n%s", want, fig)
		}
	}
	if strings.Contains(fig, "oom/hwdp") {
		t.Fatal("non-ladder scenario leaked into the comparison figure")
	}
}

// DefaultScenarios covers both schemes, the full ladder and both
// mechanism scenarios, with unique names and positive workloads.
func TestDefaultScenarios(t *testing.T) {
	scs := DefaultScenarios(true)
	names := map[string]bool{}
	kinds := map[string]int{}
	for _, sc := range scs {
		if names[sc.Name] {
			t.Fatalf("duplicate scenario name %s", sc.Name)
		}
		names[sc.Name] = true
		kinds[sc.Kind]++
		if sc.Threads <= 0 || sc.OpsPerThread <= 0 || sc.MemoryMB <= 0 {
			t.Fatalf("degenerate scenario %+v", sc)
		}
	}
	if kinds["ladder"] != 6 || kinds["throttle"] != 1 || kinds["oom"] != 1 {
		t.Fatalf("scenario mix %v", kinds)
	}
}
