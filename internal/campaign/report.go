package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"

	"hwdp/internal/sweep"
)

// ManifestSchema versions the CAMPAIGN_hwdp.json layout.
const ManifestSchema = 1

// Manifest is the machine-readable record of one campaign, written as
// CAMPAIGN_hwdp.json for CI artifacts. Scenario results appear in
// scenario-list order, so the manifest is deterministic for a fixed
// scenario set (host fields aside).
type Manifest struct {
	Schema    int    `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// Scenarios/Clean/Violations summarize the campaign: a scenario is
	// clean when its watchdog recorded nothing and no frames leaked.
	Scenarios  int `json:"scenarios"`
	Clean      int `json:"clean"`
	Violations int `json:"violations"`
	// Results is one report per scenario, in scenario order.
	Results []Result `json:"results"`
}

// NewManifest summarizes campaign results.
func NewManifest(results []Result) Manifest {
	m := Manifest{
		Schema:    ManifestSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Scenarios: len(results),
		Results:   results,
	}
	for _, r := range results {
		m.Violations += len(r.WatchdogViolations)
		if len(r.WatchdogViolations) == 0 && r.LeakedFrames == 0 {
			m.Clean++
		}
	}
	return m
}

// Write marshals the manifest to path as indented JSON.
func (m Manifest) Write(path string) error {
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}

// Units wraps the scenarios as uncacheable sweep units (a campaign runs
// under chaos by design; its results must always be regenerated). Each
// unit's Run stores its Result into the returned slice at the scenario's
// index and renders the per-scenario report text.
func Units(scenarios []Scenario) ([]sweep.Unit, []Result) {
	results := make([]Result, len(scenarios))
	units := make([]sweep.Unit, len(scenarios))
	for i, sc := range scenarios {
		i, sc := i, sc
		units[i] = sweep.Unit{
			Name:        "campaign/" + sc.Name,
			Kind:        "campaign",
			Fingerprint: sc.Fingerprint(),
			Uncacheable: true,
			Run: func() (string, error) {
				r := Run(sc)
				results[i] = r
				if len(r.WatchdogViolations) > 0 {
					return "", fmt.Errorf("campaign %s: %d watchdog violations, first: %s",
						sc.Name, len(r.WatchdogViolations), r.WatchdogViolations[0])
				}
				if r.LeakedFrames != 0 {
					return "", fmt.Errorf("campaign %s: %d frames leaked", sc.Name, r.LeakedFrames)
				}
				return RenderResult(r), nil
			},
		}
	}
	return units, results
}

// RenderResult renders one scenario's degradation report.
func RenderResult(r Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== campaign %s (%s, %.1fx memory) ==\n", r.Name, r.Scheme, r.OversubRatio)
	fmt.Fprintf(&b, "  ops %d (errors %d)  throughput %.0f ops/s\n", r.Ops, r.Errors, r.Throughput)
	fmt.Fprintf(&b, "  latency us: p50 %.2f  p99 %.2f  p99.9 %.2f\n", r.P50US, r.P99US, r.P999US)
	fmt.Fprintf(&b, "  fallback rate %.4f  evictions %d  writebacks %d  backlog waits %d\n",
		r.FallbackRate, r.Evictions, r.Writebacks, r.BacklogWaits)
	fmt.Fprintf(&b, "  pressure: alloc stalls %d  throttled writes %d  flusher %d/%d  sq-full %d\n",
		r.AllocStalls, r.ThrottledWrites, r.FlusherRuns, r.FlusherPages, r.SQFullWaits)
	fmt.Fprintf(&b, "  oom: kills %d  reaped pages %d\n", r.OOMKills, r.OOMReapedPages)
	for _, row := range r.PSI {
		if row.Stalls == 0 {
			continue
		}
		fmt.Fprintf(&b, "  psi %-18s stalls %6d  task %10.2fus  some %10.2fus\n",
			row.Kind, row.Stalls, row.TaskTimeUS, row.SomeTimeUS)
	}
	fmt.Fprintf(&b, "  audit: watchdog ticks %d  violations %d  leaked frames %d\n",
		r.WatchdogRuns, len(r.WatchdogViolations), r.LeakedFrames)
	return b.String()
}

// RenderComparison renders the beyond-paper degradation figure: tail
// latency (p99.9) and OS-fallback rate for hardware vs OS demand paging
// as oversubscription grows, from the campaign's ladder scenarios.
func RenderComparison(results []Result) string {
	type cell struct {
		p999     float64
		fallback float64
		oomKills uint64
		ok       bool
	}
	byKey := map[string]cell{}
	var ratios []float64
	var schemes []string
	seenRatio := map[float64]bool{}
	seenScheme := map[string]bool{}
	for _, r := range results {
		if r.Kind != "ladder" {
			continue
		}
		byKey[fmt.Sprintf("%s|%.3f", r.Scheme, r.OversubRatio)] = cell{
			p999: r.P999US, fallback: r.FallbackRate, oomKills: r.OOMKills, ok: true,
		}
		if !seenRatio[r.OversubRatio] {
			seenRatio[r.OversubRatio] = true
			ratios = append(ratios, r.OversubRatio)
		}
		if !seenScheme[r.Scheme] {
			seenScheme[r.Scheme] = true
			schemes = append(schemes, r.Scheme)
		}
	}
	var b strings.Builder
	b.WriteString("== Graceful degradation under oversubscription (fault storm) ==\n")
	b.WriteString("   p99.9 access latency (us) and OS-fallback rate by memory ratio\n\n")
	fmt.Fprintf(&b, "   %-8s", "ratio")
	for _, s := range schemes {
		fmt.Fprintf(&b, " %14s %14s", s+" p99.9", s+" fallback")
	}
	b.WriteString("\n")
	for _, ratio := range ratios {
		fmt.Fprintf(&b, "   %-8.1f", ratio)
		for _, s := range schemes {
			c := byKey[fmt.Sprintf("%s|%.3f", s, ratio)]
			if !c.ok {
				fmt.Fprintf(&b, " %14s %14s", "-", "-")
				continue
			}
			fmt.Fprintf(&b, " %14.2f %14.4f", c.p999, c.fallback)
		}
		b.WriteString("\n")
	}
	b.WriteString("\n   (fallback rate: fraction of hardware misses bounced to the OS\n")
	b.WriteString("    fault handler; OSDP takes every miss in software, so its rate\n")
	b.WriteString("    is 0 by construction. Latency-exact comparison: see fig/12.)\n")
	return b.String()
}
