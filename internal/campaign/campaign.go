// Package campaign composes the fault injector, the memory-pressure
// machinery and the invariant watchdog into chaos-pressure campaigns:
// named oversubscription scenarios that drive a machine well past its
// physical memory under deliberately hostile device behavior, audit every
// structural invariant while the storm runs, and report graceful-
// degradation metrics (tail latency, fallback rate, OOM kills, pressure
// stalls) in a deterministic manifest.
//
// A scenario is a fixed-seed experiment: same scenario, same bytes out.
// The campaign runner wraps scenarios as uncacheable sweep units so the
// existing orchestrator provides parallelism, timeouts and panic capture;
// results are collected index-aligned and rendered in scenario order.
package campaign

import (
	"fmt"

	"hwdp/internal/check"
	"hwdp/internal/core"
	"hwdp/internal/fault"
	"hwdp/internal/kernel"
	"hwdp/internal/metrics"
	"hwdp/internal/mmu"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
	"hwdp/internal/workload"
)

// Scenario is one chaos-pressure experiment: a scheme and memory size, an
// oversubscription ratio, a thread/process population, a write mix, the
// pressure knobs to arm, and the fault storm to run under.
type Scenario struct {
	// Name identifies the scenario ("ladder/hwdp/r2.0").
	Name string `json:"name"`
	// Kind groups scenarios for reporting: "ladder" rows feed the
	// HW-vs-OS comparison figure; "throttle" and "oom" exercise one
	// mechanism each.
	Kind string `json:"kind"`
	// Scheme selects the demand-paging implementation under test.
	Scheme kernel.Scheme `json:"-"`
	// MemoryMB is physical memory; OversubRatio sizes the anonymous
	// working set as ratio * frames (2.0 = twice physical memory).
	MemoryMB     int     `json:"memory_mb"`
	OversubRatio float64 `json:"oversub_ratio"`
	// Procs splits the working set across this many processes (the OOM
	// killer needs victims to choose between); Threads are spread over
	// the processes round-robin, one per physical core.
	Procs   int `json:"procs"`
	Threads int `json:"threads"`
	// OpsPerThread bounds the run; WriteFrac is the store fraction.
	OpsPerThread int     `json:"ops_per_thread"`
	WriteFrac    float64 `json:"write_frac"`
	// DirtyRatioFrac arms writeback throttling (0 = off);
	// OOMStallLimit arms the OOM killer (0 = off).
	DirtyRatioFrac float64  `json:"dirty_ratio_frac"`
	OOMStallLimit  sim.Time `json:"oom_stall_limit_ps"`
	// Faults is the device-level storm to run under.
	Faults []fault.Rule `json:"-"`
	// Seed drives all randomness.
	Seed uint64 `json:"seed"`
}

// Fingerprint serializes every input that affects the scenario's output.
func (sc Scenario) Fingerprint() string {
	return fmt.Sprintf("%s|%s|%s|%dMB|r%.3f|p%d/t%d|ops%d|w%.3f|dirty%.3f|oom%d|faults%+v|seed%d",
		sc.Name, sc.Kind, sc.Scheme, sc.MemoryMB, sc.OversubRatio,
		sc.Procs, sc.Threads, sc.OpsPerThread, sc.WriteFrac,
		sc.DirtyRatioFrac, int64(sc.OOMStallLimit), sc.Faults, sc.Seed)
}

// PSIRow is one stall kind's pressure summary.
type PSIRow struct {
	Kind       string  `json:"kind"`
	Stalls     uint64  `json:"stalls"`
	TaskTimeUS float64 `json:"task_time_us"`
	SomeTimeUS float64 `json:"some_time_us"`
}

// Result is the degradation report of one scenario run.
type Result struct {
	Name         string  `json:"name"`
	Kind         string  `json:"kind"`
	Scheme       string  `json:"scheme"`
	OversubRatio float64 `json:"oversub_ratio"`

	// Workload outcome.
	Ops        uint64  `json:"ops"`
	Errors     uint64  `json:"errors"`
	Throughput float64 `json:"throughput_ops_per_sec"`
	P50US      float64 `json:"p50_us"`
	P99US      float64 `json:"p99_us"`
	P999US     float64 `json:"p999_us"`

	// Degradation counters.
	FallbackRate    float64 `json:"fallback_rate"` // HW misses bounced to the OS
	OOMKills        uint64  `json:"oom_kills"`
	OOMReapedPages  uint64  `json:"oom_reaped_pages"`
	ThrottledWrites uint64  `json:"throttled_writes"`
	AllocStalls     uint64  `json:"alloc_stalls"`
	SQFullWaits     uint64  `json:"sq_full_waits"`
	FlusherRuns     uint64  `json:"flusher_runs"`
	FlusherPages    uint64  `json:"flusher_pages"`
	Evictions       uint64  `json:"evictions"`
	Writebacks      uint64  `json:"writebacks"`
	BacklogWaits    uint64  `json:"backlog_waits"`

	// Pressure-stall accounting, one row per stall kind.
	PSI []PSIRow `json:"psi"`

	// Audit outcome: the watchdog's tick count, every violation it saw,
	// and the frames unaccounted for after the run settled (both must be
	// zero/empty for a healthy machine).
	WatchdogRuns       int      `json:"watchdog_runs"`
	WatchdogViolations []string `json:"watchdog_violations"`
	LeakedFrames       int      `json:"leaked_frames"`
}

// watchdogPeriod is the audit cadence during a campaign run.
const watchdogPeriod = 500 * sim.Microsecond

// pressureWork hammers an anonymous region: a sequential populate sweep
// first (so the full working set is touched and oversubscription actually
// evicts), then a scrambled-zipfian mix of loads and stores.
type pressureWork struct {
	sys       *core.System
	base      pagetable.VAddr
	pages     int
	gen       workload.KeyGen
	writeFrac float64
	seq       int
}

// Op issues one access; a store with probability writeFrac.
func (w *pressureWork) Op(th *kernel.Thread, rng *sim.Rand, done func(err error)) {
	var page uint64
	if w.seq < w.pages {
		page = uint64(w.seq)
		w.seq++
	} else {
		page = w.gen.Next(rng)
	}
	write := rng.Float64() < w.writeFrac
	va := w.base + pagetable.VAddr(page)*4096
	w.sys.K.Access(th, va, write, func(mmu.Result) { done(nil) })
}

// Run executes one scenario to completion and returns its report. The
// machine is audited by a watchdog for the whole run; after the workload
// finishes, the run settles (in-flight writebacks drain) and the frame
// ledger is balanced: every allocated frame must be accounted for by a
// page-cache entry, a mapped PTE, the WAL buffer or an SMU queue.
func Run(sc Scenario) Result {
	cfg := core.DefaultConfig(sc.Scheme)
	cfg.MemoryBytes = uint64(sc.MemoryMB) << 20
	cfg.Seed = sc.Seed
	cfg.FaultRules = sc.Faults
	cfg.Kernel.DirtyRatioFrac = sc.DirtyRatioFrac
	cfg.Kernel.OOMStallLimit = sc.OOMStallLimit
	sys := cfg.Build()

	psi := metrics.NewPSI()
	sys.K.SetPSI(psi)
	for _, u := range sys.SMUs {
		u.SetPSI(psi)
	}
	wd := check.NewWatchdog(sys, watchdogPeriod)

	// Working set: ratio * frames anonymous pages, split over the
	// processes. Process 0 is the system's initial process.
	procs := []*kernel.Process{sys.Proc}
	for len(procs) < sc.Procs {
		procs = append(procs, sys.K.NewProcess())
	}
	totalPages := int(float64(sys.Mem.Frames()) * sc.OversubRatio)
	perProc := totalPages / len(procs)
	fast := sc.Scheme != kernel.OSDP
	prot := pagetable.Prot{Write: true, User: true}
	bases := make([]pagetable.VAddr, len(procs))
	for i, p := range procs {
		va, err := sys.K.MmapAnon(p, 0, 0, perProc, prot, fast)
		if err != nil {
			panic(fmt.Sprintf("campaign: mmap %d pages for proc %d: %v", perProc, i, err))
		}
		bases[i] = va
	}

	// Threads round-robin over processes, one per physical core so the
	// kernel's background threads keep their SMT siblings.
	assignments := make([]workload.Assignment, sc.Threads)
	for i := 0; i < sc.Threads; i++ {
		pi := i % len(procs)
		w := &pressureWork{
			sys:       sys,
			base:      bases[pi],
			pages:     perProc,
			gen:       workload.Scrambled{Gen: workload.NewZipfian(uint64(perProc), workload.ZipfTheta), N: uint64(perProc)},
			writeFrac: sc.WriteFrac,
		}
		assignments[i] = workload.Assignment{Th: sys.K.NewThread(procs[pi], 2*i), W: w}
	}
	results := workload.RunMixed(sys, assignments, workload.RunOptions{OpsPerThread: sc.OpsPerThread})

	// Settle: let in-flight writebacks, reclaim batches and parked
	// commands drain so the frame ledger can be balanced.
	leaked := func() int {
		outstanding := int(sys.Mem.Allocs() - sys.Mem.Frees())
		accounted := sys.K.AccountedFrames()
		for _, u := range sys.SMUs {
			accounted += u.FramesHeld()
		}
		return outstanding - accounted
	}
	for i := 0; i < 50 && leaked() != 0; i++ {
		sys.RunFor(2 * sim.Millisecond)
	}
	wd.Stop()

	merged := workload.Merge(results)
	ks := sys.K.Stats()
	ms := sys.MMU.Stats()
	res := Result{
		Name:         sc.Name,
		Kind:         sc.Kind,
		Scheme:       sc.Scheme.String(),
		OversubRatio: sc.OversubRatio,

		Ops:        merged.Ops,
		Errors:     merged.Errors,
		Throughput: merged.Throughput(),
		P50US:      float64(merged.Lat.Percentile(50)) / 1e6,
		P99US:      float64(merged.Lat.Percentile(99)) / 1e6,
		P999US:     float64(merged.Lat.Percentile(99.9)) / 1e6,

		OOMKills:        ks.OOMKills,
		OOMReapedPages:  ks.OOMReapedPages,
		ThrottledWrites: ks.ThrottledWrites,
		AllocStalls:     ks.AllocStalls,
		SQFullWaits:     ks.SQFullWaits,
		FlusherRuns:     ks.FlusherRuns,
		FlusherPages:    ks.FlusherPages,
		Evictions:       ks.Evictions,
		Writebacks:      ks.Writebacks,
		BacklogWaits:    sys.BacklogWait().Count(),

		WatchdogRuns: wd.Runs(),
		LeakedFrames: leaked(),
	}
	if ms.HWMisses > 0 {
		res.FallbackRate = float64(ms.HWBounced) / float64(ms.HWMisses)
	}
	for k := metrics.StallKind(0); k < metrics.NumStallKinds; k++ {
		res.PSI = append(res.PSI, PSIRow{
			Kind:       k.String(),
			Stalls:     psi.Stalls(k),
			TaskTimeUS: float64(psi.TaskTime(k)) / 1e6,
			SomeTimeUS: float64(psi.SomeTime(k)) / 1e6,
		})
	}
	for _, v := range wd.Violations() {
		res.WatchdogViolations = append(res.WatchdogViolations, v.String())
	}
	if wd.Truncated() {
		res.WatchdogViolations = append(res.WatchdogViolations,
			fmt.Sprintf("... truncated at %d violations", len(wd.Violations())))
	}
	return res
}

// stormRules is the shared device-level chaos: recoverable media errors
// plus latency spikes, on both the SMU and OS queues.
func stormRules() []fault.Rule {
	return []fault.Rule{
		{Kind: fault.Transient, Prob: 0.02},
		{Kind: fault.Spike, Prob: 0.01, SpikeFactor: 8},
	}
}

// DefaultScenarios returns the campaign: an oversubscription ladder under
// a fault storm for HWDP vs OSDP (the comparison figure's rows), a
// dirty-writeback throttling scenario and an OOM scenario. quick shrinks
// every scenario for CI smoke runs.
func DefaultScenarios(quick bool) []Scenario {
	// OpsPerThread must cover the largest per-thread populate sweep
	// (ratio 2.5 * frames / procs) with headroom for the zipfian phase,
	// or oversubscription never materializes.
	memMB, threads, ops := 16, 4, 10000
	if quick {
		memMB, threads, ops = 4, 2, 2600
	}
	var out []Scenario
	for _, scheme := range []kernel.Scheme{kernel.HWDP, kernel.OSDP} {
		for _, ratio := range []float64{0.9, 1.5, 2.0} {
			out = append(out, Scenario{
				Name:         fmt.Sprintf("ladder/%s/r%.1f", schemeSlug(scheme), ratio),
				Kind:         "ladder",
				Scheme:       scheme,
				MemoryMB:     memMB,
				OversubRatio: ratio,
				Procs:        1,
				Threads:      threads,
				OpsPerThread: ops,
				WriteFrac:    0.3,
				Faults:       stormRules(),
				Seed:         1,
			})
		}
	}
	out = append(out, Scenario{
		Name:         "throttle/hwdp",
		Kind:         "throttle",
		Scheme:       kernel.HWDP,
		MemoryMB:     memMB,
		OversubRatio: 1.2,
		Procs:        1,
		Threads:      threads,
		// Throttled writes burn 100 µs slices each; half the op budget
		// still throttles thousands of times without dominating the
		// campaign's virtual (and wall) time.
		OpsPerThread: ops / 2,
		WriteFrac:    0.8,
		// A tight dirty budget forces both background writeback and
		// write throttling to engage.
		DirtyRatioFrac: 0.10,
		Faults:         stormRules(),
		Seed:           2,
	})
	out = append(out, Scenario{
		Name:         "oom/hwdp",
		Kind:         "oom",
		Scheme:       kernel.HWDP,
		MemoryMB:     memMB,
		OversubRatio: 2.5,
		Procs:        3,
		Threads:      threads,
		OpsPerThread: ops,
		WriteFrac:    0.9,
		// Slow writebacks (latency spikes on writes) hold reclaim back
		// long enough for allocation stalls to cross the OOM limit.
		OOMStallLimit: 200 * sim.Microsecond,
		Faults: append(stormRules(),
			fault.Rule{Kind: fault.Spike, Prob: 0.5, WritesOnly: true, SpikeFactor: 40}),
		Seed: 3,
	})
	return out
}

// schemeSlug is the lower-case scheme name used in scenario names.
func schemeSlug(s kernel.Scheme) string {
	switch s {
	case kernel.HWDP:
		return "hwdp"
	case kernel.SWDP:
		return "swdp"
	case kernel.OSDP:
		return "osdp"
	}
	return "unknown"
}
