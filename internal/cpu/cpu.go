// Package cpu models the processor: physical cores with 2-way SMT, user
// and kernel instruction execution, pipeline stalls, and the
// microarchitectural resource-pollution effect that the paper measures
// (Figures 4 and 14): frequent OS intervention evicts cache and
// branch-predictor state, lowering user-level IPC; hardware-handled misses
// leave that state warm.
//
// The model tracks a per-hardware-thread "warmth" w in [0,1]. Kernel
// instructions decay it exponentially; user instructions restore it. User
// IPC scales between IPCFloor·BaseIPC (cold) and BaseIPC (warm), and
// user-level miss-event rates scale inversely with warmth. When both SMT
// siblings issue concurrently each runs at SMTShare of its solo speed
// (aggregate throughput SMTShare×2 ≈ 1.3×); a sibling whose pipeline is
// stalled on an HWDP miss leaves its issue slots to the co-runner, the
// effect behind Figure 16.
package cpu

import (
	"fmt"
	"math"

	"hwdp/internal/sim"
)

// Params are the microarchitectural model constants.
type Params struct {
	ClockHz   float64 // core frequency
	BaseIPC   float64 // user IPC, warm, solo
	KernelIPC float64 // kernel-context IPC (used to convert time->instructions)
	SMTShare  float64 // per-thread relative speed when both siblings issue
	IPCFloor  float64 // fraction of BaseIPC at zero warmth

	PolluteInstr float64 // kernel instructions for one e-folding of warmth decay
	RecoverInstr float64 // user instructions for one e-folding of warmth recovery

	// Per-user-instruction miss rates: base (warm) and the additional rate
	// at zero warmth.
	L1MissBase, L1MissCold         float64
	L2MissBase, L2MissCold         float64
	LLCMissBase, LLCMissCold       float64
	BranchMissBase, BranchMissCold float64
}

// DefaultParams models the evaluation machine (Xeon E5-2640 v3, 2.8 GHz).
// Warmth constants are calibrated so the YCSB-C experiment reproduces the
// paper's +7.0% user-level IPC for HWDP over OSDP (Fig. 14).
func DefaultParams() Params {
	return Params{
		ClockHz:   float64(sim.DefaultClockHz),
		BaseIPC:   1.6,
		KernelIPC: 1.0,
		SMTShare:  0.65,
		IPCFloor:  0.55,

		PolluteInstr: 9000,
		RecoverInstr: 45000,

		L1MissBase: 0.020, L1MissCold: 0.028,
		L2MissBase: 0.0060, L2MissCold: 0.011,
		LLCMissBase: 0.0015, LLCMissCold: 0.0045,
		BranchMissBase: 0.0040, BranchMissCold: 0.0085,
	}
}

// ThreadState is what a hardware thread is doing right now.
type ThreadState int

// States. Stalled means the pipeline is blocked on an HWDP page miss: the
// context occupies the hardware thread but issues nothing, freeing shared
// resources for the sibling. Idle means nothing is scheduled.
const (
	Idle ThreadState = iota
	RunningUser
	RunningKernel
	Stalled
)

// String returns the thread state's display name.
func (s ThreadState) String() string {
	switch s {
	case Idle:
		return "idle"
	case RunningUser:
		return "user"
	case RunningKernel:
		return "kernel"
	case Stalled:
		return "stalled"
	}
	return "?"
}

// Counters are the per-hardware-thread performance monitoring counters the
// figures report.
type Counters struct {
	UserInstr    uint64
	KernelInstr  uint64
	UserTime     sim.Time
	KernelTime   sim.Time
	StallTime    sim.Time
	L1Miss       uint64
	L2Miss       uint64
	LLCMiss      uint64
	BranchMiss   uint64
	ContextSwaps uint64
}

// UserIPC returns the user-level instructions per cycle.
func (c Counters) UserIPC() float64 {
	cy := c.UserTime.ToCycles()
	if cy == 0 {
		return 0
	}
	return float64(c.UserInstr) / float64(cy)
}

// Add accumulates other into c.
func (c *Counters) Add(o Counters) {
	c.UserInstr += o.UserInstr
	c.KernelInstr += o.KernelInstr
	c.UserTime += o.UserTime
	c.KernelTime += o.KernelTime
	c.StallTime += o.StallTime
	c.L1Miss += o.L1Miss
	c.L2Miss += o.L2Miss
	c.LLCMiss += o.LLCMiss
	c.BranchMiss += o.BranchMiss
	c.ContextSwaps += o.ContextSwaps
}

// HWThread is one logical core (hardware thread).
type HWThread struct {
	ID    int
	cpu   *CPU
	core  *Core
	state ThreadState

	warmth float64
	Counters
}

// Core is one physical core with two hardware threads.
type Core struct {
	ID      int
	Threads [2]*HWThread
}

func (t *HWThread) sibling() *HWThread {
	if t.core.Threads[0] == t {
		return t.core.Threads[1]
	}
	return t.core.Threads[0]
}

// State returns the thread's current state.
func (t *HWThread) State() ThreadState { return t.state }

// Warmth returns the current microarchitectural warmth in [0,1].
func (t *HWThread) Warmth() float64 { return t.warmth }

// CPU is the full processor.
type CPU struct {
	eng     *sim.Engine
	params  Params
	cores   []*Core
	threads []*HWThread
	expApx  func(float64) float64

	// contFn is the pre-bound continuation callback and contPool its
	// carrier free list: every userChunk/KernelExec/Stall completion is
	// scheduled through the engine's pooled argument path instead of a
	// fresh closure (these fire once per execution phase — the hot path).
	contFn   func(any)
	contPool []*cpuCont
}

// cpuCont carries a deferred execution continuation: either user-chunk
// progress (remaining/chunk set) or a plain end-of-phase idle transition.
type cpuCont struct {
	t         *HWThread
	remaining uint64
	chunk     uint64
	done      func()
}

// New builds a CPU with the given number of physical cores (2 hardware
// threads each).
func New(eng *sim.Engine, cores int, p Params) *CPU {
	if cores <= 0 {
		panic("cpu: need at least one core")
	}
	c := &CPU{eng: eng, params: p}
	c.contFn = c.runCont
	for i := 0; i < cores; i++ {
		core := &Core{ID: i}
		for j := 0; j < 2; j++ {
			t := &HWThread{ID: i*2 + j, cpu: c, core: core, warmth: 0.5}
			core.Threads[j] = t
			c.threads = append(c.threads, t)
		}
		c.cores = append(c.cores, core)
	}
	return c
}

// Params returns the model constants.
func (c *CPU) Params() Params { return c.params }

// Cores returns the physical cores.
func (c *CPU) Cores() []*Core { return c.cores }

// Threads returns all hardware threads, [core0.t0, core0.t1, core1.t0, ...].
func (c *CPU) Threads() []*HWThread { return c.threads }

// Thread returns hardware thread i.
func (c *CPU) Thread(i int) *HWThread {
	if i < 0 || i >= len(c.threads) {
		panic(fmt.Sprintf("cpu: no hardware thread %d", i))
	}
	return c.threads[i]
}

func expNeg(x float64) float64 { return math.Exp(-x) }

// userIPCAt returns the effective user IPC for warmth w, ignoring SMT.
func (c *CPU) userIPCAt(w float64) float64 {
	p := c.params
	return p.BaseIPC * (p.IPCFloor + (1-p.IPCFloor)*w)
}

// smtFactor returns the thread's relative issue rate given its sibling's
// current state.
func (c *CPU) smtFactor(t *HWThread) float64 {
	sib := t.sibling().state
	if sib == RunningUser || sib == RunningKernel {
		return c.params.SMTShare
	}
	return 1.0
}

// userQuantum is the chunk size (in instructions) at which warmth and SMT
// sharing are resampled during user execution, bounding the sampling error
// when a sibling starts or stops mid-slice.
const userQuantum = 8192

// UserExec runs instr user instructions on t, then calls done. Execution is
// chunked into quanta; each quantum's speed reflects the thread's warmth
// (pollution) and whether the SMT sibling is issuing. Miss-event counters
// accrue per the warmth-dependent rates.
func (c *CPU) UserExec(t *HWThread, instr uint64, done func()) {
	if t.state != Idle {
		panic(fmt.Sprintf("cpu: UserExec on thread %d in state %v", t.ID, t.state))
	}
	t.state = RunningUser
	c.userChunk(t, instr, done)
}

func (c *CPU) userChunk(t *HWThread, remaining uint64, done func()) {
	p := c.params
	chunk := remaining
	if chunk > userQuantum {
		chunk = userQuantum
	}
	w := t.warmth
	ipc := c.userIPCAt(w) * c.smtFactor(t)
	dur := sim.Time(float64(chunk) / ipc / p.ClockHz * 1e12)
	if dur < sim.CyclePS {
		dur = sim.CyclePS
	}
	cold := 1 - w
	t.L1Miss += uint64(float64(chunk) * (p.L1MissBase + p.L1MissCold*cold))
	t.L2Miss += uint64(float64(chunk) * (p.L2MissBase + p.L2MissCold*cold))
	t.LLCMiss += uint64(float64(chunk) * (p.LLCMissBase + p.LLCMissCold*cold))
	t.BranchMiss += uint64(float64(chunk) * (p.BranchMissBase + p.BranchMissCold*cold))
	t.UserInstr += chunk
	t.UserTime += dur
	t.warmth = 1 - (1-w)*expNeg(float64(chunk)/p.RecoverInstr)
	cc := c.getCont()
	cc.t, cc.remaining, cc.chunk, cc.done = t, remaining, chunk, done
	c.eng.PostArg(dur, c.contFn, cc)
}

// getCont takes a pooled continuation carrier.
//
//hwdp:pool acquire cont
func (c *CPU) getCont() *cpuCont {
	if n := len(c.contPool); n > 0 {
		cc := c.contPool[n-1]
		c.contPool[n-1] = nil
		c.contPool = c.contPool[:n-1]
		return cc
	}
	return &cpuCont{}
}

// putCont clears a continuation carrier and returns it to the pool.
//
//hwdp:pool release cont
func (c *CPU) putCont(cc *cpuCont) {
	*cc = cpuCont{}
	c.contPool = append(c.contPool, cc)
}

// runCont unpacks a pooled continuation: chain the next user chunk, or
// idle the thread and fire the caller's completion.
func (c *CPU) runCont(a any) {
	cc := a.(*cpuCont)
	t, remaining, chunk, done := cc.t, cc.remaining, cc.chunk, cc.done
	c.putCont(cc)
	if remaining > chunk {
		c.userChunk(t, remaining-chunk, done)
		return
	}
	t.state = Idle
	done()
}

// KernelExec runs kernel work of a known duration on t (the latency model
// fixes the time; instructions are derived via KernelIPC), polluting the
// thread's microarchitectural state, then calls done.
func (c *CPU) KernelExec(t *HWThread, dur sim.Time, done func()) {
	if t.state != Idle {
		panic(fmt.Sprintf("cpu: KernelExec on thread %d in state %v", t.ID, t.state))
	}
	p := c.params
	if dur < 0 {
		dur = 0
	}
	instr := uint64(float64(dur.ToCycles()) * p.KernelIPC)
	t.KernelInstr += instr
	t.KernelTime += dur
	t.warmth *= expNeg(float64(instr) / p.PolluteInstr)
	t.state = RunningKernel
	cc := c.getCont()
	cc.t, cc.done = t, done
	c.eng.PostArg(dur, c.contFn, cc)
}

// Stall blocks the pipeline for dur — the HWDP page-miss behavior: the
// thread holds its context, issues nothing, pollutes nothing, and frees
// shared core resources to the sibling. done runs when the stall ends.
func (c *CPU) Stall(t *HWThread, dur sim.Time, done func()) {
	if t.state != Idle {
		panic(fmt.Sprintf("cpu: Stall on thread %d in state %v", t.ID, t.state))
	}
	t.StallTime += dur
	t.state = Stalled
	cc := c.getCont()
	cc.t, cc.done = t, done
	c.eng.PostArg(dur, c.contFn, cc)
}

// AccountContextSwitch records a context switch on t (time is charged via
// KernelExec by the scheduler model).
func (t *HWThread) AccountContextSwitch() { t.ContextSwaps++ }

// BeginStall puts t's pipeline into the stalled state for an open-ended
// duration (an HWDP page miss whose length is decided by the SMU/device).
// The returned function ends the stall and must be called exactly once.
func (c *CPU) BeginStall(t *HWThread) (end func()) {
	if t.state != Idle {
		panic(fmt.Sprintf("cpu: BeginStall on thread %d in state %v", t.ID, t.state))
	}
	t.state = Stalled
	start := c.eng.Now()
	ended := false
	return func() {
		if ended {
			panic("cpu: stall ended twice")
		}
		ended = true
		t.StallTime += c.eng.Now() - start
		t.state = Idle
	}
}

// BeginIdle marks t idle-but-descheduled (a blocked thread in OSDP: the
// hardware thread has nothing to issue). It exists for symmetry and
// readability at call sites; threads are Idle by default.
func (c *CPU) BeginIdle(t *HWThread) (end func()) {
	if t.state != Idle {
		panic(fmt.Sprintf("cpu: BeginIdle on thread %d in state %v", t.ID, t.state))
	}
	return func() {}
}
