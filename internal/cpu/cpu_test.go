package cpu

import (
	"testing"
	"testing/quick"

	"hwdp/internal/sim"
)

func newCPU(cores int) (*sim.Engine, *CPU) {
	eng := sim.NewEngine()
	return eng, New(eng, cores, DefaultParams())
}

func TestTopology(t *testing.T) {
	_, c := newCPU(8)
	if len(c.Cores()) != 8 || len(c.Threads()) != 16 {
		t.Fatalf("cores=%d threads=%d", len(c.Cores()), len(c.Threads()))
	}
	t0 := c.Thread(0)
	t1 := c.Thread(1)
	if t0.sibling() != t1 || t1.sibling() != t0 {
		t.Fatal("siblings wrong")
	}
	if c.Thread(2).core == t0.core {
		t.Fatal("thread 2 should be on core 1")
	}
}

func TestZeroCoresPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New(sim.NewEngine(), 0, DefaultParams())
}

func TestBadThreadIndexPanics(t *testing.T) {
	_, c := newCPU(1)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	c.Thread(5)
}

func TestUserExecDuration(t *testing.T) {
	eng, c := newCPU(1)
	th := c.Thread(0)
	th.warmth = 1.0
	done := false
	c.UserExec(th, 2_800_000, func() { done = true }) // 1M cycles at IPC 1.6? no: 2.8M instr / 1.6 IPC = 1.75M cycles
	if th.State() != RunningUser {
		t.Fatalf("state = %v", th.State())
	}
	eng.Run()
	if !done {
		t.Fatal("done not called")
	}
	// 2.8M instructions at IPC 1.6, 2.8GHz: 1.75M cycles = 625us.
	got := eng.Now().Micros()
	if got < 620 || got > 630 {
		t.Fatalf("duration = %vus", got)
	}
	if th.UserInstr != 2_800_000 {
		t.Fatalf("instr = %d", th.UserInstr)
	}
	ipc := th.Counters.UserIPC()
	if ipc < 1.55 || ipc > 1.65 {
		t.Fatalf("ipc = %f", ipc)
	}
}

func TestColdThreadRunsSlower(t *testing.T) {
	run := func(w float64) sim.Time {
		eng := sim.NewEngine()
		p := DefaultParams()
		p.RecoverInstr = 1e15 // freeze warmth so the ratio is exact
		c := New(eng, 1, p)
		th := c.Thread(0)
		th.warmth = w
		c.UserExec(th, 100000, func() {})
		eng.Run()
		return eng.Now()
	}
	warm, cold := run(1.0), run(0.0)
	if cold <= warm {
		t.Fatalf("cold %v not slower than warm %v", cold, warm)
	}
	ratio := float64(cold) / float64(warm)
	p := DefaultParams()
	want := 1 / p.IPCFloor
	if ratio < want*0.95 || ratio > want*1.05 {
		t.Fatalf("cold/warm = %f, want ~%f", ratio, want)
	}
}

func TestKernelExecPollutes(t *testing.T) {
	eng, c := newCPU(1)
	th := c.Thread(0)
	th.warmth = 1.0
	c.KernelExec(th, sim.Micro(10), func() {})
	eng.Run()
	if th.warmth >= 1.0 {
		t.Fatalf("warmth not decayed: %f", th.warmth)
	}
	if th.KernelInstr == 0 || th.KernelTime != sim.Micro(10) {
		t.Fatalf("kernel counters: %d %v", th.KernelInstr, th.KernelTime)
	}
	// 10us at 2.8GHz, kernel IPC 1.0 => ~28000 instructions.
	if th.KernelInstr < 27000 || th.KernelInstr > 29000 {
		t.Fatalf("kernel instr = %d", th.KernelInstr)
	}
}

func TestUserExecRecoversWarmth(t *testing.T) {
	eng, c := newCPU(1)
	th := c.Thread(0)
	th.warmth = 0.1
	c.UserExec(th, 1_000_000, func() {})
	eng.Run()
	if th.warmth < 0.99 {
		t.Fatalf("warmth after 1M instr = %f", th.warmth)
	}
}

func TestPollutionLowersIPCAndRaisesMisses(t *testing.T) {
	// Two runs of the same user work; one interleaves kernel intervention.
	run := func(kernel bool) Counters {
		eng, c := newCPU(1)
		th := c.Thread(0)
		th.warmth = 1.0
		ops := 0
		var step func()
		step = func() {
			ops++
			if ops > 200 {
				return
			}
			if kernel {
				c.KernelExec(th, sim.Micro(8), func() {
					c.UserExec(th, 20000, step)
				})
			} else {
				c.UserExec(th, 20000, step)
			}
		}
		step()
		eng.Run()
		return th.Counters
	}
	clean, dirty := run(false), run(true)
	if dirty.UserIPC() >= clean.UserIPC() {
		t.Fatalf("polluted IPC %f >= clean %f", dirty.UserIPC(), clean.UserIPC())
	}
	if dirty.BranchMiss <= clean.BranchMiss {
		t.Fatal("pollution did not raise branch misses")
	}
	if dirty.LLCMiss <= clean.LLCMiss {
		t.Fatal("pollution did not raise LLC misses")
	}
}

func TestSMTSharingSlowsBoth(t *testing.T) {
	solo := func() sim.Time {
		eng, c := newCPU(1)
		th := c.Thread(0)
		th.warmth = 1
		c.UserExec(th, 1_000_000, func() {})
		eng.Run()
		return eng.Now()
	}()
	eng, c := newCPU(1)
	a, b := c.Thread(0), c.Thread(1)
	a.warmth, b.warmth = 1, 1
	var aEnd sim.Time
	c.UserExec(a, 1_000_000, func() { aEnd = eng.Now() })
	c.UserExec(b, 1_000_000, func() {})
	eng.Run()
	if aEnd <= solo {
		t.Fatalf("SMT co-run %v not slower than solo %v", aEnd, solo)
	}
	ratio := float64(aEnd) / float64(solo)
	want := 1 / DefaultParams().SMTShare
	if ratio < want*0.9 || ratio > want*1.1 {
		t.Fatalf("smt slowdown = %f, want ~%f", ratio, want)
	}
}

func TestStalledSiblingFreesIssueSlots(t *testing.T) {
	// Sibling stalled (HWDP miss): co-runner executes at solo speed.
	eng, c := newCPU(1)
	a, b := c.Thread(0), c.Thread(1)
	a.warmth, b.warmth = 1, 1
	c.Stall(a, sim.Millisecond, func() {})
	var bEnd sim.Time
	c.UserExec(b, 1_000_000, func() { bEnd = eng.Now() })
	eng.Run()
	soloDur := sim.Time(float64(1_000_000) / DefaultParams().BaseIPC / DefaultParams().ClockHz * 1e12)
	if diff := float64(bEnd-soloDur) / float64(soloDur); diff > 0.01 || diff < -0.01 {
		t.Fatalf("co-runner of stalled sibling took %v, want ~%v", bEnd, soloDur)
	}
	if a.StallTime != sim.Millisecond {
		t.Fatalf("stall time = %v", a.StallTime)
	}
}

func TestStallDoesNotPollute(t *testing.T) {
	eng, c := newCPU(1)
	th := c.Thread(0)
	th.warmth = 0.8
	c.Stall(th, sim.Micro(100), func() {})
	eng.Run()
	if th.warmth != 0.8 {
		t.Fatalf("stall changed warmth: %f", th.warmth)
	}
	if th.KernelInstr != 0 {
		t.Fatal("stall executed instructions")
	}
}

func TestBusyThreadPanics(t *testing.T) {
	eng, c := newCPU(1)
	th := c.Thread(0)
	c.UserExec(th, 1000, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on double-dispatch")
		}
		eng.Run()
	}()
	c.UserExec(th, 1000, func() {})
}

func TestCountersAdd(t *testing.T) {
	a := Counters{UserInstr: 1, KernelInstr: 2, UserTime: 3, KernelTime: 4,
		StallTime: 5, L1Miss: 6, L2Miss: 7, LLCMiss: 8, BranchMiss: 9, ContextSwaps: 10}
	b := a
	a.Add(b)
	if a.UserInstr != 2 || a.ContextSwaps != 20 || a.StallTime != 10 {
		t.Fatalf("add: %+v", a)
	}
}

func TestContextSwitchAccounting(t *testing.T) {
	_, c := newCPU(1)
	th := c.Thread(0)
	th.AccountContextSwitch()
	th.AccountContextSwitch()
	if th.ContextSwaps != 2 {
		t.Fatal("context switches not counted")
	}
}

func TestWarmthBoundsProperty(t *testing.T) {
	// Warmth always stays in [0,1] under any interleaving of kernel and
	// user slices.
	f := func(slices []uint16) bool {
		eng, c := newCPU(1)
		th := c.Thread(0)
		i := 0
		var step func()
		step = func() {
			if i >= len(slices) || i > 100 {
				return
			}
			s := slices[i]
			i++
			if s%2 == 0 {
				c.UserExec(th, uint64(s)+1, step)
			} else {
				c.KernelExec(th, sim.Time(s)*sim.Nanosecond, step)
			}
		}
		step()
		eng.Run()
		return th.warmth >= 0 && th.warmth <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUserIPCEmptyCounters(t *testing.T) {
	var c Counters
	if c.UserIPC() != 0 {
		t.Fatal("empty IPC should be 0")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[ThreadState]string{
		Idle: "idle", RunningUser: "user", RunningKernel: "kernel",
		Stalled: "stalled", ThreadState(9): "?",
	} {
		if s.String() != want {
			t.Errorf("%d = %q", s, s.String())
		}
	}
}
