package core

import (
	"hwdp/internal/pagetable"
	"testing"

	"hwdp/internal/fs"
	"hwdp/internal/kernel"
	"hwdp/internal/mmu"
	"hwdp/internal/sim"
	"hwdp/internal/ssd"
)

func smallConfig(scheme kernel.Scheme) Config {
	cfg := DefaultConfig(scheme)
	cfg.MemoryBytes = 32 << 20
	cfg.FSBlocks = 1 << 16
	cfg.DeviceJitter = false
	return cfg
}

func TestNewSystemAssembly(t *testing.T) {
	s := smallConfig(kernel.HWDP).Build()
	if s.CPU == nil || s.K == nil || s.SMU == nil {
		t.Fatal("incomplete assembly")
	}
	if got := s.Mem.Frames(); got != (32<<20)/4096 {
		t.Fatalf("frames = %d", got)
	}
	// Free page queue primed at start.
	if s.SMU.FreeQueue().Len()+s.SMU.FreeQueue().Buffered() == 0 {
		t.Fatal("free page queue not primed")
	}
}

func TestTooFewCoresErrors(t *testing.T) {
	cfg := smallConfig(kernel.HWDP)
	cfg.Cores = 1
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate: want error for 1 core")
	}
	if sys, err := NewSystem(cfg); err == nil || sys != nil {
		t.Fatalf("NewSystem: want nil system + error, got %v, %v", sys, err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Build: want panic on invalid config")
		}
	}()
	cfg.Build()
}

func TestWorkloadThreadPinning(t *testing.T) {
	s := smallConfig(kernel.HWDP).Build()
	t0 := s.WorkloadThread(0)
	t1 := s.WorkloadThread(1)
	if t0.HW.ID != 0 || t1.HW.ID != 2 {
		t.Fatalf("pinning: %d %d", t0.HW.ID, t1.HW.ID)
	}
	a, b := s.SMTPair(3)
	if a.HW.ID != 6 || b.HW.ID != 7 {
		t.Fatalf("smt pair: %d %d", a.HW.ID, b.HW.ID)
	}
}

func TestMeasureSingleFaultHWDP(t *testing.T) {
	s := smallConfig(kernel.HWDP).Build()
	va, _, err := s.MapFile("f", 16, fs.SeededInit(1), s.FastFlags())
	if err != nil {
		t.Fatal(err)
	}
	lat, tr := s.MeasureSingleFault(s.WorkloadThread(0), va)
	want := s.MMU.WalkLatency + s.SMU.Timing().BeforeDevice() + ssd.ZSSD.Read4K + s.SMU.Timing().AfterDevice()
	if lat != want {
		t.Fatalf("latency = %v, want %v", lat, want)
	}
	if len(tr.Phases) < 6 {
		t.Fatalf("trace phases = %d", len(tr.Phases))
	}
	if tr.Total != lat {
		t.Fatal("trace total mismatch")
	}
}

func TestMeasureSingleFaultAllSchemes(t *testing.T) {
	var lats []sim.Time
	for _, scheme := range []kernel.Scheme{kernel.HWDP, kernel.SWDP, kernel.OSDP} {
		s := smallConfig(scheme).Build()
		va, _, err := s.MapFile("f", 16, fs.SeededInit(1), s.FastFlags())
		if err != nil {
			t.Fatal(err)
		}
		lat, _ := s.MeasureSingleFault(s.WorkloadThread(0), va)
		lats = append(lats, lat)
	}
	if !(lats[0] < lats[1] && lats[1] < lats[2]) {
		t.Fatalf("scheme ordering: hw=%v sw=%v os=%v", lats[0], lats[1], lats[2])
	}
}

func TestFastFlagsPerScheme(t *testing.T) {
	if !smallConfig(kernel.HWDP).Build().FastFlags().Fast {
		t.Fatal("HWDP should use fast mmap")
	}
	if smallConfig(kernel.OSDP).Build().FastFlags().Fast {
		t.Fatal("OSDP must not use fast mmap")
	}
}

func TestRunFor(t *testing.T) {
	s := smallConfig(kernel.HWDP).Build()
	s.RunFor(10 * sim.Millisecond)
	if s.Eng.Now() < 10*sim.Millisecond {
		t.Fatalf("now = %v", s.Eng.Now())
	}
}

func TestEndToEndAccessSequence(t *testing.T) {
	// A longer mixed run on the default machine keeps all invariants: no
	// panics, resident pages bounded by physical frames.
	s := smallConfig(kernel.HWDP).Build()
	va, _, err := s.MapFile("db", 4096, fs.SeededInit(3), s.FastFlags())
	if err != nil {
		t.Fatal(err)
	}
	th := s.WorkloadThread(0)
	rng := sim.NewRand(9)
	ops := 0
	var loop func()
	loop = func() {
		if ops >= 500 {
			return
		}
		ops++
		page := rng.Intn(4096)
		s.K.Access(th, va+sim2VA(page), rng.Intn(10) == 0, func(r mmu.Result) {
			if r.Outcome == mmu.OutcomeBadAddr {
				t.Errorf("bad addr at page %d", page)
				return
			}
			loop()
		})
	}
	loop()
	s.RunWhile(func() bool { return ops < 500 })
	if ops != 500 {
		t.Fatalf("ops = %d", ops)
	}
	if s.Mem.FreeFrames() > s.Mem.Frames() {
		t.Fatal("frame accounting corrupt")
	}
}

func sim2VA(page int) (v pagetableVAddr) { return pagetableVAddr(page) * 4096 }

type pagetableVAddr = pagetable.VAddr
