// Package core assembles the full machine: engine, CPU, memory, MMU, SMU,
// NVMe SSD, file system and kernel, wired per the paper's system diagram
// (Fig. 5). It is the layer the public hwdp API and the benchmark harness
// sit on.
package core

import (
	"fmt"

	"hwdp/internal/cpu"
	"hwdp/internal/fault"
	"hwdp/internal/fs"
	"hwdp/internal/kernel"
	"hwdp/internal/mem"
	"hwdp/internal/metrics"
	"hwdp/internal/mmu"
	"hwdp/internal/nvme"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
	"hwdp/internal/smu"
	"hwdp/internal/ssd"
	"hwdp/internal/ssd/modeled"
	"hwdp/internal/trace"
)

// SMUQueueID is the NVMe submission queue ID of the SMU's isolated queue
// pair on every socket's device (OS queues start at 1000). Fault rules can
// target it to exercise the hardware path's degradation in isolation.
const SMUQueueID uint16 = 1

// Config describes one machine.
type Config struct {
	Scheme kernel.Scheme
	// Cores is the number of physical cores (2 SMT hardware threads each).
	// The evaluation machine has 8 (Table II).
	Cores int
	// MemoryBytes is the DRAM size. The paper's 32 GiB is scaled down by
	// default (all results are ratio-driven; see DESIGN.md).
	MemoryBytes uint64
	// Device is the SSD latency profile (Z-SSD by default).
	Device ssd.Profile
	// FreeQueueDepth is the SMU free page queue depth (paper: 4096).
	FreeQueueDepth int
	// PMSHREntries overrides the PMSHR size (0 = the prototype's 32); the
	// design-space ablation sweeps it.
	PMSHREntries int
	// PerCoreFreeQueues gives the SMU one free page queue per logical core
	// (Section V's option for per-thread memory-management policy).
	PerCoreFreeQueues bool
	// PrefetchDegree enables the future-work sequential prefetcher: on a
	// hardware miss the next N LBA-augmented pages are fetched
	// speculatively.
	PrefetchDegree int
	// LogStructuredFS makes every file system remap blocks on write
	// (CoW/LFS behavior): each writeback moves the block and patches
	// LBA-augmented PTEs of marked files.
	LogStructuredFS bool
	// Sockets builds a multi-socket machine: each socket gets its own SMU
	// (the PTE's 3-bit SID field selects the home SMU, up to 8 sockets)
	// with its own NVMe device and file system. Zero means one socket.
	Sockets int
	// Seed drives all randomness.
	Seed uint64
	// CPUParams tunes the core model.
	CPUParams cpu.Params
	// Kernel carries kernel tunables; Scheme and Costs are filled in by
	// NewSystem.
	Kernel kernel.Config
	// FSBlocks is the file-system capacity in 4 KiB blocks.
	FSBlocks uint64
	// DeviceJitter enables service-time jitter (off for latency-exact
	// microbenchmarks, on for throughput runs).
	DeviceJitter bool
	// FaultRules, when non-empty, attach a deterministic fault injector to
	// every socket's device (each gets its own forked PRNG stream off Seed,
	// so same-seed runs replay bit-identically).
	FaultRules []fault.Rule
	// SMURetry overrides the SMU's error-recovery policy (nil keeps
	// smu.DefaultRetryPolicy).
	SMURetry *smu.RetryPolicy
	// TraceEnabled turns on the per-miss observability tracer: every page
	// miss gets a trace context threaded through MMU → SMU → NVMe → SSD
	// and the kernel exception path. Off by default; when off, the miss
	// path performs no tracing work at all.
	TraceEnabled bool
	// TraceRing is the flight-recorder depth in misses (0 picks
	// trace.DefaultRingDepth). Only meaningful with TraceEnabled.
	TraceRing int
	// Lanes shards the engine for parallel-in-run simulation: 0 or 1 (the
	// default) keeps the sequential single-engine wiring with zero
	// overhead; N >= 2 builds a sim.Group with CPU/kernel/MMU/SMU events on
	// the home lane and each socket's device on lane 1 + sid%(N-1),
	// synchronized by conservative lookahead at the doorbell boundary.
	// Fixed-seed output is byte-identical across lane counts (see
	// docs/ENGINE.md). Lane mode needs the evented transport end to end,
	// so it is incompatible with fault injection (synchronous Abort) and
	// per-miss tracing (shared trace ring); NewSystem falls back to the
	// sequential engine — same output, no parallelism — when FaultRules or
	// TraceEnabled are set, and disarms the abort-driven BlockTimeout /
	// CmdTimeout watchdogs (output-neutral in fault-free runs: the
	// watchdog events only matter when a command is lost, which requires
	// fault injection).
	Lanes int
	// SSDBackend selects the device media model: "" or "profile" keeps
	// the latency-profile backend (byte-identical to historical runs);
	// "modeled" swaps in internal/ssd/modeled — a page-mapping FTL with a
	// bounded mapping cache, garbage collection over an over-provisioned
	// flash array, channel/way/plane parallelism and a DRAM write buffer.
	// See docs/SSD.md.
	SSDBackend string
	// SSDModeled tunes the modeled backend; zero fields are derived from
	// Device. Only read when SSDBackend is "modeled". FillFrac and
	// ChurnOverwrites are the preconditioning knobs (fresh vs
	// steady-state drive).
	SSDModeled modeled.Config
}

// DefaultConfig mirrors the evaluation setup (Table II) at simulation
// scale: 8 physical cores at 2.8 GHz, Z-SSD, 256 MiB of memory.
func DefaultConfig(scheme kernel.Scheme) Config {
	return Config{
		Scheme:         scheme,
		Cores:          8,
		MemoryBytes:    256 << 20,
		Device:         ssd.ZSSD,
		FreeQueueDepth: 4096,
		Seed:           1,
		CPUParams:      cpu.DefaultParams(),
		Kernel:         kernel.DefaultConfig(scheme),
		FSBlocks:       1 << 22, // 16 GiB of storage
		DeviceJitter:   true,
	}
}

// Validate checks the machine description for construction-time errors:
// too few cores for the background kernel threads, more sockets than the
// PTE's 3-bit SID field can address, or an unknown SSD backend name.
// NewSystem runs it first, so invalid configs (e.g. a fleet sweep asking
// for 9 sockets) fail with an error instead of crashing the worker.
func (c Config) Validate() error {
	if c.Cores < 2 {
		return fmt.Errorf("core: need at least 2 physical cores (background threads), have %d", c.Cores)
	}
	sockets := c.Sockets
	if sockets == 0 {
		sockets = 1
	}
	if sockets > 8 {
		return fmt.Errorf("core: %d sockets: the PTE's SID field addresses at most 8", sockets)
	}
	switch c.SSDBackend {
	case "", "profile", "modeled":
	default:
		return fmt.Errorf("core: unknown SSDBackend %q (want \"profile\" or \"modeled\")", c.SSDBackend)
	}
	return nil
}

// Build assembles a machine from the config, panicking on an invalid one
// (sugar for NewSystem where the config is known good: tests, examples and
// the figure harness).
func (c Config) Build() *System {
	sys, err := NewSystem(c)
	if err != nil {
		panic(err)
	}
	return sys
}

// Dur converts raw picoseconds (e.g. histogram percentiles) to sim.Time.
func Dur(ps int64) sim.Time { return sim.Time(ps) }

// System is one assembled machine. SMU, Dev and FS are socket 0's
// components; multi-socket machines expose the rest via SMUs/Devs/FSs.
type System struct {
	Cfg Config
	// Eng is the home-lane engine (the only engine when Grp is nil).
	Eng *sim.Engine
	// Grp is the lane group driving parallel runs, nil for the sequential
	// wiring (Config.Lanes <= 1 or an incompatible-feature fallback).
	Grp  *sim.Group
	CPU  *cpu.CPU
	Mem  *mem.Memory
	MMU  *mmu.MMU
	SMU  *smu.SMU
	Dev  *ssd.Device
	FS   *fs.FS
	SMUs []*smu.SMU
	Devs []*ssd.Device
	FSs  []*fs.FS
	// ModeledSSDs holds each socket's FTL/GC model when
	// Config.SSDBackend is "modeled" (index = socket), nil otherwise.
	ModeledSSDs []*modeled.Model
	K           *kernel.Kernel
	Proc        *kernel.Process
	Rng         *sim.Rand
	// Trace is the observability tracer, nil unless Config.TraceEnabled.
	Trace *trace.Tracer
}

// NewSystem builds and starts a machine, or reports why the config cannot
// describe one (see Config.Validate).
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sockets := cfg.Sockets
	if sockets == 0 {
		sockets = 1
	}
	lanes := cfg.Lanes
	if lanes < 1 {
		lanes = 1
	}
	if lanes > sockets+1 {
		// One home lane plus at most one lane per device: extra lanes would
		// only sit idle at every barrier.
		lanes = sockets + 1
	}
	if len(cfg.FaultRules) > 0 || cfg.TraceEnabled {
		// Graceful fallback (see Config.Lanes): identical output, run
		// sequentially.
		lanes = 1
	}
	var grp *sim.Group
	eng := sim.NewEngine()
	if lanes >= 2 {
		grp = sim.NewGroup(lanes)
		eng = grp.Home()
	}
	rng := sim.NewRand(cfg.Seed)
	c := cpu.New(eng, cfg.Cores, cfg.CPUParams)
	memory := mem.New(cfg.MemoryBytes)
	prof := cfg.Device
	if !cfg.DeviceJitter {
		prof.JitterFrac = 0
	}

	mm := mmu.New(eng)
	mm.PrefetchDegree = cfg.PrefetchDegree
	var tracer *trace.Tracer
	if cfg.TraceEnabled {
		tracer = trace.New(cfg.TraceRing)
		mm.Tracer = tracer
	}
	// Keep the free page queue a small fraction of memory (the paper's
	// 4096-entry queue is 0.05% of 32 GiB); at simulation scale, clamp so
	// scaled-down machines keep the same character.
	qDepth := cfg.FreeQueueDepth
	if max := int(memory.Frames() / 16); qDepth > max {
		qDepth = max
	}
	if qDepth < 8 {
		qDepth = 8
	}
	pmshr := cfg.PMSHREntries
	if pmshr == 0 {
		pmshr = smu.PMSHREntries
	}
	queues := 1
	if cfg.PerCoreFreeQueues {
		queues = cfg.Cores * 2
	}

	kcfg := cfg.Kernel
	kcfg.Scheme = cfg.Scheme
	// Abort-driven watchdogs are disarmed in two cases, so the decision is
	// identical at every lane count: lane mode (aborts reach across the
	// doorbell boundary synchronously; output-neutral without fault
	// injection, which lane mode excludes), and the modeled backend
	// without fault injection (its GC stalls legitimately exceed the
	// default 10 ms BlockTimeout, and a command behind a relocation convoy
	// is slow, not lost — aborting it just re-queues into the same stall).
	disarmWatchdogs := grp != nil ||
		(cfg.SSDBackend == "modeled" && len(cfg.FaultRules) == 0)
	if disarmWatchdogs {
		kcfg.BlockTimeout = 0
	}
	// Background kernel threads ride the SMT siblings of the last cores,
	// leaving hardware threads 2i free for workload pinning.
	n := cfg.Cores * 2
	k := kernel.New(eng, c, memory, mm, kcfg,
		c.Thread(n-1), c.Thread(n-3), c.Thread(n-5))
	k.SetTracer(tracer)

	sys := &System{
		Cfg: cfg, Eng: eng, Grp: grp, CPU: c, Mem: memory, MMU: mm, K: k, Rng: rng,
		Trace: tracer,
	}
	for sid := 0; sid < sockets; sid++ {
		deng := eng
		if grp != nil {
			deng = grp.Lane(1 + sid%(lanes-1))
		}
		fsys := fs.New(uint8(sid), 0, uint32(sid+1), cfg.FSBlocks)
		fsys.RemapOnWrite = cfg.LogStructuredFS
		dev := ssd.New(deng, prof, rng.Fork(0xD0+uint64(sid)), func(cmd nvme.Command) {
			frame := mem.FrameID(cmd.PRP1 / mem.PageSize)
			switch cmd.Opcode {
			case nvme.OpRead:
				if err := memory.Fill(frame, func(buf []byte) {
					_ = fsys.ReadBlock(cmd.SLBA, buf)
				}); err != nil {
					panic(fmt.Sprintf("core: read DMA into bad frame: %v", err))
				}
			case nvme.OpWrite:
				data, err := memory.Data(frame)
				if err != nil {
					panic(fmt.Sprintf("core: write DMA from bad frame: %v", err))
				}
				_ = fsys.WriteBlock(cmd.SLBA, data)
			}
		})
		dev.AddNamespace(nvme.Namespace{ID: uint32(sid + 1), Blocks: cfg.FSBlocks})
		switch cfg.SSDBackend {
		case "", "profile":
			// Latency-profile media model (the historical default).
		case "modeled":
			// The model's construction seed mixes the socket in directly
			// rather than forking rng, so the profile path's draw sequence
			// is untouched when the backend is off.
			m := modeled.New(cfg.SSDModeled, prof, cfg.FSBlocks,
				cfg.Seed^(0x55D0+uint64(sid)<<8))
			dev.SetBackend(m)
			sys.ModeledSSDs = append(sys.ModeledSSDs, m)
		default:
			panic(fmt.Sprintf("core: unknown SSDBackend %q (want \"profile\" or \"modeled\")", cfg.SSDBackend))
		}
		if len(cfg.FaultRules) > 0 {
			dev.SetInjector(fault.NewInjector(rng.Fork(0xFA17+uint64(sid)), cfg.FaultRules...))
		}
		s := smu.NewPerCore(eng, uint8(sid), qDepth, pmshr, queues)
		if cfg.SMURetry != nil {
			rp := *cfg.SMURetry
			if disarmWatchdogs {
				// Abort-driven watchdog; see the BlockTimeout disarm above.
				rp.CmdTimeout = 0
			}
			s.SetRetryPolicy(rp)
		}
		// The isolated SMU queue pair, sized so the PMSHR can never
		// overflow it.
		sqp := nvme.NewQueuePair(SMUQueueID, 2*pmshr+2)
		s.AttachDevice(0, dev, sqp, uint32(sid+1))
		mm.AttachSMU(s)
		k.AttachStorage(uint8(sid), 0, dev, fsys)
		k.AttachSMU(s)
		sys.SMUs = append(sys.SMUs, s)
		sys.Devs = append(sys.Devs, dev)
		sys.FSs = append(sys.FSs, fsys)
	}
	sys.SMU, sys.Dev, sys.FS = sys.SMUs[0], sys.Devs[0], sys.FSs[0]
	if grp != nil {
		// Declared lookahead. The home lane's only cross-lane sends are
		// doorbell writes (SMU issue and kernel block layer); a device
		// lane's are completion/rejection shipments, floored by SendFloor.
		// Devices sharing a lane take the min of their floors.
		home := smu.DefaultTiming().Doorbell
		if kcfg.DoorbellWire < home {
			home = kcfg.DoorbellWire
		}
		eng.SetLookahead(home)
		minIRQ := kcfg.IRQWire
		if t := smu.DefaultTiming().CQHandle; t < minIRQ {
			minIRQ = t
		}
		for i, dev := range sys.Devs {
			le := grp.Lane(1 + i%(lanes-1))
			if f := dev.SendFloor(minIRQ); le.Lookahead() == 0 || f < le.Lookahead() {
				le.SetLookahead(f)
			}
		}
	}
	k.Start()
	sys.Proc = k.NewProcess()
	return sys, nil
}

// MapFileOn creates and maps a file on the given socket's file system.
func (s *System) MapFileOn(socket int, name string, pages int, init fs.Initializer,
	flags kernel.MmapFlags) (pagetable.VAddr, *fs.File, error) {
	f, err := s.FSs[socket].Create(name, pages, init)
	if err != nil {
		return 0, nil, err
	}
	va, err := s.K.Mmap(s.Proc, uint8(socket), 0, f,
		pagetable.Prot{Write: true, User: true}, flags)
	return va, f, err
}

// WorkloadThread returns a thread pinned to hardware thread 2*i — one per
// physical core, matching the evaluation's pinning. i must leave the
// background threads' cores free when many threads are used.
func (s *System) WorkloadThread(i int) *kernel.Thread {
	return s.K.NewThread(s.Proc, 2*i)
}

// SMTPair returns the two threads of physical core i (the Fig. 16
// co-scheduling experiment pins an I/O-bound and a CPU-bound thread onto
// one core).
func (s *System) SMTPair(i int) (*kernel.Thread, *kernel.Thread) {
	return s.K.NewThread(s.Proc, 2*i), s.K.NewThread(s.Proc, 2*i+1)
}

// MapFile creates a file of the given size and maps it.
func (s *System) MapFile(name string, pages int, init fs.Initializer,
	flags kernel.MmapFlags) (pagetable.VAddr, *fs.File, error) {
	f, err := s.FS.Create(name, pages, init)
	if err != nil {
		return 0, nil, err
	}
	va, err := s.K.Mmap(s.Proc, 0, 0, f, pagetable.Prot{Write: true, User: true}, flags)
	return va, f, err
}

// FastFlags returns the mmap flags for the configured scheme: fast mmap
// under HWDP/SWDP, conventional under OSDP.
func (s *System) FastFlags() kernel.MmapFlags {
	return kernel.MmapFlags{Fast: s.Cfg.Scheme != kernel.OSDP}
}

// Run drives the simulation until the queue drains (rarely wanted: the
// kernel's periodic threads keep it non-empty) — prefer RunFor/RunWhile.
func (s *System) Run() {
	if s.Grp != nil {
		s.Grp.Run()
		return
	}
	s.Eng.Run()
}

// RunFor advances virtual time by d.
func (s *System) RunFor(d sim.Time) {
	if s.Grp != nil {
		s.Grp.RunUntil(s.Eng.Now() + d)
		return
	}
	s.Eng.RunUntil(s.Eng.Now() + d)
}

// RunWhile steps the engine until cond returns false or the queue drains.
// cond must read home-lane state only (everything the public API exposes
// lives there), which makes the stop point exact in lane mode too.
func (s *System) RunWhile(cond func() bool) {
	if s.Grp != nil {
		s.Grp.RunWhile(cond)
		return
	}
	for cond() && s.Eng.Step() {
	}
}

// Recovery aggregates the per-layer error-recovery counters across every
// socket's device and SMU plus the kernel.
func (s *System) Recovery() metrics.Recovery {
	var r metrics.Recovery
	for _, dev := range s.Devs {
		ds := dev.Stats()
		r.InjectedTransient += ds.InjTransient
		r.InjectedUECC += ds.InjUECC
		r.InjectedDrops += ds.InjDropped
		r.InjectedSpikes += ds.InjSpikes
		r.DeviceAborts += ds.Aborts
	}
	for _, u := range s.SMUs {
		us := u.Stats()
		r.SMURetries += us.Retries
		r.SMUTimeouts += us.Timeouts
		r.SMUIOErrors += us.IOErrors
		r.SMUUECCFailures += us.UECCFailures
		r.SMUFramesRecycled += us.FramesRecycled
	}
	ks := s.K.Stats()
	r.BlockRetries = ks.BlockRetries
	r.BlockTimeouts = ks.BlockTimeouts
	r.HWBounceFaults = ks.HWBounceFaults
	r.SIGBUSKills = ks.SIGBUSKills
	r.WritebackErrors = ks.WritebackErrors
	r.SetBacklogWait(s.BacklogWait())
	return r
}

// BacklogWait merges every SMU's PMSHR backlog wait-time histogram
// (picoseconds per wait) into one distribution.
func (s *System) BacklogWait() *metrics.Histogram {
	h := metrics.NewHistogram()
	for _, u := range s.SMUs {
		h.Merge(u.BacklogWait())
	}
	return h
}

// FaultTrace is a single-miss phase trace (Fig. 11(b)).
type FaultTrace struct {
	Phases []TracePhase
	Total  sim.Time
}

// TracePhase is one labeled span.
type TracePhase struct {
	Name string
	Dur  sim.Time
}

// MeasureSingleFault touches one cold page and returns the end-to-end miss
// latency plus, for HWDP, the SMU's phase trace.
func (s *System) MeasureSingleFault(th *kernel.Thread, va pagetable.VAddr) (sim.Time, *FaultTrace) {
	tr := &FaultTrace{}
	s.SMU.Tracer = func(phase string, d sim.Time) {
		tr.Phases = append(tr.Phases, TracePhase{phase, d})
	}
	defer func() { s.SMU.Tracer = nil }()
	start := s.Eng.Now()
	var end sim.Time = -1
	s.K.Access(th, va, false, func(mmu.Result) { end = s.Eng.Now() })
	s.RunWhile(func() bool { return end < 0 })
	if end < 0 {
		panic("core: single fault never completed")
	}
	tr.Total = end - start
	return tr.Total, tr
}
