package core

import (
	"fmt"
	"testing"

	"hwdp/internal/fs"
	"hwdp/internal/kernel"
	"hwdp/internal/mmu"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
	"hwdp/internal/ssd/modeled"
)

// modeledLaneConfig is the lane-equivalence machine: two sockets with
// modeled (FTL + GC) devices on tight geometry and churned
// preconditioning, so the run exercises mapping-cache misses, buffered
// writes and garbage collection — the stateful paths where a lane-order
// bug would first show up as divergent timings.
func modeledLaneConfig(lanes int) Config {
	cfg := smallConfig(kernel.HWDP)
	cfg.DeviceJitter = true // keep the PRNG-coupled device paths in play
	cfg.Sockets = 2
	cfg.Lanes = lanes
	cfg.Seed = 23
	cfg.SSDBackend = "modeled"
	cfg.SSDModeled = modeled.Config{
		Channels:        2,
		WaysPerChannel:  1,
		PlanesPerWay:    2,
		PagesPerBlock:   16,
		OPFrac:          0.15,
		MapEntries:      256,
		BufEntries:      8,
		ChurnOverwrites: 2,
	}
	// BlockTimeout is left at its default on purpose: NewSystem must
	// disarm the abort-driven watchdog for the fault-free modeled backend
	// at every lane count, or the fired-event multisets diverge.
	return cfg
}

// mix is a splitmix64-style finalizer: hashing each fired-event timestamp
// before summing makes the multiset digest sensitive to any timestamp
// change while staying independent of firing order and lane placement.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	return x ^ x>>33
}

// modeledLaneDigest drives a read+write miss storm against the modeled
// devices and renders every determinism-sensitive output: final clock,
// kernel/SMU/device stats, each socket's FTL Stats, and an
// order-independent digest of the fired-event multiset (per-lane
// accumulators summed, so the value is comparable across lane counts and
// worker schedules).
func modeledLaneDigest(t *testing.T, lanes int) string {
	t.Helper()
	cfg := modeledLaneConfig(lanes)
	s := cfg.Build()

	engines := []*sim.Engine{s.Eng}
	if s.Grp != nil {
		engines = engines[:0]
		for i := 0; i < s.Grp.Lanes(); i++ {
			engines = append(engines, s.Grp.Lane(i))
		}
	}
	sums := make([]uint64, len(engines))
	counts := make([]uint64, len(engines))
	for i, eng := range engines {
		i := i
		eng.SetObserver(func(at sim.Time) {
			sums[i] += mix(uint64(at))
			counts[i]++
		})
	}

	th := s.WorkloadThread(0)
	vas := make([]pagetable.VAddr, cfg.Sockets)
	for sid := 0; sid < cfg.Sockets; sid++ {
		va, _, err := s.MapFileOn(sid, fmt.Sprintf("f%d", sid), 64,
			fs.SeededInit(uint64(sid+1)), s.FastFlags())
		if err != nil {
			t.Fatal(err)
		}
		vas[sid] = va
	}
	// Interleave cold misses across sockets, every third access a write so
	// dirty pages exist, then msync both mappings to push writes through
	// the FTL (buffered programs, possibly GC) and settle.
	for page := 0; page < 64; page++ {
		for sid := 0; sid < cfg.Sockets; sid++ {
			va := vas[sid] + pagetable.VAddr(page)*4096
			var done bool
			s.K.Access(th, va, page%3 == 0, func(mmu.Result) { done = true })
			s.RunWhile(func() bool { return !done })
			if !done {
				t.Fatal("access hung")
			}
		}
	}
	for sid := 0; sid < cfg.Sockets; sid++ {
		var done bool
		s.K.Msync(th, vas[sid], func() { done = true })
		s.RunWhile(func() bool { return !done })
		if !done {
			t.Fatal("msync hung")
		}
	}
	s.RunFor(2 * sim.Millisecond)

	var eventSum, eventCount uint64
	for i := range sums {
		eventSum += sums[i]
		eventCount += counts[i]
	}
	out := fmt.Sprintf("clock=%d kernel=%+v events=%016x/%d",
		s.Eng.Now(), s.K.Stats(), eventSum, eventCount)
	for sid := 0; sid < cfg.Sockets; sid++ {
		out += fmt.Sprintf(" smu%d=%+v dev%d=%+v ftl%d=%+v",
			sid, s.SMUs[sid].Stats(), sid, s.Devs[sid].Stats(),
			sid, s.ModeledSSDs[sid].Stats())
	}
	return out
}

// TestModeledSSDLaneEquivalence is the issue's determinism pin for the
// modeled backend: same seed ⇒ byte-identical Stats (device, FTL, SMU,
// kernel) and an identical fired-event multiset digest at -lanes 1 vs
// -lanes 8. The FTL's invariants must also hold on every socket when the
// storm ends.
func TestModeledSSDLaneEquivalence(t *testing.T) {
	seq := modeledLaneDigest(t, 1)
	for _, lanes := range []int{3, 8} {
		if got := modeledLaneDigest(t, lanes); got != seq {
			t.Fatalf("lanes=%d diverged:\n got: %s\nwant: %s", lanes, got, seq)
		}
	}
}

// TestModeledBackendEndToEnd smoke-tests the full stack on one socket:
// misses complete, the FTL sees the device's read traffic, write-backs
// land as buffered programs, and the invariants audit clean afterwards.
func TestModeledBackendEndToEnd(t *testing.T) {
	cfg := modeledLaneConfig(1)
	cfg.Sockets = 1
	s := cfg.Build()
	va, _, err := s.MapFileOn(0, "f", 128, fs.SeededInit(7), s.FastFlags())
	if err != nil {
		t.Fatal(err)
	}
	th := s.WorkloadThread(0)
	for page := 0; page < 128; page++ {
		var done bool
		s.K.Access(th, va+pagetable.VAddr(page)*4096, page%2 == 0, func(mmu.Result) { done = true })
		s.RunWhile(func() bool { return !done })
	}
	var done bool
	s.K.Msync(th, va, func() { done = true })
	s.RunWhile(func() bool { return !done })
	m := s.ModeledSSDs[0]
	st := m.Stats()
	if st.UserReads == 0 {
		t.Fatal("modeled backend saw no read traffic — seam not wired")
	}
	if st.UserWrites == 0 {
		t.Fatal("msync produced no modeled write traffic")
	}
	if st.PrecondErases == 0 {
		t.Fatal("churned preconditioning left no GC history")
	}
	if vs := m.CheckInvariants(); len(vs) != 0 {
		t.Fatalf("FTL invariants violated after end-to-end run: %v", vs[0])
	}
	ds := s.Dev.Stats()
	if ds.MediaBusySum == 0 || ds.Reads == 0 {
		t.Fatalf("device stats not accounted: %+v", ds)
	}
}
