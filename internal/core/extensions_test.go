package core

import (
	"testing"

	"hwdp/internal/fs"
	"hwdp/internal/kernel"
	"hwdp/internal/mmu"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
)

// accessSync performs one access and steps the engine to completion.
func accessSync(t *testing.T, s *System, th *kernel.Thread, va pagetable.VAddr) (mmu.Outcome, sim.Time) {
	t.Helper()
	start := s.Eng.Now()
	var out mmu.Outcome = -1
	var end sim.Time
	s.K.Access(th, va, false, func(r mmu.Result) { out, end = r.Outcome, s.Eng.Now() })
	s.RunWhile(func() bool { return out == -1 })
	if out == -1 {
		t.Fatal("access hung")
	}
	return out, end - start
}

func TestSequentialPrefetcher(t *testing.T) {
	cfg := smallConfig(kernel.HWDP)
	cfg.PrefetchDegree = 2
	s := cfg.Build()
	va, _, err := s.MapFile("seq", 64, fs.SeededInit(1), s.FastFlags())
	if err != nil {
		t.Fatal(err)
	}
	th := s.WorkloadThread(0)
	// First access misses and triggers prefetch of pages 1 and 2.
	out, lat0 := accessSync(t, s, th, va)
	if out != mmu.OutcomeHW {
		t.Fatalf("first access = %v", out)
	}
	// Let the prefetches land.
	s.RunFor(50 * sim.Microsecond)
	if s.MMU.Stats().Prefetches == 0 {
		t.Fatal("no prefetches issued")
	}
	// Sequential successor: already resident (TLB or walk hit), far faster.
	out, lat1 := accessSync(t, s, th, va+4096)
	if out == mmu.OutcomeHW || out == mmu.OutcomeOSFault {
		t.Fatalf("prefetched page still missed: %v", out)
	}
	if lat1 >= lat0/10 {
		t.Fatalf("prefetched access took %v (miss took %v)", lat1, lat0)
	}
	// Prefetched pages carry valid content.
	buf := make([]byte, 16)
	want := make([]byte, fs.PageBytes)
	fs.SeededInit(1)(2, want)
	got := false
	s.K.Load(th, va+2*4096, buf, func(mmu.Result) { got = true })
	s.RunWhile(func() bool { return !got })
	for i := range buf {
		if buf[i] != want[i] {
			t.Fatal("prefetched content wrong")
		}
	}
}

func TestPrefetcherDisabledByDefault(t *testing.T) {
	s := smallConfig(kernel.HWDP).Build()
	va, _, _ := s.MapFile("seq", 16, nil, s.FastFlags())
	th := s.WorkloadThread(0)
	accessSync(t, s, th, va)
	if s.MMU.Stats().Prefetches != 0 {
		t.Fatal("prefetches issued with degree 0")
	}
	out, _ := accessSync(t, s, th, va+4096)
	if out != mmu.OutcomeHW {
		t.Fatalf("successor should miss without prefetch: %v", out)
	}
}

func TestPrefetcherStopsAtNonLBAPages(t *testing.T) {
	cfg := smallConfig(kernel.HWDP)
	cfg.PrefetchDegree = 4
	s := cfg.Build()
	// Anonymous region: first-touch constant pages must NOT be prefetched
	// (a speculative zero-fill would allocate frames for pages never
	// touched).
	va, err := s.K.MmapAnon(s.Proc, 0, 0, 16, pagetable.Prot{Write: true, User: true}, true)
	if err != nil {
		t.Fatal(err)
	}
	th := s.WorkloadThread(0)
	accessSync(t, s, th, va)
	if s.MMU.Stats().Prefetches != 0 {
		t.Fatal("prefetcher speculated on anonymous first-touch pages")
	}
}

func TestPerCoreFreeQueues(t *testing.T) {
	cfg := smallConfig(kernel.HWDP)
	cfg.PerCoreFreeQueues = true
	s := cfg.Build()
	if got := len(s.SMU.Queues()); got != cfg.Cores*2 {
		t.Fatalf("queues = %d, want %d", got, cfg.Cores*2)
	}
	va, _, err := s.MapFile("f", 256, fs.SeededInit(1), s.FastFlags())
	if err != nil {
		t.Fatal(err)
	}
	// Two threads on different cores fault concurrently; each consumes
	// from its own queue.
	t0, t1 := s.WorkloadThread(0), s.WorkloadThread(1)
	q0 := s.SMU.Queues()[t0.HW.ID]
	q4 := s.SMU.Queues()[t1.HW.ID]
	pops0, pops4 := q0.Pops(), q4.Pops()
	done := 0
	for i, th := range []*kernel.Thread{t0, t1} {
		th := th
		s.K.Access(th, va+pagetable.VAddr(i*8*4096), false, func(mmu.Result) { done++ })
	}
	s.RunWhile(func() bool { return done < 2 })
	if q0.Pops() != pops0+1 {
		t.Fatalf("core-0 queue pops = %d, want %d", q0.Pops(), pops0+1)
	}
	if q4.Pops() != pops4+1 {
		t.Fatalf("core-2 queue pops = %d, want %d", q4.Pops(), pops4+1)
	}
	// Other queues untouched by these two misses.
	var othersPopped int
	for i, q := range s.SMU.Queues() {
		if i == t0.HW.ID || i == t1.HW.ID {
			continue
		}
		othersPopped += int(q.Pops())
	}
	if othersPopped != 0 {
		t.Fatalf("foreign queues popped %d times", othersPopped)
	}
}

func TestPerCoreQueuesRefillAll(t *testing.T) {
	cfg := smallConfig(kernel.HWDP)
	cfg.PerCoreFreeQueues = true
	s := cfg.Build()
	for i, q := range s.SMU.Queues() {
		if q.Len()+q.Buffered() == 0 {
			t.Fatalf("queue %d not primed at start", i)
		}
	}
}

func TestMultiSocketRouting(t *testing.T) {
	cfg := smallConfig(kernel.HWDP)
	cfg.Sockets = 2
	s := cfg.Build()
	if len(s.SMUs) != 2 || len(s.Devs) != 2 || len(s.FSs) != 2 {
		t.Fatalf("sockets built: %d/%d/%d", len(s.SMUs), len(s.Devs), len(s.FSs))
	}
	va0, _, err := s.MapFileOn(0, "f0", 16, fs.SeededInit(1), s.FastFlags())
	if err != nil {
		t.Fatal(err)
	}
	va1, _, err := s.MapFileOn(1, "f1", 16, fs.SeededInit(2), s.FastFlags())
	if err != nil {
		t.Fatal(err)
	}
	// SIDs encoded in the PTEs route each miss to its home SMU.
	e0, _ := s.Proc.AS.Table.Lookup(va0)
	e1, _ := s.Proc.AS.Table.Lookup(va1)
	if e0.Block().SID != 0 || e1.Block().SID != 1 {
		t.Fatalf("SIDs = %d, %d", e0.Block().SID, e1.Block().SID)
	}
	th := s.WorkloadThread(0)
	if out, _ := accessSync(t, s, th, va0); out != mmu.OutcomeHW {
		t.Fatalf("socket-0 access = %v", out)
	}
	if out, _ := accessSync(t, s, th, va1); out != mmu.OutcomeHW {
		t.Fatalf("socket-1 access = %v", out)
	}
	if s.SMUs[0].Stats().Handled != 1 || s.SMUs[1].Stats().Handled != 1 {
		t.Fatalf("SMU handled: %d, %d", s.SMUs[0].Stats().Handled, s.SMUs[1].Stats().Handled)
	}
	if s.Devs[0].Stats().Reads != 1 || s.Devs[1].Stats().Reads != 1 {
		t.Fatalf("device reads: %d, %d", s.Devs[0].Stats().Reads, s.Devs[1].Stats().Reads)
	}
	// Content arrives from the right file system.
	buf := make([]byte, 8)
	want := make([]byte, fs.PageBytes)
	fs.SeededInit(2)(0, want)
	got := false
	s.K.Load(th, va1, buf, func(mmu.Result) { got = true })
	s.RunWhile(func() bool { return !got })
	for i := range buf {
		if buf[i] != want[i] {
			t.Fatal("socket-1 content wrong")
		}
	}
}

func TestMultiSocketKpooldRefillsAll(t *testing.T) {
	cfg := smallConfig(kernel.HWDP)
	cfg.Sockets = 3
	s := cfg.Build()
	for i, u := range s.SMUs {
		if u.FreeQueue().Len()+u.FreeQueue().Buffered() == 0 {
			t.Fatalf("socket %d free queue not primed", i)
		}
	}
}

func TestTooManySocketsErrors(t *testing.T) {
	cfg := smallConfig(kernel.HWDP)
	cfg.Sockets = 9
	sys, err := NewSystem(cfg)
	if err == nil || sys != nil {
		t.Fatalf("want nil system + error (SID field is 3 bits), got %v, %v", sys, err)
	}
	cfg.Sockets = 8
	if err := cfg.Validate(); err != nil {
		t.Fatalf("8 sockets must validate: %v", err)
	}
	cfg.Sockets = 0
	cfg.SSDBackend = "bogus"
	if err := cfg.Validate(); err == nil {
		t.Fatal("want error for unknown SSD backend")
	}
}

func TestLogStructuredFSEndToEnd(t *testing.T) {
	// CoW/LFS file system under HWDP: a dirty page is written back to a
	// NEW block; the kernel's remap hook patches the (by then re-augmented)
	// PTE, and the refault reads the moved data from the new location.
	cfg := smallConfig(kernel.HWDP)
	cfg.MemoryBytes = 128 * 4096
	cfg.LogStructuredFS = true
	cfg.Kernel.KptedPeriod = sim.Millisecond
	s := cfg.Build()
	va, f, err := s.MapFile("lfs", 256, fs.SeededInit(1), s.FastFlags())
	if err != nil {
		t.Fatal(err)
	}
	th := s.WorkloadThread(0)
	origBlk, _ := s.FS.Block(f, 0)
	marker := []byte("log structured survivor")
	ok := false
	s.K.Store(th, va+50, marker, func(mmu.Result) { ok = true })
	s.RunWhile(func() bool { return !ok })
	// Flood to evict page 0 (dirty → writeback → LFS remap).
	for i := 1; i < 256; i++ {
		done := false
		s.K.Access(th, va+pagetable.VAddr(i*4096), false, func(mmu.Result) { done = true })
		s.RunWhile(func() bool { return !done })
	}
	s.RunFor(50 * sim.Millisecond)
	e, _ := s.Proc.AS.Table.Lookup(va)
	if e.Present() {
		t.Skip("page 0 survived eviction pressure")
	}
	newBlk, _ := s.FS.Block(f, 0)
	if newBlk.LBA == origBlk.LBA {
		t.Fatal("LFS writeback did not move the block")
	}
	if got := e.Block().LBA; got != newBlk.LBA {
		t.Fatalf("PTE holds LBA %d, file moved to %d", got, newBlk.LBA)
	}
	if s.K.Stats().RemapPatchedPTE == 0 {
		t.Fatal("no PTEs patched")
	}
	// Refault from the new location: content intact.
	buf := make([]byte, len(marker))
	got := false
	s.K.Load(th, va+50, buf, func(mmu.Result) { got = true })
	s.RunWhile(func() bool { return !got })
	for i := range marker {
		if buf[i] != marker[i] {
			t.Fatalf("content lost across LFS move: %q", buf)
		}
	}
}
