package core

import (
	"fmt"
	"testing"

	"hwdp/internal/fault"
	"hwdp/internal/fs"
	"hwdp/internal/kernel"
	"hwdp/internal/mmu"
	"hwdp/internal/pagetable"
)

// laneRunDigest drives a miss-heavy multi-socket workload and renders every
// determinism-sensitive counter into one string: SMU, device and kernel
// stats plus the final clock. Two configurations that differ only in Lanes
// must produce identical digests.
func laneRunDigest(t *testing.T, lanes, sockets int) string {
	t.Helper()
	cfg := smallConfig(kernel.HWDP)
	cfg.DeviceJitter = true // exercise the jittered (PRNG-coupled) path too
	cfg.Sockets = sockets
	cfg.Lanes = lanes
	cfg.Seed = 11
	s := cfg.Build()
	th := s.WorkloadThread(0)
	vas := make([]pagetable.VAddr, sockets)
	for sid := 0; sid < sockets; sid++ {
		va, _, err := s.MapFileOn(sid, fmt.Sprintf("f%d", sid), 64, fs.SeededInit(uint64(sid+1)), s.FastFlags())
		if err != nil {
			t.Fatal(err)
		}
		vas[sid] = va
	}
	// Interleave cold misses across sockets so devices on different lanes
	// are concurrently busy, then settle.
	for page := 0; page < 64; page++ {
		for sid := 0; sid < sockets; sid++ {
			va := vas[sid] + pagetable.VAddr(page)*4096
			var done bool
			s.K.Access(th, va, false, func(mmu.Result) { done = true })
			s.RunWhile(func() bool { return !done })
			if !done {
				t.Fatal("access hung")
			}
		}
	}
	s.RunFor(2000000000000) // 2 ms: background threads settle identically
	out := fmt.Sprintf("clock=%d kernel=%+v", s.Eng.Now(), s.K.Stats())
	for sid := 0; sid < sockets; sid++ {
		out += fmt.Sprintf(" smu%d=%+v dev%d=%+v", sid, s.SMUs[sid].Stats(), sid, s.Devs[sid].Stats())
	}
	return out
}

// TestMultiSocketLaneEquivalence shards four devices across seven device
// lanes plus home and checks the run is indistinguishable from sequential.
func TestMultiSocketLaneEquivalence(t *testing.T) {
	seq := laneRunDigest(t, 1, 4)
	for _, lanes := range []int{2, 3, 8} {
		if got := laneRunDigest(t, lanes, 4); got != seq {
			t.Fatalf("lanes=%d diverged:\n got: %s\nwant: %s", lanes, got, seq)
		}
	}
}

// TestLaneGroupEngagesParallelRounds guards against the lane wiring
// silently degrading to serial execution: a multi-socket run must actually
// dispatch concurrent rounds and carry cross-lane traffic.
func TestLaneGroupEngagesParallelRounds(t *testing.T) {
	cfg := smallConfig(kernel.HWDP)
	cfg.Sockets = 2
	cfg.Lanes = 3
	s := cfg.Build()
	if s.Grp == nil || s.Grp.Lanes() != 3 {
		t.Fatalf("group = %v", s.Grp)
	}
	va, _, err := s.MapFileOn(1, "f", 32, nil, s.FastFlags())
	if err != nil {
		t.Fatal(err)
	}
	th := s.WorkloadThread(0)
	for page := 0; page < 32; page++ {
		var done bool
		s.K.Access(th, va+pagetable.VAddr(page)*4096, false, func(mmu.Result) { done = true })
		s.RunWhile(func() bool { return !done })
	}
	st := s.Grp.Stats()
	if st.CrossSends == 0 {
		t.Fatal("no cross-lane traffic — devices not sharded")
	}
	if st.ParallelRounds == 0 {
		t.Fatal("no parallel rounds — group degraded to serial")
	}
}

// TestLaneClampAndFallback pins the wiring policy: lane counts clamp to
// sockets+1, and incompatible features fall back to the sequential engine
// rather than panicking.
func TestLaneClampAndFallback(t *testing.T) {
	cfg := smallConfig(kernel.HWDP)
	cfg.Lanes = 8
	s := cfg.Build()
	if s.Grp == nil || s.Grp.Lanes() != 2 {
		t.Fatalf("single-socket lanes = %v, want clamp to 2", s.Grp)
	}

	cfg = smallConfig(kernel.HWDP)
	cfg.Lanes = 8
	cfg.TraceEnabled = true
	if s = cfg.Build(); s.Grp != nil {
		t.Fatal("tracing must fall back to the sequential engine")
	}

	cfg = smallConfig(kernel.HWDP)
	cfg.Lanes = 8
	cfg.FaultRules = []fault.Rule{{Kind: fault.Transient, Prob: 1}}
	if s = cfg.Build(); s.Grp != nil {
		t.Fatal("fault injection must fall back to the sequential engine")
	}
}
