package core_test

import (
	"testing"

	"hwdp/internal/check"
	"hwdp/internal/core"
	"hwdp/internal/kernel"
	"hwdp/internal/mmu"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
)

// Regression test for the SMU free-queue-empty fallback racing the
// background refill threads. Eight workload threads stream cold anonymous
// misses through an 8-entry free queue while kpoold refills it every
// 100 us and kswapd reclaims below the watermarks (the region is 1.5x
// physical memory, so eviction runs the whole time). The miss rate far
// exceeds the refill rate, so the queue drains repeatedly and misses
// bounce to the OS fault path while refilled frames land between and
// during bounces — the exact interleaving that once double-installed a
// PTE and leaked the loser's frame. Every access must complete, the
// bounce ledgers must agree across the MMU and kernel layers, both
// refill sources must have engaged, and the machine must audit clean.
func TestFallbackRacesConcurrentRefill(t *testing.T) {
	cfg := core.DefaultConfig(kernel.HWDP)
	cfg.MemoryBytes = 4 << 20 // 1024 frames
	cfg.FSBlocks = 1 << 16
	cfg.DeviceJitter = false
	cfg.FreeQueueDepth = 8 // clamp floor: one burst of misses drains it
	cfg.Kernel.KpooldPeriod = 100 * sim.Microsecond
	cfg.Kernel.KswapdPeriod = 200 * sim.Microsecond
	sys := cfg.Build()

	const (
		threads = 8
		passes  = 2 // second pass re-faults what kswapd evicted
	)
	frames := int(sys.Mem.Frames())
	pages := frames + frames/2
	perThread := pages / threads
	prot := pagetable.Prot{Write: true, User: true}
	base, err := sys.K.MmapAnon(sys.Proc, 0, 0, pages, prot, true)
	if err != nil {
		t.Fatal(err)
	}

	// Each thread walks its own chunk, issuing the next access from the
	// previous one's completion: up to 8 misses in flight against the
	// 8-entry queue at all times.
	remaining := threads
	for ti := 0; ti < threads; ti++ {
		th := sys.WorkloadThread(ti)
		lo := ti * perThread
		idx, pass := 0, 0
		var step func(mmu.Result)
		step = func(mmu.Result) {
			if idx == perThread {
				idx, pass = 0, pass+1
				if pass == passes {
					remaining--
					return
				}
			}
			va := base + pagetable.VAddr(lo+idx)*4096
			write := idx%3 == 0
			idx++
			sys.K.Access(th, va, write, step)
		}
		step(mmu.Result{})
	}
	sys.RunWhile(func() bool { return remaining > 0 })
	if remaining != 0 {
		t.Fatalf("%d threads never finished", remaining)
	}

	var noFree uint64
	for _, u := range sys.SMUs {
		noFree += u.Stats().NoFreePage
	}
	ks := sys.K.Stats()
	ms := sys.MMU.Stats()
	if noFree == 0 {
		t.Fatal("free queue never drained; the race was not exercised")
	}
	if ks.FaultRefills == 0 {
		t.Fatal("fault-path refill never ran")
	}
	if ks.KpooldFrames == 0 {
		t.Fatal("kpoold never refilled concurrently")
	}
	if ks.Evictions == 0 {
		t.Fatal("kswapd never reclaimed despite 1.5x oversubscription")
	}
	// The MMU counts every bounced walk; the kernel counts once per page
	// (page-lock and PMSHR coalescing collapse the duplicates), so the
	// kernel's ledger is bounded by the MMU's.
	if ks.HWBounceFaults == 0 || ks.HWBounceFaults > ms.HWBounced {
		t.Fatalf("bounce ledgers inconsistent: kernel %d, mmu %d",
			ks.HWBounceFaults, ms.HWBounced)
	}

	// Settle in-flight writebacks, then balance the frame ledger and run
	// the full structural audit.
	leaked := func() int {
		outstanding := int(sys.Mem.Allocs() - sys.Mem.Frees())
		accounted := sys.K.AccountedFrames()
		for _, u := range sys.SMUs {
			accounted += u.FramesHeld()
		}
		return outstanding - accounted
	}
	for i := 0; i < 50 && leaked() != 0; i++ {
		sys.RunFor(2 * sim.Millisecond)
	}
	if n := leaked(); n != 0 {
		t.Fatalf("%d frames leaked", n)
	}
	if vs := check.System(sys); len(vs) != 0 {
		t.Fatalf("post-run audit violations: %v", vs)
	}
}
