package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"hwdp/internal/analysis"
)

// Directive prefixes recognized on function doc comments.
const (
	// HotDirective marks a hotalloc walk root: the function must reach no
	// heap allocation.
	HotDirective = "//hwdp:hotpath"
	// ColdDirective (with a mandatory reason) stops the hotalloc walk:
	// the function is off the steady-state path by construction.
	ColdDirective = "//hwdp:coldpath"
	// poolDirective is poolpair's accessor annotation; pool accessors are
	// exempt from hotalloc atoms (refill/growth is the amortized,
	// warm-up-only allocation the AllocsPerRun pins already discount).
	poolDirective = "//hwdp:pool"
)

// Summarize builds the package summary for one unit, adds it to the
// registry, and attaches the registry to the unit (Unit.Facts) for the
// analyzers. Dependencies must be summarized (or loaded from facts files)
// into the same registry first, in dependency order.
//
// Non-module packages get an empty summary: the walk treats them as
// opaque, and allocating stdlib calls are recorded as atoms at the caller.
// Sites covered by a //hwdp:ignore hotalloc/laneescape comment are dropped
// here — in the defining package, where the waiver can sit next to the
// code it excuses — and the waiver is marked used for the stale check.
func Summarize(u *analysis.Unit, reg *Registry) *PkgFacts {
	path := analysis.NormalizePkgPath(u.Pkg.Path())
	pf := &PkgFacts{Version: Version, Pkg: path, Funcs: map[string]*FuncFacts{}, Methods: map[string][]string{}}
	defer func() {
		reg.Add(pf)
		u.Facts = reg
	}()
	if !strings.HasPrefix(path, "hwdp") {
		return pf
	}
	s := &summarizer{
		u:   u,
		pf:  pf,
		pkg: path,
		// laneescape atoms are collected only outside the hot-path
		// packages: inside them, lanesafety already reports the same
		// sites locally (and the sim package legitimately owns
		// goroutine machinery).
		laneAtoms: !analysis.IsHotPathPkg(path),
	}
	for _, f := range u.Files {
		if strings.HasSuffix(u.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv == nil && fd.Name.Name == "init" {
				// init runs once at construction, before lanes start and
				// before the alloc pins measure; it is neither a root nor
				// a callee (and multiple init funcs would collide on one
				// key).
				continue
			}
			fn, _ := u.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			key := localFuncKey(fn)
			ff := &FuncFacts{}
			ff.Hot, ff.Cold = parseDirectives(fd.Doc)
			pf.Funcs[key] = ff
			s.walkFunc(key, ff, fd.Body, isPoolAccessor(fd.Doc))
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				sel := fn.Name() + "|" + sigString(sig)
				pf.Methods[sel] = append(pf.Methods[sel], key)
			}
		}
	}
	for _, keys := range pf.Methods {
		sort.Strings(keys)
	}
	return pf
}

// parseDirectives extracts //hwdp:hotpath and //hwdp:coldpath from a doc
// comment. A reason-less coldpath is returned as Cold="" with Hot
// untouched; the hotalloc analyzer validates and reports it.
func parseDirectives(doc *ast.CommentGroup) (hot bool, cold string) {
	if doc == nil {
		return false, ""
	}
	for _, c := range doc.List {
		switch {
		case c.Text == HotDirective || strings.HasPrefix(c.Text, HotDirective+" "):
			hot = true
		case c.Text == ColdDirective || strings.HasPrefix(c.Text, ColdDirective+" "):
			cold = strings.TrimSpace(strings.TrimPrefix(c.Text, ColdDirective))
		}
	}
	return hot, cold
}

// isPoolAccessor reports whether the doc carries a //hwdp:pool directive.
func isPoolAccessor(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, poolDirective) {
			return true
		}
	}
	return false
}

// localFuncKey names a function within its package: "Name" for package
// functions, "(Recv).Name" for methods (pointer receivers normalized
// away).
func localFuncKey(fn *types.Func) string {
	fn = fn.Origin()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		_, name := analysis.NamedPathAndName(sig.Recv().Type())
		if name == "" {
			name = "?"
		}
		return "(" + name + ")." + fn.Name()
	}
	return fn.Name()
}

// DeclFuncKey returns the global key of a declared function, or "" when
// the declaration did not type-check.
func DeclFuncKey(info *types.Info, fd *ast.FuncDecl) string {
	fn, _ := info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return ""
	}
	return FuncKey(fn)
}

// FuncKey names a function globally ("pkgpath::local"), or "" for
// functions without a package (builtins).
func FuncKey(fn *types.Func) string {
	fn = fn.Origin()
	if fn.Pkg() == nil {
		return ""
	}
	return JoinKey(analysis.NormalizePkgPath(fn.Pkg().Path()), localFuncKey(fn))
}

// sigString renders a signature with the receiver stripped and parameter
// names erased, qualifying named types by full package path — the shared
// key shape for the method index and iface edges.
func sigString(sig *types.Signature) string {
	anon := func(t *types.Tuple) *types.Tuple {
		vars := make([]*types.Var, t.Len())
		for i := 0; i < t.Len(); i++ {
			vars[i] = types.NewVar(token.NoPos, nil, "", t.At(i).Type())
		}
		return types.NewTuple(vars...)
	}
	stripped := types.NewSignatureType(nil, nil, nil, anon(sig.Params()), anon(sig.Results()), sig.Variadic())
	return types.TypeString(stripped, func(p *types.Package) string {
		return analysis.NormalizePkgPath(p.Path())
	})
}

// allocPkgs lists standard-library calls recorded as allocation atoms at
// the call site (the walk does not enter non-module packages). A nil set
// means every function in the package allocates for hot-path purposes.
var allocPkgs = map[string]map[string]bool{
	"fmt":           nil,
	"errors":        {"New": true, "Errorf": true, "Join": true},
	"strings":       {"Join": true, "Repeat": true, "Replace": true, "ReplaceAll": true, "Split": true, "SplitN": true, "Fields": true, "ToUpper": true, "ToLower": true, "Map": true, "Clone": true, "WriteString": true, "WriteByte": true, "WriteRune": true, "Write": true, "Grow": true, "String": true},
	"strconv":       {"Itoa": true, "FormatInt": true, "FormatUint": true, "FormatFloat": true, "Quote": true, "Unquote": true, "AppendInt": true, "AppendUint": true, "AppendFloat": true, "AppendQuote": true},
	"bytes":         {"Join": true, "Repeat": true, "Split": true, "Fields": true, "ToUpper": true, "ToLower": true, "Clone": true, "NewBuffer": true, "NewBufferString": true, "Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true, "Grow": true, "String": true},
	"sort":          {"Slice": true, "SliceStable": true, "Sort": true, "Stable": true, "Strings": true, "Ints": true, "Float64s": true},
	"os":            nil,
	"io":            nil,
	"bufio":         nil,
	"log":           nil,
	"regexp":        nil,
	"encoding/json": nil,
	"math/big":      nil,
	"reflect":       nil,
}

// summarizer walks one package's function bodies.
type summarizer struct {
	u         *analysis.Unit
	pf        *PkgFacts
	pkg       string
	laneAtoms bool
}

// walkFunc summarizes one function body into ff. poolFn suppresses
// hotalloc atoms (pool accessors allocate only to grow the pool, which
// the alloc pins amortize away); closures inherit it.
func (s *summarizer) walkFunc(key string, ff *FuncFacts, body ast.Node, poolFn bool) {
	w := &funcWalker{
		s: s, key: key, ff: ff, poolFn: poolFn,
		callees: map[ast.Node]bool{},
		handled: map[ast.Node]bool{},
	}
	w.collectPanicSpans(body)
	ast.Inspect(body, w.visit)
}

// funcWalker holds per-function walk state.
type funcWalker struct {
	s      *summarizer
	key    string
	ff     *FuncFacts
	poolFn bool
	lits   int
	// callees marks expressions serving as a call's function operand, so
	// the identifier visitors do not double-count them as value
	// references.
	callees map[ast.Node]bool
	// handled marks composite literals already reported through an
	// enclosing &-expression.
	handled map[ast.Node]bool
	// panicSpans are the argument ranges of panic(...) calls; allocations
	// feeding a panic are failure-path formatting, not steady-state heap
	// traffic.
	panicSpans [][2]token.Pos
}

func (w *funcWalker) collectPanicSpans(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != body {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			if _, isBuiltin := w.s.u.Info.Uses[id].(*types.Builtin); isBuiltin {
				w.panicSpans = append(w.panicSpans, [2]token.Pos{call.Lparen, call.Rparen})
			}
		}
		return true
	})
}

func (w *funcWalker) inPanic(pos token.Pos) bool {
	for _, sp := range w.panicSpans {
		if sp[0] <= pos && pos <= sp[1] {
			return true
		}
	}
	return false
}

// posString renders a position as "file.go:line".
func (s *summarizer) posString(pos token.Pos) string {
	p := s.u.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// atom records one site unless a //hwdp:ignore at the site waives it.
func (w *funcWalker) atom(analyzer, kind string, pos token.Pos, format string, args ...any) {
	if w.s.u.Suppresses(analyzer, pos) {
		return
	}
	w.ff.Atoms = append(w.ff.Atoms, Atom{
		Analyzer: analyzer,
		Kind:     kind,
		Msg:      fmt.Sprintf(format, args...),
		Pos:      w.s.posString(pos),
		pos:      pos,
	})
}

// allocAtom records a hotalloc atom, subject to the pool-accessor and
// panic-argument exemptions.
func (w *funcWalker) allocAtom(kind string, pos token.Pos, format string, args ...any) {
	if w.poolFn || w.inPanic(pos) {
		return
	}
	w.atom("hotalloc", kind, pos, format, args...)
}

// laneAtom records a laneescape atom (collected only outside hot-path
// packages, where lanesafety does not look).
func (w *funcWalker) laneAtom(kind string, pos token.Pos, format string, args ...any) {
	if !w.s.laneAtoms {
		return
	}
	w.atom("laneescape", kind, pos, format, args...)
}

// edge records one outgoing edge.
func (w *funcWalker) edge(kind, target string, pos token.Pos) {
	w.ff.Edges = append(w.ff.Edges, Edge{Kind: kind, Target: target, Pos: w.s.posString(pos), pos: pos})
}

func (w *funcWalker) visit(n ast.Node) bool {
	info := w.s.u.Info
	switch n := n.(type) {
	case *ast.FuncLit:
		w.lits++
		litKey := w.key + "$" + strconv.Itoa(w.lits)
		w.edge("ref", JoinKey(w.s.pkg, litKey), n.Pos())
		if caps := analysis.CapturedVars(info, w.s.u.Pkg, n); len(caps) > 0 {
			w.allocAtom("closure", n.Pos(), "closure capturing %s allocates its environment per call", strings.Join(caps, ", "))
		}
		litFF := &FuncFacts{}
		w.s.pf.Funcs[litKey] = litFF
		w.s.walkFunc(litKey, litFF, n.Body, w.poolFn)
		return false
	case *ast.CallExpr:
		w.call(n)
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			w.pkgVarWrite(lhs)
		}
		w.boxedAssign(n)
	case *ast.IncDecStmt:
		w.pkgVarWrite(n.X)
	case *ast.GoStmt:
		w.laneAtom("go", n.Pos(), "go statement starts a host-scheduled goroutine")
	case *ast.SendStmt:
		w.laneAtom("chansend", n.Pos(), "channel send serializes on the host scheduler, not the virtual clock")
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			w.laneAtom("chanrecv", n.Pos(), "channel receive serializes on the host scheduler, not the virtual clock")
		}
		if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok && n.Op == token.AND {
			w.handled[lit] = true
			w.allocAtom("composite", n.Pos(), "&%s literal escapes to the heap", typeLabel(info, lit))
		}
	case *ast.CompositeLit:
		if !w.handled[n] {
			switch types.Unalias(underlying(info, n)).(type) {
			case *types.Slice:
				w.allocAtom("composite", n.Pos(), "slice literal %s allocates its backing array", typeLabel(info, n))
			case *types.Map:
				w.allocAtom("maplit", n.Pos(), "map literal %s allocates", typeLabel(info, n))
			}
		}
	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if tv, ok := info.Types[n]; ok && tv.Value == nil && tv.Type != nil {
				if b, ok := types.Unalias(tv.Type.Underlying()).(*types.Basic); ok && b.Info()&types.IsString != 0 {
					w.allocAtom("concat", n.Pos(), "string concatenation allocates the result")
				}
			}
		}
	case *ast.SelectorExpr:
		w.syncUse(n)
		w.funcRef(n, n.Sel)
		w.handled[n.Sel] = true
	case *ast.Ident:
		if !w.handled[n] {
			w.funcRef(n, n)
		}
	}
	return true
}

// underlying returns the underlying type of an expression, or nil.
func underlying(info *types.Info, e ast.Expr) types.Type {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return nil
	}
	return tv.Type.Underlying()
}

// typeLabel renders an expression's type compactly for messages.
func typeLabel(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return "composite"
	}
	return types.TypeString(tv.Type, func(p *types.Package) string { return p.Name() })
}

// pkgVarWrite flags an assignment target resolving to a package-level
// variable, mirroring lanesafety's local check for packages it does not
// cover.
func (w *funcWalker) pkgVarWrite(lhs ast.Expr) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return
	}
	v, ok := w.s.u.Info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return
	}
	w.laneAtom("pkgwrite", lhs.Pos(), "write to package-level variable %s (reachable from every engine lane at once)", v.Name())
}

// syncUse flags sync / sync-atomic selector uses.
func (w *funcWalker) syncUse(sel *ast.SelectorExpr) {
	obj := w.s.u.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "sync", "sync/atomic":
		w.laneAtom("sync", sel.Pos(), "%s.%s couples event outcomes to host-scheduler timing", obj.Pkg().Name(), obj.Name())
	}
}

// funcRef records a "ref" edge when a module function or method is used
// as a value (bound, stored, passed) rather than called: the binder makes
// it reachable. Binding a method with a receiver also allocates the bound
// closure.
func (w *funcWalker) funcRef(expr ast.Expr, id *ast.Ident) {
	if w.callees[expr] || w.callees[id] {
		return
	}
	fn, ok := w.s.u.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	fn = fn.Origin()
	if fn.Pkg() == nil || !strings.HasPrefix(analysis.NormalizePkgPath(fn.Pkg().Path()), "hwdp") {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if sel, ok := expr.(*ast.SelectorExpr); ok {
			if s := w.s.u.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
				w.allocAtom("methodvalue", expr.Pos(), "method value %s.%s allocates a bound closure", typeLabel(w.s.u.Info, sel.X), fn.Name())
			}
		}
		if types.IsInterface(sig.Recv().Type()) {
			return // abstract method reference: nothing concrete to walk
		}
	}
	w.edge("ref", FuncKey(fn), expr.Pos())
}

// markCallee tags a call's function operand so the reference visitors
// skip it.
func (w *funcWalker) markCallee(fun ast.Expr) {
	fun = ast.Unparen(fun)
	w.callees[fun] = true
	switch f := fun.(type) {
	case *ast.SelectorExpr:
		w.callees[f.Sel] = true
	case *ast.IndexExpr:
		w.markCallee(f.X)
	case *ast.IndexListExpr:
		w.markCallee(f.X)
	}
}

// call handles one call expression: builtin allocation atoms, conversion
// boxing, call/iface edges, stdlib allocation atoms, and argument boxing.
func (w *funcWalker) call(call *ast.CallExpr) {
	info := w.s.u.Info
	fun := ast.Unparen(call.Fun)
	w.markCallee(call.Fun)

	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "new":
				w.allocAtom("new", call.Pos(), "new(%s) allocates", exprLabel(call.Args, 0))
			case "make":
				switch types.Unalias(underlying(info, call)).(type) {
				case *types.Slice:
					w.allocAtom("make", call.Pos(), "make of slice %s allocates", exprLabel(call.Args, 0))
				case *types.Map:
					w.allocAtom("make", call.Pos(), "make of map %s allocates", exprLabel(call.Args, 0))
				case *types.Chan:
					w.allocAtom("make", call.Pos(), "make of chan %s allocates", exprLabel(call.Args, 0))
					w.laneAtom("chanmake", call.Pos(), "channel creation in lane-reachable code")
				}
			case "append":
				w.allocAtom("append", call.Pos(), "append may grow the backing array")
			}
			return
		}
	}

	if analysis.IsConversion(info, call) {
		tv := info.Types[call.Fun]
		if len(call.Args) == 1 {
			w.boxAtom(tv.Type, call.Args[0])
			w.stringConvAtom(tv.Type, call.Args[0], call.Pos())
		}
		return
	}

	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		// Call through a function-typed value: the binding site already
		// contributed a ref edge; still check argument boxing.
		if sig, ok := types.Unalias(underlying(info, call.Fun)).(*types.Signature); ok {
			w.boxArgs(sig, call)
		}
		return
	}
	fn = fn.Origin()
	sig, _ := fn.Type().(*types.Signature)
	if fn.Pkg() == nil {
		return
	}
	ppath := analysis.NormalizePkgPath(fn.Pkg().Path())
	denylisted := false
	if !strings.HasPrefix(ppath, "hwdp") {
		if fns, ok := allocPkgs[ppath]; ok && (fns == nil || fns[fn.Name()]) {
			w.allocAtom("stdcall", call.Pos(), "call to %s.%s allocates", fn.Pkg().Name(), fn.Name())
			denylisted = true
		}
	} else if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		w.edge("iface", fn.Name()+"|"+sigString(sig), call.Pos())
	} else {
		w.edge("call", FuncKey(fn), call.Pos())
	}
	if sig != nil && !denylisted {
		w.boxArgs(sig, call)
	}
}

// exprLabel renders the i'th argument's source text-ish label (its type
// for make/new) without failing on short argument lists.
func exprLabel(args []ast.Expr, i int) string {
	if i >= len(args) {
		return "?"
	}
	if id, ok := args[i].(*ast.Ident); ok {
		return id.Name
	}
	return "type"
}

// boxArgs reports arguments boxed into interface parameters.
func (w *funcWalker) boxArgs(sig *types.Signature, call *ast.CallExpr) {
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic():
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			if sl, ok := types.Unalias(params.At(params.Len() - 1).Type().Underlying()).(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		w.boxAtom(pt, arg)
	}
}

// boxedAssign reports non-pointer-shaped concrete values assigned into
// interface-typed destinations.
func (w *funcWalker) boxedAssign(n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i := range n.Lhs {
		if tv, ok := w.s.u.Info.Types[n.Lhs[i]]; ok && tv.Type != nil {
			w.boxAtom(tv.Type, n.Rhs[i])
		}
	}
}

// boxAtom records an interface-boxing allocation when a concrete,
// non-pointer-shaped, non-constant value converts to an interface type.
func (w *funcWalker) boxAtom(dst types.Type, e ast.Expr) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := w.s.u.Info.Types[e]
	if !ok || tv.Type == nil || tv.IsNil() || tv.Value != nil {
		return
	}
	t := tv.Type
	if types.IsInterface(t) || pointerShaped(t) {
		return
	}
	w.allocAtom("box", e.Pos(), "%s value boxed into %s (heap-allocated interface data)",
		types.TypeString(t, func(p *types.Package) string { return p.Name() }),
		types.TypeString(dst, func(p *types.Package) string { return p.Name() }))
}

// pointerShaped reports whether values of t fit an interface data word
// without allocation (pointers, channels, maps, funcs, unsafe.Pointer).
func pointerShaped(t types.Type) bool {
	switch u := types.Unalias(t.Underlying()).(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// stringConvAtom records string<->[]byte/[]rune conversion allocations.
func (w *funcWalker) stringConvAtom(dst types.Type, e ast.Expr, pos token.Pos) {
	tv, ok := w.s.u.Info.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil || dst == nil {
		return
	}
	from, to := tv.Type.Underlying(), dst.Underlying()
	if isString(from) && isByteOrRuneSlice(to) {
		w.allocAtom("strconv", pos, "string to %s conversion copies and allocates", typeString(dst))
	}
	if isByteOrRuneSlice(from) && isString(to) {
		w.allocAtom("strconv", pos, "%s to string conversion copies and allocates", typeString(tv.Type))
	}
}

func isString(t types.Type) bool {
	b, ok := types.Unalias(t).(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := types.Unalias(t).(*types.Slice)
	if !ok {
		return false
	}
	b, ok := types.Unalias(sl.Elem().Underlying()).(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

func typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
