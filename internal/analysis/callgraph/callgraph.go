// Package callgraph gives the hwdplint suite an interprocedural spine: a
// per-package summary of each function's outgoing calls and
// interprocedurally-relevant sites ("atoms"), a class-hierarchy method
// index for resolving interface calls, and a registry that merges the
// summaries of a package's dependency closure so analyzers can walk the
// call graph across package boundaries.
//
// Summaries are plain data (JSON), serialized per package. Under the
// `go vet -vettool` protocol cmd/hwdplint writes each package's summary to
// the vet facts file the go command provides (vet.cfg VetxOutput) and
// reads its dependencies' summaries back (vet.cfg PackageVetx), so facts
// flow between separate tool invocations exactly like x/tools analyzer
// facts. Standalone drivers (hwdplint with package patterns, the
// TestLintClean gate, the analyzertest fixture harness) summarize the
// whole load in dependency order within one process.
//
// The graph is a deliberate over-approximation, resolved class-hierarchy
// style:
//
//   - static calls and method calls on concrete types become direct edges;
//   - interface method calls become "iface" edges keyed by method name
//     plus receiver-less signature, resolved at walk time against every
//     concrete method of the same name and signature in the merged
//     registry (CHA: no points-to narrowing);
//   - a function or method referenced as a value (assigned, passed,
//     stored) becomes a "ref" edge, so callbacks are considered reachable
//     from the code that binds them rather than from the indirect call
//     sites that later invoke them.
//
// Calls through plain function-typed variables therefore do not add
// edges of their own: the binding site already did. Event-callback entry
// points that are only ever reached through pooled func-value dispatch
// (the engine's fire loop) must carry their own //hwdp:hotpath root
// annotation — see docs/ANALYSIS.md.
package callgraph

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"
)

// Version tags the serialized fact format; a registry silently drops
// summaries written by a different format version.
const Version = 1

// Atom is one interprocedurally-relevant site inside a function: a
// potential heap allocation (Analyzer "hotalloc") or a lane-unsafe
// operation (Analyzer "laneescape"). Atoms waived with //hwdp:ignore at
// their own line never enter the summary.
type Atom struct {
	// Analyzer names the check the atom feeds ("hotalloc" or
	// "laneescape").
	Analyzer string
	// Kind is a stable short tag for the site class (e.g. "append",
	// "box", "pkgwrite").
	Kind string
	// Msg describes the site for diagnostics.
	Msg string
	// Pos is the site position as "file.go:line" (base filename).
	Pos string

	pos token.Pos // valid only in the summarizing process
}

// Edge is one outgoing call-graph edge of a function.
type Edge struct {
	// Kind is "call" (direct), "iface" (interface method, resolved CHA
	// style at walk time), or "ref" (function value bound, considered
	// reachable).
	Kind string
	// Target is a function key "pkgpath::local" for call/ref edges, or a
	// method selector "Name|signature" for iface edges.
	Target string
	// Pos is the call or binding site as "file.go:line".
	Pos string

	pos token.Pos // valid only in the summarizing process
}

// FuncFacts is the summary of one function (or function literal, keyed
// "parent$n").
type FuncFacts struct {
	// Atoms are the function's own relevant sites.
	Atoms []Atom `json:",omitempty"`
	// Edges are the function's outgoing edges, in source order.
	Edges []Edge `json:",omitempty"`
	// Hot marks a //hwdp:hotpath root for the hotalloc analyzer.
	Hot bool `json:",omitempty"`
	// Cold holds the //hwdp:coldpath reason; hotalloc stops descending
	// into cold functions (laneescape does not: cold code still runs on
	// the lane).
	Cold string `json:",omitempty"`
}

// PkgFacts is the serialized summary of one package.
type PkgFacts struct {
	// Version is the fact format version.
	Version int
	// Pkg is the normalized import path.
	Pkg string
	// Funcs maps local function keys ("Name", "(Recv).Name",
	// "(Recv).Name$1") to their summaries.
	Funcs map[string]*FuncFacts `json:",omitempty"`
	// Methods is the class-hierarchy index: "Name|signature" to the local
	// keys of this package's concrete methods with that name and
	// signature.
	Methods map[string][]string `json:",omitempty"`
}

// Encode serializes the summary for a vet facts file.
func (p *PkgFacts) Encode() ([]byte, error) {
	return json.Marshal(p)
}

// Decode parses a serialized summary, rejecting other format versions.
func Decode(data []byte) (*PkgFacts, error) {
	var p PkgFacts
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, err
	}
	if p.Version != Version {
		return nil, fmt.Errorf("fact version %d, want %d", p.Version, Version)
	}
	return &p, nil
}

// Registry merges the summaries of a package and its dependency closure.
type Registry struct {
	pkgs  map[string]*PkgFacts
	paths []string // sorted keys of pkgs, for deterministic iteration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{pkgs: make(map[string]*PkgFacts)}
}

// Add merges one package summary (replacing any previous summary for the
// same path).
func (r *Registry) Add(p *PkgFacts) {
	if _, ok := r.pkgs[p.Pkg]; !ok {
		r.paths = append(r.paths, p.Pkg)
		sort.Strings(r.paths)
	}
	r.pkgs[p.Pkg] = p
}

// LoadFile reads a serialized summary from a vet facts file. Unreadable,
// empty, or version-mismatched files are skipped without error: the go
// command may hand the tool facts files written by other configurations,
// and a missing summary only widens the analysis' blind spot, which the
// walk already treats as opaque.
func (r *Registry) LoadFile(path string) {
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		return
	}
	p, err := Decode(data)
	if err != nil {
		return
	}
	r.Add(p)
}

// Pkg returns the summary for a normalized import path, or nil.
func (r *Registry) Pkg(path string) *PkgFacts {
	return r.pkgs[path]
}

// Func resolves a global function key "pkgpath::local", or nil when the
// package or function is unknown (stdlib, un-summarized dependency).
func (r *Registry) Func(key string) *FuncFacts {
	pkg, local, ok := SplitKey(key)
	if !ok {
		return nil
	}
	p := r.pkgs[pkg]
	if p == nil {
		return nil
	}
	return p.Funcs[local]
}

// methodImpls returns the global keys of every concrete method in the
// registry matching an iface edge target "Name|signature", sorted.
func (r *Registry) methodImpls(sel string) []string {
	var out []string
	for _, path := range r.paths {
		for _, local := range r.pkgs[path].Methods[sel] {
			out = append(out, JoinKey(path, local))
		}
	}
	sort.Strings(out)
	return out
}

// JoinKey builds a global function key from a package path and local key.
func JoinKey(pkg, local string) string { return pkg + "::" + local }

// SplitKey splits a global function key into package path and local key.
func SplitKey(key string) (pkg, local string, ok bool) {
	i := strings.Index(key, "::")
	if i < 0 {
		return "", "", false
	}
	return key[:i], key[i+2:], true
}

// DisplayKey renders a function key for diagnostics, dropping the module
// prefix ("hwdp/internal/smu::(SMU).HandleMiss" -> "smu.(SMU).HandleMiss").
func DisplayKey(key string) string {
	pkg, local, ok := SplitKey(key)
	if !ok {
		return key
	}
	pkg = strings.TrimPrefix(pkg, "hwdp/internal/")
	pkg = strings.TrimPrefix(pkg, "hwdp/")
	if pkg == "" || pkg == "hwdp" {
		return local
	}
	return pkg + "." + local
}
