package callgraph

import (
	"os"
	"reflect"
	"strings"
	"testing"
)

// reg builds a registry from hand-written package summaries, the way a
// driver would assemble one from facts files.
func reg(pkgs ...*PkgFacts) *Registry {
	r := NewRegistry()
	for _, p := range pkgs {
		p.Version = Version
		r.Add(p)
	}
	return r
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	in := &PkgFacts{
		Version: Version,
		Pkg:     "hwdp/internal/smu",
		Funcs: map[string]*FuncFacts{
			"(SMU).HandleMiss": {
				Hot:   true,
				Edges: []Edge{{Kind: "call", Target: "hwdp/internal/smu::(SMU).admit", Pos: "smu.go:10"}},
			},
			"(SMU).admit": {
				Atoms: []Atom{{Analyzer: "hotalloc", Kind: "append", Msg: "append may grow", Pos: "smu.go:20"}},
				Cold:  "",
			},
		},
		Methods: map[string][]string{"HandleMiss|func(uint64)": {"(SMU).HandleMiss"}},
	}
	data, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("roundtrip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestDecodeRejectsOtherVersions(t *testing.T) {
	p := &PkgFacts{Version: Version + 1, Pkg: "x"}
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data); err == nil {
		t.Error("Decode accepted a summary with a foreign format version")
	}
	if _, err := Decode([]byte("not json")); err == nil {
		t.Error("Decode accepted garbage")
	}
}

// TestReachableChain walks a three-package chain and checks both the
// finding and its reconstructed call path.
func TestReachableChain(t *testing.T) {
	r := reg(
		&PkgFacts{Pkg: "a", Funcs: map[string]*FuncFacts{
			"Root": {Edges: []Edge{{Kind: "call", Target: "b::Mid", Pos: "a.go:5"}}},
		}},
		&PkgFacts{Pkg: "b", Funcs: map[string]*FuncFacts{
			"Mid": {Edges: []Edge{{Kind: "call", Target: "c::Leaf", Pos: "b.go:7"}}},
		}},
		&PkgFacts{Pkg: "c", Funcs: map[string]*FuncFacts{
			"Leaf": {Atoms: []Atom{{Analyzer: "hotalloc", Kind: "make", Msg: "make of slice", Pos: "c.go:9"}}},
		}},
	)
	got := r.Reachable("a::Root", "hotalloc", true)
	if len(got) != 1 {
		t.Fatalf("got %d findings, want 1: %+v", len(got), got)
	}
	f := got[0]
	if f.Func != "c::Leaf" || f.Atom.Kind != "make" {
		t.Errorf("finding = %s / %s, want c::Leaf / make", f.Func, f.Atom.Kind)
	}
	want := []Step{{Callee: "b::Mid", CallPos: "a.go:5"}, {Callee: "c::Leaf", CallPos: "b.go:7"}}
	if !reflect.DeepEqual(f.Chain, want) {
		t.Errorf("chain = %+v, want %+v", f.Chain, want)
	}
	if s := RenderChain(f.Chain); s != "b.Mid (a.go:5) -> c.Leaf (b.go:7)" {
		t.Errorf("RenderChain = %q", s)
	}
	// An atom of the other analyzer is invisible to this walk.
	if got := r.Reachable("a::Root", "laneescape", false); len(got) != 0 {
		t.Errorf("laneescape walk found %d hotalloc atoms", len(got))
	}
}

// TestReachableHonorsCold checks the asymmetry between the analyzers:
// hotalloc does not enter //hwdp:coldpath functions, laneescape does
// (cold code still runs on its lane).
func TestReachableHonorsCold(t *testing.T) {
	r := reg(&PkgFacts{Pkg: "a", Funcs: map[string]*FuncFacts{
		"Root": {Edges: []Edge{{Kind: "call", Target: "a::fail", Pos: "a.go:3"}}},
		"fail": {
			Cold: "failure path",
			Atoms: []Atom{
				{Analyzer: "hotalloc", Kind: "concat", Msg: "concat", Pos: "a.go:8"},
				{Analyzer: "laneescape", Kind: "pkgwrite", Msg: "write", Pos: "a.go:9"},
			},
		},
	}})
	if got := r.Reachable("a::Root", "hotalloc", true); len(got) != 0 {
		t.Errorf("hotalloc walk entered a coldpath function: %+v", got)
	}
	if got := r.Reachable("a::Root", "laneescape", false); len(got) != 1 {
		t.Errorf("laneescape walk skipped a coldpath function: %+v", got)
	}
}

// TestReachableResolvesIface checks CHA resolution: an iface edge fans
// out to every concrete method with the same name and signature, across
// packages, and unknown call targets stay opaque without derailing the
// walk.
func TestReachableResolvesIface(t *testing.T) {
	r := reg(
		&PkgFacts{Pkg: "a", Funcs: map[string]*FuncFacts{
			"Root": {Edges: []Edge{
				{Kind: "iface", Target: "Admit|func(int)", Pos: "a.go:4"},
				{Kind: "call", Target: "stdlib::Unknown", Pos: "a.go:5"},
			}},
		}},
		&PkgFacts{
			Pkg: "b",
			Funcs: map[string]*FuncFacts{
				"(Dev).Admit": {Atoms: []Atom{{Analyzer: "hotalloc", Kind: "new", Msg: "new", Pos: "b.go:6"}}},
			},
			Methods: map[string][]string{"Admit|func(int)": {"(Dev).Admit"}},
		},
		&PkgFacts{
			Pkg: "c",
			Funcs: map[string]*FuncFacts{
				"(Model).Admit": {Atoms: []Atom{{Analyzer: "hotalloc", Kind: "append", Msg: "append", Pos: "c.go:6"}}},
			},
			Methods: map[string][]string{"Admit|func(int)": {"(Model).Admit"}},
		},
	)
	got := r.Reachable("a::Root", "hotalloc", true)
	if len(got) != 2 {
		t.Fatalf("got %d findings, want both CHA targets: %+v", len(got), got)
	}
	funcs := []string{got[0].Func, got[1].Func}
	if !(funcs[0] == "b::(Dev).Admit" && funcs[1] == "c::(Model).Admit") &&
		!(funcs[0] == "c::(Model).Admit" && funcs[1] == "b::(Dev).Admit") {
		t.Errorf("iface edge resolved to %v", funcs)
	}
}

func TestKeyHelpers(t *testing.T) {
	if k := JoinKey("hwdp/internal/smu", "(SMU).HandleMiss"); k != "hwdp/internal/smu::(SMU).HandleMiss" {
		t.Errorf("JoinKey = %q", k)
	}
	pkg, local, ok := SplitKey("hwdp/internal/smu::(SMU).HandleMiss")
	if !ok || pkg != "hwdp/internal/smu" || local != "(SMU).HandleMiss" {
		t.Errorf("SplitKey = %q, %q, %v", pkg, local, ok)
	}
	if _, _, ok := SplitKey("nokey"); ok {
		t.Error("SplitKey accepted a key without separator")
	}
	for key, want := range map[string]string{
		"hwdp/internal/smu::(SMU).HandleMiss": "smu.(SMU).HandleMiss",
		"hwdp/internal/ssd/modeled::collect":  "ssd/modeled.collect",
		"hwdp::Main":                          "Main",
		"plain":                               "plain",
	} {
		if got := DisplayKey(key); got != want {
			t.Errorf("DisplayKey(%q) = %q, want %q", key, got, want)
		}
	}
}

// TestRegistrySkipsBadFactsFiles checks the tolerant facts-file loading:
// missing, empty, and foreign-version files only widen the blind spot.
func TestRegistrySkipsBadFactsFiles(t *testing.T) {
	dir := t.TempDir()
	r := NewRegistry()
	r.LoadFile(dir + "/missing.vetx")
	empty := dir + "/empty.vetx"
	if err := writeFile(empty, nil); err != nil {
		t.Fatal(err)
	}
	r.LoadFile(empty)
	foreign := dir + "/foreign.vetx"
	data, _ := (&PkgFacts{Version: Version + 1, Pkg: "x"}).Encode()
	if err := writeFile(foreign, data); err != nil {
		t.Fatal(err)
	}
	r.LoadFile(foreign)
	if got := r.Pkg("x"); got != nil {
		t.Error("registry accepted a foreign-version summary")
	}
	good := dir + "/good.vetx"
	data, _ = (&PkgFacts{Version: Version, Pkg: "x"}).Encode()
	if err := writeFile(good, data); err != nil {
		t.Fatal(err)
	}
	r.LoadFile(good)
	if got := r.Pkg("x"); got == nil {
		t.Error("registry dropped a valid summary")
	}
	if f := r.Func("x::nope"); f != nil {
		t.Error("Func resolved a nonexistent function")
	}
	if f := r.Func("malformed-key"); f != nil {
		t.Error("Func resolved a malformed key")
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// TestFindingReportPosFallback: decoded facts carry no token positions,
// so a chain finding whose first hop is unknown must stay invalid (the
// analyzer then anchors at the root's declaration).
func TestFindingReportPosFallback(t *testing.T) {
	f := Finding{Chain: []Step{{Callee: "b::Mid", CallPos: "a.go:5"}}}
	if f.ReportPos().IsValid() {
		t.Error("chain finding without in-process positions reported a valid pos")
	}
	if strings.Contains(RenderChain(nil), "->") {
		t.Error("empty chain rendered hops")
	}
}
