package callgraph

import (
	"go/token"
	"strings"
)

// Step is one hop of a call chain: the callee reached and the position of
// the call (or binding) that reached it, in the caller's package.
type Step struct {
	// Callee is the global key of the function entered.
	Callee string
	// CallPos is the "file.go:line" site of the call in the caller.
	CallPos string
}

// Finding is one atom reached from a root by the transitive walk.
type Finding struct {
	// Root is the walk's starting function key.
	Root string
	// Func is the key of the function containing the atom.
	Func string
	// Atom is the reached site.
	Atom *Atom
	// Chain is the call path from Root to Func (empty when the atom is in
	// the root itself).
	Chain []Step
	// FirstHopPos is the token position of the first call out of the
	// root, valid in the summarizing process (the root's own package is
	// always summarized by the reporting pass). Zero when the atom is in
	// the root itself — report at Atom's own position then.
	FirstHopPos token.Pos
}

// ReportPos returns the position to anchor a diagnostic for the finding:
// the atom's own position when it sits in the root function (always in
// the reporting package), otherwise the first call out of the root.
func (f *Finding) ReportPos() token.Pos {
	if len(f.Chain) == 0 {
		return f.Atom.pos
	}
	return f.FirstHopPos
}

// pred records how the walk first reached a function.
type pred struct {
	from string
	edge *Edge
}

// Reachable walks the merged call graph from root and returns every atom
// of the named analyzer in reach, each with its discovery chain. The walk
// is breadth-first with edges taken in summary (source) order, so results
// are deterministic. When honorCold is true (hotalloc), functions carrying
// a //hwdp:coldpath reason are not entered; laneescape passes false — cold
// code still runs on its lane.
//
// Unknown targets (standard library, packages outside the registry) are
// treated as opaque: the walk stops there, and any allocation or
// lane-unsafety behind them must have been recorded as an atom at the call
// site during summarization.
func (r *Registry) Reachable(root, analyzer string, honorCold bool) []Finding {
	preds := map[string]pred{root: {}}
	queue := []string{root}
	var out []Finding
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		ff := r.Func(key)
		if ff == nil {
			continue
		}
		for i := range ff.Atoms {
			a := &ff.Atoms[i]
			if a.Analyzer != analyzer {
				continue
			}
			f := Finding{Root: root, Func: key, Atom: a}
			f.Chain, f.FirstHopPos = r.chain(preds, root, key)
			out = append(out, f)
		}
		for i := range ff.Edges {
			e := &ff.Edges[i]
			targets := []string{e.Target}
			if e.Kind == "iface" {
				targets = r.methodImpls(e.Target)
			}
			for _, t := range targets {
				if _, seen := preds[t]; seen {
					continue
				}
				if honorCold {
					if tf := r.Func(t); tf != nil && tf.Cold != "" {
						continue
					}
				}
				preds[t] = pred{from: key, edge: e}
				queue = append(queue, t)
			}
		}
	}
	return out
}

// chain reconstructs the call path root -> ... -> key from the
// predecessor map, returning the steps and the token position of the
// first hop out of the root.
func (r *Registry) chain(preds map[string]pred, root, key string) ([]Step, token.Pos) {
	var rev []Step
	var firstHop token.Pos
	for key != root {
		p := preds[key]
		rev = append(rev, Step{Callee: key, CallPos: p.edge.Pos})
		if p.from == root {
			firstHop = p.edge.pos
		}
		key = p.from
	}
	steps := make([]Step, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		steps = append(steps, rev[i])
	}
	return steps, firstHop
}

// RenderChain formats a discovery chain for a diagnostic:
// "smu.(SMU).admit (smu.go:530) -> trace.(Miss).AddSpan (trace.go:162)".
func RenderChain(chain []Step) string {
	var b strings.Builder
	for i, s := range chain {
		if i > 0 {
			b.WriteString(" -> ")
		}
		b.WriteString(DisplayKey(s.Callee))
		b.WriteString(" (")
		b.WriteString(s.CallPos)
		b.WriteString(")")
	}
	return b.String()
}
