package hotalloc_test

import (
	"testing"

	"hwdp/internal/analysis/analyzertest"
	"hwdp/internal/analysis/hotalloc"
)

// TestHotalloc drives the interprocedural allocation prover over the smu
// fixture, a miniature of the BenchmarkHandleMiss pipeline: the planted
// allocation two hops and one package boundary from the //hwdp:hotpath
// root must be reported with its discovery chain, local atoms report at
// their own site, and the coldpath / pool / panic / waiver exemptions
// stay silent.
func TestHotalloc(t *testing.T) {
	analyzertest.Run(t, "../testdata", "hwdp/internal/smu", hotalloc.Analyzer)
}
