// Package hotalloc turns the miss-path allocation pins (AllocsPerRun in
// internal/smu and internal/sim, BenchmarkHandleMiss) into a static
// guarantee: from every function annotated
//
//	//hwdp:hotpath
//
// it walks all transitively reachable callees through the callgraph facts
// and diagnoses anything that can touch the heap — escaping composite
// literals, closure-environment captures, interface-conversion boxing,
// append growth, map/slice/chan makes, string building, and allocating
// standard-library calls — reporting the callee chain that reaches the
// site.
//
// Descent stops at functions annotated
//
//	//hwdp:coldpath <reason>
//
// (failure/diagnostic paths that run off the steady state), inside
// //hwdp:pool accessors (pool growth is the amortized warm-up allocation
// the pins already discount), and inside panic(...) arguments. The
// annotations matter at the boundaries the call graph cannot see: event
// callbacks dispatched through pooled func values (the engine fire loop)
// are reached dynamically, not through a static edge, so each stage entry
// point on the miss path carries its own //hwdp:hotpath root.
package hotalloc

import (
	"go/ast"
	"strings"

	"hwdp/internal/analysis"
	"hwdp/internal/analysis/callgraph"
)

// Analyzer is the hotalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "prove //hwdp:hotpath functions reach no heap allocation " +
		"(composite escapes, closures, boxing, append growth, allocating " +
		"stdlib calls), reporting the reaching call chain",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !strings.HasPrefix(analysis.NormalizePkgPath(pass.Pkg.Path()), "hwdp") {
		return nil
	}
	var roots []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			hot, cold, coldSeen := directives(fd.Doc)
			if coldSeen && cold == "" {
				pass.Reportf(fd.Name.Pos(), "//hwdp:coldpath needs a reason: say why %s is off the steady-state path", fd.Name.Name)
			}
			if hot && coldSeen {
				pass.Reportf(fd.Name.Pos(), "%s is marked both //hwdp:hotpath and //hwdp:coldpath — pick one", fd.Name.Name)
			}
			if hot && fd.Body != nil {
				roots = append(roots, fd)
			}
		}
	}
	reg, ok := pass.Unit.Facts.(*callgraph.Registry)
	if !ok {
		return nil // fact-less driver: directive validation only
	}
	seen := map[string]bool{}
	for _, fd := range roots {
		root := callgraph.DeclFuncKey(pass.TypesInfo, fd)
		if root == "" {
			continue
		}
		for _, finding := range reg.Reachable(root, "hotalloc", true) {
			key := finding.Func + "|" + finding.Atom.Pos + "|" + finding.Atom.Kind
			if seen[key] {
				continue
			}
			seen[key] = true
			pos := finding.ReportPos()
			if !pos.IsValid() {
				pos = fd.Name.Pos()
			}
			if len(finding.Chain) == 0 {
				pass.Reportf(pos, "hot path %s: %s — the miss path must stay allocation-free (pool the object, pre-bind the callback, or mark the branch //hwdp:coldpath <reason>)",
					callgraph.DisplayKey(root), finding.Atom.Msg)
				continue
			}
			pass.Reportf(pos, "hot path %s reaches a heap allocation: %s: %s at %s — pool it, pre-bind it, or mark the branch //hwdp:coldpath <reason>",
				callgraph.DisplayKey(root), callgraph.RenderChain(finding.Chain), finding.Atom.Msg, finding.Atom.Pos)
		}
	}
	return nil
}

// directives parses the hotpath/coldpath annotations off a doc comment,
// reporting whether a coldpath directive was present at all (so a
// reason-less one can be diagnosed).
func directives(doc *ast.CommentGroup) (hot bool, cold string, coldSeen bool) {
	if doc == nil {
		return false, "", false
	}
	for _, c := range doc.List {
		switch {
		case c.Text == callgraph.HotDirective || strings.HasPrefix(c.Text, callgraph.HotDirective+" "):
			hot = true
		case c.Text == callgraph.ColdDirective || strings.HasPrefix(c.Text, callgraph.ColdDirective+" "):
			coldSeen = true
			cold = strings.TrimSpace(strings.TrimPrefix(c.Text, callgraph.ColdDirective))
		}
	}
	return hot, cold, coldSeen
}
