package loader

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"

	"hwdp/internal/analysis"
)

// VetConfig mirrors the JSON the go command writes to <objdir>/vet.cfg
// for each vetted package (cmd/go/internal/work.vetConfig). PackageVetx
// names the facts files of the package's dependencies (written by earlier
// tool invocations), VetxOutput is where this invocation must write its
// own facts, and VetxOnly marks dependency-only runs that exist purely to
// produce facts.
type VetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// ReadVetConfig parses a vet.cfg file.
func ReadVetConfig(path string) (*VetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	return &cfg, nil
}

// LoadUnit parses and type-checks the package a vet.cfg describes,
// resolving imports through the gc export data the go command supplied.
// Parse and type errors are returned as-is; the caller decides whether
// SucceedOnTypecheckFailure downgrades them.
func (cfg *VetConfig) LoadUnit() (*analysis.Unit, error) {
	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	files, err := ParseFiles(fset, cfg.Dir, cfg.GoFiles)
	if err != nil {
		return nil, err
	}
	info := analysis.NewInfo()
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		Sizes:     types.SizesFor(compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err)
	}
	return &analysis.Unit{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}
