package loader

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// writeVetCfg marshals a VetConfig into a temp vet.cfg the way the go
// command would.
func writeVetCfg(t *testing.T, dir string, cfg *VetConfig) string {
	t.Helper()
	data, err := json.MarshalIndent(cfg, "", "\t")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReadVetConfig checks the fields the driver depends on survive the
// JSON round trip, and that unreadable or malformed files error.
func TestReadVetConfig(t *testing.T) {
	dir := t.TempDir()
	in := &VetConfig{
		ImportPath:  "hwdp/internal/smu",
		Dir:         dir,
		GoFiles:     []string{filepath.Join(dir, "a.go")},
		ImportMap:   map[string]string{"hwdp/internal/sim": "hwdp/internal/sim"},
		PackageFile: map[string]string{"hwdp/internal/sim": "/tmp/sim.a"},
		PackageVetx: map[string]string{"hwdp/internal/sim": "/tmp/sim.vetx"},
		VetxOutput:  filepath.Join(dir, "out.vetx"),
		VetxOnly:    true,
		GoVersion:   "go1.22",

		SucceedOnTypecheckFailure: true,
	}
	path := writeVetCfg(t, dir, in)
	got, err := ReadVetConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ImportPath != in.ImportPath || !got.VetxOnly || !got.SucceedOnTypecheckFailure ||
		got.VetxOutput != in.VetxOutput || got.PackageVetx["hwdp/internal/sim"] != "/tmp/sim.vetx" {
		t.Errorf("ReadVetConfig = %+v, want fields of %+v", got, in)
	}

	if _, err := ReadVetConfig(filepath.Join(dir, "absent.cfg")); err == nil {
		t.Error("ReadVetConfig accepted a missing file")
	}
	bad := filepath.Join(dir, "bad.cfg")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadVetConfig(bad); err == nil {
		t.Error("ReadVetConfig accepted malformed JSON")
	}
}

// TestLoadUnitFromVetCfg type-checks a dependency-free package straight
// from a vet.cfg, the way `go vet -vettool` invokes the driver for leaf
// packages (no export data needed).
func TestLoadUnitFromVetCfg(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "leaf.go")
	code := "// Package leaf is a loader-test fixture.\npackage leaf\n\n// V is exported.\nvar V = add(1, 2)\n\nfunc add(a, b int) int { return a + b }\n"
	if err := os.WriteFile(src, []byte(code), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := &VetConfig{
		ImportPath: "hwdp/internal/leaf",
		Dir:        dir,
		GoFiles:    []string{src},
	}
	u, err := cfg.LoadUnit()
	if err != nil {
		t.Fatal(err)
	}
	if u.Pkg.Path() != "hwdp/internal/leaf" {
		t.Errorf("loaded package path %q", u.Pkg.Path())
	}
	if u.Pkg.Scope().Lookup("V") == nil {
		t.Error("type-checked package lost its declarations")
	}
	if len(u.Files) != 1 || u.Info == nil || u.Fset == nil {
		t.Errorf("unit incomplete: %+v", u)
	}

	// A type error must surface as an error (the driver, not LoadUnit,
	// decides whether SucceedOnTypecheckFailure downgrades it).
	if err := os.WriteFile(src, []byte("package leaf\nvar V undefined\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := cfg.LoadUnit(); err == nil {
		t.Error("LoadUnit accepted a package that does not type-check")
	}

	// A missing source file is a parse-stage error.
	cfg.GoFiles = []string{filepath.Join(dir, "gone.go")}
	if _, err := cfg.LoadUnit(); err == nil {
		t.Error("LoadUnit accepted a vanished source file")
	}
}

// TestLoadUnitResolvesImportMap checks that import resolution consults
// ImportMap before PackageFile: vendored or test-variant import paths
// must rewrite to the canonical key the export-data map uses.
func TestLoadUnitResolvesImportMap(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "uses.go")
	code := "package uses\n\nimport \"hwdp/internal/ghost\"\n\nvar _ = ghost.X\n"
	if err := os.WriteFile(src, []byte(code), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := &VetConfig{
		ImportPath: "hwdp/internal/uses",
		Dir:        dir,
		GoFiles:    []string{src},
		ImportMap:  map[string]string{"hwdp/internal/ghost": "hwdp/internal/canonical"},
		// No PackageFile entry for either path: the lookup must fail with
		// the canonical path in the message, proving the map was applied.
	}
	_, err := cfg.LoadUnit()
	if err == nil {
		t.Fatal("LoadUnit resolved an import with no export data")
	}
	if want := "hwdp/internal/canonical"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not mention the ImportMap-canonicalized path %q", err, want)
	}
}

// TestLoadGoListFallback drives the standalone loader (hwdplint invoked
// with package patterns, no vet.cfg) over a throwaway module, checking
// that `go list -deps -export -json` supplies export data and the module
// packages come back parsed, type-checked, and sorted.
func TestLoadGoListFallback(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}
	dir := t.TempDir()
	files := map[string]string{
		"go.mod":      "module example.com/tiny\n\ngo 1.22\n",
		"a/a.go":      "// Package a is a loader-test fixture.\npackage a\n\n// N is exported.\nconst N = 1\n",
		"b/b.go":      "// Package b imports a.\npackage b\n\nimport \"example.com/tiny/a\"\n\n// M doubles a.N.\nconst M = 2 * a.N\n",
		"b/b_test.go": "package b\n",
	}
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	units, err := Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 2 {
		t.Fatalf("loaded %d units, want 2 (a, b)", len(units))
	}
	if units[0].Pkg.Path() != "example.com/tiny/a" || units[1].Pkg.Path() != "example.com/tiny/b" {
		t.Errorf("unit order = %q, %q, want a then b", units[0].Pkg.Path(), units[1].Pkg.Path())
	}
	if units[1].Pkg.Scope().Lookup("M") == nil {
		t.Error("package b lost its declarations")
	}

	// An unmatchable pattern is a go list error, not a silent empty load.
	if _, err := Load(dir, "./nonexistent"); err == nil {
		t.Error("Load accepted a pattern matching nothing")
	}
}
