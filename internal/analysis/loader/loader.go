// Package loader type-checks this module's packages for standalone
// analysis runs (hwdplint invoked with package patterns, and the lint
// regression test). It shells out to `go list -deps -export -json`, which
// builds export data for every dependency; the named module packages are
// then parsed from source and type-checked against that export data — the
// same split the `go vet` driver uses, without requiring go/packages.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"

	"hwdp/internal/analysis"
)

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	Module     *struct{ Path string }
	Incomplete bool
	Error      *struct{ Err string }
}

// Load type-checks the module packages matching patterns and returns one
// Unit per package, sorted by import path. dir is the directory to run
// `go list` from ("" for the current directory).
func Load(dir string, patterns ...string) ([]*analysis.Unit, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Module != nil {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var units []*analysis.Unit
	for _, p := range targets {
		files, err := ParseFiles(fset, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		info := analysis.NewInfo()
		conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
		pkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		units = append(units, &analysis.Unit{Fset: fset, Files: files, Pkg: pkg, Info: info})
	}
	return units, nil
}

// ParseFiles parses a package's source files with comments (paths may be
// relative to dir, as go list reports them, or absolute, as vet.cfg
// supplies them).
func ParseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}
