package lanesafety_test

import (
	"testing"

	"hwdp/internal/analysis/analyzertest"
	"hwdp/internal/analysis/lanesafety"
)

func TestLanesafety(t *testing.T) {
	analyzertest.Run(t, "../testdata", "hwdp/internal/ssd", lanesafety.Analyzer)
}
