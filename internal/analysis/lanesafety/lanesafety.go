// Package lanesafety rejects state-sharing patterns that are harmless on
// the sequential engine but break the lane scheduler's isolation contract
// (docs/ENGINE.md): under -lanes N, callbacks on different lanes run on
// different goroutines within a round, so the only sound cross-lane
// channels are Engine.Send/SendArg with a delay at or above the sender's
// declared lookahead. The analyzer flags, in hot-path packages:
//
//   - writes to package-level variables from function bodies — a package
//     var is reachable from every lane at once, so a write is a data race
//     under -lanes N and a determinism hazard even when it happens to be
//     race-free (lane scheduling must not influence observable state);
//   - Engine.Send/SendArg with a constant zero delay — zero undercuts any
//     positive lookahead floor, so the receiving lane may already have
//     advanced past the arrival time (the group panics at delivery; the
//     lint catches it at compile time);
//   - sync primitives and channel operations in model packages (the sim
//     package itself is exempt: the lane scheduler is the one place that
//     legitimately owns goroutine coordination). Locks "fix" the race the
//     first check exposes but reintroduce host-scheduling order into the
//     model; cross-lane communication must be an engine send, which the
//     group delivers in deterministic lane order.
//
// Initialization at declaration and in init functions is not flagged:
// construction happens before the group starts rounds, on one goroutine.
package lanesafety

import (
	"go/ast"
	"go/constant"
	"go/types"

	"hwdp/internal/analysis"
)

// Analyzer is the lanesafety check.
var Analyzer = &analysis.Analyzer{
	Name: "lanesafety",
	Doc: "forbid package-variable writes, zero-delay cross-lane sends, and " +
		"sync/channel coordination in simulator model packages: state shared " +
		"across engine lanes must flow through lookahead-respecting sends",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsHotPathPkg(pass.Pkg.Path()) {
		return nil
	}
	simItself := analysis.IsSimPkg(pass.Pkg.Path())
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inInit := fd.Recv == nil && fd.Name.Name == "init"
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if !inInit {
						for _, lhs := range n.Lhs {
							checkPkgVarWrite(pass, lhs)
						}
					}
				case *ast.IncDecStmt:
					if !inInit {
						checkPkgVarWrite(pass, n.X)
					}
				case *ast.CallExpr:
					checkZeroDelaySend(pass, n)
				case *ast.SendStmt:
					if !simItself {
						pass.Reportf(n.Pos(), "channel send in model code: under -lanes N this serializes on the host scheduler, not the virtual clock; hand the value across lanes with sim.Engine.SendArg instead")
					}
				case *ast.UnaryExpr:
					if !simItself && n.Op.String() == "<-" {
						pass.Reportf(n.Pos(), "channel receive in model code: under -lanes N this serializes on the host scheduler, not the virtual clock; hand the value across lanes with sim.Engine.SendArg instead")
					}
				case *ast.SelectorExpr:
					if !simItself {
						checkSyncUse(pass, n)
					}
				}
				return true
			})
		}
	}
	return nil
}

// checkPkgVarWrite flags an assignment target that resolves to a
// package-level variable (of this or any other package).
func checkPkgVarWrite(pass *analysis.Pass, lhs ast.Expr) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		// A selector write (x.f = ...) mutates an object reached through a
		// pointer; lane ownership of objects is the components' contract,
		// not statically checkable here. Only bare package vars are flagged.
		return
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return
	}
	// Package-level variables are exactly those whose parent scope is the
	// package scope.
	if v.Parent() != v.Pkg().Scope() {
		return
	}
	pass.Reportf(lhs.Pos(), "write to package-level variable %s: package state is reachable from every engine lane at once (data race under -lanes N); move it onto a lane-owned component or initialize it at declaration", v.Name())
}

// checkZeroDelaySend flags Engine.Send/SendArg calls whose delay argument
// is a compile-time zero.
func checkZeroDelaySend(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || (fn.Name() != "Send" && fn.Name() != "SendArg") {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	path, name := analysis.NamedPathAndName(sig.Recv().Type())
	if name != "Engine" || !analysis.IsSimPkg(path) {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return
	}
	if v, exact := constant.Int64Val(tv.Value); exact && v == 0 {
		pass.Reportf(call.Args[1].Pos(), "cross-lane %s with zero delay: the receiving lane may already be past Now() (lookahead floor violated; the group panics at delivery) — every cross-lane send needs a positive model delay", fn.Name())
	}
}

// checkSyncUse flags any use of a sync / sync-atomic object (type, func,
// or method) inside a model-package function body.
func checkSyncUse(pass *analysis.Pass, e *ast.SelectorExpr) {
	obj := pass.TypesInfo.Uses[e.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "sync", "sync/atomic":
		pass.Reportf(e.Pos(), "%s.%s in model code: host-scheduler synchronization makes event outcomes depend on lane timing; coordinate across lanes with engine sends instead", obj.Pkg().Name(), obj.Name())
	}
}
