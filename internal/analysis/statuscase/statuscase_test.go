package statuscase_test

import (
	"testing"

	"hwdp/internal/analysis/analyzertest"
	"hwdp/internal/analysis/statuscase"
)

// TestStatusCase drives the exhaustive-switch check over the statustest
// fixture: a default-less switch missing a member reports, a default arm
// satisfies the unmarked form, and //hwdp:exhaustive forbids hiding
// behind the default.
func TestStatusCase(t *testing.T) {
	analyzertest.Run(t, "../testdata", "statustest", statuscase.Analyzer)
}
