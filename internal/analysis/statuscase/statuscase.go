// Package statuscase checks that switches over the simulator's status
// enums stay exhaustive as members are added (PR 1 added NVMe statuses;
// a retry/recovery switch that silently falls through a new status is
// exactly the bug this prevents). Two enum families are registered:
//
//   - the NVMe completion statuses: the Status*-prefixed constants of
//     hwdp/internal/nvme;
//   - the fault kinds: constants of type hwdp/internal/fault.Kind.
//
// A switch whose cases mention any member of a family must either cover
// every member of that family or carry a default arm. Marking the switch
// with a //hwdp:exhaustive comment (own line or the line above) demands
// full coverage even when a default is present — for dispatch points
// where "default" means "silently misroute the new status". Membership is
// discovered from the defining package's scope, so new constants join the
// check without touching the analyzer.
package statuscase

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"hwdp/internal/analysis"
)

// ExhaustiveDirective demands full enum coverage for a switch even when
// it has a default arm.
const ExhaustiveDirective = "//hwdp:exhaustive"

// Analyzer is the statuscase check.
var Analyzer = &analysis.Analyzer{
	Name: "statuscase",
	Doc: "require switches over the NVMe status and fault-kind enums to " +
		"cover every member or carry a default (//hwdp:exhaustive forbids " +
		"hiding behind the default)",
	Run: run,
}

// family describes one registered enum: either every constant of a named
// type, or every prefix-named constant in a package.
type family struct {
	pkg    string // defining package import path
	typ    string // named type ("" for prefix families)
	prefix string // constant-name prefix ("" for typed families)
	what   string // diagnostic label
}

var families = []family{
	{pkg: "hwdp/internal/nvme", prefix: "Status", what: "NVMe status"},
	{pkg: "hwdp/internal/fault", typ: "Kind", what: "fault kind"},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		exhaustive := exhaustiveLines(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw, exhaustive)
			return true
		})
	}
	return nil
}

// exhaustiveLines maps the file's //hwdp:exhaustive comment lines.
func exhaustiveLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if c.Text == ExhaustiveDirective || strings.HasPrefix(c.Text, ExhaustiveDirective+" ") {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt, exhaustive map[int]bool) {
	var fam *family
	var famPkg *types.Package
	covered := map[string]bool{}
	hasDefault := false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, e := range cc.List {
			obj := constObj(pass.TypesInfo, e)
			if obj == nil {
				continue
			}
			f, pkg := familyOf(obj)
			if f == nil {
				continue
			}
			if fam == nil {
				fam, famPkg = f, pkg
			}
			if f == fam {
				covered[obj.Name()] = true
			}
		}
	}
	if fam == nil || famPkg == nil {
		return
	}
	var missing []string
	for _, name := range familyMembers(fam, famPkg) {
		if !covered[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	line := pass.Fset.Position(sw.Pos()).Line
	marked := exhaustive[line] || exhaustive[line-1]
	if hasDefault && !marked {
		return
	}
	if marked {
		pass.Reportf(sw.Pos(), "switch over %s is marked //hwdp:exhaustive but misses %s — handle every member explicitly",
			fam.what, strings.Join(missing, ", "))
		return
	}
	pass.Reportf(sw.Pos(), "switch over %s silently falls through for %s — add the missing cases or a default arm",
		fam.what, strings.Join(missing, ", "))
}

// constObj resolves a case expression to the constant it names, or nil.
func constObj(info *types.Info, e ast.Expr) *types.Const {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	c, _ := info.Uses[id].(*types.Const)
	return c
}

// familyOf reports which registered family the constant belongs to (and
// its defining package), or nil.
func familyOf(c *types.Const) (*family, *types.Package) {
	pkg := c.Pkg()
	if pkg == nil {
		return nil, nil
	}
	path := analysis.NormalizePkgPath(pkg.Path())
	for i := range families {
		f := &families[i]
		if f.pkg != path {
			continue
		}
		if f.typ != "" {
			if _, name := analysis.NamedPathAndName(c.Type()); name == f.typ {
				return f, pkg
			}
			continue
		}
		if strings.HasPrefix(c.Name(), f.prefix) {
			return f, pkg
		}
	}
	return nil, nil
}

// familyMembers enumerates the family's constant names from the defining
// package's scope, sorted, so new members join the check automatically.
func familyMembers(f *family, pkg *types.Package) []string {
	var out []string
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if f.typ != "" {
			if _, tname := analysis.NamedPathAndName(c.Type()); tname != f.typ {
				continue
			}
		} else if !strings.HasPrefix(name, f.prefix) {
			continue
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
