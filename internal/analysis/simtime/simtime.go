// Package simtime enforces unit discipline on sim.Time (int64
// picoseconds). Three mistakes can silently mis-calibrate every latency in
// the reproduction, and all three are caught here:
//
//  1. A bare numeric constant flowing into a sim.Time context ("Post(500,
//     ...)" — 500 what?). Durations must carry a unit: a sim unit constant
//     (sim.Nanosecond), a helper (sim.Cycles, sim.Micro, sim.NS), or
//     another sim.Time value. Scalar multipliers on unit-carrying
//     expressions ("2*t.ReqRegWrite") are fine, as is the zero value.
//
//  2. A time.Duration converted directly to sim.Time. Duration is
//     nanoseconds, sim.Time is picoseconds: "sim.Time(d)" is a silent
//     1000x error. sim.FromDuration does the rescale.
//
//  3. A redundant conversion sim.Time(x) where x is already sim.Time —
//     harmless today, but it hides mistakes of class 1 and 2 during
//     refactors, so it is kept out of the tree.
//
// The sim package itself (where the unit constants and helpers are
// defined) is exempt.
package simtime

import (
	"go/ast"
	"go/types"

	"hwdp/internal/analysis"
)

// Analyzer is the simtime check.
var Analyzer = &analysis.Analyzer{
	Name: "simtime",
	Doc: "flag unit-less constants used as sim.Time, time.Duration-to-sim.Time " +
		"conversions (a 1000x ns/ps error), and redundant sim.Time conversions",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if analysis.IsSimPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		checkFile(pass, f)
	}
	return nil
}

// checkFile walks one file with parent tracking, looking for maximal
// sim.Time-typed expressions to classify.
func checkFile(pass *analysis.Pass, f *ast.File) {
	// parents maps each expression to its enclosing expression, so a
	// literal can climb to the outermost sim.Time expression it is part
	// of.
	parents := map[ast.Expr]ast.Expr{}
	ast.Inspect(f, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		for _, child := range childExprs(e) {
			parents[child] = e
		}
		return true
	})

	// Operands of explicit sim.Time(...) conversions are owned by
	// checkConversion; the literal walk skips them so each mistake is
	// reported exactly once.
	conversionArgs := map[ast.Expr]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if ok && len(call.Args) == 1 && analysis.IsConversion(pass.TypesInfo, call) &&
			analysis.IsSimTime(typeOf(pass, call.Fun)) {
			conversionArgs[ast.Unparen(call.Args[0])] = true
		}
		return true
	})

	seen := map[ast.Expr]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkConversion(pass, n)
		case *ast.BasicLit:
			if !analysis.IsSimTime(typeOf(pass, n)) {
				return true
			}
			m := maximalTimeExpr(pass, parents, n)
			if seen[m] || conversionArgs[m] || conversionArgs[ast.Expr(n)] {
				return true
			}
			seen[m] = true
			checkBareConstant(pass, m)
		}
		return true
	})
}

func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

// childExprs lists the direct expression children of e that can carry a
// sim.Time type.
func childExprs(e ast.Expr) []ast.Expr {
	switch e := e.(type) {
	case *ast.BinaryExpr:
		return []ast.Expr{e.X, e.Y}
	case *ast.UnaryExpr:
		return []ast.Expr{e.X}
	case *ast.ParenExpr:
		return []ast.Expr{e.X}
	}
	return nil
}

// maximalTimeExpr climbs from lit to the outermost enclosing expression
// that still has type sim.Time (through parens and +,-,*,/,%,<< arithmetic).
func maximalTimeExpr(pass *analysis.Pass, parents map[ast.Expr]ast.Expr, lit ast.Expr) ast.Expr {
	cur := lit
	for {
		p, ok := parents[cur]
		if !ok || !analysis.IsSimTime(typeOf(pass, p)) {
			return cur
		}
		cur = p
	}
}

// mentionsTimeValue reports whether some identifier under e denotes a
// sim.Time-typed value (constant, variable, or field) — the marker that a
// unit has been attached. Type names do not count, so the conversion
// sim.Time(5000) is still unit-less.
func mentionsTimeValue(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		if _, isType := obj.(*types.TypeName); !isType && analysis.IsSimTime(obj.Type()) {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkBareConstant reports m when it is a sim.Time expression built from
// literals alone: no unit constant, no Time-typed variable, no call.
func checkBareConstant(pass *analysis.Pass, m ast.Expr) {
	tv, ok := pass.TypesInfo.Types[m]
	if !ok || tv.Value == nil {
		return // non-constant: some operand carries the unit dynamically
	}
	if mentionsTimeValue(pass, m) {
		return
	}
	if v := tv.Value.String(); v == "0" {
		return
	}
	pass.Reportf(m.Pos(), "unit-less constant %s used as sim.Time (picoseconds): attach a unit (e.g. 5*sim.Microsecond, sim.Cycles(5), sim.Nano(5))", tv.Value)
}

// checkConversion reports sim.Time(x) conversions from time.Duration
// (class 2), from sim.Time itself (class 3), and from unit-less constants
// (class 1 spelled as an explicit conversion).
func checkConversion(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 || !analysis.IsConversion(pass.TypesInfo, call) {
		return
	}
	if !analysis.IsSimTime(typeOf(pass, call.Fun)) {
		return
	}
	arg := call.Args[0]
	argT := typeOf(pass, arg)
	tv, hasTV := pass.TypesInfo.Types[arg]
	switch {
	case analysis.IsTimeDuration(argT):
		pass.Reportf(call.Pos(), "time.Duration (nanoseconds) converted directly to sim.Time (picoseconds) is a 1000x unit error: use sim.FromDuration")
	case hasTV && tv.Value != nil && !mentionsTimeValue(pass, arg):
		// A constant operand with no unit attached. (go/types records the
		// converted-to type for untyped constant operands, so this case
		// must precede the redundant-conversion one.)
		if tv.Value.String() != "0" {
			pass.Reportf(call.Pos(), "unit-less constant %s used as sim.Time (picoseconds): attach a unit (e.g. 5*sim.Microsecond, sim.Cycles(5), sim.Nano(5))", tv.Value)
		}
	case analysis.IsSimTime(argT):
		pass.Reportf(call.Pos(), "redundant conversion: the operand is already sim.Time (drop the sim.Time(...) wrapper)")
	}
}
