package simtime_test

import (
	"testing"

	"hwdp/internal/analysis/analyzertest"
	"hwdp/internal/analysis/simtime"
)

func TestSimtime(t *testing.T) {
	analyzertest.Run(t, "../testdata", "simtimetest", simtime.Analyzer)
}
