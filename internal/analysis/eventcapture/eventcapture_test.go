package eventcapture_test

import (
	"testing"

	"hwdp/internal/analysis/analyzertest"
	"hwdp/internal/analysis/eventcapture"
)

func TestEventcapture(t *testing.T) {
	analyzertest.Run(t, "../testdata", "hwdp/internal/mmu", eventcapture.Analyzer)
}
