// Package eventcapture flags closures handed to the event engine's
// scheduling methods (Post, PostAt, After, At) in hot-path packages when
// they capture local variables. Each such closure is a fresh heap
// allocation on every call — on the page-miss path that is millions of
// allocations per run and the difference between 0 and 2 allocs/op in
// BenchmarkHandleMiss. The fix is a pre-bound method value (captures
// nothing) or the pooled argument-passing forms PostArg / AtArg /
// AtArgPooled, which carry the per-event state through a recycled carrier
// instead of a closure environment.
//
// Capture-free closures (pure method values wrapped in func(){...} with
// only package-level or receiver-free references) are allowed: the
// compiler hoists those to a single static closure.
package eventcapture

import (
	"go/ast"
	"strings"

	"hwdp/internal/analysis"
)

// Analyzer is the eventcapture check.
var Analyzer = &analysis.Analyzer{
	Name: "eventcapture",
	Doc: "flag capturing closures passed to sim.Engine scheduling methods in " +
		"hot-path packages; use pre-bound callbacks or PostArg/AtArgPooled",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsHotPathPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkSchedule(pass, call)
			return true
		})
	}
	return nil
}

// checkSchedule inspects one call: if it is an Engine scheduling method
// taking a bare func() and the argument is a capturing closure, report it.
func checkSchedule(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	name, ok := analysis.IsEngineScheduler(fn)
	if !ok || !analysis.EngineSchedulers[name] {
		return // PostArg/AtArg/AtArgPooled are the sanctioned forms
	}
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.FuncLit)
		if !ok {
			continue
		}
		caps := analysis.CapturedVars(pass.TypesInfo, pass.Pkg, lit)
		if len(caps) == 0 {
			continue
		}
		pass.Reportf(lit.Pos(), "closure passed to sim.Engine.%s captures %s, allocating a closure environment per event on the hot path: use a pre-bound callback or the pooled PostArg/AtArgPooled forms",
			name, joinVars(caps))
	}
}

// joinVars renders a captured-variable list for the diagnostic.
func joinVars(names []string) string {
	switch len(names) {
	case 0:
		return "nothing"
	case 1:
		return "variable " + names[0]
	}
	return "variables " + strings.Join(names, ", ")
}
