// Package eventcapture flags closures handed to the event engine's
// scheduling methods (Post, PostAt, After, At) in hot-path packages when
// they capture local variables. Each such closure is a fresh heap
// allocation on every call — on the page-miss path that is millions of
// allocations per run and the difference between 0 and 2 allocs/op in
// BenchmarkHandleMiss. The fix is a pre-bound method value (captures
// nothing) or the pooled argument-passing forms PostArg / AtArg /
// AtArgPooled, which carry the per-event state through a recycled carrier
// instead of a closure environment.
//
// Capture-free closures (pure method values wrapped in func(){...} with
// only package-level or receiver-free references) are allowed: the
// compiler hoists those to a single static closure.
package eventcapture

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"hwdp/internal/analysis"
)

// Analyzer is the eventcapture check.
var Analyzer = &analysis.Analyzer{
	Name: "eventcapture",
	Doc: "flag capturing closures passed to sim.Engine scheduling methods in " +
		"hot-path packages; use pre-bound callbacks or PostArg/AtArgPooled",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsHotPathPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkSchedule(pass, call)
			return true
		})
	}
	return nil
}

// checkSchedule inspects one call: if it is an Engine scheduling method
// taking a bare func() and the argument is a capturing closure, report it.
func checkSchedule(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	name, ok := analysis.IsEngineScheduler(fn)
	if !ok || !analysis.EngineSchedulers[name] {
		return // PostArg/AtArg/AtArgPooled are the sanctioned forms
	}
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.FuncLit)
		if !ok {
			continue
		}
		caps := capturedVars(pass, lit)
		if len(caps) == 0 {
			continue
		}
		pass.Reportf(lit.Pos(), "closure passed to sim.Engine.%s captures %s, allocating a closure environment per event on the hot path: use a pre-bound callback or the pooled PostArg/AtArgPooled forms",
			name, joinVars(caps))
	}
}

// capturedVars lists the names of local variables the closure captures:
// identifiers resolving to function-scoped variables declared outside the
// closure body. Package-level variables, fields, and the closure's own
// parameters and locals are not captures.
func capturedVars(pass *analysis.Pass, lit *ast.FuncLit) []string {
	seen := map[*types.Var]bool{}
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		if !insideFunc(v, pass.Pkg) {
			return true // package-level or imported: static, no environment
		}
		if lit.Pos() <= v.Pos() && v.Pos() < lit.End() {
			return true // declared inside the closure (param or local)
		}
		seen[v] = true
		names = append(names, v.Name())
		return true
	})
	sort.Strings(names)
	return names
}

// insideFunc reports whether v is declared in some function's scope (as
// opposed to package or universe scope) of pkg.
func insideFunc(v *types.Var, pkg *types.Package) bool {
	if v.Pkg() == nil || v.Pkg().Path() != pkg.Path() {
		return false
	}
	scope := v.Parent()
	if scope == nil {
		return false // fields, unresolved
	}
	return scope != v.Pkg().Scope() && scope != types.Universe
}

// joinVars renders a captured-variable list for the diagnostic.
func joinVars(names []string) string {
	switch len(names) {
	case 0:
		return "nothing"
	case 1:
		return "variable " + names[0]
	}
	return "variables " + strings.Join(names, ", ")
}
