// Package suite registers the repo's analyzers in one place, shared by
// cmd/hwdplint and the repo-level lint regression test, and provides the
// whole-load driver that threads callgraph facts between packages in
// dependency order.
package suite

import (
	"sort"

	"hwdp/internal/analysis"
	"hwdp/internal/analysis/callgraph"
	"hwdp/internal/analysis/eventcapture"
	"hwdp/internal/analysis/hotalloc"
	"hwdp/internal/analysis/laneescape"
	"hwdp/internal/analysis/lanesafety"
	"hwdp/internal/analysis/poolpair"
	"hwdp/internal/analysis/simdeterminism"
	"hwdp/internal/analysis/simtime"
	"hwdp/internal/analysis/statuscase"
)

// Analyzers is the full hwdplint suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	simdeterminism.Analyzer,
	lanesafety.Analyzer,
	laneescape.Analyzer,
	poolpair.Analyzer,
	simtime.Analyzer,
	eventcapture.Analyzer,
	hotalloc.Analyzer,
	statuscase.Analyzer,
}

// Result pairs one unit with its surviving diagnostics.
type Result struct {
	// Unit is the analyzed package.
	Unit *analysis.Unit
	// Diags are the unit's findings, sorted by position.
	Diags []analysis.Diagnostic
}

// RunAll drives the suite over a whole standalone load: it summarizes
// every unit into one shared callgraph registry in dependency order
// (imports before importers, so cross-package walks see complete facts),
// then runs the analyzers over each unit. Results are returned in the
// input order. This is the in-process equivalent of the vet driver's
// fact files.
func RunAll(units []*analysis.Unit) ([]Result, error) {
	byPath := make(map[string]*analysis.Unit, len(units))
	for _, u := range units {
		byPath[analysis.NormalizePkgPath(u.Pkg.Path())] = u
	}
	reg := callgraph.NewRegistry()
	done := make(map[string]bool, len(units))
	var summarize func(u *analysis.Unit)
	summarize = func(u *analysis.Unit) {
		path := analysis.NormalizePkgPath(u.Pkg.Path())
		if done[path] {
			return
		}
		done[path] = true
		imps := u.Pkg.Imports()
		sorted := make([]string, 0, len(imps))
		for _, imp := range imps {
			sorted = append(sorted, analysis.NormalizePkgPath(imp.Path()))
		}
		sort.Strings(sorted)
		for _, p := range sorted {
			if dep, ok := byPath[p]; ok {
				summarize(dep)
			}
		}
		callgraph.Summarize(u, reg)
	}
	for _, u := range units {
		summarize(u)
	}

	results := make([]Result, 0, len(units))
	for _, u := range units {
		u.Facts = reg
		diags, err := analysis.Run(u, Analyzers)
		if err != nil {
			return nil, err
		}
		results = append(results, Result{Unit: u, Diags: diags})
	}
	return results, nil
}
