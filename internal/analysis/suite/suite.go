// Package suite registers the repo's analyzers in one place, shared by
// cmd/hwdplint and the repo-level lint regression test.
package suite

import (
	"hwdp/internal/analysis"
	"hwdp/internal/analysis/eventcapture"
	"hwdp/internal/analysis/lanesafety"
	"hwdp/internal/analysis/poolpair"
	"hwdp/internal/analysis/simdeterminism"
	"hwdp/internal/analysis/simtime"
)

// Analyzers is the full hwdplint suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	simdeterminism.Analyzer,
	lanesafety.Analyzer,
	poolpair.Analyzer,
	simtime.Analyzer,
	eventcapture.Analyzer,
}
