// Package staletest exercises the stale-suppression check: a waiver that
// still covers a finding stays silent, one that has outlived its bug is
// itself reported. Expectations are asserted programmatically (see
// internal/analysis/suppress_test.go) because the hwdpignore diagnostics
// land on the comment lines themselves.
package staletest

import "hwdp/internal/sim"

func live() sim.Time {
	//hwdp:ignore simtime fixture: covers the finding below, stays used
	return sim.Time(5)
}

func stale() sim.Time {
	//hwdp:ignore simtime fixture: the finding it covered is gone
	return 5 * sim.Microsecond
}
