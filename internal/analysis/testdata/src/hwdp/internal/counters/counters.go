// Package counters is the laneescape fixture helper: host-side global
// bookkeeping that lane-hosted model code must not reach. It sits outside
// the hot-path packages, so lanesafety's package gate never examines it —
// only the interprocedural walk can find these sites.
package counters

import "sync"

// Total is the global the fixture reaches through a call chain.
var Total uint64

var mu sync.Mutex

// Bump writes a package-level variable.
func Bump(n uint64) {
	Total += n
}

// Locked takes a host lock around the same write.
func Locked(n uint64) {
	mu.Lock()
	Total += n
	mu.Unlock()
}

// Spawn starts a host-scheduled goroutine.
func Spawn(fn func()) {
	go fn()
}
