// Package metrics is the analyzer-fixture stub of the real metrics
// package; simdeterminism recognizes calls into it by import path.
package metrics

// Add records one sample (stub).
func Add(name string, v float64) {}
