// Package smu is the hotalloc analyzer fixture: a miniature of the real
// miss-path pipeline (the shape BenchmarkHandleMiss drives), with heap
// allocations planted at every distance from the //hwdp:hotpath roots —
// in the root itself, and transitively through a pipeline stage into a
// helper package — plus each exemption the analyzer honors (coldpath
// stops, pool accessors, panic arguments, atom-site waivers).
package smu

import "hwdp/internal/smu/deep"

// SMU is the fixture's miss handler.
type SMU struct {
	name    string
	scratch []int
	free    []*entry
}

type entry struct{ va uint64 }

// HandleMiss mirrors the real miss-path root: the planted allocation sits
// two hops away, behind an unannotated pipeline stage in another package.
//
//hwdp:hotpath
func (s *SMU) HandleMiss(va uint64) {
	s.admit(va) // want `hot path smu\.\(SMU\)\.HandleMiss reaches a heap allocation: smu\.\(SMU\)\.admit \(smu\.go:\d+\) -> smu/deep\.Record \(smu\.go:\d+\): append may grow the backing array at deep\.go:\d+`
}

// admit is the intermediate pipeline stage: not annotated, reached from
// the root only through the callgraph facts.
func (s *SMU) admit(va uint64) {
	deep.Record(va)
}

// localAlloc plants allocations directly in the hot function: these
// report at their own site, with no chain.
//
//hwdp:hotpath
func (s *SMU) localAlloc(n int) {
	buf := make([]int, n) // want `hot path smu\.\(SMU\)\.localAlloc: make of slice type allocates`
	s.scratch = buf
}

// bindLate allocates a closure environment on the hot path.
//
//hwdp:hotpath
func (s *SMU) bindLate(va uint64) {
	fn := func() { s.scratch[0] = int(va) } // want `hot path smu\.\(SMU\)\.bindLate: closure capturing s, va allocates its environment per call`
	fn()
}

// boxes hands a scalar to an any-typed sink: interface boxing allocates.
//
//hwdp:hotpath
func (s *SMU) boxes(va uint64) {
	sink(va) // want `hot path smu\.\(SMU\)\.boxes: uint64 value boxed into any \(heap-allocated interface data\)`
}

func sink(v any) {}

// coldFail is the failure path off the steady state; its string
// concatenation never reports because the hotalloc walk stops here.
//
//hwdp:coldpath fixture: failure diagnostics, off the steady-state path
func (s *SMU) coldFail() string {
	return "miss failed on " + s.name
}

// guarded is clean: its only allocating callee is marked coldpath.
//
//hwdp:hotpath
func (s *SMU) guarded(va uint64) {
	if va == 0 {
		_ = s.coldFail()
	}
}

// getEntry is a pool accessor: growth here is the amortized warm-up
// allocation the alloc pins already discount, so no atom is recorded.
//
//hwdp:pool acquire
func (s *SMU) getEntry() *entry {
	if len(s.free) == 0 {
		return &entry{}
	}
	e := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	return e
}

// pooled is clean: it allocates only through the pool accessor.
//
//hwdp:hotpath
func (s *SMU) pooled(va uint64) {
	e := s.getEntry()
	e.va = va
}

// guardrail is clean: allocations feeding a panic are failure-path
// formatting, not steady-state heap traffic.
//
//hwdp:hotpath
func (s *SMU) guardrail(va uint64) {
	if va == 0 {
		panic("zero va on " + s.name)
	}
}

// waived carries an atom-site suppression: the append never enters the
// facts, and the waiver is marked used (so no stale-suppression report).
//
//hwdp:hotpath
func (s *SMU) waived(va uint64) {
	//hwdp:ignore hotalloc fixture: amortized growth, backing array recycled by the drain path
	s.scratch = append(s.scratch, int(va))
}

// badCold is missing the mandatory reason.
//
//hwdp:coldpath
func (s *SMU) badCold() {} // want `//hwdp:coldpath needs a reason: say why badCold is off the steady-state path`

// confused carries both directives.
//
//hwdp:hotpath
//hwdp:coldpath fixture: cannot be both
func (s *SMU) confused() {} // want `confused is marked both //hwdp:hotpath and //hwdp:coldpath — pick one`
