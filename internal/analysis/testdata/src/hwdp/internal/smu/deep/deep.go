// Package deep is the transitively-reached helper of the hotalloc
// fixture: the planted allocation the acceptance walk must catch lives
// here, two hops and one package boundary away from the //hwdp:hotpath
// root in the parent package.
package deep

var log []uint64

// Record plants the allocation the interprocedural walk must reach.
func Record(va uint64) {
	log = append(log, va)
}
