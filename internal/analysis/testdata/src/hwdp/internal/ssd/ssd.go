// Package ssd is the lanesafety analyzer fixture: it lives at a hot-path
// import path and exercises every rule, positive and negative.
package ssd

import (
	"sync"
	"sync/atomic"

	"hwdp/internal/sim"
)

// ErrStub shows initialization at declaration is fine (a sentinel is
// written once, before any lane exists).
var ErrStub = "stub"

// served is package state a lane-unsafe write below targets.
var served uint64

// registry is fixture package state written only from init (allowed).
var registry map[string]int

func init() {
	registry = map[string]int{"a": 1} // construction precedes rounds: allowed
}

// Device is the fixture's lane-owned component; mutating its own fields
// is the sanctioned pattern and must not be flagged.
type Device struct {
	eng    *sim.Engine
	peer   *sim.Engine
	served uint64
	mu     sync.Mutex
}

func tick(any) {}

func (d *Device) ownState() {
	d.served++ // lane-owned field: fine
}

func (d *Device) globalState() {
	served++ // want `write to package-level variable served`
}

func (d *Device) globalAssign() {
	served = 7 // want `write to package-level variable served`
}

func (d *Device) goodSend() {
	d.eng.SendArg(d.peer, sim.Microsecond, tick, nil) // positive delay: fine
}

func (d *Device) variableSend(delay sim.Time) {
	d.eng.SendArg(d.peer, delay, tick, nil) // runtime delay: the group checks it
}

func (d *Device) zeroSend() {
	d.eng.SendArg(d.peer, 0, tick, nil) // want `cross-lane SendArg with zero delay`
}

func (d *Device) zeroConstSend() {
	const none sim.Time = 0
	d.eng.Send(d.peer, none, func() {}) // want `cross-lane Send with zero delay`
}

func (d *Device) locked() {
	d.mu.Lock()         // want `sync.Lock in model code`
	defer d.mu.Unlock() // want `sync.Unlock in model code`
	d.served++
}

func (d *Device) counted() {
	atomic.AddUint64(&d.served, 1) // want `atomic.AddUint64 in model code`
}

func (d *Device) channelled(c chan int) {
	c <- 1 // want `channel send in model code`
	<-c    // want `channel receive in model code`
}

func (d *Device) suppressed() {
	served++ //hwdp:ignore lanesafety fixture demonstrates a justified suppression
}
