// Package nvme is the statuscase fixture stub: it reuses the real import
// path so the Status*-prefixed constants here form the analyzer's first
// registered enum family, with a member set small enough for fixtures.
package nvme

// Completion status codes (stub).
const (
	StatusSuccess        uint16 = 0x0
	StatusCmdInterrupted uint16 = 0x21
	StatusUncorrectable  uint16 = 0x281
)
