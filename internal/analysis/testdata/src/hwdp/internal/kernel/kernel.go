// Package kernel is the simdeterminism analyzer fixture: it lives at a
// hot-path import path and exercises every rule, positive and negative.
package kernel

import (
	"math/rand"
	"sort"
	"time"

	"hwdp/internal/metrics"
	"hwdp/internal/sim"
)

// timeout shows that time.Duration constants and arithmetic are fine.
var timeout = 5 * time.Second

// K is the fixture's stand-in for kernel state.
type K struct {
	eng  *sim.Engine
	smus map[uint8]*smuStub
}

type smuStub struct{ id uint8 }

func (s *smuStub) refill(n int) {}

// Depth is a read-only accessor (pure by naming convention).
func (s *smuStub) Depth() int { return 0 }

func tick() {}

func wallClock() time.Duration {
	start := time.Now()          // want `time.Now reads`
	time.Sleep(time.Millisecond) // want `time.Sleep reads`
	return time.Since(start)     // want `time.Since reads`
}

func randomJitter() int {
	return rand.Intn(8) // want `global rand.Intn uses shared`
}

func spawn() {
	go tick() // want `goroutine spawn in simulation code`
}

func (k *K) badPost() {
	for id := range k.smus { // want `map iteration order is random, and this loop's body posts events`
		_ = id
		k.eng.Post(sim.Nanosecond, tick)
	}
}

func (k *K) badMetrics() {
	for _, s := range k.smus { // want `map iteration order is random, and this loop's body writes metrics`
		metrics.Add("depth", float64(s.Depth()))
	}
}

func (k *K) badCallback(handlers map[string]func()) {
	for _, fn := range handlers { // want `map iteration order is random, and this loop's body invokes a dynamic callback`
		fn()
	}
}

func (k *K) badIndirect() {
	for id := range k.smus { // want `calls refillOne, which posts events`
		k.refillOne(id)
	}
}

func (k *K) refillOne(id uint8) {
	k.eng.Post(sim.Nanosecond, tick)
}

func (k *K) badCross(mems map[uint8]*sim.Engine) {
	for _, m := range mems { // want `calls into hwdp/internal/sim`
		m.Run()
	}
}

// goodSorted is the sanctioned pattern: collect keys, sort, then act.
func (k *K) goodSorted() {
	ids := make([]int, 0, len(k.smus))
	for id := range k.smus {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		_ = id
		k.eng.Post(sim.Nanosecond, tick)
	}
}

// goodPure reads via pure accessors in map order, which is harmless.
func (k *K) goodPure(mems map[uint8]*sim.Engine) int {
	n := 0
	for _, m := range mems {
		n += int(m.Now())
	}
	return n
}

// suppressed shows a justified waiver.
func (k *K) suppressed() {
	//hwdp:ignore simdeterminism refill is idempotent and order-free here
	for id := range k.smus {
		k.refillOne(id)
	}
}
