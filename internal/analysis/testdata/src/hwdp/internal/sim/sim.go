// Package sim is the analyzer-fixture stub of the real discrete-event
// substrate. It reuses the real import path so the analyzers' package and
// type gates (sim.Time, sim.Engine) behave identically under test.
package sim

import "time"

// Time is a duration or instant in picoseconds (stub).
type Time int64

// Duration units (stub).
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
)

// Cycles converts CPU cycles to a duration (stub).
func Cycles(n int64) Time { return Time(n) * 357 }

// Micro builds a duration from fractional microseconds (stub).
func Micro(us float64) Time { return Time(us * float64(Microsecond)) }

// Nano builds a duration from fractional nanoseconds (stub).
func Nano(ns float64) Time { return Time(ns * float64(Nanosecond)) }

// FromDuration rescales a time.Duration (ns) to sim.Time (ps) (stub).
func FromDuration(d time.Duration) Time { return Time(d) * 1000 }

// Event is a scheduled callback (stub).
type Event struct{}

// Engine is the event queue (stub: signatures only).
type Engine struct{}

// Now returns the virtual clock (stub).
func (e *Engine) Now() Time { return 0 }

// Run drains the queue (stub).
func (e *Engine) Run() {}

// At schedules fn at t (stub).
func (e *Engine) At(t Time, fn func()) *Event { return nil }

// After schedules fn after d (stub).
func (e *Engine) After(d Time, fn func()) *Event { return nil }

// AtArg schedules fn(arg) at t (stub).
func (e *Engine) AtArg(t Time, fn func(any), arg any) *Event { return nil }

// AtArgPooled schedules fn(arg) at t with a pooled event (stub).
func (e *Engine) AtArgPooled(t Time, fn func(any), arg any) *Event { return nil }

// Post schedules fn after d with a pooled event (stub).
func (e *Engine) Post(d Time, fn func()) {}

// PostAt schedules fn at t with a pooled event (stub).
func (e *Engine) PostAt(t Time, fn func()) {}

// PostArg schedules fn(arg) after d with a pooled event (stub).
func (e *Engine) PostArg(d Time, fn func(any), arg any) {}

// Send schedules fn on dst's lane after d (stub).
func (e *Engine) Send(dst *Engine, d Time, fn func()) {}

// SendArg schedules fn(arg) on dst's lane after d (stub).
func (e *Engine) SendArg(dst *Engine, d Time, fn func(any), arg any) {}
