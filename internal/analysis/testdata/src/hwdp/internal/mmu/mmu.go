// Package mmu is the eventcapture analyzer fixture: a hot-path package
// scheduling work on the engine in both allocating and allocation-free
// forms.
package mmu

import "hwdp/internal/sim"

// M is a fixture component with an engine and a latency.
type M struct {
	eng *sim.Engine
	lat sim.Time
}

func (m *M) step()          {}
func (m *M) handle(arg any) {}

func noop() {}

func (m *M) schedule(va uint64, done func(uint64)) {
	m.eng.Post(m.lat, noop)                      // ok: package-level function value
	m.eng.Post(m.lat, func() { done(va) })       // want `captures variables done, va`
	m.eng.At(m.lat, func() { m.step() })         // want `captures variable m`
	m.eng.After(m.lat, func() { println("ok") }) // ok: captures nothing
	m.eng.PostArg(m.lat, m.handle, va)           // ok: the pooled form
	m.eng.PostAt(m.lat, func() { m.step() })     //hwdp:ignore eventcapture cold path, fires once per run
}
