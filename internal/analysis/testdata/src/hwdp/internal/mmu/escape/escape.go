// Package escape is the laneescape analyzer fixture: a lane-hosted model
// package (the mmu/ subtree is sharded onto engine lanes) whose functions
// reach host-global state through helper packages that lanesafety's
// package gate never examines, plus the local SendArg payload-aliasing
// check.
package escape

import (
	"hwdp/internal/counters"
	"hwdp/internal/sim"
)

// Walker is the fixture's lane-hosted component.
type Walker struct {
	eng  *sim.Engine
	peer *sim.Engine
	hits uint64
}

// CountMiss reaches a package-level write one call away.
func (w *Walker) CountMiss() {
	counters.Bump(1) // want `lane-hosted mmu/escape\.\(Walker\)\.CountMiss reaches lane-unsafe state: counters\.Bump \(escape\.go:\d+\): write to package-level variable Total \(reachable from every engine lane at once\) at counters\.go:\d+`
}

// LockedCount reaches host synchronization two calls away; the lock, the
// write, and the unlock each report at the first hop out of the root.
func (w *Walker) LockedCount() {
	w.tally() // want `lane-hosted mmu/escape\.\(Walker\)\.LockedCount reaches lane-unsafe state: mmu/escape\.\(Walker\)\.tally \(escape\.go:\d+\) -> counters\.Locked \(escape\.go:\d+\): sync\.Lock couples event outcomes to host-scheduler timing at counters\.go:\d+` `write to package-level variable Total` `sync\.Unlock couples event outcomes to host-scheduler timing`
}

func (w *Walker) tally() {
	counters.Locked(1)
}

// Detach hands a callback to a helper that launches a goroutine.
func (w *Walker) Detach(fn func()) {
	counters.Spawn(fn) // want `lane-hosted mmu/escape\.\(Walker\)\.Detach reaches lane-unsafe state: counters\.Spawn \(escape\.go:\d+\): go statement starts a host-scheduled goroutine at counters\.go:\d+`
}

// Deliver is clean: cross-lane work flows through an engine send.
func (w *Walker) Deliver(d sim.Time) {
	w.eng.Send(w.peer, d, nothing)
}

func nothing() {}

// Payload crosses lanes by pointer.
type Payload struct{ N int }

// Ship hands p to the peer lane and then touches it again: the receiving
// lane owns the payload from the send on, so the late use is a race.
func (w *Walker) Ship(d sim.Time, p *Payload) {
	w.eng.SendArg(w.peer, d, recv, p)
	p.N++ // want `payload p is used after being handed across lanes via SendArg`
}

// ShipClean finishes all sender-side use before the send: clean.
func (w *Walker) ShipClean(d sim.Time, p *Payload) {
	p.N++
	w.eng.SendArg(w.peer, d, recv, p)
}

func recv(arg any) {}
