// Package fault is the statuscase fixture stub: it reuses the real
// import path so constants of type Kind form the analyzer's second
// registered enum family.
package fault

// Kind classifies injected faults (stub).
type Kind uint8

// Fault kinds (stub).
const (
	None Kind = iota
	Transient
	UECC
)
