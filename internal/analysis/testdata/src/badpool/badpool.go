// Package badpool carries malformed //hwdp:pool directives; expectations
// are asserted programmatically (directive diagnostics land on the
// directive comment's own line).
package badpool

type rec struct{}

//hwdp:pool grab thing
func get() *rec { return nil }

//hwdp:pool acquire thing result=x
func get2() *rec { return nil }

//hwdp:pool acquire thing flavor=blue
func get3() *rec { return nil }
