// Package pooltest is the poolpair analyzer fixture: annotated pool
// accessors with releasing, handing-off, leaking, and suppressed callers.
package pooltest

type entry struct{ next *entry }

type pool struct {
	free []*entry
	live []*entry
}

//hwdp:pool acquire entry
func (p *pool) get() *entry { return nil }

//hwdp:pool release entry
func (p *pool) put(e *entry) {}

//hwdp:pool acquire rec result=1
func (p *pool) getRec() (bool, *entry) { return false, nil }

//hwdp:pool release rec
func (p *pool) putRec(e *entry) {}

func (p *pool) okSimple() {
	e := p.get()
	p.put(e)
}

func (p *pool) okDefer() {
	e := p.get()
	defer p.put(e)
	work()
}

func (p *pool) okHandOff() {
	e := p.get()
	p.live = append(p.live, e)
}

func (p *pool) okReturn() *entry {
	e := p.get()
	return e
}

func (p *pool) okBranches(b bool) {
	e := p.get()
	if b {
		p.put(e)
		return
	}
	p.put(e)
}

func (p *pool) okMulti(b bool) {
	ok, e := p.getRec()
	if ok || b {
		p.putRec(e)
		return
	}
	p.putRec(e)
}

func (p *pool) leakErrPath(b bool) error {
	e := p.get() // want `pooled object "e" \(pool "entry"\) is not released on every path`
	if b {
		return errFail
	}
	p.put(e)
	return nil
}

func (p *pool) leakDiscard() {
	p.get() // want `result of pool "entry" acquire is discarded`
}

func (p *pool) leakMulti(b bool) {
	_, e := p.getRec() // want `pooled object "e" \(pool "rec"\) is not released on every path`
	if b {
		return
	}
	p.putRec(e)
}

func (p *pool) suppressed(b bool) {
	e := p.get() //hwdp:ignore poolpair ownership recorded in the caller's side table
	if b {
		return
	}
	p.put(e)
}

type orphanRec struct{}

//hwdp:pool acquire orphan
func getOrphan() *orphanRec { return nil } // want `pool "orphan" has an acquire but no //hwdp:pool release`

var errFail error

func work() {}
