// Package ignoretest exercises the suppression machinery itself:
// reason-less, malformed, unknown-analyzer, and "all" suppressions. Its
// expectations are asserted programmatically (see
// internal/analysis/suppress_test.go) because the hwdpignore diagnostics
// land on comment lines that cannot also carry a `// want`.
package ignoretest

import "hwdp/internal/sim"

func f() {
	a := sim.Time(5) //hwdp:ignore simtime
	b := sim.Time(6) //hwdp:ignore
	c := sim.Time(7) //hwdp:ignore nosuchanalyzer because reasons
	d := sim.Time(8) //hwdp:ignore all fixture-wide waiver
	_, _, _, _ = a, b, c, d
}
