// This _test.go file carries a violation on purpose: the framework drops
// diagnostics in test files, and suppress_test.go asserts none surface.
package ignoretest

import "hwdp/internal/sim"

func g() sim.Time {
	return sim.Time(9)
}
