// Package statustest is the statuscase analyzer fixture: switches over
// the NVMe status and fault-kind enum stubs in every legal and illegal
// shape.
package statustest

import (
	"hwdp/internal/fault"
	"hwdp/internal/nvme"
)

// missingNoDefault silently drops StatusUncorrectable.
func missingNoDefault(s uint16) int {
	switch s { // want `switch over NVMe status silently falls through for StatusUncorrectable — add the missing cases or a default arm`
	case nvme.StatusSuccess:
		return 0
	case nvme.StatusCmdInterrupted:
		return 1
	}
	return -1
}

// defaultCovers is fine: an unmarked switch may hide behind a default.
func defaultCovers(s uint16) int {
	switch s {
	case nvme.StatusSuccess:
		return 0
	default:
		return -1
	}
}

// markedExhaustive demands full coverage even though a default exists.
func markedExhaustive(k fault.Kind) int {
	//hwdp:exhaustive
	switch k { // want `switch over fault kind is marked //hwdp:exhaustive but misses UECC — handle every member explicitly`
	case fault.None:
		return 0
	case fault.Transient:
		return 1
	default:
		return -1
	}
}

// fullCoverage is clean without any default arm.
func fullCoverage(k fault.Kind) int {
	switch k {
	case fault.None:
		return 0
	case fault.Transient:
		return 1
	case fault.UECC:
		return 2
	}
	return -1
}

// notAFamily is clean: switches over unregistered constants are ignored.
func notAFamily(n int) int {
	const local = 1
	switch n {
	case local:
		return 1
	}
	return 0
}
