// Package simtimetest is the simtime analyzer fixture: unit-less
// constants, duration mis-conversions, redundant conversions, and the
// sanctioned unit-carrying forms.
package simtimetest

import (
	"time"

	"hwdp/internal/sim"
)

var eng *sim.Engine

// regWrite carries its unit: fine.
const regWrite = 90 * sim.Nanosecond

var (
	bad1 sim.Time = 5000           // want `unit-less constant 5000 used as sim.Time`
	bad2          = sim.Time(5000) // want `unit-less constant 5000 used as sim.Time`
	ok1           = 3200 * sim.Nanosecond
	ok2           = sim.Cycles(97)
	ok3           = sim.Micro(5.4)
)

func tick() {}

func f(d time.Duration, pages int64) {
	eng.Post(500, tick) // want `unit-less constant 500 used as sim.Time`
	eng.Post(2*regWrite, tick)
	eng.Post(0, tick) // the zero value needs no unit

	_ = sim.Time(d)                   // want `1000x unit error`
	_ = sim.FromDuration(d)           // the sanctioned rescale
	_ = sim.Time(3 * sim.Microsecond) // want `redundant conversion`
	_ = sim.Time(pages) * 600 * sim.Microsecond

	var zero sim.Time
	_ = zero

	t := sim.Time(7) //hwdp:ignore simtime calibration placeholder, tuned in a follow-up
	_ = t
}
