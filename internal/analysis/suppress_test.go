package analysis_test

import (
	"strings"
	"testing"

	"hwdp/internal/analysis"
	"hwdp/internal/analysis/analyzertest"
	"hwdp/internal/analysis/simtime"
)

// TestSuppressionMachinery drives the //hwdp:ignore rules end to end over
// the ignoretest fixture: a reason-less suppression is rejected AND does
// not suppress; a bare directive is malformed; an unknown analyzer name is
// rejected; "all" with a reason suppresses; diagnostics in _test.go
// fixture files are dropped.
func TestSuppressionMachinery(t *testing.T) {
	u := analyzertest.Load(t, "testdata", "ignoretest")
	diags, err := analysis.Run(u, []*analysis.Analyzer{simtime.Analyzer})
	if err != nil {
		t.Fatal(err)
	}

	type want struct {
		analyzer string
		substr   string
	}
	wants := []want{
		// line a: the reason-less suppression is itself flagged and the
		// simtime diagnostic survives.
		{"simtime", "unit-less constant 5"},
		{"hwdpignore", "needs a non-empty reason"},
		// line b: bare directive.
		{"simtime", "unit-less constant 6"},
		{"hwdpignore", "malformed suppression"},
		// line c: unknown analyzer name.
		{"simtime", "unit-less constant 7"},
		{"hwdpignore", `unknown analyzer "nosuchanalyzer"`},
		// line d ("//hwdp:ignore all <reason>"): fully suppressed — no entry.
		// _test.go fixture file: diagnostic dropped — no entry.
	}
	if len(diags) != len(wants) {
		for _, d := range diags {
			t.Logf("got: [%s] %s: %s", d.Analyzer, u.Fset.Position(d.Pos), d.Message)
		}
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(wants))
	}
	for i, w := range wants {
		if diags[i].Analyzer != w.analyzer || !strings.Contains(diags[i].Message, w.substr) {
			t.Errorf("diagnostic %d = [%s] %q, want [%s] containing %q",
				i, diags[i].Analyzer, diags[i].Message, w.analyzer, w.substr)
		}
	}
	for _, d := range diags {
		if strings.HasSuffix(u.Fset.Position(d.Pos).Filename, "_test.go") {
			t.Errorf("diagnostic leaked from a _test.go fixture file: %s", d.Message)
		}
	}
}

// TestStaleSuppression drives the stale-waiver check over the staletest
// fixture: a //hwdp:ignore still covering a finding is silently consumed,
// while one whose finding has been fixed is itself reported, so waivers
// cannot outlive their bugs.
func TestStaleSuppression(t *testing.T) {
	u := analyzertest.Load(t, "testdata", "staletest")
	diags, err := analysis.Run(u, []*analysis.Analyzer{simtime.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		for _, d := range diags {
			t.Logf("got: [%s] %s: %s", d.Analyzer, u.Fset.Position(d.Pos), d.Message)
		}
		t.Fatalf("got %d diagnostics, want exactly the stale-suppression report", len(diags))
	}
	d := diags[0]
	if d.Analyzer != "hwdpignore" || !strings.Contains(d.Message, "stale suppression") {
		t.Errorf("diagnostic = [%s] %q, want [hwdpignore] stale suppression", d.Analyzer, d.Message)
	}
	// The report must anchor to the dead waiver in stale(), not to the
	// live one in live() that still covers its finding.
	if line := u.Fset.Position(d.Pos).Line; line != 16 {
		t.Errorf("stale report at line %d, want 16 (the dead //hwdp:ignore)", line)
	}
}
