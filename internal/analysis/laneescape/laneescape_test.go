package laneescape_test

import (
	"testing"

	"hwdp/internal/analysis/analyzertest"
	"hwdp/internal/analysis/laneescape"
)

// TestLaneEscape drives the transitive lane-safety proof over the escape
// fixture: a lane-hosted package reaching package-level writes, host
// locks, and goroutine launches through a helper package lanesafety never
// examines, plus the local SendArg payload-aliasing check.
func TestLaneEscape(t *testing.T) {
	analyzertest.Run(t, "../testdata", "hwdp/internal/mmu/escape", laneescape.Analyzer)
}
