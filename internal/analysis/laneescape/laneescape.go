// Package laneescape upgrades lanesafety's local syntax checks to a
// transitive proof over the callgraph facts (docs/ANALYSIS.md): every
// function declared in a lane-hosted model package (mmu, smu, nvme, ssd)
// may run on an engine lane, so nothing it reaches — across any number of
// calls and packages — may touch package-level mutable state, host
// synchronization, or channels. lanesafety polices the hot-path packages
// themselves line by line; laneescape walks from them into the helper
// packages (trace, pagetable, metrics, fault, ...) that lanesafety's
// package gate leaves unexamined, and reports the reaching call chain.
//
// It also adds a local aliasing check on cross-lane mailbox sends: a
// pointer handed to Engine.SendArg belongs to the receiving lane from the
// moment of the send, so the sender must not touch it afterwards — a
// use-after-send is a data race once the payload is delivered.
package laneescape

import (
	"go/ast"
	"go/types"
	"regexp"

	"hwdp/internal/analysis"
	"hwdp/internal/analysis/callgraph"
)

// LaneModelPackages matches the packages whose components are sharded
// onto engine lanes (core.Config.Lanes places device/SMU/MMU models);
// every function they declare is treated as a potential lane-hosted root.
var LaneModelPackages = regexp.MustCompile(`^hwdp/internal/(mmu|smu|nvme|ssd)(/|$)`)

// Analyzer is the laneescape check.
var Analyzer = &analysis.Analyzer{
	Name: "laneescape",
	Doc: "prove transitively that lane-hosted model code reaches no " +
		"package-level variable writes, sync/channel use, or goroutines, " +
		"and that cross-lane send payloads are not used after the send",
	Run: run,
}

func run(pass *analysis.Pass) error {
	path := analysis.NormalizePkgPath(pass.Pkg.Path())
	if !LaneModelPackages.MatchString(path) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkSendAliasing(pass, fd)
			}
		}
	}
	reg, ok := pass.Unit.Facts.(*callgraph.Registry)
	if !ok {
		return nil // fact-less driver: local checks only
	}
	seen := map[string]bool{}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || (fd.Recv == nil && fd.Name.Name == "init") {
				continue
			}
			root := callgraph.DeclFuncKey(pass.TypesInfo, fd)
			if root == "" {
				continue
			}
			for _, finding := range reg.Reachable(root, "laneescape", false) {
				key := finding.Func + "|" + finding.Atom.Pos + "|" + finding.Atom.Kind
				if seen[key] {
					continue
				}
				seen[key] = true
				pos := finding.ReportPos()
				if !pos.IsValid() {
					pos = fd.Name.Pos()
				}
				pass.Reportf(pos, "lane-hosted %s reaches lane-unsafe state: %s: %s at %s — cross-lane state must flow through engine sends (docs/ENGINE.md)",
					callgraph.DisplayKey(root), callgraph.RenderChain(finding.Chain), finding.Atom.Msg, finding.Atom.Pos)
			}
		}
	}
	return nil
}

func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	name := pass.Fset.Position(f.Pos()).Filename
	return len(name) > 8 && name[len(name)-8:] == "_test.go"
}

// checkSendAliasing flags a pointer payload of Engine.SendArg that the
// sending function touches again after the send: ownership crosses lanes
// at the send, so any later use races the receiving lane.
func checkSendAliasing(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Name() != "SendArg" || len(call.Args) < 4 {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return true
		}
		rpath, rname := analysis.NamedPathAndName(sig.Recv().Type())
		if rname != "Engine" || !analysis.IsSimPkg(rpath) {
			return true
		}
		id, ok := ast.Unparen(call.Args[3]).(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if _, isPtr := types.Unalias(v.Type().Underlying()).(*types.Pointer); !isPtr {
			return true
		}
		// Any use of the same variable after the send keeps the sender
		// aliased to a payload the receiving lane now owns.
		ast.Inspect(fd.Body, func(m ast.Node) bool {
			use, ok := m.(*ast.Ident)
			if !ok || use.Pos() <= call.End() {
				return true
			}
			if pass.TypesInfo.Uses[use] == v {
				pass.Reportf(use.Pos(), "payload %s is used after being handed across lanes via SendArg (at %s): the receiving lane owns it from the send on — finish all sender-side use before sending",
					v.Name(), pass.Fset.Position(call.Pos()))
				return false
			}
			return true
		})
		return true
	})
}
