package poolpair_test

import (
	"strings"
	"testing"

	"hwdp/internal/analysis"
	"hwdp/internal/analysis/analyzertest"
	"hwdp/internal/analysis/poolpair"
)

func TestPoolpair(t *testing.T) {
	analyzertest.Run(t, "../testdata", "pooltest", poolpair.Analyzer)
}

// TestMalformedDirectives asserts each broken //hwdp:pool spelling is
// reported (programmatically: the diagnostics land on the directive
// comments themselves, where no same-line want comment fits).
func TestMalformedDirectives(t *testing.T) {
	u := analyzertest.Load(t, "../testdata", "badpool")
	diags, err := analysis.Run(u, []*analysis.Analyzer{poolpair.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	wants := []string{
		`want "//hwdp:pool <acquire|release> <pool> [result=N]"`,
		`bad result index "x"`,
		`unknown option "flavor=blue"`,
	}
	if len(diags) != len(wants) {
		t.Fatalf("got %d diagnostics, want %d: %v", len(diags), len(wants), diags)
	}
	for i, w := range wants {
		if !strings.Contains(diags[i].Message, w) {
			t.Errorf("diagnostic %d = %q, want it to contain %q", i, diags[i].Message, w)
		}
		if diags[i].Analyzer != "poolpair" {
			t.Errorf("diagnostic %d attributed to %q, want poolpair", i, diags[i].Analyzer)
		}
	}
}
