// Package poolpair verifies pooled-object discipline: every value taken
// from an object pool must, on every control-flow path, either be handed
// back to its pool or handed off (stored, returned, passed on, or captured
// — ownership transfer). It is the static twin of the dynamic
// frame-conservation property test: the property test catches a leak when
// a run happens to execute the leaky path; poolpair rejects the path at
// vet time.
//
// Pools are declared, not guessed. A pool's accessors carry directives in
// their doc comments:
//
//	//hwdp:pool acquire entry
//	func (s *SMU) getEntry() *pmshrEntry { ... }
//
//	//hwdp:pool release entry
//	func (s *SMU) putEntry(e *pmshrEntry) { ... }
//
// An optional "result=N" selects which result of a multi-value acquire is
// the pooled object (default 0). Directives are package-local, matching
// the repo's pools, which are all unexported.
//
// The analysis is flow-sensitive over structured control flow (if/else,
// switch, return, defer) and deliberately lenient around loops, gotos and
// anything it cannot classify: a false "leak" report on correct code is
// worse than a missed one, since the dynamic property test still backstops
// the latter.
package poolpair

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"hwdp/internal/analysis"
)

// Analyzer is the poolpair check.
var Analyzer = &analysis.Analyzer{
	Name: "poolpair",
	Doc: "check that every pooled acquire (//hwdp:pool acquire) reaches a matching " +
		"release or ownership hand-off on all return and error paths",
	Run: run,
}

// PoolDirective is the doc-comment prefix declaring a pool accessor.
const PoolDirective = "//hwdp:pool"

// accessor describes one annotated pool function.
type accessor struct {
	kind      string // "acquire" or "release"
	pool      string
	resultIdx int
}

// parseDirective parses one //hwdp:pool comment line; ok is false for
// non-directive lines. A malformed directive is reported by the caller.
func parseDirective(text string) (acc accessor, ok bool, malformed string) {
	if !strings.HasPrefix(text, PoolDirective) {
		return accessor{}, false, ""
	}
	fields := strings.Fields(strings.TrimPrefix(text, PoolDirective))
	if len(fields) < 2 || (fields[0] != "acquire" && fields[0] != "release") {
		return accessor{}, false, "want \"//hwdp:pool <acquire|release> <pool> [result=N]\""
	}
	acc = accessor{kind: fields[0], pool: fields[1]}
	for _, f := range fields[2:] {
		if v, found := strings.CutPrefix(f, "result="); found {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return accessor{}, false, "bad result index " + strconv.Quote(v)
			}
			acc.resultIdx = n
		} else {
			return accessor{}, false, "unknown option " + strconv.Quote(f)
		}
	}
	return acc, true, ""
}

func run(pass *analysis.Pass) error {
	acquires := make(map[*types.Func]accessor)
	releases := make(map[*types.Func]accessor)
	releaseName := make(map[string]string) // pool -> a release func name, for messages

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				acc, ok, malformed := parseDirective(c.Text)
				if malformed != "" {
					pass.Reportf(c.Pos(), "malformed pool directive: %s", malformed)
					continue
				}
				if !ok {
					continue
				}
				fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				if acc.kind == "acquire" {
					acquires[fn] = acc
				} else {
					releases[fn] = acc
					releaseName[acc.pool] = fn.Name()
				}
			}
		}
	}
	if len(acquires) == 0 {
		return nil
	}
	for pool := range poolsOf(acquires) {
		if _, ok := releaseName[pool]; !ok {
			// Without a release the check cannot hold; surface the
			// misconfiguration at one acquire site.
			for fn, acc := range acquires {
				if acc.pool == pool {
					pass.Reportf(fn.Pos(), "pool %q has an acquire but no //hwdp:pool release in this package", pool)
					break
				}
			}
		}
	}

	c := &checker{pass: pass, acquires: acquires, releases: releases, releaseName: releaseName}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkFunc(fd)
			}
		}
	}
	return nil
}

func poolsOf(m map[*types.Func]accessor) map[string]bool {
	out := make(map[string]bool)
	for _, acc := range m {
		out[acc.pool] = true
	}
	return out
}

type checker struct {
	pass        *analysis.Pass
	acquires    map[*types.Func]accessor
	releases    map[*types.Func]accessor
	releaseName map[string]string
}

// checkFunc finds each acquire in the function (including inside closures)
// and verifies the acquired object is consumed on all paths.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	var bodies []*ast.BlockStmt
	bodies = append(bodies, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			bodies = append(bodies, fl.Body)
		}
		return true
	})
	for _, body := range bodies {
		c.checkBody(body)
	}
}

// checkBody scans one function or closure body's statement tree for
// acquire statements and runs the path analysis on each.
func (c *checker) checkBody(body *ast.BlockStmt) {
	var walkList func(stmts []ast.Stmt, frames [][]ast.Stmt)
	walkList = func(stmts []ast.Stmt, frames [][]ast.Stmt) {
		for i, s := range stmts {
			if obj, acc, pos, ok := c.acquireIn(s); ok {
				c.analyze(obj, acc, pos, stmts[i+1:], frames)
			}
			// Recurse into nested statement lists, tracking enclosing
			// frames so the analysis can continue past block ends. Loop
			// bodies get a nil frame barrier: falling off a loop body is
			// a leak (the next iteration re-acquires).
			rest := stmts[i+1:]
			switch s := s.(type) {
			case *ast.BlockStmt:
				walkList(s.List, append(frames, rest))
			case *ast.IfStmt:
				walkList(s.Body.List, append(frames, rest))
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					walkList(e.List, append(frames, rest))
				case *ast.IfStmt:
					walkList([]ast.Stmt{e}, append(frames, rest))
				}
			case *ast.ForStmt:
				walkList(s.Body.List, append(frames, nil))
			case *ast.RangeStmt:
				walkList(s.Body.List, append(frames, nil))
			case *ast.SwitchStmt:
				for _, cc := range s.Body.List {
					if cl, ok := cc.(*ast.CaseClause); ok {
						walkList(cl.Body, append(frames, rest))
					}
				}
			case *ast.TypeSwitchStmt:
				for _, cc := range s.Body.List {
					if cl, ok := cc.(*ast.CaseClause); ok {
						walkList(cl.Body, append(frames, rest))
					}
				}
			case *ast.SelectStmt:
				for _, cc := range s.Body.List {
					if cl, ok := cc.(*ast.CommClause); ok {
						walkList(cl.Body, append(frames, nil))
					}
				}
			case *ast.LabeledStmt:
				walkList([]ast.Stmt{s.Stmt}, append(frames, rest))
			}
		}
	}
	walkList(body.List, nil)
}

// acquireIn matches `x := pool.Get(...)` (or `=`) and bare `pool.Get(...)`
// statements, returning the bound object (nil when the result is
// discarded).
func (c *checker) acquireIn(s ast.Stmt) (obj types.Object, acc accessor, pos token.Pos, ok bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return nil, accessor{}, token.NoPos, false
		}
		call, isCall := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
		if !isCall {
			return nil, accessor{}, token.NoPos, false
		}
		fn := analysis.CalleeFunc(c.pass.TypesInfo, call)
		a, isAcq := c.acquires[fn]
		if !isAcq {
			return nil, accessor{}, token.NoPos, false
		}
		if a.resultIdx >= len(s.Lhs) {
			return nil, a, call.Pos(), true // discarded results
		}
		id, isIdent := s.Lhs[a.resultIdx].(*ast.Ident)
		if !isIdent || id.Name == "_" {
			// Assigned into a field/index or blank: field stores are a
			// hand-off; blank is a discard we cannot track further.
			return nil, accessor{}, token.NoPos, false
		}
		o := c.pass.TypesInfo.Defs[id]
		if o == nil {
			o = c.pass.TypesInfo.Uses[id]
		}
		if o == nil {
			return nil, accessor{}, token.NoPos, false
		}
		return o, a, call.Pos(), true
	case *ast.ExprStmt:
		call, isCall := ast.Unparen(s.X).(*ast.CallExpr)
		if !isCall {
			return nil, accessor{}, token.NoPos, false
		}
		fn := analysis.CalleeFunc(c.pass.TypesInfo, call)
		a, isAcq := c.acquires[fn]
		if !isAcq {
			return nil, accessor{}, token.NoPos, false
		}
		return nil, a, call.Pos(), true // result dropped on the floor
	}
	return nil, accessor{}, token.NoPos, false
}

// analyze checks that obj is consumed on every path through rest (then the
// enclosing frames). A nil obj means the acquire's result was discarded —
// an unconditional leak.
func (c *checker) analyze(obj types.Object, acc accessor, pos token.Pos, rest []ast.Stmt, frames [][]ast.Stmt) {
	relName := c.releaseName[acc.pool]
	if relName == "" {
		return // missing-release misconfiguration already reported
	}
	if obj == nil {
		c.pass.Reportf(pos, "result of pool %q acquire is discarded: the pooled object leaks (release with %s)", acc.pool, relName)
		return
	}
	res := c.consume(rest, obj)
	for i := len(frames) - 1; res == fell; i-- {
		if i < 0 {
			break
		}
		if frames[i] == nil {
			// Loop-body boundary: next iteration without a release.
			res = leaked
			break
		}
		res = c.consume(frames[i], obj)
	}
	if res != consumed {
		c.pass.Reportf(pos, "pooled object %q (pool %q) is not released on every path: a path reaches function exit without %s or a hand-off", obj.Name(), acc.pool, relName)
	}
}

type outcome int

const (
	consumed outcome = iota // released or ownership handed off on all paths
	fell                    // fell off the end of the list, still owned
	leaked                  // a path provably exits without release
)

func worst(a, b outcome) outcome {
	if a == leaked || b == leaked {
		return leaked
	}
	if a == fell || b == fell {
		return fell
	}
	return consumed
}

// consume walks a statement list and reports whether obj is consumed on
// every path through it.
func (c *checker) consume(stmts []ast.Stmt, obj types.Object) outcome {
	for i, s := range stmts {
		rest := stmts[i+1:]
		switch s := s.(type) {
		case *ast.BlockStmt:
			return c.consume(append(append([]ast.Stmt{}, s.List...), rest...), obj)
		case *ast.IfStmt:
			if ev := c.scanEvent(s.Init, obj); ev == evConsume {
				return consumed
			}
			thenRes := c.consume(append(append([]ast.Stmt{}, s.Body.List...), rest...), obj)
			var elseRes outcome
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseRes = c.consume(append(append([]ast.Stmt{}, e.List...), rest...), obj)
			case *ast.IfStmt:
				elseRes = c.consume(append([]ast.Stmt{e}, rest...), obj)
			default:
				elseRes = c.consume(rest, obj)
			}
			return worst(thenRes, elseRes)
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if c.mentions(r, obj) {
					return consumed // ownership returned to the caller
				}
			}
			return leaked
		case *ast.SwitchStmt, *ast.TypeSwitchStmt:
			body := switchBody(s)
			res := consumed
			hasDefault := false
			for _, cc := range body {
				cl, ok := cc.(*ast.CaseClause)
				if !ok {
					continue
				}
				res = worst(res, c.consume(append(append([]ast.Stmt{}, cl.Body...), rest...), obj))
				if cl.List == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				res = worst(res, c.consume(rest, obj))
			}
			return res
		case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt:
			// Lenient: if the loop/select touches obj in a consuming way
			// on any path, assume the author got the iteration logic
			// right; a must-analysis over arbitrary loops is all noise.
			if c.scanEvent(s, obj) == evConsume {
				return consumed
			}
		case *ast.DeferStmt:
			if c.mentionsCall(s.Call, obj) {
				return consumed // deferred release covers every path
			}
		case *ast.BranchStmt:
			return consumed // lenient on break/continue/goto
		case *ast.LabeledStmt:
			return c.consume(append([]ast.Stmt{s.Stmt}, rest...), obj)
		default:
			switch c.scanEvent(s, obj) {
			case evConsume:
				return consumed
			case evPathEnd:
				return consumed // panic/fatal: the path dies owning the object
			}
		}
	}
	return fell
}

// switchBody extracts a switch statement's clause list.
func switchBody(s ast.Stmt) []ast.Stmt {
	switch s := s.(type) {
	case *ast.SwitchStmt:
		return s.Body.List
	case *ast.TypeSwitchStmt:
		return s.Body.List
	}
	return nil
}

type event int

const (
	evNone event = iota
	evConsume
	evPathEnd
)

// scanEvent inspects one simple statement (or an arbitrary subtree, for
// the lenient loop case) for a consuming use of obj or a path-ending call.
func (c *checker) scanEvent(n ast.Node, obj types.Object) event {
	if n == nil {
		return evNone
	}
	found := evNone
	ast.Inspect(n, func(m ast.Node) bool {
		if found != evNone {
			return false
		}
		switch m := m.(type) {
		case *ast.CallExpr:
			if c.mentionsCall(m, obj) {
				found = evConsume
				return false
			}
			if id, ok := ast.Unparen(m.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					found = evPathEnd
					return false
				}
			}
		case *ast.AssignStmt:
			// obj as a whole RHS value -> handed off; obj alone on the
			// LHS -> rebound (tracking ends).
			for _, r := range m.Rhs {
				if c.isObjValue(r, obj) || c.mentions(r, obj) && isCompositeOrCall(r) {
					found = evConsume
					return false
				}
			}
			for _, l := range m.Lhs {
				if c.isObjIdent(l, obj) {
					found = evConsume
					return false
				}
			}
		case *ast.SendStmt:
			if c.mentions(m.Value, obj) {
				found = evConsume
				return false
			}
		case *ast.FuncLit:
			// Captured by a closure: ownership escapes into it.
			if c.mentionsBody(m.Body, obj) {
				found = evConsume
			}
			return false
		}
		return true
	})
	return found
}

// mentionsCall reports whether a call passes obj as an argument or invokes
// a method on it — release, hand-off, or unknown callee: all consume.
func (c *checker) mentionsCall(call *ast.CallExpr, obj types.Object) bool {
	for _, a := range call.Args {
		if c.mentions(a, obj) {
			return true
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && c.mentions(sel.X, obj) {
		return true
	}
	return false
}

// mentions reports whether obj's identifier appears anywhere under e.
func (c *checker) mentions(e ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}

// mentionsBody is mentions over a closure body.
func (c *checker) mentionsBody(b *ast.BlockStmt, obj types.Object) bool {
	return c.mentions(b, obj)
}

// isObjValue reports whether e is exactly obj (possibly parenthesized or
// address-taken) used as a value.
func (c *checker) isObjValue(e ast.Expr, obj types.Object) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	return c.isObjIdent(e, obj)
}

// isObjIdent reports whether e is obj's bare identifier.
func (c *checker) isObjIdent(e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && (c.pass.TypesInfo.Uses[id] == obj || c.pass.TypesInfo.Defs[id] == obj)
}

// isCompositeOrCall reports whether e builds a value that can embed obj
// (composite literal or call), i.e. a hand-off when assigned.
func isCompositeOrCall(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.CompositeLit, *ast.CallExpr:
		return true
	}
	return false
}
