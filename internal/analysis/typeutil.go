package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// CalleeFunc resolves the *types.Func a call expression invokes, or nil
// for calls through function-typed variables, conversions, and builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	default:
		return nil
	}
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsConversion reports whether the call expression is a type conversion
// (its Fun denotes a type, not a value).
func IsConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// NamedPathAndName returns the defining package path and type name of t
// after unwrapping pointers, or ("", "") for unnamed types and types
// without a package (error, builtins).
func NamedPathAndName(t types.Type) (path, name string) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Path(), obj.Name()
}

// IsSimTime reports whether t is (or points to) the sim.Time type —
// matched by package path and name so the testdata stub package
// participates identically.
func IsSimTime(t types.Type) bool {
	if t == nil {
		return false
	}
	path, name := NamedPathAndName(t)
	return name == "Time" && IsSimPkg(path)
}

// IsTimeDuration reports whether t is the standard library's
// time.Duration.
func IsTimeDuration(t types.Type) bool {
	if t == nil {
		return false
	}
	path, name := NamedPathAndName(t)
	return path == "time" && name == "Duration"
}

// EngineSchedulers is the set of sim.Engine scheduling methods. The values
// note which ones accept a bare func() closure (the allocation-prone form
// eventcapture steers away from).
var EngineSchedulers = map[string]bool{
	"Post":        true,  // Post(d, func())
	"PostAt":      true,  // PostAt(t, func())
	"After":       true,  // After(d, func())
	"At":          true,  // At(t, func())
	"PostArg":     false, // pooled, pre-bound: the preferred form
	"AtArg":       false,
	"AtArgPooled": false,
}

// IsEngineScheduler reports whether fn is a scheduling method on
// sim.Engine, returning its name.
func IsEngineScheduler(fn *types.Func) (string, bool) {
	if fn == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	path, name := NamedPathAndName(sig.Recv().Type())
	if name != "Engine" || !IsSimPkg(path) {
		return "", false
	}
	if _, known := EngineSchedulers[fn.Name()]; !known {
		return "", false
	}
	return fn.Name(), true
}

// CapturedVars lists the names of local variables a closure captures:
// identifiers resolving to function-scoped variables declared outside the
// closure body. Package-level variables, fields, and the closure's own
// parameters and locals are not captures. A closure with no captures
// compiles to a static function value and never allocates an environment.
func CapturedVars(info *types.Info, pkg *types.Package, lit *ast.FuncLit) []string {
	seen := map[*types.Var]bool{}
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		if !varInsideFunc(v, pkg) {
			return true // package-level or imported: static, no environment
		}
		if lit.Pos() <= v.Pos() && v.Pos() < lit.End() {
			return true // declared inside the closure (param or local)
		}
		seen[v] = true
		names = append(names, v.Name())
		return true
	})
	sort.Strings(names)
	return names
}

// varInsideFunc reports whether v is declared in some function's scope (as
// opposed to package or universe scope) of pkg.
func varInsideFunc(v *types.Var, pkg *types.Package) bool {
	if v.Pkg() == nil || v.Pkg().Path() != pkg.Path() {
		return false
	}
	scope := v.Parent()
	if scope == nil {
		return false // fields, unresolved
	}
	return scope != v.Pkg().Scope() && scope != types.Universe
}

// FuncDecls indexes the package's function declarations by their type
// object, letting analyzers walk into same-package callees.
func FuncDecls(info *types.Info, files []*ast.File) map[*types.Func]*ast.FuncDecl {
	m := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				m[fn] = fd
			}
		}
	}
	return m
}
