// Package analysis is the repo's static-analysis substrate: a small,
// dependency-free mirror of the golang.org/x/tools/go/analysis API plus the
// driver glue shared by cmd/hwdplint, the analysistest-style golden runner,
// and the tier-1 lint regression test.
//
// The toolchain image this repository builds in has no module network
// access, so the framework is implemented on the standard library alone
// (go/ast, go/types, go/token). The Analyzer/Pass/Diagnostic surface is
// kept deliberately API-compatible with x/tools so the analyzers port
// verbatim if the dependency ever becomes available.
//
// Every analyzer supports suppression via a
//
//	//hwdp:ignore <analyzer> <reason>
//
// comment on the flagged line or the line directly above it. The reason is
// mandatory: a reason-less suppression is itself reported (as analyzer
// "hwdpignore") and does not suppress anything, and a well-formed
// suppression that no longer covers any finding is reported as stale so
// waivers cannot outlive their bugs. See docs/ANALYSIS.md.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static check: a name (used in diagnostics and in
// //hwdp:ignore comments), a doc string, and the Run function applied to
// each package unit.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppressions; it
	// must be a single lowercase word.
	Name string
	// Doc is the analyzer's one-paragraph description (shown by
	// `hwdplint -help`).
	Doc string
	// Run executes the check over one package and reports findings
	// through the Pass.
	Run func(*Pass) error
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions for Files.
	Fset *token.FileSet
	// Files are the package's parsed sources (including _test.go files
	// when the driver loads a test variant; diagnostics in test files are
	// dropped by the driver).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's expression facts.
	TypesInfo *types.Info
	// Unit is the package unit under analysis; interprocedural analyzers
	// reach the driver-attached fact store through Unit.Facts.
	Unit *Unit

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Diagnostic is one finding: a position, a message, and the analyzer that
// produced it.
type Diagnostic struct {
	// Pos is the finding's source position.
	Pos token.Pos
	// Message describes the violation and the suggested fix.
	Message string
	// Analyzer is the producing analyzer's name (or "hwdpignore" for
	// malformed suppression comments).
	Analyzer string
}

// Unit is one loaded, type-checked package ready for analysis.
type Unit struct {
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files are the parsed sources.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds type-checker facts (Types, Defs, Uses, Selections must
	// be populated).
	Info *types.Info
	// Facts is the driver-attached cross-package fact store (in practice
	// a *callgraph.Registry). It is typed as any to keep the framework
	// free of a dependency on the fact format; interprocedural analyzers
	// assert the concrete type and degrade to local-only checks when it
	// is absent.
	Facts any

	sups     []*suppression
	supsDone bool
}

// NewInfo returns a types.Info with every map the analyzers need
// populated; loaders share it so no driver forgets a field.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// IgnoreDirective is the comment prefix that suppresses a diagnostic.
const IgnoreDirective = "//hwdp:ignore"

// ignoreRe captures "analyzer" and "reason" from a suppression comment.
var ignoreRe = regexp.MustCompile(`^//hwdp:ignore\s+([A-Za-z0-9_-]+)[ \t]*(.*)$`)

// suppression is one parsed //hwdp:ignore comment. used records whether
// the suppression actually covered a finding — either a diagnostic during
// Run or an interprocedural atom dropped at fact-collection time — so Run
// can report suppressions that have outlived their bug as stale.
type suppression struct {
	analyzer string
	reason   string
	file     string
	line     int
	pos      token.Pos
	used     bool
}

// suppressions parses every //hwdp:ignore comment in the unit (cached, so
// use-marking survives across the fact-collection and analyzer phases).
func (u *Unit) suppressions() []*suppression {
	if u.supsDone {
		return u.sups
	}
	u.supsDone = true
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, IgnoreDirective) {
					continue
				}
				m := ignoreRe.FindStringSubmatch(c.Text)
				p := u.Fset.Position(c.Pos())
				if m == nil {
					u.sups = append(u.sups, &suppression{analyzer: "", file: p.Filename, line: p.Line, pos: c.Pos()})
					continue
				}
				u.sups = append(u.sups, &suppression{
					analyzer: m[1],
					reason:   strings.TrimSpace(m[2]),
					file:     p.Filename,
					line:     p.Line,
					pos:      c.Pos(),
				})
			}
		}
	}
	return u.sups
}

// Suppresses reports whether a valid //hwdp:ignore for the named analyzer
// covers pos (its own line or the line directly below), marking the
// suppression as used. Fact collectors call it to drop waived sites before
// they enter the cross-package fact store; Run calls it for every
// diagnostic. A suppression that is never marked used by either phase is
// reported as stale.
func (u *Unit) Suppresses(analyzer string, pos token.Pos) bool {
	p := u.Fset.Position(pos)
	hit := false
	for _, s := range u.suppressions() {
		if s.reason == "" || s.analyzer == "" {
			continue
		}
		if s.analyzer != analyzer && s.analyzer != "all" {
			continue
		}
		if s.file == p.Filename && (s.line == p.Line || s.line == p.Line-1) {
			s.used = true
			hit = true
		}
	}
	return hit
}

// Run applies the analyzers to the unit, resolves suppressions, reports
// malformed and stale suppressions, drops diagnostics in _test.go files,
// and returns the surviving findings sorted by position. A non-nil error
// means an analyzer itself failed (not that it found violations).
func Run(u *Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
			Unit:      u,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}

	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	sups := u.suppressions()

	// Validate suppressions: a reason is mandatory, and the analyzer name
	// must exist (catching typos that would otherwise silently suppress
	// nothing).
	for _, s := range sups {
		switch {
		case s.analyzer == "":
			diags = append(diags, Diagnostic{Pos: s.pos, Analyzer: "hwdpignore",
				Message: "malformed suppression: want \"//hwdp:ignore <analyzer> <reason>\""})
		case s.reason == "":
			diags = append(diags, Diagnostic{Pos: s.pos, Analyzer: "hwdpignore",
				Message: fmt.Sprintf("suppression of %q needs a non-empty reason: \"//hwdp:ignore %s <reason>\"", s.analyzer, s.analyzer)})
		case !known[s.analyzer] && s.analyzer != "all":
			diags = append(diags, Diagnostic{Pos: s.pos, Analyzer: "hwdpignore",
				Message: fmt.Sprintf("suppression names unknown analyzer %q", s.analyzer)})
		}
	}

	// Apply valid suppressions: a comment covers its own line and the
	// line below (so it can trail the offending statement or sit above
	// it). Suppresses marks the covering comment used.
	kept := diags[:0]
	for _, d := range diags {
		if d.Analyzer != "hwdpignore" && u.Suppresses(d.Analyzer, d.Pos) {
			continue
		}
		p := u.Fset.Position(d.Pos)
		if strings.HasSuffix(p.Filename, "_test.go") {
			continue
		}
		kept = append(kept, d)
	}
	diags = kept

	// Stale-suppression check: a well-formed //hwdp:ignore that covered no
	// finding in this run — neither a diagnostic above nor a waived site
	// at fact-collection time — has outlived its bug and must be deleted,
	// so waivers cannot silently accumulate. "all" waivers are exempt
	// (they are deliberate fixture-wide blankets), as are suppressions
	// naming analyzers not part of this run and those in _test.go files
	// (whose diagnostics are always dropped).
	for _, s := range sups {
		if s.used || s.analyzer == "" || s.reason == "" || s.analyzer == "all" {
			continue
		}
		if !known[s.analyzer] || strings.HasSuffix(s.file, "_test.go") {
			continue
		}
		diags = append(diags, Diagnostic{Pos: s.pos, Analyzer: "hwdpignore",
			Message: fmt.Sprintf("stale suppression: no %s finding on this line or the line below anymore — delete the //hwdp:ignore", s.analyzer)})
	}

	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := u.Fset.Position(diags[i].Pos), u.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return diags, nil
}

// HotPathPackages matches the import paths of the packages holding the
// simulator's deterministic, allocation-free hot path. The simdeterminism
// and eventcapture analyzers gate on it.
var HotPathPackages = regexp.MustCompile(`^hwdp/internal/(sim|smu|mmu|nvme|ssd|kernel|cpu|mem)(/|$)`)

// SimPackagePath is the import path of the discrete-event substrate; the
// analyzers recognize sim.Time and sim.Engine by it. Test fixtures under
// internal/analysis/testdata declare a stub package with the same path so
// analyzer behavior is identical in and out of tests.
const SimPackagePath = "hwdp/internal/sim"

// NormalizePkgPath strips the decorations the go command adds to test
// variants ("pkg [pkg.test]", "pkg.test") so path gates see the plain
// import path.
func NormalizePkgPath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	return strings.TrimSuffix(path, ".test")
}

// IsHotPathPkg reports whether the package path (possibly a test variant)
// is part of the simulator hot path.
func IsHotPathPkg(path string) bool {
	return HotPathPackages.MatchString(NormalizePkgPath(path))
}

// IsSimPkg reports whether path is the sim package itself (conversion
// helpers live there, so simtime exempts it).
func IsSimPkg(path string) bool {
	return NormalizePkgPath(path) == SimPackagePath
}
