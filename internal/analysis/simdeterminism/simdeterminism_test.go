package simdeterminism_test

import (
	"testing"

	"hwdp/internal/analysis/analyzertest"
	"hwdp/internal/analysis/simdeterminism"
)

func TestSimdeterminism(t *testing.T) {
	analyzertest.Run(t, "../testdata", "hwdp/internal/kernel", simdeterminism.Analyzer)
}
