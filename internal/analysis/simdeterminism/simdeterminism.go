// Package simdeterminism rejects sources of nondeterminism inside the
// simulator's hot-path packages: wall-clock reads, the global math/rand
// generators, goroutine spawns, and map iteration whose body has
// order-dependent effects. Fixed-seed bit-reproducibility (the golden
// SHA-256 pin and every figure regeneration) depends on none of these
// appearing in model code.
package simdeterminism

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"hwdp/internal/analysis"
)

// Analyzer is the simdeterminism check.
var Analyzer = &analysis.Analyzer{
	Name: "simdeterminism",
	Doc: "forbid wall-clock time, global math/rand, time.Sleep, goroutine spawns, " +
		"and map iteration with order-dependent effects in simulator packages",
	Run: run,
}

// wallClockFuncs are the package-level time functions that read or depend
// on the host clock (or block on it). time.Duration arithmetic and
// constants are fine; these are not.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// pureNames matches cross-package calls that are read-only by convention
// and therefore safe to make in map-iteration order.
var pureNames = regexp.MustCompile(`^(Len|Cap|Size|String|Name|Now|Stats|Value|Count|Sum|Mean|Min|Max|Percentile|Buffered|Space|Depth|Pops|Refills|Is[A-Z].*|Has[A-Z].*|Present|Pending)$`)

// maxCalleeDepth bounds the taint walk into same-package callees from a
// map-range body.
const maxCalleeDepth = 2

func run(pass *analysis.Pass) error {
	if !analysis.IsHotPathPkg(pass.Pkg.Path()) {
		return nil
	}
	decls := analysis.FuncDecls(pass.TypesInfo, pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "goroutine spawn in simulation code: the event engine is single-threaded and scheduling order must be deterministic")
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n, decls)
			}
			return true
		})
	}
	return nil
}

// checkCall flags wall-clock and global-rand calls.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	switch fn.Pkg().Path() {
	case "time":
		if !isMethod && wallClockFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "time.%s reads (or blocks on) the host clock: simulation code must use the engine's virtual clock (sim.Engine.Now)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !isMethod {
			pass.Reportf(call.Pos(), "global %s.%s uses shared, unseeded-per-run state: use the per-thread sim.Rand streams instead", fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkMapRange flags `range m` over a map whose body has order-dependent
// effects: posting events, writing metrics, emitting output, or calling
// into another hot-path component. Collecting keys into a slice (and
// sorting) is the sanctioned pattern and is not flagged.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, decls map[*types.Func]*ast.FuncDecl) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	w := &effectWalker{pass: pass, decls: decls, visited: make(map[*types.Func]bool)}
	if eff, pos := w.findEffect(rng.Body, 0); eff != "" {
		pass.Reportf(rng.Pos(), "map iteration order is random, and this loop's body %s (at %s): iterate a sorted key slice instead",
			eff, pass.Fset.Position(pos))
	}
}

// effectWalker scans a statement tree (and, depth-limited, same-package
// callees) for order-dependent effects.
type effectWalker struct {
	pass    *analysis.Pass
	decls   map[*types.Func]*ast.FuncDecl
	visited map[*types.Func]bool
}

// findEffect returns a description and position of the first
// order-dependent effect found under n, or ("", NoPos).
func (w *effectWalker) findEffect(n ast.Node, depth int) (effect string, pos token.Pos) {
	ast.Inspect(n, func(m ast.Node) bool {
		if effect != "" {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if e, p := w.classifyCall(call, depth); e != "" {
			effect, pos = e, p
			return false
		}
		return true
	})
	return effect, pos
}

// classifyCall decides whether one call is an order-dependent effect,
// recursing into same-package callees up to maxCalleeDepth.
func (w *effectWalker) classifyCall(call *ast.CallExpr, depth int) (string, token.Pos) {
	fn := analysis.CalleeFunc(w.pass.TypesInfo, call)
	if fn == nil {
		// A call through a function-typed value (callback): its effects
		// are unknowable statically; treat as effectful. Closures invoked
		// in map order are exactly how ordering bugs escape.
		if analysis.IsConversion(w.pass.TypesInfo, call) {
			return "", token.NoPos
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := w.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				return "", token.NoPos
			}
		}
		return "invokes a dynamic callback", call.Pos()
	}
	if name, ok := analysis.IsEngineScheduler(fn); ok {
		return "posts events (sim.Engine." + name + ")", call.Pos()
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return "", token.NoPos // builtins like error.Error
	}
	path := analysis.NormalizePkgPath(pkg.Path())
	switch path {
	case "hwdp/internal/metrics":
		return "writes metrics (" + fn.Name() + ")", call.Pos()
	case "fmt":
		if n := fn.Name(); n == "Print" || n == "Println" || n == "Printf" ||
			n == "Fprint" || n == "Fprintln" || n == "Fprintf" {
			return "writes output (fmt." + n + ")", call.Pos()
		}
		return "", token.NoPos
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return "writes output (" + fn.Name() + ")", call.Pos()
		}
	}
	// Same-package callee: walk into its body (the "small taint walk").
	if path == analysis.NormalizePkgPath(w.pass.Pkg.Path()) {
		if depth >= maxCalleeDepth || w.visited[fn] {
			return "", token.NoPos
		}
		decl := w.decls[fn]
		if decl == nil || decl.Body == nil {
			return "", token.NoPos
		}
		w.visited[fn] = true
		if eff, _ := w.findEffect(decl.Body, depth+1); eff != "" {
			return "calls " + fn.Name() + ", which " + eff, call.Pos()
		}
		return "", token.NoPos
	}
	// Cross-package call into another hot-path component: state mutation
	// there happens in map order (e.g. allocator pops, queue pushes).
	if analysis.IsHotPathPkg(path) && !pureNames.MatchString(fn.Name()) {
		return "calls into " + path + " (" + fn.Name() + ")", call.Pos()
	}
	return "", token.NoPos
}
