// Package analyzertest is a stdlib-only golden-test harness for the
// analyzers in internal/analysis, mirroring the x/tools analysistest
// contract: fixture packages live under testdata/src/<importpath>/ and
// carry `// want "regexp"` comments on the lines where diagnostics are
// expected. A fixture package importing "hwdp/internal/sim" resolves to
// the stub under testdata/src/hwdp/internal/sim, which reuses the real
// import path so the analyzers' package gates behave exactly as they do
// on the real tree. Standard-library imports are type-checked from
// source (no pre-built export data is assumed).
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"hwdp/internal/analysis"
	"hwdp/internal/analysis/callgraph"
)

// Run loads testdata/src/<pkgpath>, applies the analyzers, and compares
// the resulting diagnostics against the fixture's `// want` expectations.
// Callgraph facts are threaded exactly as in a real run: the fixture's
// hwdp/... imports are summarized dependency-first into a shared registry
// before the fixture itself, so the interprocedural analyzers (laneescape,
// hotalloc) see cross-package reachability inside testdata too.
func Run(t *testing.T, testdata, pkgpath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	unit := Load(t, testdata, pkgpath)
	diags, err := analysis.Run(unit, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", pkgpath, err)
	}
	checkExpectations(t, unit, diags)
}

// Load parses and type-checks one fixture package without running any
// analyzer (facts threaded as in Run), for tests that assert on
// analysis.Run output directly (the suppression-machinery tests, whose
// diagnostics land on comment lines where a same-line `// want` cannot be
// written).
func Load(t *testing.T, testdata, pkgpath string) *analysis.Unit {
	t.Helper()
	ld := newLoader(filepath.Join(testdata, "src"))
	u, err := ld.load(pkgpath)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgpath, err)
	}
	ld.summarize(u, callgraph.NewRegistry(), map[string]bool{})
	return u
}

// loader type-checks fixture packages, resolving hwdp/... imports inside
// the testdata tree and everything else from the standard library.
type loader struct {
	root     string // testdata/src
	fset     *token.FileSet
	pkgs     map[string]*types.Package
	units    map[string]*analysis.Unit
	fallback types.Importer
}

func newLoader(root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:     root,
		fset:     fset,
		pkgs:     make(map[string]*types.Package),
		units:    make(map[string]*analysis.Unit),
		fallback: importer.ForCompiler(fset, "source", nil),
	}
}

// Import satisfies types.Importer so fixture packages can import each
// other and the sim stub.
func (l *loader) Import(path string) (*types.Package, error) {
	if !strings.HasPrefix(path, "hwdp/") {
		return l.fallback.Import(path)
	}
	u, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return u.Pkg, nil
}

// load parses and type-checks one fixture package (memoized).
func (l *loader) load(path string) (*analysis.Unit, error) {
	if u, ok := l.units[path]; ok {
		return u, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	u := &analysis.Unit{Fset: l.fset, Files: files, Pkg: pkg, Info: info}
	l.units[path] = u
	l.pkgs[path] = pkg
	return u, nil
}

// summarize walks the unit's hwdp/... imports depth-first (imports before
// importers) and records each package's callgraph facts in reg, mirroring
// suite.RunAll for fixture trees.
func (l *loader) summarize(u *analysis.Unit, reg *callgraph.Registry, done map[string]bool) {
	path := analysis.NormalizePkgPath(u.Pkg.Path())
	if done[path] {
		return
	}
	done[path] = true
	imps := u.Pkg.Imports()
	paths := make([]string, 0, len(imps))
	for _, imp := range imps {
		paths = append(paths, analysis.NormalizePkgPath(imp.Path()))
	}
	sort.Strings(paths)
	for _, p := range paths {
		if dep, ok := l.units[p]; ok {
			l.summarize(dep, reg, done)
		}
	}
	callgraph.Summarize(u, reg)
}

// expectation is one `// want` pattern anchored to a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseExpectations extracts the `// want "re" "re"...` comments from the
// fixture. Both double-quoted (Go unquoting) and backquoted patterns are
// accepted, matching the analysistest syntax.
func parseExpectations(t *testing.T, u *analysis.Unit) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				for _, pat := range splitPatterns(t, pos, m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}
	return out
}

// splitPatterns tokenizes the tail of a want comment into its quoted
// pattern strings.
func splitPatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
			if end == len(s) {
				t.Fatalf("%s: unterminated want pattern in %q", pos, s)
			}
			p, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s: unquoting want pattern %q: %v", pos, s[:end+1], err)
			}
			pats = append(pats, p)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern in %q", pos, s)
			}
			pats = append(pats, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			t.Fatalf("%s: want patterns must be quoted, got %q", pos, s)
		}
	}
	return pats
}

// checkExpectations matches diagnostics against want comments one-to-one:
// every diagnostic must be wanted on its line, and every want must be met.
func checkExpectations(t *testing.T, u *analysis.Unit, diags []analysis.Diagnostic) {
	t.Helper()
	wants := parseExpectations(t, u)
	for _, d := range diags {
		pos := u.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic [%s]: %s", pos, d.Analyzer, d.Message)
		}
	}
	sort.SliceStable(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}
