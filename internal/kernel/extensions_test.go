package kernel

// Tests for the paper's Section V extensions: demand paging for anonymous
// pages (first-touch zero-fill without I/O, accelerated swap-in), the
// long-latency-I/O stall timeout, and multi-device SMU routing.

import (
	"bytes"
	"testing"

	"hwdp/internal/fs"
	"hwdp/internal/mem"
	"hwdp/internal/mmu"
	"hwdp/internal/nvme"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
	"hwdp/internal/smu"
	"hwdp/internal/ssd"
)

func withStallTimeout(d sim.Time) rigOpt { return func(c *Config) { c.StallTimeout = d } }

func (r *rig) mmapAnon(t *testing.T, pages int, fast bool) pagetable.VAddr {
	t.Helper()
	va, err := r.k.MmapAnon(r.p, 0, 0, pages, pagetable.Prot{Write: true, User: true}, fast)
	if err != nil {
		t.Fatal(err)
	}
	return va
}

func TestAnonFirstTouchHWDPBypassesIO(t *testing.T) {
	r := newRig(t, 64<<20, 512, withScheme(HWDP))
	va := r.mmapAnon(t, 16, true)
	e, ok := r.p.AS.Table.Lookup(va)
	if !ok || e.State() != pagetable.StateNotPresentLBA {
		t.Fatalf("anon PTE state = %v", e.State())
	}
	if e.Block().LBA != pagetable.AnonFirstTouch {
		t.Fatalf("anon PTE LBA = %d", e.Block().LBA)
	}
	readsBefore := r.dev.Stats().Reads
	out, lat := r.access(t, r.th, va, true)
	if out != mmu.OutcomeHW {
		t.Fatalf("outcome = %v", out)
	}
	if r.dev.Stats().Reads != readsBefore {
		t.Fatal("first-touch anonymous miss performed device I/O")
	}
	// Handled in nanoseconds, not microseconds: no device time.
	if lat > sim.Micro(1) {
		t.Fatalf("zero-fill took %v", lat)
	}
	if st := r.smu.Stats(); st.AnonZeroFill != 1 {
		t.Fatalf("smu stats = %+v", st)
	}
	// The frame reads back as zeros.
	buf := make([]byte, 64)
	got := false
	r.k.Load(r.th, va, buf, func(mmu.Result) { got = true })
	r.eng.RunUntil(r.eng.Now() + sim.Second)
	if !got || !bytes.Equal(buf, make([]byte, 64)) {
		t.Fatal("anonymous page not zero-filled")
	}
}

func TestAnonOSDPZeroFillIsMinor(t *testing.T) {
	r := newRig(t, 64<<20, 512, withScheme(OSDP))
	va := r.mmapAnon(t, 8, true) // fast ignored under OSDP
	out, lat := r.access(t, r.th, va, true)
	if out != mmu.OutcomeOSFault {
		t.Fatalf("outcome = %v", out)
	}
	if lat > sim.Micro(5) {
		t.Fatalf("OSDP zero-fill took %v (device involved?)", lat)
	}
	st := r.k.Stats()
	if st.MinorFaults != 1 || st.MajorFaults != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAnonSWDPBypassesIO(t *testing.T) {
	r := newRig(t, 64<<20, 512, withScheme(SWDP))
	va := r.mmapAnon(t, 8, true)
	readsBefore := r.dev.Stats().Reads
	out, lat := r.access(t, r.th, va, true)
	if out != mmu.OutcomeOSFault {
		t.Fatalf("outcome = %v", out)
	}
	if r.dev.Stats().Reads != readsBefore {
		t.Fatal("SW-emulated SMU did I/O for first-touch anon page")
	}
	if lat > sim.Micro(3) {
		t.Fatalf("sw zero-fill took %v", lat)
	}
	if r.k.Stats().SWFaults != 1 {
		t.Fatalf("stats = %+v", r.k.Stats())
	}
}

func TestAnonSwapOutAndAcceleratedSwapIn(t *testing.T) {
	// Small memory, big anonymous region: dirtied pages get evicted to the
	// swap backing; refaults read them back via the SMU with the real swap
	// LBA in the PTE ("accelerating swap-in of anonymous pages is
	// straightforward").
	r := newRig(t, 96*4096, 16, withScheme(HWDP), kptedEvery(sim.Millisecond))
	va := r.mmapAnon(t, 192, true)
	marker := []byte("swap me out and back")
	ok := false
	r.k.Store(r.th, va+100, marker, func(mmu.Result) { ok = true })
	r.eng.RunUntil(r.eng.Now() + 10*sim.Millisecond)
	if !ok {
		t.Fatal("store hung")
	}
	// Dirty the rest to force page 0 out.
	for i := 1; i < 192; i++ {
		done := false
		r.k.Store(r.th, va+pagetable.VAddr(i*4096), []byte{byte(i)}, func(mmu.Result) { done = true })
		r.eng.RunUntil(r.eng.Now() + sim.Second)
		if !done {
			t.Fatalf("store %d hung", i)
		}
	}
	r.eng.RunUntil(r.eng.Now() + 50*sim.Millisecond)
	e, _ := r.p.AS.Table.Lookup(va)
	if e.Present() {
		t.Skip("page 0 survived eviction pressure")
	}
	if e.State() != pagetable.StateNotPresentLBA {
		t.Fatalf("evicted anon PTE state = %v", e.State())
	}
	if e.Block().LBA == pagetable.AnonFirstTouch {
		t.Fatal("dirty anon page evicted without a swap LBA")
	}
	if r.k.Stats().Writebacks == 0 {
		t.Fatal("no swap writeback")
	}
	// Refault: content must come back from swap, via the hardware path.
	buf := make([]byte, len(marker))
	got := false
	r.k.Load(r.th, va+100, buf, func(r mmu.Result) { got = true })
	r.eng.RunUntil(r.eng.Now() + sim.Second)
	if !got || !bytes.Equal(buf, marker) {
		t.Fatalf("swap-in returned %q", buf)
	}
}

func TestAnonCleanEvictionRefaultsAsZeroFill(t *testing.T) {
	r := newRig(t, 96*4096, 16, withScheme(HWDP), kptedEvery(sim.Millisecond))
	va := r.mmapAnon(t, 192, true)
	// Touch page 0 read-only (stays clean), then flood.
	r.access(t, r.th, va, false)
	for i := 1; i < 192; i++ {
		r.access(t, r.th, va+pagetable.VAddr(i*4096), false)
	}
	r.eng.RunUntil(r.eng.Now() + 50*sim.Millisecond)
	e, _ := r.p.AS.Table.Lookup(va)
	if e.Present() {
		t.Skip("page 0 survived eviction pressure")
	}
	if e.Block().LBA != pagetable.AnonFirstTouch {
		t.Fatalf("clean anon eviction should restore the first-touch constant, got LBA %d", e.Block().LBA)
	}
}

func TestStallTimeoutConvertsToContextSwitch(t *testing.T) {
	// A device 100x slower than the timeout: the stall converts into a
	// context switch, bounding wasted pipeline time (Section V).
	slow := ssd.Profile{Name: "slow", Read4K: 2 * sim.Millisecond,
		Write4K: 2 * sim.Millisecond, Channels: 2}
	r := newRigProf(t, 64<<20, 512, slow, withScheme(HWDP), withStallTimeout(100*sim.Microsecond))
	va, _ := r.mmapFile(t, "f", 8, MmapFlags{Fast: true})
	out, lat := r.access(t, r.th, va, false)
	if out != mmu.OutcomeHW {
		t.Fatalf("outcome = %v", out)
	}
	if lat < 2*sim.Millisecond {
		t.Fatalf("latency = %v, device is 2ms", lat)
	}
	st := r.k.Stats()
	if st.StallTimeouts != 1 {
		t.Fatalf("timeouts = %d", st.StallTimeouts)
	}
	// The pipeline stalled only ~100us of the 2ms.
	if r.th.HW.StallTime > 150*sim.Microsecond {
		t.Fatalf("stall time = %v, timeout did not free the core", r.th.HW.StallTime)
	}
	if r.th.HW.ContextSwaps != 2 {
		t.Fatalf("context swaps = %d", r.th.HW.ContextSwaps)
	}
}

func TestStallTimeoutNotTakenForFastDevice(t *testing.T) {
	r := newRig(t, 64<<20, 512, withScheme(HWDP), withStallTimeout(sim.Millisecond))
	va, _ := r.mmapFile(t, "f", 8, MmapFlags{Fast: true})
	out, _ := r.access(t, r.th, va, false)
	if out != mmu.OutcomeHW {
		t.Fatalf("outcome = %v", out)
	}
	if r.k.Stats().StallTimeouts != 0 {
		t.Fatal("timeout fired for a fast miss")
	}
}

func TestMultiDeviceRouting(t *testing.T) {
	// Two NVMe devices behind one SMU: PTEs carry distinct device IDs and
	// misses route to the right device.
	r := newRig(t, 64<<20, 512, withScheme(HWDP))
	prof := ssd.OptaneDCPMM
	prof.JitterFrac = 0
	fsys2 := fs.New(0, 1, 2, 1<<16)
	dev2 := ssd.New(r.eng, prof, sim.NewRand(9), func(cmd nvme.Command) {
		frame := cmd.PRP1 / 4096
		switch cmd.Opcode {
		case nvme.OpRead:
			_ = r.mem.Fill(memFrame(frame), func(buf []byte) {
				_ = fsys2.ReadBlock(cmd.SLBA, buf)
			})
		case nvme.OpWrite:
			if data, err := r.mem.Data(memFrame(frame)); err == nil {
				_ = fsys2.WriteBlock(cmd.SLBA, data)
			}
		}
	})
	dev2.AddNamespace(nvme.Namespace{ID: 2, Blocks: 1 << 16})
	qp2 := nvme.NewQueuePair(2, 2*smu.PMSHREntries)
	r.smu.AttachDevice(1, dev2, qp2, 2)
	r.k.AttachStorage(0, 1, dev2, fsys2)

	f2, err := fsys2.Create("on-dev2", 8, fs.SeededInit(5))
	if err != nil {
		t.Fatal(err)
	}
	va2, err := r.k.Mmap(r.p, 0, 1, f2, pagetable.Prot{User: true}, MmapFlags{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := r.p.AS.Table.Lookup(va2)
	if e.Block().DeviceID != 1 {
		t.Fatalf("device ID in PTE = %d", e.Block().DeviceID)
	}
	out, lat := r.access(t, r.th, va2, false)
	if out != mmu.OutcomeHW {
		t.Fatalf("outcome = %v", out)
	}
	if dev2.Stats().Reads != 1 || r.dev.Stats().Reads != 0 {
		t.Fatalf("reads routed wrong: dev1=%d dev2=%d", r.dev.Stats().Reads, dev2.Stats().Reads)
	}
	// The PMM profile is much faster than the Z-SSD.
	want := r.mmu.WalkLatency + r.smu.Timing().BeforeDevice() + prof.Read4K + r.smu.Timing().AfterDevice()
	if lat != want {
		t.Fatalf("latency = %v, want %v", lat, want)
	}
	// Content flows from the second file system.
	buf := make([]byte, 32)
	want2 := make([]byte, fs.PageBytes)
	fs.SeededInit(5)(0, want2)
	got := false
	r.k.Load(r.th, va2, buf, func(mmu.Result) { got = true })
	r.eng.RunUntil(r.eng.Now() + sim.Second)
	if !got || !bytes.Equal(buf, want2[:32]) {
		t.Fatal("content from wrong device")
	}
}

func memFrame(f uint64) mem.FrameID { return mem.FrameID(f) }

func TestMunmapAnonRegion(t *testing.T) {
	// kpoold disabled for exact frame accounting (see
	// TestMunmapBarriersAndFrees).
	r := newRig(t, 64<<20, 512, withScheme(HWDP), kptedEvery(sim.Millisecond), noKpoold())
	va := r.mmapAnon(t, 32, true)
	for i := 0; i < 8; i++ {
		r.access(t, r.th, va+pagetable.VAddr(i*4096), true)
	}
	freeBefore := r.mem.FreeFrames()
	done := false
	r.k.Munmap(r.th, va, func() { done = true })
	r.eng.RunUntil(r.eng.Now() + sim.Second)
	if !done {
		t.Fatal("munmap hung")
	}
	// Dirty anon pages write back asynchronously; frames return by then.
	r.eng.RunUntil(r.eng.Now() + sim.Second)
	if r.mem.FreeFrames() < freeBefore+8 {
		t.Fatalf("anon frames not freed: before=%d after=%d", freeBefore, r.mem.FreeFrames())
	}
	out, _ := r.access(t, r.th, va, false)
	if out != mmu.OutcomeBadAddr {
		t.Fatalf("access after munmap = %v", out)
	}
}

func TestForkWithAnonVMA(t *testing.T) {
	r := newRig(t, 64<<20, 512, withScheme(HWDP))
	va := r.mmapAnon(t, 8, true)
	r.access(t, r.th, va, true)
	child := r.k.Fork(r.p)
	// Parent anon PTEs reverted: no LBA-augmented entries remain.
	for i := 0; i < 8; i++ {
		e, ok := r.p.AS.Table.Lookup(va + pagetable.VAddr(i*4096))
		if !ok {
			continue
		}
		if s := e.State(); s == pagetable.StateNotPresentLBA || s == pagetable.StateResidentUnsynced {
			t.Fatalf("anon page %d still %v after fork", i, s)
		}
	}
	// Child faults via the OS and sees zero-filled pages.
	thC := r.k.NewThread(child, 2)
	out, _ := r.access(t, thC, va+4096, false)
	if out != mmu.OutcomeOSFault {
		t.Fatalf("child anon fault = %v", out)
	}
}

func TestFsyncAnonBacking(t *testing.T) {
	// Fsync on a regular file while anon VMAs exist must not touch them.
	r := newRig(t, 64<<20, 512, withScheme(HWDP))
	_ = r.mmapAnon(t, 8, true)
	fva, f := r.mmapFile(t, "g", 4, MmapFlags{Fast: true})
	okS := false
	r.k.Store(r.th, fva, []byte("z"), func(mmu.Result) {
		r.k.Fsync(r.th, f, func() { okS = true })
	})
	r.eng.RunUntil(r.eng.Now() + sim.Second)
	if !okS {
		t.Fatal("fsync hung")
	}
}
