package kernel

import (
	"fmt"

	"hwdp/internal/mem"
	"hwdp/internal/mmu"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
)

// Access performs one user memory access (timing only): the pipeline
// stalls for however long translation plus miss handling takes. done
// receives the MMU's outcome.
//
// With Config.StallTimeout set (HWDP), a stall that outlives the timeout
// raises a timeout exception and context-switches the thread away, freeing
// the core while a long-latency I/O completes (Section V).
//
// With Config.DirtyRatioFrac set, a write arriving while the dirty-page
// count sits at the hard limit is throttled (balance_dirty_pages) before
// the access proceeds.
func (k *Kernel) Access(th *Thread, va pagetable.VAddr, write bool, done func(mmu.Result)) {
	if write && k.dirtyHardLimit > 0 && k.dirtyPages >= k.dirtyHardLimit {
		k.throttle(th, va, done)
		return
	}
	k.accessNow(th, va, write, done)
}

// accessNow is Access past the throttle gate.
func (k *Kernel) accessNow(th *Thread, va pagetable.VAddr, write bool, done func(mmu.Result)) {
	th.beginStall(k)
	timedOut := false
	var tev *sim.Event
	if k.cfg.StallTimeout > 0 && k.cfg.Scheme == HWDP {
		// Needs the cancelable handle (canceled when the access completes
		// before the deadline) and shares timedOut with the completion
		// callback below; the timer fires only on I/Os slower than the
		// stall budget.
		//hwdp:ignore eventcapture cancelable stall watchdog sharing state with the completion callback; fires only past the stall budget
		tev = k.eng.After(k.cfg.StallTimeout, func() {
			if th.stallEnd == nil {
				return // the miss moved into a kernel path; not a pure stall
			}
			timedOut = true
			k.stats.StallTimeouts++
			th.endStall()
			th.HW.AccountContextSwitch()
			k.kexec(th.HW, k.cfg.Costs.Exception+k.cfg.Costs.CtxSwitchOut, func() {})
		})
	}
	k.mmu.Access(th.Proc.AS, va, write, th, func(r mmu.Result) {
		if tev != nil {
			tev.Cancel()
		}
		if timedOut {
			// The completion wakes the blocked thread like an OSDP fault.
			th.HW.AccountContextSwitch()
			k.kexec(th.HW, k.cfg.Costs.WakeSchedule, func() { done(r) })
			return
		}
		th.endStall()
		done(r)
	})
}

// Load reads n bytes of user memory at va into buf (which must have length
// >= n). It performs the access for timing and then copies the bytes from
// the backing frame(s), crossing page boundaries as needed.
func (k *Kernel) Load(th *Thread, va pagetable.VAddr, buf []byte, done func(mmu.Result)) {
	k.copyVM(th, va, buf, false, done)
}

// Store writes buf to user memory at va.
func (k *Kernel) Store(th *Thread, va pagetable.VAddr, buf []byte, done func(mmu.Result)) {
	k.copyVM(th, va, buf, true, done)
}

func (k *Kernel) copyVM(th *Thread, va pagetable.VAddr, buf []byte, write bool, done func(mmu.Result)) {
	if len(buf) == 0 {
		panic("kernel: zero-length VM copy")
	}
	var first mmu.Result
	gotFirst := false
	var step func(va pagetable.VAddr, buf []byte)
	step = func(va pagetable.VAddr, buf []byte) {
		k.Access(th, va, write, func(r mmu.Result) {
			if !gotFirst {
				first = r
				gotFirst = true
			}
			if r.Outcome == mmu.OutcomeBadAddr {
				done(r)
				return
			}
			off := int(va - va.PageBase())
			n := mem.PageSize - off
			if n > len(buf) {
				n = len(buf)
			}
			frame := r.PTE.PFN()
			data, err := k.mem.Data(frame)
			if err != nil {
				panic(fmt.Sprintf("kernel: mapped PTE names bad frame: %v", err))
			}
			if write {
				copy(data[off:off+n], buf[:n])
			} else {
				copy(buf[:n], data[off:off+n])
			}
			if n == len(buf) {
				done(first)
				return
			}
			step(va.PageBase()+mem.PageSize, buf[n:])
		})
	}
	step(va, buf)
}
