package kernel

import (
	"errors"
	"fmt"

	"hwdp/internal/fs"
	"hwdp/internal/mem"
	"hwdp/internal/nvme"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
)

// MmapFlags extends the POSIX mmap flags with the paper's fast-mmap flag
// (Section IV-B) and MAP_POPULATE (used by the "ideal" baseline in Fig. 4).
type MmapFlags struct {
	// Fast requests hardware demand paging for the area: every PTE is
	// LBA-augmented at map time. Ignored (conventional behavior) when the
	// kernel runs the OSDP scheme.
	Fast bool
	// Populate pre-loads every page into memory at map time.
	Populate bool
}

// ErrNoMemory is returned when Populate cannot fit the file in memory.
var ErrNoMemory = errors.New("kernel: not enough memory to populate mapping")

// Mmap maps a file into the process. The call itself is a control-path
// operation (the paper: "mmap is usually in a control path, which does not
// affect application performance"); it completes in zero virtual time, but
// records the per-PTE augmentation work in the MmapPages counter for the
// space/latency overhead discussion.
func (k *Kernel) Mmap(p *Process, sid, devID uint8, f *fs.File,
	prot pagetable.Prot, flags MmapFlags) (pagetable.VAddr, error) {
	st, ok := k.storages[storKey{sid, devID}]
	if !ok {
		return 0, fmt.Errorf("kernel: no storage at sid%d/dev%d", sid, devID)
	}
	pages := f.Pages()
	base := p.nextMap
	// Leave a guard gap and keep regions in distinct 1 GiB-aligned chunks
	// so separate VMAs live under separate PUD entries.
	span := (pagetable.VAddr(pages)*4096 + (1 << 30)) &^ ((1 << 30) - 1)
	p.nextMap += span
	vma := &VMA{Start: base, Pages: pages, File: f, st: st,
		Fast: flags.Fast && k.cfg.Scheme != OSDP, Prot: prot, proc: p}
	p.vmas = append(p.vmas, vma)
	k.stats.MmapPages += uint64(pages)

	if flags.Populate {
		if err := k.populate(p, vma); err != nil {
			return 0, err
		}
	}
	if vma.Fast {
		f.Marked = true
		for i := 0; i < pages; i++ {
			va := base + pagetable.VAddr(i)*4096
			_, _, pte := p.AS.Table.Ensure(va)
			if pte.Get().Present() {
				continue // populated, or already resident via page cache
			}
			if pg := k.lookupPage(f, i); pg != nil {
				// Page resident in the OS page cache: link it directly.
				k.finishMap(p.AS, va, vma, pg)
				continue
			}
			blk, err := st.fsys.Block(f, i)
			if err != nil {
				return 0, err
			}
			pte.Set(pagetable.MakeLBA(blk, prot))
		}
	}
	return base, nil
}

// populate pre-loads every page of the VMA (MAP_POPULATE), bypassing
// virtual time: it is experiment setup, not a measured path.
func (k *Kernel) populate(p *Process, vma *VMA) error {
	for i := 0; i < vma.Pages; i++ {
		va := vma.Start + pagetable.VAddr(i)*4096
		if pg := k.lookupPage(vma.File, i); pg != nil {
			k.finishMap(p.AS, va, vma, pg)
			continue
		}
		frame, err := k.mem.Alloc()
		if err != nil {
			return ErrNoMemory
		}
		blk, err := vma.st.fsys.Block(vma.File, i)
		if err != nil {
			return err
		}
		if err := k.mem.Fill(frame, func(buf []byte) {
			_ = vma.st.fsys.ReadBlock(blk.LBA, buf)
		}); err != nil {
			return err
		}
		pg := k.insertPage(vma.st, vma.File, i, frame,
			mapping{as: p.AS, va: va, vma: vma})
		k.finishMap(p.AS, va, vma, pg)
	}
	return nil
}

// MmapAnon maps `pages` of anonymous memory (heap/stack-style). Under
// HWDP/SW-only with fast=true, every PTE is LBA-augmented with the
// reserved first-touch constant so the SMU zero-fills misses without I/O;
// evicted dirty pages go to a hidden swap backing on <sid, devID> and
// their PTEs get real swap LBAs, accelerating swap-in (Section V).
func (k *Kernel) MmapAnon(p *Process, sid, devID uint8, pages int,
	prot pagetable.Prot, fast bool) (pagetable.VAddr, error) {
	st, ok := k.storages[storKey{sid, devID}]
	if !ok {
		return 0, fmt.Errorf("kernel: no storage at sid%d/dev%d", sid, devID)
	}
	k.anonCount++
	backing, err := st.fsys.Create(fmt.Sprintf("[anon-%d]", k.anonCount), pages, nil)
	if err != nil {
		return 0, err
	}
	base := p.nextMap
	span := (pagetable.VAddr(pages)*4096 + (1 << 30)) &^ ((1 << 30) - 1)
	p.nextMap += span
	vma := &VMA{Start: base, Pages: pages, File: backing, st: st,
		Fast: fast && k.cfg.Scheme != OSDP, Anon: true, Prot: prot, proc: p,
		swapped: make(map[int]bool)}
	p.vmas = append(p.vmas, vma)
	k.stats.MmapPages += uint64(pages)
	if vma.Fast {
		anonBlk := pagetable.BlockAddr{SID: sid, DeviceID: devID, LBA: pagetable.AnonFirstTouch}
		for i := 0; i < pages; i++ {
			va := base + pagetable.VAddr(i)*4096
			_, _, pte := p.AS.Table.Ensure(va)
			pte.Set(pagetable.MakeLBA(anonBlk, prot))
		}
	}
	return base, nil
}

// vmaPTEAddrs collects the entry addresses of all installed PTEs in the
// VMA (the set the SMU barrier must drain before unmapping).
func (k *Kernel) vmaPTEAddrs(vma *VMA) []pagetable.EntryAddr {
	var addrs []pagetable.EntryAddr
	for i := 0; i < vma.Pages; i++ {
		va := vma.Start + pagetable.VAddr(i)*4096
		if _, _, pte, ok := vma.proc.AS.Table.Walk(va); ok {
			addrs = append(addrs, pte.Addr())
		}
	}
	return addrs
}

// syncVMARange synchronizes OS metadata for every hardware-handled PTE in
// the VMA (what msync/fsync/munmap do before operating — Section IV-C).
// It returns the number of PTEs synced.
func (k *Kernel) syncVMARange(vma *VMA) int {
	n := 0
	for i := 0; i < vma.Pages; i++ {
		va := vma.Start + pagetable.VAddr(i)*4096
		_, _, pte, ok := vma.proc.AS.Table.Walk(va)
		if !ok {
			continue
		}
		if pte.Get().State() == pagetable.StateResidentUnsynced {
			k.syncPageMetadata(vma.proc, va, pte)
			n++
		}
	}
	return n
}

// Munmap unmaps a VMA. For fast-mmap areas it first waits on the SMU
// barrier for all outstanding page misses over the region (preventing the
// SMU/unmap race of Section IV-C), synchronizes pending OS metadata, then
// tears down PTEs, reverse mappings and the TLB. done fires when the
// region is gone (dirty writeback proceeds in the background).
func (k *Kernel) Munmap(th *Thread, start pagetable.VAddr, done func()) {
	p := th.Proc
	vma := p.findVMA(start)
	if vma == nil || vma.Start != start {
		panic(fmt.Sprintf("kernel: munmap of unmapped region %#x", uint64(start)))
	}
	c := k.cfg.Costs
	teardown := func() {
		synced := k.syncVMARange(vma)
		cost := c.SyscallEntry + c.KptedPerSync*sim.Time(synced)
		freedPages := 0
		for i := 0; i < vma.Pages; i++ {
			va := vma.Start + pagetable.VAddr(i)*4096
			_, _, pte, ok := p.AS.Table.Walk(va)
			if !ok {
				continue
			}
			e := pte.Get()
			if e.Present() {
				k.unmapOne(p, vma, va, pte)
				cost += c.TLBShootdown
				freedPages++
			}
			pte.Set(0)
		}
		vma.dead = true
		k.stats.MunmapPages += uint64(vma.Pages)
		_ = freedPages
		k.kexec(th.HW, cost, done)
	}
	if vma.Fast {
		if s, ok := k.smus[vma.st.key.sid]; ok {
			s.Barrier(k.vmaPTEAddrs(vma), teardown)
			return
		}
	}
	teardown()
}

// unmapOne removes one present mapping: reverse-map surgery, TLB
// shootdown, and — when this was the last mapping — page-cache removal
// with writeback-then-free for dirty pages.
func (k *Kernel) unmapOne(p *Process, vma *VMA, va pagetable.VAddr, pte pagetable.EntryRef) {
	e := pte.Get()
	idx := vma.pageIndex(va)
	pg := k.lookupPage(vma.File, idx)
	k.mmu.TLB().Invalidate(p.AS.ASID, va.PageNumber())
	if pg == nil {
		panic(fmt.Sprintf("kernel: present PTE without page cache entry at %#x", uint64(va)))
	}
	kept := pg.maps[:0]
	for _, m := range pg.maps {
		if !(m.as == p.AS && m.va == va.PageBase()) {
			kept = append(kept, m)
		}
	}
	pg.maps = kept
	if len(pg.maps) > 0 {
		return // still mapped elsewhere; page stays
	}
	delete(k.pageCache, pcKey{pg.file, pg.idx})
	if pg.elem != nil {
		k.lru.Remove(pg.elem)
		pg.elem = nil
	}
	if e.Dirty() && !pg.wb {
		pg.wb = true
		k.stats.Writebacks++
		k.noteCleaned()
		blk, _ := vma.st.fsys.Block(pg.file, pg.idx)
		k.submitIORetry(vma.st, k.kswapdHW, nvme.OpWrite, blk.LBA, pg.frame, nil, func(status uint16) {
			if status != nvme.StatusSuccess {
				k.stats.WritebackErrors++
			}
			pg.wb = false
			if err := k.mem.Free(pg.frame); err != nil {
				panic(err)
			}
		})
		return
	}
	if !pg.wb {
		if err := k.mem.Free(pg.frame); err != nil {
			panic(err)
		}
		return
	}
	// A non-freeing writeback (msync or the flusher) is still in flight:
	// its completion owns the frame now and must release it.
	pg.orphan = true
}

// Msync synchronizes a fast-mmap region: pending OS-metadata updates are
// applied first (the modified msync of Section IV-C), then dirty pages are
// written back; done fires when all writebacks complete.
func (k *Kernel) Msync(th *Thread, start pagetable.VAddr, done func()) {
	p := th.Proc
	vma := p.findVMA(start)
	if vma == nil {
		panic(fmt.Sprintf("kernel: msync of unmapped region %#x", uint64(start)))
	}
	k.stats.Msyncs++
	c := k.cfg.Costs
	sync := func() {
		synced := k.syncVMARange(vma)
		outstanding := 1 // sentinel until submission finishes
		var maybeDone func()
		cost := c.SyscallEntry + c.KptedPerSync*sim.Time(synced)
		for i := 0; i < vma.Pages; i++ {
			va := vma.Start + pagetable.VAddr(i)*4096
			_, _, pte, ok := p.AS.Table.Walk(va)
			if !ok {
				continue
			}
			e := pte.Get()
			if !e.Present() || !e.Dirty() {
				continue
			}
			pg := k.lookupPage(vma.File, vma.pageIndex(va))
			if pg == nil || pg.wb {
				continue
			}
			pte.Set(e.ClearFlags(pagetable.FlagDirty))
			pg.wb = true
			k.stats.Writebacks++
			k.noteCleaned()
			cost += c.WritebackSubmit
			blk, _ := vma.st.fsys.Block(pg.file, pg.idx)
			outstanding++
			k.submitIORetry(vma.st, th.HW, nvme.OpWrite, blk.LBA, pg.frame, nil, func(status uint16) {
				if status != nvme.StatusSuccess {
					k.stats.WritebackErrors++
				}
				pg.wb = false
				if pg.orphan {
					// The region was unmapped while this writeback was in
					// flight; the frame is ours to free.
					pg.orphan = false
					if err := k.mem.Free(pg.frame); err != nil {
						panic(err)
					}
				}
				outstanding--
				maybeDone()
			})
		}
		maybeDone = func() {
			if outstanding == 0 {
				done()
			}
		}
		k.kexec(th.HW, cost, func() {
			outstanding--
			maybeDone()
		})
	}
	if vma.Fast {
		if s, ok := k.smus[vma.st.key.sid]; ok {
			s.Barrier(k.vmaPTEAddrs(vma), sync)
			return
		}
	}
	sync()
}

// WriteRaw appends one block to a file from a pinned kernel buffer — the
// WAL-append path of a storage engine (buffered write: done fires at
// submission; the device write proceeds asynchronously and contends with
// reads). The caller owns pacing; the kernel charges half an I/O
// submission of kernel time.
func (k *Kernel) WriteRaw(th *Thread, sid, devID uint8, f *fs.File, page int, done func()) {
	st, ok := k.storages[storKey{sid, devID}]
	if !ok {
		panic(fmt.Sprintf("kernel: WriteRaw to unknown storage sid%d/dev%d", sid, devID))
	}
	blk, err := st.fsys.Block(f, page)
	if err != nil {
		panic(err)
	}
	if k.walBuffer == mem.NoFrame {
		f, err := k.mem.Alloc()
		if err != nil {
			panic("kernel: no frame for WAL buffer")
		}
		k.walBuffer = f
	}
	k.kexec(th.HW, k.cfg.Costs.IOSubmit/2, func() {
		k.submitIORetry(st, th.HW, nvme.OpWrite, blk.LBA, k.walBuffer, nil, func(status uint16) {
			if status != nvme.StatusSuccess {
				k.stats.WritebackErrors++
			}
		})
		done()
	})
}

// Fsync synchronizes every mapping of a file, then issues a device flush.
func (k *Kernel) Fsync(th *Thread, f *fs.File, done func()) {
	var targets []*VMA
	for _, p := range k.procs {
		for _, v := range p.vmas {
			if !v.dead && v.File == f {
				targets = append(targets, v)
			}
		}
	}
	remaining := len(targets)
	if remaining == 0 {
		k.kexec(th.HW, k.cfg.Costs.SyscallEntry, done)
		return
	}
	for _, v := range targets {
		k.Msync(th, v.Start, func() {
			remaining--
			if remaining == 0 {
				done()
			}
		})
	}
}

// Fork creates a child process. Per Section V (page aliasing), all
// LBA-augmented PTEs of the parent revert to normal PTEs and the involved
// VMAs lose their fast flag in both parent and child; subsequent misses go
// through the OS in both processes. Resident pages are shared through the
// page cache (minor faults), not copied.
func (k *Kernel) Fork(parent *Process) *Process {
	child := k.NewProcess()
	k.stats.Forks++
	for _, v := range parent.vmas {
		if v.dead {
			continue
		}
		if v.Fast {
			for i := 0; i < v.Pages; i++ {
				va := v.Start + pagetable.VAddr(i)*4096
				_, _, pte, ok := parent.AS.Table.Walk(va)
				if !ok {
					continue
				}
				e := pte.Get()
				switch e.State() {
				case pagetable.StateNotPresentLBA:
					pte.Set(pagetable.MakeSwap(0, e.Prot()))
				case pagetable.StateResidentUnsynced:
					k.syncPageMetadata(parent, va, pte)
				}
			}
			v.Fast = false
		}
		cv := &VMA{Start: v.Start, Pages: v.Pages, File: v.File, st: v.st,
			Fast: false, Prot: v.Prot, proc: child}
		child.vmas = append(child.vmas, cv)
		child.nextMap = parent.nextMap
	}
	return child
}

// patchRemappedPTEs is the file-system remap hook: when a marked file's
// block moves (CoW / log-structured update), every non-present
// LBA-augmented PTE mapping that page is rewritten with the new location.
func (k *Kernel) patchRemappedPTEs(st *storage, f *fs.File, page int, nb pagetable.BlockAddr) {
	for _, p := range k.procs {
		for _, v := range p.vmas {
			if v.dead || !v.Fast || v.File != f || page >= v.Pages {
				continue
			}
			va := v.Start + pagetable.VAddr(page)*4096
			_, _, pte, ok := p.AS.Table.Walk(va)
			if !ok {
				continue
			}
			if pte.Get().State() == pagetable.StateNotPresentLBA {
				pte.Set(pagetable.MakeLBA(nb, v.Prot))
				k.stats.RemapPatchedPTE++
			}
		}
	}
}
