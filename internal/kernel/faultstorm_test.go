package kernel

// Chaos tests: deterministic fault storms injected at the device, with
// recovery exercised at every layer above it — SMU retry/backoff/timeout,
// MMU bounce to the OS path, block-layer retry and timeout, SIGBUS
// delivery — while the machine-wide structural invariants keep holding and
// no walk ever hangs.

import (
	"testing"

	"hwdp/internal/fault"
	"hwdp/internal/mmu"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
	"hwdp/internal/smu"
)

func withBlockTimeout(d sim.Time) rigOpt { return func(c *Config) { c.BlockTimeout = d } }

// stormRules is the mixed fault load used by the storm tests: frequent
// retryable blips, occasional lost commands and latency spikes, and a rare
// unrecoverable media error.
func stormRules() []fault.Rule {
	return []fault.Rule{
		{Kind: fault.UECC, Prob: 0.002},
		{Kind: fault.Drop, Prob: 0.004},
		{Kind: fault.Spike, Prob: 0.01, SpikeFactor: 5},
		{Kind: fault.Transient, Prob: 0.05},
	}
}

// checkFrameConservation asserts the SMU never leaked a free page: every
// frame the OS handed it was installed or is still held.
func checkFrameConservation(t *testing.T, r *rig) {
	t.Helper()
	st := r.smu.Stats()
	held := uint64(r.smu.FramesHeld())
	if st.FramesAccepted != st.FramesInstalled+held {
		t.Fatalf("SMU frame leak: accepted %d != installed %d + held %d (recycled %d)",
			st.FramesAccepted, st.FramesInstalled, held, st.FramesRecycled)
	}
}

// stormRun drives a random access mix against a faulty device and returns
// the rig for inspection. Threads killed by SIGBUS are replaced so the
// load keeps running, mirroring a multi-process workload where the kernel
// outlives any one victim.
func stormRun(t *testing.T, scheme Scheme, seed uint64, totalOps int) (*rig, int) {
	t.Helper()
	r := newRig(t, 4<<20, 128, withScheme(scheme),
		kptedEvery(2*sim.Millisecond), withBlockTimeout(2*sim.Millisecond))
	r.dev.SetInjector(fault.NewInjector(sim.NewRand(seed), stormRules()...))
	if scheme == HWDP {
		p := smu.DefaultRetryPolicy()
		p.CmdTimeout = sim.Micro(500)
		r.smu.SetRetryPolicy(p)
	}

	const filePages = 8192 // 32 MiB file on a 4 MiB machine
	fileVA, _ := r.mmapFile(t, "storm", filePages, MmapFlags{Fast: true})
	anonVA := r.mmapAnon(t, 512, true)

	rng := sim.NewRand(seed + 1)
	hwIDs := []int{0, 2}
	threads := []*Thread{r.th, r.k.NewThread(r.p, hwIDs[1])}
	kills := 0
	pending := len(threads)
	ops := 0

	var step func(i int)
	step = func(i int) {
		if threads[i].Killed {
			// SIGBUS took this thread down; a successor reuses its
			// hardware context.
			kills++
			threads[i] = r.k.NewThread(r.p, hwIDs[i])
		}
		if ops >= totalOps {
			pending--
			return
		}
		ops++
		write := rng.Intn(4) == 0
		var va pagetable.VAddr
		switch rng.Intn(8) {
		case 0:
			va = anonVA + pagetable.VAddr(rng.Intn(512))*4096
		case 1:
			if rng.Intn(4) == 0 {
				r.k.Msync(threads[i], fileVA, func() { step(i) })
				return
			}
			fallthrough
		default:
			va = fileVA + pagetable.VAddr(rng.Intn(filePages))*4096
		}
		r.k.Access(threads[i], va, write, func(mmu.Result) { step(i) })
	}
	for i := range threads {
		step(i)
	}
	checked := 0
	// The background daemons rearm forever, so the engine never runs dry;
	// bound the storm by virtual time instead.
	deadline := r.eng.Now() + 30*sim.Second
	for pending > 0 && r.eng.Now() < deadline && r.eng.Step() {
		if ops%400 == 200 && checked < ops/400 {
			checked = ops / 400
			checkInvariants(t, r)
			checkFrameConservation(t, r)
		}
	}
	if pending != 0 {
		t.Fatalf("storm hung with %d drivers outstanding (ops %d/%d)", pending, ops, totalOps)
	}
	return r, kills
}

func TestFaultStormInvariants(t *testing.T) {
	for _, scheme := range []Scheme{OSDP, SWDP, HWDP} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			r, kills := stormRun(t, scheme, 42, 2500)
			checkInvariants(t, r)
			checkFrameConservation(t, r)
			if n := r.smu.Outstanding(); n != 0 {
				t.Fatalf("%d PMSHR slots leaked", n)
			}
			if n := r.dev.Inflight(); n != 0 {
				t.Fatalf("%d device commands still in flight", n)
			}
			st := r.k.Stats()
			ds := r.dev.Stats()
			if ds.InjTransient == 0 || ds.InjDropped == 0 {
				t.Fatalf("storm injected nothing: %+v", ds)
			}
			if st.BlockRetries == 0 {
				t.Fatalf("no block-layer retry ever ran: %+v", st)
			}
			if uint64(kills) != st.SIGBUSKills {
				t.Fatalf("replaced %d threads, kernel killed %d", kills, st.SIGBUSKills)
			}
			if scheme == HWDP {
				ss := r.smu.Stats()
				if ss.Retries == 0 {
					t.Fatalf("SMU never retried under storm: %+v", ss)
				}
			}
		})
	}
}

// TestSMUPathDegradation: a device whose SMU queue fails every command
// must degrade — every walk still completes through the OS fallback path,
// and nothing hangs or leaks. This is the paper's graceful-degradation
// requirement taken to its limit.
func TestSMUPathDegradation(t *testing.T) {
	r := newRig(t, 16<<20, 64, withScheme(HWDP))
	// Queue 1 is the SMU's queue pair in this rig; OS block queues have
	// IDs >= 1000 and stay healthy.
	r.dev.SetInjector(fault.NewInjector(sim.NewRand(7),
		fault.Rule{Kind: fault.Transient, Prob: 1, Queue: 1}))
	va, _ := r.mmapFile(t, "deg", 256, MmapFlags{Fast: true})

	for i := 0; i < 32; i++ {
		out, _ := r.access(t, r.th, va+pagetable.VAddr(i)*4096, false)
		if out != mmu.OutcomeOSFault {
			t.Fatalf("access %d: outcome %v, want degraded OS fault", i, out)
		}
	}
	r.eng.RunUntil(r.eng.Now() + 10*sim.Millisecond) // drain prefetch retries
	st := r.k.Stats()
	ss := r.smu.Stats()
	if st.HWBounceFaults == 0 || r.mmu.Stats().HWBounced == 0 {
		t.Fatalf("walks did not degrade via bounce: kernel %+v, mmu %+v", st, r.mmu.Stats())
	}
	if st.SIGBUSKills != 0 || r.th.Killed {
		t.Fatal("transient-only device must never SIGBUS")
	}
	wantAttempts := uint64(1 + r.smu.Policy().MaxRetries)
	if ss.Retries < wantAttempts-1 {
		t.Fatalf("SMU gave up without spending its retry budget: %+v", ss)
	}
	if ss.FramesRecycled == 0 {
		t.Fatalf("failed SMU walks recycled no frames: %+v", ss)
	}
	checkFrameConservation(t, r)
	if n := r.smu.Outstanding(); n != 0 {
		t.Fatalf("%d PMSHR slots leaked", n)
	}
}

// TestUECCKillsFaultingThread: an unrecoverable media error on the only
// copy of a file page must SIGBUS the faulting thread — after the SMU
// fails the walk to the OS and the OS's own read also fails — and the
// access must terminate with a bad-address result, not hang.
func TestUECCKillsFaultingThread(t *testing.T) {
	r := newRig(t, 16<<20, 64, withScheme(HWDP))
	r.dev.SetInjector(fault.NewInjector(sim.NewRand(7),
		fault.Rule{Kind: fault.UECC, Prob: 1, ReadsOnly: true}))
	va, _ := r.mmapFile(t, "uecc", 16, MmapFlags{Fast: true})

	out, _ := r.access(t, r.th, va, false)
	if out != mmu.OutcomeBadAddr {
		t.Fatalf("outcome = %v, want bad-addr after SIGBUS", out)
	}
	if !r.th.Killed {
		t.Fatal("faulting thread not killed")
	}
	st := r.k.Stats()
	if st.SIGBUSKills != 1 {
		t.Fatalf("SIGBUS kills = %d", st.SIGBUSKills)
	}
	if ss := r.smu.Stats(); ss.UECCFailures == 0 {
		t.Fatalf("SMU did not classify the media error: %+v", ss)
	}
	// The poisoned PTE routes later accesses straight to the OS path; a
	// fresh thread faulting the same page is killed the same way.
	th2 := r.k.NewThread(r.p, 2)
	out, _ = r.access(t, th2, va, false)
	if out != mmu.OutcomeBadAddr || !th2.Killed {
		t.Fatalf("second victim: outcome %v killed %v", out, th2.Killed)
	}
	checkFrameConservation(t, r)
	checkInvariants(t, r)
}

// TestWritebackErrorCounted: a UECC on the write path is absorbed — the
// msync completes, the error is counted, nothing hangs.
func TestWritebackErrorCounted(t *testing.T) {
	r := newRig(t, 16<<20, 64, withScheme(HWDP))
	va, _ := r.mmapFile(t, "wb", 16, MmapFlags{Fast: true})
	if out, _ := r.access(t, r.th, va, true); out != mmu.OutcomeHW {
		t.Fatalf("setup write outcome = %v", out)
	}
	r.dev.SetInjector(fault.NewInjector(sim.NewRand(7),
		fault.Rule{Kind: fault.UECC, Prob: 1, WritesOnly: true}))
	done := false
	r.k.Msync(r.th, va, func() { done = true })
	r.eng.RunUntil(r.eng.Now() + 50*sim.Millisecond)
	if !done {
		t.Fatal("msync hung on writeback error")
	}
	if st := r.k.Stats(); st.WritebackErrors == 0 {
		t.Fatalf("writeback error not counted: %+v", st)
	}
}

// TestBlockLayerTimeoutRecoversDrop: the OS read path recovers a command
// the device silently lost, via its completion timeout and a retry.
func TestBlockLayerTimeoutRecoversDrop(t *testing.T) {
	r := newRig(t, 16<<20, 64, withScheme(OSDP), withBlockTimeout(sim.Micro(200)))
	r.dev.SetInjector(fault.NewInjector(sim.NewRand(7),
		fault.Rule{Kind: fault.Drop, Prob: 1, MaxInjections: 1}))
	va, _ := r.mmapFile(t, "drop", 16, MmapFlags{Fast: true})
	out, _ := r.access(t, r.th, va, false)
	if out != mmu.OutcomeOSFault {
		t.Fatalf("outcome = %v", out)
	}
	st := r.k.Stats()
	if st.BlockTimeouts != 1 || st.BlockRetries != 1 {
		t.Fatalf("timeouts %d retries %d, want 1/1", st.BlockTimeouts, st.BlockRetries)
	}
	if st.SIGBUSKills != 0 {
		t.Fatal("recoverable drop must not kill")
	}
}

// TestFaultStormDeterminism: the same seed gives a bit-identical storm —
// virtual end time and every counter at every layer.
func TestFaultStormDeterminism(t *testing.T) {
	type fingerprint struct {
		now   sim.Time
		k     Stats
		s     smu.Stats
		reads uint64
		inj   [3]uint64
	}
	run := func() fingerprint {
		r, _ := stormRun(t, HWDP, 1234, 1500)
		ds := r.dev.Stats()
		return fingerprint{
			now:   r.eng.Now(),
			k:     r.k.Stats(),
			s:     r.smu.Stats(),
			reads: ds.Reads,
			inj:   [3]uint64{ds.InjTransient, ds.InjDropped, ds.InjSpikes},
		}
	}
	f1 := run()
	f2 := run()
	if f1 != f2 {
		t.Fatalf("nondeterministic storm:\n%+v\n%+v", f1, f2)
	}
}
