// Package kernel models the operating system: processes, VMAs and mmap,
// the page cache with clock-LRU replacement and reverse mappings, the
// OS-based demand-paging fault handler with its full I/O stack (OSDP), the
// software-emulated SMU variant (SWDP, Fig. 17), and the control-plane
// support for hardware demand paging (HWDP): fast-mmap LBA augmentation,
// free-page-queue refill, and the kpted / kpoold background threads
// (Section IV of the paper).
package kernel

import (
	"container/list"
	"fmt"
	"sort"

	"hwdp/internal/cpu"
	"hwdp/internal/fs"
	"hwdp/internal/mem"
	"hwdp/internal/metrics"
	"hwdp/internal/mmu"
	"hwdp/internal/nvme"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
	"hwdp/internal/smu"
	"hwdp/internal/ssd"
	"hwdp/internal/trace"
)

// Scheme selects the demand-paging implementation.
type Scheme int

// Schemes. OSDP is the vanilla kernel; SWDP keeps the exception but runs a
// software-emulated SMU over LBA-augmented PTEs; HWDP is the paper's
// proposal.
const (
	OSDP Scheme = iota
	SWDP
	HWDP
)

// String returns the scheme's display name.
func (s Scheme) String() string {
	switch s {
	case OSDP:
		return "OSDP"
	case SWDP:
		return "SW-only"
	case HWDP:
		return "HWDP"
	}
	return "?"
}

// Config tunes the kernel model.
type Config struct {
	Scheme Scheme
	Costs  Costs

	// KpooldPeriod is the free-page-queue refill period (paper: 4 ms).
	KpooldPeriod sim.Time
	// KptedPeriod is the OS-metadata sync period. The paper uses 1 s on a
	// 32 GiB machine; the default scales it with the smaller simulated
	// memories so that (period / memory-rotation time) is preserved.
	KptedPeriod sim.Time
	// KswapdPeriod is the background reclaim scan period.
	KswapdPeriod sim.Time

	DisableKpoold bool // ablation: no background refill (Section IV-D)
	DisableKpted  bool

	// ShardKpoold splits the kpoold refill sweep into one periodic tick per
	// socket, staggered across the period, instead of one tick refilling
	// every SMU at the same timestamp. Fleet configs enable it so refill
	// work — and the doorbell traffic it triggers on the per-socket device
	// lanes — spreads in time across sockets. Off (the default) keeps the
	// single-sweep behavior byte-identical.
	ShardKpoold bool

	// LowWaterFrac / HighWaterFrac bound background reclaim: kswapd starts
	// evicting below low*frames free and stops at high*frames.
	LowWaterFrac  float64
	HighWaterFrac float64

	// KpooldReserveFrac keeps kpoold from handing the allocator's last
	// frames to the SMU.
	KpooldReserveFrac float64

	// StallTimeout, when non-zero under HWDP, bounds how long a pipeline
	// stall may wait on the SMU: past it, a timeout exception fires and the
	// OS context-switches the thread away until the miss completes
	// (Section V, "Long Latency I/O"). Zero disables the timeout.
	StallTimeout sim.Time

	// BlockRetries bounds how many times the block layer resubmits an I/O
	// that failed with a retryable status (command interrupted, host
	// timeout) before reporting the failure to the caller.
	BlockRetries int
	// BlockRetryDelay is the delay before the first block-layer retry; it
	// doubles on each subsequent attempt.
	BlockRetryDelay sim.Time
	// BlockTimeout, when non-zero, bounds how long the block layer waits for
	// any completion: past it the command is aborted and treated as a
	// retryable failure. This is what recovers commands lost inside a
	// faulty device (no completion ever arrives).
	BlockTimeout sim.Time

	// DirtyRatioFrac, when non-zero, is the hard dirty-page limit as a
	// fraction of physical frames: a thread writing past it is throttled
	// in ThrottleBackoff slices until the flusher catches up (the
	// balance_dirty_pages model). Zero (the default) disables dirty
	// accounting and throttling entirely.
	DirtyRatioFrac float64
	// DirtyBackgroundFrac starts background writeback once the dirty-page
	// count exceeds this fraction of frames. Zero with DirtyRatioFrac set
	// defaults to half the hard limit.
	DirtyBackgroundFrac float64
	// ThrottleBackoff is one throttle sleep slice (0 = 100 µs).
	ThrottleBackoff sim.Time
	// OOMStallLimit, when non-zero, bounds how long an allocation may
	// stall in the reclaim-retry loop before the OOM killer selects and
	// kills the process with the largest resident set. Zero (the default)
	// keeps the pre-existing behavior: exhausted allocations retry until
	// writeback completions free memory.
	OOMStallLimit sim.Time

	// DoorbellWire is the host-to-device latency of an OS submission-queue
	// doorbell write (MMIO post over PCIe), charged per delivered command
	// on the evented transport. It also lower-bounds the home lane's
	// cross-lane sends in parallel runs.
	DoorbellWire sim.Time
	// IRQWire is the device-to-host latency from CQ write to the interrupt
	// handler starting (MSI-X delivery; the handler's own cost is
	// Costs.InterruptDelivery, charged separately on the CPU).
	IRQWire sim.Time
}

// DefaultConfig returns the configuration used by the evaluation.
func DefaultConfig(scheme Scheme) Config {
	return Config{
		Scheme:            scheme,
		Costs:             DefaultCosts(),
		KpooldPeriod:      4 * sim.Millisecond,
		KptedPeriod:       40 * sim.Millisecond,
		KswapdPeriod:      1 * sim.Millisecond,
		LowWaterFrac:      0.06,
		HighWaterFrac:     0.12,
		KpooldReserveFrac: 0.03,
		BlockRetries:      3,
		BlockRetryDelay:   sim.Micro(20),
		BlockTimeout:      10 * sim.Millisecond,
		DoorbellWire:      sim.Nano(1.6),
		IRQWire:           sim.Nano(100),
	}
}

// Stats are kernel-level event counters.
type Stats struct {
	MajorFaults     uint64 // OSDP faults with device I/O
	MinorFaults     uint64 // page-cache hits
	SWFaults        uint64 // SWDP software-SMU faults
	HWBounceFaults  uint64 // HWDP misses bounced for lack of free pages
	Evictions       uint64
	Writebacks      uint64
	DirectReclaims  uint64
	KptedRuns       uint64
	KptedSyncs      uint64
	KptedPTEsSeen   uint64
	KpooldFrames    uint64
	FaultRefills    uint64 // free-queue refills done on the fault path
	StallTimeouts   uint64 // HWDP stalls converted to context switches
	MmapPages       uint64
	MunmapPages     uint64
	Forks           uint64
	Msyncs          uint64
	RemapPatchedPTE uint64

	// Error-recovery counters.
	BlockRetries    uint64 // block-layer resubmissions of failed commands
	BlockTimeouts   uint64 // commands the block layer aborted after no completion
	SIGBUSKills     uint64 // threads killed: fault I/O unrecoverable (UECC)
	WritebackErrors uint64 // writebacks abandoned after exhausting retries

	// Pressure counters (memory oversubscription).
	AllocStalls     uint64 // allocations that entered the reclaim-retry loop
	ThrottledWrites uint64 // writes stalled at the dirty-ratio limit
	FlusherRuns     uint64 // background writeback sweeps
	FlusherPages    uint64 // pages cleaned by background writeback
	OOMKills        uint64 // processes killed by the OOM killer
	OOMReapedPages  uint64 // resident pages reclaimed from OOM victims
	SQFullWaits     uint64 // OS commands parked on a full submission queue
}

type storKey struct{ sid, dev uint8 }

type osQueue struct {
	qp      *nvme.QueuePair
	st      *storage
	nextCID uint16
	pending map[uint16]*osPending
	// waitlist holds commands that found the submission queue full (I/O
	// storm): instead of overflowing, they park here and the completion
	// interrupt resubmits them as slots free up.
	waitlist []sqWait
}

// sqWait is one parked command plus the time it started waiting.
type sqWait struct {
	cmd nvme.Command
	at  sim.Time
}

// osPending tracks one in-flight OS command: the completion callback and
// the block-layer timeout armed for it.
type osPending struct {
	done    func(status uint16)
	timeout *sim.Event
}

type storage struct {
	key  storKey
	dev  *ssd.Device
	fsys *fs.FS
	// One OS-managed queue pair per hardware thread, NVMe-style.
	qps    map[int]*osQueue
	nextQP uint16
}

// Process is one address space plus its VMAs.
type Process struct {
	k         *Kernel
	AS        *mmu.AddressSpace
	vmas      []*VMA
	threads   []*Thread
	nextMap   pagetable.VAddr
	oomKilled bool
}

// OOMKilled reports whether the OOM killer terminated this process.
func (p *Process) OOMKilled() bool { return p.oomKilled }

// VMA is one mapped region of a file (or of anonymous memory, in which
// case File is a hidden swap-backing file).
type VMA struct {
	Start pagetable.VAddr
	Pages int
	File  *fs.File
	st    *storage
	Fast  bool // mapped with the fast-mmap flag (LBA augmentation)
	Anon  bool // anonymous memory (File is the swap backing)
	Prot  pagetable.Prot
	proc  *Process
	dead  bool
	// swapped records anonymous pages whose current content lives in the
	// swap backing (they were written and later evicted); other anonymous
	// pages refault as zero-fills without I/O.
	swapped map[int]bool
}

// End returns the first address past the VMA.
func (v *VMA) End() pagetable.VAddr {
	return v.Start + pagetable.VAddr(v.Pages)*mem.PageSize
}

func (v *VMA) contains(va pagetable.VAddr) bool { return va >= v.Start && va < v.End() }

func (v *VMA) pageIndex(va pagetable.VAddr) int {
	return int((va.PageBase() - v.Start) / mem.PageSize)
}

// Thread is a schedulable software thread pinned to one hardware thread
// (the evaluation pins workload threads to logical cores).
type Thread struct {
	ID   int
	HW   *cpu.HWThread
	Proc *Process
	// Tenant is the fleet tenant the thread serves (0 on the default
	// single-tenant machine). It rides the access context into the MMU and
	// SMU for per-tenant accounting and QoS admission.
	Tenant int
	// Killed marks a thread terminated by the SIGBUS model: the I/O backing
	// one of its page faults failed unrecoverably. The simulation keeps the
	// Thread object (accounting), but workloads should stop driving it.
	Killed   bool
	stallEnd func()
}

// CoreID implements mmu.CoreCarrier: the logical core the thread is pinned
// to (selects the per-core free page queue when the SMU runs them).
func (t *Thread) CoreID() int { return t.HW.ID }

// TenantID implements mmu.TenantCarrier: the fleet tenant charged for the
// thread's page misses.
func (t *Thread) TenantID() int { return t.Tenant }

func (t *Thread) beginStall(k *Kernel) { t.stallEnd = k.cpu.BeginStall(t.HW) }

func (t *Thread) endStall() {
	if t.stallEnd != nil {
		t.stallEnd()
		t.stallEnd = nil
	}
}

// mapping is one (address space, va) that maps a page (reverse map record).
type mapping struct {
	as  *mmu.AddressSpace
	va  pagetable.VAddr
	pte pagetable.EntryRef
	vma *VMA
}

// Page is the kernel's struct page: a resident file page.
type Page struct {
	frame mem.FrameID
	file  *fs.File
	idx   int
	st    *storage
	maps  []mapping
	elem  *list.Element // LRU position, nil while not on the LRU
	wb    bool          // under writeback
	// orphan marks a page whose last mapping was torn down while a
	// non-freeing writeback (msync/flusher) was in flight: the writeback
	// completion must free the frame, or it leaks.
	orphan bool
}

type pcKey struct {
	file *fs.File
	idx  int
}

// Kernel is the OS model for one machine.
type Kernel struct {
	eng *sim.Engine
	cpu *cpu.CPU
	mem *mem.Memory
	mmu *mmu.MMU
	cfg Config

	storages map[storKey]*storage
	smus     map[uint8]*smu.SMU
	// smuList mirrors smus sorted by SID: refill sweeps must visit SMUs in
	// a deterministic order (map iteration would allocate frames in random
	// order and break bit-reproducibility).
	smuList []*smu.SMU

	procs    []*Process
	byASID   map[uint32]*Process
	nextASID uint32

	// anonCount names anonymous backings uniquely. It is per-Kernel, not
	// package-level: independent Systems must stay isolated so sweeps can
	// run them concurrently without shared state.
	anonCount int

	pageCache map[pcKey]*Page
	lru       *list.List

	// Software-emulated PMSHR for the SW-only scheme.
	swPMSHR map[pagetable.EntryAddr][]func()

	// In-flight major faults by file page (page-lock serialization).
	faultInflight map[pcKey][]func()

	kptedHW, kpooldHW, kswapdHW *cpu.HWThread

	// walBuffer is a pinned frame used as the DMA source for WriteRaw.
	walBuffer mem.FrameID

	reclaiming bool
	stats      Stats
	started    bool
	tracer     *trace.Tracer

	// Pressure state. psi is the optional pressure-stall recorder
	// (recording-only: it never schedules events, so attaching it cannot
	// perturb event ordering). The dirty counters are armed only when
	// Config.DirtyRatioFrac is set; dirtyPages is approximate, Linux-style
	// (clean→dirty PTE transitions minus writeback submissions, clamped
	// at zero).
	psi            *metrics.PSI
	dirtyPages     int
	dirtyBgLimit   int // frames; 0 = dirty accounting off
	dirtyHardLimit int
	flushing       bool

	// Pooled retry records for kexec's busy-wait poll: a core can stay
	// busy across many 150ns polls, so the retry must not allocate a
	// closure per attempt.
	kexecFn   func(any)
	kexecPool []*kexecReq

	// Pooled carriers for the allocation reclaim-retry loop and the
	// dirty-throttle loop (both can poll many times under pressure).
	allocFn      func(any)
	allocPool    []*allocReq
	throttleFn   func(any)
	throttlePool []*throttleReq
}

// New wires a kernel over the machine components. Background threads run on
// the provided hardware threads (the paper's kernel threads are ordinary
// schedulable threads; the evaluation machine has spare logical cores).
func New(eng *sim.Engine, c *cpu.CPU, m *mem.Memory, mm *mmu.MMU, cfg Config,
	kptedHW, kpooldHW, kswapdHW *cpu.HWThread) *Kernel {
	k := &Kernel{
		eng:           eng,
		cpu:           c,
		mem:           m,
		mmu:           mm,
		cfg:           cfg,
		storages:      make(map[storKey]*storage),
		smus:          make(map[uint8]*smu.SMU),
		byASID:        make(map[uint32]*Process),
		pageCache:     make(map[pcKey]*Page),
		lru:           list.New(),
		swPMSHR:       make(map[pagetable.EntryAddr][]func()),
		faultInflight: make(map[pcKey][]func()),
		kptedHW:       kptedHW,
		kpooldHW:      kpooldHW,
		kswapdHW:      kswapdHW,
		walBuffer:     mem.NoFrame,
	}
	mm.SetOSFaultHandler(k.handleFault)
	mm.DispatchHW = cfg.Scheme == HWDP
	k.kexecFn = k.runKexec
	k.allocFn = k.runAllocRetry
	k.throttleFn = k.runThrottle
	if cfg.DirtyRatioFrac > 0 {
		k.dirtyHardLimit = int(float64(m.Frames()) * cfg.DirtyRatioFrac)
		if k.dirtyHardLimit < 1 {
			k.dirtyHardLimit = 1
		}
		bg := cfg.DirtyBackgroundFrac
		if bg <= 0 {
			bg = cfg.DirtyRatioFrac / 2
		}
		k.dirtyBgLimit = int(float64(m.Frames()) * bg)
		if k.dirtyBgLimit < 1 {
			k.dirtyBgLimit = 1
		}
		// Dirty accounting is armed only when throttling is configured, so
		// default runs take no hook call on the write path.
		mm.OnDirty = k.noteDirtied
	}
	return k
}

// SetTracer attaches the observability tracer (nil disables tracing; that
// is the default). The kernel uses it to snapshot the flight recorder on
// SIGBUS kills; span recording goes through the per-miss contexts.
func (k *Kernel) SetTracer(t *trace.Tracer) { k.tracer = t }

// SetPSI attaches a pressure-stall recorder (nil, the default, disables
// it). Recording is passive — it never schedules events — so attaching
// it cannot change simulation outcomes.
func (k *Kernel) SetPSI(p *metrics.PSI) { k.psi = p }

// Processes returns the live process list in creation order.
func (k *Kernel) Processes() []*Process { return k.procs }

// PageCacheLen returns the number of resident pages in the page cache.
func (k *Kernel) PageCacheLen() int { return len(k.pageCache) }

// AccountedFrames counts the distinct physical frames the kernel can
// name: page-cache pages (via the LRU, which holds every cached page),
// present PTEs of every process (covers hardware-installed pages not yet
// synced into the cache), and the pinned WAL buffer. The leak audit
// compares it against the allocator's outstanding count once in-flight
// I/O has drained.
func (k *Kernel) AccountedFrames() int {
	seen := make(map[mem.FrameID]bool)
	for e := k.lru.Front(); e != nil; e = e.Next() {
		seen[e.Value.(*Page).frame] = true
	}
	for _, p := range k.procs {
		p.AS.Table.ScanAll(func(_ pagetable.VAddr, pte pagetable.EntryRef) {
			if ent := pte.Get(); ent.Present() {
				seen[ent.PFN()] = true
			}
		})
	}
	n := len(seen)
	if k.walBuffer != mem.NoFrame {
		n++
	}
	return n
}

// DirtyPages returns the approximate dirty-page count. It is zero unless
// Config.DirtyRatioFrac armed dirty accounting.
func (k *Kernel) DirtyPages() int { return k.dirtyPages }

// Stats returns a copy of the counters.
func (k *Kernel) Stats() Stats { return k.stats }

// Config returns the kernel configuration.
func (k *Kernel) Config() Config { return k.cfg }

// Memory exposes the physical memory (examples and the harness inspect it).
func (k *Kernel) Memory() *mem.Memory { return k.mem }

// AttachStorage registers a device + file system at <sid, devID> and hooks
// the file system's block-remap notifications so LBA-augmented PTEs of
// marked files stay correct.
func (k *Kernel) AttachStorage(sid, devID uint8, dev *ssd.Device, fsys *fs.FS) {
	key := storKey{sid, devID}
	if _, dup := k.storages[key]; dup {
		panic(fmt.Sprintf("kernel: storage %v attached twice", key))
	}
	st := &storage{key: key, dev: dev, fsys: fsys, qps: make(map[int]*osQueue), nextQP: 1000}
	k.storages[key] = st
	fsys.OnRemap(func(f *fs.File, page int, nb pagetable.BlockAddr) {
		k.patchRemappedPTEs(st, f, page, nb)
	})
}

// AttachSMU registers the SMU for a socket (HWDP control plane: refills and
// barriers).
func (k *Kernel) AttachSMU(s *smu.SMU) {
	if _, dup := k.smus[s.SID]; dup {
		panic(fmt.Sprintf("kernel: SMU %d attached twice", s.SID))
	}
	k.smus[s.SID] = s
	k.smuList = append(k.smuList, s)
	sort.Slice(k.smuList, func(i, j int) bool { return k.smuList[i].SID < k.smuList[j].SID })
}

// Start primes the free page queues and launches the background threads.
// Call once, after attaching storage and SMUs.
func (k *Kernel) Start() {
	if k.started {
		panic("kernel: Start called twice")
	}
	k.started = true
	if k.cfg.Scheme == HWDP {
		for _, s := range k.smuList {
			k.refillSMU(s)
		}
		switch {
		case k.cfg.DisableKpoold:
		case k.cfg.ShardKpoold:
			// One refill tick per socket, staggered across the period so the
			// sweeps don't land on a single timestamp. Each ticker binds its
			// callback once; rescheduling reposts the stored func.
			for i, s := range k.smuList {
				t := &smuTicker{k: k, s: s}
				t.tick = t.run
				off := k.cfg.KpooldPeriod * sim.Time(i) / sim.Time(len(k.smuList))
				k.eng.Post(k.cfg.KpooldPeriod+off, t.tick)
			}
		default:
			k.eng.Post(k.cfg.KpooldPeriod, k.kpooldTick)
		}
	}
	if (k.cfg.Scheme == HWDP || k.cfg.Scheme == SWDP) && !k.cfg.DisableKpted {
		k.eng.Post(k.cfg.KptedPeriod, k.kptedTick)
	}
	k.eng.Post(k.cfg.KswapdPeriod, k.kswapdTick)
}

// NewProcess creates a process with an empty address space.
func (k *Kernel) NewProcess() *Process {
	k.nextASID++
	p := &Process{
		k:       k,
		AS:      &mmu.AddressSpace{ASID: k.nextASID, Table: pagetable.New()},
		nextMap: 0x1000_0000_0000,
	}
	k.procs = append(k.procs, p)
	k.byASID[p.AS.ASID] = p
	return p
}

// NewThread pins a software thread to hardware thread hwID.
func (k *Kernel) NewThread(p *Process, hwID int) *Thread {
	th := &Thread{ID: hwID, HW: k.cpu.Thread(hwID), Proc: p}
	p.threads = append(p.threads, th)
	return th
}

func (p *Process) findVMA(va pagetable.VAddr) *VMA {
	for _, v := range p.vmas {
		if !v.dead && v.contains(va) {
			return v
		}
	}
	return nil
}

// kexec runs kernel work of duration d on hw, waiting for the hardware
// thread to become idle first (an interrupt arriving while the core still
// runs the context-switch-out path is delayed, as on real hardware where it
// is serviced at the next instruction boundary of the critical section).
func (k *Kernel) kexec(hw *cpu.HWThread, d sim.Time, fn func()) {
	if hw.State() != cpu.Idle {
		r := k.getKexecReq()
		r.hw, r.d, r.fn = hw, d, fn
		k.eng.PostArg(sim.Nano(150), k.kexecFn, r)
		return
	}
	k.cpu.KernelExec(hw, d, fn)
}

// kexecReq carries the arguments of a delayed kexec retry through the
// event queue without a per-poll closure.
type kexecReq struct {
	hw *cpu.HWThread
	d  sim.Time
	fn func()
}

//hwdp:pool acquire kexecreq
func (k *Kernel) getKexecReq() *kexecReq {
	if n := len(k.kexecPool); n > 0 {
		r := k.kexecPool[n-1]
		k.kexecPool[n-1] = nil
		k.kexecPool = k.kexecPool[:n-1]
		return r
	}
	return &kexecReq{}
}

//hwdp:pool release kexecreq
func (k *Kernel) putKexecReq(r *kexecReq) {
	*r = kexecReq{}
	k.kexecPool = append(k.kexecPool, r)
}

// runKexec is the pre-bound PostArg callback for kexec retries.
func (k *Kernel) runKexec(a any) {
	r := a.(*kexecReq)
	hw, d, fn := r.hw, r.d, r.fn
	k.putKexecReq(r)
	k.kexec(hw, d, fn)
}

// kspan is kexec plus span recording: when the miss is traced, the kernel
// phase is charged from now until fn actually runs — which includes any
// wait for the hardware thread, the real critical-path cost. With tracing
// off (ms == nil) it is exactly kexec: no extra closure, no allocation.
func (k *Kernel) kspan(ms *trace.Miss, name string, hw *cpu.HWThread, d sim.Time, fn func()) {
	if ms == nil {
		k.kexec(hw, d, fn)
		return
	}
	start := k.eng.Now()
	k.kexec(hw, d, func() {
		ms.AddSpan(trace.LayerKernel, name, start, k.eng.Now())
		fn()
	})
}

// osQueueFor returns (lazily creating) the per-hardware-thread OS queue
// pair on a storage device.
func (k *Kernel) osQueueFor(st *storage, hw *cpu.HWThread) *osQueue {
	q, ok := st.qps[hw.ID]
	if !ok {
		qp := nvme.NewQueuePair(st.nextQP, 256)
		st.nextQP++
		q = &osQueue{qp: qp, st: st, pending: make(map[uint16]*osPending)}
		st.qps[hw.ID] = q
		// Evented transport: completions cross back over the IRQ wire and
		// the interrupt handler runs kernel-side — on the home lane in
		// parallel runs.
		st.dev.AttachLane(qp, k.eng, k.cfg.IRQWire, func(cp nvme.Completion) { k.osInterrupt(q, cp) })
	}
	return q
}

// osInterrupt is the device interrupt path for OS-managed queues. The
// per-command callback decides what handling to charge where. Completions
// for commands the block layer already timed out (the pending entry is
// gone) are stale and dropped.
func (k *Kernel) osInterrupt(q *osQueue, _ nvme.Completion) {
	for {
		cp, ok := q.qp.PollCQ()
		if !ok {
			break
		}
		q.qp.ConsumeCQ()
		p := q.pending[cp.CID]
		delete(q.pending, cp.CID)
		if p != nil {
			p.timeout.Cancel()
			p.done(cp.Status)
		}
	}
	k.drainParked(q)
}

// drainParked resubmits commands parked on a full submission queue, in
// arrival order, until the queue fills again or the waitlist empties.
func (k *Kernel) drainParked(q *osQueue) {
	for len(q.waitlist) > 0 {
		w := q.waitlist[0]
		if err := q.qp.Submit(w.cmd); err != nil {
			return
		}
		copy(q.waitlist, q.waitlist[1:])
		q.waitlist[len(q.waitlist)-1] = sqWait{}
		q.waitlist = q.waitlist[:len(q.waitlist)-1]
		now := k.eng.Now()
		k.psi.EndStall(metrics.StallSQFull, int64(now), int64(now-w.at))
		k.ringOS(q)
	}
}

// ringOS pops everything the host just submitted on an OS queue and puts it
// on the doorbell wire — the evented replacement for RingSQDoorbell, with
// the rings staying wholly host-owned.
func (k *Kernel) ringOS(q *osQueue) {
	for {
		cmd, ok := q.qp.PopSQ()
		if !ok {
			return
		}
		q.st.dev.Deliver(q.qp.ID, cmd, k.cfg.DoorbellWire)
	}
}

// dropParked removes a parked command (its block-layer timeout fired
// before a submission slot opened) so it is never submitted against a
// frame the caller may have released.
func (k *Kernel) dropParked(q *osQueue, cid uint16) {
	for i, w := range q.waitlist {
		if w.cmd.CID != cid {
			continue
		}
		now := k.eng.Now()
		k.psi.EndStall(metrics.StallSQFull, int64(now), int64(now-w.at))
		q.waitlist = append(q.waitlist[:i], q.waitlist[i+1:]...)
		return
	}
}

// submitIO issues a read or write on the caller's OS queue pair. done runs
// at completion-interrupt time with the completion status (callers charge
// completion costs). When Config.BlockTimeout is set and no completion
// arrives in time, the command is aborted and done receives the
// host-synthesized StatusHostTimeout.
func (k *Kernel) submitIO(st *storage, hw *cpu.HWThread, op nvme.Opcode, lba uint64,
	frame mem.FrameID, ms *trace.Miss, done func(status uint16)) {
	q := k.osQueueFor(st, hw)
	cid := q.nextCID
	q.nextCID++
	p := &osPending{done: done}
	q.pending[cid] = p
	if k.cfg.BlockTimeout > 0 {
		// The watchdog needs the cancelable handle (canceled on normal
		// completion), and arming is gated on the fault-injection
		// BlockTimeout knob — off on the steady-state path.
		//hwdp:ignore eventcapture cancelable watchdog, armed only when the fault-injection BlockTimeout knob is set
		p.timeout = k.eng.After(k.cfg.BlockTimeout, func() {
			if q.pending[cid] != p {
				return
			}
			delete(q.pending, cid)
			k.dropParked(q, cid)
			st.dev.Abort(q.qp.ID, cid)
			k.stats.BlockTimeouts++
			ms.Mark(trace.LayerKernel, "block-timeout", k.eng.Now())
			done(nvme.StatusHostTimeout)
		})
	}
	cmd := nvme.Command{
		Opcode: op,
		CID:    cid,
		NSID:   st.fsys.NSID(),
		PRP1:   uint64(frame) * mem.PageSize,
		SLBA:   lba,
		Trace:  ms,
	}
	if err := q.qp.Submit(cmd); err != nil {
		// Submission queue full (I/O storm): park the command instead of
		// overflowing. The completion interrupt drains the waitlist as
		// slots free; the block-layer timeout still bounds the total wait.
		k.stats.SQFullWaits++
		now := k.eng.Now()
		k.psi.BeginStall(metrics.StallSQFull, int64(now))
		q.waitlist = append(q.waitlist, sqWait{cmd: cmd, at: now})
		return
	}
	k.ringOS(q)
}

// submitIORetry issues an I/O through submitIO and resubmits on retryable
// failures (transient media errors, timeouts) with a doubling delay, up to
// Config.BlockRetries resubmissions. done receives the final status —
// retries are invisible to the caller except as latency.
func (k *Kernel) submitIORetry(st *storage, hw *cpu.HWThread, op nvme.Opcode, lba uint64,
	frame mem.FrameID, ms *trace.Miss, done func(status uint16)) {
	attempt := 1
	var try func()
	try = func() {
		k.submitIO(st, hw, op, lba, frame, ms, func(status uint16) {
			if status == nvme.StatusSuccess || !nvme.StatusRetryable(status) ||
				attempt > k.cfg.BlockRetries {
				done(status)
				return
			}
			k.stats.BlockRetries++
			delay := k.cfg.BlockRetryDelay << (attempt - 1)
			attempt++
			now := k.eng.Now()
			ms.AddSpan(trace.LayerKernel, "block-retry-backoff", now, now+delay)
			k.eng.Post(delay, try)
		})
	}
	try()
}

func (k *Kernel) storageFor(b pagetable.BlockAddr) *storage {
	st, ok := k.storages[storKey{b.SID, b.DeviceID}]
	if !ok {
		panic(fmt.Sprintf("kernel: no storage for %v", b))
	}
	return st
}
