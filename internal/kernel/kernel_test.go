package kernel

import (
	"bytes"
	"testing"

	"hwdp/internal/cpu"
	"hwdp/internal/fs"
	"hwdp/internal/mem"
	"hwdp/internal/mmu"
	"hwdp/internal/nvme"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
	"hwdp/internal/smu"
	"hwdp/internal/ssd"
)

// rig assembles a full machine for kernel tests: 4 physical cores (threads
// 0-3 for workloads, 5=kpted, 6=kpoold, 7=kswapd), one Z-SSD without
// jitter, one file system.
type rig struct {
	eng  *sim.Engine
	cpu  *cpu.CPU
	mem  *mem.Memory
	mmu  *mmu.MMU
	smu  *smu.SMU
	dev  *ssd.Device
	fsys *fs.FS
	k    *Kernel
	p    *Process
	th   *Thread
}

type rigOpt func(*Config)

func withScheme(s Scheme) rigOpt   { return func(c *Config) { c.Scheme = s } }
func noKpoold() rigOpt             { return func(c *Config) { c.DisableKpoold = true } }
func kptedEvery(d sim.Time) rigOpt { return func(c *Config) { c.KptedPeriod = d } }

func newRig(t *testing.T, memBytes uint64, freeQDepth int, opts ...rigOpt) *rig {
	prof := ssd.ZSSD
	prof.JitterFrac = 0
	return newRigProf(t, memBytes, freeQDepth, prof, opts...)
}

func newRigProf(t *testing.T, memBytes uint64, freeQDepth int, prof ssd.Profile, opts ...rigOpt) *rig {
	t.Helper()
	eng := sim.NewEngine()
	c := cpu.New(eng, 4, cpu.DefaultParams())
	memory := mem.New(memBytes)
	fsys := fs.New(0, 0, 1, 1<<22)
	dev := ssd.New(eng, prof, sim.NewRand(3), func(cmd nvme.Command) {
		frame := mem.FrameID(cmd.PRP1 / mem.PageSize)
		switch cmd.Opcode {
		case nvme.OpRead:
			if err := memory.Fill(frame, func(buf []byte) {
				_ = fsys.ReadBlock(cmd.SLBA, buf)
			}); err != nil {
				panic(err)
			}
		case nvme.OpWrite:
			data, err := memory.Data(frame)
			if err != nil {
				panic(err)
			}
			_ = fsys.WriteBlock(cmd.SLBA, data)
		}
	})
	dev.AddNamespace(nvme.Namespace{ID: 1, Blocks: 1 << 22})
	mm := mmu.New(eng)
	s := smu.New(eng, 0, freeQDepth)
	sqp := nvme.NewQueuePair(1, 2*smu.PMSHREntries)
	s.AttachDevice(0, dev, sqp, 1)
	mm.AttachSMU(s)

	cfg := DefaultConfig(HWDP)
	for _, o := range opts {
		o(&cfg)
	}
	k := New(eng, c, memory, mm, cfg, c.Thread(5), c.Thread(6), c.Thread(7))
	k.AttachStorage(0, 0, dev, fsys)
	k.AttachSMU(s)
	k.Start()
	p := k.NewProcess()
	return &rig{eng: eng, cpu: c, mem: memory, mmu: mm, smu: s, dev: dev,
		fsys: fsys, k: k, p: p, th: k.NewThread(p, 0)}
}

func (r *rig) mmapFile(t *testing.T, name string, pages int, flags MmapFlags) (pagetable.VAddr, *fs.File) {
	t.Helper()
	f, err := r.fsys.Create(name, pages, fs.SeededInit(77))
	if err != nil {
		t.Fatal(err)
	}
	va, err := r.k.Mmap(r.p, 0, 0, f, pagetable.Prot{Write: true, User: true}, flags)
	if err != nil {
		t.Fatal(err)
	}
	return va, f
}

// access runs a single synchronous access and returns outcome + elapsed.
func (r *rig) access(t *testing.T, th *Thread, va pagetable.VAddr, write bool) (mmu.Outcome, sim.Time) {
	t.Helper()
	start := r.eng.Now()
	var out mmu.Outcome = -1
	var end sim.Time
	r.k.Access(th, va, write, func(res mmu.Result) { out, end = res.Outcome, r.eng.Now() })
	for out == -1 && r.eng.Step() {
	}
	if out == -1 {
		t.Fatal("access never completed")
	}
	return out, end - start
}

func TestOSDPMajorFault(t *testing.T) {
	r := newRig(t, 64<<20, 512, withScheme(OSDP))
	va, _ := r.mmapFile(t, "f", 64, MmapFlags{})
	out, lat := r.access(t, r.th, va, false)
	if out != mmu.OutcomeOSFault {
		t.Fatalf("outcome = %v", out)
	}
	// Expected: walk + before-device + device + after-device + re-walk.
	c := r.k.Config().Costs
	want := r.mmu.WalkLatency + c.OSDPBeforeDevice() + ssd.ZSSD.Read4K +
		c.OSDPAfterDevice() + r.mmu.WalkLatency
	if lat < want-sim.Micro(0.5) || lat > want+sim.Micro(1.5) {
		t.Fatalf("latency = %v, want ~%v", lat, want)
	}
	if st := r.k.Stats(); st.MajorFaults != 1 || st.MinorFaults != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Fault handling polluted the thread's microarchitectural state.
	if r.th.HW.Warmth() >= 0.5 {
		t.Fatalf("warmth = %f after kernel fault path", r.th.HW.Warmth())
	}
	// Context switched out and back in.
	if r.th.HW.ContextSwaps != 2 {
		t.Fatalf("context switches = %d", r.th.HW.ContextSwaps)
	}
	// Second access: TLB hit.
	out, lat = r.access(t, r.th, va+8, false)
	if out != mmu.OutcomeTLBHit || lat != 0 {
		t.Fatalf("second access: %v %v", out, lat)
	}
}

func TestHWDPFaultLatency(t *testing.T) {
	r := newRig(t, 64<<20, 512, withScheme(HWDP))
	va, _ := r.mmapFile(t, "f", 64, MmapFlags{Fast: true})
	// PTEs are LBA-augmented at mmap time.
	e, ok := r.p.AS.Table.Lookup(va)
	if !ok || e.State() != pagetable.StateNotPresentLBA {
		t.Fatalf("pte after fast mmap: %v %v", e.State(), ok)
	}
	out, lat := r.access(t, r.th, va, false)
	if out != mmu.OutcomeHW {
		t.Fatalf("outcome = %v", out)
	}
	want := r.mmu.WalkLatency + r.smu.Timing().BeforeDevice() + ssd.ZSSD.Read4K +
		r.smu.Timing().AfterDevice()
	if lat != want {
		t.Fatalf("latency = %v, want %v", lat, want)
	}
	// No kernel instructions on the app thread; no context switch; full
	// stall time instead.
	if r.th.HW.KernelInstr != 0 || r.th.HW.ContextSwaps != 0 {
		t.Fatalf("kernel involvement: instr=%d swaps=%d", r.th.HW.KernelInstr, r.th.HW.ContextSwaps)
	}
	if r.th.HW.StallTime != lat {
		t.Fatalf("stall time = %v, want %v", r.th.HW.StallTime, lat)
	}
	if r.th.HW.Warmth() != 0.5 {
		t.Fatalf("hardware handling polluted warmth: %f", r.th.HW.Warmth())
	}
}

func TestHWDPvsOSDPLatencyReduction(t *testing.T) {
	// The headline claim: ~37% lower demand-paging latency (Fig. 12 at one
	// thread, device-time dominated regime gives ~43% on the raw fault).
	rOS := newRig(t, 64<<20, 512, withScheme(OSDP))
	vaOS, _ := rOS.mmapFile(t, "f", 64, MmapFlags{})
	_, latOS := rOS.access(t, rOS.th, vaOS, false)

	rHW := newRig(t, 64<<20, 512, withScheme(HWDP))
	vaHW, _ := rHW.mmapFile(t, "f", 64, MmapFlags{Fast: true})
	_, latHW := rHW.access(t, rHW.th, vaHW, false)

	red := 1 - float64(latHW)/float64(latOS)
	if red < 0.35 || red > 0.50 {
		t.Fatalf("latency reduction = %.1f%% (OSDP %v, HWDP %v)", red*100, latOS, latHW)
	}
}

func TestSWDPFault(t *testing.T) {
	r := newRig(t, 64<<20, 512, withScheme(SWDP))
	va, _ := r.mmapFile(t, "f", 64, MmapFlags{Fast: true})
	out, lat := r.access(t, r.th, va, false)
	if out != mmu.OutcomeOSFault {
		t.Fatalf("outcome = %v", out)
	}
	c := r.k.Config().Costs
	want := r.mmu.WalkLatency + c.SWOverhead() + ssd.ZSSD.Read4K + r.mmu.WalkLatency
	if lat < want-sim.Micro(0.5) || lat > want+sim.Micro(1.0) {
		t.Fatalf("latency = %v, want ~%v", lat, want)
	}
	if st := r.k.Stats(); st.SWFaults != 1 || st.MajorFaults != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The PTE is left unsynced for kpted, like HWDP.
	e, _ := r.p.AS.Table.Lookup(va)
	if e.State() != pagetable.StateResidentUnsynced {
		t.Fatalf("pte state = %v", e.State())
	}
}

func TestSWDPFasterThanOSDPButSlowerThanHWDP(t *testing.T) {
	lat := func(s Scheme, fast bool) sim.Time {
		r := newRig(t, 64<<20, 512, withScheme(s))
		va, _ := r.mmapFile(t, "f", 64, MmapFlags{Fast: fast})
		_, l := r.access(t, r.th, va, false)
		return l
	}
	os, sw, hw := lat(OSDP, false), lat(SWDP, true), lat(HWDP, true)
	if !(hw < sw && sw < os) {
		t.Fatalf("ordering violated: hw=%v sw=%v os=%v", hw, sw, os)
	}
}

func TestLoadReturnsFileContent(t *testing.T) {
	for _, scheme := range []Scheme{OSDP, SWDP, HWDP} {
		r := newRig(t, 64<<20, 512, withScheme(scheme))
		va, f := r.mmapFile(t, "f", 8, MmapFlags{Fast: true})
		want := make([]byte, 100)
		buf := make([]byte, 100)
		fi := fs.SeededInit(77)
		page := make([]byte, fs.PageBytes)
		fi(2, page)
		copy(want, page[5:105])
		start := r.eng.Now()
		doneAt := sim.Time(-1)
		r.k.Load(r.th, va+2*4096+5, buf, func(res mmu.Result) { doneAt = r.eng.Now() })
		r.eng.RunUntil(start + sim.Second)
		if doneAt < 0 {
			t.Fatalf("%v: load never completed", scheme)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("%v: loaded bytes differ from file content", scheme)
		}
		_ = f
	}
}

func TestLoadCrossesPageBoundary(t *testing.T) {
	r := newRig(t, 64<<20, 512, withScheme(HWDP))
	va, _ := r.mmapFile(t, "f", 4, MmapFlags{Fast: true})
	buf := make([]byte, 8192)
	ok := false
	r.k.Load(r.th, va+100, buf, func(mmu.Result) { ok = true })
	r.eng.RunUntil(sim.Second)
	if !ok {
		t.Fatal("cross-page load hung")
	}
	fi := fs.SeededInit(77)
	p0 := make([]byte, 4096)
	p1 := make([]byte, 4096)
	p2 := make([]byte, 4096)
	fi(0, p0)
	fi(1, p1)
	fi(2, p2)
	want := append(append(append([]byte{}, p0[100:]...), p1...), p2[:100+8192-2*4096]...)
	_ = p2
	if !bytes.Equal(buf, want[:8192]) {
		t.Fatal("cross-page content wrong")
	}
}

func TestStoreThenLoadRoundTrip(t *testing.T) {
	r := newRig(t, 64<<20, 512, withScheme(HWDP))
	va, _ := r.mmapFile(t, "f", 4, MmapFlags{Fast: true})
	data := []byte("hardware demand paging")
	done := false
	r.k.Store(r.th, va+1000, data, func(mmu.Result) {
		buf := make([]byte, len(data))
		r.k.Load(r.th, va+1000, buf, func(mmu.Result) {
			if !bytes.Equal(buf, data) {
				t.Error("store/load mismatch")
			}
			done = true
		})
	})
	r.eng.RunUntil(sim.Second)
	if !done {
		t.Fatal("hung")
	}
}

func TestKptedSyncsMetadata(t *testing.T) {
	r := newRig(t, 64<<20, 512, withScheme(HWDP), kptedEvery(5*sim.Millisecond))
	va, _ := r.mmapFile(t, "f", 16, MmapFlags{Fast: true})
	r.access(t, r.th, va, false)
	e, _ := r.p.AS.Table.Lookup(va)
	if e.State() != pagetable.StateResidentUnsynced {
		t.Fatalf("pre-kpted state = %v", e.State())
	}
	r.eng.RunUntil(r.eng.Now() + 20*sim.Millisecond)
	e, _ = r.p.AS.Table.Lookup(va)
	if e.State() != pagetable.StateResident {
		t.Fatalf("post-kpted state = %v", e.State())
	}
	st := r.k.Stats()
	if st.KptedSyncs != 1 || st.KptedRuns == 0 {
		t.Fatalf("kpted stats = %+v", st)
	}
	// kpted ran on its own hardware thread, not the app's.
	if r.cpu.Thread(5).KernelInstr == 0 {
		t.Fatal("kpted charged no kernel time")
	}
}

func TestFreeQueueEmptyBouncesToOSAndRefills(t *testing.T) {
	r := newRig(t, 64<<20, 4, withScheme(HWDP), noKpoold())
	va, _ := r.mmapFile(t, "f", 32, MmapFlags{Fast: true})
	// Drain the 3-entry queue (depth 4 ring holds 3).
	for i := 0; i < 3; i++ {
		out, _ := r.access(t, r.th, va+pagetable.VAddr(i*4096), false)
		if out != mmu.OutcomeHW {
			t.Fatalf("miss %d: %v", i, out)
		}
	}
	// Fourth miss: queue empty → exception → OS handles + refills.
	out, _ := r.access(t, r.th, va+3*4096, false)
	if out != mmu.OutcomeOSFault {
		t.Fatalf("bounced miss outcome = %v", out)
	}
	st := r.k.Stats()
	if st.HWBounceFaults != 1 || st.FaultRefills != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// After the synchronous refill, hardware handling works again.
	out, _ = r.access(t, r.th, va+4*4096, false)
	if out != mmu.OutcomeHW {
		t.Fatalf("post-refill outcome = %v", out)
	}
}

func TestKpooldRefillsInBackground(t *testing.T) {
	r := newRig(t, 64<<20, 64, withScheme(HWDP))
	va, _ := r.mmapFile(t, "f", 128, MmapFlags{Fast: true})
	for i := 0; i < 40; i++ {
		r.access(t, r.th, va+pagetable.VAddr(i*4096), false)
	}
	// Let kpoold run a few periods.
	r.eng.RunUntil(r.eng.Now() + 20*sim.Millisecond)
	st := r.k.Stats()
	if st.KpooldFrames == 0 {
		t.Fatalf("kpoold refilled nothing: %+v", st)
	}
	if st.HWBounceFaults != 0 {
		t.Fatalf("bounces despite kpoold: %+v", st)
	}
}

func TestEvictionReAugmentsFastPTEs(t *testing.T) {
	// Memory: 128 frames. File: 256 pages. Touching everything forces
	// eviction; evicted fast-mmap PTEs must carry the LBA again.
	r := newRig(t, 128*4096, 16, withScheme(HWDP), kptedEvery(2*sim.Millisecond))
	va, _ := r.mmapFile(t, "big", 256, MmapFlags{Fast: true})
	for i := 0; i < 256; i++ {
		out, _ := r.access(t, r.th, va+pagetable.VAddr(i*4096), false)
		if out == mmu.OutcomeBadAddr {
			t.Fatalf("access %d failed", i)
		}
	}
	r.eng.RunUntil(r.eng.Now() + 50*sim.Millisecond)
	st := r.k.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions: %+v", st)
	}
	lba, resident := 0, 0
	for i := 0; i < 256; i++ {
		e, ok := r.p.AS.Table.Lookup(va + pagetable.VAddr(i*4096))
		if !ok {
			continue
		}
		switch e.State() {
		case pagetable.StateNotPresentLBA:
			lba++
		case pagetable.StateResident, pagetable.StateResidentUnsynced:
			resident++
		case pagetable.StateNotPresentOS:
			t.Fatalf("page %d lost its LBA augmentation", i)
		}
	}
	if lba == 0 {
		t.Fatal("no evicted page was re-augmented")
	}
	// Evicted pages can be faulted back by hardware.
	for i := 0; i < 256; i++ {
		e, _ := r.p.AS.Table.Lookup(va + pagetable.VAddr(i*4096))
		if e.State() == pagetable.StateNotPresentLBA {
			out, _ := r.access(t, r.th, va+pagetable.VAddr(i*4096), false)
			if out != mmu.OutcomeHW && out != mmu.OutcomeOSFault {
				t.Fatalf("refault outcome = %v", out)
			}
			break
		}
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	r := newRig(t, 128*4096, 16, withScheme(HWDP), kptedEvery(2*sim.Millisecond))
	va, _ := r.mmapFile(t, "big", 256, MmapFlags{Fast: true})
	// Dirty page 0 with known bytes.
	marker := []byte("persist me through eviction")
	ok := false
	r.k.Store(r.th, va+64, marker, func(mmu.Result) { ok = true })
	r.eng.RunUntil(r.eng.Now() + sim.Second)
	if !ok {
		t.Fatal("store hung")
	}
	// Force page 0 out by touching everything else.
	for i := 1; i < 256; i++ {
		r.access(t, r.th, va+pagetable.VAddr(i*4096), false)
	}
	r.eng.RunUntil(r.eng.Now() + 100*sim.Millisecond)
	if e, _ := r.p.AS.Table.Lookup(va); e.Present() {
		t.Skip("page 0 survived eviction pressure; clock kept it")
	}
	if r.k.Stats().Writebacks == 0 {
		t.Fatal("dirty page evicted without writeback")
	}
	// Fault it back: content must match.
	buf := make([]byte, len(marker))
	got := false
	r.k.Load(r.th, va+64, buf, func(mmu.Result) { got = true })
	r.eng.RunUntil(r.eng.Now() + sim.Second)
	if !got || !bytes.Equal(buf, marker) {
		t.Fatalf("content lost across dirty eviction: %q", buf)
	}
}

func TestMinorFaultOnSharedPage(t *testing.T) {
	r := newRig(t, 64<<20, 512, withScheme(OSDP))
	f, _ := r.fsys.Create("shared", 8, fs.SeededInit(1))
	va1, _ := r.k.Mmap(r.p, 0, 0, f, pagetable.Prot{User: true}, MmapFlags{})
	va2, _ := r.k.Mmap(r.p, 0, 0, f, pagetable.Prot{User: true}, MmapFlags{})
	r.access(t, r.th, va1, false) // major
	out, lat := r.access(t, r.th, va2, false)
	if out != mmu.OutcomeOSFault {
		t.Fatalf("outcome = %v", out)
	}
	if lat > sim.Micro(5) {
		t.Fatalf("minor fault took %v (device involved?)", lat)
	}
	st := r.k.Stats()
	if st.MajorFaults != 1 || st.MinorFaults != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Both mappings point at the same frame.
	e1, _ := r.p.AS.Table.Lookup(va1)
	e2, _ := r.p.AS.Table.Lookup(va2)
	if e1.PFN() != e2.PFN() {
		t.Fatal("shared page mapped to different frames")
	}
}

func TestMunmapBarriersAndFrees(t *testing.T) {
	// kpoold disabled so frame accounting is exact (it would otherwise top
	// up the prefetch-buffer slack from the allocator mid-test).
	r := newRig(t, 64<<20, 512, withScheme(HWDP), kptedEvery(sim.Millisecond), noKpoold())
	va, _ := r.mmapFile(t, "f", 32, MmapFlags{Fast: true})
	for i := 0; i < 8; i++ {
		r.access(t, r.th, va+pagetable.VAddr(i*4096), false)
	}
	freeBefore := r.mem.FreeFrames()
	done := false
	r.k.Munmap(r.th, va, func() { done = true })
	r.eng.RunUntil(r.eng.Now() + sim.Second)
	if !done {
		t.Fatal("munmap hung")
	}
	if r.mem.FreeFrames() != freeBefore+8 {
		t.Fatalf("frames not freed: before=%d after=%d", freeBefore, r.mem.FreeFrames())
	}
	out, _ := r.access(t, r.th, va, false)
	if out != mmu.OutcomeBadAddr {
		t.Fatalf("access after munmap = %v", out)
	}
	if st := r.k.Stats(); st.MunmapPages != 32 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMunmapWaitsForOutstandingMisses(t *testing.T) {
	r := newRig(t, 64<<20, 512, withScheme(HWDP))
	va, _ := r.mmapFile(t, "f", 8, MmapFlags{Fast: true})
	th2 := r.k.NewThread(r.p, 2)
	// Start a hardware miss and munmap while it is in flight.
	var missDone, unmapDone sim.Time = -1, -1
	r.k.Access(th2, va, false, func(mmu.Result) { missDone = r.eng.Now() })
	r.eng.After(sim.Micro(1), func() {
		r.k.Munmap(r.th, va, func() { unmapDone = r.eng.Now() })
	})
	r.eng.RunUntil(sim.Second)
	if missDone < 0 || unmapDone < 0 {
		t.Fatalf("hung: miss=%v unmap=%v", missDone, unmapDone)
	}
	if unmapDone < missDone {
		t.Fatal("munmap completed before the outstanding miss (race)")
	}
}

func TestMsyncWritesBackDirtyPages(t *testing.T) {
	r := newRig(t, 64<<20, 512, withScheme(HWDP), kptedEvery(sim.Millisecond))
	va, _ := r.mmapFile(t, "f", 8, MmapFlags{Fast: true})
	okStore := false
	r.k.Store(r.th, va, []byte("dirty data"), func(mmu.Result) { okStore = true })
	r.eng.RunUntil(r.eng.Now() + 100*sim.Millisecond)
	if !okStore {
		t.Fatal("store hung")
	}
	writesBefore := r.fsys.Writes()
	done := false
	r.k.Msync(r.th, va, func() { done = true })
	r.eng.RunUntil(r.eng.Now() + sim.Second)
	if !done {
		t.Fatal("msync hung")
	}
	if r.fsys.Writes() != writesBefore+1 {
		t.Fatalf("writes = %d, want %d", r.fsys.Writes(), writesBefore+1)
	}
	e, _ := r.p.AS.Table.Lookup(va)
	if e.Dirty() {
		t.Fatal("dirty bit survived msync")
	}
	if e.State() == pagetable.StateResidentUnsynced {
		t.Fatal("msync left metadata unsynced")
	}
}

func TestFsync(t *testing.T) {
	r := newRig(t, 64<<20, 512, withScheme(HWDP))
	va, f := r.mmapFile(t, "f", 4, MmapFlags{Fast: true})
	ok := false
	r.k.Store(r.th, va, []byte("x"), func(mmu.Result) {
		r.k.Fsync(r.th, f, func() { ok = true })
	})
	r.eng.RunUntil(sim.Second)
	if !ok {
		t.Fatal("fsync hung")
	}
	if r.fsys.Writes() == 0 {
		t.Fatal("fsync wrote nothing")
	}
}

func TestForkRevertsLBAPTEs(t *testing.T) {
	r := newRig(t, 64<<20, 512, withScheme(HWDP))
	va, _ := r.mmapFile(t, "f", 16, MmapFlags{Fast: true})
	r.access(t, r.th, va, false) // one resident-unsynced PTE
	child := r.k.Fork(r.p)
	// Parent: no LBA-augmented or unsynced PTEs remain.
	for i := 0; i < 16; i++ {
		e, ok := r.p.AS.Table.Lookup(va + pagetable.VAddr(i*4096))
		if !ok {
			continue
		}
		if s := e.State(); s == pagetable.StateNotPresentLBA || s == pagetable.StateResidentUnsynced {
			t.Fatalf("page %d still %v after fork", i, s)
		}
	}
	// Child faults go through the OS even though the kernel runs HWDP.
	thC := r.k.NewThread(child, 2)
	out, _ := r.access(t, thC, va+4096, false)
	if out != mmu.OutcomeOSFault {
		t.Fatalf("child fault outcome = %v", out)
	}
	// Parent resident page is shared with the child via a minor fault.
	out, _ = r.access(t, thC, va, false)
	if out != mmu.OutcomeOSFault {
		t.Fatalf("child shared-page outcome = %v", out)
	}
	if st := r.k.Stats(); st.Forks != 1 || st.MinorFaults == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRemapPatchesLBAPTEs(t *testing.T) {
	r := newRig(t, 64<<20, 512, withScheme(HWDP))
	va, f := r.mmapFile(t, "f", 8, MmapFlags{Fast: true})
	oldE, _ := r.p.AS.Table.Lookup(va + 3*4096)
	nb, err := r.fsys.Remap(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	newE, _ := r.p.AS.Table.Lookup(va + 3*4096)
	if newE.Block() != nb {
		t.Fatalf("PTE block = %v, want %v", newE.Block(), nb)
	}
	if newE.Block() == oldE.Block() {
		t.Fatal("remap did not change the PTE")
	}
	if r.k.Stats().RemapPatchedPTE != 1 {
		t.Fatal("patch not counted")
	}
	// Faulting the remapped page loads the (preserved) content.
	buf := make([]byte, 16)
	want := make([]byte, fs.PageBytes)
	fs.SeededInit(77)(3, want)
	ok := false
	r.k.Load(r.th, va+3*4096, buf, func(mmu.Result) { ok = true })
	r.eng.RunUntil(sim.Second)
	if !ok || !bytes.Equal(buf, want[:16]) {
		t.Fatal("remapped page content wrong")
	}
}

func TestPopulatePreloadsEverything(t *testing.T) {
	r := newRig(t, 64<<20, 512, withScheme(OSDP))
	va, _ := r.mmapFile(t, "f", 64, MmapFlags{Populate: true})
	for i := 0; i < 64; i++ {
		out, lat := r.access(t, r.th, va+pagetable.VAddr(i*4096), false)
		if out == mmu.OutcomeOSFault || lat > sim.Micro(1) {
			t.Fatalf("access %d faulted (%v, %v) despite MAP_POPULATE", i, out, lat)
		}
	}
	if st := r.k.Stats(); st.MajorFaults != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSchemeString(t *testing.T) {
	if OSDP.String() != "OSDP" || SWDP.String() != "SW-only" || HWDP.String() != "HWDP" || Scheme(9).String() != "?" {
		t.Fatal("scheme strings")
	}
}

func TestCostsCalibration(t *testing.T) {
	c := DefaultCosts()
	dev := float64(ssd.ZSSD.Read4K)
	over := float64(c.OSDPOverhead())
	frac := over / dev
	// Fig. 3: aggregated overhead ≈ 76.3% of device time.
	if frac < 0.72 || frac > 0.84 {
		t.Fatalf("OSDP overhead = %.1f%% of device time", frac*100)
	}
	// Fig. 11(a): before/after reductions vs HWDP ≈ 2.38us / 6.16us.
	hwBefore := smuDefaultBefore()
	beforeRed := (c.OSDPBeforeDevice() - hwBefore).Micros()
	if beforeRed < 2.0 || beforeRed > 2.8 {
		t.Fatalf("before-device reduction = %.2fus", beforeRed)
	}
	afterRed := (c.OSDPAfterDevice() - smuDefaultAfter()).Micros()
	if afterRed < 5.7 || afterRed > 6.6 {
		t.Fatalf("after-device reduction = %.2fus", afterRed)
	}
	// Fig. 17: SW-only overhead ≈ 1.9us.
	if sw := c.SWOverhead().Micros(); sw < 1.6 || sw > 2.2 {
		t.Fatalf("SW overhead = %.2fus", sw)
	}
}

func smuDefaultBefore() sim.Time { return smu.DefaultTiming().BeforeDevice() }
func smuDefaultAfter() sim.Time  { return smu.DefaultTiming().AfterDevice() }
