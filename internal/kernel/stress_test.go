package kernel

// Machine-wide invariant stress test: random mixed operations (reads,
// writes, msyncs, anonymous traffic) across multiple threads and schemes,
// with structural invariants checked throughout:
//
//   - no frame is referenced by two different page-cache entries
//     (no page aliasing — the PMSHR's core guarantee);
//   - every present PTE of a file VMA points at the frame the page cache
//     records for that file page;
//   - resident pages never exceed physical frames;
//   - every Load observes exactly the bytes last Stored (or the file's
//     pristine content).

import (
	"bytes"
	"fmt"
	"testing"

	"hwdp/internal/fs"
	"hwdp/internal/mmu"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
)

// checkInvariants walks the machine structures and fails the test on any
// violation.
func checkInvariants(t *testing.T, r *rig) {
	t.Helper()
	// Frame uniqueness across the page cache.
	frames := make(map[uint64]pcKey)
	for key, pg := range r.k.pageCache {
		f := uint64(pg.frame)
		if prev, dup := frames[f]; dup {
			t.Fatalf("frame %d aliased by %v and %v", f, prev, key)
		}
		frames[f] = key
		if !r.mem.Allocated(pg.frame) {
			t.Fatalf("page cache holds unallocated frame %d", f)
		}
		// Reverse map consistency: every mapping's PTE points here.
		for _, m := range pg.maps {
			e := m.pte.Get()
			if e.Present() && e.PFN() != pg.frame {
				t.Fatalf("rmap mismatch at %#x: PTE frame %d, page frame %d",
					uint64(m.va), e.PFN(), pg.frame)
			}
		}
	}
	if uint64(len(r.k.pageCache)) > r.mem.Frames() {
		t.Fatalf("resident pages %d exceed frames %d", len(r.k.pageCache), r.mem.Frames())
	}
	// PTE → page cache consistency for every process.
	for _, p := range r.k.procs {
		for _, v := range p.vmas {
			if v.dead {
				continue
			}
			for i := 0; i < v.Pages; i++ {
				va := v.Start + pagetable.VAddr(i)*4096
				e, ok := p.AS.Table.Lookup(va)
				if !ok || !e.Present() {
					continue
				}
				if e.State() == pagetable.StateResidentUnsynced {
					continue // not yet in OS metadata, by design
				}
				pg := r.k.lookupPage(v.File, i)
				if pg == nil {
					t.Fatalf("present synced PTE at %#x without page cache entry", uint64(va))
				}
				if pg.frame != e.PFN() {
					t.Fatalf("PTE at %#x names frame %d, cache has %d",
						uint64(va), e.PFN(), pg.frame)
				}
			}
		}
	}
}

func TestStressMixedOperations(t *testing.T) {
	for _, scheme := range []Scheme{OSDP, SWDP, HWDP} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			r := newRig(t, 8<<20, 256, withScheme(scheme), kptedEvery(2*sim.Millisecond))
			const filePages = 24576 // 96 MiB file on an 8 MiB machine
			fileVA, _ := r.mmapFile(t, "stress", filePages, MmapFlags{Fast: true})
			anonVA := r.mmapAnon(t, 2048, true)

			threads := []*Thread{r.th, r.k.NewThread(r.p, 2)}
			rng := sim.NewRand(uint64(scheme) + 99)
			// Model of expected contents: file pages we wrote, anon pages
			// we wrote.
			fileWrites := map[int]byte{}
			anonWrites := map[int]byte{}
			pending := 0
			ops := 0
			const totalOps = 3000
			buf0 := make([]byte, 8)
			buf1 := make([]byte, 8)

			var step func(th *Thread, buf []byte)
			step = func(th *Thread, buf []byte) {
				if ops >= totalOps {
					pending--
					return
				}
				ops++
				switch rng.Intn(10) {
				case 0, 1: // file write
					page := rng.Intn(filePages)
					v := byte(rng.Intn(256))
					fileWrites[page] = v
					r.k.Store(th, fileVA+pagetable.VAddr(page)*4096, []byte{v}, func(mmu.Result) {
						step(th, buf)
					})
				case 2: // anon write
					page := rng.Intn(2048)
					v := byte(rng.Intn(255)) + 1
					anonWrites[page] = v
					r.k.Store(th, anonVA+pagetable.VAddr(page)*4096, []byte{v}, func(mmu.Result) {
						step(th, buf)
					})
				case 3: // anon read + verify
					page := rng.Intn(2048)
					want := anonWrites[page]
					r.k.Load(th, anonVA+pagetable.VAddr(page)*4096, buf[:1], func(mmu.Result) {
						if buf[0] != want {
							t.Errorf("anon page %d: got %d want %d", page, buf[0], want)
						}
						step(th, buf)
					})
				case 4: // msync the file region occasionally
					if rng.Intn(4) == 0 {
						r.k.Msync(th, fileVA, func() { step(th, buf) })
					} else {
						step(th, buf)
					}
				default: // file read + verify first byte
					page := rng.Intn(filePages)
					r.k.Load(th, fileVA+pagetable.VAddr(page)*4096, buf[:8], func(mmu.Result) {
						if v, wrote := fileWrites[page]; wrote {
							if buf[0] != v {
								t.Errorf("file page %d: got %d want %d", page, buf[0], v)
							}
						} else {
							pristine := make([]byte, fs.PageBytes)
							fs.SeededInit(77)(page, pristine)
							if !bytes.Equal(buf[:8], pristine[:8]) {
								t.Errorf("file page %d: pristine content wrong", page)
							}
						}
						step(th, buf)
					})
				}
			}
			pending = len(threads)
			step(threads[0], buf0)
			step(threads[1], buf1)
			checked := 0
			for pending > 0 && r.eng.Step() {
				if ops%500 == 250 && checked < ops/500 {
					checked = ops / 500
					checkInvariants(t, r)
				}
			}
			if pending != 0 {
				t.Fatal("stress run hung")
			}
			checkInvariants(t, r)
			st := r.k.Stats()
			if scheme == HWDP && r.smu.Stats().Handled == 0 {
				t.Fatal("HWDP stress never used the SMU")
			}
			if st.Evictions == 0 {
				t.Fatalf("stress run created no memory pressure: %+v", st)
			}
		})
	}
}

// TestStressDeterminism: the same seed must give bit-identical virtual
// time and counters.
func TestStressDeterminism(t *testing.T) {
	run := func() (sim.Time, Stats, uint64) {
		r := newRig(t, 16<<20, 128, withScheme(HWDP), kptedEvery(2*sim.Millisecond))
		va, _ := r.mmapFile(t, "d", 8192, MmapFlags{Fast: true})
		rng := sim.NewRand(5)
		done := 0
		var step func()
		step = func() {
			if done >= 2000 {
				return
			}
			done++
			r.k.Access(r.th, va+pagetable.VAddr(rng.Intn(8192)*4096), rng.Intn(5) == 0,
				func(mmu.Result) { step() })
		}
		step()
		r.eng.RunUntil(10 * sim.Second)
		return r.eng.Now(), r.k.Stats(), r.dev.Stats().Reads
	}
	t1, s1, d1 := run()
	t2, s2, d2 := run()
	if t1 != t2 || s1 != s2 || d1 != d2 {
		t.Fatalf("nondeterminism:\n%v %+v %d\n%v %+v %d", t1, s1, d1, t2, s2, d2)
	}
	_ = fmt.Sprint()
}
