package kernel

import (
	"fmt"

	"hwdp/internal/cpu"
	"hwdp/internal/fs"
	"hwdp/internal/mem"
	"hwdp/internal/metrics"
	"hwdp/internal/nvme"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
)

// lookupPage finds a resident page in the page cache.
func (k *Kernel) lookupPage(f *fs.File, idx int) *Page {
	return k.pageCache[pcKey{f, idx}]
}

// insertPage registers a freshly loaded page: page cache, LRU tail, reverse
// map. This is the OS-metadata update that the OSDP fault path does inline
// and kpted does in batch for hardware-handled misses.
func (k *Kernel) insertPage(st *storage, f *fs.File, idx int, frame mem.FrameID,
	m mapping) *Page {
	key := pcKey{f, idx}
	if k.pageCache[key] != nil {
		panic(fmt.Sprintf("kernel: page %s[%d] inserted twice", f.Name, idx))
	}
	pg := &Page{frame: frame, file: f, idx: idx, st: st, maps: []mapping{m}}
	k.pageCache[key] = pg
	pg.elem = k.lru.PushBack(pg)
	return pg
}

// mapExisting adds a mapping to an already-resident page (minor fault or a
// second VMA mapping the same file page).
func (k *Kernel) mapExisting(pg *Page, m mapping) {
	for _, old := range pg.maps {
		if old.as == m.as && old.va == m.va {
			return
		}
	}
	pg.maps = append(pg.maps, m)
}

// freeLevel returns current free frames and the low/high watermarks.
func (k *Kernel) freeLevel() (free, low, high uint64) {
	total := k.mem.Frames()
	return k.mem.FreeFrames(), uint64(float64(total) * k.cfg.LowWaterFrac),
		uint64(float64(total) * k.cfg.HighWaterFrac)
}

// allocFrame hands out a frame, entering direct reclaim when the allocator
// is empty. done receives the frame; the caller charges ordinary
// allocation cost, this function charges only the direct-reclaim penalty.
//
// A stalled allocation rides a pooled allocReq carrier through the
// reclaim-retry loop — under sustained oversubscription the 50 µs polls
// repeat many times, so the retry must not allocate a closure per
// attempt (the same discipline as kexec's poll).
func (k *Kernel) allocFrame(hw *cpu.HWThread, done func(mem.FrameID)) {
	if f, err := k.mem.Alloc(); err == nil {
		done(f)
		return
	}
	r := k.getAllocReq()
	r.hw, r.done, r.since = hw, done, k.eng.Now()
	k.stats.AllocStalls++
	k.psi.BeginStall(metrics.StallAlloc, int64(r.since))
	k.allocReclaim(r)
}

// allocReclaim runs one direct-reclaim pass for a stalled allocation:
// either the retried Alloc succeeds, or the next 50 µs poll is scheduled.
func (k *Kernel) allocReclaim(r *allocReq) {
	k.stats.DirectReclaims++
	k.kexec(r.hw, k.cfg.Costs.DirectReclaim, func() {
		k.reclaim(r.hw, 32, func(int) {
			if f, err := k.mem.Alloc(); err == nil {
				k.allocDone(r, f)
				return
			}
			// Still nothing (all pages referenced or under writeback):
			// retry shortly; forward progress comes from writeback
			// completions — or, past Config.OOMStallLimit, from the OOM
			// killer (see runAllocRetry).
			k.eng.PostArg(50*sim.Microsecond, k.allocFn, r)
		})
	})
}

// reclaim evicts up to target pages using the clock algorithm: pages with
// the accessed bit get a second chance (bit cleared, TLB shot down, page
// rotated); others are unmapped and freed, with dirty pages written back
// first. done receives the number of pages whose eviction began.
func (k *Kernel) reclaim(hw *cpu.HWThread, target int, done func(freed int)) {
	freed := 0
	scanned := 0
	maxScan := 2*k.lru.Len() + 1
	var step func()
	step = func() {
		if freed >= target || scanned >= maxScan || k.lru.Len() == 0 {
			done(freed)
			return
		}
		scanned++
		front := k.lru.Front()
		pg := front.Value.(*Page)
		// Referenced? Clear accessed bits and give a second chance.
		referenced := false
		for _, m := range pg.maps {
			e := m.pte.Get()
			if e.Present() && e.Accessed() {
				referenced = true
				m.pte.Set(e.ClearFlags(pagetable.FlagAccessed))
				k.mmu.TLB().Invalidate(m.as.ASID, m.va.PageNumber())
			}
		}
		if referenced {
			k.lru.MoveToBack(front)
			k.kexec(hw, k.cfg.Costs.TLBShootdown, step)
			return
		}
		k.evictPage(hw, pg, func() {
			freed++
			step()
		})
	}
	step()
}

// evictPage unmaps one page from every address space and releases its
// frame. For fast-mmap VMAs the PTE is re-augmented with the file's
// current LBA (present bit cleared, LBA bit set — Section IV-B); for
// normal VMAs it reverts to a conventional non-present PTE. Dirty pages
// are written back before the frame is freed.
func (k *Kernel) evictPage(hw *cpu.HWThread, pg *Page, done func()) {
	if pg.wb {
		done() // already being cleaned; skip
		return
	}
	dirty := false
	for _, m := range pg.maps {
		e := m.pte.Get()
		if !e.Present() {
			continue
		}
		if e.Dirty() {
			dirty = true
		}
		blk, err := pg.st.fsys.Block(pg.file, pg.idx)
		if err != nil {
			panic(err)
		}
		if m.vma != nil && m.vma.Anon && e.Dirty() {
			// The page's content will live in swap from now on.
			m.vma.swapped[pg.idx] = true
		}
		if m.vma != nil && m.vma.Fast && k.cfg.Scheme != OSDP {
			if m.vma.Anon && !m.vma.swapped[pg.idx] {
				// Still zero content: refault as a no-I/O zero fill.
				blk.LBA = pagetable.AnonFirstTouch
			}
			m.pte.Set(pagetable.MakeLBA(blk, m.vma.Prot))
		} else {
			m.pte.Set(pagetable.MakeSwap(0, e.Prot()))
		}
		k.mmu.TLB().Invalidate(m.as.ASID, m.va.PageNumber())
	}
	delete(k.pageCache, pcKey{pg.file, pg.idx})
	if pg.elem != nil {
		k.lru.Remove(pg.elem)
		pg.elem = nil
	}
	k.stats.Evictions++

	finish := func() {
		if err := k.mem.Free(pg.frame); err != nil {
			panic(err)
		}
		done()
	}
	if !dirty {
		k.kexec(hw, k.cfg.Costs.EvictPerPage, finish)
		return
	}
	// Dirty: write back, then free. The eviction continues (done) once the
	// write is submitted; the frame is released at write completion.
	pg.wb = true
	k.stats.Writebacks++
	k.noteCleaned()
	blk, _ := pg.st.fsys.Block(pg.file, pg.idx)
	k.kexec(hw, k.cfg.Costs.EvictPerPage+k.cfg.Costs.WritebackSubmit, func() {
		k.submitIORetry(pg.st, hw, nvme.OpWrite, blk.LBA, pg.frame, nil, func(status uint16) {
			if status != nvme.StatusSuccess {
				// Retries exhausted: the page's disk copy is stale. Count it
				// and move on — the frame is reclaimed regardless (data-loss
				// accounting, not a model failure).
				k.stats.WritebackErrors++
			}
			pg.wb = false
			if err := k.mem.Free(pg.frame); err != nil {
				panic(err)
			}
		})
		done()
	})
}

// syncPageMetadata performs the OS-metadata update for one hardware-handled
// PTE found by kpted (or by msync/munmap): build the struct page, insert
// into the LRU and page cache, set up the reverse mapping, and clear the
// PTE's LBA bit. Zero-cost in time here; callers charge KptedPerSync.
func (k *Kernel) syncPageMetadata(p *Process, va pagetable.VAddr, pte pagetable.EntryRef) {
	e := pte.Get()
	if e.State() != pagetable.StateResidentUnsynced {
		return
	}
	vma := p.findVMA(va)
	if vma == nil {
		// Raced with munmap; the barrier protocol should prevent this.
		panic(fmt.Sprintf("kernel: unsynced PTE without VMA at %#x", uint64(va)))
	}
	idx := vma.pageIndex(va)
	m := mapping{as: p.AS, va: va.PageBase(), pte: pte, vma: vma}
	if pg := k.lookupPage(vma.File, idx); pg != nil {
		k.mapExisting(pg, m)
	} else {
		k.insertPage(vma.st, vma.File, idx, e.PFN(), m)
	}
	pte.Set(e.ClearFlags(pagetable.FlagLBA))
	k.stats.KptedSyncs++
}
