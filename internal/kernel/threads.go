package kernel

import (
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
	"hwdp/internal/smu"
)

// kptedTick is one period of the kpted kernel thread (Section IV-C): scan
// the page tables of fast-mmap'ed regions for hardware-handled PTEs
// (resident + LBA bit), update the OS metadata for each in batch, and
// clear the LBA bits. The upper-level LBA bits let the scan skip clean
// subtrees.
func (k *Kernel) kptedTick() {
	k.stats.KptedRuns++
	var visited, matched uint64
	for _, p := range k.procs {
		p := p
		st := p.AS.Table.ScanUnsynced(func(va pagetable.VAddr, pte pagetable.EntryRef) {
			k.syncPageMetadata(p, va, pte)
		})
		visited += st.PTEsVisited
		matched += st.PTEsMatched
	}
	k.stats.KptedPTEsSeen += visited
	cost := k.cfg.Costs.KptedPerPTE*sim.Time(visited) +
		k.cfg.Costs.KptedPerSync*sim.Time(matched)
	finish := func() { k.eng.Post(k.cfg.KptedPeriod, k.kptedTick) }
	if cost > 0 {
		k.kexec(k.kptedHW, cost, finish)
	} else {
		finish()
	}
}

// kpooldTick is one period of the kpoold kernel thread (Section IV-D):
// refill every SMU's free page queue in the background so the fault path
// rarely sees an empty queue.
func (k *Kernel) kpooldTick() {
	var total int
	for _, s := range k.smuList {
		total += k.refillSMU(s)
	}
	k.stats.KpooldFrames += uint64(total)
	finish := func() { k.eng.Post(k.cfg.KpooldPeriod, k.kpooldTick) }
	if total > 0 {
		k.kexec(k.kpooldHW, k.cfg.Costs.KpooldPerPage*sim.Time(total), finish)
	} else {
		finish()
	}
}

// smuTicker is one socket's sharded kpoold schedule (Config.ShardKpoold):
// it pre-binds the tick callback at Start so each reschedule posts the
// stored func instead of allocating a fresh closure per period.
type smuTicker struct {
	k    *Kernel
	s    *smu.SMU
	tick func()
}

func (t *smuTicker) run() { t.k.kpooldTickSMU(t.s, t.tick) }

// kpooldTickSMU is one period of a sharded kpoold: the same refill work as
// kpooldTick, but scoped to one socket's SMU so each socket's sweep fires
// on its own staggered schedule. resched is the ticker's pre-bound tick.
func (k *Kernel) kpooldTickSMU(s *smu.SMU, resched func()) {
	n := k.refillSMU(s)
	k.stats.KpooldFrames += uint64(n)
	finish := func() { k.eng.Post(k.cfg.KpooldPeriod, resched) }
	if n > 0 {
		k.kexec(k.kpooldHW, k.cfg.Costs.KpooldPerPage*sim.Time(n), finish)
	} else {
		finish()
	}
}

// kswapdTick is the background reclaim thread: keep free memory between
// the watermarks by evicting cold pages from the clock LRU.
func (k *Kernel) kswapdTick() {
	free, low, high := k.freeLevel()
	reschedule := func() { k.eng.Post(k.cfg.KswapdPeriod, k.kswapdTick) }
	if free >= low || k.reclaiming {
		reschedule()
		return
	}
	k.reclaiming = true
	target := int(high - free)
	k.reclaim(k.kswapdHW, target, func(int) {
		k.reclaiming = false
		reschedule()
	})
}
