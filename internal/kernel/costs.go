package kernel

import "hwdp/internal/sim"

// Costs is the kernel latency model. The OSDP components are calibrated so
// that for the Z-SSD (10.9 µs device time) the aggregate fault-handling
// overhead matches Figure 3 (≈76–80 % of device time) and the before/after
// device-I/O reductions of Fig. 11(a) come out at the paper's 2.38 µs and
// 6.16 µs. The SW-only components reproduce Fig. 17's ≈1.9 µs software
// overhead over raw device time.
type Costs struct {
	// --- OSDP page-fault path, before device I/O ---
	Exception    sim.Time // trap entry, mode switch
	WalkInFault  sim.Time // page-table walk charged to the fault
	HandlerEntry sim.Time // VMA lookup, fault triage
	PageAlloc    sim.Time // buddy allocation of one frame
	IOSubmit     sim.Time // block layer + NVMe driver submission

	// --- overlapped with device I/O ---
	CtxSwitchOut sim.Time // schedule away while the device works

	// --- after device I/O ---
	InterruptDelivery sim.Time // IRQ delivery to the submitting core
	IOCompletion      sim.Time // block-layer completion, softirq
	WakeSchedule      sim.Time // wake the blocked thread, schedule in
	MetadataUpdate    sim.Time // LRU insert, rmap, page-cache insert
	PTEInstallReturn  sim.Time // PTE write, return from exception

	// --- minor faults (page already in the page cache) ---
	MinorFault sim.Time

	// --- SW-only scheme (software-emulated SMU, Fig. 17) ---
	SWCheck    sim.Time // early LBA-bit check in the fault handler
	SWPMSHR    sim.Time // PMSHR emulated as a memory table
	SWSubmit   sim.Time // build + issue NVMe command from the kernel
	SWComplete sim.Time // CQ handling, PTE update, PMSHR release

	// --- background kernel threads ---
	KptedPerPTE     sim.Time // scan cost per leaf PTE visited
	KptedPerSync    sim.Time // batched OS-metadata update per page
	KpooldPerPage   sim.Time // batched free-page allocation per page
	EvictPerPage    sim.Time // reclaim bookkeeping per evicted page
	WritebackSubmit sim.Time // dirty page writeback submission

	// --- misc ---
	MmapPerPTE     sim.Time // LBA augmentation per PTE during fast mmap
	SyscallEntry   sim.Time
	DirectReclaim  sim.Time // direct-reclaim entry penalty on alloc stall
	TLBShootdown   sim.Time // per-page remote TLB invalidation
	RefillPerFrame sim.Time // free-page-queue refill per frame (fault path)
}

// DefaultCosts returns the calibrated model.
func DefaultCosts() Costs {
	return Costs{
		Exception:    sim.Micro(0.15),
		WalkInFault:  sim.Micro(0.18),
		HandlerEntry: sim.Micro(0.40),
		PageAlloc:    sim.Micro(0.55),
		IOSubmit:     sim.Micro(1.21),

		CtxSwitchOut: sim.Micro(1.10),

		InterruptDelivery: sim.Micro(0.27),
		IOCompletion:      sim.Micro(2.30),
		WakeSchedule:      sim.Micro(1.23),
		MetadataUpdate:    sim.Micro(1.80),
		PTEInstallReturn:  sim.Micro(0.60),

		MinorFault: sim.Micro(1.10),

		SWCheck:    sim.Micro(0.10),
		SWPMSHR:    sim.Micro(0.25),
		SWSubmit:   sim.Micro(0.50),
		SWComplete: sim.Micro(0.70),

		KptedPerPTE:     sim.Nano(18),
		KptedPerSync:    sim.Micro(0.35),
		KpooldPerPage:   sim.Micro(0.12),
		EvictPerPage:    sim.Micro(0.60),
		WritebackSubmit: sim.Micro(0.80),

		MmapPerPTE:     sim.Nano(55),
		SyscallEntry:   sim.Micro(0.20),
		DirectReclaim:  sim.Micro(3.0),
		TLBShootdown:   sim.Micro(0.25),
		RefillPerFrame: sim.Micro(0.10),
	}
}

// OSDPBeforeDevice is the fault latency before the device starts working.
func (c Costs) OSDPBeforeDevice() sim.Time {
	return c.Exception + c.WalkInFault + c.HandlerEntry + c.PageAlloc + c.IOSubmit
}

// OSDPAfterDevice is the fault latency after the device finishes.
func (c Costs) OSDPAfterDevice() sim.Time {
	return c.InterruptDelivery + c.IOCompletion + c.WakeSchedule +
		c.MetadataUpdate + c.PTEInstallReturn
}

// OSDPOverhead is the total fault-latency overhead excluding device time
// (the quantity Fig. 3 expresses as a percentage of device time).
func (c Costs) OSDPOverhead() sim.Time {
	return c.OSDPBeforeDevice() + c.OSDPAfterDevice()
}

// SWOverhead is the software-emulated-SMU overhead over raw device time.
func (c Costs) SWOverhead() sim.Time {
	return c.Exception + c.SWCheck + c.SWPMSHR + c.SWSubmit +
		c.InterruptDelivery + c.SWComplete
}
