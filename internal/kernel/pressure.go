package kernel

// Memory-pressure machinery: the allocation reclaim-retry loop's pooled
// carrier, approximate dirty-page accounting with background writeback
// (the flusher) and dirty-ratio write throttling, and the OOM killer.
// Everything here is off by default — the knobs in Config
// (DirtyRatioFrac, OOMStallLimit) gate all behavior changes, so default
// runs stay byte-identical.

import (
	"fmt"

	"hwdp/internal/cpu"
	"hwdp/internal/mem"
	"hwdp/internal/metrics"
	"hwdp/internal/mmu"
	"hwdp/internal/nvme"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
)

// allocReq carries a stalled allocation through the reclaim-retry loop
// without a per-poll closure.
type allocReq struct {
	hw    *cpu.HWThread
	done  func(mem.FrameID)
	since sim.Time // when the stall began (PSI interval, OOM deadline base)
}

//hwdp:pool acquire allocreq
func (k *Kernel) getAllocReq() *allocReq {
	if n := len(k.allocPool); n > 0 {
		r := k.allocPool[n-1]
		k.allocPool[n-1] = nil
		k.allocPool = k.allocPool[:n-1]
		return r
	}
	return &allocReq{}
}

//hwdp:pool release allocreq
func (k *Kernel) putAllocReq(r *allocReq) {
	*r = allocReq{}
	k.allocPool = append(k.allocPool, r)
}

// runAllocRetry is the pre-bound PostArg callback for the 50 µs
// allocation retry poll. Past Config.OOMStallLimit it invokes the OOM
// killer before the next reclaim pass.
func (k *Kernel) runAllocRetry(a any) {
	r := a.(*allocReq)
	if f, err := k.mem.Alloc(); err == nil {
		k.allocDone(r, f)
		return
	}
	if lim := k.cfg.OOMStallLimit; lim > 0 && k.eng.Now()-r.since >= lim {
		if k.oomKill(r.hw) {
			// Freed memory arrives asynchronously (dirty victim pages
			// write back first); restart the stall clock so one kill gets
			// a chance to land before the next.
			r.since = k.eng.Now()
		}
	}
	k.allocReclaim(r)
}

// allocDone completes a stalled allocation: close the PSI interval,
// recycle the carrier, deliver the frame.
func (k *Kernel) allocDone(r *allocReq, f mem.FrameID) {
	now := k.eng.Now()
	k.psi.EndStall(metrics.StallAlloc, int64(now), int64(now-r.since))
	done := r.done
	k.putAllocReq(r)
	done(f)
}

// noteDirtied is the MMU's clean→dirty hook (armed only when
// Config.DirtyRatioFrac is set). Past the background limit it kicks the
// flusher.
func (k *Kernel) noteDirtied() {
	k.dirtyPages++
	if k.dirtyPages > k.dirtyBgLimit {
		k.kickFlusher()
	}
}

// noteCleaned records one writeback submission in the dirty accounting.
// The counter is approximate (a page dirtied through several PTEs counts
// once per PTE transition but once per writeback), so it clamps at zero.
func (k *Kernel) noteCleaned() {
	if k.dirtyPages > 0 {
		k.dirtyPages--
	}
}

// kickFlusher starts a background writeback sweep unless one is already
// running or dirty accounting is off.
func (k *Kernel) kickFlusher() {
	if k.flushing || k.dirtyBgLimit <= 0 {
		return
	}
	k.flushing = true
	k.flushSweep()
}

// flushSweep is one flusher iteration: collect dirty pages from the cold
// end of the LRU and write them back until the count is under the
// background limit. When nothing is flushable (every dirty page already
// under writeback, or counter drift) the flusher stops; the next
// noteDirtied restarts it.
func (k *Kernel) flushSweep() {
	if k.dirtyPages <= k.dirtyBgLimit {
		k.flushing = false
		return
	}
	batch := k.collectDirty(k.dirtyPages - k.dirtyBgLimit)
	if len(batch) == 0 {
		k.flushing = false
		return
	}
	k.stats.FlusherRuns++
	k.flushBatch(batch, 0)
}

// collectDirty walks the LRU from the cold end and returns up to target
// pages with at least one dirty present PTE and no writeback in flight.
func (k *Kernel) collectDirty(target int) []*Page {
	var batch []*Page
	for e := k.lru.Front(); e != nil && len(batch) < target; e = e.Next() {
		pg := e.Value.(*Page)
		if pg.wb {
			continue
		}
		for _, m := range pg.maps {
			if ent := m.pte.Get(); ent.Present() && ent.Dirty() {
				batch = append(batch, pg)
				break
			}
		}
	}
	return batch
}

// flushBatch writes back one collected page per WritebackSubmit charge on
// the kswapd hardware thread, then re-sweeps.
func (k *Kernel) flushBatch(batch []*Page, i int) {
	if i >= len(batch) {
		k.flushSweep()
		return
	}
	pg := batch[i]
	if pg.wb || pg.elem == nil {
		// Evicted or claimed by another writeback since collection.
		k.flushBatch(batch, i+1)
		return
	}
	k.kexec(k.kswapdHW, k.cfg.Costs.WritebackSubmit, func() {
		k.flushPage(pg)
		k.flushBatch(batch, i+1)
	})
}

// flushPage cleans one page in place: PTE dirty bits are cleared (the
// dirty bit is re-observed from memory on the next write; the TLB
// shootdown of a real kernel is folded into the submit charge), anonymous
// content is recorded as swap-backed, and the block is written out. The
// frame stays resident — unlike eviction, background writeback only
// cleans.
func (k *Kernel) flushPage(pg *Page) {
	for _, m := range pg.maps {
		e := m.pte.Get()
		if !e.Present() || !e.Dirty() {
			continue
		}
		m.pte.Set(e.ClearFlags(pagetable.FlagDirty))
		if m.vma != nil && m.vma.Anon {
			m.vma.swapped[pg.idx] = true
		}
	}
	pg.wb = true
	k.stats.Writebacks++
	k.stats.FlusherPages++
	k.noteCleaned()
	blk, err := pg.st.fsys.Block(pg.file, pg.idx)
	if err != nil {
		panic(err)
	}
	k.submitIORetry(pg.st, k.kswapdHW, nvme.OpWrite, blk.LBA, pg.frame, nil, func(status uint16) {
		if status != nvme.StatusSuccess {
			k.stats.WritebackErrors++
		}
		pg.wb = false
		if pg.orphan {
			pg.orphan = false
			if err := k.mem.Free(pg.frame); err != nil {
				panic(err)
			}
		}
	})
}

// throttleReq carries a throttled write through the backoff loop without
// a per-slice closure.
type throttleReq struct {
	th    *Thread
	va    pagetable.VAddr
	done  func(mmu.Result)
	since sim.Time
	spins int
}

//hwdp:pool acquire throttlereq
func (k *Kernel) getThrottleReq() *throttleReq {
	if n := len(k.throttlePool); n > 0 {
		r := k.throttlePool[n-1]
		k.throttlePool[n-1] = nil
		k.throttlePool = k.throttlePool[:n-1]
		return r
	}
	return &throttleReq{}
}

//hwdp:pool release throttlereq
func (k *Kernel) putThrottleReq(r *throttleReq) {
	*r = throttleReq{}
	k.throttlePool = append(k.throttlePool, r)
}

// throttleMaxSpins bounds the throttle loop: after this many backoff
// slices the write proceeds regardless, guaranteeing forward progress
// even if the flusher cannot keep up.
const throttleMaxSpins = 512

// throttle parks a write that hit the hard dirty limit: the thread
// sleeps in backoff slices, kicking the flusher, until the dirty count
// drops (balance_dirty_pages).
func (k *Kernel) throttle(th *Thread, va pagetable.VAddr, done func(mmu.Result)) {
	k.stats.ThrottledWrites++
	r := k.getThrottleReq()
	r.th, r.va, r.done, r.since = th, va, done, k.eng.Now()
	k.psi.BeginStall(metrics.StallWritebackThrottle, int64(r.since))
	k.kickFlusher()
	k.eng.PostArg(k.throttleSlice(), k.throttleFn, r)
}

// runThrottle is the pre-bound PostArg callback for one throttle slice.
func (k *Kernel) runThrottle(a any) {
	r := a.(*throttleReq)
	r.spins++
	if k.dirtyPages >= k.dirtyHardLimit && r.spins < throttleMaxSpins && !r.th.Killed {
		k.kickFlusher()
		k.eng.PostArg(k.throttleSlice(), k.throttleFn, r)
		return
	}
	now := k.eng.Now()
	k.psi.EndStall(metrics.StallWritebackThrottle, int64(now), int64(now-r.since))
	th, va, done := r.th, r.va, r.done
	k.putThrottleReq(r)
	k.accessNow(th, va, true, done)
}

func (k *Kernel) throttleSlice() sim.Time {
	if k.cfg.ThrottleBackoff > 0 {
		return k.cfg.ThrottleBackoff
	}
	return 100 * sim.Microsecond
}

// oomKill selects and kills the live process with the largest resident
// set (ties break toward the oldest process — the scan is in creation
// order, deterministically). It returns false when no victim remains.
func (k *Kernel) oomKill(hw *cpu.HWThread) bool {
	var victim *Process
	best := 0
	for _, p := range k.procs {
		if p.oomKilled {
			continue
		}
		if rss := p.residentPages(); rss > best {
			best, victim = rss, p
		}
	}
	if victim == nil {
		return false
	}
	k.stats.OOMKills++
	victim.oomKilled = true
	for _, th := range victim.threads {
		th.Killed = true
	}
	if k.tracer != nil {
		k.tracer.NoteKill(nil, fmt.Sprintf("OOM: killed ASID %d (%d resident pages)",
			victim.AS.ASID, best), k.eng.Now())
	}
	k.oomReap(victim, hw)
	return true
}

// residentPages counts present PTEs — the victim-selection RSS.
func (p *Process) residentPages() int {
	n := 0
	p.AS.Table.ScanAll(func(_ pagetable.VAddr, pte pagetable.EntryRef) {
		if pte.Get().Present() {
			n++
		}
	})
	return n
}

// oomReap tears down every live VMA of an OOM victim, reusing the
// munmap machinery: fast-mmap regions drain the SMU barrier first (the
// unmap race of Section IV-C applies to kills too), dirty pages write
// back before their frames free, and conservation invariants hold
// throughout. In-flight faults that complete after the reap re-insert
// their page into the cache (benign: the page is clean, unmapped by the
// dead VMA, and evicts normally).
func (k *Kernel) oomReap(victim *Process, hw *cpu.HWThread) {
	for _, vma := range victim.vmas {
		if vma.dead {
			continue
		}
		vma := vma
		if vma.Fast {
			if s, ok := k.smus[vma.st.key.sid]; ok {
				s.Barrier(k.vmaPTEAddrs(vma), func() { k.reapVMA(victim, vma, hw) })
				continue
			}
		}
		k.reapVMA(victim, vma, hw)
	}
}

// reapVMA is the teardown half of oomReap for one VMA.
func (k *Kernel) reapVMA(p *Process, vma *VMA, hw *cpu.HWThread) {
	k.syncVMARange(vma)
	freed := 0
	for i := 0; i < vma.Pages; i++ {
		va := vma.Start + pagetable.VAddr(i)*4096
		_, _, pte, ok := p.AS.Table.Walk(va)
		if !ok {
			continue
		}
		if pte.Get().Present() {
			k.unmapOne(p, vma, va, pte)
			freed++
		}
		pte.Set(0)
	}
	vma.dead = true
	k.stats.OOMReapedPages += uint64(freed)
	if freed > 0 {
		k.kexec(hw, k.cfg.Costs.EvictPerPage*sim.Time(freed), func() {})
	}
}
