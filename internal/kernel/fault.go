package kernel

import (
	"fmt"

	"hwdp/internal/cpu"
	"hwdp/internal/mem"
	"hwdp/internal/mmu"
	"hwdp/internal/nvme"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
	"hwdp/internal/smu"
	"hwdp/internal/trace"
)

// handleFault is the MMU's exception entry point. ctx is the faulting
// Thread (set by Access). hwFailed marks an HWDP miss bounced for an empty
// free page queue. ms is the miss's trace context (nil when tracing is
// disabled).
//
//hwdp:coldpath OS exception path — the software fallback the hardware miss path exists to avoid; microseconds of kernel time dwarf any allocation here
func (k *Kernel) handleFault(ctx any, as *mmu.AddressSpace, va pagetable.VAddr,
	write, hwFailed bool, ms *trace.Miss, done func()) {
	th, ok := ctx.(*Thread)
	if !ok || th == nil {
		panic("kernel: fault without thread context")
	}
	// The pipeline is no longer stalled: the CPU vectors into the kernel.
	th.endStall()

	p := k.byASID[as.ASID]
	vma := p.findVMA(va)
	if vma == nil {
		// Segfault: the MMU will report BadAddr on the retried walk.
		done()
		return
	}
	idx := vma.pageIndex(va)

	// Classify using the PTE (the handler reads it anyway for triage).
	var state pagetable.State = pagetable.StateNotPresentOS
	if e, found := as.Table.Lookup(va); found {
		state = e.State()
	}
	if state == pagetable.StateResident || state == pagetable.StateResidentUnsynced {
		// Raced with a concurrent fault that already mapped the page.
		ms.SetCause(trace.CauseOSMinor)
		done()
		return
	}

	if k.cfg.Scheme == SWDP && state == pagetable.StateNotPresentLBA && !hwFailed {
		k.swFault(th, as, va, vma, idx, ms, done)
		return
	}
	k.osFaultPath(th, as, va, vma, idx, hwFailed, ms, done)
}

// osFaultPath is the conventional OSDP page-fault handler: exception entry,
// VMA triage, page-cache lookup (minor) or full storage I/O with a context
// switch (major), then OS metadata and PTE updates — Figure 3's timeline.
func (k *Kernel) osFaultPath(th *Thread, as *mmu.AddressSpace, va pagetable.VAddr,
	vma *VMA, idx int, hwFailed bool, ms *trace.Miss, done func()) {
	c := k.cfg.Costs
	hw := th.HW
	key := pcKey{vma.File, idx}
	k.kspan(ms, "exception-entry", hw, c.Exception+c.WalkInFault+c.HandlerEntry, func() {
		// Minor fault: the page is already resident in the page cache
		// (pages under writeback are still valid and mappable).
		if pg := k.lookupPage(vma.File, idx); pg != nil {
			k.stats.MinorFaults++
			ms.SetCause(trace.CauseOSMinor)
			k.kspan(ms, "minor-fault", hw, c.MinorFault, func() {
				k.mapPTE(as, va, vma, pg)
				done()
			})
			return
		}
		// Anonymous first touch (no swapped-out content): zero-fill a
		// fresh frame without any I/O — the minor-fault path of real
		// kernels, and the fallback for bounced hardware zero-fills. The
		// fault holds the page lock like the major path: allocation can
		// park in the reclaim-retry loop, and a concurrent first-touch of
		// the same page must coalesce, not insert the page twice.
		if vma.Anon && !vma.swapped[idx] {
			k.stats.MinorFaults++
			ms.SetCause(trace.CauseOSMinor)
			if waiters, inflight := k.faultInflight[key]; inflight {
				k.faultInflight[key] = append(waiters, k.pageLockWaiter(ms, hw, as, va, vma, idx, done))
				return
			}
			k.faultInflight[key] = []func(){}
			k.allocFrame(hw, func(frame mem.FrameID) {
				k.kspan(ms, "page-alloc+pte-install", hw, c.PageAlloc+c.PTEInstallReturn, func() {
					finish := func() {
						waiters := k.faultInflight[key]
						delete(k.faultInflight, key)
						done()
						for _, w := range waiters {
							w()
						}
					}
					// While the allocation stalled, the SMU may have resolved
					// the page for another thread (its miss found a refilled
					// free queue after ours bounced). Installing over it would
					// leak the SMU's frame; yield to it instead.
					if e, found := as.Table.Lookup(va); found && e.Present() {
						if err := k.mem.Free(frame); err != nil {
							panic(err)
						}
						finish()
						return
					}
					pg := k.insertPage(vma.st, vma.File, idx, frame,
						mapping{as: as, va: va.PageBase(), vma: vma})
					k.finishMap(as, va, vma, pg)
					if !hwFailed {
						finish()
						return
					}
					// No device time to hide behind here: refill the free
					// page queue synchronously before returning to user.
					k.stats.FaultRefills++
					var total int
					for _, s := range k.smuList {
						total += k.refillSMU(s)
					}
					k.kspan(ms, "fault-queue-refill", hw, c.RefillPerFrame*sim.Time(total), finish)
				})
			})
			return
		}
		// Another thread is already reading this page in (the page-lock
		// serialization of real kernels): block until it finishes, then
		// take the minor-fault path.
		if waiters, inflight := k.faultInflight[key]; inflight {
			ms.SetCause(trace.CauseOSMinor)
			k.faultInflight[key] = append(waiters, k.pageLockWaiter(ms, hw, as, va, vma, idx, done))
			return
		}
		k.faultInflight[key] = []func(){}
		k.stats.MajorFaults++
		ms.SetCause(trace.CauseOSMajor)
		if hwFailed {
			k.stats.HWBounceFaults++
		}
		k.allocFrame(hw, func(frame mem.FrameID) {
			k.kspan(ms, "page-alloc+io-submit", hw, c.PageAlloc+c.IOSubmit, func() {
				blk, err := vma.st.fsys.Block(vma.File, idx)
				if err != nil {
					panic(err)
				}
				ioDone := false
				ioStatus := nvme.StatusSuccess
				var onIO func(status uint16)
				k.submitIORetry(vma.st, hw, nvme.OpRead, blk.LBA, frame, ms, func(status uint16) {
					ioDone, ioStatus = true, status
					if onIO != nil {
						onIO(status)
					}
				})
				// The thread blocks: schedule away while the device works.
				hw.AccountContextSwitch()
				k.kspan(ms, "ctx-switch-out", hw, c.CtxSwitchOut, func() {
					if hwFailed {
						// Refill the free page queue, overlapped with the
						// in-flight device I/O (AIOS-style, Section IV-D).
						k.stats.FaultRefills++
						k.refillOnFault(hw)
					}
				})
				completion := func(status uint16) {
					// Interrupt → block-layer completion → wake + schedule
					// in → metadata + PTE install → return to user.
					hw.AccountContextSwitch()
					k.kspan(ms, "irq+complete+wake", hw, c.InterruptDelivery+c.IOCompletion+c.WakeSchedule, func() {
						if status != nvme.StatusSuccess {
							// The read is unrecoverable even after block-layer
							// retries: SIGBUS the faulting thread. Waiters on
							// the page lock observe the missing page and fail
							// their walks too — nobody hangs.
							k.sigbus(th, as, va, frame, ms)
							waiters := k.faultInflight[key]
							delete(k.faultInflight, key)
							done()
							for _, w := range waiters {
								w()
							}
							return
						}
						k.kspan(ms, "metadata+pte-install", hw, c.MetadataUpdate+c.PTEInstallReturn, func() {
							finish := func() {
								waiters := k.faultInflight[key]
								delete(k.faultInflight, key)
								done()
								for _, w := range waiters {
									w()
								}
							}
							// The SMU may have resolved this page for another
							// thread while our I/O was in flight (its miss
							// found a refilled queue after ours bounced);
							// installing over it would leak its frame.
							if e, found := as.Table.Lookup(va); found && e.Present() {
								if err := k.mem.Free(frame); err != nil {
									panic(err)
								}
								finish()
								return
							}
							pg := k.insertPage(vma.st, vma.File, idx, frame,
								mapping{as: as, va: va.PageBase(), vma: vma})
							k.finishMap(as, va, vma, pg)
							finish()
						})
					})
				}
				if ioDone {
					completion(ioStatus)
				} else {
					onIO = completion
				}
			})
		})
	})
}

// pageLockWaiter builds the continuation for a fault parked on another
// fault's page lock: when the holder finishes, the waiter takes the
// minor-fault path off the page cache. The page can be absent (the
// holder's I/O failed) or the PTE already resolved (the SMU beat the OS
// to it); both cases just return — the retried walk settles the access.
func (k *Kernel) pageLockWaiter(ms *trace.Miss, hw *cpu.HWThread, as *mmu.AddressSpace,
	va pagetable.VAddr, vma *VMA, idx int, done func()) func() {
	waitStart := k.eng.Now()
	return func() {
		ms.AddSpan(trace.LayerKernel, "page-lock-wait", waitStart, k.eng.Now())
		k.kspan(ms, "minor-fault", hw, k.cfg.Costs.MinorFault, func() {
			if e, found := as.Table.Lookup(va); found && e.Present() {
				done()
				return
			}
			if pg := k.lookupPage(vma.File, idx); pg != nil {
				k.mapPTE(as, va, vma, pg)
			}
			done()
		})
	}
}

// sigbus is the delivery model for an unrecoverable fault I/O: the paging
// request cannot be satisfied, so the kernel kills the faulting thread
// (real kernels raise SIGBUS for a failed file-backed fault). The frame
// allocated for the read is returned, and a still-unresolved PTE is
// poisoned to the plain not-present state so later accesses route straight
// to the OS path instead of re-driving hardware at a bad block.
func (k *Kernel) sigbus(th *Thread, as *mmu.AddressSpace, va pagetable.VAddr, frame mem.FrameID, ms *trace.Miss) {
	k.stats.SIGBUSKills++
	th.Killed = true
	if k.tracer != nil {
		k.tracer.NoteKill(ms, fmt.Sprintf("SIGBUS: unrecoverable fault I/O at %#x", uint64(va)), k.eng.Now())
	}
	if frame != mem.NoFrame {
		if err := k.mem.Free(frame); err != nil {
			panic(err)
		}
	}
	if _, _, pte, ok := as.Table.Walk(va); ok {
		if e := pte.Get(); !e.Present() {
			pte.Set(pagetable.MakeSwap(0, e.Prot()))
		}
	}
	k.mmu.TLB().Invalidate(as.ASID, va.PageNumber())
}

// mapPTE installs a present PTE for an existing page (minor fault).
func (k *Kernel) mapPTE(as *mmu.AddressSpace, va pagetable.VAddr, vma *VMA, pg *Page) {
	k.finishMap(as, va, vma, pg)
}

func (k *Kernel) finishMap(as *mmu.AddressSpace, va pagetable.VAddr, vma *VMA, pg *Page) {
	_, _, pte := as.Table.Ensure(va.PageBase())
	pte.Set(pagetable.MakePresent(pg.frame, vma.Prot, true))
	m := mapping{as: as, va: va.PageBase(), pte: pte, vma: vma}
	// Fix up the reverse map with the final PTE ref.
	replaced := false
	for i := range pg.maps {
		if pg.maps[i].as == as && pg.maps[i].va == m.va {
			pg.maps[i] = m
			replaced = true
			break
		}
	}
	if !replaced {
		pg.maps = append(pg.maps, m)
	}
}

// refillOnFault tops up every SMU free page queue from the allocator, on
// the faulting core, while the fault's device I/O is outstanding.
func (k *Kernel) refillOnFault(hw *cpu.HWThread) {
	var total int
	for _, s := range k.smuList {
		total += k.refillSMU(s)
	}
	if total > 0 {
		k.kexec(hw, k.cfg.Costs.RefillPerFrame*sim.Time(total), func() {})
	}
}

// refillSMU moves frames from the allocator into one SMU's free page
// queue(s), respecting the kpoold reserve. It returns the number of frames
// transferred (bookkeeping only; callers charge the time).
func (k *Kernel) refillSMU(s *smu.SMU) int {
	reserve := int(float64(k.mem.Frames()) * k.cfg.KpooldReserveFrac)
	total := 0
	for core, q := range s.Queues() {
		space := q.Space()
		avail := int(k.mem.FreeFrames()) - reserve
		if avail < space {
			space = avail
		}
		if space <= 0 {
			continue
		}
		frames := k.mem.AllocN(space)
		recs := make([]smu.FrameRecord, len(frames))
		for i, f := range frames {
			recs[i] = smu.RecordFor(f)
		}
		if n := s.RefillCore(core, recs); n != len(recs) {
			panic("kernel: free page queue rejected a sized refill")
		}
		total += len(recs)
	}
	return total
}

// swFault is the SW-only scheme (Fig. 17): the exception is taken, an early
// LBA-bit check routes to a function that emulates the SMU in software —
// PMSHR kept as a memory table, the NVMe command issued by the kernel, and
// monitor/mwait used to wait for the completion without a context switch.
// OS metadata stays batched via kpted, like HWDP.
func (k *Kernel) swFault(th *Thread, as *mmu.AddressSpace, va pagetable.VAddr,
	vma *VMA, idx int, ms *trace.Miss, done func()) {
	c := k.cfg.Costs
	hw := th.HW
	k.stats.SWFaults++
	ms.SetCause(trace.CauseSWMiss)
	k.kspan(ms, "exception+sw-check", hw, c.Exception+c.SWCheck, func() {
		_, _, pte, ok := as.Table.Walk(va)
		if !ok {
			panic("kernel: sw fault on unpopulated table")
		}
		addr := pte.Addr()
		if waiters, dup := k.swPMSHR[addr]; dup {
			// Emulated-PMSHR hit: wait for the original fault. mwait until
			// the completion broadcast.
			if ms != nil {
				waitStart, orig := k.eng.Now(), done
				done = func() {
					ms.AddSpan(trace.LayerKernel, "sw-pmshr-wait", waitStart, k.eng.Now())
					orig()
				}
			}
			k.swPMSHR[addr] = append(waiters, done)
			return
		}
		k.swPMSHR[addr] = nil
		k.kspan(ms, "sw-pmshr", hw, c.SWPMSHR, func() {
			k.allocFrame(hw, func(frame mem.FrameID) {
				blk := pte.Get().Block()
				if blk.LBA == pagetable.AnonFirstTouch {
					// Emulated SMU bypasses I/O for first-touch anonymous
					// pages, like the hardware.
					ms.SetCause(trace.CauseAnonZeroFill)
					k.kspan(ms, "sw-complete", hw, c.SWComplete, func() {
						pud, pmd, pteRef, _ := as.Table.Walk(va)
						pteRef.Set(pagetable.MakePresent(frame, vma.Prot, false))
						pagetable.MarkUnsynced(pud, pmd)
						waiters := k.swPMSHR[addr]
						delete(k.swPMSHR, addr)
						done()
						for _, w := range waiters {
							w()
						}
					})
					return
				}
				k.kspan(ms, "sw-submit", hw, c.SWSubmit, func() {
					th.beginStall(k) // mwait: core waits, issues nothing
					k.submitIORetry(vma.st, hw, nvme.OpRead, blk.LBA, frame, ms, func(status uint16) {
						// The interrupt handler touches the monitored
						// address; the mwait returns and the routine
						// finishes the miss.
						th.endStall()
						k.kspan(ms, "irq+sw-complete", hw, c.InterruptDelivery+c.SWComplete, func() {
							if status != nvme.StatusSuccess {
								// Unrecoverable: SIGBUS, and fail every fault
								// coalesced on the emulated PMSHR entry.
								k.sigbus(th, as, va, frame, ms)
								waiters := k.swPMSHR[addr]
								delete(k.swPMSHR, addr)
								done()
								for _, w := range waiters {
									w()
								}
								return
							}
							pud, pmd, pteRef, _ := as.Table.Walk(va)
							pteRef.Set(pagetable.MakePresent(frame, vma.Prot, false))
							pagetable.MarkUnsynced(pud, pmd)
							waiters := k.swPMSHR[addr]
							delete(k.swPMSHR, addr)
							done()
							for _, w := range waiters {
								w()
							}
						})
					})
				})
			})
		})
	})
}
