package smu

import (
	"fmt"

	"hwdp/internal/metrics"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
	"hwdp/internal/trace"
)

// QoS admission layer (fleet multi-tenancy). With QoS off — the default —
// the SMU admits requests strictly in arrival order (today's FIFO), and
// every run is byte-identical to a build without this file. SetQoS arms
// weighted-fair admission over the three shared resources tenants contend
// on: PMSHR slots, free page queue frames, and NVMe submission-queue
// occupancy. A request from a tenant over any of its caps parks in that
// tenant's FIFO instead of entering service; parked requests are re-admitted
// round-robin across tenants as resources free up (on every entry
// retirement and every free-queue refill). Liveness needs no timer: a
// tenant is only ever parked while it has at least one entry in service, so
// a finish — or a kpoold refill, for the frame gate — always follows to
// drain it.

// QoSConfig configures per-tenant weighted-fair admission. Weights are
// relative service shares (nil = equal); each tenant's PMSHR slot cap is
// its weighted share of the PMSHR (at least 1), and its in-flight NVMe
// command cap is 3/4 of that (at least 1), so a noisy tenant saturates its
// own share and parks instead of filling the device queue.
type QoSConfig struct {
	Tenants int
	Weights []float64
}

// qosWaiter is one parked admission: the request, its completion callback,
// and when it was parked (for the throttle-wait histogram and PSI).
type qosWaiter struct {
	req  Request
	done doneRef
	at   sim.Time
}

// qosState is the armed admission layer: per-tenant caps, current
// holdings, and the per-tenant park queues drained round-robin.
type qosState struct {
	cfg     QoSConfig
	slotCap []int // PMSHR slots a tenant may hold
	ioCap   []int // NVMe commands a tenant may have in flight
	slots   []int // PMSHR slots currently held
	ios     []int // NVMe commands currently in flight
	parked  [][]qosWaiter
	heads   []int
	rr      int // next tenant the drain scan starts from
	total   int // parked waiters across all tenants
}

// SetQoS arms (or, with Tenants < 2, disarms) the weighted-fair admission
// layer. Configure before the run starts: switching mid-run would strand
// holdings. Weights, when non-nil, must have one entry per tenant.
func (s *SMU) SetQoS(cfg QoSConfig) {
	if cfg.Tenants < 2 {
		s.qos = nil
		return
	}
	if cfg.Weights != nil && len(cfg.Weights) != cfg.Tenants {
		panic(fmt.Sprintf("smu: QoS weights length %d != %d tenants", len(cfg.Weights), cfg.Tenants))
	}
	n := cfg.Tenants
	q := &qosState{
		cfg:     cfg,
		slotCap: make([]int, n),
		ioCap:   make([]int, n),
		slots:   make([]int, n),
		ios:     make([]int, n),
		parked:  make([][]qosWaiter, n),
		heads:   make([]int, n),
	}
	sum := 0.0
	for t := 0; t < n; t++ {
		if cfg.Weights == nil {
			sum += 1
			continue
		}
		if cfg.Weights[t] <= 0 {
			panic(fmt.Sprintf("smu: QoS weight for tenant %d must be positive", t))
		}
		sum += cfg.Weights[t]
	}
	for t := 0; t < n; t++ {
		w := 1.0
		if cfg.Weights != nil {
			w = cfg.Weights[t]
		}
		share := int(w / sum * float64(s.entries))
		if share < 1 {
			share = 1
		}
		q.slotCap[t] = share
		q.ioCap[t] = share * 3 / 4
		if q.ioCap[t] < 1 {
			q.ioCap[t] = 1
		}
	}
	s.qos = q
	s.EnsureTenants(n)
}

// QoSEnabled reports whether weighted-fair admission is armed.
func (s *SMU) QoSEnabled() bool { return s.qos != nil }

// QoSWait exposes the throttle wait-time histogram (picoseconds): how long
// each QoS-parked request waited before re-admission.
func (s *SMU) QoSWait() *metrics.Histogram { return s.qosWait }

// QoSParked returns how many admissions are currently parked by the QoS
// layer (for the invariant watchdog: parked > 0 implies the owning tenants
// hold in-service entries, so Outstanding() > 0).
func (s *SMU) QoSParked() int {
	if s.qos == nil {
		return 0
	}
	return s.qos.total
}

// qosTenant clamps a request's tenant into the configured range (requests
// from tenants the config does not know are charged to tenant 0).
func (q *qosState) qosTenant(t int) int {
	if t < 0 || t >= q.cfg.Tenants {
		return 0
	}
	return t
}

// qosBlocked reports whether admitting the request now would take the
// tenant over one of its caps. The frame gate only applies to tenants
// already in service: the last Tenants-1 available frames are held back,
// one for each other tenant, so a noisy tenant cannot drain the queue dry
// and bounce everyone else's first miss to the OS.
//
//hwdp:hotpath
func (s *SMU) qosBlocked(req Request) bool {
	q := s.qos
	t := q.qosTenant(req.Tenant)
	if q.slots[t] >= q.slotCap[t] {
		return true
	}
	if req.Block.LBA != pagetable.AnonFirstTouch && q.ios[t] >= q.ioCap[t] {
		return true
	}
	if q.slots[t] >= 1 {
		fq := s.queueFor(req.Core)
		if fq.Len()+fq.Buffered() <= q.cfg.Tenants-1 {
			return true
		}
	}
	return false
}

// qosCharge records the resources an admitted request now holds; released
// by qosRelease when its entry retires.
//
//hwdp:hotpath
func (s *SMU) qosCharge(tenant int, io bool) {
	q := s.qos
	if q == nil {
		return
	}
	t := q.qosTenant(tenant)
	q.slots[t]++
	if io {
		q.ios[t]++
	}
}

// qosRelease returns a retiring entry's holdings.
//
//hwdp:hotpath
func (s *SMU) qosRelease(tenant int, io bool) {
	q := s.qos
	if q == nil {
		return
	}
	t := q.qosTenant(tenant)
	q.slots[t]--
	if io {
		q.ios[t]--
	}
}

// qosPark enqueues a request blocked by its tenant's caps.
//
//hwdp:hotpath
func (s *SMU) qosPark(req Request, done doneRef) {
	q := s.qos
	t := q.qosTenant(req.Tenant)
	now := s.eng.Now()
	//hwdp:ignore hotalloc the per-tenant park queue is drained to parked[t][:0] (retained capacity), so steady-state appends do not allocate
	q.parked[t] = append(q.parked[t], qosWaiter{req: req, done: done, at: now})
	q.total++
	s.tstat(req.Tenant).Throttled++
	req.Trace.Mark(trace.LayerSMU, "qos-throttle", now)
	s.psi.BeginStall(metrics.StallQoSThrottle, int64(now))
}

// qosDrain re-admits parked requests whose tenant is back under its caps,
// round-robin across tenants for fairness. Called after every entry
// retirement and free-queue refill; a no-op when QoS is off or nothing is
// parked. Each pass either re-admits a waiter (strict progress: the gates
// were just checked and re-admission is synchronous) or advances the scan,
// so the loop terminates.
//
//hwdp:hotpath
func (s *SMU) qosDrain() {
	q := s.qos
	if q == nil || q.total == 0 {
		return
	}
	n := q.cfg.Tenants
	for scanned := 0; scanned < n && q.total > 0; {
		t := q.rr % n
		if q.heads[t] < len(q.parked[t]) && !s.qosBlocked(q.parked[t][q.heads[t]].req) {
			w := q.parked[t][q.heads[t]]
			q.parked[t][q.heads[t]] = qosWaiter{}
			q.heads[t]++
			if q.heads[t] == len(q.parked[t]) {
				q.parked[t] = q.parked[t][:0]
				q.heads[t] = 0
			}
			q.total--
			now := s.eng.Now()
			w.req.Trace.AddSpan(trace.LayerSMU, "qos-throttle-wait", w.at, now)
			s.qosWait.Record(int64(now - w.at))
			s.psi.EndStall(metrics.StallQoSThrottle, int64(now), int64(now-w.at))
			q.rr = (t + 1) % n
			scanned = 0
			s.admit(w.req, w.done)
			continue
		}
		q.rr = (t + 1) % n
		scanned++
	}
}
