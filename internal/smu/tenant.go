package smu

// Per-tenant accounting. Every page-miss request carries the fleet tenant
// it serves (Request.Tenant, 0 on the single-tenant machine); the SMU
// mirrors its per-request counters into a per-tenant row so the fleet layer
// can report throttle/fallback/latency per tenant. The mirror is pure
// accounting — it never influences event ordering — so enabling it (it is
// always on) keeps every run byte-identical. The conservation invariant,
// property-tested in tenant_test.go: for each mirrored field, the sum over
// all tenants equals the matching global Stats counter.

// TenantStats is one tenant's share of the SMU counters. All fields except
// Submitted and Throttled mirror the same-named Stats fields; Submitted
// counts NVMe command submissions charged to the tenant (including
// retries), and Throttled counts admissions parked by the QoS layer.
type TenantStats struct {
	Handled      uint64
	Coalesced    uint64
	NoFreePage   uint64
	IOErrors     uint64
	Backlogged   uint64
	BufferMisses uint64
	AnonZeroFill uint64
	LateHits     uint64

	Retries      uint64
	Timeouts     uint64
	UECCFailures uint64

	FramesInstalled uint64
	FramesRecycled  uint64
	RaceYields      uint64

	Submitted uint64 // NVMe submissions for this tenant (incl. retries)
	Throttled uint64 // admissions parked by the QoS layer
}

// EnsureTenants preallocates per-tenant counter rows so the accounting
// path never grows the slice mid-run (the fleet harness calls it once per
// socket before starting load). Shrinking is not supported.
func (s *SMU) EnsureTenants(n int) {
	if n > len(s.tstats) {
		ns := make([]TenantStats, n)
		copy(ns, s.tstats)
		s.tstats = ns
	}
}

// Tenants returns how many tenant rows have been observed (at least 1; the
// single-tenant machine charges everything to tenant 0).
func (s *SMU) Tenants() int { return len(s.tstats) }

// TenantCounters returns a copy of one tenant's counter row; tenants never
// observed return a zero row.
func (s *SMU) TenantCounters(t int) TenantStats {
	if t < 0 || t >= len(s.tstats) {
		return TenantStats{}
	}
	return s.tstats[t]
}

// tstat returns the mutable counter row for a tenant, growing the table on
// first sight of a new tenant. Requests with a negative tenant (never
// produced by the kernel) are charged to tenant 0.
//
//hwdp:hotpath
func (s *SMU) tstat(t int) *TenantStats {
	if t < 0 {
		t = 0
	}
	if t >= len(s.tstats) {
		//hwdp:ignore hotalloc grows at most once per newly observed tenant; the fleet harness preallocates via EnsureTenants so steady-state misses never take this branch
		ns := make([]TenantStats, t+1)
		copy(ns, s.tstats)
		s.tstats = ns
	}
	return &s.tstats[t]
}
