package smu

import (
	"testing"

	"hwdp/internal/metrics"
	"hwdp/internal/pagetable"
)

// Flooding the PMSHR with more misses than it has slots must backlog the
// overflow, and every backlogged request's wait duration must land in the
// BacklogWait histogram (the Backlogged counter alone used to drop the
// durations).
func TestBacklogWaitHistogramRecorded(t *testing.T) {
	const extra = 8
	r := newRig(t, PMSHREntries+extra+8)
	psi := metrics.NewPSI()
	r.smu.SetPSI(psi)
	done := 0
	for i := 0; i < PMSHREntries+extra; i++ {
		req := r.request(pagetable.VAddr(0x1000+i*0x1000), uint64(100+i))
		r.smu.HandleMiss(req, func(res Result, _ pagetable.Entry) {
			if res != ResultOK {
				t.Fatalf("miss %v", res)
			}
			done++
		})
	}
	r.eng.Run()
	if done != PMSHREntries+extra {
		t.Fatalf("completed %d of %d", done, PMSHREntries+extra)
	}
	st := r.smu.Stats()
	if st.Backlogged != extra {
		t.Fatalf("backlogged = %d, want %d", st.Backlogged, extra)
	}
	h := r.smu.BacklogWait()
	if h.Count() != extra {
		t.Fatalf("histogram samples = %d, want %d (one per backlogged request)",
			h.Count(), extra)
	}
	if h.Min() <= 0 {
		t.Fatalf("min wait = %d, want > 0 (slots were all busy)", h.Min())
	}
	if h.Max() < h.Min() || h.Percentile(50) < h.Min() || h.Percentile(50) > h.Max() {
		t.Fatalf("wait distribution inconsistent: min %d p50 %d max %d",
			h.Min(), h.Percentile(50), h.Max())
	}
	// PSI observed the same waits: one stall per backlogged request, all
	// resolved, task-time equal to the histogram's sum.
	if got := psi.Stalls(metrics.StallPMSHRBacklog); got != extra {
		t.Fatalf("psi stalls = %d, want %d", got, extra)
	}
	if psi.Active(metrics.StallPMSHRBacklog) != 0 {
		t.Fatal("psi staller leaked")
	}
	if got := psi.TaskTime(metrics.StallPMSHRBacklog); got != h.Sum() {
		t.Fatalf("psi task time %d != histogram sum %d", got, h.Sum())
	}
	if r.smu.BacklogLen() != 0 {
		t.Fatalf("backlog not drained: %d", r.smu.BacklogLen())
	}
	checkConservation(t, r.smu)
}

// With fewer misses than PMSHR slots, no waits are recorded.
func TestBacklogWaitHistogramEmptyWithoutOverflow(t *testing.T) {
	r := newRig(t, 16)
	for i := 0; i < 4; i++ {
		req := r.request(pagetable.VAddr(0x1000+i*0x1000), uint64(10+i))
		r.smu.HandleMiss(req, func(Result, pagetable.Entry) {})
	}
	r.eng.Run()
	if n := r.smu.BacklogWait().Count(); n != 0 {
		t.Fatalf("unexpected backlog waits: %d", n)
	}
	if r.smu.Stats().Backlogged != 0 {
		t.Fatal("unexpected backlog")
	}
}
