package smu

import (
	"testing"

	"hwdp/internal/fault"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
	"hwdp/internal/trace"
)

// Edge cases of the retry/backoff schedule. The broad recovery flows
// (retry-to-success, exhaustion, UECC, drop+timeout) live in
// recovery_test.go; these pin the schedule arithmetic itself.

// TestBackoffScheduleExactShifts reads the retry-backoff spans off the miss
// trace and checks the exact Backoff << (attempt-1) progression.
func TestBackoffScheduleExactShifts(t *testing.T) {
	r := newRig(t, 8)
	p := RetryPolicy{MaxRetries: 3, Backoff: sim.Micro(10)}
	r.smu.SetRetryPolicy(p)
	r.dev.SetInjector(fault.NewInjector(sim.NewRand(1),
		fault.Rule{Kind: fault.Transient, Prob: 1}))
	req := r.request(0x9000, 21)
	req.Trace = &trace.Miss{}
	var res Result = -1
	r.smu.HandleMiss(req, func(rr Result, _ pagetable.Entry) { res = rr })
	r.eng.Run()
	if res != ResultIOError {
		t.Fatalf("res = %v, want io-error after exhaustion", res)
	}
	var backoffs []sim.Time
	for _, sp := range req.Trace.Spans {
		if sp.Name == "retry-backoff" {
			backoffs = append(backoffs, sp.End-sp.Start)
		}
	}
	want := []sim.Time{sim.Micro(10), sim.Micro(20), sim.Micro(40)}
	if len(backoffs) != len(want) {
		t.Fatalf("backoff spans = %v, want %d of them", backoffs, len(want))
	}
	for i := range want {
		if backoffs[i] != want[i] {
			t.Fatalf("backoff[%d] = %v, want %v (schedule = %v)", i, backoffs[i], want[i], backoffs)
		}
	}
	checkConservation(t, r.smu)
}

// TestZeroRetryPolicyFailsImmediately pins MaxRetries = 0: the first
// retryable failure goes straight to the OS exception path — no
// resubmission, no backoff delay.
func TestZeroRetryPolicyFailsImmediately(t *testing.T) {
	r := newRig(t, 8)
	r.smu.SetRetryPolicy(RetryPolicy{MaxRetries: 0, Backoff: sim.Micro(5)})
	r.dev.SetInjector(fault.NewInjector(sim.NewRand(1),
		fault.Rule{Kind: fault.Transient, Prob: 1, MaxInjections: 1}))
	req := r.request(0xA000, 22)
	var res Result = -1
	r.smu.HandleMiss(req, func(rr Result, _ pagetable.Entry) { res = rr })
	r.eng.Run()
	if res != ResultIOError {
		t.Fatalf("res = %v, want io-error with zero retry budget", res)
	}
	st := r.smu.Stats()
	if st.Retries != 0 {
		t.Fatalf("retries = %d, want 0", st.Retries)
	}
	if r.smu.Outstanding() != 0 {
		t.Fatal("PMSHR not drained")
	}
	checkConservation(t, r.smu)
}

// TestZeroCmdTimeoutNeverFires pins the documented default: CmdTimeout = 0
// disables the completion timeout, so a dropped command leaves the miss
// outstanding forever (the frame stays held, not leaked).
func TestZeroCmdTimeoutNeverFires(t *testing.T) {
	r := newRig(t, 8)
	if r.smu.Policy().CmdTimeout != 0 {
		t.Fatalf("default CmdTimeout = %v, want 0 (disabled)", r.smu.Policy().CmdTimeout)
	}
	r.dev.SetInjector(fault.NewInjector(sim.NewRand(1),
		fault.Rule{Kind: fault.Drop, Prob: 1, MaxInjections: 1}))
	req := r.request(0xB000, 23)
	fired := false
	r.smu.HandleMiss(req, func(Result, pagetable.Entry) { fired = true })
	r.eng.RunUntil(sim.Second)
	if fired {
		t.Fatal("miss completed despite a dropped command and no timeout")
	}
	if r.smu.Outstanding() != 1 {
		t.Fatalf("outstanding = %d, want 1 (miss stuck, not lost)", r.smu.Outstanding())
	}
	if got := r.smu.Stats().Timeouts; got != 0 {
		t.Fatalf("timeouts = %d, want 0 with the timer disabled", got)
	}
	checkConservation(t, r.smu)
}

// TestTimeoutLongerThanServiceNeverFires pins the non-degenerate direction:
// a generous CmdTimeout must not fire on a healthy command, and the armed
// timer must be collected, not leaked, when the completion lands first.
func TestTimeoutLongerThanServiceNeverFires(t *testing.T) {
	r := newRig(t, 8)
	p := DefaultRetryPolicy()
	p.CmdTimeout = sim.Millisecond // Z-SSD read is ~10.9 µs
	r.smu.SetRetryPolicy(p)
	req := r.request(0xC000, 24)
	var res Result = -1
	r.smu.HandleMiss(req, func(rr Result, _ pagetable.Entry) { res = rr })
	r.eng.Run()
	if res != ResultOK {
		t.Fatalf("res = %v, want ok", res)
	}
	st := r.smu.Stats()
	if st.Timeouts != 0 || st.Retries != 0 {
		t.Fatalf("stats = %+v, want no timeouts and no retries", st)
	}
	if r.eng.Now() >= sim.Millisecond {
		t.Fatalf("run ended at %v — the canceled timeout kept the clock alive", r.eng.Now())
	}
	checkConservation(t, r.smu)
}
