package smu

import (
	"testing"

	"hwdp/internal/mem"
	"hwdp/internal/nvme"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
	"hwdp/internal/ssd"
)

// TestMissPathAllocationBudget pins the steady-state allocation count of the
// full hardware miss path — SMU admission, PMSHR insertion, NVMe command
// issue, device service, completion snoop, page-table update and waiter
// notification — at zero. Every object on this path (events, PMSHR entries,
// admission carriers, device flights) is pooled, so after warm-up a miss
// must not touch the heap. AllocsPerRun's warm-up run fills the pools before
// the measured runs.
func TestMissPathAllocationBudget(t *testing.T) {
	eng := sim.NewEngine()
	prof := ssd.ZSSD
	prof.JitterFrac = 0
	dev := ssd.New(eng, prof, sim.NewRand(1), nil)
	dev.AddNamespace(nvme.Namespace{ID: 1, Blocks: 1 << 30})
	s := New(eng, 0, 1<<16)
	qp := nvme.NewQueuePair(1, 2*PMSHREntries)
	s.AttachDevice(0, dev, qp, 1)

	// Pre-build everything the driver loop needs so the measurement sees
	// only the miss path itself, not test scaffolding.
	tbl := pagetable.New()
	recs := make([]FrameRecord, 0, 1<<12)
	for i := 0; i < 1<<12; i++ {
		recs = append(recs, RecordFor(mem.FrameID(i)))
	}
	s.Refill(recs)
	const pages = 64
	type site struct {
		pud, pmd pagetable.EntryRef
		pte      pagetable.EntryRef
		blk      pagetable.BlockAddr
	}
	sites := make([]site, pages)
	for i := range sites {
		va := pagetable.VAddr(i) << 12
		pud, pmd, pte := tbl.Ensure(va)
		sites[i] = site{pud: pud, pmd: pmd, pte: pte, blk: pagetable.BlockAddr{LBA: uint64(i)}}
	}
	done := false
	complete := func(Result, pagetable.Entry) { done = true }
	iter := 0

	got := testing.AllocsPerRun(500, func() {
		if s.FreeQueue().Len()+s.FreeQueue().Buffered() < 8 {
			s.Refill(recs)
		}
		st := &sites[iter%pages]
		iter++
		st.pte.Set(pagetable.MakeLBA(st.blk, pagetable.Prot{}))
		done = false
		s.HandleMiss(Request{PUD: st.pud, PMD: st.pmd, PTE: st.pte, Block: st.blk}, complete)
		for !done && eng.Step() {
		}
		if !done {
			t.Fatal("miss never completed")
		}
	})
	if got != 0 {
		t.Fatalf("steady-state miss path allocates %.1f objects/op, want 0", got)
	}
}
