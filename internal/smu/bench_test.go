package smu

import (
	"testing"

	"hwdp/internal/mem"
	"hwdp/internal/nvme"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
	"hwdp/internal/ssd"
)

// BenchmarkHandleMiss measures simulator throughput for the full hardware
// miss path (SMU + device model), in simulated misses per wall second.
func BenchmarkHandleMiss(b *testing.B) {
	eng := sim.NewEngine()
	prof := ssd.ZSSD
	prof.JitterFrac = 0
	dev := ssd.New(eng, prof, sim.NewRand(1), nil)
	dev.AddNamespace(nvme.Namespace{ID: 1, Blocks: 1 << 30})
	s := New(eng, 0, 1<<16)
	qp := nvme.NewQueuePair(1, 2*PMSHREntries)
	s.AttachDevice(0, dev, qp, 1)
	tbl := pagetable.New()
	recs := make([]FrameRecord, 0, 1024)
	for i := 0; i < 1024; i++ {
		recs = append(recs, RecordFor(mem.FrameID(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.FreeQueue().Len()+s.FreeQueue().Buffered() < 8 {
			s.Refill(recs)
		}
		va := pagetable.VAddr(uint64(i)%(1<<30)) << 12
		pud, pmd, pte := tbl.Ensure(va)
		blk := pagetable.BlockAddr{LBA: uint64(i)}
		pte.Set(pagetable.MakeLBA(blk, pagetable.Prot{}))
		done := false
		s.HandleMiss(Request{PUD: pud, PMD: pmd, PTE: pte, Block: blk},
			func(Result, pagetable.Entry) { done = true })
		for !done && eng.Step() {
		}
	}
}

func BenchmarkFreeQueuePop(b *testing.B) {
	q := NewFreeQueue(1<<12, 16)
	recs := make([]FrameRecord, 1<<11)
	for i := range recs {
		recs[i] = RecordFor(mem.FrameID(i))
	}
	for i := 0; i < b.N; i++ {
		if _, _, ok := q.Pop(); !ok {
			q.Push(recs)
			q.Prefetch()
		}
	}
}

// TestBenchmarkMissShapeCompletes asserts the correctness of the loop
// BenchmarkHandleMiss measures: each miss completes with ResultOK and
// installs a resident-unsynced PTE naming an accepted frame.
func TestBenchmarkMissShapeCompletes(t *testing.T) {
	eng := sim.NewEngine()
	prof := ssd.ZSSD
	prof.JitterFrac = 0
	dev := ssd.New(eng, prof, sim.NewRand(1), nil)
	dev.AddNamespace(nvme.Namespace{ID: 1, Blocks: 1 << 30})
	s := New(eng, 0, 1<<16)
	qp := nvme.NewQueuePair(1, 2*PMSHREntries)
	s.AttachDevice(0, dev, qp, 1)
	recs := make([]FrameRecord, 0, 64)
	for i := 0; i < 64; i++ {
		recs = append(recs, RecordFor(mem.FrameID(i)))
	}
	s.Refill(recs)
	tbl := pagetable.New()
	for i := 0; i < 16; i++ {
		va := pagetable.VAddr(uint64(i)) << 12
		pud, pmd, pte := tbl.Ensure(va)
		blk := pagetable.BlockAddr{LBA: uint64(i)}
		pte.Set(pagetable.MakeLBA(blk, pagetable.Prot{}))
		done := false
		var got pagetable.Entry
		s.HandleMiss(Request{PUD: pud, PMD: pmd, PTE: pte, Block: blk},
			func(r Result, e pagetable.Entry) {
				if r != ResultOK {
					t.Fatalf("miss %d: result %v", i, r)
				}
				done, got = true, e
			})
		for !done && eng.Step() {
		}
		if !done {
			t.Fatalf("miss %d never completed", i)
		}
		if got.State() != pagetable.StateResidentUnsynced {
			t.Fatalf("miss %d installed state %v", i, got.State())
		}
	}
	if s.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after drain", s.Outstanding())
	}
}
