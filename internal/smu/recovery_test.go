package smu

import (
	"testing"

	"hwdp/internal/fault"
	"hwdp/internal/nvme"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
	"hwdp/internal/ssd"
)

// checkConservation asserts FramesAccepted == FramesInstalled + FramesHeld
// (the invariant the finish-path recycle exists to uphold).
func checkConservation(t *testing.T, s *SMU) {
	t.Helper()
	st := s.Stats()
	held := uint64(s.FramesHeld())
	if st.FramesAccepted != st.FramesInstalled+held {
		t.Fatalf("frame conservation broken: accepted %d != installed %d + held %d (recycled %d)",
			st.FramesAccepted, st.FramesInstalled, held, st.FramesRecycled)
	}
}

func TestTransientErrorRetriedToSuccess(t *testing.T) {
	r := newRig(t, 8)
	// First two attempts complete with a retryable status; the third
	// succeeds within the default 3-retry budget.
	r.dev.SetInjector(fault.NewInjector(sim.NewRand(1),
		fault.Rule{Kind: fault.Transient, Prob: 1, MaxInjections: 2}))
	req := r.request(0x1000, 9)
	var res Result = -1
	var pte pagetable.Entry
	r.smu.HandleMiss(req, func(rr Result, p pagetable.Entry) { res, pte = rr, p })
	r.eng.Run()
	if res != ResultOK {
		t.Fatalf("res = %v, want ok after retries", res)
	}
	if pte.State() != pagetable.StateResidentUnsynced {
		t.Fatalf("pte state = %v", pte.State())
	}
	st := r.smu.Stats()
	if st.Retries != 2 || st.IOErrors != 2 || st.Handled != 1 {
		t.Fatalf("stats = %+v, want 2 retries / 2 io errors / 1 handled", st)
	}
	if r.smu.Outstanding() != 0 {
		t.Fatal("PMSHR not drained")
	}
	checkConservation(t, r.smu)
}

func TestRetryExhaustionFailsToOSAndRecyclesFrame(t *testing.T) {
	r := newRig(t, 8)
	r.dev.SetInjector(fault.NewInjector(sim.NewRand(1),
		fault.Rule{Kind: fault.Transient, Prob: 1})) // every attempt fails
	req := r.request(0x2000, 10)
	var res Result = -1
	r.smu.HandleMiss(req, func(rr Result, _ pagetable.Entry) { res = rr })
	r.eng.Run()
	if res != ResultIOError {
		t.Fatalf("res = %v, want io-error after exhaustion", res)
	}
	st := r.smu.Stats()
	wantAttempts := uint64(1 + r.smu.Policy().MaxRetries)
	if st.Retries != wantAttempts-1 || st.IOErrors != wantAttempts {
		t.Fatalf("stats = %+v, want %d attempts", st, wantAttempts)
	}
	if st.FramesRecycled != 1 || st.FramesInstalled != 0 {
		t.Fatalf("recycled %d installed %d, want 1/0", st.FramesRecycled, st.FramesInstalled)
	}
	if r.smu.Outstanding() != 0 {
		t.Fatal("PMSHR leaked")
	}
	checkConservation(t, r.smu)
}

func TestUECCFailsWithoutRetry(t *testing.T) {
	r := newRig(t, 8)
	r.dev.SetInjector(fault.NewInjector(sim.NewRand(1),
		fault.Rule{Kind: fault.UECC, Prob: 1}))
	req := r.request(0x3000, 11)
	var res Result = -1
	r.smu.HandleMiss(req, func(rr Result, _ pagetable.Entry) { res = rr })
	r.eng.Run()
	if res != ResultIOError {
		t.Fatalf("res = %v", res)
	}
	st := r.smu.Stats()
	if st.Retries != 0 {
		t.Fatalf("retried an unrecoverable error %d times", st.Retries)
	}
	if st.UECCFailures != 1 || st.FramesRecycled != 1 {
		t.Fatalf("stats = %+v", st)
	}
	checkConservation(t, r.smu)
}

func TestDroppedCommandRecoveredByTimeout(t *testing.T) {
	r := newRig(t, 8)
	p := DefaultRetryPolicy()
	p.CmdTimeout = sim.Micro(50)
	r.smu.SetRetryPolicy(p)
	// The first command vanishes inside the device; the retry succeeds.
	r.dev.SetInjector(fault.NewInjector(sim.NewRand(1),
		fault.Rule{Kind: fault.Drop, Prob: 1, MaxInjections: 1}))
	req := r.request(0x4000, 12)
	var res Result = -1
	r.smu.HandleMiss(req, func(rr Result, _ pagetable.Entry) { res = rr })
	r.eng.Run()
	if res != ResultOK {
		t.Fatalf("res = %v, want ok via timeout + retry", res)
	}
	st := r.smu.Stats()
	if st.Timeouts != 1 || st.Retries != 1 {
		t.Fatalf("stats = %+v, want 1 timeout / 1 retry", st)
	}
	if ds := r.dev.Stats(); ds.Aborts != 0 {
		// The drop's completion event still fires (as a no-op) at service
		// time, which is before the 50 µs timeout, so the abort finds
		// nothing to cancel.
		t.Fatalf("aborts = %d, want 0 (drop already consumed)", ds.Aborts)
	}
	if r.dev.Inflight() != 0 {
		t.Fatalf("device inflight = %d", r.dev.Inflight())
	}
	checkConservation(t, r.smu)
}

func TestTimeoutAbortsSlowCommand(t *testing.T) {
	r := newRig(t, 8)
	p := DefaultRetryPolicy()
	p.CmdTimeout = sim.Micro(20) // Z-SSD read is ~10.9 µs; spike makes it ~109 µs
	r.smu.SetRetryPolicy(p)
	r.dev.SetInjector(fault.NewInjector(sim.NewRand(1),
		fault.Rule{Kind: fault.Spike, Prob: 1, MaxInjections: 1}))
	req := r.request(0x5000, 13)
	var res Result = -1
	r.smu.HandleMiss(req, func(rr Result, _ pagetable.Entry) { res = rr })
	r.eng.Run()
	if res != ResultOK {
		t.Fatalf("res = %v, want ok via abort + retry", res)
	}
	st := r.smu.Stats()
	if st.Timeouts != 1 || st.Retries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if ds := r.dev.Stats(); ds.Aborts != 1 {
		t.Fatalf("aborts = %d, want 1 (spiked command still in flight)", ds.Aborts)
	}
	checkConservation(t, r.smu)
}

func TestCoalescedWaitersAllObserveFailure(t *testing.T) {
	r := newRig(t, 8)
	r.dev.SetInjector(fault.NewInjector(sim.NewRand(1),
		fault.Rule{Kind: fault.UECC, Prob: 1}))
	req := r.request(0x6000, 14)
	var results []Result
	for i := 0; i < 4; i++ {
		r.smu.HandleMiss(req, func(rr Result, _ pagetable.Entry) {
			results = append(results, rr)
		})
	}
	r.eng.Run()
	if len(results) != 4 {
		t.Fatalf("%d of 4 waiters completed — some hang", len(results))
	}
	for i, rr := range results {
		if rr != ResultIOError {
			t.Fatalf("waiter %d observed %v, want io-error", i, rr)
		}
	}
	if st := r.smu.Stats(); st.Coalesced != 3 {
		t.Fatalf("coalesced = %d", st.Coalesced)
	}
	if r.smu.Outstanding() != 0 {
		t.Fatal("PMSHR leaked")
	}
	checkConservation(t, r.smu)
}

func TestBacklogDrainsThroughFailures(t *testing.T) {
	// A 2-entry PMSHR forces backlogging; with every I/O failing, slots
	// must still recycle so the backlog drains and every requester hears
	// back.
	eng := sim.NewEngine()
	prof := ssd.ZSSD
	prof.JitterFrac = 0
	dev := ssd.New(eng, prof, sim.NewRand(1), nil)
	dev.AddNamespace(nvme.Namespace{ID: 1, Blocks: 1 << 30})
	dev.SetInjector(fault.NewInjector(sim.NewRand(2),
		fault.Rule{Kind: fault.UECC, Prob: 1}))
	s := NewWithEntries(eng, 0, 4096, 2)
	qp := nvme.NewQueuePair(100, 2*PMSHREntries)
	s.AttachDevice(0, dev, qp, 1)
	s.Refill(recs(16, 1000))

	tbl := pagetable.New()
	const n = 6
	var results []Result
	for i := 0; i < n; i++ {
		va := pagetable.VAddr(0x10000 + i*0x1000)
		pud, pmd, pte := tbl.Ensure(va)
		blk := pagetable.BlockAddr{LBA: uint64(100 + i)}
		prot := pagetable.Prot{Write: true, User: true}
		pte.Set(pagetable.MakeLBA(blk, prot))
		s.HandleMiss(Request{PUD: pud, PMD: pmd, PTE: pte, Block: blk, Prot: prot},
			func(rr Result, _ pagetable.Entry) { results = append(results, rr) })
	}
	eng.Run()
	if len(results) != n {
		t.Fatalf("%d of %d requests completed", len(results), n)
	}
	for i, rr := range results {
		if rr != ResultIOError {
			t.Fatalf("request %d: %v", i, rr)
		}
	}
	st := s.Stats()
	if st.Backlogged == 0 {
		t.Fatal("no request was backlogged — PMSHR bound not exercised")
	}
	if st.FramesRecycled != n {
		t.Fatalf("recycled %d frames, want %d", st.FramesRecycled, n)
	}
	if s.Outstanding() != 0 {
		t.Fatal("PMSHR leaked")
	}
	checkConservation(t, s)
}

func TestRetryBackoffIsExponential(t *testing.T) {
	r := newRig(t, 8)
	p := RetryPolicy{MaxRetries: 3, Backoff: sim.Micro(10)}
	r.smu.SetRetryPolicy(p)
	r.dev.SetInjector(fault.NewInjector(sim.NewRand(1),
		fault.Rule{Kind: fault.Transient, Prob: 1}))
	req := r.request(0x7000, 15)
	var res Result = -1
	r.smu.HandleMiss(req, func(rr Result, _ pagetable.Entry) { res = rr })
	start := r.eng.Now()
	r.eng.Run()
	if res != ResultIOError {
		t.Fatalf("res = %v", res)
	}
	// 4 attempts, each ~one device read, plus backoffs 10+20+40 µs.
	elapsed := r.eng.Now() - start
	minWant := 4*ssd.ZSSD.Read4K + sim.Micro(10+20+40)
	if elapsed < minWant {
		t.Fatalf("elapsed %v < %v — backoff not applied exponentially", elapsed, minWant)
	}
	checkConservation(t, r.smu)
}
