// Package smu implements the Storage Management Unit — the paper's key
// architectural extension (Section III-C). The SMU receives page-miss
// requests from the MMU (the addresses of the PUD, PMD and PTE entries plus
// the device ID and LBA), coalesces duplicates in the PMSHR, takes a frame
// from the free page queue, drives the NVMe host controller to fetch the
// block, updates the page-table entries in hardware, and broadcasts
// completion so stalled page-table walks resume — all without raising an
// exception.
//
// The PMSHR is modeled the way the hardware builds it: a fixed array of
// slots searched associatively (a CAM scan) rather than a hash map, and
// slot state is pooled and recycled, so steady-state miss handling
// performs no heap allocations (pinned by TestMissPathAllocationBudget).
package smu

import (
	"fmt"

	"hwdp/internal/metrics"
	"hwdp/internal/nvme"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
	"hwdp/internal/ssd"
	"hwdp/internal/trace"
)

// PMSHREntries is the number of page-miss status holding registers; it
// bounds the SMU's concurrent outstanding I/O (the prototype's empirically
// chosen 32).
const PMSHREntries = 32

// PrefetchBufEntries is the free-page prefetch buffer capacity (16 <PFN,
// DMA address> pairs, Section VI-D).
const PrefetchBufEntries = 16

// Result is the outcome of a hardware page-miss handling attempt.
type Result int

// Results. ResultNoFreePage sends the miss back to the OS fault handler,
// which also refills the free page queue.
const (
	ResultOK Result = iota
	ResultNoFreePage
	ResultIOError
)

// String returns the SMU result's display name.
func (r Result) String() string {
	switch r {
	case ResultOK:
		return "ok"
	case ResultNoFreePage:
		return "no-free-page"
	case ResultIOError:
		return "io-error"
	}
	return "?"
}

// Request is a page-miss handling request from the MMU: "the addresses of
// the three entries (PUD entry, PMD entry, and PTE), device ID, and LBA".
// Core identifies the requesting logical core when the SMU runs per-core
// free page queues (Section V future work); with the default single queue
// it is ignored.
type Request struct {
	PUD, PMD, PTE pagetable.EntryRef
	Block         pagetable.BlockAddr
	Prot          pagetable.Prot
	Core          int

	// Tenant is the fleet tenant the miss is charged to (0 on the default
	// single-tenant machine): per-tenant counters mirror each handling
	// outcome, and the QoS layer — when armed — runs weighted-fair
	// admission on it.
	Tenant int

	// Trace is the miss's trace context (nil when tracing is disabled);
	// the SMU attaches its handling-phase spans to it.
	Trace *trace.Miss
}

// DoneFunc receives the handling outcome and, on success, the new PTE
// value (the broadcast payload: "the PTE address, the value of the PTE,
// and the result of the page miss handling").
type DoneFunc func(res Result, pte pagetable.Entry)

// DoneArgFunc is DoneFunc with a caller-supplied context argument, for
// callers that pool their continuation state (HandleMissArg): done(arg,
// res, pte) runs with arg passed back verbatim, so the callback can be a
// plain function or a once-bound method value instead of a per-miss
// closure.
type DoneArgFunc func(arg any, res Result, pte pagetable.Entry)

// doneRef is the SMU's internal completion callback: either a bare
// DoneFunc or a DoneArgFunc with its context. Storing the pair (instead of
// wrapping the arg form in a DoneFunc) keeps HandleMissArg closure-free.
type doneRef struct {
	fn  DoneFunc
	afn DoneArgFunc
	arg any
}

func (d doneRef) call(res Result, pte pagetable.Entry) {
	if d.afn != nil {
		d.afn(d.arg, res, pte)
		return
	}
	d.fn(res, pte)
}

// TraceFunc observes the per-phase latencies of miss handling, used to
// regenerate the Fig. 11(b) timeline.
type TraceFunc func(phase string, dur sim.Time)

// Stats are the SMU's event counters.
type Stats struct {
	Handled      uint64 // misses fully handled in hardware
	Coalesced    uint64 // duplicate requests merged into an existing entry
	NoFreePage   uint64 // failures bounced to the OS
	IOErrors     uint64 // error completions observed (including retried ones)
	Backlogged   uint64 // requests that waited for a PMSHR slot
	BufferMisses uint64 // free-page pops that exposed a memory round trip
	AnonZeroFill uint64 // first-touch anonymous misses served without I/O
	LateHits     uint64 // requests whose PTE resolved before admission

	// Error-recovery counters (Section V "Long Latency I/O" degradation).
	Retries      uint64 // command resubmissions after a retryable failure
	Timeouts     uint64 // completion timeouts (command presumed lost)
	UECCFailures uint64 // unrecoverable media errors (retries never help)

	// Frame conservation. Every frame the OS hands the SMU is either
	// installed into a PTE or still held (free queues, prefetch buffers, or
	// a PMSHR entry): FramesAccepted == FramesInstalled + FramesHeld().
	FramesAccepted  uint64 // records accepted by Refill/RefillCore
	FramesInstalled uint64 // frames installed into PTEs (I/O and anon)
	FramesRecycled  uint64 // frames returned to the free queue on failure
	RaceYields      uint64 // installs yielded to an OS-resolved PTE (frame recycled)
}

// RetryPolicy bounds the SMU's hardware error recovery. On a retryable
// completion status the command is resubmitted after Backoff << (attempt-1)
// (exponential backoff), up to MaxRetries resubmissions; exhaustion fails
// the walk to the OS exception path. CmdTimeout, when nonzero, bounds how
// long the SMU waits for any completion after ringing the doorbell — lost
// commands (no completion at all) are aborted and treated as retryable.
// CmdTimeout is zero (disabled) by default: a sensible bound depends on the
// device profile and workload queue depths, so the harness opts in.
type RetryPolicy struct {
	MaxRetries int
	Backoff    sim.Time
	CmdTimeout sim.Time
}

// DefaultRetryPolicy is the configuration used by New: up to 3
// resubmissions with 5 µs initial backoff, no completion timeout.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 3, Backoff: sim.Micro(5)}
}

type pmshrEntry struct {
	idx     int
	pteAddr pagetable.EntryAddr
	req     Request
	frame   FrameRecord
	waiters []doneRef

	// I/O-path state (zero for anonymous zero-fill entries).
	dev      *devSlot
	cid      uint16 // current command ID; 0 = no command in flight
	attempts int    // submissions so far, including the first
	timeout  *sim.Event
	newPTE   pagetable.Entry // installed PTE, staged between PT update and notify
	// installed marks that this entry's frame was written into the PTE;
	// finish recycles the frame otherwise (failure, or the PT update
	// yielded to a concurrently OS-installed translation).
	installed bool
}

type devSlot struct {
	qp   *nvme.QueuePair
	dev  *ssd.Device
	nsid uint32
}

// pendingReq carries a request across the admission latency without
// building a per-miss closure; carriers are pooled.
type pendingReq struct {
	req  Request
	done doneRef
}

type backlogItem struct {
	req  Request
	done doneRef
	at   sim.Time // when the request began waiting for a PMSHR slot
}

type barrier struct {
	waiting map[pagetable.EntryAddr]bool
	done    func()
}

// SMU is one per-socket storage management unit.
type SMU struct {
	SID     uint8
	eng     *sim.Engine
	timing  Timing
	entries int

	slots       []*pmshrEntry // the PMSHR proper: nil = free slot
	freeIdx     []int
	nextCID     uint16
	policy      RetryPolicy
	backlog     []backlogItem
	backlogHead int
	freeqs      []*FreeQueue // one, or one per logical core
	devs        [8]*devSlot
	stats       Stats
	barriers    []*barrier

	// backlogWait records how long each backlogged request waited for a
	// PMSHR slot (picoseconds); psi, when set, feeds the same waits into
	// machine-wide pressure-stall accounting. Both are recording-only, so
	// they never affect event ordering.
	backlogWait *metrics.Histogram
	psi         *metrics.PSI

	// tstats mirrors the per-request counters per fleet tenant (index =
	// Request.Tenant; always at least tenant 0). qos, when non-nil, is the
	// armed weighted-fair admission layer and qosWait its throttle-wait
	// histogram; nil (the default) keeps admission strictly FIFO and every
	// run byte-identical.
	tstats  []TenantStats
	qos     *qosState
	qosWait *metrics.Histogram

	// Pools: PMSHR entry state, admission carriers, and completion-notice
	// carriers are recycled so the steady-state miss path allocates
	// nothing.
	entryPool  []*pmshrEntry
	reqPool    []*pendingReq
	noticePool []*doneNotice

	// Pre-bound event callbacks (built once in NewPerCore) so scheduling a
	// pipeline stage costs no closure allocation.
	admitFn    func(any)
	issueFn    func(any)
	doorbellFn func(any)
	timeoutFn  func(any)
	ptUpdateFn func(any)
	notifyFn   func(any)
	anonFillFn func(any)
	noticeFn   func(any)

	// Tracer, when set, observes each handling phase (single-miss
	// experiments).
	Tracer TraceFunc
}

// New builds an SMU with the given free-page-queue ring depth and the
// prototype's 32 PMSHR entries.
func New(eng *sim.Engine, sid uint8, freeQueueDepth int) *SMU {
	return NewWithEntries(eng, sid, freeQueueDepth, PMSHREntries)
}

// NewWithEntries builds an SMU with a custom PMSHR size (the design-space
// ablation sweeps it; the prototype "empirically chooses 32 entries").
func NewWithEntries(eng *sim.Engine, sid uint8, freeQueueDepth, entries int) *SMU {
	if entries < 1 {
		panic("smu: need at least one PMSHR entry")
	}
	return NewPerCore(eng, sid, freeQueueDepth, entries, 1)
}

// NewPerCore builds an SMU with one free page queue per logical core
// (cores > 1) — the paper's Section V option for enforcing per-thread
// memory-management policy. The ring depth is split evenly.
func NewPerCore(eng *sim.Engine, sid uint8, freeQueueDepth, entries, cores int) *SMU {
	if entries < 1 {
		panic("smu: need at least one PMSHR entry")
	}
	if cores < 1 {
		panic("smu: need at least one free page queue")
	}
	s := &SMU{
		SID:         sid,
		eng:         eng,
		timing:      DefaultTiming(),
		entries:     entries,
		slots:       make([]*pmshrEntry, entries),
		nextCID:     1,
		policy:      DefaultRetryPolicy(),
		backlogWait: metrics.NewHistogram(),
		qosWait:     metrics.NewHistogram(),
		tstats:      make([]TenantStats, 1),
	}
	per := freeQueueDepth / cores
	if per < 2 {
		per = 2
	}
	for i := 0; i < cores; i++ {
		s.freeqs = append(s.freeqs, NewFreeQueue(per, PrefetchBufEntries))
	}
	for i := entries - 1; i >= 0; i-- {
		s.freeIdx = append(s.freeIdx, i)
	}
	s.admitFn = func(a any) {
		c := a.(*pendingReq)
		req, done := c.req, c.done
		s.putReq(c)
		s.admit(req, done)
	}
	s.noticeFn = func(a any) {
		n := a.(*doneNotice)
		done, res, pte := n.done, n.res, n.pte
		s.putNotice(n)
		done.call(res, pte)
	}
	s.issueFn = func(a any) { s.issue(a.(*pmshrEntry)) }
	s.doorbellFn = func(a any) {
		// The command itself is already crossing the doorbell wire (issue
		// hands it to Device.Deliver); this stage models the SMU-side tail
		// of the doorbell write. Opportunistically refill the prefetch
		// buffer during the device I/O time — this is what hides the memory
		// latency of free-page fetches.
		s.queueFor(a.(*pmshrEntry).req.Core).Prefetch()
	}
	s.timeoutFn = func(a any) { s.onTimeout(a.(*pmshrEntry)) }
	s.ptUpdateFn = func(a any) { s.ptUpdate(a.(*pmshrEntry)) }
	s.notifyFn = func(a any) {
		e := a.(*pmshrEntry)
		s.stats.Handled++
		s.tstat(e.req.Tenant).Handled++
		s.finish(e, ResultOK, e.newPTE)
	}
	s.anonFillFn = func(a any) { s.anonFill(a.(*pmshrEntry)) }
	return s
}

// queueFor picks the free page queue serving a core.
func (s *SMU) queueFor(core int) *FreeQueue {
	if core < 0 {
		core = 0
	}
	return s.freeqs[core%len(s.freeqs)]
}

// Queues returns the per-core free page queues (length 1 for the default
// global-queue configuration).
func (s *SMU) Queues() []*FreeQueue { return s.freeqs }

// Entries returns the PMSHR size.
func (s *SMU) Entries() int { return s.entries }

// Timing returns the component latency model.
func (s *SMU) Timing() Timing { return s.timing }

// Stats returns a copy of the counters.
func (s *SMU) Stats() Stats { return s.stats }

// SetRetryPolicy replaces the error-recovery policy (configure before the
// run starts).
func (s *SMU) SetRetryPolicy(p RetryPolicy) { s.policy = p }

// Policy returns the active error-recovery policy.
func (s *SMU) Policy() RetryPolicy { return s.policy }

// FramesHeld counts the free frames currently in the SMU's custody: free
// queue rings, prefetch buffers, and PMSHR entries mid-handling. Together
// with the stats it states the conservation invariant
// FramesAccepted == FramesInstalled + FramesHeld.
func (s *SMU) FramesHeld() int {
	held := s.Outstanding()
	for _, q := range s.freeqs {
		held += q.Len() + q.Buffered()
	}
	return held
}

// FreeQueue exposes the first free page queue (the only one in the default
// configuration).
func (s *SMU) FreeQueue() *FreeQueue { return s.freeqs[0] }

// Refill pushes frame records into the first free page queue (producer
// side: the OS page-refill routine or kpoold) and lets the hardware
// eagerly prefetch. It returns how many records were accepted.
func (s *SMU) Refill(recs []FrameRecord) int { return s.RefillCore(0, recs) }

// RefillCore pushes frame records into one core's free page queue and
// drains any QoS-parked admissions the new frames unblock.
func (s *SMU) RefillCore(core int, recs []FrameRecord) int {
	q := s.queueFor(core)
	n := q.Push(recs)
	s.stats.FramesAccepted += uint64(n)
	q.Prefetch()
	s.qosDrain()
	return n
}

// Outstanding returns the number of in-flight hardware-handled misses.
func (s *SMU) Outstanding() int { return s.entries - len(s.freeIdx) }

// BacklogLen returns how many requests are currently waiting for a PMSHR
// slot. The invariant watchdog uses it for the no-lost-wakeup check: a
// non-empty backlog with zero outstanding misses means nobody will ever
// admit the waiters.
func (s *SMU) BacklogLen() int { return len(s.backlog) - s.backlogHead }

// BacklogWait exposes the PMSHR backlog wait-time histogram (picoseconds):
// how long each request that found all slots busy waited for admission.
func (s *SMU) BacklogWait() *metrics.Histogram { return s.backlogWait }

// SetPSI attaches machine-wide pressure-stall accounting; backlog waits
// are reported as StallPMSHRBacklog stalls. Nil (the default) disables.
func (s *SMU) SetPSI(p *metrics.PSI) { s.psi = p }

// lookup scans the PMSHR slots for an outstanding miss on a PTE — the CAM
// lookup the hardware performs on every request.
func (s *SMU) lookup(addr pagetable.EntryAddr) *pmshrEntry {
	for _, e := range s.slots {
		if e != nil && e.pteAddr == addr {
			return e
		}
	}
	return nil
}

// lookupCID scans the slots for the entry owning an in-flight command ID.
func (s *SMU) lookupCID(cid uint16) *pmshrEntry {
	for _, e := range s.slots {
		if e != nil && e.cid == cid {
			return e
		}
	}
	return nil
}

// getEntry takes a pooled PMSHR entry record (or allocates the pool's
// first few).
//
//hwdp:pool acquire entry
func (s *SMU) getEntry() *pmshrEntry {
	if n := len(s.entryPool); n > 0 {
		e := s.entryPool[n-1]
		s.entryPool[n-1] = nil
		s.entryPool = s.entryPool[:n-1]
		return e
	}
	return &pmshrEntry{}
}

// putEntry clears an entry and returns it to the pool.
//
//hwdp:pool release entry
func (s *SMU) putEntry(e *pmshrEntry) {
	w := e.waiters
	for i := range w {
		w[i] = doneRef{}
	}
	*e = pmshrEntry{}
	e.waiters = w[:0]
	s.entryPool = append(s.entryPool, e)
}

// getReq takes a pooled admission carrier.
//
//hwdp:pool acquire req
func (s *SMU) getReq() *pendingReq {
	if n := len(s.reqPool); n > 0 {
		c := s.reqPool[n-1]
		s.reqPool[n-1] = nil
		s.reqPool = s.reqPool[:n-1]
		return c
	}
	return &pendingReq{}
}

// putReq clears an admission carrier and returns it to the pool.
//
//hwdp:pool release req
func (s *SMU) putReq(c *pendingReq) {
	c.req, c.done = Request{}, doneRef{}
	s.reqPool = append(s.reqPool, c)
}

// doneNotice carries a deferred done(res, pte) callback through the
// engine's pooled argument path, replacing a closure allocation on the
// late-hit, no-free-page, and I/O-error notify paths.
type doneNotice struct {
	done doneRef
	res  Result
	pte  pagetable.Entry
}

// getNotice takes a pooled completion-notice carrier.
//
//hwdp:pool acquire notice
func (s *SMU) getNotice() *doneNotice {
	if n := len(s.noticePool); n > 0 {
		c := s.noticePool[n-1]
		s.noticePool[n-1] = nil
		s.noticePool = s.noticePool[:n-1]
		return c
	}
	return &doneNotice{}
}

// putNotice clears a notice carrier and returns it to the pool.
//
//hwdp:pool release notice
func (s *SMU) putNotice(n *doneNotice) {
	*n = doneNotice{}
	s.noticePool = append(s.noticePool, n)
}

// notifySchedule fires done(res, pte) after the SMU-to-core notify latency
// without allocating a closure environment.
//
//hwdp:hotpath
func (s *SMU) notifySchedule(done doneRef, res Result, pte pagetable.Entry) {
	n := s.getNotice()
	n.done, n.res, n.pte = done, res, pte
	s.eng.PostArg(s.timing.Notify, s.noticeFn, n)
}

// AttachDevice initializes one set of NVMe queue descriptor registers for a
// block device: the isolated queue pair the OS allocated, the device it
// belongs to, and the namespace to address. Interrupts are disabled on the
// pair; completions arrive via the completion unit's memory snoop.
func (s *SMU) AttachDevice(devID uint8, dev *ssd.Device, qp *nvme.QueuePair, nsid uint32) {
	if devID >= 8 {
		panic(fmt.Sprintf("smu: device ID %d out of range", devID))
	}
	if s.devs[devID] != nil {
		panic(fmt.Sprintf("smu: device %d already attached", devID))
	}
	qp.InterruptsEnabled = false
	slot := &devSlot{qp: qp, dev: dev, nsid: nsid}
	s.devs[devID] = slot
	// Evented transport: the CQ write plus the completion unit's
	// protocol-handling latency ride the wire as the attachment's irq, so
	// the notify callback runs at what used to be the post-snoop handle
	// time — possibly on a different lane than the device.
	dev.AttachLane(qp, s.eng, s.timing.CQHandle, func(cp nvme.Completion) {
		s.trace("CQ handle", s.timing.CQHandle)
		s.cqHandle(slot)
	})
}

func (s *SMU) trace(phase string, dur sim.Time) {
	if s.Tracer != nil {
		s.Tracer(phase, dur)
	}
}

// HandleMiss processes one page-miss request. done is invoked (in virtual
// time) when handling concludes; for coalesced requests it is invoked when
// the original miss completes.
//
//hwdp:hotpath
func (s *SMU) HandleMiss(req Request, done DoneFunc) {
	s.handleMiss(req, doneRef{fn: done})
}

// HandleMissArg is HandleMiss for callers that pre-bind their completion
// callback: done(arg, res, pte) runs with the caller-supplied arg, letting
// the caller keep its continuation state in a pooled record instead of
// allocating a closure per miss (the MMU's walk continuations use this).
//
//hwdp:hotpath
func (s *SMU) HandleMissArg(req Request, done DoneArgFunc, arg any) {
	s.handleMiss(req, doneRef{afn: done, arg: arg})
}

//hwdp:hotpath
func (s *SMU) handleMiss(req Request, done doneRef) {
	t := s.timing
	lookupCost := 2*t.ReqRegWrite + t.CAMLookup
	s.trace("request regs + CAM lookup", lookupCost)
	now := s.eng.Now()
	req.Trace.AddSpan(trace.LayerSMU, "req-regs+cam", now, now+lookupCost)
	c := s.getReq()
	c.req, c.done = req, done
	s.eng.PostArg(lookupCost, s.admitFn, c)
}

//hwdp:hotpath
func (s *SMU) admit(req Request, done doneRef) {
	addr := req.PTE.Addr()
	if e := s.lookup(addr); e != nil {
		// Outstanding miss to the same page: coalesce; the pending walk
		// resumes on the broadcast.
		if req.Trace != nil {
			at, ms, orig := s.eng.Now(), req.Trace, done
			//hwdp:ignore hotalloc closure only built when tracing is on (single-miss experiments), never in steady state
			done = doneRef{fn: func(res Result, pte pagetable.Entry) {
				ms.AddSpan(trace.LayerSMU, "pmshr-coalesce-wait", at, s.eng.Now())
				orig.call(res, pte)
			}}
		}
		//hwdp:ignore hotalloc waiters backing array is retained by the pooled entry (putEntry keeps capacity), so steady-state appends do not allocate
		e.waiters = append(e.waiters, done)
		s.stats.Coalesced++
		s.tstat(req.Tenant).Coalesced++
		return
	}
	if cur := req.PTE.Get(); cur.Present() {
		// The miss resolved between the requester's page-table walk and
		// this lookup (the original PMSHR entry already retired). Reading
		// the PTE — which the page-table updater does anyway — catches the
		// race; answer with the installed translation instead of fetching
		// a duplicate frame (which would alias the page).
		s.stats.LateHits++
		s.tstat(req.Tenant).LateHits++
		now := s.eng.Now()
		req.Trace.AddSpan(trace.LayerSMU, "late-hit-notify", now, now+s.timing.Notify)
		s.notifySchedule(done, ResultOK, cur)
		return
	}

	if s.qos != nil && s.qosBlocked(req) {
		// The tenant is over one of its weighted-fair caps: park in its
		// QoS queue; entry retirements and free-queue refills drain it.
		s.qosPark(req, done)
		return
	}

	if len(s.freeIdx) == 0 {
		// All PMSHRs busy: the walk stays pending until a slot frees.
		//hwdp:ignore hotalloc backlog only grows under PMSHR oversubscription and finish recycles it to backlog[:0], retaining capacity
		s.backlog = append(s.backlog, backlogItem{req, done, s.eng.Now()})
		s.stats.Backlogged++
		s.tstat(req.Tenant).Backlogged++
		s.psi.BeginStall(metrics.StallPMSHRBacklog, int64(s.eng.Now()))
		return
	}

	if req.Block.LBA == pagetable.AnonFirstTouch {
		s.admitAnon(req, done)
		return
	}

	dev := s.devs[req.Block.DeviceID]
	if dev == nil {
		s.stats.IOErrors++
		s.tstat(req.Tenant).IOErrors++
		s.notifySchedule(done, ResultIOError, 0)
		return
	}

	freeq := s.queueFor(req.Core)
	rec, fromBuf, ok := freeq.Pop()
	if !ok {
		// Free page queue empty: invalidate and fail to the OS, which
		// handles the fault and refills the queue.
		s.stats.NoFreePage++
		s.tstat(req.Tenant).NoFreePage++
		s.notifySchedule(done, ResultNoFreePage, 0)
		return
	}
	fetchCost := s.timing.FreePageHit
	if !fromBuf {
		fetchCost = s.timing.FreePageMem
		s.stats.BufferMisses++
		s.tstat(req.Tenant).BufferMisses++
	}
	s.trace("free page fetch", fetchCost)

	s.qosCharge(req.Tenant, true)
	idx := s.freeIdx[len(s.freeIdx)-1]
	s.freeIdx = s.freeIdx[:len(s.freeIdx)-1]
	e := s.getEntry()
	e.idx, e.pteAddr, e.req, e.frame, e.dev = idx, addr, req, rec, dev
	//hwdp:ignore hotalloc waiters backing array is retained by the pooled entry (putEntry keeps capacity), so steady-state appends do not allocate
	e.waiters = append(e.waiters, done)
	s.slots[idx] = e

	t := s.timing
	s.trace("PMSHR write", t.PMSHRWrite)
	s.trace("NVMe cmd write", t.CmdWrite)
	s.trace("SQ doorbell", t.Doorbell)
	now := s.eng.Now()
	req.Trace.AddSpan(trace.LayerSMU, "free-page-fetch", now, now+fetchCost)
	req.Trace.AddSpan(trace.LayerSMU, "pmshr-write", now+fetchCost, now+fetchCost+t.PMSHRWrite)
	req.Trace.AddSpan(trace.LayerNVMe, "nvme-cmd-write", now+fetchCost+t.PMSHRWrite, now+fetchCost+t.PMSHRWrite+t.CmdWrite)
	issueCost := fetchCost + t.PMSHRWrite + t.CmdWrite
	s.eng.PostArg(issueCost, s.issueFn, e)
}

// allocCID hands out a command identifier not currently in flight. Each
// submission — including retries of the same miss — gets a fresh CID, so a
// late completion of an abandoned attempt (e.g. one that raced its own
// timeout) can never be mistaken for the retry's completion.
//
//hwdp:hotpath
func (s *SMU) allocCID() uint16 {
	for {
		cid := s.nextCID
		s.nextCID++
		if s.nextCID == 0 {
			s.nextCID = 1
		}
		if cid == 0 {
			continue
		}
		if s.lookupCID(cid) == nil {
			return cid
		}
	}
}

// issue submits (or resubmits) the read command for a PMSHR entry and arms
// the completion timeout.
//
//hwdp:hotpath
func (s *SMU) issue(e *pmshrEntry) {
	e.attempts++
	e.cid = s.allocCID()
	cmd := nvme.Command{
		Opcode: nvme.OpRead,
		CID:    e.cid,
		NSID:   e.dev.nsid,
		PRP1:   e.frame.DMA,
		SLBA:   e.req.Block.LBA,
		NLB:    0, // one 4 KiB block, no PRP list
		Tenant: uint16(e.req.Tenant),
		Trace:  e.req.Trace,
	}
	s.tstat(e.req.Tenant).Submitted++
	if err := e.dev.qp.Submit(cmd); err != nil {
		// Isolated queue sized to PMSHR depth: overflow is a model bug.
		panic(fmt.Sprintf("smu: submit failed: %v", err))
	}
	t := s.timing
	now := s.eng.Now()
	e.req.Trace.AddSpan(trace.LayerNVMe, "sq-doorbell", now, now+t.Doorbell)
	// The host side owns the rings on the evented transport: pop the entry
	// just submitted and put it on the doorbell wire. Deliver before the
	// doorbell-tail stage so device service keeps its legacy ordering
	// (service, then prefetch) when both land on the same timestamp.
	wcmd, ok := e.dev.qp.PopSQ()
	if !ok {
		panic("smu: submitted command missing from SQ")
	}
	e.dev.dev.Deliver(e.dev.qp.ID, wcmd, t.Doorbell)
	s.eng.PostArg(t.Doorbell, s.doorbellFn, e)
	if s.policy.CmdTimeout > 0 {
		// Pooled handle: onTimeout nils e.timeout as its first action and
		// every Cancel site nils it immediately after, so the handle never
		// outlives the event.
		e.timeout = s.eng.AtArgPooled(now+t.Doorbell+s.policy.CmdTimeout, s.timeoutFn, e)
	}
}

// onTimeout fires when a submitted command produced no completion within
// the policy window: the command is presumed lost inside the device. The
// SMU aborts it (guaranteeing no late DMA into the frame if the abort
// lands) and runs the retry policy with a host-synthesized timeout status.
//
//hwdp:hotpath
func (s *SMU) onTimeout(e *pmshrEntry) {
	e.timeout = nil
	s.stats.Timeouts++
	s.tstat(e.req.Tenant).Timeouts++
	e.req.Trace.Mark(trace.LayerNVMe, "cmd-timeout", s.eng.Now())
	e.dev.dev.Abort(e.dev.qp.ID, e.cid)
	s.recover(e, nvme.StatusHostTimeout)
}

// recover applies the retry policy to a failed attempt: retryable statuses
// are resubmitted with exponential backoff until the budget is spent;
// everything else — and exhaustion — fails the walk to the OS exception
// path (the paper's graceful degradation), recycling the frame via finish.
//
//hwdp:hotpath
func (s *SMU) recover(e *pmshrEntry, status uint16) {
	if nvme.StatusRetryable(status) && e.attempts <= s.policy.MaxRetries {
		e.cid = 0
		backoff := s.policy.Backoff << (e.attempts - 1)
		s.stats.Retries++
		s.tstat(e.req.Tenant).Retries++
		now := s.eng.Now()
		e.req.Trace.AddSpan(trace.LayerSMU, "retry-backoff", now, now+backoff)
		s.eng.PostArg(backoff, s.issueFn, e)
		return
	}
	if status == nvme.StatusUncorrectable || status == nvme.StatusWriteFault {
		s.stats.UECCFailures++
		s.tstat(e.req.Tenant).UECCFailures++
	}
	s.finish(e, ResultIOError, 0)
}

// admitAnon serves a first-touch anonymous miss: the reserved LBA constant
// tells the SMU to bypass I/O entirely (Section V). A zero-filled frame
// from the free page queue is installed directly; the whole miss costs a
// handful of cycles instead of a device access.
//
//hwdp:hotpath
func (s *SMU) admitAnon(req Request, done doneRef) {
	freeq := s.queueFor(req.Core)
	rec, fromBuf, ok := freeq.Pop()
	if !ok {
		s.stats.NoFreePage++
		s.tstat(req.Tenant).NoFreePage++
		s.notifySchedule(done, ResultNoFreePage, 0)
		return
	}
	fetchCost := s.timing.FreePageHit
	if !fromBuf {
		fetchCost = s.timing.FreePageMem
		s.stats.BufferMisses++
		s.tstat(req.Tenant).BufferMisses++
	}
	// Occupy a PMSHR entry for the handful of cycles the fill takes so
	// that a concurrent duplicate miss coalesces instead of claiming a
	// second frame (no page aliases, same as the I/O path).
	s.qosCharge(req.Tenant, false)
	addr := req.PTE.Addr()
	idx := s.freeIdx[len(s.freeIdx)-1]
	s.freeIdx = s.freeIdx[:len(s.freeIdx)-1]
	e := s.getEntry()
	e.idx, e.pteAddr, e.req, e.frame = idx, addr, req, rec
	//hwdp:ignore hotalloc waiters backing array is retained by the pooled entry (putEntry keeps capacity), so steady-state appends do not allocate
	e.waiters = append(e.waiters, done)
	s.slots[idx] = e

	t := s.timing
	s.trace("free page fetch", fetchCost)
	s.trace("PT update", t.PTUpdate)
	s.trace("notify MMU", t.Notify)
	req.Trace.SetCause(trace.CauseAnonZeroFill)
	now := s.eng.Now()
	req.Trace.AddSpan(trace.LayerSMU, "free-page-fetch", now, now+fetchCost)
	req.Trace.AddSpan(trace.LayerSMU, "pmshr-write", now+fetchCost, now+fetchCost+t.PMSHRWrite)
	req.Trace.AddSpan(trace.LayerSMU, "pt-update", now+fetchCost+t.PMSHRWrite, now+fetchCost+t.PMSHRWrite+t.PTUpdate)
	req.Trace.AddSpan(trace.LayerSMU, "notify-mmu", now+fetchCost+t.PMSHRWrite+t.PTUpdate, now+fetchCost+t.PMSHRWrite+t.PTUpdate+t.Notify)
	s.eng.PostArg(fetchCost+t.PMSHRWrite+t.PTUpdate+t.Notify, s.anonFillFn, e)
}

// anonFill completes a first-touch anonymous miss: install the zero-filled
// frame's PTE and broadcast.
//
//hwdp:hotpath
func (s *SMU) anonFill(e *pmshrEntry) {
	// Same locked PTE update as ptUpdate: a bounced duplicate of this
	// miss may have zero-filled the page through the OS path meanwhile.
	if cur := e.req.PTE.Get(); cur.Present() {
		s.stats.RaceYields++
		s.stats.Handled++
		ts := s.tstat(e.req.Tenant)
		ts.RaceYields++
		ts.Handled++
		core := e.req.Core
		s.finish(e, ResultOK, cur)
		s.queueFor(core).Prefetch()
		return
	}
	pte := pagetable.MakePresent(e.frame.PFN, e.req.Prot, false)
	e.req.PTE.Set(pte)
	e.installed = true
	pagetable.MarkUnsynced(e.req.PUD, e.req.PMD)
	s.stats.AnonZeroFill++
	s.stats.Handled++
	ts := s.tstat(e.req.Tenant)
	ts.AnonZeroFill++
	ts.Handled++
	core := e.req.Core
	s.finish(e, ResultOK, pte)
	s.queueFor(core).Prefetch()
}

// cqHandle is the completion unit: the memory-write snoop of the CQ entry
// plus the protocol-handling latency arrive together over the attachment's
// completion wire (AttachLane's irq), so by the time this runs the CQ entry
// is visible and CQHandle has elapsed. It updates the page table and
// broadcasts.
//
//hwdp:hotpath
func (s *SMU) cqHandle(dev *devSlot) {
	t := s.timing
	// The snoop that scheduled us fired exactly CQHandle ago.
	snoopAt := s.eng.Now() - t.CQHandle
	cp, ok := dev.qp.PollCQ()
	if !ok {
		return // spurious snoop
	}
	dev.qp.ConsumeCQ()
	e := s.lookupCID(cp.CID)
	if e == nil {
		// Completion for an abandoned attempt (the SMU timed out and
		// moved on, or already failed the walk): drop it.
		return
	}
	e.req.Trace.AddSpan(trace.LayerNVMe, "cq-handle", snoopAt, s.eng.Now())
	if e.timeout != nil {
		e.timeout.Cancel()
		e.timeout = nil
	}
	if !cp.OK() {
		s.stats.IOErrors++
		s.tstat(e.req.Tenant).IOErrors++
		e.req.Trace.Mark(trace.LayerNVMe, "error-completion", s.eng.Now())
		s.recover(e, cp.Status)
		return
	}
	s.trace("PT update", t.PTUpdate)
	ptAt := s.eng.Now()
	e.req.Trace.AddSpan(trace.LayerSMU, "pt-update", ptAt, ptAt+t.PTUpdate)
	s.eng.PostArg(t.PTUpdate, s.ptUpdateFn, e)
}

// ptUpdate installs the fetched frame's PTE — "replace the LBA field with
// the PFN" — leaving the PTE's LBA bit set so kpted later updates OS
// metadata, and marking the upper levels; then schedules the broadcast.
//
//hwdp:hotpath
func (s *SMU) ptUpdate(e *pmshrEntry) {
	t := s.timing
	// The PTE write is a locked compare-exchange: if the OS fault path
	// resolved the page while the I/O was in flight (a duplicate of this
	// miss bounced to the exception path earlier and won), installing
	// over its translation would leak the OS's frame. Yield: complete
	// the walk with the OS's PTE; finish recycles our fetched frame.
	if cur := e.req.PTE.Get(); cur.Present() {
		s.stats.RaceYields++
		s.tstat(e.req.Tenant).RaceYields++
		e.newPTE = cur
		s.trace("notify MMU", t.Notify)
		notifyAt := s.eng.Now()
		e.req.Trace.AddSpan(trace.LayerSMU, "notify-mmu", notifyAt, notifyAt+t.Notify)
		s.eng.PostArg(t.Notify, s.notifyFn, e)
		return
	}
	pte := pagetable.MakePresent(e.frame.PFN, e.req.Prot, false)
	e.req.PTE.Set(pte)
	e.installed = true
	e.newPTE = pte
	pagetable.MarkUnsynced(e.req.PUD, e.req.PMD)
	s.trace("notify MMU", t.Notify)
	notifyAt := s.eng.Now()
	e.req.Trace.AddSpan(trace.LayerSMU, "notify-mmu", notifyAt, notifyAt+t.Notify)
	s.eng.PostArg(t.Notify, s.notifyFn, e)
}

//hwdp:hotpath
func (s *SMU) finish(e *pmshrEntry, res Result, pte pagetable.Entry) {
	if e.timeout != nil {
		e.timeout.Cancel()
		e.timeout = nil
	}
	s.slots[e.idx] = nil
	e.cid = 0
	//hwdp:ignore hotalloc freeIdx was filled to full PMSHR depth at construction; append never exceeds that retained capacity
	s.freeIdx = append(s.freeIdx, e.idx)
	s.qosRelease(e.req.Tenant, e.dev != nil)
	if e.installed {
		s.stats.FramesInstalled++
		s.tstat(e.req.Tenant).FramesInstalled++
	} else {
		// The popped frame was never installed (failure, or the PT
		// update yielded to an OS-resolved PTE): return it to the free
		// queue so it cannot leak (accepted == installed + held).
		s.queueFor(e.req.Core).Requeue(e.frame)
		s.stats.FramesRecycled++
		s.tstat(e.req.Tenant).FramesRecycled++
	}
	addr := e.pteAddr
	for _, w := range e.waiters {
		w.call(res, pte)
	}
	s.checkBarriers(addr)
	// Admit one backlogged request per freed slot.
	if s.backlogHead < len(s.backlog) {
		item := s.backlog[s.backlogHead]
		s.backlog[s.backlogHead] = backlogItem{}
		s.backlogHead++
		if s.backlogHead == len(s.backlog) {
			s.backlog = s.backlog[:0]
			s.backlogHead = 0
		}
		now := s.eng.Now()
		item.req.Trace.AddSpan(trace.LayerSMU, "pmshr-backlog-wait", item.at, now)
		s.backlogWait.Record(int64(now - item.at))
		s.psi.EndStall(metrics.StallPMSHRBacklog, int64(now), int64(now-item.at))
		s.putEntry(e)
		s.admit(item.req, item.done)
		s.qosDrain()
		return
	}
	s.putEntry(e)
	s.qosDrain()
}

// Barrier invokes done once no outstanding miss references any of the given
// PTE addresses — the "SMU barrier" the modified munmap()/msync() issue
// before unmapping (Section IV-C). With no matching outstanding misses it
// fires immediately (same timestep).
func (s *SMU) Barrier(addrs []pagetable.EntryAddr, done func()) {
	waiting := make(map[pagetable.EntryAddr]bool)
	for _, a := range addrs {
		if s.lookup(a) != nil {
			waiting[a] = true
		}
	}
	if len(waiting) == 0 {
		s.eng.Post(0, done)
		return
	}
	s.barriers = append(s.barriers, &barrier{waiting: waiting, done: done})
}

// BarrierAll invokes done once every currently outstanding miss completes.
func (s *SMU) BarrierAll(done func()) {
	addrs := make([]pagetable.EntryAddr, 0, s.Outstanding())
	for _, e := range s.slots {
		if e != nil {
			addrs = append(addrs, e.pteAddr)
		}
	}
	s.Barrier(addrs, done)
}

func (s *SMU) checkBarriers(addr pagetable.EntryAddr) {
	kept := s.barriers[:0]
	for _, b := range s.barriers {
		delete(b.waiting, addr)
		if len(b.waiting) == 0 {
			s.eng.Post(0, b.done)
			continue
		}
		//hwdp:ignore hotalloc kept reuses barriers' backing array (s.barriers[:0]); the filter never outgrows it
		kept = append(kept, b)
	}
	s.barriers = kept
}
