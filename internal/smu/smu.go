// Package smu implements the Storage Management Unit — the paper's key
// architectural extension (Section III-C). The SMU receives page-miss
// requests from the MMU (the addresses of the PUD, PMD and PTE entries plus
// the device ID and LBA), coalesces duplicates in the PMSHR, takes a frame
// from the free page queue, drives the NVMe host controller to fetch the
// block, updates the page-table entries in hardware, and broadcasts
// completion so stalled page-table walks resume — all without raising an
// exception.
package smu

import (
	"fmt"

	"hwdp/internal/nvme"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
	"hwdp/internal/ssd"
)

// PMSHREntries is the number of page-miss status holding registers; it
// bounds the SMU's concurrent outstanding I/O (the prototype's empirically
// chosen 32).
const PMSHREntries = 32

// PrefetchBufEntries is the free-page prefetch buffer capacity (16 <PFN,
// DMA address> pairs, Section VI-D).
const PrefetchBufEntries = 16

// Result is the outcome of a hardware page-miss handling attempt.
type Result int

// Results. ResultNoFreePage sends the miss back to the OS fault handler,
// which also refills the free page queue.
const (
	ResultOK Result = iota
	ResultNoFreePage
	ResultIOError
)

func (r Result) String() string {
	switch r {
	case ResultOK:
		return "ok"
	case ResultNoFreePage:
		return "no-free-page"
	case ResultIOError:
		return "io-error"
	}
	return "?"
}

// Request is a page-miss handling request from the MMU: "the addresses of
// the three entries (PUD entry, PMD entry, and PTE), device ID, and LBA".
// Core identifies the requesting logical core when the SMU runs per-core
// free page queues (Section V future work); with the default single queue
// it is ignored.
type Request struct {
	PUD, PMD, PTE pagetable.EntryRef
	Block         pagetable.BlockAddr
	Prot          pagetable.Prot
	Core          int
}

// DoneFunc receives the handling outcome and, on success, the new PTE
// value (the broadcast payload: "the PTE address, the value of the PTE,
// and the result of the page miss handling").
type DoneFunc func(res Result, pte pagetable.Entry)

// TraceFunc observes the per-phase latencies of miss handling, used to
// regenerate the Fig. 11(b) timeline.
type TraceFunc func(phase string, dur sim.Time)

// Stats are the SMU's event counters.
type Stats struct {
	Handled      uint64 // misses fully handled in hardware
	Coalesced    uint64 // duplicate requests merged into an existing entry
	NoFreePage   uint64 // failures bounced to the OS
	IOErrors     uint64
	Backlogged   uint64 // requests that waited for a PMSHR slot
	BufferMisses uint64 // free-page pops that exposed a memory round trip
	AnonZeroFill uint64 // first-touch anonymous misses served without I/O
	LateHits     uint64 // requests whose PTE resolved before admission
}

type pmshrEntry struct {
	idx     int
	pteAddr pagetable.EntryAddr
	req     Request
	frame   FrameRecord
	waiters []DoneFunc
}

type devSlot struct {
	qp   *nvme.QueuePair
	dev  *ssd.Device
	nsid uint32
}

type backlogItem struct {
	req  Request
	done DoneFunc
}

type barrier struct {
	waiting map[pagetable.EntryAddr]bool
	done    func()
}

// SMU is one per-socket storage management unit.
type SMU struct {
	SID     uint8
	eng     *sim.Engine
	timing  Timing
	entries int

	pmshr    map[pagetable.EntryAddr]*pmshrEntry
	byCID    map[uint16]*pmshrEntry
	freeIdx  []int
	backlog  []backlogItem
	freeqs   []*FreeQueue // one, or one per logical core
	devs     [8]*devSlot
	stats    Stats
	barriers []*barrier

	// Tracer, when set, observes each handling phase (single-miss
	// experiments).
	Tracer TraceFunc
}

// New builds an SMU with the given free-page-queue ring depth and the
// prototype's 32 PMSHR entries.
func New(eng *sim.Engine, sid uint8, freeQueueDepth int) *SMU {
	return NewWithEntries(eng, sid, freeQueueDepth, PMSHREntries)
}

// NewWithEntries builds an SMU with a custom PMSHR size (the design-space
// ablation sweeps it; the prototype "empirically chooses 32 entries").
func NewWithEntries(eng *sim.Engine, sid uint8, freeQueueDepth, entries int) *SMU {
	if entries < 1 {
		panic("smu: need at least one PMSHR entry")
	}
	return NewPerCore(eng, sid, freeQueueDepth, entries, 1)
}

// NewPerCore builds an SMU with one free page queue per logical core
// (cores > 1) — the paper's Section V option for enforcing per-thread
// memory-management policy. The ring depth is split evenly.
func NewPerCore(eng *sim.Engine, sid uint8, freeQueueDepth, entries, cores int) *SMU {
	if entries < 1 {
		panic("smu: need at least one PMSHR entry")
	}
	if cores < 1 {
		panic("smu: need at least one free page queue")
	}
	s := &SMU{
		SID:     sid,
		eng:     eng,
		timing:  DefaultTiming(),
		entries: entries,
		pmshr:   make(map[pagetable.EntryAddr]*pmshrEntry),
		byCID:   make(map[uint16]*pmshrEntry),
	}
	per := freeQueueDepth / cores
	if per < 2 {
		per = 2
	}
	for i := 0; i < cores; i++ {
		s.freeqs = append(s.freeqs, NewFreeQueue(per, PrefetchBufEntries))
	}
	for i := entries - 1; i >= 0; i-- {
		s.freeIdx = append(s.freeIdx, i)
	}
	return s
}

// queueFor picks the free page queue serving a core.
func (s *SMU) queueFor(core int) *FreeQueue {
	if core < 0 {
		core = 0
	}
	return s.freeqs[core%len(s.freeqs)]
}

// Queues returns the per-core free page queues (length 1 for the default
// global-queue configuration).
func (s *SMU) Queues() []*FreeQueue { return s.freeqs }

// Entries returns the PMSHR size.
func (s *SMU) Entries() int { return s.entries }

// Timing returns the component latency model.
func (s *SMU) Timing() Timing { return s.timing }

// Stats returns a copy of the counters.
func (s *SMU) Stats() Stats { return s.stats }

// FreeQueue exposes the first free page queue (the only one in the default
// configuration).
func (s *SMU) FreeQueue() *FreeQueue { return s.freeqs[0] }

// Refill pushes frame records into the first free page queue (producer
// side: the OS page-refill routine or kpoold) and lets the hardware
// eagerly prefetch. It returns how many records were accepted.
func (s *SMU) Refill(recs []FrameRecord) int { return s.RefillCore(0, recs) }

// RefillCore pushes frame records into one core's free page queue.
func (s *SMU) RefillCore(core int, recs []FrameRecord) int {
	q := s.queueFor(core)
	n := q.Push(recs)
	q.Prefetch()
	return n
}

// Outstanding returns the number of in-flight hardware-handled misses.
func (s *SMU) Outstanding() int { return len(s.pmshr) }

// AttachDevice initializes one set of NVMe queue descriptor registers for a
// block device: the isolated queue pair the OS allocated, the device it
// belongs to, and the namespace to address. Interrupts are disabled on the
// pair; completions arrive via the completion unit's memory snoop.
func (s *SMU) AttachDevice(devID uint8, dev *ssd.Device, qp *nvme.QueuePair, nsid uint32) {
	if devID >= 8 {
		panic(fmt.Sprintf("smu: device ID %d out of range", devID))
	}
	if s.devs[devID] != nil {
		panic(fmt.Sprintf("smu: device %d already attached", devID))
	}
	qp.InterruptsEnabled = false
	slot := &devSlot{qp: qp, dev: dev, nsid: nsid}
	s.devs[devID] = slot
	dev.Attach(qp, func(cp nvme.Completion) { s.onSnoop(slot, cp) })
}

func (s *SMU) trace(phase string, dur sim.Time) {
	if s.Tracer != nil {
		s.Tracer(phase, dur)
	}
}

// HandleMiss processes one page-miss request. done is invoked (in virtual
// time) when handling concludes; for coalesced requests it is invoked when
// the original miss completes.
func (s *SMU) HandleMiss(req Request, done DoneFunc) {
	t := s.timing
	lookupCost := 2*t.ReqRegWrite + t.CAMLookup
	s.trace("request regs + CAM lookup", lookupCost)
	s.eng.After(lookupCost, func() { s.admit(req, done) })
}

func (s *SMU) admit(req Request, done DoneFunc) {
	addr := req.PTE.Addr()
	if e, dup := s.pmshr[addr]; dup {
		// Outstanding miss to the same page: coalesce; the pending walk
		// resumes on the broadcast.
		e.waiters = append(e.waiters, done)
		s.stats.Coalesced++
		return
	}
	if cur := req.PTE.Get(); cur.Present() {
		// The miss resolved between the requester's page-table walk and
		// this lookup (the original PMSHR entry already retired). Reading
		// the PTE — which the page-table updater does anyway — catches the
		// race; answer with the installed translation instead of fetching
		// a duplicate frame (which would alias the page).
		s.stats.LateHits++
		s.eng.After(s.timing.Notify, func() { done(ResultOK, cur) })
		return
	}

	if len(s.freeIdx) == 0 {
		// All PMSHRs busy: the walk stays pending until a slot frees.
		s.backlog = append(s.backlog, backlogItem{req, done})
		s.stats.Backlogged++
		return
	}

	if req.Block.LBA == pagetable.AnonFirstTouch {
		s.admitAnon(req, done)
		return
	}

	dev := s.devs[req.Block.DeviceID]
	if dev == nil {
		s.stats.IOErrors++
		s.eng.After(s.timing.Notify, func() { done(ResultIOError, 0) })
		return
	}

	freeq := s.queueFor(req.Core)
	rec, fromBuf, ok := freeq.Pop()
	if !ok {
		// Free page queue empty: invalidate and fail to the OS, which
		// handles the fault and refills the queue.
		s.stats.NoFreePage++
		s.eng.After(s.timing.Notify, func() { done(ResultNoFreePage, 0) })
		return
	}
	fetchCost := s.timing.FreePageHit
	if !fromBuf {
		fetchCost = s.timing.FreePageMem
		s.stats.BufferMisses++
	}
	s.trace("free page fetch", fetchCost)

	idx := s.freeIdx[len(s.freeIdx)-1]
	s.freeIdx = s.freeIdx[:len(s.freeIdx)-1]
	e := &pmshrEntry{idx: idx, pteAddr: addr, req: req, frame: rec, waiters: []DoneFunc{done}}
	s.pmshr[addr] = e
	s.byCID[uint16(idx)] = e

	t := s.timing
	s.trace("PMSHR write", t.PMSHRWrite)
	s.trace("NVMe cmd write", t.CmdWrite)
	s.trace("SQ doorbell", t.Doorbell)
	issueCost := fetchCost + t.PMSHRWrite + t.CmdWrite
	s.eng.After(issueCost, func() {
		cmd := nvme.Command{
			Opcode: nvme.OpRead,
			CID:    uint16(idx),
			NSID:   dev.nsid,
			PRP1:   rec.DMA,
			SLBA:   req.Block.LBA,
			NLB:    0, // one 4 KiB block, no PRP list
		}
		if err := dev.qp.Submit(cmd); err != nil {
			// Isolated queue sized to PMSHR depth: overflow is a model bug.
			panic(fmt.Sprintf("smu: submit failed: %v", err))
		}
		s.eng.After(t.Doorbell, func() {
			dev.dev.RingSQDoorbell(dev.qp.ID)
			// Opportunistically refill the prefetch buffer during the
			// device I/O time — this is what hides the memory latency of
			// free-page fetches.
			freeq.Prefetch()
		})
	})
}

// admitAnon serves a first-touch anonymous miss: the reserved LBA constant
// tells the SMU to bypass I/O entirely (Section V). A zero-filled frame
// from the free page queue is installed directly; the whole miss costs a
// handful of cycles instead of a device access.
func (s *SMU) admitAnon(req Request, done DoneFunc) {
	freeq := s.queueFor(req.Core)
	rec, fromBuf, ok := freeq.Pop()
	if !ok {
		s.stats.NoFreePage++
		s.eng.After(s.timing.Notify, func() { done(ResultNoFreePage, 0) })
		return
	}
	fetchCost := s.timing.FreePageHit
	if !fromBuf {
		fetchCost = s.timing.FreePageMem
		s.stats.BufferMisses++
	}
	// Occupy a PMSHR entry for the handful of cycles the fill takes so
	// that a concurrent duplicate miss coalesces instead of claiming a
	// second frame (no page aliases, same as the I/O path).
	addr := req.PTE.Addr()
	idx := s.freeIdx[len(s.freeIdx)-1]
	s.freeIdx = s.freeIdx[:len(s.freeIdx)-1]
	e := &pmshrEntry{idx: idx, pteAddr: addr, req: req, frame: rec, waiters: []DoneFunc{done}}
	s.pmshr[addr] = e
	s.byCID[uint16(idx)] = e

	t := s.timing
	s.trace("free page fetch", fetchCost)
	s.trace("PT update", t.PTUpdate)
	s.trace("notify MMU", t.Notify)
	s.eng.After(fetchCost+t.PMSHRWrite+t.PTUpdate+t.Notify, func() {
		pte := pagetable.MakePresent(rec.PFN, req.Prot, false)
		req.PTE.Set(pte)
		pagetable.MarkUnsynced(req.PUD, req.PMD)
		s.stats.AnonZeroFill++
		s.stats.Handled++
		s.finish(e, ResultOK, pte)
		freeq.Prefetch()
	})
}

// onSnoop is the completion unit: it watches memory writes from the PCIe
// root complex at CQ base + head, handles the CQ protocol, updates the page
// table and broadcasts.
func (s *SMU) onSnoop(dev *devSlot, _ nvme.Completion) {
	t := s.timing
	s.trace("CQ handle", t.CQHandle)
	s.eng.After(t.CQHandle, func() {
		cp, ok := dev.qp.PollCQ()
		if !ok {
			return // spurious snoop
		}
		dev.qp.ConsumeCQ()
		e, ok := s.byCID[cp.CID]
		if !ok {
			return
		}
		if !cp.OK() {
			s.stats.IOErrors++
			s.finish(e, ResultIOError, 0)
			return
		}
		s.trace("PT update", t.PTUpdate)
		s.eng.After(t.PTUpdate, func() {
			// Replace the LBA field with the PFN; leave the PTE's LBA bit
			// set so kpted later updates OS metadata, and mark the upper
			// levels.
			pte := pagetable.MakePresent(e.frame.PFN, e.req.Prot, false)
			e.req.PTE.Set(pte)
			pagetable.MarkUnsynced(e.req.PUD, e.req.PMD)
			s.trace("notify MMU", t.Notify)
			s.eng.After(t.Notify, func() {
				s.stats.Handled++
				s.finish(e, ResultOK, pte)
			})
		})
	})
}

func (s *SMU) finish(e *pmshrEntry, res Result, pte pagetable.Entry) {
	delete(s.pmshr, e.pteAddr)
	delete(s.byCID, uint16(e.idx))
	s.freeIdx = append(s.freeIdx, e.idx)
	for _, w := range e.waiters {
		w(res, pte)
	}
	s.checkBarriers(e.pteAddr)
	// Admit one backlogged request per freed slot.
	if len(s.backlog) > 0 {
		item := s.backlog[0]
		s.backlog = s.backlog[1:]
		s.admit(item.req, item.done)
	}
}

// Barrier invokes done once no outstanding miss references any of the given
// PTE addresses — the "SMU barrier" the modified munmap()/msync() issue
// before unmapping (Section IV-C). With no matching outstanding misses it
// fires immediately (same timestep).
func (s *SMU) Barrier(addrs []pagetable.EntryAddr, done func()) {
	waiting := make(map[pagetable.EntryAddr]bool)
	for _, a := range addrs {
		if _, ok := s.pmshr[a]; ok {
			waiting[a] = true
		}
	}
	if len(waiting) == 0 {
		s.eng.After(0, done)
		return
	}
	s.barriers = append(s.barriers, &barrier{waiting: waiting, done: done})
}

// BarrierAll invokes done once every currently outstanding miss completes.
func (s *SMU) BarrierAll(done func()) {
	addrs := make([]pagetable.EntryAddr, 0, len(s.pmshr))
	for a := range s.pmshr {
		addrs = append(addrs, a)
	}
	s.Barrier(addrs, done)
}

func (s *SMU) checkBarriers(addr pagetable.EntryAddr) {
	kept := s.barriers[:0]
	for _, b := range s.barriers {
		delete(b.waiting, addr)
		if len(b.waiting) == 0 {
			s.eng.After(0, b.done)
			continue
		}
		kept = append(kept, b)
	}
	s.barriers = kept
}
