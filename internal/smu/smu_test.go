package smu

import (
	"strings"
	"testing"
	"testing/quick"

	"hwdp/internal/mem"

	"hwdp/internal/nvme"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
	"hwdp/internal/ssd"
)

type rig struct {
	eng *sim.Engine
	smu *SMU
	tbl *pagetable.Table
	dev *ssd.Device
}

func newRig(t *testing.T, freeFrames int) *rig {
	t.Helper()
	eng := sim.NewEngine()
	prof := ssd.ZSSD
	prof.JitterFrac = 0
	dev := ssd.New(eng, prof, sim.NewRand(1), nil)
	dev.AddNamespace(nvme.Namespace{ID: 1, Blocks: 1 << 30})
	s := New(eng, 0, 4096)
	qp := nvme.NewQueuePair(100, 2*PMSHREntries)
	s.AttachDevice(0, dev, qp, 1)
	if freeFrames > 0 {
		s.Refill(recs(freeFrames, 1000))
	}
	return &rig{eng: eng, smu: s, tbl: pagetable.New(), dev: dev}
}

func (r *rig) request(va pagetable.VAddr, lba uint64) Request {
	pud, pmd, pte := r.tbl.Ensure(va)
	blk := pagetable.BlockAddr{SID: 0, DeviceID: 0, LBA: lba}
	prot := pagetable.Prot{Write: true, User: true}
	pte.Set(pagetable.MakeLBA(blk, prot))
	return Request{PUD: pud, PMD: pmd, PTE: pte, Block: blk, Prot: prot}
}

func TestSingleMissHandledInHardware(t *testing.T) {
	r := newRig(t, 64)
	req := r.request(0x1000, 77)
	var res Result = -1
	var pte pagetable.Entry
	r.smu.HandleMiss(req, func(rr Result, p pagetable.Entry) { res, pte = rr, p })
	r.eng.Run()

	if res != ResultOK {
		t.Fatalf("result = %v", res)
	}
	if pte.State() != pagetable.StateResidentUnsynced {
		t.Fatalf("pte state = %v (LBA bit must stay set for kpted)", pte.State())
	}
	if pte.PFN() != 1000 {
		t.Fatalf("pfn = %d", pte.PFN())
	}
	if got := req.PTE.Get(); got != pte {
		t.Fatalf("table pte %#x != broadcast %#x", uint64(got), uint64(pte))
	}
	// Protection bits preserved across hardware handling.
	if p := pte.Prot(); !p.Write || !p.User {
		t.Fatalf("prot lost: %+v", p)
	}
	// Upper levels marked for kpted.
	if !req.PUD.Get().LBABit() || !req.PMD.Get().LBABit() {
		t.Fatal("upper-level LBA bits not set")
	}
	// Latency: before-device + device + after-device, nothing else.
	want := r.smu.Timing().BeforeDevice() + ssd.ZSSD.Read4K + r.smu.Timing().AfterDevice()
	if got := r.eng.Now(); got != want {
		t.Fatalf("latency = %v, want %v", got, want)
	}
	st := r.smu.Stats()
	if st.Handled != 1 || st.Coalesced != 0 || st.NoFreePage != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if r.smu.Outstanding() != 0 {
		t.Fatal("PMSHR not drained")
	}
}

func TestBeforeAfterDeviceLatencies(t *testing.T) {
	// Fig. 11(b): before-device ~82ns (dominated by the 77.16ns command
	// write), after-device ~36ns (97-cycle PT update dominates).
	tm := DefaultTiming()
	if b := tm.BeforeDevice().Nanos(); b < 78 || b > 90 {
		t.Fatalf("before device = %.2fns", b)
	}
	if a := tm.AfterDevice().Nanos(); a < 30 || a > 40 {
		t.Fatalf("after device = %.2fns", a)
	}
}

func TestCoalescingDuplicateMisses(t *testing.T) {
	r := newRig(t, 64)
	req := r.request(0x2000, 5)
	var results []pagetable.Entry
	for i := 0; i < 3; i++ {
		r.smu.HandleMiss(req, func(res Result, p pagetable.Entry) {
			if res != ResultOK {
				t.Fatalf("res = %v", res)
			}
			results = append(results, p)
		})
	}
	r.eng.Run()
	if len(results) != 3 {
		t.Fatalf("waiters completed: %d", len(results))
	}
	for _, p := range results[1:] {
		if p != results[0] {
			t.Fatal("coalesced waiters observed different PTE values")
		}
	}
	if r.dev.Stats().Reads != 1 {
		t.Fatalf("device reads = %d, want 1 (coalesced)", r.dev.Stats().Reads)
	}
	if st := r.smu.Stats(); st.Coalesced != 2 || st.Handled != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDistinctMissesProceedConcurrently(t *testing.T) {
	r := newRig(t, 64)
	n := 0
	for i := 0; i < 8; i++ {
		req := r.request(pagetable.VAddr(0x10000+i*0x1000), uint64(i))
		r.smu.HandleMiss(req, func(res Result, _ pagetable.Entry) {
			if res != ResultOK {
				t.Fatalf("res = %v", res)
			}
			n++
		})
	}
	r.eng.Run()
	if n != 8 {
		t.Fatalf("completed = %d", n)
	}
	// 8 misses striped across 8 device channels overlap: total wall time
	// must be far below 8 serial device reads.
	if r.eng.Now() > 2*ssd.ZSSD.Read4K {
		t.Fatalf("no overlap: %v", r.eng.Now())
	}
}

func TestNoFreePageFailsToOS(t *testing.T) {
	r := newRig(t, 0)
	req := r.request(0x3000, 9)
	var res Result = -1
	r.smu.HandleMiss(req, func(rr Result, _ pagetable.Entry) { res = rr })
	r.eng.Run()
	if res != ResultNoFreePage {
		t.Fatalf("res = %v", res)
	}
	if req.PTE.Get().State() != pagetable.StateNotPresentLBA {
		t.Fatal("failed miss must leave PTE untouched")
	}
	if st := r.smu.Stats(); st.NoFreePage != 1 || st.Handled != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if r.dev.Stats().Reads != 0 {
		t.Fatal("device touched despite no free page")
	}
}

func TestFreeQueueConsumedInOrder(t *testing.T) {
	r := newRig(t, 3)
	var pfns []uint64
	for i := 0; i < 3; i++ {
		req := r.request(pagetable.VAddr(0x100000+i*0x1000), uint64(100+i))
		r.smu.HandleMiss(req, func(res Result, p pagetable.Entry) {
			pfns = append(pfns, uint64(p.PFN()))
		})
	}
	r.eng.Run()
	if len(pfns) != 3 {
		t.Fatalf("done = %d", len(pfns))
	}
	seen := map[uint64]bool{}
	for _, p := range pfns {
		if p < 1000 || p > 1002 || seen[p] {
			t.Fatalf("frames misassigned: %v", pfns)
		}
		seen[p] = true
	}
}

func TestPMSHRBacklog(t *testing.T) {
	r := newRig(t, 128)
	const n = PMSHREntries + 8
	done := 0
	for i := 0; i < n; i++ {
		// Same device channel so they serialize and the PMSHR saturates.
		req := r.request(pagetable.VAddr(0x200000+i*0x1000), uint64(i*ssd.ZSSD.Channels))
		r.smu.HandleMiss(req, func(res Result, _ pagetable.Entry) {
			if res != ResultOK {
				t.Fatalf("res = %v", res)
			}
			done++
		})
	}
	r.eng.Run()
	if done != n {
		t.Fatalf("done = %d, want %d", done, n)
	}
	if st := r.smu.Stats(); st.Backlogged != 8 {
		t.Fatalf("backlogged = %d, want 8", st.Backlogged)
	}
}

func TestBarrierWaitsForOutstanding(t *testing.T) {
	r := newRig(t, 8)
	req := r.request(0x5000, 3)
	missDone := false
	r.smu.HandleMiss(req, func(Result, pagetable.Entry) { missDone = true })
	barrierAt := sim.Time(-1)
	// Schedule the barrier while the miss is in flight.
	r.eng.After(sim.Micro(1), func() {
		r.smu.Barrier([]pagetable.EntryAddr{req.PTE.Addr()}, func() {
			if !missDone {
				t.Fatal("barrier fired before outstanding miss completed")
			}
			barrierAt = r.eng.Now()
		})
	})
	r.eng.Run()
	if barrierAt < 0 {
		t.Fatal("barrier never fired")
	}
}

func TestBarrierNoMatchesFiresImmediately(t *testing.T) {
	r := newRig(t, 8)
	fired := false
	r.smu.Barrier([]pagetable.EntryAddr{12345}, func() { fired = true })
	r.eng.Run()
	if !fired {
		t.Fatal("empty barrier did not fire")
	}
}

func TestBarrierAll(t *testing.T) {
	r := newRig(t, 8)
	var order []string
	for i := 0; i < 4; i++ {
		req := r.request(pagetable.VAddr(0x70000+i*0x1000), uint64(i))
		r.smu.HandleMiss(req, func(Result, pagetable.Entry) { order = append(order, "miss") })
	}
	r.eng.After(sim.Micro(1), func() {
		r.smu.BarrierAll(func() { order = append(order, "barrier") })
	})
	r.eng.Run()
	if len(order) != 5 || order[4] != "barrier" {
		t.Fatalf("order = %v", order)
	}
}

func TestIOErrorPath(t *testing.T) {
	r := newRig(t, 8)
	req := r.request(0x9000, uint64(1)<<35) // beyond namespace? 1<<30 blocks
	req.Block.LBA = 1 << 31
	req.PTE.Set(pagetable.MakeLBA(req.Block, req.Prot))
	var res Result = -1
	r.smu.HandleMiss(req, func(rr Result, _ pagetable.Entry) { res = rr })
	r.eng.Run()
	if res != ResultIOError {
		t.Fatalf("res = %v", res)
	}
	if r.smu.Outstanding() != 0 {
		t.Fatal("PMSHR leaked on IO error")
	}
}

func TestUnattachedDeviceIDFails(t *testing.T) {
	r := newRig(t, 8)
	req := r.request(0xA000, 1)
	req.Block.DeviceID = 5
	var res Result = -1
	r.smu.HandleMiss(req, func(rr Result, _ pagetable.Entry) { res = rr })
	r.eng.Run()
	if res != ResultIOError {
		t.Fatalf("res = %v", res)
	}
}

func TestAttachDeviceValidation(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, 0, 64)
	prof := ssd.ZSSD
	dev := ssd.New(eng, prof, sim.NewRand(1), nil)
	qp := nvme.NewQueuePair(1, 8)
	s.AttachDevice(3, dev, qp, 1)
	if qp.InterruptsEnabled {
		t.Fatal("SMU queue must run with interrupts disabled")
	}
	for _, f := range []func(){
		func() { s.AttachDevice(8, dev, nvme.NewQueuePair(2, 8), 1) },
		func() { s.AttachDevice(3, dev, nvme.NewQueuePair(3, 8), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			f()
		}()
	}
}

func TestTracerPhases(t *testing.T) {
	r := newRig(t, 8)
	var phases []string
	r.smu.Tracer = func(phase string, dur sim.Time) {
		if dur <= 0 {
			t.Errorf("phase %q has non-positive duration", phase)
		}
		phases = append(phases, phase)
	}
	req := r.request(0xB000, 4)
	r.smu.HandleMiss(req, func(Result, pagetable.Entry) {})
	r.eng.Run()
	joined := strings.Join(phases, ",")
	for _, want := range []string{"CAM", "free page", "PMSHR", "cmd write", "doorbell", "CQ", "PT update", "notify"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing phase %q in %v", want, phases)
		}
	}
}

func TestPrefetchHidesMemoryLatency(t *testing.T) {
	// After a refill, pops come from the prefetch buffer (no memory trip).
	r := newRig(t, 8)
	req := r.request(0xC000, 2)
	r.smu.HandleMiss(req, func(Result, pagetable.Entry) {})
	r.eng.Run()
	if st := r.smu.Stats(); st.BufferMisses != 0 {
		t.Fatalf("buffer misses = %d", st.BufferMisses)
	}
}

func TestResultString(t *testing.T) {
	if ResultOK.String() != "ok" || ResultNoFreePage.String() != "no-free-page" ||
		ResultIOError.String() != "io-error" || Result(9).String() != "?" {
		t.Fatal("result strings")
	}
}

// Property: under any pattern of concurrent, possibly duplicate misses, no
// two PTEs ever receive the same frame and every duplicate miss observes
// the same PTE value as the original (the PMSHR's no-aliasing guarantee).
func TestNoAliasingProperty(t *testing.T) {
	f := func(pattern []uint8, seed uint64) bool {
		r := newRig(t, 256)
		seen := make(map[uint64][]pagetable.Entry) // va -> observed PTEs
		issued := 0
		for _, p := range pattern {
			if issued >= 200 {
				break
			}
			issued++
			va := pagetable.VAddr(0x100000 + uint64(p%32)*0x1000)
			// Re-issue against the live table: duplicates while outstanding
			// coalesce; already-resident pages are skipped.
			_, _, pte, ok := r.tbl.Walk(va)
			if ok && pte.Get().Present() {
				continue
			}
			var req Request
			if !ok || pte.Get() == 0 {
				req = r.request(va, uint64(p))
			} else {
				pud, pmd, pte2 := r.tbl.Ensure(va)
				e := pte2.Get()
				req = Request{PUD: pud, PMD: pmd, PTE: pte2, Block: e.Block(), Prot: e.Prot()}
			}
			vaKey := uint64(va)
			r.smu.HandleMiss(req, func(res Result, e pagetable.Entry) {
				if res == ResultOK {
					seen[vaKey] = append(seen[vaKey], e)
				}
			})
			// Interleave some progress.
			if p%3 == 0 {
				for i := 0; i < int(p); i++ {
					if !r.eng.Step() {
						break
					}
				}
			}
		}
		r.eng.Run()
		frames := map[mem.FrameID]uint64{}
		for va, entries := range seen {
			for _, e := range entries {
				if e != entries[0] {
					return false // coalesced waiters must agree
				}
			}
			f := entries[0].PFN()
			if prev, dup := frames[f]; dup && prev != va {
				return false // two pages share a frame
			}
			frames[f] = va
		}
		return r.smu.Outstanding() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
