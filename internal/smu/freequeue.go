package smu

import "hwdp/internal/mem"

// FrameRecord is one entry of the free page queue: a physical frame number
// and the DMA address the NVMe command will target (paper: "a circular
// queue residing in memory containing a set of <PFN, DMA address> pairs").
type FrameRecord struct {
	PFN mem.FrameID
	DMA uint64
}

// RecordFor builds the record for a frame (DMA address = frame base).
func RecordFor(pfn mem.FrameID) FrameRecord {
	return FrameRecord{PFN: pfn, DMA: uint64(pfn) * mem.PageSize}
}

// FreeQueue is the in-memory free page queue plus the SMU's small prefetch
// buffer. It is single-producer (the OS page-refill path / kpoold) and
// single-consumer (the SMU's free page fetcher), so no synchronization is
// modeled — exactly the paper's design. The hardware eagerly prefetches a
// few entries into the SMU so the common-case fetch does not expose a
// memory round trip.
type FreeQueue struct {
	ring  []FrameRecord
	head  int // consumer index (hardware register)
	tail  int // producer index (hardware register)
	depth int

	// Prefetch buffer inside the SMU: a head-indexed deque over a slice
	// whose backing array is reused (compacted rather than re-sliced), so
	// steady-state prefetch/pop traffic allocates nothing.
	buf     []FrameRecord
	bufHead int
	bufCap  int
	pops    uint64
	refills uint64
}

// NewFreeQueue creates a queue with the given ring depth and prefetch
// buffer capacity (the paper's prototype: depth 4096, buffer 16).
func NewFreeQueue(depth, bufCap int) *FreeQueue {
	if depth < 2 || bufCap < 1 {
		panic("smu: bad free queue geometry")
	}
	// buf is preallocated to its capacity so the miss path's prefetch
	// appends never grow it.
	return &FreeQueue{
		ring:   make([]FrameRecord, depth),
		depth:  depth,
		buf:    make([]FrameRecord, 0, bufCap),
		bufCap: bufCap,
	}
}

// Depth returns the ring capacity (one slot reserved to distinguish full
// from empty).
func (q *FreeQueue) Depth() int { return q.depth - 1 }

// Len returns the number of records in the ring (excluding the prefetch
// buffer).
func (q *FreeQueue) Len() int { return (q.tail - q.head + q.depth) % q.depth }

// Buffered returns the number of records in the prefetch buffer.
func (q *FreeQueue) Buffered() int { return len(q.buf) - q.bufHead }

// Space returns how many records the producer can still push.
func (q *FreeQueue) Space() int { return q.Depth() - q.Len() }

// Push appends records (producer side). It returns the number actually
// enqueued (stops when the ring is full).
func (q *FreeQueue) Push(recs []FrameRecord) int {
	n := 0
	for _, r := range recs {
		if (q.tail+1)%q.depth == q.head {
			break
		}
		q.ring[q.tail] = r
		q.tail = (q.tail + 1) % q.depth
		n++
	}
	if n > 0 {
		q.refills++
	}
	return n
}

// Prefetch moves up to the buffer capacity of records from the ring into
// the SMU-internal buffer. Hardware runs this opportunistically (e.g.
// during device I/O time); the model invokes it at miss-handling
// completion and at refill.
func (q *FreeQueue) Prefetch() {
	if q.bufHead > 0 {
		// Compact consumed slots so append reuses the backing array.
		n := copy(q.buf, q.buf[q.bufHead:])
		q.buf = q.buf[:n]
		q.bufHead = 0
	}
	for len(q.buf) < q.bufCap && q.head != q.tail {
		//hwdp:ignore hotalloc bounded by bufCap, whose backing array is preallocated at construction and reused by compaction
		q.buf = append(q.buf, q.ring[q.head])
		q.head = (q.head + 1) % q.depth
	}
}

// Pop takes one record, preferring the prefetch buffer. fromBuffer reports
// whether the fast path was hit (no memory round trip); ok is false when
// both the buffer and the ring are empty — the case where the SMU fails
// the miss back to the OS.
func (q *FreeQueue) Pop() (rec FrameRecord, fromBuffer, ok bool) {
	if q.bufHead < len(q.buf) {
		rec = q.buf[q.bufHead]
		q.bufHead++
		if q.bufHead == len(q.buf) {
			q.buf = q.buf[:0]
			q.bufHead = 0
		}
		q.pops++
		return rec, true, true
	}
	if q.head == q.tail {
		return FrameRecord{}, false, false
	}
	rec = q.ring[q.head]
	q.head = (q.head + 1) % q.depth
	q.pops++
	return rec, false, true
}

// Requeue returns a popped record to the prefetch buffer. This is the
// failure path: the I/O the frame was popped for never installed it, so the
// frame is still free and must not leak. The buffer may transiently exceed
// its capacity; Prefetch simply stays idle until pops drain it back down.
func (q *FreeQueue) Requeue(rec FrameRecord) {
	//hwdp:ignore hotalloc failure-path only (frame recycle after I/O error or race yield); a transient over-capacity append drains back via pops
	q.buf = append(q.buf, rec)
}

// Pops returns the cumulative successful pop count.
func (q *FreeQueue) Pops() uint64 { return q.pops }

// Refills returns the number of Push calls that enqueued at least one
// record.
func (q *FreeQueue) Refills() uint64 { return q.refills }
