package smu

import (
	"testing"
	"testing/quick"

	"hwdp/internal/mem"
)

func recs(n int, base uint64) []FrameRecord {
	out := make([]FrameRecord, n)
	for i := range out {
		out[i] = RecordFor(mem.FrameID(base + uint64(i)))
	}
	return out
}

func TestRecordFor(t *testing.T) {
	r := RecordFor(5)
	if r.PFN != 5 || r.DMA != 5*mem.PageSize {
		t.Fatalf("record = %+v", r)
	}
}

func TestFreeQueuePushPop(t *testing.T) {
	q := NewFreeQueue(8, 4)
	if q.Depth() != 7 || q.Space() != 7 {
		t.Fatalf("depth=%d space=%d", q.Depth(), q.Space())
	}
	if n := q.Push(recs(5, 0)); n != 5 {
		t.Fatalf("pushed %d", n)
	}
	if q.Len() != 5 {
		t.Fatalf("len = %d", q.Len())
	}
	// First pop without prefetch exposes a memory round trip.
	r, fromBuf, ok := q.Pop()
	if !ok || fromBuf || r.PFN != 0 {
		t.Fatalf("pop = %+v buf=%v ok=%v", r, fromBuf, ok)
	}
	q.Prefetch()
	if q.Buffered() != 4 {
		t.Fatalf("buffered = %d", q.Buffered())
	}
	r, fromBuf, ok = q.Pop()
	if !ok || !fromBuf || r.PFN != 1 {
		t.Fatalf("buffered pop = %+v buf=%v", r, fromBuf)
	}
}

func TestFreeQueueOverflowTruncates(t *testing.T) {
	q := NewFreeQueue(4, 2)
	if n := q.Push(recs(10, 0)); n != 3 {
		t.Fatalf("accepted %d, want 3", n)
	}
	if q.Space() != 0 {
		t.Fatalf("space = %d", q.Space())
	}
}

func TestFreeQueueEmptyPop(t *testing.T) {
	q := NewFreeQueue(4, 2)
	if _, _, ok := q.Pop(); ok {
		t.Fatal("pop of empty queue succeeded")
	}
	q.Push(recs(1, 7))
	q.Prefetch()
	if _, _, ok := q.Pop(); !ok {
		t.Fatal("pop after push failed")
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("queue should be drained")
	}
}

func TestFreeQueueBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewFreeQueue(1, 0)
}

func TestFreeQueueCounts(t *testing.T) {
	q := NewFreeQueue(16, 4)
	q.Push(recs(3, 0))
	q.Push(recs(0, 0)) // empty push: not a refill
	for i := 0; i < 3; i++ {
		q.Pop()
	}
	if q.Pops() != 3 || q.Refills() != 1 {
		t.Fatalf("pops=%d refills=%d", q.Pops(), q.Refills())
	}
}

// Property: FIFO order and conservation across arbitrary push/pop/prefetch
// interleavings.
func TestFreeQueueFIFOProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		q := NewFreeQueue(32, 4)
		next := uint64(0)   // next PFN to push
		expect := uint64(0) // next PFN a pop must return
		for _, op := range ops {
			switch op % 3 {
			case 0:
				n := q.Push(recs(int(op%5), next))
				next += uint64(n)
			case 1:
				q.Prefetch()
			case 2:
				if r, _, ok := q.Pop(); ok {
					if uint64(r.PFN) != expect {
						return false
					}
					expect++
				}
			}
			if q.Len()+q.Buffered() != int(next-expect) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
