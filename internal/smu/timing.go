package smu

import "hwdp/internal/sim"

// Timing holds the SMU's component latencies. Defaults reproduce the
// Fig. 11(b) timeline: two register writes and one CAM lookup (1, 1, 5
// cycles) before issue, a 77.16 ns NVMe command memory write, a 1.60 ns
// PCIe doorbell write, then after device I/O a 2-cycle completion-unit
// step, a 97-cycle page-table update (three LLC reads+writes) and a
// 2-cycle MMU notification.
type Timing struct {
	ReqRegWrite sim.Time // per register write carrying the request (×2)
	CAMLookup   sim.Time // PMSHR associative lookup
	PMSHRWrite  sim.Time // entry initialization / PFN write
	FreePageHit sim.Time // pop from the prefetch buffer
	FreePageMem sim.Time // pop exposing a memory round trip (buffer empty)
	CmdWrite    sim.Time // 64 B NVMe command write to memory
	Doorbell    sim.Time // PCIe register write
	CQHandle    sim.Time // completion-unit protocol handling
	PTUpdate    sim.Time // read+update PTE, PMD and PUD entries
	Notify      sim.Time // broadcast completion to cores / resume MMU
}

// DefaultTiming returns the paper-calibrated latencies.
func DefaultTiming() Timing {
	return Timing{
		ReqRegWrite: sim.Cycles(1),
		CAMLookup:   sim.Cycles(5),
		PMSHRWrite:  sim.Cycles(1),
		FreePageHit: sim.Cycles(1),
		FreePageMem: sim.Nano(90),
		CmdWrite:    sim.Nano(77.16),
		Doorbell:    sim.Nano(1.60),
		CQHandle:    sim.Cycles(2),
		PTUpdate:    sim.Cycles(97),
		Notify:      sim.Cycles(2),
	}
}

// BeforeDevice is the critical-path latency from the MMU's request to the
// doorbell write, assuming a prefetched free page and no coalescing.
func (t Timing) BeforeDevice() sim.Time {
	return 2*t.ReqRegWrite + t.CAMLookup + t.FreePageHit + t.PMSHRWrite + t.CmdWrite + t.Doorbell
}

// AfterDevice is the critical-path latency from the device's CQ write to
// the MMU resuming the stalled walk.
func (t Timing) AfterDevice() sim.Time {
	return t.CQHandle + t.PTUpdate + t.Notify
}
