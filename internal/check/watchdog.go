package check

import (
	"fmt"

	"hwdp/internal/core"
	"hwdp/internal/sim"
)

// maxWatchdogViolations bounds the recorded violation list: a broken
// invariant re-detected every period would otherwise grow without bound
// over a long campaign.
const maxWatchdogViolations = 256

// Watchdog is a periodically scheduled runtime auditor: every period it
// re-validates the full System invariant set (frame conservation,
// page-table discipline, SMU frame conservation) plus two liveness
// properties only observable from inside a run — simulated time
// monotonicity and the no-lost-wakeup property of the PMSHR backlog (a
// backlogged SMU with zero outstanding misses can never drain, because
// only miss completions pop the backlog).
//
// The watchdog reads state and appends to its own records; it never
// mutates the machine, so same-seed runs with and without it produce
// identical simulation results (its tick events interleave with the
// run's events but carry no work that touches model state).
type Watchdog struct {
	sys        *core.System
	period     sim.Time
	runs       int
	lastNow    sim.Time
	violations []Violation
	truncated  bool
	stopped    bool
}

// NewWatchdog schedules a watchdog on the system's engine with the given
// audit period. Stop it before tearing the system down.
func NewWatchdog(sys *core.System, period sim.Time) *Watchdog {
	if period <= 0 {
		panic("check: watchdog period must be positive")
	}
	w := &Watchdog{sys: sys, period: period, lastNow: sys.Eng.Now()}
	sys.Eng.Post(period, w.tick)
	return w
}

func (w *Watchdog) tick() {
	if w.stopped {
		return
	}
	now := w.sys.Eng.Now()
	if now < w.lastNow {
		w.record(Violation{"monotonic-time",
			fmt.Sprintf("engine ran backwards: %v after %v", now, w.lastNow)})
	}
	w.lastNow = now
	w.runs++
	for _, v := range System(w.sys) {
		w.record(v)
	}
	for sid, u := range w.sys.SMUs {
		if u.BacklogLen() > 0 && u.Outstanding() == 0 {
			w.record(Violation{"lost-wakeup", fmt.Sprintf(
				"socket %d: %d backlogged misses with no outstanding work to drain them",
				sid, u.BacklogLen())})
		}
	}
	w.sys.Eng.Post(w.period, w.tick)
}

func (w *Watchdog) record(v Violation) {
	if len(w.violations) >= maxWatchdogViolations {
		w.truncated = true
		return
	}
	w.violations = append(w.violations, v)
}

// Runs returns how many audit ticks have executed.
func (w *Watchdog) Runs() int { return w.runs }

// Violations returns every recorded violation (capped; Truncated reports
// whether the cap was hit).
func (w *Watchdog) Violations() []Violation { return w.violations }

// Truncated reports whether violations were dropped past the cap.
func (w *Watchdog) Truncated() bool { return w.truncated }

// Stop halts auditing; the pending tick becomes a no-op.
func (w *Watchdog) Stop() { w.stopped = true }
