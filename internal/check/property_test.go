package check

import (
	"fmt"
	"testing"

	"hwdp/internal/core"
	"hwdp/internal/fault"
	"hwdp/internal/fs"
	"hwdp/internal/kernel"
	"hwdp/internal/mmu"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
	"hwdp/internal/smu"
)

// TestFrameConservationProperty drives randomized operation sequences —
// mmap, touch (read and write), msync, munmap and fork — against a machine
// whose device injects transient errors, dropped commands and uncorrectable
// reads, then asserts every structural invariant, most importantly frame
// conservation: every frame the OS handed the SMU was installed into a PTE,
// is still held by the hardware, or was recycled. The error paths are
// exactly where frames historically leak (a failed miss must requeue its
// frame; a munmap barrier must not strand one), so the faults are the point,
// not decoration.
func TestFrameConservationProperty(t *testing.T) {
	seeds := []uint64{1, 2, 3, 5, 8, 13}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runConservationSequence(t, seed)
		})
	}
}

// region is one live mapping the random walk can operate on.
type region struct {
	va    pagetable.VAddr
	pages int
}

func runConservationSequence(t *testing.T, seed uint64) {
	cfg := core.DefaultConfig(kernel.HWDP)
	cfg.MemoryBytes = 8 << 20
	cfg.FSBlocks = 1 << 16
	cfg.DeviceJitter = false
	cfg.Seed = seed
	// A completion timeout makes dropped commands recoverable; without it a
	// Drop would strand the miss (and this test) forever.
	p := smu.DefaultRetryPolicy()
	p.CmdTimeout = sim.Micro(500)
	cfg.SMURetry = &p
	cfg.FaultRules = []fault.Rule{
		{Kind: fault.Transient, Prob: 0.05},
		{Kind: fault.Drop, Prob: 0.01, MaxInjections: 20},
		{Kind: fault.UECC, Prob: 0.02, ReadsOnly: true, MaxInjections: 30},
	}
	s := cfg.Build()
	th := s.WorkloadThread(0)
	rng := sim.NewRand(seed)

	var regions []region
	nextName := 0
	mapOne := func(pages int) {
		nextName++
		va, _, err := s.MapFile(fmt.Sprintf("f%d", nextName), pages,
			fs.SeededInit(seed), s.FastFlags())
		if err != nil {
			t.Fatal(err)
		}
		regions = append(regions, region{va: va, pages: pages})
	}
	for i := 0; i < 3; i++ {
		mapOne(256 + rng.Intn(256))
	}

	ops := 400
	if testing.Short() {
		ops = 150
	}
	forks := 0
	done := 0
	var step func()
	step = func() {
		if done >= ops {
			return
		}
		done++
		r := &regions[rng.Intn(len(regions))]
		switch roll := rng.Intn(100); {
		case roll < 2 && len(regions) > 1:
			// Munmap a region (with misses possibly in flight — the unmap
			// barrier path), then map a fresh one so the walk keeps width.
			last := regions[len(regions)-1]
			regions = regions[:len(regions)-1]
			s.K.Munmap(th, last.va, func() {
				mapOne(128 + rng.Intn(128))
				step()
			})
		case roll < 5:
			s.K.Msync(th, r.va, step)
		case roll < 7 && forks < 2:
			// Fork drops the fast flag and rewrites LBA PTEs; it is
			// synchronous control-path work.
			forks++
			s.K.Fork(s.Proc)
			step()
		default:
			va := r.va + pagetable.VAddr(rng.Intn(r.pages))*4096
			s.K.Access(th, va, rng.Intn(3) == 0, func(mmu.Result) { step() })
		}
	}
	step()
	s.RunWhile(func() bool { return done < ops })
	if done < ops {
		t.Fatalf("walk stalled at %d/%d ops (lost completion?)", done, ops)
	}
	// Drain background writebacks, retries and daemon work before auditing.
	s.RunFor(50 * sim.Millisecond)
	if vs := System(s); len(vs) != 0 {
		t.Fatalf("seed %d: invariant violations after %d ops:\n%v", seed, ops, vs)
	}
	rec := s.Recovery()
	if rec.InjectedTransient+rec.InjectedUECC+rec.InjectedDrops == 0 {
		t.Fatalf("seed %d: no faults injected; the property run is not exercising error paths", seed)
	}
}
