package check

import (
	"testing"

	"hwdp/internal/core"
	"hwdp/internal/fs"
	"hwdp/internal/kernel"
	"hwdp/internal/mmu"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
)

func buildSystem(t *testing.T) *core.System {
	t.Helper()
	cfg := core.DefaultConfig(kernel.HWDP)
	cfg.MemoryBytes = 8 << 20
	cfg.FSBlocks = 1 << 16
	cfg.DeviceJitter = false
	cfg.Kernel.KptedPeriod = 2 * sim.Millisecond
	return cfg.Build()
}

func TestCleanSystemHasNoViolations(t *testing.T) {
	s := buildSystem(t)
	if vs := System(s); len(vs) != 0 {
		t.Fatalf("violations on fresh machine: %v", vs)
	}
}

func TestBusySystemHasNoViolations(t *testing.T) {
	s := buildSystem(t)
	va, _, err := s.MapFile("f", 4096, fs.SeededInit(1), s.FastFlags())
	if err != nil {
		t.Fatal(err)
	}
	th := s.WorkloadThread(0)
	rng := sim.NewRand(3)
	done := 0
	var step func()
	step = func() {
		if done >= 1500 {
			return
		}
		done++
		s.K.Access(th, va+pagetable.VAddr(rng.Intn(4096)*4096), rng.Intn(4) == 0,
			func(mmu.Result) { step() })
	}
	step()
	s.RunWhile(func() bool { return done < 1500 })
	s.RunFor(20 * sim.Millisecond)
	if vs := System(s); len(vs) != 0 {
		t.Fatalf("violations after workload: %v", vs)
	}
}

func TestDetectsAliasedFrames(t *testing.T) {
	s := buildSystem(t)
	va, _, _ := s.MapFile("f", 8, fs.SeededInit(1), s.FastFlags())
	th := s.WorkloadThread(0)
	ok := false
	s.K.Access(th, va, false, func(mmu.Result) { ok = true })
	s.RunWhile(func() bool { return !ok })
	// Corrupt the table: alias page 1 onto page 0's frame.
	e, _ := s.Proc.AS.Table.Lookup(va)
	s.Proc.AS.Table.Set(va+4096, pagetable.MakePresent(e.PFN(), pagetable.Prot{}, true))
	found := false
	for _, v := range System(s) {
		if v.Invariant == "no-aliasing" {
			found = true
		}
	}
	if !found {
		t.Fatal("aliased frame not detected")
	}
}

func TestDetectsUnallocatedFrame(t *testing.T) {
	s := buildSystem(t)
	va, _, _ := s.MapFile("f", 8, nil, s.FastFlags())
	// Map a frame the allocator never handed out.
	s.Proc.AS.Table.Set(va, pagetable.MakePresent(1<<30, pagetable.Prot{}, true))
	found := false
	for _, v := range System(s) {
		if v.Invariant == "pte-frame" {
			found = true
		}
	}
	if !found {
		t.Fatal("unallocated frame not detected")
	}
}

func TestDetectsBadSID(t *testing.T) {
	s := buildSystem(t)
	va, _, _ := s.MapFile("f", 8, nil, s.FastFlags())
	s.Proc.AS.Table.Set(va, pagetable.MakeLBA(
		pagetable.BlockAddr{SID: 5, LBA: 1}, pagetable.Prot{}))
	found := false
	for _, v := range System(s) {
		if v.Invariant == "sid-routing" {
			found = true
		}
	}
	if !found {
		t.Fatal("bad SID not detected")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{"x", "y"}
	if v.String() != "x: y" {
		t.Fatal("render")
	}
}
