// Package check provides machine-wide invariant validation for a running
// simulation. It inspects the kernel, memory, page tables and SMU and
// returns every violation found. The test suite runs it inside stress
// workloads; downstream users can call it from their own experiments (via
// hwdp.System.CheckInvariants) to catch model misuse early.
package check

import (
	"fmt"

	"hwdp/internal/core"
	"hwdp/internal/mem"
	"hwdp/internal/pagetable"
)

// Violation is one broken invariant.
type Violation struct {
	Invariant string
	Detail    string
}

// String renders the violation as "invariant: detail".
func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// report collects violations.
type report struct{ out []Violation }

func (r *report) addf(inv, format string, args ...any) {
	r.out = append(r.out, Violation{inv, fmt.Sprintf(format, args...)})
}

// System validates every structural invariant of the machine:
//
//   - frame accounting: allocated + free == total;
//   - no aliasing: no physical frame is named by two present, synced PTEs
//     of different file pages;
//   - Table I discipline: every PTE is in one of the four legal states,
//     and non-present LBA-augmented PTEs name an attached socket;
//   - SMU: outstanding misses never exceed the PMSHR size, and free-page
//     queues only hold frames the allocator handed out.
func System(s *core.System) []Violation {
	var r report
	checkFrames(&r, s)
	checkPageTables(&r, s)
	checkSMU(&r, s)
	return r.out
}

func checkFrames(r *report, s *core.System) {
	if s.Mem.FreeFrames() > s.Mem.Frames() {
		r.addf("frame-accounting", "free %d > total %d", s.Mem.FreeFrames(), s.Mem.Frames())
	}
	// Allocator conservation: outstanding allocations (allocs − frees)
	// plus the free list must cover physical memory exactly. A shortfall
	// means the allocator double-handed a frame; an excess means one was
	// freed twice or invented.
	outstanding := s.Mem.Allocs() - s.Mem.Frees()
	if s.Mem.FreeFrames()+outstanding != s.Mem.Frames() {
		r.addf("frame-conservation", "free %d + outstanding %d != total %d",
			s.Mem.FreeFrames(), outstanding, s.Mem.Frames())
	}
}

func checkPageTables(r *report, s *core.System) {
	type owner struct {
		va pagetable.VAddr
	}
	// Every process is audited; the aliasing map is per address space
	// (sharing one frame across processes through the page cache is
	// legal, two virtual pages of one process naming one frame is not).
	for _, p := range s.K.Processes() {
		p := p
		frameOwners := make(map[mem.FrameID]owner)
		p.AS.Table.ScanAll(func(va pagetable.VAddr, pte pagetable.EntryRef) {
			e := pte.Get()
			switch e.State() {
			case pagetable.StateResident, pagetable.StateResidentUnsynced:
				f := e.PFN()
				if !s.Mem.Allocated(f) {
					r.addf("pte-frame", "ASID %d: PTE at %#x names unallocated frame %d",
						p.AS.ASID, uint64(va), f)
					return
				}
				if prev, dup := frameOwners[f]; dup {
					r.addf("no-aliasing", "ASID %d: frame %d mapped at %#x and %#x",
						p.AS.ASID, f, uint64(prev.va), uint64(va))
				}
				frameOwners[f] = owner{va}
			case pagetable.StateNotPresentLBA:
				b := e.Block()
				if b.LBA != pagetable.AnonFirstTouch && int(b.SID) >= len(s.SMUs) {
					r.addf("sid-routing", "ASID %d: PTE at %#x names socket %d of %d",
						p.AS.ASID, uint64(va), b.SID, len(s.SMUs))
				}
			}
		})
	}
}

func checkSMU(r *report, s *core.System) {
	for sid, u := range s.SMUs {
		if u.Outstanding() > u.Entries() {
			r.addf("pmshr-bound", "socket %d: %d outstanding > %d entries",
				sid, u.Outstanding(), u.Entries())
		}
		for qi, q := range u.Queues() {
			if q.Len() < 0 || q.Len() > q.Depth() {
				r.addf("free-queue", "socket %d queue %d: len %d of depth %d",
					sid, qi, q.Len(), q.Depth())
			}
		}
		// Frame conservation: every frame the OS handed the SMU was either
		// installed into a PTE or is still held in a queue, prefetch buffer
		// or PMSHR entry. A shortfall means a frame leaked on some error
		// path; an excess means one was double-counted or double-requeued.
		st := u.Stats()
		held := uint64(u.FramesHeld())
		if st.FramesAccepted != st.FramesInstalled+held {
			r.addf("frame-conservation",
				"socket %d: accepted %d != installed %d + held %d (recycled %d)",
				sid, st.FramesAccepted, st.FramesInstalled, held, st.FramesRecycled)
		}
	}
}
