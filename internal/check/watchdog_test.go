package check

import (
	"testing"

	"hwdp/internal/fs"
	"hwdp/internal/mmu"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
)

// A watchdog attached to a healthy oversubscribed run must tick
// repeatedly and record nothing.
func TestWatchdogCleanUnderPressure(t *testing.T) {
	s := buildSystem(t) // 8 MiB of memory
	// 16 MiB mapped: 2x oversubscription drives eviction and reclaim.
	va, _, err := s.MapFile("big", 4096, fs.SeededInit(1), s.FastFlags())
	if err != nil {
		t.Fatal(err)
	}
	w := NewWatchdog(s, 200*sim.Microsecond)
	th := s.WorkloadThread(0)
	rng := sim.NewRand(7)
	done := 0
	var step func()
	step = func() {
		if done >= 2000 {
			return
		}
		done++
		s.K.Access(th, va+pagetable.VAddr(rng.Intn(4096)*4096), rng.Intn(3) == 0,
			func(mmu.Result) { step() })
	}
	step()
	s.RunWhile(func() bool { return done < 2000 })
	w.Stop()
	if w.Runs() == 0 {
		t.Fatal("watchdog never ticked")
	}
	if vs := w.Violations(); len(vs) != 0 {
		t.Fatalf("watchdog violations on a healthy run: %v", vs)
	}
	if w.Truncated() {
		t.Fatal("truncated without violations")
	}
}

// A watchdog must observe injected corruption: freeing a mapped frame
// behind the kernel's back leaves a present PTE naming an unallocated
// frame, which the next audit tick reports.
func TestWatchdogDetectsInjectedCorruption(t *testing.T) {
	s := buildSystem(t)
	va, _, err := s.MapFile("f", 16, fs.SeededInit(2), s.FastFlags())
	if err != nil {
		t.Fatal(err)
	}
	// Fault one page in so a present PTE exists to corrupt.
	th := s.WorkloadThread(0)
	faulted := false
	s.K.Access(th, va, false, func(mmu.Result) { faulted = true })
	s.RunWhile(func() bool { return !faulted })

	w := NewWatchdog(s, 100*sim.Microsecond)
	_, _, pte, ok := s.Proc.AS.Table.Walk(va)
	if !ok || !pte.Get().Present() {
		t.Fatal("faulted page not present")
	}
	if err := s.Mem.Free(pte.Get().PFN()); err != nil {
		t.Fatal(err)
	}
	s.RunFor(1 * sim.Millisecond)
	w.Stop()
	if w.Runs() == 0 {
		t.Fatal("watchdog never ticked")
	}
	found := false
	for _, v := range w.Violations() {
		if v.Invariant == "pte-frame" {
			found = true
		}
	}
	if !found {
		t.Fatalf("injected corruption not detected; got %v", w.Violations())
	}
}

// The watchdog caps its violation list instead of growing without bound.
func TestWatchdogViolationCap(t *testing.T) {
	s := buildSystem(t)
	w := NewWatchdog(s, 50*sim.Microsecond)
	for i := 0; i < maxWatchdogViolations+10; i++ {
		w.record(Violation{"synthetic", "x"})
	}
	if len(w.Violations()) != maxWatchdogViolations {
		t.Fatalf("cap not enforced: %d", len(w.Violations()))
	}
	if !w.Truncated() {
		t.Fatal("truncation not reported")
	}
	w.Stop()
	_ = s
}
