// Package fault provides deterministic, seed-reproducible injection of
// hardware error scenarios into the simulated storage stack. The paper's
// resilience story (Section V, "Long Latency I/O") is that hardware demand
// paging keeps the OS off the page-miss critical path *except* for rare
// slow paths — device errors, command losses and latency outliers — which
// must degrade gracefully to the software exception path. An Injector
// attaches to an ssd.Device and decides, per command, whether to fault it;
// all randomness comes from the simulator's seeded PRNG so every run
// replays exactly.
package fault

import (
	"fmt"

	"hwdp/internal/sim"
)

// Kind classifies an injected fault.
type Kind int

// Kinds. The zero value None means "no fault".
const (
	None Kind = iota
	// Transient is a recoverable media error: the command completes with a
	// retryable NVMe status (command interrupted) and a resubmission will
	// usually succeed.
	Transient
	// UECC is an uncorrectable media error: the data is gone and retries
	// never help (unrecovered read / write fault status).
	UECC
	// Drop loses the command inside the device: no completion is ever
	// posted and no DMA happens. Only a host-side timeout recovers.
	Drop
	// Spike is a latency outlier: the command completes correctly but its
	// service time is multiplied by SpikeFactor.
	Spike
)

// String returns the fault kind's display name.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Transient:
		return "transient"
	case UECC:
		return "uecc"
	case Drop:
		return "drop"
	case Spike:
		return "spike"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// DefaultSpikeFactor is the service-time multiplier used by Spike rules
// that leave SpikeFactor zero.
const DefaultSpikeFactor = 10.0

// Rule describes one fault scenario: what to inject, with what probability,
// and which commands are eligible. Zero-valued filters match everything.
type Rule struct {
	Kind Kind
	// Prob is the per-matching-command injection probability in [0, 1].
	// 1 injects on every match without consuming a random draw.
	Prob float64
	// LBAStart/LBAEnd restrict the rule to commands whose starting LBA
	// falls in [LBAStart, LBAEnd). Both zero means all LBAs.
	LBAStart, LBAEnd uint64
	// ReadsOnly / WritesOnly restrict the rule to one opcode class.
	ReadsOnly, WritesOnly bool
	// Queue restricts the rule to one submission queue ID (0 = any queue;
	// real queues in this model start at 1). Targeting the SMU's isolated
	// queue exercises the hardware path's degradation without perturbing
	// the OS block layer.
	Queue uint16
	// Burst makes faults clustered: once a probability draw triggers, the
	// next Burst-1 matching commands fault too (error bursts are the
	// common failure mode of flash media).
	Burst int
	// SpikeFactor is the service-time multiplier for Kind == Spike
	// (DefaultSpikeFactor when zero).
	SpikeFactor float64
	// MaxInjections caps how many faults the rule injects over the run
	// (0 = unlimited).
	MaxInjections uint64
}

func (r Rule) matches(read bool, lba uint64, queue uint16) bool {
	if r.ReadsOnly && !read {
		return false
	}
	if r.WritesOnly && read {
		return false
	}
	if r.Queue != 0 && r.Queue != queue {
		return false
	}
	if r.LBAEnd > r.LBAStart && (lba < r.LBAStart || lba >= r.LBAEnd) {
		return false
	}
	return true
}

// Decision is the injector's verdict for one command.
type Decision struct {
	Kind        Kind
	SpikeFactor float64
}

// Stats counts the injector's activity.
type Stats struct {
	Evaluated uint64 // commands presented to Decide
	Injected  uint64 // commands faulted
	Transient uint64
	UECC      uint64
	Drops     uint64
	Spikes    uint64
}

// Injector decides, per device command, whether to inject a fault. Rules
// are evaluated in order; the first hit wins. The injector owns a forked
// PRNG stream, so injection decisions never perturb the device's own
// jitter stream and same-seed runs replay bit-identically.
type Injector struct {
	rng      *sim.Rand
	rules    []Rule
	burst    []int    // remaining burst hits per rule
	injected []uint64 // injections performed per rule
	stats    Stats
}

// NewInjector builds an injector over the given rules. It panics on
// malformed rules (probability outside [0,1], missing kind) — always a
// harness bug.
func NewInjector(rng *sim.Rand, rules ...Rule) *Injector {
	if rng == nil {
		panic("fault: injector needs a PRNG")
	}
	for i, r := range rules {
		if r.Kind == None {
			panic(fmt.Sprintf("fault: rule %d has no kind", i))
		}
		if r.Prob < 0 || r.Prob > 1 {
			panic(fmt.Sprintf("fault: rule %d probability %v outside [0,1]", i, r.Prob))
		}
	}
	return &Injector{
		rng:      rng,
		rules:    rules,
		burst:    make([]int, len(rules)),
		injected: make([]uint64, len(rules)),
	}
}

// Decide evaluates the rules for one command. read reports the opcode
// class, lba the starting LBA, queue the submission queue ID.
func (in *Injector) Decide(read bool, lba uint64, queue uint16) Decision {
	in.stats.Evaluated++
	for i := range in.rules {
		r := &in.rules[i]
		if !r.matches(read, lba, queue) {
			continue
		}
		if r.MaxInjections > 0 && in.injected[i] >= r.MaxInjections {
			continue
		}
		hit, fromBurst := false, false
		switch {
		case in.burst[i] > 0:
			in.burst[i]--
			hit, fromBurst = true, true
		case r.Prob >= 1:
			hit = true
		case r.Prob > 0 && in.rng.Float64() < r.Prob:
			hit = true
		}
		if !hit {
			continue
		}
		if !fromBurst && r.Burst > 1 {
			in.burst[i] = r.Burst - 1
		}
		in.injected[i]++
		in.stats.Injected++
		//hwdp:exhaustive
		switch r.Kind {
		case Transient:
			in.stats.Transient++
		case UECC:
			in.stats.UECC++
		case Drop:
			in.stats.Drops++
		case Spike:
			in.stats.Spikes++
		case None:
			// A rule with Kind None matches but injects nothing; only the
			// aggregate Injected counter above moves.
		}
		sf := r.SpikeFactor
		if sf <= 1 {
			sf = DefaultSpikeFactor
		}
		return Decision{Kind: r.Kind, SpikeFactor: sf}
	}
	return Decision{}
}

// Stats returns a copy of the counters.
func (in *Injector) Stats() Stats { return in.stats }
