package fault

import (
	"testing"

	"hwdp/internal/sim"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		None:      "none",
		Transient: "transient",
		UECC:      "uecc",
		Drop:      "drop",
		Spike:     "spike",
		Kind(42):  "kind(42)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestCertainInjection(t *testing.T) {
	in := NewInjector(sim.NewRand(1), Rule{Kind: UECC, Prob: 1})
	for i := 0; i < 10; i++ {
		if d := in.Decide(true, uint64(i), 1); d.Kind != UECC {
			t.Fatalf("command %d: kind = %v, want uecc", i, d.Kind)
		}
	}
	st := in.Stats()
	if st.Evaluated != 10 || st.Injected != 10 || st.UECC != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestZeroProbabilityNeverInjects(t *testing.T) {
	in := NewInjector(sim.NewRand(1), Rule{Kind: Transient, Prob: 0})
	for i := 0; i < 1000; i++ {
		if d := in.Decide(true, uint64(i), 1); d.Kind != None {
			t.Fatal("prob 0 injected")
		}
	}
}

func TestLBARangeFilter(t *testing.T) {
	in := NewInjector(sim.NewRand(1), Rule{Kind: UECC, Prob: 1, LBAStart: 100, LBAEnd: 110})
	if d := in.Decide(true, 99, 1); d.Kind != None {
		t.Fatal("lba 99 matched [100,110)")
	}
	if d := in.Decide(true, 100, 1); d.Kind != UECC {
		t.Fatal("lba 100 missed [100,110)")
	}
	if d := in.Decide(true, 109, 1); d.Kind != UECC {
		t.Fatal("lba 109 missed [100,110)")
	}
	if d := in.Decide(true, 110, 1); d.Kind != None {
		t.Fatal("lba 110 matched [100,110)")
	}
}

func TestOpcodeAndQueueFilters(t *testing.T) {
	in := NewInjector(sim.NewRand(1),
		Rule{Kind: Transient, Prob: 1, ReadsOnly: true, Queue: 7})
	if d := in.Decide(false, 0, 7); d.Kind != None {
		t.Fatal("write matched a reads-only rule")
	}
	if d := in.Decide(true, 0, 8); d.Kind != None {
		t.Fatal("queue 8 matched a queue-7 rule")
	}
	if d := in.Decide(true, 0, 7); d.Kind != Transient {
		t.Fatal("matching read on queue 7 not injected")
	}

	wr := NewInjector(sim.NewRand(1), Rule{Kind: Transient, Prob: 1, WritesOnly: true})
	if d := wr.Decide(true, 0, 1); d.Kind != None {
		t.Fatal("read matched a writes-only rule")
	}
	if d := wr.Decide(false, 0, 1); d.Kind != Transient {
		t.Fatal("write missed a writes-only rule")
	}
}

func TestBurstClustersAndTerminates(t *testing.T) {
	// A triggering draw faults the next Burst-1 commands too, then the
	// burst ends (it must not re-arm itself).
	in := NewInjector(sim.NewRand(3), Rule{Kind: Transient, Prob: 0.01, Burst: 4})
	run := make([]bool, 4000)
	for i := range run {
		run[i] = in.Decide(true, uint64(i), 1).Kind != None
	}
	if in.Stats().Injected == 0 {
		t.Fatal("burst rule never triggered in 4000 commands")
	}
	// Mid-burst commands never draw the PRNG, so a new trigger can only
	// land right after a burst ends: every maximal run of injections that
	// doesn't touch the stream end has a length that is a multiple of 4.
	runLen := 0
	for i, f := range run {
		if f {
			runLen++
			continue
		}
		if runLen > 0 && runLen%4 != 0 {
			t.Fatalf("run of %d faults ending at %d not a multiple of burst 4", runLen, i)
		}
		runLen = 0
	}
}

func TestMaxInjectionsCap(t *testing.T) {
	in := NewInjector(sim.NewRand(1), Rule{Kind: Drop, Prob: 1, MaxInjections: 3})
	n := 0
	for i := 0; i < 100; i++ {
		if in.Decide(true, uint64(i), 1).Kind == Drop {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("injected %d, want 3 (capped)", n)
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	in := NewInjector(sim.NewRand(1),
		Rule{Kind: UECC, Prob: 1, LBAStart: 10, LBAEnd: 20},
		Rule{Kind: Transient, Prob: 1})
	if d := in.Decide(true, 15, 1); d.Kind != UECC {
		t.Fatalf("kind = %v, want uecc (first rule)", d.Kind)
	}
	if d := in.Decide(true, 5, 1); d.Kind != Transient {
		t.Fatalf("kind = %v, want transient (second rule)", d.Kind)
	}
}

func TestSpikeFactorDefaults(t *testing.T) {
	in := NewInjector(sim.NewRand(1),
		Rule{Kind: Spike, Prob: 1, MaxInjections: 1},
		Rule{Kind: Spike, Prob: 1, SpikeFactor: 50})
	if d := in.Decide(true, 0, 1); d.SpikeFactor != DefaultSpikeFactor {
		t.Fatalf("default spike factor = %v", d.SpikeFactor)
	}
	if d := in.Decide(true, 0, 1); d.SpikeFactor != 50 {
		t.Fatalf("spike factor = %v, want 50", d.SpikeFactor)
	}
}

// TestDeterminism: two injectors with the same seed and rules must make
// bit-identical decisions for the same command stream.
func TestDeterminism(t *testing.T) {
	rules := []Rule{
		{Kind: Transient, Prob: 0.05, ReadsOnly: true},
		{Kind: Drop, Prob: 0.01, Burst: 3},
		{Kind: Spike, Prob: 0.1, SpikeFactor: 25},
	}
	mk := func() []Decision {
		in := NewInjector(sim.NewRand(42), rules...)
		cmds := sim.NewRand(7)
		out := make([]Decision, 5000)
		for i := range out {
			out[i] = in.Decide(cmds.Intn(2) == 0, cmds.Uint64()%4096, uint16(1+cmds.Intn(4)))
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { NewInjector(nil, Rule{Kind: Drop, Prob: 1}) },
		func() { NewInjector(sim.NewRand(1), Rule{Prob: 1}) },
		func() { NewInjector(sim.NewRand(1), Rule{Kind: Drop, Prob: 1.5}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			bad()
		}()
	}
}
