package metrics

import (
	"strings"
	"testing"
)

func TestPSISingleStall(t *testing.T) {
	p := NewPSI()
	p.BeginStall(StallAlloc, 100)
	p.EndStall(StallAlloc, 350, 250)
	if got := p.Stalls(StallAlloc); got != 1 {
		t.Fatalf("stalls = %d, want 1", got)
	}
	if got := p.TaskTime(StallAlloc); got != 250 {
		t.Fatalf("task time = %d, want 250", got)
	}
	if got := p.SomeTime(StallAlloc); got != 250 {
		t.Fatalf("some time = %d, want 250", got)
	}
	if p.Active(StallAlloc) != 0 {
		t.Fatal("staller leaked")
	}
}

// Two overlapping stallers: task-time sums both waits, some-time covers
// only the union of the wall-clock interval.
func TestPSIOverlappingStalls(t *testing.T) {
	p := NewPSI()
	p.BeginStall(StallPMSHRBacklog, 0)
	p.BeginStall(StallPMSHRBacklog, 100)
	p.EndStall(StallPMSHRBacklog, 300, 300)
	p.EndStall(StallPMSHRBacklog, 400, 300)
	if got := p.TaskTime(StallPMSHRBacklog); got != 600 {
		t.Fatalf("task time = %d, want 600", got)
	}
	if got := p.SomeTime(StallPMSHRBacklog); got != 400 {
		t.Fatalf("some time = %d, want 400 (union of [0,400])", got)
	}
}

// An open stall is counted up to the latest observed timestamp.
func TestPSIOpenStallCounted(t *testing.T) {
	p := NewPSI()
	p.BeginStall(StallSQFull, 50)
	p.BeginStall(StallWritebackThrottle, 500) // advances lastNow
	if got := p.SomeTime(StallSQFull); got != 450 {
		t.Fatalf("open some time = %d, want 450", got)
	}
	if p.Active(StallSQFull) != 1 {
		t.Fatal("open stall not active")
	}
}

func TestPSINilSafe(t *testing.T) {
	var p *PSI
	p.BeginStall(StallAlloc, 0) // must not panic
	p.EndStall(StallAlloc, 10, 10)
}

func TestPSIStringListsAllKinds(t *testing.T) {
	p := NewPSI()
	s := p.String()
	for k := StallKind(0); k < NumStallKinds; k++ {
		if !strings.Contains(s, k.String()) {
			t.Fatalf("report missing kind %q:\n%s", k, s)
		}
	}
}

func TestRecoveryBacklogWaitSummary(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 100; i++ {
		h.Record(i * 1000)
	}
	var r Recovery
	r.SetBacklogWait(h)
	if r.BacklogWaits != 100 {
		t.Fatalf("waits = %d, want 100", r.BacklogWaits)
	}
	if r.BacklogWaitMaxPS != 100000 {
		t.Fatalf("max = %d, want 100000", r.BacklogWaitMaxPS)
	}
	if r.BacklogWaitP50PS <= 0 || r.BacklogWaitP99PS < r.BacklogWaitP50PS {
		t.Fatalf("percentiles out of order: p50 %d p99 %d",
			r.BacklogWaitP50PS, r.BacklogWaitP99PS)
	}
	if !strings.Contains(r.String(), "backlog wait") {
		t.Fatal("String() missing backlog wait row")
	}
	// Empty histogram leaves the summary zero.
	var r2 Recovery
	r2.SetBacklogWait(NewHistogram())
	if r2.BacklogWaits != 0 {
		t.Fatal("empty histogram populated summary")
	}
}
