package metrics

import "testing"

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i%10_000_000 + 1))
	}
}

func BenchmarkHistogramPercentile(b *testing.B) {
	h := NewHistogram()
	for i := int64(0); i < 100000; i++ {
		h.Record(i * 37 % 10_000_000)
	}
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += h.Percentile(99)
	}
	_ = sink
}
