package metrics

import "testing"

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i%10_000_000 + 1))
	}
}

func BenchmarkHistogramPercentile(b *testing.B) {
	h := NewHistogram()
	for i := int64(0); i < 100000; i++ {
		h.Record(i * 37 % 10_000_000)
	}
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += h.Percentile(99)
	}
	_ = sink
}

// TestHistogramPercentileOrdering asserts the correctness of the pair the
// benchmarks above measure: recorded samples come back with monotonically
// nondecreasing percentiles that bracket the data range.
func TestHistogramPercentileOrdering(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Record(i)
	}
	p50, p99 := h.Percentile(50), h.Percentile(99)
	if p50 > p99 {
		t.Fatalf("p50 %d > p99 %d", p50, p99)
	}
	if p50 < 400 || p50 > 600 {
		t.Fatalf("p50 = %d for uniform 1..1000, want ~500", p50)
	}
	if p99 < 900 {
		t.Fatalf("p99 = %d for uniform 1..1000, want >=900", p99)
	}
}
