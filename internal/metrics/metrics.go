// Package metrics provides the counters and latency histograms used to
// report every figure in the evaluation. Histograms use logarithmic
// bucketing (HDR-style: power-of-two magnitude, linear sub-buckets) so
// percentiles over nanosecond-to-millisecond latencies stay accurate with
// bounded memory.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter struct{ n uint64 }

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

const subBucketBits = 5 // 32 linear sub-buckets per power of two

// Histogram records non-negative int64 samples (latencies in picoseconds)
// with ~3% relative bucket error.
type Histogram struct {
	buckets map[int32]uint64
	count   uint64
	sum     int64
	min     int64
	max     int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make(map[int32]uint64), min: math.MaxInt64}
}

func bucketIndex(v int64) int32 {
	if v < 0 {
		v = 0
	}
	if v < 1<<subBucketBits {
		return int32(v)
	}
	msb := 63 - leadingZeros(uint64(v))
	shift := msb - subBucketBits
	sub := (v >> uint(shift)) & ((1 << subBucketBits) - 1)
	return int32((int64(shift)+1)<<subBucketBits | sub)
}

func bucketLow(idx int32) int64 {
	if idx < 1<<subBucketBits {
		return int64(idx)
	}
	shift := int64(idx>>subBucketBits) - 1
	sub := int64(idx & ((1 << subBucketBits) - 1))
	return (1<<subBucketBits | sub) << uint(shift)
}

func leadingZeros(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the sample mean, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest sample, or 0 for an empty histogram.
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample, or 0 for an empty histogram.
func (h *Histogram) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// bucketEnd returns the exclusive upper bound of bucket idx. Indices are
// contiguous, so this is just the next bucket's lower bound.
func bucketEnd(idx int32) int64 { return bucketLow(idx + 1) }

// Percentile returns the approximate p-th percentile (p in [0,100]).
// Within the bucket containing the target rank, the value is linearly
// interpolated assuming samples are evenly spread over the bucket, so
// quantiles no longer snap to bucket lower bounds (which understated
// p50/p99 by up to one bucket width, ~3%).
func (h *Histogram) Percentile(p float64) int64 {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	target := uint64(math.Ceil(float64(h.count) * p / 100))
	idxs := make([]int32, 0, len(h.buckets))
	for idx := range h.buckets {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	var cum uint64
	for _, idx := range idxs {
		n := h.buckets[idx]
		cum += n
		if cum >= target {
			lo := bucketLow(idx)
			hi := bucketEnd(idx)
			// The target rank is sample (target - cumBefore) of the n in
			// this bucket; treat each as sitting at the midpoint of its
			// 1/n slice of [lo, hi).
			rank := float64(target-(cum-n)) - 0.5
			v := lo + int64(rank/float64(n)*float64(hi-lo))
			if v >= hi {
				v = hi - 1
			}
			if v < lo {
				v = lo
			}
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Reset clears all samples.
func (h *Histogram) Reset() {
	h.buckets = make(map[int32]uint64)
	h.count = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = 0
}

// Merge adds all samples of other into h.
func (h *Histogram) Merge(other *Histogram) {
	for idx, n := range other.buckets {
		h.buckets[idx] += n
	}
	h.count += other.count
	h.sum += other.sum
	if other.count > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// Recovery aggregates the per-layer error-recovery counters of one run:
// what the injector put in, and what each layer — device, SMU, block
// layer, fault handler — did to absorb it. It is the one-stop report for
// fault-storm experiments.
type Recovery struct {
	// Injected faults, by kind (device boundary).
	InjectedTransient uint64
	InjectedUECC      uint64
	InjectedDrops     uint64
	InjectedSpikes    uint64
	DeviceAborts      uint64 // host aborts that canceled an in-flight command

	// SMU hardware recovery.
	SMURetries        uint64 // command resubmissions with backoff
	SMUTimeouts       uint64 // completion timeouts (lost commands)
	SMUIOErrors       uint64 // error completions the SMU observed
	SMUUECCFailures   uint64 // unrecoverable media errors on the SMU path
	SMUFramesRecycled uint64 // popped frames returned to the free queue

	// OS block layer and fault handler.
	BlockRetries    uint64
	BlockTimeouts   uint64
	HWBounceFaults  uint64 // walks degraded from hardware to the OS path
	SIGBUSKills     uint64
	WritebackErrors uint64

	// PMSHR backlog wait-time distribution (requests that found all PMSHR
	// slots busy and waited for one). The fields summarize the histogram
	// recorded by the SMU so Recovery stays a flat comparable value; the
	// full distribution is available from the system's BacklogWait
	// histogram.
	BacklogWaits     uint64 // requests that waited for a PMSHR slot
	BacklogWaitP50PS int64  // median wait, picoseconds
	BacklogWaitP99PS int64  // p99 wait, picoseconds
	BacklogWaitMaxPS int64  // worst wait, picoseconds
}

// SetBacklogWait fills the backlog-wait summary fields from the recorded
// wait-time histogram (nil or empty leaves them zero).
func (r *Recovery) SetBacklogWait(h *Histogram) {
	if h == nil || h.Count() == 0 {
		return
	}
	r.BacklogWaits = h.Count()
	r.BacklogWaitP50PS = h.Percentile(50)
	r.BacklogWaitP99PS = h.Percentile(99)
	r.BacklogWaitMaxPS = h.Max()
}

// String renders the recovery report as an aligned two-column table.
func (r Recovery) String() string {
	rows := []struct {
		label string
		v     uint64
	}{
		{"injected transient", r.InjectedTransient},
		{"injected UECC", r.InjectedUECC},
		{"injected drops", r.InjectedDrops},
		{"injected spikes", r.InjectedSpikes},
		{"device aborts", r.DeviceAborts},
		{"SMU retries", r.SMURetries},
		{"SMU timeouts", r.SMUTimeouts},
		{"SMU I/O errors", r.SMUIOErrors},
		{"SMU UECC failures", r.SMUUECCFailures},
		{"SMU frames recycled", r.SMUFramesRecycled},
		{"block-layer retries", r.BlockRetries},
		{"block-layer timeouts", r.BlockTimeouts},
		{"HW-bounced faults", r.HWBounceFaults},
		{"SIGBUS kills", r.SIGBUSKills},
		{"writeback errors", r.WritebackErrors},
		{"PMSHR backlog waits", r.BacklogWaits},
	}
	width := 0
	for _, row := range rows {
		if len(row.label) > width {
			width = len(row.label)
		}
	}
	var sb strings.Builder
	for _, row := range rows {
		fmt.Fprintf(&sb, "  %-*s %12d\n", width, row.label, row.v)
	}
	if r.BacklogWaits > 0 {
		fmt.Fprintf(&sb, "  %-*s p50 %.2fus  p99 %.2fus  max %.2fus\n",
			width, "backlog wait", float64(r.BacklogWaitP50PS)/1e6,
			float64(r.BacklogWaitP99PS)/1e6, float64(r.BacklogWaitMaxPS)/1e6)
	}
	return sb.String()
}

// Breakdown is an ordered list of named component values; it renders the
// stacked-bar figures of the paper (Figs. 1, 3, 11, 15) as text tables.
type Breakdown struct {
	Labels []string
	Values []float64
	Unit   string
}

// Add appends one component.
func (b *Breakdown) Add(label string, v float64) {
	b.Labels = append(b.Labels, label)
	b.Values = append(b.Values, v)
}

// Total returns the sum of all components.
func (b *Breakdown) Total() float64 {
	var t float64
	for _, v := range b.Values {
		t += v
	}
	return t
}

// String renders the breakdown as an aligned table with per-component
// percentages of the total.
func (b *Breakdown) String() string {
	var sb strings.Builder
	total := b.Total()
	width := 0
	for _, l := range b.Labels {
		if len(l) > width {
			width = len(l)
		}
	}
	for i, l := range b.Labels {
		pct := 0.0
		if total != 0 {
			pct = 100 * b.Values[i] / total
		}
		fmt.Fprintf(&sb, "  %-*s %12.3f %-4s (%5.1f%%)\n", width, l, b.Values[i], b.Unit, pct)
	}
	fmt.Fprintf(&sb, "  %-*s %12.3f %s\n", width, "TOTAL", total, b.Unit)
	return sb.String()
}
