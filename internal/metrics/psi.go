package metrics

import (
	"fmt"
	"strings"
)

// StallKind names one source of memory-pressure stalling, mirroring the
// layers the paper's degradation story crosses: frame allocation (direct
// reclaim), the PMSHR backlog (all 32 slots busy), dirty-writeback
// throttling, the OS submission queue filling up under I/O storms, and the
// fleet QoS layer parking requests from tenants over their admission caps.
type StallKind int

// Stall kinds tracked by PSI. NumStallKinds bounds the arrays.
const (
	StallAlloc StallKind = iota
	StallPMSHRBacklog
	StallWritebackThrottle
	StallSQFull
	StallQoSThrottle
	NumStallKinds
)

// String returns the stall kind's display name.
func (k StallKind) String() string {
	switch k {
	case StallAlloc:
		return "alloc"
	case StallPMSHRBacklog:
		return "pmshr-backlog"
	case StallWritebackThrottle:
		return "writeback-throttle"
	case StallSQFull:
		return "sq-full"
	case StallQoSThrottle:
		return "qos-throttle"
	}
	return "?"
}

// PSI is pressure-stall-information accounting, modeled on Linux's
// /proc/pressure: for each stall kind it tracks how many stalls began, the
// total task-time spent stalled (the "full" view: each concurrent staller
// accumulates its own wait), and the wall-clock time during which at least
// one task was stalled (the "some" view). Time arguments are raw int64
// simulation timestamps (picoseconds); the metrics package stays free of
// simulator imports so every layer can feed it.
//
// Recording is pure accounting — PSI never schedules events or allocates
// on the hot path — so attaching it to a system cannot perturb event
// ordering or fixed-seed reproducibility.
type PSI struct {
	stalls    [NumStallKinds]uint64 // stall events begun
	taskTime  [NumStallKinds]int64  // summed per-staller stall time
	someTime  [NumStallKinds]int64  // wall time with >= 1 staller
	active    [NumStallKinds]int    // stallers currently waiting
	someSince [NumStallKinds]int64  // when active went 0 -> >0
	lastNow   int64                 // latest timestamp observed (for String)
}

// NewPSI returns empty pressure accounting.
func NewPSI() *PSI { return &PSI{} }

// BeginStall records that one task started waiting on kind at time now.
func (p *PSI) BeginStall(kind StallKind, now int64) {
	if p == nil {
		return
	}
	p.stalls[kind]++
	if p.active[kind] == 0 {
		p.someSince[kind] = now
	}
	p.active[kind]++
	if now > p.lastNow {
		p.lastNow = now
	}
}

// EndStall records that one task stopped waiting on kind at time now,
// having waited since the matching BeginStall. waited is the task's own
// stall duration (the caller tracked its begin time).
func (p *PSI) EndStall(kind StallKind, now, waited int64) {
	if p == nil {
		return
	}
	p.taskTime[kind] += waited
	if p.active[kind] > 0 {
		p.active[kind]--
		if p.active[kind] == 0 {
			p.someTime[kind] += now - p.someSince[kind]
		}
	}
	if now > p.lastNow {
		p.lastNow = now
	}
}

// Stalls returns how many stall events of the kind began.
func (p *PSI) Stalls(kind StallKind) uint64 { return p.stalls[kind] }

// TaskTime returns the summed per-staller stall time for the kind.
func (p *PSI) TaskTime(kind StallKind) int64 { return p.taskTime[kind] }

// SomeTime returns the wall-clock time during which at least one task was
// stalled on the kind. Stalls still open are counted up to the latest
// timestamp PSI has seen.
func (p *PSI) SomeTime(kind StallKind) int64 {
	t := p.someTime[kind]
	if p.active[kind] > 0 {
		t += p.lastNow - p.someSince[kind]
	}
	return t
}

// Active returns how many tasks are currently stalled on the kind.
func (p *PSI) Active(kind StallKind) int { return p.active[kind] }

// String renders the pressure report as an aligned table, one row per
// stall kind, with times in microseconds.
func (p *PSI) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "  %-18s %10s %14s %14s\n", "stall kind", "stalls", "task-time(us)", "some-time(us)")
	for k := StallKind(0); k < NumStallKinds; k++ {
		fmt.Fprintf(&sb, "  %-18s %10d %14.2f %14.2f\n",
			k.String(), p.stalls[k],
			float64(p.TaskTime(k))/1e6, float64(p.SomeTime(k))/1e6)
	}
	return sb.String()
}
