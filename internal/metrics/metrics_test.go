package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for _, v := range []int64{10, 20, 30, 40, 50} {
		h.Record(v)
	}
	if h.Count() != 5 || h.Sum() != 150 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if h.Mean() != 30 {
		t.Fatalf("mean = %f", h.Mean())
	}
	if h.Min() != 10 || h.Max() != 50 {
		t.Fatalf("min=%d max=%d", h.Min(), h.Max())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Min() != 0 {
		t.Fatalf("negative sample not clamped: %d", h.Min())
	}
}

func TestBucketMonotonicProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return bucketIndex(x) <= bucketIndex(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBucketLowInverseProperty(t *testing.T) {
	// bucketLow(bucketIndex(v)) <= v, and relative error < 1/32.
	f := func(a uint32) bool {
		v := int64(a) + 1
		idx := bucketIndex(v)
		lo := bucketLow(idx)
		if lo > v {
			return false
		}
		return float64(v-lo)/float64(v) <= 1.0/16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram()
	var vals []int64
	for i := int64(1); i <= 10000; i++ {
		h.Record(i)
		vals = append(vals, i)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, p := range []float64{10, 50, 90, 99, 99.9} {
		got := h.Percentile(p)
		exact := vals[int(math.Ceil(float64(len(vals))*p/100))-1]
		err := math.Abs(float64(got-exact)) / float64(exact)
		if err > 0.10 {
			t.Errorf("p%.1f = %d, exact %d (err %.2f)", p, got, exact, err)
		}
	}
	if h.Percentile(0) != 1 || h.Percentile(100) != 10000 {
		t.Fatalf("p0=%d p100=%d", h.Percentile(0), h.Percentile(100))
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Record(100)
	b.Record(300)
	b.Record(500)
	a.Merge(b)
	if a.Count() != 3 || a.Sum() != 900 || a.Min() != 100 || a.Max() != 500 {
		t.Fatalf("merge: count=%d sum=%d min=%d max=%d", a.Count(), a.Sum(), a.Min(), a.Max())
	}
	empty := NewHistogram()
	a.Merge(empty)
	if a.Count() != 3 {
		t.Fatal("merging empty changed count")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(42)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("reset failed")
	}
	h.Record(7)
	if h.Min() != 7 || h.Max() != 7 {
		t.Fatal("post-reset record broken")
	}
}

func TestHistogramLargeValues(t *testing.T) {
	h := NewHistogram()
	big := int64(1) << 50
	h.Record(big)
	got := h.Percentile(50)
	if float64(got) < float64(big)*0.9 {
		t.Fatalf("p50 of single huge sample = %d, want ~%d", got, big)
	}
}

func TestBreakdown(t *testing.T) {
	b := &Breakdown{Unit: "us"}
	b.Add("exception", 0.3)
	b.Add("device", 10.9)
	if math.Abs(b.Total()-11.2) > 1e-9 {
		t.Fatalf("total = %f", b.Total())
	}
	s := b.String()
	if !strings.Contains(s, "exception") || !strings.Contains(s, "TOTAL") {
		t.Fatalf("render: %s", s)
	}
}

func TestBreakdownEmptyTotal(t *testing.T) {
	b := &Breakdown{Unit: "ns"}
	if b.Total() != 0 {
		t.Fatal("empty total should be 0")
	}
	if !strings.Contains(b.String(), "TOTAL") {
		t.Fatal("empty render missing TOTAL")
	}
}

// TestHistogramPercentileInterpolation pins exact quantile values on known
// distributions. Before intra-bucket interpolation, Percentile snapped to
// the bucket's lower bound, understating every quantile by up to one
// bucket width.
func TestHistogramPercentileInterpolation(t *testing.T) {
	cases := []struct {
		name   string
		record func(h *Histogram)
		checks []struct {
			p    float64
			want int64
			tol  int64 // absolute tolerance; 0 means exact
		}
	}{
		{
			name: "uniform 1..1000",
			record: func(h *Histogram) {
				for i := int64(1); i <= 1000; i++ {
					h.Record(i)
				}
			},
			checks: []struct {
				p    float64
				want int64
				tol  int64
			}{
				{50, 500, 1},
				{99, 990, 2},
				{99.9, 999, 2},
			},
		},
		{
			name: "small values are exact", // v < 32 gets its own bucket
			record: func(h *Histogram) {
				for _, v := range []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
					h.Record(v)
				}
			},
			checks: []struct {
				p    float64
				want int64
				tol  int64
			}{
				{10, 1, 0},
				{50, 5, 0},
				{90, 9, 0},
				{99, 10, 0},
			},
		},
		{
			name: "repeated single value",
			record: func(h *Histogram) {
				for i := 0; i < 100; i++ {
					h.Record(7777)
				}
			},
			checks: []struct {
				p    float64
				want int64
				tol  int64
			}{
				{50, 7777, 0}, // clamped to [min, max]
				{99, 7777, 0},
				{99.9, 7777, 0},
			},
		},
		{
			name: "single huge sample clamps to max",
			record: func(h *Histogram) {
				h.Record(1 << 50)
			},
			checks: []struct {
				p    float64
				want int64
				tol  int64
			}{
				{50, 1 << 50, 0},
				{99.9, 1 << 50, 0},
			},
		},
		{
			name: "bimodal 10/1000",
			record: func(h *Histogram) {
				for i := 0; i < 90; i++ {
					h.Record(10)
				}
				for i := 0; i < 10; i++ {
					h.Record(1000)
				}
			},
			checks: []struct {
				p    float64
				want int64
				tol  int64
			}{
				{50, 10, 0},
				{90, 10, 0},
				{99, 1000, 16}, // one bucket width at 1000 (~1.6%)
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram()
			tc.record(h)
			for _, c := range tc.checks {
				got := h.Percentile(c.p)
				if d := got - c.want; d < -c.tol || d > c.tol {
					t.Errorf("p%g = %d, want %d ±%d", c.p, got, c.want, c.tol)
				}
			}
		})
	}
}

// TestHistogramPercentileWithinBucket checks the interpolated value never
// escapes the bucket that contains the target rank, and never escapes
// [min, max].
func TestHistogramPercentileWithinBucket(t *testing.T) {
	h := NewHistogram()
	for i := int64(100); i < 200; i += 3 {
		h.Record(i)
	}
	for p := 1.0; p < 100; p += 0.5 {
		v := h.Percentile(p)
		if v < h.Min() || v > h.Max() {
			t.Fatalf("p%g = %d escapes [%d, %d]", p, v, h.Min(), h.Max())
		}
	}
}
