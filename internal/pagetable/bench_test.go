package pagetable

import "testing"

func BenchmarkWalk(b *testing.B) {
	t := New()
	for i := 0; i < 4096; i++ {
		t.Set(VAddr(i)<<12, MakePresent(1, Prot{}, true))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _, _ = t.Walk(VAddr(i&4095) << 12)
	}
}

func BenchmarkEnsure(b *testing.B) {
	t := New()
	for i := 0; i < b.N; i++ {
		t.Ensure(VAddr(i%(1<<20)) << 12)
	}
}

func BenchmarkScanUnsynced(b *testing.B) {
	t := New()
	for i := 0; i < 1<<16; i++ {
		pud, pmd, pte := t.Ensure(VAddr(i) << 12)
		pte.Set(MakePresent(1, Prot{}, false))
		MarkUnsynced(pud, pmd)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.ScanUnsynced(func(va VAddr, p EntryRef) {})
		b.StopTimer()
		// Re-mark so each iteration scans the same work.
		t.ScanAll(func(va VAddr, p EntryRef) {})
		for j := 0; j < 1<<16; j += 512 {
			pud, pmd, _ := t.Ensure(VAddr(j) << 12)
			MarkUnsynced(pud, pmd)
		}
		b.StartTimer()
	}
}

func BenchmarkEntryEncodeDecode(b *testing.B) {
	var sink Entry
	for i := 0; i < b.N; i++ {
		e := MakeLBA(BlockAddr{SID: 1, DeviceID: 2, LBA: uint64(i)}, Prot{Write: true})
		_ = e.Block()
		sink |= e
	}
	_ = sink
}

// TestWalkSeesEnsuredEntries asserts the correctness of the operations the
// benchmarks above measure: entries installed through Ensure/Set are found
// by Walk with their payload intact.
func TestWalkSeesEnsuredEntries(t *testing.T) {
	tbl := New()
	tbl.Set(VAddr(5)<<12, MakePresent(99, Prot{Write: true}, true))
	_, _, pte, ok := tbl.Walk(VAddr(5) << 12)
	if !ok {
		t.Fatal("walk missed an installed entry")
	}
	if e := pte.Get(); e.PFN() != 99 || !e.Prot().Write {
		t.Fatalf("walked entry %#x, want pfn 99 writable", uint64(e))
	}
	// A neighboring, never-set slot shares the PTE page but must read as
	// an empty (not-present, OS-handled) entry.
	if _, _, pte6, ok := tbl.Walk(VAddr(6) << 12); ok && pte6.Get().State() != StateNotPresentOS {
		t.Fatalf("unset slot reads %v, want empty", pte6.Get().State())
	}
	if _, _, _, ok := tbl.Walk(VAddr(1) << 30); ok {
		t.Fatal("walk fabricated tables for an untouched region")
	}
}
