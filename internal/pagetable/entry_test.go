package pagetable

import (
	"testing"
	"testing/quick"

	"hwdp/internal/mem"
)

func TestPresentEntryRoundTrip(t *testing.T) {
	prot := Prot{Write: true, User: true, NoExec: true, ProtKey: 7}
	e := MakePresent(mem.FrameID(0x12345), prot, true)
	if !e.Present() || e.LBABit() {
		t.Fatalf("flags wrong: %#x", uint64(e))
	}
	if e.PFN() != 0x12345 {
		t.Fatalf("pfn = %#x", uint64(e.PFN()))
	}
	if got := e.Prot(); got != prot {
		t.Fatalf("prot = %+v", got)
	}
	if e.State() != StateResident {
		t.Fatalf("state = %v", e.State())
	}
}

func TestUnsyncedPresentEntry(t *testing.T) {
	e := MakePresent(42, Prot{}, false)
	if e.State() != StateResidentUnsynced {
		t.Fatalf("state = %v", e.State())
	}
	e = e.ClearFlags(FlagLBA)
	if e.State() != StateResident {
		t.Fatalf("after sync: %v", e.State())
	}
	if e.PFN() != 42 {
		t.Fatal("sync clobbered pfn")
	}
}

func TestLBAEntryRoundTrip(t *testing.T) {
	b := BlockAddr{SID: 5, DeviceID: 3, LBA: 0x1_2345_6789}
	prot := Prot{Write: true, ProtKey: 12}
	e := MakeLBA(b, prot)
	if e.Present() || !e.LBABit() {
		t.Fatalf("flags: %#x", uint64(e))
	}
	if got := e.Block(); got != b {
		t.Fatalf("block = %v, want %v", got, b)
	}
	if got := e.Prot(); got != prot {
		t.Fatalf("prot = %+v", got)
	}
	if e.State() != StateNotPresentLBA {
		t.Fatalf("state = %v", e.State())
	}
}

func TestLBAEntryPropertyRoundTrip(t *testing.T) {
	f := func(sid, dev uint8, lba uint64, w, u, nx bool, pk uint8) bool {
		b := BlockAddr{SID: sid % 8, DeviceID: dev % 8, LBA: lba % (MaxLBA + 1)}
		p := Prot{Write: w, User: u, NoExec: nx, ProtKey: pk % 16}
		e := MakeLBA(b, p)
		return e.Block() == b && e.Prot() == p && e.State() == StateNotPresentLBA
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPresentEntryPropertyRoundTrip(t *testing.T) {
	f := func(pfn uint64, w, u, nx bool, pk uint8, synced bool) bool {
		pfn %= 1 << 40
		p := Prot{Write: w, User: u, NoExec: nx, ProtKey: pk % 16}
		e := MakePresent(mem.FrameID(pfn), p, synced)
		wantState := StateResident
		if !synced {
			wantState = StateResidentUnsynced
		}
		return uint64(e.PFN()) == pfn && e.Prot() == p && e.State() == wantState
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMakeLBAPanicsOnOverflow(t *testing.T) {
	for _, b := range []BlockAddr{
		{LBA: MaxLBA + 1},
		{SID: 8},
		{DeviceID: 8},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MakeLBA(%v) should panic", b)
				}
			}()
			MakeLBA(b, Prot{})
		}()
	}
}

func TestSwapEntry(t *testing.T) {
	e := MakeSwap(0xABCD, Prot{User: true})
	if e.State() != StateNotPresentOS {
		t.Fatalf("state = %v", e.State())
	}
	if e.SwapPayload() != 0xABCD {
		t.Fatalf("payload = %#x", e.SwapPayload())
	}
}

// TestTableISemantics exhaustively checks the paper's Table I for leaf PTEs.
func TestTableISemantics(t *testing.T) {
	cases := []struct {
		lba, present bool
		want         State
	}{
		{false, false, StateNotPresentOS},
		{true, false, StateNotPresentLBA},
		{true, true, StateResidentUnsynced},
		{false, true, StateResident},
	}
	for _, c := range cases {
		var e Entry
		if c.lba {
			e |= FlagLBA
		}
		if c.present {
			e |= FlagPresent
		}
		if got := e.State(); got != c.want {
			t.Errorf("lba=%v present=%v: state = %v, want %v", c.lba, c.present, got, c.want)
		}
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		StateNotPresentOS:     "not-present/os",
		StateNotPresentLBA:    "not-present/lba",
		StateResidentUnsynced: "resident/unsynced",
		StateResident:         "resident",
		State(99):             "unknown",
	} {
		if s.String() != want {
			t.Errorf("State(%d) = %q", s, s.String())
		}
	}
}

func TestAccessedDirtyFlags(t *testing.T) {
	e := MakePresent(1, Prot{}, true)
	if !e.Accessed() {
		t.Fatal("new mapping should start accessed")
	}
	e = e.ClearFlags(FlagAccessed)
	if e.Accessed() {
		t.Fatal("clear accessed failed")
	}
	e = e.WithFlags(FlagDirty)
	if !e.Dirty() {
		t.Fatal("dirty not set")
	}
}

func TestBlockAddrString(t *testing.T) {
	s := BlockAddr{SID: 1, DeviceID: 2, LBA: 3}.String()
	if s != "sid1/dev2/lba3" {
		t.Fatalf("string = %q", s)
	}
}

func TestFieldsDoNotOverlap(t *testing.T) {
	// Setting a maximal LBA entry must not bleed into flag bits.
	e := MakeLBA(BlockAddr{SID: 7, DeviceID: 7, LBA: MaxLBA}, Prot{})
	if e.Present() {
		t.Fatal("LBA payload set present bit")
	}
	if e&FlagAccessed != 0 || e&FlagDirty != 0 || e&FlagHuge != 0 {
		t.Fatalf("payload bled into flags: %#x", uint64(e))
	}
	// And a maximal PFN must not bleed into NX or pkey.
	p := MakePresent(mem.FrameID(1<<40-1), Prot{}, true)
	if p.Prot().NoExec || p.Prot().ProtKey != 0 {
		t.Fatalf("pfn bled into high bits: %#x", uint64(p))
	}
}
