package pagetable

import (
	"testing"
	"testing/quick"

	"hwdp/internal/mem"
)

func TestVAddrHelpers(t *testing.T) {
	v := VAddr(0x12345678)
	if v.PageBase() != 0x12345000 {
		t.Fatalf("base = %#x", uint64(v.PageBase()))
	}
	if v.PageNumber() != 0x12345 {
		t.Fatalf("vpn = %#x", v.PageNumber())
	}
}

func TestEnsureAndLookup(t *testing.T) {
	tbl := New()
	va := VAddr(0x7f00_0042_3000)
	if _, ok := tbl.Lookup(va); ok {
		t.Fatal("lookup before ensure should fail")
	}
	e := MakePresent(99, Prot{Write: true}, true)
	tbl.Set(va, e)
	got, ok := tbl.Lookup(va)
	if !ok || got != e {
		t.Fatalf("lookup = %#x, %v", uint64(got), ok)
	}
	// Neighboring page in same leaf: structure exists, entry zero.
	got, ok = tbl.Lookup(va + 4096)
	if !ok || got != 0 {
		t.Fatalf("neighbor = %#x, %v", uint64(got), ok)
	}
}

func TestWalkRefsAreTheThreeEntries(t *testing.T) {
	tbl := New()
	va := VAddr(0x5555_5555_5000)
	tbl.Set(va, MakeLBA(BlockAddr{LBA: 7}, Prot{}))
	pud, pmd, pte, ok := tbl.Walk(va)
	if !ok {
		t.Fatal("walk failed")
	}
	if pud.Level() != LevelPUD || pmd.Level() != LevelPMD || pte.Level() != LevelPTE {
		t.Fatalf("levels = %d %d %d", pud.Level(), pmd.Level(), pte.Level())
	}
	addrs := map[EntryAddr]bool{pud.Addr(): true, pmd.Addr(): true, pte.Addr(): true}
	if len(addrs) != 3 {
		t.Fatal("entry addresses collide")
	}
	if pte.Get().Block().LBA != 7 {
		t.Fatal("pte ref does not read installed entry")
	}
	pte.Set(MakePresent(3, Prot{}, false))
	got, _ := tbl.Lookup(va)
	if got.PFN() != 3 {
		t.Fatal("pte ref write not visible via lookup")
	}
}

func TestWalkNonCanonical(t *testing.T) {
	tbl := New()
	if _, _, _, ok := tbl.Walk(MaxVAddr); ok {
		t.Fatal("walk of non-canonical address should fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Ensure of non-canonical should panic")
		}
	}()
	tbl.Ensure(MaxVAddr + 4096)
}

func TestEntryAddrStableAndUnique(t *testing.T) {
	tbl := New()
	a1 := VAddr(0x1000_0000_0000)
	a2 := a1 + 4096
	tbl.Set(a1, MakeSwap(1, Prot{}))
	tbl.Set(a2, MakeSwap(2, Prot{}))
	_, _, p1, _ := tbl.Walk(a1)
	_, _, p2, _ := tbl.Walk(a2)
	if p1.Addr() == p2.Addr() {
		t.Fatal("distinct PTEs share an address")
	}
	_, _, p1b, _ := tbl.Walk(a1)
	if p1.Addr() != p1b.Addr() {
		t.Fatal("PTE address not stable")
	}
}

func TestNodesAccounting(t *testing.T) {
	tbl := New()
	if tbl.Nodes() != 1 {
		t.Fatalf("fresh table nodes = %d", tbl.Nodes())
	}
	tbl.Set(0, MakeSwap(0, Prot{}))
	if tbl.Nodes() != 4 { // PGD + PUD + PMD + leaf
		t.Fatalf("nodes = %d", tbl.Nodes())
	}
	// Same 2 MiB region: no new tables.
	tbl.Set(4096, MakeSwap(0, Prot{}))
	if tbl.Nodes() != 4 {
		t.Fatalf("nodes = %d", tbl.Nodes())
	}
	// Different PMD region.
	tbl.Set(VAddr(2<<20), MakeSwap(0, Prot{}))
	if tbl.Nodes() != 5 {
		t.Fatalf("nodes = %d", tbl.Nodes())
	}
}

func TestMarkUnsyncedAndScan(t *testing.T) {
	tbl := New()
	vas := []VAddr{0x1000, 0x2000, VAddr(4 << 20), VAddr(3 << 30)}
	for i, va := range vas {
		pud, pmd, pte := tbl.Ensure(va)
		pte.Set(MakePresent(mem2Frame(i), Prot{}, false)) // hardware-handled
		MarkUnsynced(pud, pmd)
	}
	// One extra synced resident PTE that must not match.
	tbl.Set(0x3000, MakePresent(77, Prot{}, true))

	var found []VAddr
	st := tbl.ScanUnsynced(func(va VAddr, pte EntryRef) {
		found = append(found, va)
		pte.Set(pte.Get().ClearFlags(FlagLBA))
	})
	if st.PTEsMatched != uint64(len(vas)) {
		t.Fatalf("matched = %d, want %d", st.PTEsMatched, len(vas))
	}
	seen := map[VAddr]bool{}
	for _, va := range found {
		seen[va] = true
	}
	for _, va := range vas {
		if !seen[va.PageBase()] {
			t.Fatalf("missing %#x in %v", uint64(va), found)
		}
	}
	// Second scan: everything synced, upper bits cleared, all tables skipped.
	st2 := tbl.ScanUnsynced(func(VAddr, EntryRef) { t.Fatal("nothing should match") })
	if st2.PTEsMatched != 0 {
		t.Fatal("second scan matched")
	}
	if st2.TablesScanned != 0 {
		t.Fatalf("second scan visited %d leaf tables; upper-level skip broken", st2.TablesScanned)
	}
}

func mem2Frame(i int) mem.FrameID { return mem.FrameID(i + 1) }

func TestScanSkipsCleanSubtrees(t *testing.T) {
	tbl := New()
	// 64 leaf tables populated, only one unsynced.
	for i := 0; i < 64; i++ {
		va := VAddr(i) << 21 // one per PMD entry
		tbl.Set(va, MakePresent(mem.FrameID(i+1), Prot{}, true))
	}
	dirty := VAddr(5) << 21
	pud, pmd, pte := tbl.Ensure(dirty)
	pte.Set(MakePresent(999, Prot{}, false))
	MarkUnsynced(pud, pmd)

	st := tbl.ScanUnsynced(func(va VAddr, pte EntryRef) {
		pte.Set(pte.Get().ClearFlags(FlagLBA))
	})
	if st.PTEsMatched != 1 {
		t.Fatalf("matched = %d", st.PTEsMatched)
	}
	if st.TablesScanned != 1 {
		t.Fatalf("scanned %d leaf tables, want 1 (skip the clean 63)", st.TablesScanned)
	}
	if st.TablesSkipped != 63 {
		t.Fatalf("skipped = %d, want 63", st.TablesSkipped)
	}
}

func TestScanClearsUpperBeforeDescending(t *testing.T) {
	// If hardware completes a miss during the scan, the re-marked upper bit
	// must survive so the next scan finds the new PTE.
	tbl := New()
	va1 := VAddr(4 << 21) // PMD index 4
	pud, pmd, pte := tbl.Ensure(va1)
	pte.Set(MakePresent(1, Prot{}, false))
	MarkUnsynced(pud, pmd)

	// va2 lives at PMD index 1 — a region the scan cursor has already
	// passed when the completion lands, so only the re-marked upper bits
	// can make the next scan find it.
	va2 := VAddr(1 << 21)
	installed := false
	tbl.ScanUnsynced(func(va VAddr, p EntryRef) {
		p.Set(p.Get().ClearFlags(FlagLBA))
		if !installed {
			installed = true
			// Simulate SMU completing a miss for va2 mid-scan.
			pud2, pmd2, pte2 := tbl.Ensure(va2)
			pte2.Set(MakePresent(2, Prot{}, false))
			MarkUnsynced(pud2, pmd2)
		}
	})
	n := 0
	tbl.ScanUnsynced(func(va VAddr, p EntryRef) {
		n++
		if va != va2 {
			t.Fatalf("second scan found %#x", uint64(va))
		}
	})
	if n != 1 {
		t.Fatalf("second scan matched %d, want 1", n)
	}
}

func TestScanAll(t *testing.T) {
	tbl := New()
	vas := []VAddr{0x1000, VAddr(7 << 21), VAddr(9 << 30)}
	for _, va := range vas {
		tbl.Set(va, MakeLBA(BlockAddr{LBA: uint64(va)}, Prot{}))
	}
	got := map[VAddr]bool{}
	tbl.ScanAll(func(va VAddr, pte EntryRef) { got[va] = true })
	if len(got) != len(vas) {
		t.Fatalf("scanall found %d", len(got))
	}
	for _, va := range vas {
		if !got[va] {
			t.Fatalf("missing %#x", uint64(va))
		}
	}
}

// Property: for random sets of pages, Set then Lookup round-trips and
// ScanAll reconstructs exactly the set of installed VAs.
func TestTableRoundTripProperty(t *testing.T) {
	f := func(pages []uint32) bool {
		tbl := New()
		want := map[VAddr]Entry{}
		for i, p := range pages {
			if len(want) > 200 {
				break
			}
			va := (VAddr(p) << 12) % MaxVAddr
			va = va.PageBase()
			e := MakeSwap(uint64(i+1), Prot{})
			tbl.Set(va, e)
			want[va] = e
		}
		for va, e := range want {
			got, ok := tbl.Lookup(va)
			if !ok || got != e {
				return false
			}
		}
		n := 0
		okAll := true
		tbl.ScanAll(func(va VAddr, pte EntryRef) {
			n++
			if want[va] != pte.Get() {
				okAll = false
			}
		})
		return okAll && n == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
