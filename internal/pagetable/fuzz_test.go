package pagetable

import (
	"testing"

	"hwdp/internal/mem"
)

// Fuzz round-trips for the 64-bit entry encoding. The PTE layout packs
// three coexisting formats (present/PFN, LBA-augmented block address,
// OS swap payload) plus protection bits into one word; these fuzzers prove
// decode(encode(x)) == x for every reachable input and that the Table I
// state classification is consistent with the constructor used. `go test`
// runs the seeded corpus; `go test -fuzz FuzzX ./internal/pagetable` explores
// further.

// protFrom builds a Prot from raw fuzz bytes.
func protFrom(bits uint8, pkey uint8) Prot {
	return Prot{
		Write:   bits&1 != 0,
		User:    bits&2 != 0,
		NoExec:  bits&4 != 0,
		ProtKey: pkey & 0xF,
	}
}

func FuzzEntryLBARoundTrip(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint64(0), uint8(0), uint8(0))
	f.Add(uint8(7), uint8(7), MaxLBA, uint8(7), uint8(15))
	f.Add(uint8(3), uint8(5), uint64(123456789), uint8(5), uint8(9))
	f.Fuzz(func(t *testing.T, sid, dev uint8, lba uint64, protBits, pkey uint8) {
		b := BlockAddr{SID: sid & 7, DeviceID: dev & 7, LBA: lba & MaxLBA}
		p := protFrom(protBits, pkey)
		e := MakeLBA(b, p)
		if got := e.Block(); got != b {
			t.Fatalf("Block() = %v, want %v (entry %#x)", got, b, uint64(e))
		}
		if got := e.Prot(); got != p {
			t.Fatalf("Prot() = %+v, want %+v", got, p)
		}
		if e.State() != StateNotPresentLBA {
			t.Fatalf("state = %v, want not-present/lba", e.State())
		}
		if e.Present() {
			t.Fatal("LBA entry must not be present")
		}
	})
}

func FuzzEntryPresentRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint8(0), uint8(0), false)
	f.Add(uint64(1)<<40-1, uint8(7), uint8(15), true)
	f.Add(uint64(0xABCDE), uint8(2), uint8(3), false)
	f.Fuzz(func(t *testing.T, pfn uint64, protBits, pkey uint8, synced bool) {
		pfn &= (1 << 40) - 1 // pfnBits
		p := protFrom(protBits, pkey)
		e := MakePresent(mem.FrameID(pfn), p, synced)
		if got := e.PFN(); got != mem.FrameID(pfn) {
			t.Fatalf("PFN() = %d, want %d (entry %#x)", got, pfn, uint64(e))
		}
		if got := e.Prot(); got != p {
			t.Fatalf("Prot() = %+v, want %+v", got, p)
		}
		if !e.Present() {
			t.Fatal("present entry must be present")
		}
		want := StateResident
		if !synced {
			want = StateResidentUnsynced
		}
		if e.State() != want {
			t.Fatalf("state = %v, want %v (synced=%v)", e.State(), want, synced)
		}
		// Syncing (kpted clearing the LBA bit) must not disturb the payload.
		s := e.ClearFlags(FlagLBA)
		if s.PFN() != mem.FrameID(pfn) || s.Prot() != p || s.State() != StateResident {
			t.Fatalf("ClearFlags(FlagLBA) corrupted entry: %#x -> %#x", uint64(e), uint64(s))
		}
	})
}

func FuzzEntrySwapRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint8(0), uint8(0))
	f.Add(uint64(1)<<40-1, uint8(7), uint8(15))
	f.Add(uint64(424242), uint8(1), uint8(7))
	f.Fuzz(func(t *testing.T, payload uint64, protBits, pkey uint8) {
		payload &= (1 << 40) - 1
		p := protFrom(protBits, pkey)
		e := MakeSwap(payload, p)
		if got := e.SwapPayload(); got != payload {
			t.Fatalf("SwapPayload() = %d, want %d", got, payload)
		}
		if got := e.Prot(); got != p {
			t.Fatalf("Prot() = %+v, want %+v", got, p)
		}
		if e.State() != StateNotPresentOS {
			t.Fatalf("state = %v, want not-present/os", e.State())
		}
	})
}

// FuzzEntryStateTotal checks that State() is total and consistent with the
// two defining bits for arbitrary 64-bit words, not just constructor output.
func FuzzEntryStateTotal(f *testing.F) {
	f.Add(uint64(0))
	f.Add(^uint64(0))
	f.Add(uint64(FlagPresent))
	f.Add(uint64(FlagLBA))
	f.Fuzz(func(t *testing.T, raw uint64) {
		e := Entry(raw)
		st := e.State()
		switch {
		case !e.Present() && !e.LBABit():
			if st != StateNotPresentOS {
				t.Fatalf("state = %v", st)
			}
		case !e.Present():
			if st != StateNotPresentLBA {
				t.Fatalf("state = %v", st)
			}
		case e.LBABit():
			if st != StateResidentUnsynced {
				t.Fatalf("state = %v", st)
			}
		default:
			if st != StateResident {
				t.Fatalf("state = %v", st)
			}
		}
		if st.String() == "unknown" {
			t.Fatalf("state %d has no name", int(st))
		}
	})
}
