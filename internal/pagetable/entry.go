// Package pagetable implements the x86-64-style 4-level page table with the
// paper's LBA augmentation (Section III-B, Fig. 6, Table I).
//
// A PTE is 64 bits. Two bits drive the demand-paging state machine:
//
//   - Present (bit 0): the page is mapped to a physical frame.
//   - LBA (bit 10): on a non-present PTE it means "this PTE holds a logical
//     block address; a miss is handled by hardware". On a present PTE it
//     means "the miss was handled by hardware but the OS metadata has not
//     been synchronized yet" (kpted clears it). On upper-level entries
//     (PMD/PUD) it marks subtrees that contain such unsynchronized PTEs.
//
// When LBA=1 and Present=0, the frame-number field is repurposed to locate
// a block anywhere in the system: 3-bit socket ID (up to 8 sockets, each
// with its own SMU), 3-bit device ID (8 NVMe namespaces per socket) and a
// 41-bit LBA (1 PB at 512 B blocks). 17 bits remain for protection and
// architectural features, exactly as in the paper.
package pagetable

import (
	"fmt"

	"hwdp/internal/mem"
)

// Entry is one 64-bit page-table entry at any level.
type Entry uint64

// Bit layout. Low flag bits follow x86; the LBA bit uses bit 10 (one of the
// ignored bits in real x86 PTEs, the same position the authors' kernel
// patch used).
const (
	FlagPresent  Entry = 1 << 0
	FlagWrite    Entry = 1 << 1
	FlagUser     Entry = 1 << 2
	FlagAccessed Entry = 1 << 5
	FlagDirty    Entry = 1 << 6
	FlagHuge     Entry = 1 << 7 // PS bit; reserved, not a first-class feature
	FlagLBA      Entry = 1 << 10
	FlagNX       Entry = 1 << 63
)

const (
	pfnShift = 12
	pfnBits  = 40
	pfnMask  = Entry(((1 << pfnBits) - 1) << pfnShift)

	// LBA-augmented layout (Present=0, LBA=1).
	lbaShift  = 12
	lbaBits   = 41
	lbaMask   = Entry(((1 << lbaBits) - 1)) << lbaShift
	devShift  = lbaShift + lbaBits // 53
	devBits   = 3
	devMask   = Entry((1<<devBits)-1) << devShift
	sidShift  = devShift + devBits // 56
	sidBits   = 3
	sidMask   = Entry((1<<sidBits)-1) << sidShift
	pkeyShift = 59 // protection key, 4 bits (x86 uses 59..62)
	pkeyMask  = Entry(0xF) << pkeyShift
)

// MaxLBA is the largest encodable logical block address.
const MaxLBA = uint64(1<<lbaBits) - 1

// AnonFirstTouch is the reserved LBA constant marking the first access to
// an anonymous page (Section V, "Demand Paging Support for Anonymous
// Page"): the SMU recognizes it and bypasses I/O, installing a zero-filled
// frame. Ordinary file blocks never use the all-ones LBA.
const AnonFirstTouch = MaxLBA

// Prot captures page-level permissions preserved across hardware miss
// handling (the paper: "proper protection bits to preserve page-level
// permission after its page miss handled in hardware").
type Prot struct {
	Write   bool
	User    bool
	NoExec  bool
	ProtKey uint8 // 0..15
}

func (p Prot) flags() Entry {
	var e Entry
	if p.Write {
		e |= FlagWrite
	}
	if p.User {
		e |= FlagUser
	}
	if p.NoExec {
		e |= FlagNX
	}
	e |= Entry(p.ProtKey&0xF) << pkeyShift
	return e
}

// Prot extracts the protection bits of an entry.
func (e Entry) Prot() Prot {
	return Prot{
		Write:   e&FlagWrite != 0,
		User:    e&FlagUser != 0,
		NoExec:  e&FlagNX != 0,
		ProtKey: uint8((e & pkeyMask) >> pkeyShift),
	}
}

// Present reports the hardware present bit.
func (e Entry) Present() bool { return e&FlagPresent != 0 }

// LBABit reports the LBA/needs-sync bit.
func (e Entry) LBABit() bool { return e&FlagLBA != 0 }

// Accessed reports the accessed bit (used by the clock LRU).
func (e Entry) Accessed() bool { return e&FlagAccessed != 0 }

// Dirty reports the dirty bit.
func (e Entry) Dirty() bool { return e&FlagDirty != 0 }

// PFN returns the physical frame for a present entry.
func (e Entry) PFN() mem.FrameID {
	return mem.FrameID((e & pfnMask) >> pfnShift)
}

// BlockAddr is the <socket, device, LBA> triple stored in an LBA-augmented
// PTE; <SID, DeviceID> identifies an NVMe namespace, LBA a block within it.
type BlockAddr struct {
	SID      uint8
	DeviceID uint8
	LBA      uint64
}

// String renders the block address, distinguishing the none sentinel.
func (b BlockAddr) String() string {
	return fmt.Sprintf("sid%d/dev%d/lba%d", b.SID, b.DeviceID, b.LBA)
}

// Block decodes the block address of an LBA-augmented entry.
func (e Entry) Block() BlockAddr {
	return BlockAddr{
		SID:      uint8((e & sidMask) >> sidShift),
		DeviceID: uint8((e & devMask) >> devShift),
		LBA:      uint64((e & lbaMask) >> lbaShift),
	}
}

// MakePresent builds a resident PTE pointing at pfn. The synced flag is
// false for PTEs installed by the SMU (LBA bit left set so kpted finds
// them) and true for OS-installed PTEs.
func MakePresent(pfn mem.FrameID, prot Prot, synced bool) Entry {
	e := FlagPresent | FlagAccessed | prot.flags() | (Entry(pfn)<<pfnShift)&pfnMask
	if !synced {
		e |= FlagLBA
	}
	return e
}

// MakeLBA builds a non-present, LBA-augmented PTE (Fig. 6(b)). It panics if
// the block address exceeds the encodable ranges — always a kernel bug.
func MakeLBA(b BlockAddr, prot Prot) Entry {
	if b.LBA > MaxLBA {
		panic(fmt.Sprintf("pagetable: LBA %d out of range", b.LBA))
	}
	if b.SID >= 1<<sidBits || b.DeviceID >= 1<<devBits {
		panic(fmt.Sprintf("pagetable: bad block addr %v", b))
	}
	return FlagLBA | prot.flags() |
		Entry(b.LBA)<<lbaShift | Entry(b.DeviceID)<<devShift | Entry(b.SID)<<sidShift
}

// MakeSwap builds a conventional non-present PTE whose miss is handled by
// the OS (Table I row 1). The payload models a swap offset / page-cache key
// the OS keeps in non-present PTEs.
func MakeSwap(payload uint64, prot Prot) Entry {
	return prot.flags() | (Entry(payload)<<pfnShift)&pfnMask
}

// SwapPayload returns the OS payload of a conventional non-present PTE.
func (e Entry) SwapPayload() uint64 { return uint64((e & pfnMask) >> pfnShift) }

// State enumerates Table I of the paper for leaf PTEs.
type State int

const (
	// StateNotPresentOS: non-resident, not LBA-augmented; a miss raises a
	// normal OS page fault.
	StateNotPresentOS State = iota
	// StateNotPresentLBA: non-resident, LBA-augmented; a miss is handled by
	// hardware.
	StateNotPresentLBA
	// StateResidentUnsynced: resident; the miss was already handled by
	// hardware but OS metadata is not updated yet.
	StateResidentUnsynced
	// StateResident: resident, identical to a conventional PTE.
	StateResident
)

// String returns the page state's display name.
func (s State) String() string {
	switch s {
	case StateNotPresentOS:
		return "not-present/os"
	case StateNotPresentLBA:
		return "not-present/lba"
	case StateResidentUnsynced:
		return "resident/unsynced"
	case StateResident:
		return "resident"
	}
	return "unknown"
}

// State classifies the entry per Table I.
func (e Entry) State() State {
	switch {
	case !e.Present() && !e.LBABit():
		return StateNotPresentOS
	case !e.Present() && e.LBABit():
		return StateNotPresentLBA
	case e.Present() && e.LBABit():
		return StateResidentUnsynced
	default:
		return StateResident
	}
}

// WithFlags returns the entry with the given flag bits set.
func (e Entry) WithFlags(f Entry) Entry { return e | f }

// ClearFlags returns the entry with the given flag bits cleared.
func (e Entry) ClearFlags(f Entry) Entry { return e &^ f }
