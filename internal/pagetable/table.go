package pagetable

import "fmt"

// Virtual-address geometry: 4-level radix tree, 9 bits per level, 4 KiB
// pages — 48-bit canonical virtual addresses as on x86-64.
const (
	EntriesPerTable = 512
	indexBits       = 9
	pageShift       = 12
	vaBits          = pageShift + 4*indexBits // 48
)

// Level numbers follow Linux naming: 4=PGD, 3=PUD, 2=PMD, 1=PTE table.
const (
	LevelPGD = 4
	LevelPUD = 3
	LevelPMD = 2
	LevelPTE = 1
)

// VAddr is a virtual address.
type VAddr uint64

// MaxVAddr is the first non-canonical address.
const MaxVAddr = VAddr(1) << vaBits

// PageBase returns the address of the containing page.
func (v VAddr) PageBase() VAddr { return v &^ (VAddr(1)<<pageShift - 1) }

// PageNumber returns the virtual page number.
func (v VAddr) PageNumber() uint64 { return uint64(v) >> pageShift }

func (v VAddr) index(level int) int {
	shift := pageShift + (level-1)*indexBits
	return int(uint64(v)>>shift) & (EntriesPerTable - 1)
}

// node is one 4 KiB table at some level.
type node struct {
	id       uint64
	level    int
	entries  [EntriesPerTable]Entry
	children [EntriesPerTable]*node // nil at LevelPTE
}

// EntryAddr is the simulated physical address of a page-table entry; it is
// the unique key the PMSHR coalesces on ("the address of a PTE is an
// identifier of a page miss").
type EntryAddr uint64

// EntryRef identifies a single entry slot so hardware (the SMU's page-table
// updater) can read and write it directly, exactly as the real SMU does
// with the three entry addresses it receives from the MMU.
type EntryRef struct {
	node *node
	idx  int
}

// Valid reports whether the ref points at an entry.
func (r EntryRef) Valid() bool { return r.node != nil }

// Addr returns the simulated physical address of the entry.
func (r EntryRef) Addr() EntryAddr {
	if r.node == nil {
		return 0
	}
	return EntryAddr(r.node.id*EntriesPerTable*8 + uint64(r.idx)*8)
}

// Level returns the table level this entry lives in.
func (r EntryRef) Level() int { return r.node.level }

// Get reads the entry.
func (r EntryRef) Get() Entry { return r.node.entries[r.idx] }

// Set writes the entry.
func (r EntryRef) Set(e Entry) { r.node.entries[r.idx] = e }

// Table is one address space's page table.
type Table struct {
	root   *node
	nextID uint64
	// nodes counts allocated tables (for the mmap space-overhead metric,
	// Section IV-B).
	nodes uint64
}

// New returns an empty table.
func New() *Table {
	t := &Table{}
	t.root = t.newNode(LevelPGD)
	return t
}

func (t *Table) newNode(level int) *node {
	t.nextID++
	t.nodes++
	return &node{id: t.nextID, level: level}
}

// Nodes returns the number of allocated page-table pages (all levels).
func (t *Table) Nodes() uint64 { return t.nodes }

// Walk descends to the PTE for va without allocating. The returned refs for
// PUD, PMD and PTE are the three entry addresses the MMU hands to the SMU.
// ok is false if an intermediate table is missing.
func (t *Table) Walk(va VAddr) (pud, pmd, pte EntryRef, ok bool) {
	if va >= MaxVAddr {
		return EntryRef{}, EntryRef{}, EntryRef{}, false
	}
	n := t.root
	var refs [3]EntryRef // level 3, 2, 1 entries
	for level := LevelPGD; level >= LevelPTE; level-- {
		idx := va.index(level)
		if level != LevelPGD {
			refs[level-1] = EntryRef{n, idx}
		}
		if level == LevelPTE {
			return refs[2], refs[1], refs[0], true
		}
		child := n.children[idx]
		if child == nil {
			return EntryRef{}, EntryRef{}, EntryRef{}, false
		}
		n = child
	}
	panic("unreachable")
}

// Lookup returns the PTE entry for va, or ok=false if unmapped structure.
func (t *Table) Lookup(va VAddr) (Entry, bool) {
	_, _, pte, ok := t.Walk(va)
	if !ok {
		return 0, false
	}
	return pte.Get(), true
}

// Ensure descends to the PTE slot for va, allocating intermediate tables as
// needed (what fast-mmap population does), and returns the three refs.
func (t *Table) Ensure(va VAddr) (pud, pmd, pte EntryRef) {
	if va >= MaxVAddr {
		panic(fmt.Sprintf("pagetable: non-canonical address %#x", uint64(va)))
	}
	n := t.root
	var refs [3]EntryRef
	for level := LevelPGD; level >= LevelPTE; level-- {
		idx := va.index(level)
		if level != LevelPGD {
			refs[level-1] = EntryRef{n, idx}
		}
		if level == LevelPTE {
			return refs[2], refs[1], refs[0]
		}
		child := n.children[idx]
		if child == nil {
			child = t.newNode(level - 1)
			n.children[idx] = child
			// Upper-level entry becomes present (points to the new table).
			n.entries[idx] = n.entries[idx] | FlagPresent
		}
		n = child
	}
	panic("unreachable")
}

// Set installs a PTE for va, allocating structure as needed.
func (t *Table) Set(va VAddr, e Entry) {
	_, _, pte := t.Ensure(va)
	pte.Set(e)
}

// MarkUnsynced sets the LBA (needs-sync) bit on the PMD and PUD entries
// covering va. The SMU's page-table updater calls this after handling a
// miss so kpted can find the PTE cheaply ("marking this information in the
// next two levels up is sufficient").
func MarkUnsynced(pud, pmd EntryRef) {
	pud.Set(pud.Get() | FlagLBA)
	pmd.Set(pmd.Get() | FlagLBA)
}

// ScanStats reports the work done by one kpted scan.
type ScanStats struct {
	PTEsVisited   uint64 // leaf entries actually inspected
	PTEsMatched   uint64 // resident+LBA entries handed to the visitor
	TablesSkipped uint64 // leaf tables skipped thanks to upper-level bits
	TablesScanned uint64
}

// ScanUnsynced visits every PTE in state resident/unsynced, using the
// upper-level LBA bits to skip clean subtrees. Per the paper, it clears the
// upper-level bit *before* inspecting the lower level so that a concurrent
// hardware completion re-marks it and is found on the next pass. The
// visitor may clear the PTE's LBA bit (that is kpted's job).
func (t *Table) ScanUnsynced(visit func(va VAddr, pte EntryRef)) ScanStats {
	var st ScanStats
	root := t.root
	for gi, pudNode := range root.children {
		if pudNode == nil {
			continue
		}
		for ui := range pudNode.entries {
			pmdNode := pudNode.children[ui]
			if pmdNode == nil {
				continue
			}
			if pudNode.entries[ui]&FlagLBA == 0 {
				// Entire PUD subtree clean: skip all PMDs below.
				for mi := range pmdNode.children {
					if pmdNode.children[mi] != nil {
						st.TablesSkipped++
					}
				}
				continue
			}
			pudNode.entries[ui] &^= FlagLBA
			for mi := range pmdNode.entries {
				leaf := pmdNode.children[mi]
				if leaf == nil {
					continue
				}
				if pmdNode.entries[mi]&FlagLBA == 0 {
					st.TablesSkipped++
					continue
				}
				pmdNode.entries[mi] &^= FlagLBA
				st.TablesScanned++
				for pi := range leaf.entries {
					st.PTEsVisited++
					e := leaf.entries[pi]
					if e.State() == StateResidentUnsynced {
						st.PTEsMatched++
						va := rebuildVA(gi, ui, mi, pi)
						visit(va, EntryRef{leaf, pi})
					}
				}
			}
		}
	}
	return st
}

// ScanAll visits every installed PTE (any state). Used by munmap/fork and
// by tests.
func (t *Table) ScanAll(visit func(va VAddr, pte EntryRef)) {
	for gi, pudNode := range t.root.children {
		if pudNode == nil {
			continue
		}
		for ui, pmdNode := range pudNode.children {
			if pmdNode == nil {
				continue
			}
			for mi, leaf := range pmdNode.children {
				if leaf == nil {
					continue
				}
				for pi := range leaf.entries {
					if leaf.entries[pi] != 0 {
						visit(rebuildVA(gi, ui, mi, pi), EntryRef{leaf, pi})
					}
				}
			}
		}
	}
}

func rebuildVA(gi, ui, mi, pi int) VAddr {
	return VAddr(uint64(gi)<<(pageShift+3*indexBits) |
		uint64(ui)<<(pageShift+2*indexBits) |
		uint64(mi)<<(pageShift+indexBits) |
		uint64(pi)<<pageShift)
}
