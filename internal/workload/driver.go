package workload

import (
	"fmt"

	"hwdp/internal/core"
	"hwdp/internal/kernel"
	"hwdp/internal/metrics"
	"hwdp/internal/sim"
)

// Workload is one benchmark: Op runs a single operation on a thread and
// reports completion (with any data-integrity error).
type Workload interface {
	Op(th *kernel.Thread, rng *sim.Rand, done func(err error))
}

// Result aggregates one thread's run.
type Result struct {
	Ops     uint64
	Errors  uint64
	Elapsed sim.Time
	Lat     *metrics.Histogram // per-op latency, picoseconds
}

// Throughput returns operations per virtual second.
func (r Result) Throughput() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// MeanLatency returns the mean per-op latency.
func (r Result) MeanLatency() sim.Time { return sim.Time(r.Lat.Mean()) }

// Merge combines per-thread results: ops sum, elapsed max, latencies merge.
func Merge(rs []Result) Result {
	out := Result{Lat: metrics.NewHistogram()}
	for _, r := range rs {
		out.Ops += r.Ops
		out.Errors += r.Errors
		if r.Elapsed > out.Elapsed {
			out.Elapsed = r.Elapsed
		}
		out.Lat.Merge(r.Lat)
	}
	return out
}

// RunOptions controls a driver run. Exactly one of OpsPerThread or
// Duration must be set.
type RunOptions struct {
	OpsPerThread int
	Duration     sim.Time
	// WarmupOps per thread are executed but excluded from the result.
	WarmupOps int
}

// Assignment pairs a thread with the workload it runs (mixed runs, e.g.
// the Fig. 16 FIO + SPEC co-scheduling).
type Assignment struct {
	Th *kernel.Thread
	W  Workload
}

// Run drives the workload on every thread concurrently until the stop
// condition, then returns per-thread results. It advances the simulation
// itself.
func Run(sys *core.System, threads []*kernel.Thread, w Workload, opt RunOptions) []Result {
	as := make([]Assignment, len(threads))
	for i, th := range threads {
		as[i] = Assignment{Th: th, W: w}
	}
	return RunMixed(sys, as, opt)
}

// RunMixed drives per-thread workloads concurrently (see Run).
func RunMixed(sys *core.System, assignments []Assignment, opt RunOptions) []Result {
	if (opt.OpsPerThread == 0) == (opt.Duration == 0) {
		panic("workload: set exactly one of OpsPerThread or Duration")
	}
	results := make([]Result, len(assignments))
	running := len(assignments)
	deadline := sim.Never
	if opt.Duration > 0 {
		deadline = sys.Eng.Now() + opt.Duration
	}
	for i, a := range assignments {
		i, th, w := i, a.Th, a.W
		results[i].Lat = metrics.NewHistogram()
		rng := sys.Rng.Fork(uint64(i) + 100)
		start := sys.Eng.Now()
		warm := opt.WarmupOps
		measured := 0
		var loop func()
		loop = func() {
			if th.Killed {
				// SIGBUS or the OOM killer terminated the thread; it stops
				// issuing ops and reports what it measured so far.
				results[i].Elapsed = sys.Eng.Now() - start
				running--
				return
			}
			if deadline != sim.Never && sys.Eng.Now() >= deadline {
				results[i].Elapsed = sys.Eng.Now() - start
				running--
				return
			}
			if opt.OpsPerThread > 0 && measured >= opt.OpsPerThread {
				results[i].Elapsed = sys.Eng.Now() - start
				running--
				return
			}
			opStart := sys.Eng.Now()
			w.Op(th, rng, func(err error) {
				if warm > 0 {
					warm--
					start = sys.Eng.Now() // move the measurement origin
				} else {
					measured++
					results[i].Ops++
					if err != nil {
						results[i].Errors++
					}
					results[i].Lat.Record(int64(sys.Eng.Now() - opStart))
				}
				loop()
			})
		}
		loop()
	}
	sys.RunWhile(func() bool { return running > 0 })
	if running > 0 {
		panic(fmt.Sprintf("workload: %d threads never finished (event queue drained)", running))
	}
	return results
}
