package workload

import (
	"fmt"

	"hwdp/internal/core"
	"hwdp/internal/kernel"
	"hwdp/internal/kvs"
	"hwdp/internal/sim"
)

// Per-op user-side instruction budgets. A RocksDB point lookup runs
// noticeably more user code than FIO's memcpy loop (memtable probe, block
// handling, comparator, YCSB client); these budgets set the compute :
// miss-latency ratio that separates the YCSB gains (5.3–27.3%) from the
// FIO/DBBench gains (29.4–57.1%) in Fig. 13.
const (
	DBBenchOpInstr = 26000
	YCSBOpInstr    = 40000
	YCSBScanPerRec = 9000
)

// KVOp is the per-op mix of a KV workload.
type KVOp int

// Operation kinds.
const (
	OpRead KVOp = iota
	OpUpdate
	OpInsert
	OpScan
	OpRMW
)

// KV drives a kvs.Store with a YCSB-style mix.
type KV struct {
	Sys     *core.System
	Store   *kvs.Store
	Name    string
	OpInstr uint64

	// Mix is cumulative probability thresholds over [read, update, insert,
	// scan, rmw].
	readP, updateP, insertP, scanP float64
	gen                            KeyGen
	latest                         *Latest
	insertFrontier                 uint64
	scanMax                        int
	versions                       map[uint64]uint64
	bufs                           map[int][]byte
}

func newKV(sys *core.System, st *kvs.Store, name string, read, update, insert, scan float64) *KV {
	return &KV{
		Sys: sys, Store: st, Name: name, OpInstr: YCSBOpInstr,
		readP: read, updateP: read + update, insertP: read + update + insert,
		scanP:    read + update + insert + scan,
		scanMax:  16,
		versions: make(map[uint64]uint64),
		bufs:     make(map[int][]byte),
	}
}

// NewDBBenchReadRandom is RocksDB's `db_bench readrandom`: 100% uniform
// point lookups.
func NewDBBenchReadRandom(sys *core.System, st *kvs.Store) *KV {
	kv := newKV(sys, st, "DBBench-readrandom", 1, 0, 0, 0)
	kv.OpInstr = DBBenchOpInstr
	kv.gen = Uniform{N: st.Keys()}
	return kv
}

// NewYCSB builds one of the standard YCSB core workloads (A–F) over the
// store.
func NewYCSB(sys *core.System, st *kvs.Store, variant byte) (*KV, error) {
	switch variant {
	case 'A', 'B', 'C', 'D', 'E', 'F':
	default:
		return nil, fmt.Errorf("workload: unknown YCSB variant %q", variant)
	}
	n := st.Keys()
	zipf := Scrambled{Gen: NewZipfian(n, ZipfTheta), N: n}
	switch variant {
	case 'A': // update heavy: 50/50
		kv := newKV(sys, st, "YCSB-A", 0.5, 0.5, 0, 0)
		kv.gen = zipf
		return kv, nil
	case 'B': // read mostly: 95/5
		kv := newKV(sys, st, "YCSB-B", 0.95, 0.05, 0, 0)
		kv.gen = zipf
		return kv, nil
	case 'C': // read only
		kv := newKV(sys, st, "YCSB-C", 1, 0, 0, 0)
		kv.gen = zipf
		return kv, nil
	case 'D': // read latest: 95 read / 5 insert
		kv := newKV(sys, st, "YCSB-D", 0.95, 0, 0.05, 0)
		kv.insertFrontier = n / 2
		kv.latest = NewLatest(kv.insertFrontier)
		return kv, nil
	case 'E': // short ranges: 95 scan / 5 insert
		kv := newKV(sys, st, "YCSB-E", 0, 0, 0.05, 0.95)
		kv.insertFrontier = n / 2
		kv.gen = zipf
		return kv, nil
	case 'F': // read-modify-write: 50 read / 50 RMW
		kv := newKV(sys, st, "YCSB-F", 0.5, 0, 0, 0)
		kv.gen = zipf
		return kv, nil
	default:
		return nil, fmt.Errorf("workload: unknown YCSB variant %q", variant)
	}
}

func (kv *KV) buf(th *kernel.Thread) []byte {
	b := kv.bufs[th.ID]
	if b == nil {
		b = make([]byte, kvs.RecordSize)
		kv.bufs[th.ID] = b
	}
	return b
}

func (kv *KV) pickKind(r *sim.Rand) KVOp {
	u := r.Float64()
	switch {
	case u < kv.readP:
		return OpRead
	case u < kv.updateP:
		return OpUpdate
	case u < kv.insertP:
		return OpInsert
	case u < kv.scanP:
		return OpScan
	default:
		return OpRMW
	}
}

func (kv *KV) nextKey(r *sim.Rand) uint64 {
	if kv.latest != nil {
		return kv.latest.Next(r)
	}
	return kv.gen.Next(r)
}

// KVSyscallPerOp is the baseline kernel time a KV client op spends in
// syscalls unrelated to demand paging (timekeeping, occasional allocator
// brk/madvise, scheduler ticks amortized per op). It is identical under
// every scheme and anchors the Fig. 15 kernel-instruction comparison.
const KVSyscallPerOp = 800 * sim.Nanosecond

// Op implements Workload: client-side compute plus baseline syscall work,
// then the storage operation through the mmap path, with read validation
// (stale versions are fine — concurrent updaters — but corruption is not).
func (kv *KV) Op(th *kernel.Thread, rng *sim.Rand, done func(error)) {
	kind := kv.pickKind(rng)
	buf := kv.buf(th)
	kv.Sys.CPU.UserExec(th.HW, kv.OpInstr, func() {
		kv.Sys.CPU.KernelExec(th.HW, KVSyscallPerOp, func() { kv.op2(th, rng, kind, buf, done) })
	})
}

func (kv *KV) op2(th *kernel.Thread, rng *sim.Rand, kind KVOp, buf []byte, done func(error)) {
	{
		switch kind {
		case OpRead:
			key := kv.nextKey(rng)
			kv.Store.Get(th, key, buf, func(_ uint64, err error) { done(err) })
		case OpUpdate:
			key := kv.nextKey(rng)
			kv.versions[key]++
			kv.Store.Put(th, key, kv.versions[key], buf, done)
		case OpInsert:
			key := kv.insertFrontier
			if key >= kv.Store.Keys() {
				key = kv.nextKey(rng) // table full: degrade to update
			} else {
				kv.insertFrontier++
				if kv.latest != nil && kv.insertFrontier%1024 == 0 {
					kv.latest.SetMax(kv.insertFrontier)
				}
			}
			kv.versions[key]++
			kv.Store.Put(th, key, kv.versions[key], buf, done)
		case OpScan:
			start := kv.nextKey(rng)
			n := 1 + rng.Intn(kv.scanMax)
			extra := uint64(n) * YCSBScanPerRec
			kv.Sys.CPU.UserExec(th.HW, extra, func() {
				kv.Store.Scan(th, start, n, buf, func(_ int, err error) { done(err) })
			})
		case OpRMW:
			key := kv.nextKey(rng)
			kv.Store.ReadModifyWrite(th, key, buf, done)
		}
	}
}
