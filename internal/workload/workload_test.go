package workload

import (
	"math"
	"testing"

	"hwdp/internal/core"
	"hwdp/internal/kernel"
	"hwdp/internal/kvs"
	"hwdp/internal/metrics"
	"hwdp/internal/sim"
)

func testSystem(t *testing.T, scheme kernel.Scheme) *core.System {
	t.Helper()
	cfg := core.DefaultConfig(scheme)
	cfg.Cores = 4
	cfg.MemoryBytes = 16 << 20 // 4096 frames
	cfg.FSBlocks = 1 << 16
	cfg.FreeQueueDepth = 512
	cfg.DeviceJitter = false
	cfg.Kernel.KptedPeriod = 2 * sim.Millisecond
	return cfg.Build()
}

func TestUniformGen(t *testing.T) {
	g := Uniform{N: 10}
	r := sim.NewRand(1)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		k := g.Next(r)
		if k >= 10 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("bucket %d = %d, not uniform", i, c)
		}
	}
}

func TestZipfianSkewAndRange(t *testing.T) {
	const n = 1000
	z := NewZipfian(n, ZipfTheta)
	r := sim.NewRand(2)
	counts := make([]int, n)
	const draws = 200000
	for i := 0; i < draws; i++ {
		k := z.Next(r)
		if k >= n {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	// Item 0 must be far more popular than the median item.
	if counts[0] < 20*counts[n/2] {
		t.Fatalf("not skewed: head=%d mid=%d", counts[0], counts[n/2])
	}
	// Head probability for theta=0.99, n=1000: 1/zeta ≈ 0.13.
	headFrac := float64(counts[0]) / draws
	if headFrac < 0.08 || headFrac > 0.20 {
		t.Fatalf("head fraction = %f", headFrac)
	}
}

func TestScrambledSpreadsHotKeys(t *testing.T) {
	const n = 1000
	s := Scrambled{Gen: NewZipfian(n, ZipfTheta), N: n}
	r := sim.NewRand(3)
	counts := make([]int, n)
	for i := 0; i < 100000; i++ {
		counts[s.Next(r)]++
	}
	// The hottest key should no longer be key 0 deterministically adjacent
	// to key 1; just assert skew survived and range holds.
	max, maxK := 0, 0
	for k, c := range counts {
		if c > max {
			max, maxK = c, k
		}
	}
	if max < 5000 {
		t.Fatalf("scramble destroyed skew: max=%d", max)
	}
	if maxK == 0 {
		t.Log("hottest key scrambled to 0 (possible but unlikely)")
	}
}

func TestLatestTracksFrontier(t *testing.T) {
	l := NewLatest(100)
	r := sim.NewRand(4)
	for i := 0; i < 1000; i++ {
		if k := l.Next(r); k >= 100 {
			t.Fatalf("key %d beyond frontier", k)
		}
	}
	l.SetMax(200)
	sawNew := false
	for i := 0; i < 2000; i++ {
		k := l.Next(r)
		if k >= 200 {
			t.Fatalf("key %d beyond new frontier", k)
		}
		if k >= 100 {
			sawNew = true
		}
	}
	if !sawNew {
		t.Fatal("latest distribution ignores new keys")
	}
}

func TestFIORunsAndFaults(t *testing.T) {
	sys := testSystem(t, kernel.HWDP)
	fio, err := SetupFIO(sys, "fio", 2048, sys.FastFlags())
	if err != nil {
		t.Fatal(err)
	}
	threads := []*kernel.Thread{sys.WorkloadThread(0), sys.WorkloadThread(1)}
	rs := Run(sys, threads, fio, RunOptions{OpsPerThread: 200})
	total := Merge(rs)
	if total.Ops != 400 || total.Errors != 0 {
		t.Fatalf("ops=%d errors=%d", total.Ops, total.Errors)
	}
	if sys.MMU.Stats().HWMisses == 0 {
		t.Fatal("no hardware misses under HWDP FIO")
	}
	if total.MeanLatency() < sim.Micro(5) {
		t.Fatalf("mean latency %v implausibly low", total.MeanLatency())
	}
}

func TestFIOThroughputGainHWDPvsOSDP(t *testing.T) {
	run := func(scheme kernel.Scheme) float64 {
		sys := testSystem(t, scheme)
		fio, err := SetupFIO(sys, "fio", 8192, sys.FastFlags())
		if err != nil {
			t.Fatal(err)
		}
		rs := Run(sys, []*kernel.Thread{sys.WorkloadThread(0)}, fio,
			RunOptions{OpsPerThread: 600, WarmupOps: 20})
		return Merge(rs).Throughput()
	}
	os, hw := run(kernel.OSDP), run(kernel.HWDP)
	gain := hw/os - 1
	// Fig. 13: FIO single-thread gain ≈ 57%; allow a generous band here
	// (the bench harness asserts tighter).
	if gain < 0.30 || gain > 0.90 {
		t.Fatalf("FIO gain = %.1f%% (os=%.0f hw=%.0f ops/s)", gain*100, os, hw)
	}
}

func TestDBBenchIntegrity(t *testing.T) {
	sys := testSystem(t, kernel.HWDP)
	st, err := kvs.Create(sys.K, sys.FS, sys.Proc, "db", 4096, 0, 0, sys.FastFlags())
	if err != nil {
		t.Fatal(err)
	}
	w := NewDBBenchReadRandom(sys, st)
	rs := Run(sys, []*kernel.Thread{sys.WorkloadThread(0)}, w, RunOptions{OpsPerThread: 300})
	total := Merge(rs)
	if total.Errors != 0 {
		t.Fatalf("%d corrupt reads", total.Errors)
	}
	if total.Ops != 300 {
		t.Fatalf("ops = %d", total.Ops)
	}
}

func TestYCSBVariants(t *testing.T) {
	for _, v := range []byte{'A', 'B', 'C', 'D', 'E', 'F'} {
		v := v
		t.Run(string(v), func(t *testing.T) {
			sys := testSystem(t, kernel.HWDP)
			st, err := kvs.Create(sys.K, sys.FS, sys.Proc, "db", 8192, 0, 0, sys.FastFlags())
			if err != nil {
				t.Fatal(err)
			}
			w, err := NewYCSB(sys, st, v)
			if err != nil {
				t.Fatal(err)
			}
			rs := Run(sys, []*kernel.Thread{sys.WorkloadThread(0), sys.WorkloadThread(1)},
				w, RunOptions{OpsPerThread: 150})
			total := Merge(rs)
			if total.Errors != 0 {
				t.Fatalf("errors = %d", total.Errors)
			}
			if total.Ops != 300 {
				t.Fatalf("ops = %d", total.Ops)
			}
		})
	}
	if _, err := NewYCSB(nil, nil, 'Z'); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestYCSBWritesCauseDeviceWrites(t *testing.T) {
	sys := testSystem(t, kernel.HWDP)
	st, err := kvs.Create(sys.K, sys.FS, sys.Proc, "db", 8192, 0, 0, sys.FastFlags())
	if err != nil {
		t.Fatal(err)
	}
	w, _ := NewYCSB(sys, st, 'A')
	th := sys.WorkloadThread(0)
	Run(sys, []*kernel.Thread{th}, w, RunOptions{OpsPerThread: 400})
	// Updates dirty pages; msync must push them to the device.
	synced := false
	sys.K.Msync(th, st.Base(), func() { synced = true })
	sys.RunWhile(func() bool { return !synced })
	if !synced {
		t.Fatal("msync hung")
	}
	if sys.Dev.Stats().Writes == 0 {
		t.Fatal("update-heavy workload produced no device writes")
	}
}

func TestComputeKernelIPC(t *testing.T) {
	sys := testSystem(t, kernel.HWDP)
	ks := SPECKernels(sys)
	if len(ks) != 3 {
		t.Fatal("kernel set")
	}
	rs := Run(sys, []*kernel.Thread{sys.WorkloadThread(0)}, ks[0],
		RunOptions{Duration: 5 * sim.Millisecond})
	th := sys.CPU.Thread(0)
	if th.UserInstr == 0 {
		t.Fatal("no instructions executed")
	}
	ipc := th.Counters.UserIPC()
	if math.Abs(ipc-sys.Cfg.CPUParams.BaseIPC) > 0.2 {
		t.Fatalf("solo compute IPC = %f", ipc)
	}
	if rs[0].Ops == 0 {
		t.Fatal("no ops")
	}
}

func TestDriverDurationMode(t *testing.T) {
	sys := testSystem(t, kernel.HWDP)
	ks := SPECKernels(sys)
	rs := Run(sys, []*kernel.Thread{sys.WorkloadThread(0)}, ks[1],
		RunOptions{Duration: 2 * sim.Millisecond})
	if rs[0].Elapsed < 2*sim.Millisecond {
		t.Fatalf("elapsed = %v", rs[0].Elapsed)
	}
}

func TestDriverOptionValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Run(nil, nil, nil, RunOptions{})
}

func TestMergeResults(t *testing.T) {
	a := Result{Ops: 10, Errors: 1, Elapsed: 100, Lat: newHist(5)}
	b := Result{Ops: 20, Errors: 0, Elapsed: 200, Lat: newHist(15)}
	m := Merge([]Result{a, b})
	if m.Ops != 30 || m.Errors != 1 || m.Elapsed != 200 {
		t.Fatalf("merge = %+v", m)
	}
	if m.Lat.Count() != 2 {
		t.Fatal("histograms not merged")
	}
	if Merge(nil).Throughput() != 0 {
		t.Fatal("empty throughput")
	}
}

func newHist(v int64) *metrics.Histogram {
	h := metrics.NewHistogram()
	h.Record(v)
	return h
}
