package workload

import (
	"hwdp/internal/core"
	"hwdp/internal/fs"
	"hwdp/internal/kernel"
	"hwdp/internal/mmu"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
)

// FIOOpInstr is the IPC-sensitive user work FIO's mmap engine does per
// 4 KiB random read (offset generation, loop control, result checks).
const FIOOpInstr = 8000

// FIOOpFixed is the warmth-insensitive per-op overhead: two clock_gettime
// reads around the I/O, serializing instructions, and the 4 KiB
// bandwidth-bound memcpy. Together with FIOOpInstr this calibrates the
// single-thread Fig. 12 latencies.
const FIOOpFixed = 3200 * sim.Nanosecond

// FIO models `fio --ioengine=mmap --rw=randread --bs=4k` over one mapped
// file: each op picks a uniformly random page and touches it, taking a
// demand-paging miss when the page is cold.
type FIO struct {
	Sys     *core.System
	Base    pagetable.VAddr
	Pages   int
	OpInstr uint64
	// WriteFrac makes a fraction of ops writes (randrw mixes).
	WriteFrac float64
	// CopyData routes ops through the data-copying Load path instead of a
	// bare access (slower to simulate; used by integrity tests).
	CopyData bool
	// Sequential walks the file front to back (prefetcher ablation).
	Sequential bool
	// Cold makes every op touch a not-yet-resident page — the Fig. 12
	// configuration ("repeatedly accesses [the] memory-mapped file randomly
	// so as to incur cold page misses"). Threads walk disjoint page
	// partitions in a scrambled full-cycle order; with the file larger
	// than memory, pages are evicted again before their next visit.
	Cold bool

	bufs  map[int][]byte
	walks map[int]*coldWalk
}

// coldWalk visits every page of a partition once per cycle in a scrambled
// order (a full-cycle linear walk with a stride co-prime to the size).
type coldWalk struct {
	offset, size, stride, pos int
}

func (c *coldWalk) next() int {
	p := c.offset + (c.pos*c.stride)%c.size
	c.pos++
	return p
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// NewFIO creates the workload over an already-mapped region.
func NewFIO(sys *core.System, base pagetable.VAddr, pages int) *FIO {
	return &FIO{Sys: sys, Base: base, Pages: pages, OpInstr: FIOOpInstr,
		bufs: make(map[int][]byte), walks: make(map[int]*coldWalk)}
}

// SetupFIO creates and maps a file for the standard FIO scenario.
func SetupFIO(sys *core.System, name string, pages int, flags kernel.MmapFlags) (*FIO, error) {
	base, _, err := sys.MapFile(name, pages, fs.SeededInit(uint64(len(name))), flags)
	if err != nil {
		return nil, err
	}
	return NewFIO(sys, base, pages), nil
}

func (f *FIO) pick(th *kernel.Thread, rng *sim.Rand) int {
	if f.Sequential {
		w := f.walks[th.ID+1]
		if w == nil {
			w = &coldWalk{offset: 0, size: f.Pages, stride: 1}
			f.walks[th.ID+1] = w
		}
		return w.next()
	}
	if !f.Cold {
		return rng.Intn(f.Pages)
	}
	// One shared full-cycle walk over the whole file: every page is
	// visited exactly once per cycle (threads interleave on it), and with
	// the file larger than memory a page is evicted before its next visit.
	w := f.walks[0]
	if w == nil {
		stride := f.Pages/3 + 1 + rng.Intn(f.Pages/3+1)
		for gcd(stride, f.Pages) != 1 {
			stride++
		}
		w = &coldWalk{offset: 0, size: f.Pages, stride: stride}
		f.walks[0] = w
	}
	return w.next()
}

// Op implements Workload.
func (f *FIO) Op(th *kernel.Thread, rng *sim.Rand, done func(error)) {
	page := f.pick(th, rng)
	va := f.Base + pagetable.VAddr(page)*4096
	write := f.WriteFrac > 0 && rng.Float64() < f.WriteFrac
	f.Sys.CPU.Stall(th.HW, FIOOpFixed, func() {
		f.Sys.CPU.UserExec(th.HW, f.OpInstr, func() {
			if f.CopyData {
				buf := f.bufs[th.ID]
				if buf == nil {
					buf = make([]byte, 4096)
					f.bufs[th.ID] = buf
				}
				f.Sys.K.Load(th, va, buf, func(r mmu.Result) { done(badAddrErr(r)) })
				return
			}
			f.Sys.K.Access(th, va, write, func(r mmu.Result) { done(badAddrErr(r)) })
		})
	})
}

func badAddrErr(r mmu.Result) error {
	if r.Outcome == mmu.OutcomeBadAddr {
		return errBadAddr
	}
	return nil
}

type simpleErr string

func (e simpleErr) Error() string { return string(e) }

const errBadAddr = simpleErr("workload: access to unmapped address")
