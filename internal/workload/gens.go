// Package workload provides the evaluation's workload generators — FIO
// random read over mmap, DBBench readrandom, the YCSB A–F mixes with
// standard key distributions, and SPEC-CPU-like compute kernels — plus the
// driver that runs them on simulated threads and collects throughput,
// latency and microarchitectural counters.
package workload

import (
	"math"

	"hwdp/internal/sim"
)

// KeyGen produces keys in [0, n) under some popularity distribution.
type KeyGen interface {
	Next(r *sim.Rand) uint64
}

// Uniform draws keys uniformly — FIO and DBBench readrandom's pattern
// ("their memory access pattern is uniform").
type Uniform struct{ N uint64 }

// Next returns a uniform key.
func (u Uniform) Next(r *sim.Rand) uint64 { return r.Uint64() % u.N }

// Zipfian is the standard YCSB zipfian generator (Gray et al.'s algorithm,
// the one in YCSB's ZipfianGenerator), with constant 0.99.
type Zipfian struct {
	n               uint64
	theta           float64
	alpha, zetan    float64
	eta, zeta2theta float64
}

// ZipfTheta is YCSB's default skew.
const ZipfTheta = 0.99

// NewZipfian precomputes the zeta constants for n items.
func NewZipfian(n uint64, theta float64) *Zipfian {
	z := &Zipfian{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2theta = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2theta/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// ZipfWeights returns the normalized zipfian popularity of ranks 0..n-1 at
// the given skew (weights sum to 1; rank 0 is the most popular). The fleet
// layer uses it for tenant intensity: a few hot tenants and a long tail,
// the same heavy-traffic shape the key distributions model.
func ZipfWeights(n int, theta float64) []float64 {
	if n < 1 {
		return nil
	}
	w := make([]float64, n)
	sum := zeta(uint64(n), theta)
	for i := 0; i < n; i++ {
		w[i] = 1 / math.Pow(float64(i+1), theta) / sum
	}
	return w
}

// Next returns a zipf-distributed key with item 0 the most popular.
func (z *Zipfian) Next(r *sim.Rand) uint64 {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// Scrambled wraps a generator, spreading its popular keys across the whole
// keyspace with a fixed hash — YCSB's "scrambled zipfian", so hot records
// are not physically adjacent.
type Scrambled struct {
	Gen KeyGen
	N   uint64
}

// Next returns the scrambled key.
func (s Scrambled) Next(r *sim.Rand) uint64 {
	k := s.Gen.Next(r)
	// FNV-1a style scramble.
	h := (k ^ 14695981039346656037) * 1099511628211
	return h % s.N
}

// Latest is YCSB's latest distribution: recently inserted keys are the
// most popular (workload D). The insert frontier advances externally via
// SetMax.
type Latest struct {
	z   *Zipfian
	max uint64
}

// NewLatest builds a latest-distribution generator over an initial
// frontier.
func NewLatest(initialMax uint64) *Latest {
	return &Latest{z: NewZipfian(initialMax, ZipfTheta), max: initialMax}
}

// SetMax advances the insert frontier.
func (l *Latest) SetMax(m uint64) {
	if m > l.max {
		// Recompute zetan incrementally would be the YCSB approach; at
		// simulation scale a full rebuild on growth steps is fine and the
		// driver batches growth.
		l.z = NewZipfian(m, ZipfTheta)
		l.max = m
	}
}

// Next returns a recency-skewed key below the frontier.
func (l *Latest) Next(r *sim.Rand) uint64 {
	off := l.z.Next(r)
	return l.max - 1 - off
}
