package workload

import (
	"hwdp/internal/core"
	"hwdp/internal/kernel"
	"hwdp/internal/sim"
)

// Compute is a CPU-bound kernel standing in for a SPEC CPU 2017 thread in
// the Fig. 16 SMT co-scheduling experiment. Each op is a slice of pure
// user computation; its achieved IPC depends on how many issue slots the
// SMT sibling leaves free.
type Compute struct {
	Sys     *core.System
	Name    string
	OpInstr uint64
}

// SPECKernels returns the co-runner set used for Figure 16: three kernels
// with different op granularities (shorter ops → more scheduling points,
// standing in for SPEC workloads of different loop structures).
func SPECKernels(sys *core.System) []*Compute {
	return []*Compute{
		{Sys: sys, Name: "mcf-like", OpInstr: 20_000},
		{Sys: sys, Name: "lbm-like", OpInstr: 60_000},
		{Sys: sys, Name: "xz-like", OpInstr: 140_000},
	}
}

// Op implements Workload.
func (c *Compute) Op(th *kernel.Thread, _ *sim.Rand, done func(error)) {
	c.Sys.CPU.UserExec(th.HW, c.OpInstr, func() { done(nil) })
}
