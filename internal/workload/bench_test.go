package workload

import (
	"testing"

	"hwdp/internal/sim"
)

func BenchmarkZipfianNext(b *testing.B) {
	z := NewZipfian(1<<20, ZipfTheta)
	r := sim.NewRand(1)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= z.Next(r)
	}
	_ = sink
}

func BenchmarkScrambledNext(b *testing.B) {
	s := Scrambled{Gen: NewZipfian(1<<20, ZipfTheta), N: 1 << 20}
	r := sim.NewRand(1)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= s.Next(r)
	}
	_ = sink
}
