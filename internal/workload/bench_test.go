package workload

import (
	"testing"

	"hwdp/internal/sim"
)

func BenchmarkZipfianNext(b *testing.B) {
	z := NewZipfian(1<<20, ZipfTheta)
	r := sim.NewRand(1)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= z.Next(r)
	}
	_ = sink
}

func BenchmarkScrambledNext(b *testing.B) {
	s := Scrambled{Gen: NewZipfian(1<<20, ZipfTheta), N: 1 << 20}
	r := sim.NewRand(1)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= s.Next(r)
	}
	_ = sink
}

// TestGeneratorsBoundedAndDeterministic asserts the correctness of the
// generators the benchmarks above measure: outputs stay in range and a
// fixed seed reproduces the same sequence.
func TestGeneratorsBoundedAndDeterministic(t *testing.T) {
	const n = 1 << 20
	z1, z2 := NewZipfian(n, ZipfTheta), NewZipfian(n, ZipfTheta)
	r1, r2 := sim.NewRand(9), sim.NewRand(9)
	s := Scrambled{Gen: NewZipfian(n, ZipfTheta), N: n}
	rs := sim.NewRand(9)
	for i := 0; i < 5000; i++ {
		a, b := z1.Next(r1), z2.Next(r2)
		if a != b {
			t.Fatalf("zipfian diverged at draw %d: %d vs %d", i, a, b)
		}
		if a >= n {
			t.Fatalf("zipfian out of range: %d >= %d", a, n)
		}
		if v := s.Next(rs); v >= n {
			t.Fatalf("scrambled out of range: %d >= %d", v, n)
		}
	}
}
