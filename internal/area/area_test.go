package area

import (
	"math"
	"strings"
	"testing"
)

func TestPMSHREntryWidth(t *testing.T) {
	if PMSHREntryBits != 300 {
		t.Fatalf("PMSHR entry = %d bits, paper says 300", PMSHREntryBits)
	}
}

func TestSMUReportMatchesPaper(t *testing.T) {
	r := SMUReport(22)
	// Section VI-D: total 0.014 mm², 0.004% of the 354 mm² die.
	if r.Total < 0.012 || r.Total > 0.016 {
		t.Fatalf("total = %f mm²", r.Total)
	}
	if r.DieFraction < 0.00003 || r.DieFraction > 0.00005 {
		t.Fatalf("die fraction = %f%%", 100*r.DieFraction)
	}
	// Shares: PMSHR 87.6%, NVMe regs 6.7%, prefetch 3.7%, misc 2.0%.
	shares := []struct {
		idx  int
		want float64
	}{{0, 0.876}, {1, 0.067}, {2, 0.037}}
	for _, s := range shares {
		got := r.Areas[s.idx] / r.Total
		if math.Abs(got-s.want) > 0.02 {
			t.Errorf("%s share = %.3f, want %.3f",
				r.Components[s.idx].Name, got, s.want)
		}
	}
	if misc := r.MiscArea / r.Total; math.Abs(misc-0.020) > 0.005 {
		t.Errorf("misc share = %.3f", misc)
	}
}

func TestNodeScaling(t *testing.T) {
	a22 := SMUReport(22).Total
	a11 := SMUReport(11).Total
	if math.Abs(a11*4-a22) > 1e-9 {
		t.Fatalf("quadratic scaling broken: 22nm=%f 11nm=%f", a22, a11)
	}
}

func TestComponentBits(t *testing.T) {
	comps := SMUComponents()
	if comps[0].TotalBits() != 32*300 {
		t.Fatalf("PMSHR bits = %d", comps[0].TotalBits())
	}
	if comps[1].TotalBits() != 8*352 {
		t.Fatalf("NVMe bits = %d", comps[1].TotalBits())
	}
}

func TestCellKindString(t *testing.T) {
	if CAM.String() != "CAM" || Register.String() != "register" {
		t.Fatal("kind strings")
	}
}

func TestReportRender(t *testing.T) {
	s := SMUReport(22).String()
	for _, want := range []string{"PMSHR", "NVMe", "prefetch", "misc", "TOTAL", "0.004"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}
