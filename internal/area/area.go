// Package area estimates the silicon cost of the SMU the way the paper
// does with McPAT's SRAM and register models (Section VI-D): per-bit area
// coefficients for CAM and register cells at 22 nm, summed over the SMU's
// structures, and compared against the Xeon E5-2640 v3 die (354 mm²).
package area

import (
	"fmt"
	"strings"
)

// CellKind distinguishes the storage cell types McPAT models.
type CellKind int

// Cell kinds.
const (
	CAM CellKind = iota // fully associative match cells (PMSHR)
	Register
)

// String returns the cell kind's display name.
func (k CellKind) String() string {
	if k == CAM {
		return "CAM"
	}
	return "register"
}

// Per-bit cell areas at the 22 nm node, in mm², fitted to McPAT's output
// for the structures at hand (a CAM bit carries match logic and is ~4×
// the area of a plain flop).
const (
	CAMBitArea22nm = 1.2775e-6
	RegBitArea22nm = 3.15e-7
	// MiscFraction is control/glue logic as a fraction of the structure
	// total (the paper's "other miscellaneous registers ... 2.0%").
	MiscFraction = 0.020
	// XeonE52640v3Die is the reference die size in mm² at 22 nm.
	XeonE52640v3Die = 354.0
	// ReferenceNode is the technology node of the coefficients.
	ReferenceNode = 22.0
)

// Component is one hardware structure.
type Component struct {
	Name    string
	Entries int
	Bits    int // per entry
	Kind    CellKind
}

// TotalBits returns the component's storage bits.
func (c Component) TotalBits() int { return c.Entries * c.Bits }

// Area returns the component's area in mm² at the given node (nm),
// scaling quadratically from the 22 nm coefficients.
func (c Component) Area(nodeNM float64) float64 {
	per := RegBitArea22nm
	if c.Kind == CAM {
		per = CAMBitArea22nm
	}
	scale := (nodeNM / ReferenceNode) * (nodeNM / ReferenceNode)
	return float64(c.TotalBits()) * per * scale
}

// PMSHREntryBits is the PMSHR entry width: three 64-bit entry addresses, a
// 64-bit PFN, a 41-bit LBA and a 3-bit device ID = 300 bits.
const PMSHREntryBits = 3*64 + 64 + 41 + 3

// NVMeDescriptorBits is one set of NVMe queue descriptor registers
// (Fig. 9): SQ/CQ base addresses, doorbell addresses, head/tail indices,
// queue size, phase and namespace ID.
const NVMeDescriptorBits = 352

// PrefetchEntryBits is one <PFN, DMA address> prefetch-buffer record.
const PrefetchEntryBits = 52 + 52

// SMUComponents returns the prototype SMU's structures: a 32-entry PMSHR,
// eight NVMe descriptor register sets, and a 16-entry free-page prefetch
// buffer.
func SMUComponents() []Component {
	return []Component{
		{Name: "PMSHR", Entries: 32, Bits: PMSHREntryBits, Kind: CAM},
		{Name: "NVMe queue descriptors", Entries: 8, Bits: NVMeDescriptorBits, Kind: Register},
		{Name: "free-page prefetch buffer", Entries: 16, Bits: PrefetchEntryBits, Kind: Register},
	}
}

// Report is a full area budget.
type Report struct {
	NodeNM      float64
	Components  []Component
	Areas       []float64 // mm², parallel to Components
	MiscArea    float64
	Total       float64
	DieArea     float64
	DieFraction float64
}

// SMUReport computes the budget at the given node against the reference
// die.
func SMUReport(nodeNM float64) Report {
	comps := SMUComponents()
	r := Report{NodeNM: nodeNM, Components: comps, DieArea: XeonE52640v3Die}
	sum := 0.0
	for _, c := range comps {
		a := c.Area(nodeNM)
		r.Areas = append(r.Areas, a)
		sum += a
	}
	r.MiscArea = sum * MiscFraction / (1 - MiscFraction)
	r.Total = sum + r.MiscArea
	r.DieFraction = r.Total / r.DieArea
	return r
}

// String renders the budget like the paper's Section VI-D.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SMU area at %.0f nm (die %.0f mm²)\n", r.NodeNM, r.DieArea)
	for i, c := range r.Components {
		fmt.Fprintf(&b, "  %-28s %2d × %3d bits (%-8s) %.6f mm² (%4.1f%%)\n",
			c.Name, c.Entries, c.Bits, c.Kind, r.Areas[i], 100*r.Areas[i]/r.Total)
	}
	fmt.Fprintf(&b, "  %-28s %22s %.6f mm² (%4.1f%%)\n", "misc control", "",
		r.MiscArea, 100*r.MiscArea/r.Total)
	fmt.Fprintf(&b, "  TOTAL %.4f mm² = %.3f%% of the processor die\n",
		r.Total, 100*r.DieFraction)
	return b.String()
}
