package modeled

import (
	"fmt"

	"hwdp/internal/sim"
)

// pickVictim selects the next GC victim among full, non-free blocks.
// Greedy minimizes valid pages; cost-benefit maximizes the classic LFS
// cleaner score (1-u)/(1+u)·age. Ties break toward the lowest block id,
// so selection is deterministic. Returns -1 when no full block exists or
// every candidate is fully valid (relocating one would reclaim nothing).
func (m *Model) pickVictim(now sim.Time) int32 {
	best := int32(-1)
	bestValid := int32(0)
	bestScore := 0.0
	for i := range m.blocks {
		b := &m.blocks[i]
		if b.free || int(b.written) != m.ppb || int(b.valid) == m.ppb {
			continue
		}
		if m.cfg.GCPolicy == CostBenefit {
			u := float64(b.valid) / float64(m.ppb)
			age := float64(now - b.lastMod)
			if age < 1 {
				age = 1
			}
			score := (1 - u) / (1 + u) * age
			if best < 0 || score > bestScore {
				best, bestScore = int32(i), score
			}
		} else {
			if best < 0 || b.valid < bestValid {
				best, bestValid = int32(i), b.valid
			}
		}
	}
	return best
}

// collect reclaims blocks until the free pool recovers to the high
// watermark (or no victim can yield space): relocate the victim's live
// pages — reads occupy the victim's plane, programs stripe across the
// array like host writes — then erase it and return it to its plane's
// pool. All of this plane time lands on the busy timelines, which is
// exactly the GC tail spike subsequent host commands observe.
func (m *Model) collect(now sim.Time) {
	m.st.GCRuns++
	bpp := m.blocksPerPlane()
	for m.freeTotal < m.cfg.GCHighBlocks {
		victim := m.pickVictim(now)
		if victim < 0 {
			// Every full block is fully valid: relocation would consume
			// as many pages as it frees. Stop; allocation continues from
			// whatever headroom remains.
			return
		}
		b := &m.blocks[victim]
		pl := &m.planes[int(victim)/bpp]
		t := now
		if pl.busyAt > t {
			t = pl.busyAt
		}
		for off := 0; off < m.ppb; off++ {
			lba := b.lbas[off]
			if lba < 0 {
				continue
			}
			// Relocation read off the victim plane...
			t += m.cfg.ReadLatency
			pl.busyAt = t
			m.st.GCReads++
			m.st.GCBusySum += m.cfg.ReadLatency
			// ...then a striped program elsewhere (gc=true draws from the
			// spare pool without re-entering the collector).
			m.program(int64(lba), t, true)
			m.st.GCBusySum += m.cfg.ProgramLatency
		}
		if b.valid != 0 {
			panic(fmt.Sprintf("modeled: victim block %d still has %d valid pages after relocation", victim, b.valid))
		}
		pl.busyAt = t + m.cfg.EraseLatency
		m.st.Erases++
		m.st.GCBusySum += m.cfg.EraseLatency
		m.eraseInto(victim, pl)
	}
}

// eraseInto resets an empty block and returns it to its plane's pool.
func (m *Model) eraseInto(id int32, pl *plane) {
	b := &m.blocks[id]
	for j := range b.lbas {
		b.lbas[j] = -1
		b.vers[j] = 0
	}
	b.written = 0
	b.free = true
	b.erases++
	//hwdp:ignore hotalloc free-block list is bounded by the plane's block count; the backing array reaches that capacity and stops growing
	pl.free = append(pl.free, id)
	m.freeTotal++
}

// Violation is one failed FTL invariant, in the style of internal/check:
// Invariant names the rule, Detail says what reconciliation failed.
type Violation struct {
	Invariant string
	Detail    string
}

// String renders the violation for test output.
func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// CheckInvariants audits the full FTL state and returns every violated
// invariant (empty means consistent):
//
//   - mapping: every live LBA's l2p entry points at a flash page whose
//     inverse map names that LBA and carries its last-written version
//     (no lost or stale live data);
//   - valid-count: each block's valid counter reconciles with its
//     inverse map;
//   - conservation: total valid flash pages equal total mapped LBAs
//     (with the mapping invariant this makes live-LBA → valid-page a
//     bijection: exactly one valid copy per LBA);
//   - free-blocks: the global free counter, the per-plane pools and the
//     per-block free flags all reconcile, and free blocks are empty;
//   - geometry: open blocks never exceed the block size and active
//     blocks are not in any free pool.
func (m *Model) CheckInvariants() []Violation {
	var out []Violation
	mapped := 0
	for lba := int64(0); lba < m.userPages; lba++ {
		ppn := m.l2p[lba]
		if ppn < 0 {
			continue
		}
		mapped++
		if int(ppn) >= m.nblocks*m.ppb {
			out = append(out, Violation{"mapping", fmt.Sprintf("lba %d maps to out-of-range page %d", lba, ppn)})
			continue
		}
		b := &m.blocks[ppn/int32(m.ppb)]
		off := ppn % int32(m.ppb)
		if b.lbas[off] != int32(lba) {
			out = append(out, Violation{"mapping",
				fmt.Sprintf("lba %d maps to page %d, but the page's inverse entry names lba %d (live data lost)", lba, ppn, b.lbas[off])})
		} else if b.vers[off] != m.ver[lba] {
			out = append(out, Violation{"mapping",
				fmt.Sprintf("lba %d page %d holds version %d, want last-written %d (stale data relocated)", lba, ppn, b.vers[off], m.ver[lba])})
		}
	}
	validTotal, freeFlagged := 0, 0
	for i := range m.blocks {
		b := &m.blocks[i]
		count := int32(0)
		for _, l := range b.lbas {
			if l >= 0 {
				count++
			}
		}
		if count != b.valid {
			out = append(out, Violation{"valid-count",
				fmt.Sprintf("block %d counter says %d valid pages, inverse map has %d", i, b.valid, count)})
		}
		validTotal += int(count)
		if b.free {
			freeFlagged++
			if count != 0 || b.written != 0 {
				out = append(out, Violation{"free-blocks",
					fmt.Sprintf("free block %d is not empty (valid=%d written=%d)", i, count, b.written)})
			}
		}
		if int(b.written) > m.ppb {
			out = append(out, Violation{"geometry",
				fmt.Sprintf("block %d has %d pages written, block size is %d", i, b.written, m.ppb)})
		}
	}
	if validTotal != mapped {
		out = append(out, Violation{"conservation",
			fmt.Sprintf("%d valid flash pages for %d mapped lbas (copies leaked or lost)", validTotal, mapped)})
	}
	pooled := 0
	for p := range m.planes {
		pl := &m.planes[p]
		pooled += len(pl.free)
		for _, id := range pl.free {
			if !m.blocks[id].free {
				out = append(out, Violation{"free-blocks",
					fmt.Sprintf("plane %d pools block %d which is not flagged free", p, id)})
			}
		}
		if pl.active >= 0 && m.blocks[pl.active].free {
			out = append(out, Violation{"geometry",
				fmt.Sprintf("plane %d's active block %d is flagged free", p, pl.active)})
		}
	}
	if pooled != m.freeTotal || freeFlagged != m.freeTotal {
		out = append(out, Violation{"free-blocks",
			fmt.Sprintf("free accounting disagrees: counter=%d pooled=%d flagged=%d", m.freeTotal, pooled, freeFlagged)})
	}
	return out
}
