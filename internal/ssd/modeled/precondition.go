package modeled

import "hwdp/internal/sim"

// precondition ages the drive before the run starts: a sequential fill
// of FillFrac of the host LBAs (the dataset ships on the drive), then
// ChurnOverwrites× that many random overwrites (seeded, so identical
// across runs and lane counts) to scatter valid pages and draw down the
// spare pool the way months of service would — the state that makes GC
// fire during the run instead of never.
//
// Preconditioning is state-only: it drives the real allocation, mapping
// and GC machinery (so the resulting layout is one the FTL could really
// reach), but the work is snapshotted into PrecondPrograms/PrecondErases
// and every timeline, buffer and run counter is reset to zero — virtual
// time starts with the drive aged but idle.
func (m *Model) precondition(seed uint64) {
	fill := int64(m.cfg.FillFrac * float64(m.userPages))
	if fill > m.userPages {
		fill = m.userPages
	}
	for lba := int64(0); lba < fill; lba++ {
		m.precondWrite(lba)
	}
	if fill > 0 && m.cfg.ChurnOverwrites > 0 {
		rng := sim.NewRand(seed)
		churn := int64(m.cfg.ChurnOverwrites * float64(fill))
		for i := int64(0); i < churn; i++ {
			m.precondWrite(rng.Int63n(fill))
		}
	}
	// Snapshot the aging work, then reset everything timing-related: the
	// run observes an aged layout, not the aging itself.
	precondPrograms := m.st.FlashPrograms + m.st.GCPrograms
	precondErases := m.st.Erases
	m.st = Stats{PrecondPrograms: precondPrograms, PrecondErases: precondErases}
	for p := range m.planes {
		m.planes[p].busyAt = 0
	}
	for c := range m.chanBusy {
		m.chanBusy[c] = 0
	}
	for i := range m.blocks {
		m.blocks[i].lastMod = 0
	}
	m.flush = m.flush[:0]
	m.cache.init(m.cfg.MapEntries)
}

// precondWrite is one aging write: the full allocation/mapping/GC path
// with all timing pinned at t=0 (reset afterwards anyway) and no DRAM
// buffer involvement.
func (m *Model) precondWrite(lba int64) {
	ppn, _ := m.allocPage(0, false)
	m.st.FlashPrograms++
	m.writeSeq++
	m.ver[lba] = m.writeSeq
	m.mapMove(lba, ppn, 0)
}
