package modeled

import (
	"testing"

	"hwdp/internal/sim"
	"hwdp/internal/ssd"
)

// fuzzModel builds the tiny fuzz-target drive: aggressive churn so GC
// state is live from the first generated op.
func fuzzModel(seed uint64) *Model {
	cfg := smallConfig(Greedy, 1.5)
	if seed%2 == 1 {
		cfg.GCPolicy = CostBenefit
	}
	return New(cfg, ssd.ZSSD, smallLBAs, seed)
}

// FuzzFTLMappingRoundTrip feeds arbitrary byte programs into the FTL's
// write/read path — each pair of input bytes becomes one op (low bits
// pick read vs write and the burst length, the rest pick the LBA) — and
// then audits the full invariant set plus a version-shadow round-trip:
// whatever the fuzzer writes, every live LBA must still map to exactly
// one valid flash page holding its last write.
func FuzzFTLMappingRoundTrip(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x10, 0x20, 0xff, 0x03})
	f.Add([]byte("write storms against the mapping table"))
	f.Add([]byte{0x81, 0x81, 0x81, 0x81, 0x81, 0x81, 0x81, 0x81})
	f.Fuzz(func(t *testing.T, prog []byte) {
		if len(prog) > 4096 {
			prog = prog[:4096]
		}
		m := fuzzModel(uint64(len(prog)))
		shadow := make([]uint32, smallLBAs)
		copy(shadow, m.ver)
		seq := m.writeSeq
		now := sim.Time(0)
		for i := 0; i+1 < len(prog); i += 2 {
			op, sel := prog[i], prog[i+1]
			lba := (int64(op)<<3 | int64(sel)>>5) % smallLBAs
			n := 1 + int(sel&3)
			if lba+int64(n) > smallLBAs {
				n = int(smallLBAs - lba)
			}
			if op&1 == 0 {
				now = writeCmd(m, now, lba, n)
				for j := 0; j < n; j++ {
					seq++
					shadow[lba+int64(j)] = seq
				}
			} else {
				now = readCmd(m, now, lba, n)
			}
		}
		if vs := m.CheckInvariants(); len(vs) != 0 {
			t.Fatalf("%d invariant violations after fuzz program, first: %v", len(vs), vs[0])
		}
		for lba := int64(0); lba < smallLBAs; lba++ {
			if m.ver[lba] != shadow[lba] {
				t.Fatalf("lba %d: version %d, shadow %d (lost or stale write survived GC)", lba, m.ver[lba], shadow[lba])
			}
		}
	})
}

// FuzzGCVictim drives victim selection directly: arbitrary bytes shape
// an overwrite pattern, then the collector is forced repeatedly. GC must
// only ever consume full live blocks, must leave the free accounting
// reconciled, and must never shrink the free pool below where it began.
func FuzzGCVictim(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x03, 0x04})
	f.Add([]byte("victim selection under skewed heat"))
	f.Add([]byte{0xaa, 0x00, 0xaa, 0x00, 0xaa, 0x00})
	f.Fuzz(func(t *testing.T, pattern []byte) {
		if len(pattern) > 2048 {
			pattern = pattern[:2048]
		}
		m := fuzzModel(uint64(len(pattern)) + 1)
		now := sim.Time(0)
		// Skew the heat: each byte overwrites a narrow LBA band, so some
		// blocks go nearly stale while others stay hot.
		for i, b := range pattern {
			base := (int64(b) * 7) % smallLBAs
			for j := int64(0); j < 8 && base+j < smallLBAs; j++ {
				now = writeCmd(m, now, base+j, 1)
			}
			if i%16 == 15 {
				before := m.FreeBlocks()
				m.collect(now)
				if m.FreeBlocks() < before {
					t.Fatalf("collect shrank the free pool: %d -> %d", before, m.FreeBlocks())
				}
			}
		}
		if v := m.pickVictim(now); v >= 0 {
			b := &m.blocks[v]
			if b.free || int(b.written) != m.ppb || int(b.valid) == m.ppb {
				t.Fatalf("victim %d invalid: free=%v written=%d valid=%d", v, b.free, b.written, b.valid)
			}
		}
		if vs := m.CheckInvariants(); len(vs) != 0 {
			t.Fatalf("%d invariant violations after forced GC, first: %v", len(vs), vs[0])
		}
	})
}
