package modeled

import (
	"fmt"
	"reflect"
	"testing"

	"hwdp/internal/nvme"
	"hwdp/internal/sim"
	"hwdp/internal/ssd"
)

// smallConfig is a tiny geometry that forces frequent GC: 4 planes,
// 16-page blocks, deep churn. Latencies stay at profile-derived defaults.
func smallConfig(policy Policy, churn float64) Config {
	return Config{
		Channels:        2,
		WaysPerChannel:  1,
		PlanesPerWay:    2,
		PagesPerBlock:   16,
		OPFrac:          0.15,
		MapEntries:      128,
		BufEntries:      8,
		GCPolicy:        policy,
		FillFrac:        0.9,
		ChurnOverwrites: churn,
	}
}

const smallLBAs = 2048

func newSmall(t *testing.T, policy Policy, churn float64, seed uint64) *Model {
	t.Helper()
	m := New(smallConfig(policy, churn), ssd.ZSSD, smallLBAs, seed)
	if vs := m.CheckInvariants(); len(vs) != 0 {
		t.Fatalf("invariants violated straight out of preconditioning: %v", vs)
	}
	return m
}

// writeCmd admits an n-block write at the given LBA and returns the ack
// time (the next command's earliest sensible arrival).
func writeCmd(m *Model, now sim.Time, lba int64, n int) sim.Time {
	adm := m.Admit(now, nvme.Command{Opcode: nvme.OpWrite, SLBA: uint64(lba), NLB: uint16(n - 1)}, 1)
	return adm.Done
}

// readCmd admits an n-block read.
func readCmd(m *Model, now sim.Time, lba int64, n int) sim.Time {
	adm := m.Admit(now, nvme.Command{Opcode: nvme.OpRead, SLBA: uint64(lba), NLB: uint16(n - 1)}, 1)
	return adm.Done
}

// TestGCConservationProperty is the archetype headline: arbitrary
// fixed-seed write storms against a heavily preconditioned tiny drive,
// audited by CheckInvariants at every checkpoint. The invariants assert
// exactly the issue's conservation properties — every live LBA maps to
// exactly one valid flash page holding its last-written version (GC
// relocated no stale data and lost no live data), and free-block /
// valid-page counts reconcile. A per-LBA version shadow kept by the test
// independently re-derives "last-written".
func TestGCConservationProperty(t *testing.T) {
	seeds := []uint64{1, 2, 3, 5, 8, 13}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		for _, policy := range []Policy{Greedy, CostBenefit} {
			t.Run(fmt.Sprintf("seed=%d/%s", seed, policy), func(t *testing.T) {
				runStorm(t, policy, seed)
			})
		}
	}
}

func runStorm(t *testing.T, policy Policy, seed uint64) {
	m := newSmall(t, policy, 2, seed)
	rng := sim.NewRand(seed ^ 0xa5a5)
	shadow := make([]uint32, smallLBAs) // independent last-write versions
	// Adopt the preconditioning state as the shadow baseline.
	copy(shadow, m.ver)
	var seq uint32
	for lba, v := range shadow {
		if v > seq {
			seq = v
			_ = lba
		}
	}
	now := sim.Time(0)
	for op := 0; op < 4000; op++ {
		lba := rng.Int63n(smallLBAs)
		n := 1 + int(rng.Intn(4))
		if lba+int64(n) > smallLBAs {
			n = int(smallLBAs - lba)
		}
		if rng.Float64() < 0.7 {
			now = writeCmd(m, now, lba, n)
			for i := 0; i < n; i++ {
				seq++
				shadow[lba+int64(i)] = seq
			}
		} else {
			now = readCmd(m, now, lba, n)
		}
		now += sim.Microsecond
		if op%500 == 499 {
			if vs := m.CheckInvariants(); len(vs) != 0 {
				t.Fatalf("op %d: %d invariant violations, first: %v", op, len(vs), vs[0])
			}
		}
	}
	if vs := m.CheckInvariants(); len(vs) != 0 {
		t.Fatalf("final state: %d invariant violations, first: %v", len(vs), vs[0])
	}
	for lba := int64(0); lba < smallLBAs; lba++ {
		if m.ver[lba] != shadow[lba] {
			t.Fatalf("lba %d: model version %d, shadow says last write was %d", lba, m.ver[lba], shadow[lba])
		}
	}
	st := m.Stats()
	if st.GCRuns == 0 || st.Erases == 0 {
		t.Fatalf("storm never exercised GC (runs=%d erases=%d) — geometry too roomy for the property to bite", st.GCRuns, st.Erases)
	}
	if wa := st.WriteAmp(); wa <= 1 {
		t.Fatalf("write amplification %.3f under heavy overwrite churn, want > 1", wa)
	}
	if m.FreeBlocks() <= 0 {
		t.Fatalf("drive ran out of free blocks (%d): GC failed to reclaim", m.FreeBlocks())
	}
}

// TestPreconditioningShapesState pins the preconditioning contract: a
// fresh drive has no GC history and an empty map beyond the fill; an
// aged drive starts with spare blocks drawn down and relocation scars,
// yet zeroed run counters and idle timelines.
func TestPreconditioningShapesState(t *testing.T) {
	fresh := New(smallConfig(Greedy, 0), ssd.ZSSD, smallLBAs, 1)
	aged := New(smallConfig(Greedy, 3), ssd.ZSSD, smallLBAs, 1)
	if fresh.Stats().PrecondErases != 0 {
		t.Fatalf("fill-only preconditioning erased %d blocks; sequential fill must not trigger GC", fresh.Stats().PrecondErases)
	}
	if aged.Stats().PrecondErases == 0 {
		t.Fatal("churned preconditioning never erased a block; drive is not aged")
	}
	if aged.Stats().PrecondPrograms <= fresh.Stats().PrecondPrograms {
		t.Fatalf("aged drive programmed %d pages, fresh %d; churn must add work",
			aged.Stats().PrecondPrograms, fresh.Stats().PrecondPrograms)
	}
	for _, m := range []*Model{fresh, aged} {
		st := m.Stats()
		if st.UserReads != 0 || st.UserWrites != 0 || st.FlashPrograms != 0 || st.GCRuns != 0 {
			t.Fatalf("run counters not reset after preconditioning: %+v", st)
		}
		for p := range m.planes {
			if m.planes[p].busyAt != 0 {
				t.Fatalf("plane %d timeline %v after preconditioning, want idle", p, m.planes[p].busyAt)
			}
		}
	}
}

// TestUnmappedReadsBypassFlash pins the zero-fill path: reads of
// never-written LBAs touch no plane and count separately.
func TestUnmappedReadsBypassFlash(t *testing.T) {
	cfg := smallConfig(Greedy, 0)
	cfg.FillFrac = -1 // empty drive
	m := New(cfg, ssd.ZSSD, smallLBAs, 1)
	readCmd(m, 0, 100, 4)
	st := m.Stats()
	if st.UnmappedReads != 4 || st.FlashReads != 0 {
		t.Fatalf("unmapped=%d flashReads=%d, want 4 and 0", st.UnmappedReads, st.FlashReads)
	}
}

// TestWriteBufferStalls pins the DRAM buffer model: a burst deeper than
// BufEntries at one instant must stall on in-flight programs.
func TestWriteBufferStalls(t *testing.T) {
	m := newSmall(t, Greedy, 0, 1)
	for i := 0; i < 4*m.Config().BufEntries; i++ {
		// Same arrival time for all: programs can't drain between writes.
		writeCmd(m, 0, int64(i), 1)
	}
	if m.Stats().BufStalls == 0 {
		t.Fatal("a burst 4x deeper than the write buffer never stalled")
	}
}

// TestFlushDrainsBuffer pins flush semantics: after a flush admission
// every buffered program is accounted done, so an immediate second flush
// costs only FlushLatency.
func TestFlushDrainsBuffer(t *testing.T) {
	m := newSmall(t, Greedy, 0, 1)
	now := sim.Time(0)
	for i := 0; i < 8; i++ {
		now = writeCmd(m, now, int64(i), 1)
	}
	adm := m.Admit(now, nvme.Command{Opcode: nvme.OpFlush}, 1)
	if adm.Start < now {
		t.Fatalf("flush started %v before its admission %v", adm.Start, now)
	}
	again := m.Admit(adm.Done, nvme.Command{Opcode: nvme.OpFlush}, 1)
	if got, want := again.Done-again.Start, m.Config().FlushLatency; got != want {
		t.Fatalf("second flush media time %v, want bare FlushLatency %v", got, want)
	}
}

// TestDeterministicReplay pins determinism at the model level: two
// models built with the same seed and driven by the same admission
// sequence end bit-identical (Stats and full mapping state).
func TestDeterministicReplay(t *testing.T) {
	run := func() *Model {
		m := New(smallConfig(CostBenefit, 2), ssd.ZSSD, smallLBAs, 7)
		rng := sim.NewRand(99)
		now := sim.Time(0)
		for op := 0; op < 1500; op++ {
			lba := rng.Int63n(smallLBAs)
			if rng.Float64() < 0.6 {
				now = writeCmd(m, now, lba, 1)
			} else {
				now = readCmd(m, now, lba, 1)
			}
		}
		return m
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Stats(), b.Stats()) {
		t.Fatalf("same seed, different stats:\n%+v\n%+v", a.Stats(), b.Stats())
	}
	if !reflect.DeepEqual(a.l2p, b.l2p) || !reflect.DeepEqual(a.ver, b.ver) {
		t.Fatal("same seed, different mapping state")
	}
}

// TestMinLatencyLowerBounds verifies the lane-lookahead contract: no
// admission completes sooner than MinLatency after its arrival.
func TestMinLatencyLowerBounds(t *testing.T) {
	m := newSmall(t, Greedy, 1, 3)
	rng := sim.NewRand(4)
	min := m.MinLatency()
	now := sim.Time(0)
	for op := 0; op < 1000; op++ {
		lba := rng.Int63n(smallLBAs)
		var adm ssd.Admission
		switch {
		case rng.Float64() < 0.5:
			adm = m.Admit(now, nvme.Command{Opcode: nvme.OpWrite, SLBA: uint64(lba)}, 1)
		case rng.Float64() < 0.9:
			adm = m.Admit(now, nvme.Command{Opcode: nvme.OpRead, SLBA: uint64(lba)}, 1)
		default:
			adm = m.Admit(now, nvme.Command{Opcode: nvme.OpFlush}, 1)
		}
		if adm.Done-now < min {
			t.Fatalf("op %d: admission done %v < now %v + MinLatency %v", op, adm.Done, now, min)
		}
		if adm.Start < now || adm.Done < adm.Start {
			t.Fatalf("op %d: non-monotone admission now=%v start=%v done=%v", op, now, adm.Start, adm.Done)
		}
		now = adm.Done
	}
}

// TestVictimPolicies pins the two policies' selection logic on a
// hand-built layout: greedy takes the emptiest block, cost-benefit
// prefers an older block over a slightly emptier hot one.
func TestVictimPolicies(t *testing.T) {
	m := newSmall(t, Greedy, 2, 5)
	now := sim.Time(sim.Milli(10))
	v := m.pickVictim(now)
	if v < 0 {
		t.Fatal("churned drive has no GC victim")
	}
	b := &m.blocks[v]
	if b.free || int(b.written) != m.ppb {
		t.Fatalf("greedy victim %d is not a full live block (free=%v written=%d)", v, b.free, b.written)
	}
	for i := range m.blocks {
		o := &m.blocks[i]
		if !o.free && int(o.written) == m.ppb && o.valid < b.valid {
			t.Fatalf("greedy picked block %d (%d valid) over block %d (%d valid)", v, b.valid, i, o.valid)
		}
	}
	m.cfg.GCPolicy = CostBenefit
	cb := m.pickVictim(now)
	if cb < 0 {
		t.Fatal("cost-benefit found no victim on the same layout")
	}
	// Aging a different reclaimable candidate far into the past must make
	// it win outright: its age term dwarfs every rival's.
	for i := range m.blocks {
		o := &m.blocks[i]
		if int32(i) != cb && !o.free && int(o.written) == m.ppb && int(o.valid) < m.ppb {
			o.lastMod = now - sim.Milli(1_000_000)
			if got := m.pickVictim(now); got != int32(i) {
				t.Fatalf("cost-benefit ignored an ancient reclaimable block: picked %d, want %d", got, i)
			}
			break
		}
	}
}
