// Package modeled is the full-resource SSD media backend: a page-mapping
// FTL with a bounded mapping cache, greedy / cost-benefit garbage
// collection over an over-provisioned flash array, channel/way/plane
// parallelism with per-plane busy timelines and per-channel transfer
// buses, and a small embedded DRAM write buffer.
//
// It plugs into ssd.Device behind the ssd.Backend seam: the Device keeps
// owning queues, fault injection, DMA and completion transport, while
// Admit here decides when each command's media work starts and ends. The
// latency-profile backend answers "how fast is this device when fresh";
// this one answers the questions a fresh drive cannot — steady-state
// write amplification, GC-induced tail spikes, and mapping-cache misses —
// the effects Amber/SimpleSSD-grade models exist to expose.
//
// Everything is plain virtual-time bookkeeping evaluated at admission
// time in event order: no internal events, no goroutines, no global
// state, no map iteration. Same seed and admission sequence ⇒ identical
// timings and Stats, which keeps -lanes N runs byte-identical to
// sequential ones (the lanesafety/simdeterminism analyzers police this
// package like the rest of the device stack).
package modeled

import (
	"fmt"

	"hwdp/internal/nvme"
	"hwdp/internal/sim"
	"hwdp/internal/ssd"
)

// Policy selects the garbage-collection victim policy.
type Policy int

// Victim-selection policies.
const (
	// Greedy picks the full block with the fewest valid pages.
	Greedy Policy = iota
	// CostBenefit weighs reclaimable space against data age
	// ((1-u)/(1+u) · age, the classic LFS cleaner score): cold blocks
	// with moderate staleness beat hot blocks that would soon re-dirty.
	CostBenefit
)

// String names the policy for figures and manifests.
func (p Policy) String() string {
	if p == CostBenefit {
		return "cost-benefit"
	}
	return "greedy"
}

// Config sizes and times the modeled device. Zero fields are filled by
// New from the device's latency profile (see withDefaults); the zero
// value therefore models "the configured profile's class of device, with
// flash internals".
type Config struct {
	// Channels, WaysPerChannel and PlanesPerWay set the parallelism
	// tree; the unit of media concurrency is the plane (one array
	// operation at a time), and planes are striped round-robin across
	// channels so adjacent writes overlap.
	Channels       int
	WaysPerChannel int
	PlanesPerWay   int
	// PagesPerBlock is the erase-block size in 4 KiB pages.
	PagesPerBlock int
	// OPFrac is the over-provisioned fraction of raw capacity invisible
	// to the host (spare blocks GC feeds on).
	OPFrac float64
	// ReadLatency is the flash array read time (tR).
	ReadLatency sim.Time
	// ProgramLatency is the page program time (tPROG).
	ProgramLatency sim.Time
	// EraseLatency is the block erase time (tBERS).
	EraseLatency sim.Time
	// XferLatency is the 4 KiB channel transfer time.
	XferLatency sim.Time
	// BufWriteLatency is the host-visible latency of a buffered write
	// (data lands in device DRAM; the program completes in background).
	BufWriteLatency sim.Time
	// FlushLatency is the host-visible tail of a flush after every
	// outstanding buffered program has hit flash.
	FlushLatency sim.Time
	// BufEntries is the DRAM write-buffer depth in pages: a write whose
	// arrival finds all slots occupied by in-flight programs stalls.
	BufEntries int
	// MapEntries bounds the FTL mapping cache (DFTL-style: the full
	// page-level map lives on flash, a bounded cache in device DRAM).
	MapEntries int
	// MapMissPenalty is the cost of fetching a mapping entry on a cache
	// miss (a translation-page read).
	MapMissPenalty sim.Time
	// MapEvictPenalty is the extra cost when the evicted entry is dirty
	// (the translation page must be rewritten).
	MapEvictPenalty sim.Time
	// GCPolicy selects the victim policy.
	GCPolicy Policy
	// GCLowBlocks / GCHighBlocks are the global free-block watermarks:
	// allocation that would leave at most GCLowBlocks free blocks runs
	// the collector until GCHighBlocks are free.
	GCLowBlocks  int
	GCHighBlocks int
	// FillFrac preconditions the drive: the fraction of host LBAs
	// written (sequentially) before the run starts. 1 models a drive
	// shipped with the dataset in place; figures default to 1 so every
	// read hits flash. Negative means "leave the drive empty".
	FillFrac float64
	// ChurnOverwrites preconditions steady state: after the fill, this
	// multiple of the filled capacity is overwritten at random (fixed
	// seed), scattering valid pages and consuming spare blocks the way
	// months of service would. 0 keeps the drive fresh.
	ChurnOverwrites float64
}

// DefaultConfig derives a modeled configuration from a latency profile:
// the profile's end-to-end 4 KiB times anchor the flash timings so a
// fresh, idle modeled device lands near the profile's latencies, while
// parallelism and GC parameters take flash-typical values.
func DefaultConfig(prof ssd.Profile) Config {
	var c Config
	c.fill(prof)
	return c
}

// fill populates zero fields from the profile (see DefaultConfig).
func (c *Config) fill(prof ssd.Profile) {
	if c.Channels == 0 {
		c.Channels = prof.Channels
	}
	if c.Channels <= 0 {
		c.Channels = 8
	}
	if c.WaysPerChannel == 0 {
		c.WaysPerChannel = 2
	}
	if c.PlanesPerWay == 0 {
		c.PlanesPerWay = 2
	}
	if c.PagesPerBlock == 0 {
		c.PagesPerBlock = 64
	}
	if c.OPFrac == 0 {
		c.OPFrac = 0.12
	}
	if c.XferLatency == 0 {
		c.XferLatency = 800 * sim.Nanosecond
	}
	if c.ReadLatency == 0 {
		c.ReadLatency = prof.Read4K - c.XferLatency
		if c.ReadLatency < sim.Microsecond {
			c.ReadLatency = sim.Microsecond
		}
	}
	if c.ProgramLatency == 0 {
		c.ProgramLatency = 5 * prof.Write4K
	}
	if c.EraseLatency == 0 {
		c.EraseLatency = sim.Milli(1)
	}
	if c.BufWriteLatency == 0 {
		c.BufWriteLatency = prof.Write4K
	}
	if c.FlushLatency == 0 {
		c.FlushLatency = prof.Write4K / 2
	}
	if c.BufEntries == 0 {
		c.BufEntries = 64
	}
	if c.MapEntries == 0 {
		c.MapEntries = 4096
	}
	if c.MapMissPenalty == 0 {
		c.MapMissPenalty = c.ReadLatency
	}
	if c.MapEvictPenalty == 0 {
		c.MapEvictPenalty = c.ProgramLatency / 8
	}
	if c.FillFrac == 0 {
		c.FillFrac = 1
	}
	if c.FillFrac < 0 {
		c.FillFrac = 0
	}
}

// Stats aggregates the backend's resource counters. User* counters see
// host commands; Flash*/GC* counters see media operations, so
// (FlashPrograms+GCPrograms)/FlashPrograms is the write-amplification
// factor. Precond* snapshot the preconditioning work, which is excluded
// from the run counters.
type Stats struct {
	UserReads, UserWrites, UserFlushes uint64
	// UnmappedReads hit LBAs never written: the controller answers from
	// its zero-fill path without touching flash.
	UnmappedReads uint64
	// Mapping-cache traffic.
	MapHits, MapMisses, MapEvictsDirty uint64
	// Write-buffer stalls (arrivals that found every slot in flight).
	BufStalls   uint64
	BufStallSum sim.Time
	// Media operations. FlashPrograms counts host-data programs only;
	// GCReads/GCPrograms are relocation traffic.
	FlashReads, FlashPrograms uint64
	GCReads, GCPrograms       uint64
	Erases                    uint64
	// GCRuns counts collector invocations; GCBusySum is plane time spent
	// relocating and erasing (the tail-spike budget).
	GCRuns    uint64
	GCBusySum sim.Time
	// Preconditioning snapshot (not part of the run counters above).
	PrecondPrograms, PrecondErases uint64
}

// WriteAmp returns the run's write-amplification factor (total programs
// per host program); 1 exactly when GC never ran.
func (s Stats) WriteAmp() float64 {
	if s.FlashPrograms == 0 {
		return 1
	}
	return float64(s.FlashPrograms+s.GCPrograms) / float64(s.FlashPrograms)
}

// Model is one modeled SSD. It implements ssd.Backend.
type Model struct {
	cfg       Config
	userPages int64
	ppb       int // pages per block
	nblocks   int // total blocks
	nplanes   int
	blocks    []block
	planes    []plane
	chanBusy  []sim.Time // per-channel transfer-bus timeline
	freeTotal int        // free blocks across all planes
	l2p       []int32    // LBA → physical page, -1 unmapped
	ver       []uint32   // LBA → last-write version (conservation checks)
	writeSeq  uint32
	stripe    int // round-robin plane pointer for host/GC programs
	flush     []sim.Time
	cache     mapCache
	st        Stats
	spanBuf   []ssd.BackendSpan
}

// block is one erase block.
type block struct {
	lbas    []int32  // per page: owning LBA, -1 stale or unwritten
	vers    []uint32 // per page: version of the owning write
	written int32    // pages programmed since last erase
	valid   int32
	free    bool
	lastMod sim.Time // last program/invalidate (cost-benefit age)
	erases  uint32
}

// plane is one independently-busy flash array.
type plane struct {
	busyAt sim.Time
	free   []int32 // erased blocks (LIFO)
	active int32   // open block accepting programs, -1 none
}

// New builds a modeled device covering userBlocks host LBAs, deriving
// unset Config fields from prof and preconditioning per cfg (FillFrac
// then ChurnOverwrites, churn order seeded by seed). The preconditioning
// work is state-only: timelines and run Stats start at zero.
func New(cfg Config, prof ssd.Profile, userBlocks uint64, seed uint64) *Model {
	cfg.fill(prof)
	if userBlocks == 0 {
		panic("modeled: device needs at least one host block")
	}
	m := &Model{cfg: cfg, userPages: int64(userBlocks)}
	m.ppb = cfg.PagesPerBlock
	m.nplanes = cfg.Channels * cfg.WaysPerChannel * cfg.PlanesPerWay
	m.sizeArray()
	m.l2p = make([]int32, userBlocks)
	for i := range m.l2p {
		m.l2p[i] = -1
	}
	m.ver = make([]uint32, userBlocks)
	m.chanBusy = make([]sim.Time, cfg.Channels)
	m.cache.init(cfg.MapEntries)
	m.precondition(seed)
	return m
}

// sizeArray chooses blocks-per-plane so the raw array covers the host
// capacity plus over-provisioning, with enough spare blocks for the GC
// watermarks and one open block per plane.
func (m *Model) sizeArray() {
	need := float64(m.userPages) / (1 - m.cfg.OPFrac)
	perPlane := int(need/float64(m.ppb*m.nplanes)) + 1
	if m.cfg.GCLowBlocks == 0 {
		m.cfg.GCLowBlocks = m.nplanes/4 + 2
	}
	if m.cfg.GCHighBlocks <= m.cfg.GCLowBlocks {
		m.cfg.GCHighBlocks = 2 * m.cfg.GCLowBlocks
	}
	for {
		total := perPlane * m.nplanes
		spare := int64(total)*int64(m.ppb) - m.userPages
		// Spare blocks must cover the high watermark, an open block per
		// plane, and slack for relocation headroom.
		if spare >= int64(m.ppb)*int64(m.cfg.GCHighBlocks+m.nplanes+2) {
			break
		}
		perPlane++
	}
	m.nblocks = perPlane * m.nplanes
	m.blocks = make([]block, m.nblocks)
	m.planes = make([]plane, m.nplanes)
	for p := range m.planes {
		pl := &m.planes[p]
		pl.active = -1
		pl.free = make([]int32, 0, perPlane)
		// Push high block ids first so allocation starts at each plane's
		// lowest block (LIFO stack).
		for b := perPlane - 1; b >= 0; b-- {
			id := int32(p*perPlane + b)
			m.blocks[id].free = true
			pl.free = append(pl.free, id)
		}
	}
	m.freeTotal = m.nblocks
	for i := range m.blocks {
		b := &m.blocks[i]
		b.lbas = make([]int32, m.ppb)
		for j := range b.lbas {
			b.lbas[j] = -1
		}
		b.vers = make([]uint32, m.ppb)
	}
}

// planeOf returns the plane owning a physical page.
func (m *Model) planeOf(ppn int32) int { return int(ppn) / (m.ppb * m.blocksPerPlane()) }

// blocksPerPlane returns the per-plane block count.
func (m *Model) blocksPerPlane() int { return m.nblocks / m.nplanes }

// channelOf maps a plane to its channel. Planes are laid out
// channel-major, so consecutive plane ids alternate channels and the
// round-robin stripe pointer spreads programs across channels first.
func (m *Model) channelOf(pl int) int { return pl % m.cfg.Channels }

// Stats returns a copy of the run counters.
func (m *Model) Stats() Stats { return m.st }

// Config returns the (default-filled) configuration in effect.
func (m *Model) Config() Config { return m.cfg }

// FreeBlocks returns the current global free-block count.
func (m *Model) FreeBlocks() int { return m.freeTotal }

// MinLatency lower-bounds every admission's Done-now: the cheapest
// possible outcomes are an uncontended buffered write, a flush with an
// empty buffer, and a zero-fill unmapped read.
func (m *Model) MinLatency() sim.Time {
	min := m.cfg.BufWriteLatency
	if m.cfg.FlushLatency < min {
		min = m.cfg.FlushLatency
	}
	if r := m.cfg.ReadLatency + m.cfg.XferLatency; r < min {
		min = r
	}
	return min
}

// scale multiplies a service time by the fault injector's spike factor
// (clamped to never shrink a latency).
func scale(t sim.Time, spike float64) sim.Time {
	if spike <= 1 {
		return t
	}
	return sim.Time(float64(t) * spike)
}

// Admit implements ssd.Backend: it commits the media schedule for one
// command and returns its queueing/media split plus trace spans for
// traced commands.
func (m *Model) Admit(now sim.Time, cmd nvme.Command, spike float64) ssd.Admission {
	traced := cmd.Trace != nil
	m.spanBuf = m.spanBuf[:0]
	var adm ssd.Admission
	switch cmd.Opcode {
	case nvme.OpRead:
		m.st.UserReads += uint64(cmd.Blocks())
		adm = m.admitRead(now, int64(cmd.SLBA), cmd.Blocks(), spike, traced)
	case nvme.OpWrite:
		m.st.UserWrites += uint64(cmd.Blocks())
		adm = m.admitWrite(now, int64(cmd.SLBA), cmd.Blocks(), spike, traced)
	case nvme.OpFlush:
		m.st.UserFlushes++
		adm = m.admitFlush(now, spike, traced)
	default:
		panic(fmt.Sprintf("modeled: unknown opcode %v", cmd.Opcode))
	}
	if traced {
		adm.Spans = m.spanBuf
	}
	return adm
}

// span appends one labeled interval to the per-admission span buffer
// (only called for traced commands; zero-length intervals are dropped).
func (m *Model) span(label string, start, end sim.Time) {
	if end > start {
		//hwdp:ignore hotalloc only runs for traced commands (single-miss experiments); the span buffer is reused across admissions
		m.spanBuf = append(m.spanBuf, ssd.BackendSpan{Label: label, Start: start, End: end})
	}
}

// admitRead schedules n sequential page reads: mapping fetch, plane
// array read (serialized per plane), then the channel transfer bus.
func (m *Model) admitRead(now sim.Time, lba int64, n int, spike float64, traced bool) ssd.Admission {
	first, started := now, false
	t := now
	for i := 0; i < n; i++ {
		pen := m.cacheAccess(lba+int64(i), false)
		if traced {
			m.span("map-fetch", t, t+pen)
		}
		rt := t + pen
		ppn := m.l2p[lba+int64(i)]
		if ppn < 0 {
			// Never-written LBA: the controller zero-fills without
			// touching the array.
			m.st.UnmappedReads++
			if !started {
				first, started = rt, true
			}
			if traced {
				m.span("media read", rt, rt+scale(m.cfg.ReadLatency, spike))
			}
			t = rt + scale(m.cfg.ReadLatency, spike) + m.cfg.XferLatency
			continue
		}
		pl := &m.planes[m.planeOf(ppn)]
		start := rt
		if pl.busyAt > start {
			start = pl.busyAt
		}
		if traced {
			m.span("channel-queue-wait", rt, start)
		}
		mediaEnd := start + scale(m.cfg.ReadLatency, spike)
		pl.busyAt = mediaEnd
		m.st.FlashReads++
		ch := m.channelOf(m.planeOf(ppn))
		busStart := mediaEnd
		if m.chanBusy[ch] > busStart {
			busStart = m.chanBusy[ch]
		}
		done := busStart + m.cfg.XferLatency
		m.chanBusy[ch] = done
		if traced {
			m.span("media read", start, mediaEnd)
			m.span("bus-wait", mediaEnd, busStart)
			m.span("bus-xfer", busStart, done)
		}
		if !started {
			first, started = start, true
		}
		t = done
	}
	return ssd.Admission{Start: first, Done: t}
}

// admitWrite schedules n sequential buffered page writes: mapping
// update, a DRAM buffer slot (stalling when all slots hold in-flight
// programs), a fast host ack, and a background flash program that
// occupies a striped plane and may trigger garbage collection.
func (m *Model) admitWrite(now sim.Time, lba int64, n int, spike float64, traced bool) ssd.Admission {
	first, started := now, false
	t := now
	for i := 0; i < n; i++ {
		pen := m.cacheAccess(lba+int64(i), true)
		if traced {
			m.span("map-fetch", t, t+pen)
		}
		wt := t + pen
		// Reap completed programs, then stall if the buffer is still full.
		m.reapFlushes(wt)
		if len(m.flush) >= m.cfg.BufEntries {
			slot := m.minFlush()
			if m.flush[slot] > wt {
				m.st.BufStalls++
				m.st.BufStallSum += m.flush[slot] - wt
				if traced {
					m.span("buf-stall", wt, m.flush[slot])
				}
				wt = m.flush[slot]
			}
			m.popFlush(slot)
		}
		if !started {
			first, started = wt, true
		}
		ack := wt + scale(m.cfg.BufWriteLatency, spike)
		if traced {
			m.span("media write", wt, ack)
		}
		// The program enters the flash pipeline once the data is in the
		// buffer (at ack time).
		m.program(lba+int64(i), ack, false)
		t = ack
	}
	return ssd.Admission{Start: first, Done: t}
}

// admitFlush waits for every outstanding buffered program to reach flash
// and acks FlushLatency later.
func (m *Model) admitFlush(now sim.Time, spike float64, traced bool) ssd.Admission {
	t := now
	for _, f := range m.flush {
		if f > t {
			t = f
		}
	}
	m.flush = m.flush[:0]
	if traced {
		m.span("buf-drain", now, t)
		m.span("media flush", t, t+scale(m.cfg.FlushLatency, spike))
	}
	return ssd.Admission{Start: t, Done: t + scale(m.cfg.FlushLatency, spike)}
}

// reapFlushes drops buffer slots whose programs completed by t.
func (m *Model) reapFlushes(t sim.Time) {
	keep := m.flush[:0]
	for _, f := range m.flush {
		if f > t {
			//hwdp:ignore hotalloc in-place filter over flush's own backing array; never outgrows it
			keep = append(keep, f)
		}
	}
	m.flush = keep
}

// minFlush returns the index of the earliest-completing buffered program.
func (m *Model) minFlush() int {
	min := 0
	for i, f := range m.flush {
		if f < m.flush[min] {
			min = i
		}
	}
	return min
}

// popFlush removes one buffer slot, preserving order of the rest (order
// is irrelevant for timing but keeps runs bit-stable).
func (m *Model) popFlush(i int) {
	//hwdp:ignore hotalloc in-place element removal within flush's existing backing array
	m.flush = append(m.flush[:i], m.flush[i+1:]...)
}

// program writes one host (or relocated) page: allocates a flash page on
// the striped plane — running GC when free blocks hit the low watermark —
// occupies the plane for the program, and moves the mapping.
func (m *Model) program(lba int64, ready sim.Time, gc bool) {
	ppn, pl := m.allocPage(ready, gc)
	p := &m.planes[pl]
	start := ready
	if p.busyAt > start {
		start = p.busyAt
	}
	end := start + m.cfg.ProgramLatency
	p.busyAt = end
	if gc {
		m.st.GCPrograms++
		m.mapMove(lba, ppn, end)
	} else {
		m.st.FlashPrograms++
		//hwdp:ignore hotalloc flush is bounded by the configured buffer slots; its backing array reaches that capacity and stops growing
		m.flush = append(m.flush, end)
		m.writeSeq++
		m.ver[lba] = m.writeSeq
		m.mapMove(lba, ppn, end)
	}
}

// mapMove points lba at its new flash page, invalidating the old one.
func (m *Model) mapMove(lba int64, ppn int32, when sim.Time) {
	if old := m.l2p[lba]; old >= 0 {
		ob := &m.blocks[old/int32(m.ppb)]
		off := old % int32(m.ppb)
		if ob.lbas[off] != int32(lba) {
			panic(fmt.Sprintf("modeled: inverse map corrupt: page %d owned by %d, invalidated by %d",
				old, ob.lbas[off], lba))
		}
		ob.lbas[off] = -1
		ob.valid--
		ob.lastMod = when
	}
	nb := &m.blocks[ppn/int32(m.ppb)]
	off := ppn % int32(m.ppb)
	nb.lbas[off] = int32(lba)
	nb.vers[off] = m.ver[lba]
	nb.valid++
	nb.lastMod = when
	m.l2p[lba] = ppn
}

// allocPage returns the next free flash page on the round-robin striped
// planes, opening blocks from the free pool as needed. Host allocations
// (gc=false) run the collector when the pool is at the low watermark; GC
// relocations (gc=true) draw from the pool directly — the watermark gap
// is their headroom.
func (m *Model) allocPage(now sim.Time, gc bool) (int32, int) {
	if !gc && m.freeTotal <= m.cfg.GCLowBlocks {
		m.collect(now)
	}
	for scanned := 0; scanned < m.nplanes; scanned++ {
		pl := m.stripe
		m.stripe = (m.stripe + 1) % m.nplanes
		p := &m.planes[pl]
		if p.active < 0 {
			n := len(p.free)
			if n == 0 {
				continue // this plane is out of blocks; stripe on
			}
			id := p.free[n-1]
			p.free = p.free[:n-1]
			m.freeTotal--
			m.blocks[id].free = false
			p.active = id
		}
		b := &m.blocks[p.active]
		ppn := p.active*int32(m.ppb) + b.written
		b.written++
		if int(b.written) == m.ppb {
			p.active = -1
		}
		return ppn, pl
	}
	panic("modeled: flash array exhausted (over-provisioning too small for the write load)")
}
