package modeled

import "hwdp/internal/sim"

// mapCache is the bounded FTL mapping cache (DFTL-style). The full
// page-level map is assumed to live on flash; this cache models which
// translation entries are resident in device DRAM. Timing-only: the
// authoritative l2p array is always exact, the cache decides whether a
// lookup pays the translation-page fetch penalty.
//
// It is an intrusive doubly-linked LRU over a preallocated node arena
// with an open-addressing index, so hit/miss/evict are O(1) with no Go
// map iteration anywhere (lane determinism).
type mapCache struct {
	cap   int
	nodes []mapNode
	// index is an open-addressed hash table of node ids + 1 (0 = empty).
	index []int32
	mask  uint64
	head  int32 // most recent
	tail  int32 // least recent
	used  int
	free  int32 // free-list head
}

// mapNode is one resident translation entry.
type mapNode struct {
	lba        int64
	prev, next int32
	dirty      bool
}

// init sizes the cache for capacity entries.
func (c *mapCache) init(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	c.cap = capacity
	c.nodes = make([]mapNode, capacity)
	slots := 2
	for slots < capacity*2 {
		slots *= 2
	}
	c.index = make([]int32, slots)
	c.mask = uint64(slots - 1)
	c.head, c.tail = -1, -1
	c.free = 0
	for i := range c.nodes {
		c.nodes[i].next = int32(i + 1)
	}
	c.nodes[capacity-1].next = -1
}

// hash mixes an LBA into a table slot (splitmix64 finalizer).
func (c *mapCache) hash(lba int64) uint64 {
	z := uint64(lba) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return (z ^ (z >> 31)) & c.mask
}

// find returns the node id caching lba, or -1.
func (c *mapCache) find(lba int64) int32 {
	for slot := c.hash(lba); ; slot = (slot + 1) & c.mask {
		id := c.index[slot]
		if id == 0 {
			return -1
		}
		if c.nodes[id-1].lba == lba {
			return id - 1
		}
	}
}

// indexDelete removes lba from the hash table (backward-shift deletion,
// keeping probe chains intact without tombstones).
func (c *mapCache) indexDelete(lba int64) {
	slot := c.hash(lba)
	for {
		id := c.index[slot]
		if id == 0 {
			return
		}
		if c.nodes[id-1].lba == lba {
			break
		}
		slot = (slot + 1) & c.mask
	}
	// Backward-shift: rehome any entry whose probe chain passes through
	// the vacated slot.
	hole := slot
	for i := (slot + 1) & c.mask; ; i = (i + 1) & c.mask {
		id := c.index[i]
		if id == 0 {
			break
		}
		home := c.hash(c.nodes[id-1].lba)
		// id may move into the hole iff the hole lies on its probe path
		// (cyclic interval [home, i]).
		if (i >= home && (hole >= home && hole <= i)) ||
			(i < home && (hole >= home || hole <= i)) {
			c.index[hole] = id
			hole = i
		}
	}
	c.index[hole] = 0
}

// indexInsert adds node id under lba.
func (c *mapCache) indexInsert(lba int64, id int32) {
	for slot := c.hash(lba); ; slot = (slot + 1) & c.mask {
		if c.index[slot] == 0 {
			c.index[slot] = id + 1
			return
		}
	}
}

// unlink detaches a node from the LRU list.
func (c *mapCache) unlink(id int32) {
	n := &c.nodes[id]
	if n.prev >= 0 {
		c.nodes[n.prev].next = n.next
	} else {
		c.head = n.next
	}
	if n.next >= 0 {
		c.nodes[n.next].prev = n.prev
	} else {
		c.tail = n.prev
	}
}

// pushFront makes a node most-recently-used.
func (c *mapCache) pushFront(id int32) {
	n := &c.nodes[id]
	n.prev, n.next = -1, c.head
	if c.head >= 0 {
		c.nodes[c.head].prev = id
	}
	c.head = id
	if c.tail < 0 {
		c.tail = id
	}
}

// access touches lba, returning (hit, evictedDirty): whether the entry
// was resident and whether making room evicted a dirty entry. dirty
// marks the entry modified (a write updates the translation).
func (c *mapCache) access(lba int64, dirty bool) (bool, bool) {
	if id := c.find(lba); id >= 0 {
		c.unlink(id)
		c.pushFront(id)
		if dirty {
			c.nodes[id].dirty = true
		}
		return true, false
	}
	evictedDirty := false
	var id int32
	if c.used < c.cap {
		id = c.free
		c.free = c.nodes[id].next
		c.used++
	} else {
		id = c.tail
		c.unlink(id)
		evictedDirty = c.nodes[id].dirty
		c.indexDelete(c.nodes[id].lba)
	}
	c.nodes[id] = mapNode{lba: lba, dirty: dirty, prev: -1, next: -1}
	c.indexInsert(lba, id)
	c.pushFront(id)
	return false, evictedDirty
}

// cacheAccess charges the mapping-cache cost of touching lba and updates
// the hit/miss counters. Misses pay the translation fetch; evicting a
// dirty victim additionally pays the translation writeback.
func (m *Model) cacheAccess(lba int64, dirty bool) sim.Time {
	hit, evictedDirty := m.cache.access(lba, dirty)
	if hit {
		m.st.MapHits++
		return 0
	}
	m.st.MapMisses++
	pen := m.cfg.MapMissPenalty
	if evictedDirty {
		m.st.MapEvictsDirty++
		pen += m.cfg.MapEvictPenalty
	}
	return pen
}
