package ssd

import (
	"testing"

	"hwdp/internal/nvme"
	"hwdp/internal/sim"
)

func newDev(t *testing.T, prof Profile, dma DMAFunc) (*sim.Engine, *Device, *nvme.QueuePair, *[]nvme.Completion) {
	t.Helper()
	eng := sim.NewEngine()
	dev := New(eng, prof, sim.NewRand(1), dma)
	dev.AddNamespace(nvme.Namespace{ID: 1, Blocks: 1 << 20})
	qp := nvme.NewQueuePair(1, 64)
	var done []nvme.Completion
	dev.Attach(qp, func(cp nvme.Completion) { done = append(done, cp) })
	return eng, dev, qp, &done
}

func noJitter(p Profile) Profile { p.JitterFrac = 0; return p }

func TestSingleReadLatency(t *testing.T) {
	eng, dev, qp, done := newDev(t, noJitter(ZSSD), nil)
	if err := qp.Submit(nvme.Command{Opcode: nvme.OpRead, CID: 1, NSID: 1, SLBA: 0}); err != nil {
		t.Fatal(err)
	}
	dev.RingSQDoorbell(1)
	eng.Run()
	if len(*done) != 1 || !(*done)[0].OK() {
		t.Fatalf("completions: %+v", *done)
	}
	if eng.Now() != ZSSD.Read4K {
		t.Fatalf("read latency = %v, want %v", eng.Now(), ZSSD.Read4K)
	}
	if dev.Stats().Reads != 1 {
		t.Fatal("read not counted")
	}
}

func TestProfilesMatchPaperDeviceTimes(t *testing.T) {
	// Figure 17: 4KB read device time 10.9us (Z-SSD) .. 2.1us (Optane DC PMM).
	for _, c := range []struct {
		p    Profile
		want sim.Time
	}{
		{ZSSD, sim.Micro(10.9)},
		{OptaneSSD, sim.Micro(6.5)},
		{OptaneDCPMM, sim.Micro(2.1)},
	} {
		if c.p.Read4K != c.want {
			t.Errorf("%s Read4K = %v, want %v", c.p.Name, c.p.Read4K, c.want)
		}
	}
}

func TestChannelParallelism(t *testing.T) {
	eng, dev, qp, done := newDev(t, noJitter(ZSSD), nil)
	// 8 reads striped over 8 channels: total time ~= one read.
	for i := 0; i < 8; i++ {
		_ = qp.Submit(nvme.Command{Opcode: nvme.OpRead, CID: uint16(i), NSID: 1, SLBA: uint64(i)})
	}
	dev.RingSQDoorbell(1)
	eng.Run()
	if len(*done) != 8 {
		t.Fatalf("done = %d", len(*done))
	}
	if eng.Now() != ZSSD.Read4K {
		t.Fatalf("parallel reads took %v", eng.Now())
	}
}

func TestSameChannelSerializes(t *testing.T) {
	eng, dev, qp, done := newDev(t, noJitter(ZSSD), nil)
	// Same channel (stride = channel count): serial service.
	for i := 0; i < 4; i++ {
		_ = qp.Submit(nvme.Command{Opcode: nvme.OpRead, CID: uint16(i), NSID: 1, SLBA: uint64(i * ZSSD.Channels)})
	}
	dev.RingSQDoorbell(1)
	eng.Run()
	if len(*done) != 4 {
		t.Fatalf("done = %d", len(*done))
	}
	if eng.Now() != 4*ZSSD.Read4K {
		t.Fatalf("serial reads took %v, want %v", eng.Now(), 4*ZSSD.Read4K)
	}
	if dev.Stats().QueueWaitSum == 0 {
		t.Fatal("queue wait not recorded")
	}
}

func TestWriteInterferenceSlowsReads(t *testing.T) {
	eng, dev, qp, _ := newDev(t, noJitter(ZSSD), nil)
	// Launch a write, then while it is in flight, a read on the same channel.
	_ = qp.Submit(nvme.Command{Opcode: nvme.OpWrite, CID: 1, NSID: 1, SLBA: 0})
	dev.RingSQDoorbell(1)
	var readDone sim.Time
	eng.After(sim.Micro(1), func() {
		_ = qp.Submit(nvme.Command{Opcode: nvme.OpRead, CID: 2, NSID: 1, SLBA: uint64(ZSSD.Channels)})
		dev.RingSQDoorbell(1)
	})
	eng.Run()
	readDone = eng.Now()
	// Read waits for the write to finish AND pays interference.
	minEnd := ZSSD.Write4K + ZSSD.Read4K
	if readDone <= minEnd {
		t.Fatalf("no interference: end = %v, min = %v", readDone, minEnd)
	}
}

func TestUrgentReadSkipsInterference(t *testing.T) {
	run := func(urgent bool) sim.Time {
		eng, dev, qp, _ := newDev(t, noJitter(ZSSD), nil)
		_ = qp.Submit(nvme.Command{Opcode: nvme.OpWrite, CID: 1, NSID: 1, SLBA: 0})
		dev.RingSQDoorbell(1)
		eng.After(sim.Micro(1), func() {
			_ = qp.Submit(nvme.Command{Opcode: nvme.OpRead, CID: 2, NSID: 1, SLBA: uint64(ZSSD.Channels), Urgent: urgent})
			dev.RingSQDoorbell(1)
		})
		eng.Run()
		return eng.Now()
	}
	if u, n := run(true), run(false); u >= n {
		t.Fatalf("urgent %v not faster than normal %v", u, n)
	}
}

func TestInvalidNamespace(t *testing.T) {
	eng, dev, qp, done := newDev(t, noJitter(ZSSD), nil)
	_ = qp.Submit(nvme.Command{Opcode: nvme.OpRead, CID: 9, NSID: 42, SLBA: 0})
	dev.RingSQDoorbell(1)
	eng.Run()
	if len(*done) != 1 || (*done)[0].Status != nvme.StatusInvalidNS {
		t.Fatalf("completions: %+v", *done)
	}
}

func TestLBARangeError(t *testing.T) {
	eng, dev, qp, done := newDev(t, noJitter(ZSSD), nil)
	_ = qp.Submit(nvme.Command{Opcode: nvme.OpRead, CID: 9, NSID: 1, SLBA: 1 << 20})
	dev.RingSQDoorbell(1)
	eng.Run()
	if (*done)[0].Status != nvme.StatusLBARange {
		t.Fatalf("status = %#x", (*done)[0].Status)
	}
}

func TestDMACallbackRuns(t *testing.T) {
	var got []nvme.Command
	eng, dev, qp, _ := newDev(t, noJitter(ZSSD), func(c nvme.Command) { got = append(got, c) })
	_ = qp.Submit(nvme.Command{Opcode: nvme.OpRead, CID: 3, NSID: 1, SLBA: 77, PRP1: 0x1000})
	dev.RingSQDoorbell(1)
	eng.Run()
	if len(got) != 1 || got[0].SLBA != 77 || got[0].PRP1 != 0x1000 {
		t.Fatalf("dma calls: %+v", got)
	}
}

func TestFlush(t *testing.T) {
	eng, dev, qp, done := newDev(t, noJitter(ZSSD), nil)
	_ = qp.Submit(nvme.Command{Opcode: nvme.OpFlush, CID: 1, NSID: 1})
	dev.RingSQDoorbell(1)
	eng.Run()
	if len(*done) != 1 || !(*done)[0].OK() {
		t.Fatal("flush failed")
	}
	if dev.Stats().Flushes != 1 {
		t.Fatal("flush not counted")
	}
}

func TestDoubleAttachPanics(t *testing.T) {
	eng := sim.NewEngine()
	dev := New(eng, ZSSD, sim.NewRand(1), nil)
	qp := nvme.NewQueuePair(1, 4)
	dev.Attach(qp, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	dev.Attach(qp, nil)
}

func TestUnattachedDoorbellPanics(t *testing.T) {
	eng := sim.NewEngine()
	dev := New(eng, ZSSD, sim.NewRand(1), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	dev.RingSQDoorbell(5)
}

func TestJitterBounded(t *testing.T) {
	eng := sim.NewEngine()
	dev := New(eng, ZSSD, sim.NewRand(7), nil)
	for i := 0; i < 10000; i++ {
		v := dev.jitter(ZSSD.Read4K)
		if v < sim.Time(float64(ZSSD.Read4K)*0.7) {
			t.Fatalf("jitter below floor: %v", v)
		}
		if v > 2*ZSSD.Read4K {
			t.Fatalf("jitter way above base: %v", v)
		}
	}
}
