package ssd

import (
	"testing"

	"hwdp/internal/fault"
	"hwdp/internal/nvme"
	"hwdp/internal/sim"
)

func submitRead(t *testing.T, dev *Device, qp *nvme.QueuePair, cid uint16, lba uint64) {
	t.Helper()
	if err := qp.Submit(nvme.Command{Opcode: nvme.OpRead, CID: cid, NSID: 1, SLBA: lba}); err != nil {
		t.Fatal(err)
	}
	dev.RingSQDoorbell(qp.ID)
}

func TestInjectedTransientCompletesWithRetryableStatus(t *testing.T) {
	eng, dev, qp, done := newDev(t, noJitter(ZSSD), nil)
	dev.SetInjector(fault.NewInjector(sim.NewRand(1),
		fault.Rule{Kind: fault.Transient, Prob: 1}))
	submitRead(t, dev, qp, 1, 0)
	eng.Run()
	if len(*done) != 1 {
		t.Fatalf("completions: %d", len(*done))
	}
	cp := (*done)[0]
	if cp.Status != nvme.StatusCmdInterrupted {
		t.Fatalf("status = %s", nvme.StatusString(cp.Status))
	}
	if !nvme.StatusRetryable(cp.Status) {
		t.Fatal("transient status must be retryable")
	}
	if dev.Stats().InjTransient != 1 {
		t.Fatalf("stats = %+v", dev.Stats())
	}
	// The fault completes at normal service time — latency is unchanged.
	if eng.Now() != ZSSD.Read4K {
		t.Fatalf("latency = %v, want %v", eng.Now(), ZSSD.Read4K)
	}
}

func TestInjectedUECCDoesNotDMA(t *testing.T) {
	dmas := 0
	eng, dev, qp, done := newDev(t, noJitter(ZSSD), func(nvme.Command) { dmas++ })
	dev.SetInjector(fault.NewInjector(sim.NewRand(1),
		fault.Rule{Kind: fault.UECC, Prob: 1}))
	submitRead(t, dev, qp, 1, 0)
	eng.Run()
	if len(*done) != 1 || (*done)[0].Status != nvme.StatusUncorrectable {
		t.Fatalf("completions: %+v", *done)
	}
	if dmas != 0 {
		t.Fatal("UECC must not transfer data")
	}
	if dev.Stats().InjUECC != 1 {
		t.Fatalf("stats = %+v", dev.Stats())
	}
}

func TestInjectedUECCOnWriteIsWriteFault(t *testing.T) {
	eng, dev, qp, done := newDev(t, noJitter(ZSSD), nil)
	dev.SetInjector(fault.NewInjector(sim.NewRand(1),
		fault.Rule{Kind: fault.UECC, Prob: 1}))
	if err := qp.Submit(nvme.Command{Opcode: nvme.OpWrite, CID: 1, NSID: 1, SLBA: 0}); err != nil {
		t.Fatal(err)
	}
	dev.RingSQDoorbell(1)
	eng.Run()
	if len(*done) != 1 || (*done)[0].Status != nvme.StatusWriteFault {
		t.Fatalf("completions: %+v", *done)
	}
}

func TestInjectedDropNeverCompletes(t *testing.T) {
	dmas := 0
	eng, dev, qp, done := newDev(t, noJitter(ZSSD), func(nvme.Command) { dmas++ })
	dev.SetInjector(fault.NewInjector(sim.NewRand(1),
		fault.Rule{Kind: fault.Drop, Prob: 1}))
	submitRead(t, dev, qp, 1, 0)
	eng.Run()
	if len(*done) != 0 || dmas != 0 {
		t.Fatalf("dropped command completed: done=%d dmas=%d", len(*done), dmas)
	}
	if dev.Stats().InjDropped != 1 {
		t.Fatalf("stats = %+v", dev.Stats())
	}
	if dev.Inflight() != 0 {
		t.Fatal("drop must clear in-flight tracking when its service time elapses")
	}
}

func TestInjectedSpikeMultipliesLatency(t *testing.T) {
	eng, dev, qp, done := newDev(t, noJitter(ZSSD), nil)
	dev.SetInjector(fault.NewInjector(sim.NewRand(1),
		fault.Rule{Kind: fault.Spike, Prob: 1, SpikeFactor: 4}))
	submitRead(t, dev, qp, 1, 0)
	eng.Run()
	if len(*done) != 1 || !(*done)[0].OK() {
		t.Fatalf("completions: %+v", *done)
	}
	if want := 4 * ZSSD.Read4K; eng.Now() != want {
		t.Fatalf("spiked latency = %v, want %v", eng.Now(), want)
	}
	if dev.Stats().InjSpikes != 1 {
		t.Fatalf("stats = %+v", dev.Stats())
	}
}

func TestAbortCancelsPendingCommand(t *testing.T) {
	eng, dev, qp, done := newDev(t, noJitter(ZSSD), nil)
	submitRead(t, dev, qp, 7, 0)
	if dev.Inflight() != 1 {
		t.Fatalf("inflight = %d", dev.Inflight())
	}
	if !dev.Abort(1, 7) {
		t.Fatal("abort of pending command returned false")
	}
	if dev.Abort(1, 7) {
		t.Fatal("second abort found a ghost command")
	}
	eng.Run()
	if len(*done) != 0 {
		t.Fatalf("aborted command completed: %+v", *done)
	}
	if st := dev.Stats(); st.Aborts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAbortAfterCompletionReturnsFalse(t *testing.T) {
	eng, dev, qp, done := newDev(t, noJitter(ZSSD), nil)
	submitRead(t, dev, qp, 7, 0)
	eng.Run()
	if len(*done) != 1 {
		t.Fatalf("completions: %d", len(*done))
	}
	if dev.Abort(1, 7) {
		t.Fatal("abort of completed command returned true")
	}
	if st := dev.Stats(); st.Aborts != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAbortReleasesChannelTail(t *testing.T) {
	eng, dev, qp, done := newDev(t, noJitter(ZSSD), nil)
	dev.SetInjector(fault.NewInjector(sim.NewRand(1),
		fault.Rule{Kind: fault.Spike, Prob: 1, SpikeFactor: 100, MaxInjections: 1}))
	submitRead(t, dev, qp, 1, 0)
	// Abort the spiked command shortly after issue, then re-read the same
	// LBA (same channel): the retry must not queue behind reserved media
	// time belonging to the canceled command.
	eng.After(sim.Micro(1), func() {
		if !dev.Abort(1, 1) {
			t.Error("abort failed")
		}
		submitRead(t, dev, qp, 2, 0)
	})
	eng.Run()
	if len(*done) != 1 || (*done)[0].CID != 2 {
		t.Fatalf("completions: %+v", *done)
	}
	if want := sim.Micro(1) + ZSSD.Read4K; eng.Now() != want {
		t.Fatalf("retry finished at %v, want %v (channel not released)", eng.Now(), want)
	}
}

func TestAbortedWriteReleasesWriteInterference(t *testing.T) {
	eng, dev, qp, done := newDev(t, noJitter(ZSSD), nil)
	if err := qp.Submit(nvme.Command{Opcode: nvme.OpWrite, CID: 1, NSID: 1, SLBA: 0}); err != nil {
		t.Fatal(err)
	}
	dev.RingSQDoorbell(1)
	if !dev.Abort(1, 1) {
		t.Fatal("abort failed")
	}
	// A read on the same channel after the abort must see zero outstanding
	// writes — i.e. plain read latency, no interference penalty.
	submitRead(t, dev, qp, 2, 0)
	eng.Run()
	if len(*done) != 1 || !(*done)[0].OK() {
		t.Fatalf("completions: %+v", *done)
	}
	if eng.Now() != ZSSD.Read4K {
		t.Fatalf("read after aborted write took %v, want %v", eng.Now(), ZSSD.Read4K)
	}
}

func TestInjectionRespectsLBARangeAndQueue(t *testing.T) {
	eng, dev, qp, done := newDev(t, noJitter(ZSSD), nil)
	dev.SetInjector(fault.NewInjector(sim.NewRand(1),
		fault.Rule{Kind: fault.UECC, Prob: 1, LBAStart: 100, LBAEnd: 200}))
	submitRead(t, dev, qp, 1, 50)  // outside the faulty extent
	submitRead(t, dev, qp, 2, 150) // inside
	eng.Run()
	if len(*done) != 2 {
		t.Fatalf("completions: %d", len(*done))
	}
	for _, cp := range *done {
		switch cp.CID {
		case 1:
			if !cp.OK() {
				t.Fatalf("clean LBA failed: %s", nvme.StatusString(cp.Status))
			}
		case 2:
			if cp.Status != nvme.StatusUncorrectable {
				t.Fatalf("faulty LBA status = %s", nvme.StatusString(cp.Status))
			}
		}
	}
}
