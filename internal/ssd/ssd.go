// Package ssd models ultra-low-latency NVMe SSDs. A device drains attached
// submission queues when their doorbell rings, services commands on a set
// of internal channels (striped by LBA), applies write-induced read
// interference (reads behind flash-program operations get slower — the
// effect the paper cites for YCSB's lower gains), performs the DMA via a
// caller-supplied callback, and posts completions.
//
// Three profiles reproduce Figure 17's device times: Samsung Z-SSD
// (10.9 µs 4 KiB read), Intel Optane SSD (6.5 µs) and Optane DC PMM in
// App-direct mode used as storage (2.1 µs).
package ssd

import (
	"fmt"

	"hwdp/internal/nvme"
	"hwdp/internal/sim"
)

// Profile is a device latency/parallelism model.
type Profile struct {
	Name string
	// Read4K is the end-to-end device time for a 4 KiB read at queue
	// depth 1 (SQ doorbell write to CQ entry write, as measured in the
	// paper's methodology).
	Read4K sim.Time
	// Write4K is the device time for a 4 KiB write (buffered program).
	Write4K sim.Time
	// Channels is the internal parallelism: commands on different channels
	// overlap fully.
	Channels int
	// JitterFrac is the relative stddev of the service time.
	JitterFrac float64
	// WriteInterference is the fractional read-latency penalty per
	// outstanding write on the same channel.
	WriteInterference float64
}

// Device profiles used throughout the evaluation.
var (
	ZSSD = Profile{
		Name: "Z-SSD", Read4K: sim.Micro(10.9), Write4K: sim.Micro(9.0),
		Channels: 8, JitterFrac: 0.03, WriteInterference: 0.55,
	}
	OptaneSSD = Profile{
		Name: "Optane-SSD", Read4K: sim.Micro(6.5), Write4K: sim.Micro(6.0),
		Channels: 7, JitterFrac: 0.02, WriteInterference: 0.35,
	}
	OptaneDCPMM = Profile{
		Name: "Optane-DC-PMM", Read4K: sim.Micro(2.1), Write4K: sim.Micro(2.3),
		Channels: 6, JitterFrac: 0.01, WriteInterference: 0.20,
	}
)

// DMAFunc performs the data transfer for a command once the media access
// completes: for reads it deposits the block into the frame addressed by
// PRP1. It runs at completion time in virtual time order.
type DMAFunc func(cmd nvme.Command)

// NotifyFunc delivers a completion to the host side of a queue pair: an
// interrupt for OS-managed queues, a memory-write snoop for the SMU queue.
type NotifyFunc func(cp nvme.Completion)

type attachment struct {
	qp     *nvme.QueuePair
	notify NotifyFunc
}

type channel struct {
	freeAt            sim.Time
	outstandingWrites int
}

// Stats aggregates device-side counters.
type Stats struct {
	Reads, Writes, Flushes uint64
	ReadLatencySum         sim.Time
	QueueWaitSum           sim.Time
}

// Device is one simulated NVMe SSD.
type Device struct {
	eng      *sim.Engine
	prof     Profile
	rng      *sim.Rand
	ns       map[uint32]nvme.Namespace
	attached map[uint16]*attachment
	chans    []channel
	dma      DMAFunc
	stats    Stats
}

// New creates a device. dma may be nil (no data movement, timing only).
func New(eng *sim.Engine, prof Profile, rng *sim.Rand, dma DMAFunc) *Device {
	if prof.Channels <= 0 {
		panic("ssd: profile needs at least one channel")
	}
	return &Device{
		eng:      eng,
		prof:     prof,
		rng:      rng,
		ns:       make(map[uint32]nvme.Namespace),
		attached: make(map[uint16]*attachment),
		chans:    make([]channel, prof.Channels),
		dma:      dma,
	}
}

// Profile returns the device's latency profile.
func (d *Device) Profile() Profile { return d.prof }

// Stats returns a copy of the device counters.
func (d *Device) Stats() Stats { return d.stats }

// AddNamespace registers a namespace.
func (d *Device) AddNamespace(ns nvme.Namespace) { d.ns[ns.ID] = ns }

// Attach registers a queue pair and its completion delivery path.
func (d *Device) Attach(qp *nvme.QueuePair, notify NotifyFunc) {
	if _, dup := d.attached[qp.ID]; dup {
		panic(fmt.Sprintf("ssd: queue %d attached twice", qp.ID))
	}
	d.attached[qp.ID] = &attachment{qp: qp, notify: notify}
}

// RingSQDoorbell tells the device that the host advanced the SQ tail of the
// given queue. The device drains all pending entries, scheduling each on an
// internal channel.
func (d *Device) RingSQDoorbell(qid uint16) {
	at, ok := d.attached[qid]
	if !ok {
		panic(fmt.Sprintf("ssd: doorbell for unattached queue %d", qid))
	}
	for {
		cmd, ok := at.qp.PopSQ()
		if !ok {
			return
		}
		d.service(at, cmd)
	}
}

func (d *Device) service(at *attachment, cmd nvme.Command) {
	now := d.eng.Now()
	status := nvme.StatusSuccess
	if ns, ok := d.ns[cmd.NSID]; !ok {
		status = nvme.StatusInvalidNS
	} else if cmd.Opcode != nvme.OpFlush && cmd.SLBA+uint64(cmd.Blocks()) > ns.Blocks {
		status = nvme.StatusLBARange
	}
	if status != nvme.StatusSuccess {
		// Errors complete quickly without touching media.
		d.eng.After(sim.Nano(500), func() { d.complete(at, cmd, status) })
		return
	}

	ch := &d.chans[int(cmd.SLBA)%len(d.chans)]
	var svc sim.Time
	switch cmd.Opcode {
	case nvme.OpRead:
		d.stats.Reads++
		svc = d.jitter(d.prof.Read4K) * sim.Time(cmd.Blocks())
		if !cmd.Urgent && ch.outstandingWrites > 0 {
			// Reads queued behind program operations on the same channel.
			svc += sim.Time(float64(d.prof.Read4K) * d.prof.WriteInterference * float64(ch.outstandingWrites))
		}
	case nvme.OpWrite:
		d.stats.Writes++
		svc = d.jitter(d.prof.Write4K) * sim.Time(cmd.Blocks())
		ch.outstandingWrites++
	case nvme.OpFlush:
		d.stats.Flushes++
		svc = d.jitter(d.prof.Write4K / 2)
	}

	start := now
	if ch.freeAt > start {
		d.stats.QueueWaitSum += ch.freeAt - start
		start = ch.freeAt
	}
	done := start + svc
	ch.freeAt = done
	if cmd.Opcode == nvme.OpRead {
		d.stats.ReadLatencySum += done - now
	}
	d.eng.At(done, func() {
		if cmd.Opcode == nvme.OpWrite {
			ch.outstandingWrites--
		}
		if d.dma != nil {
			d.dma(cmd)
		}
		d.complete(at, cmd, nvme.StatusSuccess)
	})
}

func (d *Device) complete(at *attachment, cmd nvme.Command, status uint16) {
	at.qp.PostCompletion(nvme.Completion{CID: cmd.CID, Status: status})
	if at.notify != nil {
		at.notify(nvme.Completion{CID: cmd.CID, SQID: at.qp.ID, Status: status})
	}
}

func (d *Device) jitter(base sim.Time) sim.Time {
	if d.prof.JitterFrac == 0 || d.rng == nil {
		return base
	}
	v := d.rng.Norm(float64(base), float64(base)*d.prof.JitterFrac)
	min := float64(base) * 0.7
	if v < min {
		v = min
	}
	return sim.Time(v)
}
