// Package ssd models ultra-low-latency NVMe SSDs. A device drains attached
// submission queues when their doorbell rings, services commands on a set
// of internal channels (striped by LBA), applies write-induced read
// interference (reads behind flash-program operations get slower — the
// effect the paper cites for YCSB's lower gains), performs the DMA via a
// caller-supplied callback, and posts completions.
//
// Three profiles reproduce Figure 17's device times: Samsung Z-SSD
// (10.9 µs 4 KiB read), Intel Optane SSD (6.5 µs) and Optane DC PMM in
// App-direct mode used as storage (2.1 µs).
package ssd

import (
	"fmt"

	"hwdp/internal/fault"
	"hwdp/internal/nvme"
	"hwdp/internal/sim"
	"hwdp/internal/trace"
)

// Profile is a device latency/parallelism model.
type Profile struct {
	Name string
	// Read4K is the end-to-end device time for a 4 KiB read at queue
	// depth 1 (SQ doorbell write to CQ entry write, as measured in the
	// paper's methodology).
	Read4K sim.Time
	// Write4K is the device time for a 4 KiB write (buffered program).
	Write4K sim.Time
	// Channels is the internal parallelism: commands on different channels
	// overlap fully.
	Channels int
	// JitterFrac is the relative stddev of the service time.
	JitterFrac float64
	// WriteInterference is the fractional read-latency penalty per
	// outstanding write on the same channel.
	WriteInterference float64
}

// Device profiles used throughout the evaluation.
var (
	ZSSD = Profile{
		Name: "Z-SSD", Read4K: sim.Micro(10.9), Write4K: sim.Micro(9.0),
		Channels: 8, JitterFrac: 0.03, WriteInterference: 0.55,
	}
	OptaneSSD = Profile{
		Name: "Optane-SSD", Read4K: sim.Micro(6.5), Write4K: sim.Micro(6.0),
		Channels: 7, JitterFrac: 0.02, WriteInterference: 0.35,
	}
	OptaneDCPMM = Profile{
		Name: "Optane-DC-PMM", Read4K: sim.Micro(2.1), Write4K: sim.Micro(2.3),
		Channels: 6, JitterFrac: 0.01, WriteInterference: 0.20,
	}
)

// Backend is a pluggable media model behind the Device's queue/transport
// machinery. The default (nil) backend is the latency-profile model built
// into service: striped channels, jittered service times and
// write-interference. A non-nil backend (ssd/modeled's FTL + GC + plane
// model) takes over media timing entirely: the Device still owns queue
// attachment, fault injection, DMA, aborts and completion delivery, and
// asks the backend only when each command's media work starts and ends.
//
// Backends are plain virtual-time bookkeeping: Admit is called in event
// order on the device's engine, must not schedule events or touch other
// lanes, and must be deterministic for a fixed construction seed — that is
// what keeps modeled runs byte-identical across -lanes counts.
type Backend interface {
	// Admit commits the media schedule for one command at submission time
	// and returns when its device-internal queueing ends and when its
	// media work (including any data transfer) completes. spike is the
	// fault injector's service-time multiplier (1 when clean).
	Admit(now sim.Time, cmd nvme.Command, spike float64) Admission
	// MinLatency lower-bounds Admission.Done - now over every possible
	// command: the Device folds it into SendFloor so lane scheduling stays
	// sound with the backend swapped in.
	MinLatency() sim.Time
}

// Admission is a Backend's scheduling decision for one command.
type Admission struct {
	// Start is when device-internal queueing (plane waits, buffer stalls,
	// mapping fetches) ends and media service begins.
	Start sim.Time
	// Done is the media completion time: the Device runs DMA and posts
	// the completion then.
	Done sim.Time
	// Spans carries the backend's per-phase trace attribution for traced
	// commands (nil when the command has no trace context). The slice is
	// only valid until the next Admit call — the Device copies it into
	// the trace immediately.
	Spans []BackendSpan
}

// BackendSpan is one labeled interval of a command's device-internal life,
// recorded into the miss trace under trace.LayerSSD.
type BackendSpan struct {
	Label      string
	Start, End sim.Time
}

// DMAFunc performs the data transfer for a command once the media access
// completes: for reads it deposits the block into the frame addressed by
// PRP1. It runs at completion time in virtual time order.
type DMAFunc func(cmd nvme.Command)

// NotifyFunc delivers a completion to the host side of a queue pair: an
// interrupt for OS-managed queues, a memory-write snoop for the SMU queue.
type NotifyFunc func(cp nvme.Completion)

type attachment struct {
	qp     *nvme.QueuePair
	notify NotifyFunc
	// home and irq are set by AttachLane: home is the engine owning the
	// host side of the pair (queue rings, DMA targets, notify state), and
	// irq is the completion wire latency (CQ write plus interrupt/snoop
	// delivery). A nil home marks a legacy same-engine attachment driven
	// by RingSQDoorbell.
	home *sim.Engine
	irq  sim.Time
}

// evented reports whether the attachment uses the evented transport.
func (at *attachment) evented() bool { return at.home != nil }

type channel struct {
	freeAt            sim.Time
	outstandingWrites int
}

// Stats aggregates device-side counters. Latency accounting is split into
// device-internal queueing (QueueWaitSum: channel/plane waits, buffer
// stalls, GC stalls — time a command spends admitted but not being
// serviced) and media occupancy (MediaBusySum: the service time itself),
// so the profile and modeled backends report comparable breakdowns.
// ReadLatencySum remains the end-to-end sum (queueing + media) for reads.
type Stats struct {
	Reads, Writes, Flushes uint64
	ReadLatencySum         sim.Time
	QueueWaitSum           sim.Time
	MediaBusySum           sim.Time
	// Fault-injection outcomes, counted at the device boundary.
	InjTransient uint64 // completions forced to a retryable status
	InjUECC      uint64 // completions forced to an unrecoverable media status
	InjDropped   uint64 // commands lost inside the device (no completion)
	InjSpikes    uint64 // commands with multiplied service time
	Aborts       uint64 // host aborts that canceled an in-flight command
}

// flightKey identifies one in-flight command for abort lookups.
type flightKey struct {
	qid uint16
	cid uint16
}

// flight is the device-side state of one scheduled command: the completion
// event plus everything the completion (or an abort) needs to run the
// channel bookkeeping exactly once. Flights are pooled and recycled, so a
// steady read stream allocates no per-command device state.
type flight struct {
	ev      *sim.Event
	at      *attachment
	cmd     nvme.Command
	dec     fault.Decision
	ch      *channel
	isWrite bool
	shipped bool     // lane mode: completion already sent at service time
	done    sim.Time // scheduled media-completion time
	key     flightKey
}

// wireMsg is one host<->device transport crossing: a command riding the
// doorbell wire toward the device, or a completion riding the IRQ/snoop
// wire home. Messages are pooled on the same-engine path (lanes <= 1) so
// the steady-state miss path stays allocation-free; a true cross-lane
// crossing allocates one message per I/O, released to the garbage
// collector on the far side (a pool cannot be shared race-free between
// lanes, and an I/O is microseconds of virtual time anyway).
type wireMsg struct {
	at     *attachment
	cmd    nvme.Command
	status uint16
	pooled bool
}

// Device is one simulated NVMe SSD.
type Device struct {
	eng       *sim.Engine
	prof      Profile
	rng       *sim.Rand
	ns        map[uint32]nvme.Namespace
	attached  map[uint16]*attachment
	chans     []channel
	dma       DMAFunc
	backend   Backend
	inj       *fault.Injector
	inflight  map[flightKey]*flight
	pool      []*flight
	msgPool   []*wireMsg
	finishFn  func(any) // pre-bound media-completion callback
	serviceFn func(any) // pre-bound doorbell-wire delivery callback
	deliverFn func(any) // pre-bound completion-wire delivery callback
	stats     Stats
}

// New creates a device. dma may be nil (no data movement, timing only).
func New(eng *sim.Engine, prof Profile, rng *sim.Rand, dma DMAFunc) *Device {
	if prof.Channels <= 0 {
		panic("ssd: profile needs at least one channel")
	}
	d := &Device{
		eng:      eng,
		prof:     prof,
		rng:      rng,
		ns:       make(map[uint32]nvme.Namespace),
		attached: make(map[uint16]*attachment),
		chans:    make([]channel, prof.Channels),
		dma:      dma,
		inflight: make(map[flightKey]*flight),
	}
	d.finishFn = func(a any) { d.finish(a.(*flight)) }
	d.serviceFn = func(a any) {
		m := a.(*wireMsg)
		at, cmd := m.at, m.cmd
		if m.pooled {
			d.putMsg(m)
		}
		d.service(at, cmd)
	}
	d.deliverFn = func(a any) { d.deliverHome(a.(*wireMsg)) }
	return d
}

// getMsg takes a transport message, pooled only for a same-engine
// attachment (see wireMsg).
//
//hwdp:pool acquire wiremsg
func (d *Device) getMsg(at *attachment) *wireMsg {
	if at.home != d.eng {
		return &wireMsg{}
	}
	if n := len(d.msgPool); n > 0 {
		m := d.msgPool[n-1]
		d.msgPool[n-1] = nil
		d.msgPool = d.msgPool[:n-1]
		m.pooled = true
		return m
	}
	return &wireMsg{pooled: true}
}

// putMsg clears a pooled message and returns it to the pool.
//
//hwdp:pool release wiremsg
func (d *Device) putMsg(m *wireMsg) {
	*m = wireMsg{}
	d.msgPool = append(d.msgPool, m)
}

// getFlight takes a pooled flight record.
//
//hwdp:pool acquire flight
func (d *Device) getFlight() *flight {
	if n := len(d.pool); n > 0 {
		fl := d.pool[n-1]
		d.pool[n-1] = nil
		d.pool = d.pool[:n-1]
		return fl
	}
	return &flight{}
}

// putFlight clears a flight and returns it to the pool.
//
//hwdp:pool release flight
func (d *Device) putFlight(fl *flight) {
	*fl = flight{}
	d.pool = append(d.pool, fl)
}

// SetBackend swaps the media model (see Backend). It must be called
// before any traffic reaches the device; nil restores the built-in
// latency-profile model.
func (d *Device) SetBackend(b Backend) { d.backend = b }

// Backend returns the attached media backend (nil for the built-in
// latency-profile model).
func (d *Device) Backend() Backend { return d.backend }

// SetInjector attaches a fault injector consulted once per media command.
// The injector must own a PRNG stream forked from the run seed so that
// enabling faults never perturbs the device's own jitter stream.
func (d *Device) SetInjector(in *fault.Injector) { d.inj = in }

// Injector returns the attached injector (nil when fault-free).
func (d *Device) Injector() *fault.Injector { return d.inj }

// Profile returns the device's latency profile.
func (d *Device) Profile() Profile { return d.prof }

// Stats returns a copy of the device counters.
func (d *Device) Stats() Stats { return d.stats }

// AddNamespace registers a namespace.
func (d *Device) AddNamespace(ns nvme.Namespace) { d.ns[ns.ID] = ns }

// Attach registers a queue pair and its completion delivery path on the
// legacy same-engine transport: the host rings RingSQDoorbell synchronously
// and notify runs inline at media-completion time. System wiring uses
// AttachLane instead; Attach remains for unit tests that poke the device
// directly.
func (d *Device) Attach(qp *nvme.QueuePair, notify NotifyFunc) {
	if _, dup := d.attached[qp.ID]; dup {
		panic(fmt.Sprintf("ssd: queue %d attached twice", qp.ID))
	}
	d.attached[qp.ID] = &attachment{qp: qp, notify: notify}
}

// AttachLane registers a queue pair on the evented transport: the host
// submits commands with Deliver (each crossing the doorbell wire as an
// event), and completions cross back after irq — the CQ write plus
// interrupt (OS queues) or memory-snoop handling (the SMU queue) — with
// the CQ post, the DMA, and notify all executing on home, the engine that
// owns the host side of the pair. home may be the device's own engine
// (lanes <= 1, the default system wiring) or another lane of the same
// sim.Group; either way the virtual-time behavior is identical, which is
// what keeps -lanes N output byte-identical to -lanes 1.
func (d *Device) AttachLane(qp *nvme.QueuePair, home *sim.Engine, irq sim.Time, notify NotifyFunc) {
	if home == nil {
		panic("ssd: AttachLane needs the host-side engine")
	}
	if _, dup := d.attached[qp.ID]; dup {
		panic(fmt.Sprintf("ssd: queue %d attached twice", qp.ID))
	}
	if irq < 0 {
		irq = 0
	}
	d.attached[qp.ID] = &attachment{qp: qp, notify: notify, home: home, irq: irq}
}

// RejectLatency is the device-side handling time of a command rejected
// without touching media (bad namespace or LBA range). It doubles as part
// of the device's cross-lane send floor, so profiles must keep the
// jittered media floor (0.7x the cheapest media op) above it — the
// group's lookahead-violation panic enforces that invariant at run time.
const RejectLatency = 500 * sim.Nanosecond

// SendFloor returns a conservative lower bound on the delay of every
// cross-lane send this device makes toward a host attached with at most
// minIRQ wire latency: the cheaper of a rejection and the jittered floor
// of the cheapest media operation, plus the wire. Core wiring feeds it to
// Engine.SetLookahead for the device's lane.
func (d *Device) SendFloor(minIRQ sim.Time) sim.Time {
	var m sim.Time
	if d.backend != nil {
		m = d.backend.MinLatency()
	} else {
		m = d.prof.Read4K
		if d.prof.Write4K < m {
			m = d.prof.Write4K
		}
		if h := d.prof.Write4K / 2; h < m {
			m = h
		}
		m = m * 7 / 10 // the jitter clamp in jitter()
	}
	if RejectLatency < m {
		m = RejectLatency
	}
	if minIRQ < 0 {
		minIRQ = 0
	}
	return m + minIRQ
}

// Deliver carries one host-submitted command across the doorbell wire to
// the device: service begins wire later. It must be called from the home
// engine of an AttachLane attachment (the host side pops its own SQ at
// ring time — the rings are wholly host-owned on the evented transport,
// and the wire message carries the command).
//
//hwdp:hotpath
func (d *Device) Deliver(qid uint16, cmd nvme.Command, wire sim.Time) {
	at, ok := d.attached[qid]
	if !ok {
		panic(fmt.Sprintf("ssd: delivery for unattached queue %d", qid))
	}
	if !at.evented() {
		panic(fmt.Sprintf("ssd: Deliver on queue %d needs AttachLane", qid))
	}
	m := d.getMsg(at)
	m.at, m.cmd = at, cmd
	at.home.SendArg(d.eng, wire, d.serviceFn, m)
}

// RingSQDoorbell tells the device that the host advanced the SQ tail of the
// given queue. The device drains all pending entries, scheduling each on an
// internal channel.
func (d *Device) RingSQDoorbell(qid uint16) {
	at, ok := d.attached[qid]
	if !ok {
		panic(fmt.Sprintf("ssd: doorbell for unattached queue %d", qid))
	}
	for {
		cmd, ok := at.qp.PopSQ()
		if !ok {
			return
		}
		d.service(at, cmd)
	}
}

//hwdp:hotpath
func (d *Device) service(at *attachment, cmd nvme.Command) {
	now := d.eng.Now()
	status := nvme.StatusSuccess
	if ns, ok := d.ns[cmd.NSID]; !ok {
		status = nvme.StatusInvalidNS
	} else if cmd.Opcode != nvme.OpFlush && cmd.SLBA+uint64(cmd.Blocks()) > ns.Blocks {
		status = nvme.StatusLBARange
	}
	if status != nvme.StatusSuccess {
		// Errors complete quickly without touching media.
		cmd.Trace.Mark(trace.LayerSSD, "rejected", now)
		if at.evented() && at.home != d.eng {
			// Cross-lane: ship the rejection directly so the send delay is
			// RejectLatency+irq, which SendFloor guarantees is above the
			// lane's declared lookahead (a Post-then-send two-step would
			// cross with only the irq delay and trip the violation check).
			m := d.getMsg(at)
			m.at, m.cmd, m.status = at, cmd, status
			d.eng.SendArg(at.home, RejectLatency+at.irq, d.deliverFn, m)
			return
		}
		//hwdp:ignore all command rejections only happen on malformed/out-of-range submissions, off the steady-state path
		d.eng.Post(RejectLatency, func() { d.complete(at, cmd, status) })
		return
	}

	var ch *channel
	var start, done sim.Time
	var dec fault.Decision
	if d.backend != nil {
		// Media timing is the backend's: the profile's channels, jitter
		// and write-interference are all subsumed by its own resource
		// model. Fault spikes multiply the backend's service times.
		switch cmd.Opcode {
		case nvme.OpRead:
			d.stats.Reads++
		case nvme.OpWrite:
			d.stats.Writes++
		case nvme.OpFlush:
			d.stats.Flushes++
		}
		spike := 1.0
		if d.inj != nil {
			dec = d.inj.Decide(cmd.Opcode == nvme.OpRead, cmd.SLBA, at.qp.ID)
			if dec.Kind == fault.Spike {
				d.stats.InjSpikes++
				spike = dec.SpikeFactor
			}
		}
		adm := d.backend.Admit(now, cmd, spike)
		start, done = adm.Start, adm.Done
		if start > now {
			d.stats.QueueWaitSum += start - now
		}
		d.stats.MediaBusySum += done - start
		if cmd.Opcode == nvme.OpRead {
			d.stats.ReadLatencySum += done - now
		}
		if cmd.Trace != nil {
			// The backend attributes its own phases (mapping fetches,
			// plane waits, GC stalls, media, bus transfer).
			for _, sp := range adm.Spans {
				cmd.Trace.AddSpan(trace.LayerSSD, sp.Label, sp.Start, sp.End)
			}
		}
	} else {
		ch = &d.chans[int(cmd.SLBA)%len(d.chans)]
		var svc sim.Time
		switch cmd.Opcode {
		case nvme.OpRead:
			d.stats.Reads++
			svc = d.jitter(d.prof.Read4K) * sim.Time(cmd.Blocks())
			if !cmd.Urgent && ch.outstandingWrites > 0 {
				// Reads queued behind program operations on the same channel.
				svc += sim.Time(float64(d.prof.Read4K) * d.prof.WriteInterference * float64(ch.outstandingWrites))
			}
		case nvme.OpWrite:
			d.stats.Writes++
			svc = d.jitter(d.prof.Write4K) * sim.Time(cmd.Blocks())
			ch.outstandingWrites++
		case nvme.OpFlush:
			d.stats.Flushes++
			svc = d.jitter(d.prof.Write4K / 2)
		}

		if d.inj != nil {
			dec = d.inj.Decide(cmd.Opcode == nvme.OpRead, cmd.SLBA, at.qp.ID)
			if dec.Kind == fault.Spike {
				d.stats.InjSpikes++
				svc = sim.Time(float64(svc) * dec.SpikeFactor)
			}
		}

		start = now
		if ch.freeAt > start {
			d.stats.QueueWaitSum += ch.freeAt - start
			start = ch.freeAt
		}
		done = start + svc
		ch.freeAt = done
		d.stats.MediaBusySum += svc
		if cmd.Opcode == nvme.OpRead {
			d.stats.ReadLatencySum += done - now
		}
		if cmd.Trace != nil {
			// Spans are recorded at schedule time (start and end are both
			// known): channel queue wait, then media occupancy.
			if start > now {
				cmd.Trace.AddSpan(trace.LayerSSD, "channel-queue-wait", now, start)
			}
			//hwdp:ignore hotalloc label built only for traced commands (single-miss experiments), never in steady state
			cmd.Trace.AddSpan(trace.LayerSSD, "media "+cmd.Opcode.String(), start, done)
		}
	}

	key := flightKey{qid: at.qp.ID, cid: cmd.CID}
	if _, dup := d.inflight[key]; dup {
		panic(fmt.Sprintf("ssd: duplicate in-flight CID %d on queue %d", cmd.CID, at.qp.ID))
	}
	fl := d.getFlight()
	fl.at, fl.cmd, fl.dec, fl.ch, fl.done, fl.key = at, cmd, dec, ch, done, key
	fl.isWrite = cmd.Opcode == nvme.OpWrite
	if at.evented() && at.home != d.eng {
		// True cross-lane attachment: the completion outcome (status, DMA
		// eligibility, done time) is fully decided right here, so ship it
		// now — the whole media time becomes conservative lookahead for
		// the lane scheduler instead of a last-picosecond crossing. finish
		// still runs device-side at done for the channel bookkeeping.
		// Same-engine attachments complete from finish instead (identical
		// delivery timestamp), which keeps Abort workable — core wiring
		// disarms abort-driven timeouts in lane mode.
		if status, deliverable := outcomeStatus(dec.Kind, cmd.Opcode); deliverable {
			m := d.getMsg(at)
			m.at, m.cmd, m.status = at, cmd, status
			d.eng.SendArg(at.home, done-now+at.irq, d.deliverFn, m)
		}
		fl.shipped = true
	}
	// Pooled handle: finish recycles fl (dropping fl.ev) when the event
	// fires, and Abort drops it right after Cancel, so the handle never
	// outlives the event.
	fl.ev = d.eng.AtArgPooled(done, d.finishFn, fl)
	d.inflight[key] = fl
}

// outcomeStatus maps a fault decision and opcode to the completion status
// the host will see; deliverable is false when the command dies inside the
// device without a completion (fault.Drop).
func outcomeStatus(kind fault.Kind, op nvme.Opcode) (status uint16, deliverable bool) {
	//hwdp:exhaustive
	switch kind {
	case fault.Drop:
		return 0, false
	case fault.Transient:
		return nvme.StatusCmdInterrupted, true
	case fault.UECC:
		if op == nvme.OpRead {
			return nvme.StatusUncorrectable, true
		}
		return nvme.StatusWriteFault, true
	case fault.None, fault.Spike:
		// A spike stretches service latency but the command completes
		// cleanly; None is no fault at all.
	}
	return nvme.StatusSuccess, true
}

// finish runs at a command's media-completion time: channel bookkeeping,
// injected-fault resolution, DMA, and the completion post.
//
//hwdp:hotpath
func (d *Device) finish(fl *flight) {
	delete(d.inflight, fl.key)
	if fl.isWrite && fl.ch != nil {
		// Backend flights carry no channel: interference lives in the
		// backend's own plane timelines.
		fl.ch.outstandingWrites--
	}
	at, cmd, done := fl.at, fl.cmd, fl.done
	kind := fl.dec.Kind
	shipped := fl.shipped
	d.putFlight(fl)
	if shipped {
		// Cross-lane attachment: the completion left at service time and
		// the DMA runs home-side at delivery; only the fault accounting
		// remains device-side.
		//hwdp:exhaustive
		switch kind {
		case fault.Drop:
			d.stats.InjDropped++
			cmd.Trace.Mark(trace.LayerSSD, "fault-dropped", done)
		case fault.Transient:
			d.stats.InjTransient++
			cmd.Trace.Mark(trace.LayerSSD, "fault-transient", done)
		case fault.UECC:
			d.stats.InjUECC++
			cmd.Trace.Mark(trace.LayerSSD, "fault-uecc", done)
		case fault.None, fault.Spike:
			// Clean (or merely slowed) completion: nothing to account.
		}
		return
	}
	//hwdp:exhaustive
	switch kind {
	case fault.Drop:
		// The command is lost inside the device: no DMA, no completion.
		// Only a host-side timeout (followed by Abort) recovers.
		d.stats.InjDropped++
		cmd.Trace.Mark(trace.LayerSSD, "fault-dropped", done)
		return
	case fault.Transient:
		d.stats.InjTransient++
		cmd.Trace.Mark(trace.LayerSSD, "fault-transient", done)
		d.complete(at, cmd, nvme.StatusCmdInterrupted)
		return
	case fault.UECC:
		d.stats.InjUECC++
		cmd.Trace.Mark(trace.LayerSSD, "fault-uecc", done)
		if cmd.Opcode == nvme.OpRead {
			d.complete(at, cmd, nvme.StatusUncorrectable)
		} else {
			d.complete(at, cmd, nvme.StatusWriteFault)
		}
		return
	case fault.None, fault.Spike:
		// Fall through to the normal DMA + success completion below.
	}
	if d.dma != nil && !at.evented() {
		// Evented attachments DMA home-side at wire-delivery time
		// (deliverHome); doing it here too would move the data twice.
		d.dma(cmd)
	}
	d.complete(at, cmd, nvme.StatusSuccess)
}

// Abort cancels an in-flight command the host has given up on (after a
// completion timeout). It returns true when the command was still pending
// and is now guaranteed never to DMA or complete; false means the command
// already finished (its completion and any DMA have already happened) or
// was never seen, and the host must treat the late completion, if any, as
// stale. Abort mirrors the NVMe admin Abort command but resolves instantly:
// the simulated window between "host decides to abort" and "device acks"
// folds into the host's own timeout delay.
func (d *Device) Abort(qid, cid uint16) bool {
	key := flightKey{qid: qid, cid: cid}
	fl, ok := d.inflight[key]
	if !ok {
		return false
	}
	if fl.shipped {
		// The completion is already on the cross-lane wire and cannot be
		// recalled. Core wiring disarms abort-driven timeouts in lane mode,
		// so reaching this means a model bug, not a timing race.
		panic(fmt.Sprintf("ssd: abort of shipped command CID %d on queue %d", cid, qid))
	}
	fl.ev.Cancel()
	delete(d.inflight, key)
	if fl.ch != nil {
		if fl.isWrite {
			fl.ch.outstandingWrites--
		}
		// An aborted command stops occupying its channel. Only the channel
		// tail can be reclaimed: once a later command queued behind this
		// one, the media time is already committed. (Backend flights have
		// no channel; the backend's timelines are already committed, which
		// matches the same-rule conservatism.)
		if fl.ch.freeAt == fl.done {
			if now := d.eng.Now(); now < fl.ch.freeAt {
				fl.ch.freeAt = now
			}
		}
	}
	fl.cmd.Trace.Mark(trace.LayerSSD, "aborted", d.eng.Now())
	d.putFlight(fl)
	d.stats.Aborts++
	return true
}

// Inflight returns the number of commands scheduled on media that have not
// yet completed or been aborted (invariant-checking hook for tests).
func (d *Device) Inflight() int { return len(d.inflight) }

func (d *Device) complete(at *attachment, cmd nvme.Command, status uint16) {
	if at.evented() {
		// Same-engine evented attachment: the completion crosses the
		// irq/snoop wire as an event. (True cross-lane attachments never
		// reach complete — their completions ship at service time, where the
		// full media latency backs the lane's declared lookahead.)
		m := d.getMsg(at)
		m.at, m.cmd, m.status = at, cmd, status
		d.eng.SendArg(at.home, at.irq, d.deliverFn, m)
		return
	}
	at.qp.PostCompletion(nvme.Completion{CID: cmd.CID, Status: status})
	if at.notify != nil {
		at.notify(nvme.Completion{CID: cmd.CID, SQID: at.qp.ID, Status: status})
	}
}

// deliverHome runs on the attachment's home engine when a completion
// finishes crossing the irq/snoop wire: DMA (successful commands only),
// CQ post, then host notification — the same order the legacy path uses,
// just relocated to the engine that owns the host-side state.
//
//hwdp:hotpath
func (d *Device) deliverHome(m *wireMsg) {
	at, cmd, status := m.at, m.cmd, m.status
	if m.pooled {
		d.putMsg(m)
	}
	if status == nvme.StatusSuccess && d.dma != nil {
		d.dma(cmd)
	}
	at.qp.PostCompletion(nvme.Completion{CID: cmd.CID, Status: status})
	if at.notify != nil {
		at.notify(nvme.Completion{CID: cmd.CID, SQID: at.qp.ID, Status: status})
	}
}

func (d *Device) jitter(base sim.Time) sim.Time {
	if d.prof.JitterFrac == 0 || d.rng == nil {
		return base
	}
	v := d.rng.Norm(float64(base), float64(base)*d.prof.JitterFrac)
	min := float64(base) * 0.7
	if v < min {
		v = min
	}
	return sim.Time(v)
}
