package figures

import (
	"fmt"
	"strings"

	"hwdp/internal/core"
	"hwdp/internal/kernel"
	"hwdp/internal/sim"
	"hwdp/internal/ssd"
	"hwdp/internal/workload"
)

// Fig11Result is Figure 11: (a) the OSDP-vs-HWDP before/after-device
// breakdown and (b) the HWDP single-miss hardware timeline.
type Fig11Result struct {
	OSDPBefore, OSDPAfter sim.Time
	HWDPBefore, HWDPAfter sim.Time
	BeforeReduction       sim.Time
	AfterReduction        sim.Time
	OSDPTotal, HWDPTotal  sim.Time // measured end-to-end single-fault latencies
	Timeline              []core.TracePhase
}

// Fig11 measures one fault under each scheme and captures the SMU phase
// timeline.
func Fig11(p Params) (*Fig11Result, error) {
	single := func(scheme kernel.Scheme) (sim.Time, *core.FaultTrace, *core.System, error) {
		cfg := core.DefaultConfig(scheme)
		cfg.Lanes = p.Lanes
		cfg.MemoryBytes = p.memoryBytes()
		cfg.DeviceJitter = false
		sys := cfg.Build()
		va, _, err := sys.MapFile("probe", 16, nil, sys.FastFlags())
		if err != nil {
			return 0, nil, nil, err
		}
		lat, tr := sys.MeasureSingleFault(sys.WorkloadThread(0), va)
		return lat, tr, sys, nil
	}
	osLat, _, osSys, err := single(kernel.OSDP)
	if err != nil {
		return nil, err
	}
	hwLat, tr, hwSys, err := single(kernel.HWDP)
	if err != nil {
		return nil, err
	}
	c := osSys.K.Config().Costs
	walk := osSys.MMU.WalkLatency
	tm := hwSys.SMU.Timing()
	r := &Fig11Result{
		OSDPBefore: walk + c.OSDPBeforeDevice(),
		OSDPAfter:  c.OSDPAfterDevice(),
		HWDPBefore: walk + tm.BeforeDevice(),
		HWDPAfter:  tm.AfterDevice(),
		OSDPTotal:  osLat,
		HWDPTotal:  hwLat,
		Timeline:   tr.Phases,
	}
	r.BeforeReduction = r.OSDPBefore - r.HWDPBefore
	r.AfterReduction = r.OSDPAfter - r.HWDPAfter
	return r, nil
}

// String renders the Fig11Result as the paper-style text table.
func (r *Fig11Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 11(a): single page-miss latency around device I/O\n")
	fmt.Fprintf(&b, "  scheme   before-device   after-device   total (measured)\n")
	fmt.Fprintf(&b, "  OSDP     %13v  %13v  %v\n", r.OSDPBefore, r.OSDPAfter, r.OSDPTotal)
	fmt.Fprintf(&b, "  HWDP     %13v  %13v  %v\n", r.HWDPBefore, r.HWDPAfter, r.HWDPTotal)
	fmt.Fprintf(&b, "  reduction: before %v (paper: 2.38us), after %v (paper: 6.16us)\n",
		r.BeforeReduction, r.AfterReduction)
	b.WriteString("Figure 11(b): HWDP single-miss hardware timeline\n")
	for _, ph := range r.Timeline {
		fmt.Fprintf(&b, "  %-28s %10v (%d cycles)\n", ph.Name, ph.Dur, ph.Dur.ToCycles())
	}
	return b.String()
}

// Fig12Row is one thread count of Figure 12.
type Fig12Row struct {
	Threads   int
	OSDP      sim.Time // mean FIO 4 KiB read latency
	HWDP      sim.Time
	Reduction float64
}

// Fig12Result is the FIO demand-paging latency sweep.
type Fig12Result struct{ Rows []Fig12Row }

// Fig12 runs FIO randread (mmap engine) at 1–8 threads under both schemes.
func Fig12(p Params) (*Fig12Result, error) {
	lat := func(scheme kernel.Scheme, threads int) (sim.Time, error) {
		sys := p.newSystem(scheme, ssd.ZSSD)
		fio, err := workload.SetupFIO(sys, "fio.dat", p.datasetPages(), sys.FastFlags())
		if err != nil {
			return 0, err
		}
		// Fig. 12's configuration: every access is a cold miss.
		fio.Cold = true
		rs := workload.Run(sys, threadSet(sys, threads), fio,
			workload.RunOptions{OpsPerThread: p.OpsPerThread, WarmupOps: p.WarmupOps})
		return workload.Merge(rs).MeanLatency(), nil
	}
	res := &Fig12Result{}
	for _, n := range []int{1, 2, 4, 8} {
		o, err := lat(kernel.OSDP, n)
		if err != nil {
			return nil, err
		}
		h, err := lat(kernel.HWDP, n)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig12Row{
			Threads: n, OSDP: o, HWDP: h,
			Reduction: 1 - float64(h)/float64(o),
		})
	}
	return res, nil
}

// String renders the Fig12Result as the paper-style text table.
func (r *Fig12Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 12: FIO mmap 4KB random-read latency (Z-SSD)\n")
	b.WriteString("  threads   OSDP         HWDP         reduction\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %7d   %-11v  %-11v  %5.1f%%\n",
			row.Threads, row.OSDP, row.HWDP, 100*row.Reduction)
	}
	b.WriteString("  (paper: -37.0% at 1 thread, -27.0% at 8 threads)\n")
	return b.String()
}

// Fig17Row is one device profile of Figure 17.
type Fig17Row struct {
	Device     string
	DeviceTime sim.Time
	SWOnly     sim.Time
	HWDP       sim.Time
	Reduction  float64 // HWDP vs SW-only
}

// Fig17Result compares the software-only implementation against full
// hardware support across device generations.
type Fig17Result struct{ Rows []Fig17Row }

// Fig17 measures single-fault latency for SW-only and HWDP on Z-SSD,
// Optane SSD and Optane DC PMM.
func Fig17(p Params) (*Fig17Result, error) {
	single := func(scheme kernel.Scheme, dev ssd.Profile) (sim.Time, error) {
		cfg := core.DefaultConfig(scheme)
		cfg.Lanes = p.Lanes
		cfg.MemoryBytes = p.memoryBytes()
		cfg.Device = dev
		cfg.DeviceJitter = false
		sys := cfg.Build()
		va, _, err := sys.MapFile("probe", 16, nil, sys.FastFlags())
		if err != nil {
			return 0, err
		}
		lat, _ := sys.MeasureSingleFault(sys.WorkloadThread(0), va)
		return lat, nil
	}
	res := &Fig17Result{}
	for _, dev := range []ssd.Profile{ssd.ZSSD, ssd.OptaneSSD, ssd.OptaneDCPMM} {
		sw, err := single(kernel.SWDP, dev)
		if err != nil {
			return nil, err
		}
		hw, err := single(kernel.HWDP, dev)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig17Row{
			Device: dev.Name, DeviceTime: dev.Read4K, SWOnly: sw, HWDP: hw,
			Reduction: 1 - float64(hw)/float64(sw),
		})
	}
	return res, nil
}

// String renders the Fig17Result as the paper-style text table.
func (r *Fig17Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 17: software-only vs hardware support, single-fault latency\n")
	b.WriteString("  device          device-time   SW-only      HWDP         HWDP vs SW\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-14s  %-11v  %-11v  %-11v  -%.0f%%\n",
			row.Device, row.DeviceTime, row.SWOnly, row.HWDP, 100*row.Reduction)
	}
	b.WriteString("  (paper: -14% on Z-SSD, -44% on Optane DC PMM)\n")
	return b.String()
}

// KpooldResult is the Section IV-D ablation: synchronous-refill OS faults
// with and without the kpoold background refill thread.
type KpooldResult struct {
	BouncesWithout uint64
	BouncesWith    uint64
	Reduction      float64
	Ops            uint64
}

// KpooldAblation measures how many hardware misses bounce to the OS for
// lack of free pages, with kpoold on vs off.
func KpooldAblation(p Params) (*KpooldResult, error) {
	run := func(disable bool) (uint64, uint64, error) {
		cfg := core.DefaultConfig(kernel.HWDP)
		cfg.Lanes = p.Lanes
		// The ablation needs the paper's scale relations: a free page queue
		// that is small relative to the reclaim watermarks (so refills are
		// never starved by kswapd) and a kpoold period comparable to the
		// queue's drain time at the offered miss rate. 32 MiB of memory
		// with a 256-entry queue and two FIO threads reproduces them.
		cfg.MemoryBytes = 32 << 20
		cfg.Seed = p.Seed
		cfg.FSBlocks = uint64(p.datasetPages())*4 + (1 << 16)
		cfg.Kernel.DisableKpoold = disable
		cfg.Kernel.KptedPeriod = 20 * sim.Millisecond
		cfg.FreeQueueDepth = 256
		cfg.Kernel.KpooldPeriod = 2750 * sim.Microsecond
		sys := cfg.Build()
		fio, err := workload.SetupFIO(sys, "fio.dat", p.datasetPages(), sys.FastFlags())
		if err != nil {
			return 0, 0, err
		}
		rs := workload.Run(sys, threadSet(sys, 2), fio,
			workload.RunOptions{OpsPerThread: p.OpsPerThread * 2})
		return sys.K.Stats().HWBounceFaults, workload.Merge(rs).Ops, nil
	}
	without, ops, err := run(true)
	if err != nil {
		return nil, err
	}
	with, _, err := run(false)
	if err != nil {
		return nil, err
	}
	r := &KpooldResult{BouncesWithout: without, BouncesWith: with, Ops: ops}
	if without > 0 {
		r.Reduction = 1 - float64(with)/float64(without)
	}
	return r, nil
}

// String renders the KpooldResult as the paper-style text table.
func (r *KpooldResult) String() string {
	return fmt.Sprintf("kpoold ablation (Section IV-D): OS-handled refill faults over %d ops\n"+
		"  without kpoold: %d   with kpoold: %d   reduction: %.1f%% (paper: 44.3-78.4%%)\n",
		r.Ops, r.BouncesWithout, r.BouncesWith, 100*r.Reduction)
}
