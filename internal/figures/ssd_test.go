package figures

import "testing"

// ssdTestParams shrinks the run so the regression test stays fast while
// the preconditioned drive still garbage-collects during measurement.
func ssdTestParams() Params {
	p := Quick()
	p.OpsPerThread = 1500
	p.WarmupOps = 600
	return p
}

// TestSSDSteadyStateDivergence is the issue's regression pin: the
// preconditioned modeled drive must show write amplification above 1 and
// a GC-driven p99.9 tail the profile backend cannot produce. Only the
// divergence DIRECTION is pinned — exact values may drift with model
// tuning, but a change that silently regresses the scenario to
// fresh-drive behavior (WA → 1, tail collapse, GC never firing) fails.
func TestSSDSteadyStateDivergence(t *testing.T) {
	res, err := AblationSSDSteady(ssdTestParams())
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]SSDSteadyRow{}
	for _, r := range res.Rows {
		rows[r.Backend] = r
	}
	profile, fresh, steady := rows["profile"], rows["modeled/fresh"], rows["modeled/steady"]
	if profile.Backend == "" || fresh.Backend == "" || steady.Backend == "" {
		t.Fatalf("missing rows in %+v", res.Rows)
	}
	if profile.WriteAmp != 1 || profile.GCRuns != 0 {
		t.Fatalf("profile backend reported FTL activity (WA=%.2f GC=%d) — it has no FTL",
			profile.WriteAmp, profile.GCRuns)
	}
	if steady.GCRuns == 0 {
		t.Fatal("steady-state drive never garbage-collected: preconditioning regressed to fresh-drive behavior")
	}
	if steady.WriteAmp <= 1.05 {
		t.Fatalf("steady-state write amplification %.3f, want > 1.05", steady.WriteAmp)
	}
	if steady.WriteAmp <= fresh.WriteAmp {
		t.Fatalf("steady WA %.3f not above fresh WA %.3f", steady.WriteAmp, fresh.WriteAmp)
	}
	if steady.P999 <= profile.P999 {
		t.Fatalf("steady p99.9 %v not above profile p99.9 %v: the GC tail spike is gone",
			steady.P999, profile.P999)
	}
	// The tail must diverge relative to the median too, so a uniformly
	// slower model can't fake the spike.
	steadyRatio := float64(steady.P999) / float64(steady.P50)
	profileRatio := float64(profile.P999) / float64(profile.P50)
	if steadyRatio <= profileRatio {
		t.Fatalf("steady p99.9/p50 ratio %.1f not above profile's %.1f: tail is not GC-shaped",
			steadyRatio, profileRatio)
	}
}

// TestGCTailAblationDirection pins the same direction on the GC-policy
// ablation: both victim policies must amplify writes and grow the tail
// relative to the GC-free profile baseline.
func TestGCTailAblationDirection(t *testing.T) {
	res, err := AblationGCTail(ssdTestParams())
	if err != nil {
		t.Fatal(err)
	}
	var profile GCTailRow
	for _, r := range res.Rows {
		if r.Config == "profile" {
			profile = r
		}
	}
	for _, r := range res.Rows {
		if r.Config == "profile" {
			continue
		}
		if r.WriteAmp <= 1 {
			t.Fatalf("%s: WA %.3f, want > 1 at steady state", r.Config, r.WriteAmp)
		}
		if r.P999 <= profile.P999 {
			t.Fatalf("%s: p99.9 %v not above profile's %v", r.Config, r.P999, profile.P999)
		}
	}
}

// TestFingerprintCoversSSDFields guards the sweep cache: two Params that
// differ only in the SSD-backend selection must fingerprint differently,
// or cached profile results would be served for modeled runs.
func TestFingerprintCoversSSDFields(t *testing.T) {
	base := Quick()
	for _, mutate := range []func(*Params){
		func(p *Params) { p.SSDBackend = "modeled" },
		func(p *Params) { p.SSDFill = 0.5 },
		func(p *Params) { p.SSDChurn = 3 },
	} {
		p := base
		mutate(&p)
		if Fingerprint(p) == Fingerprint(base) {
			t.Fatalf("fingerprint ignores an SSD field: %q", Fingerprint(p))
		}
	}
}
