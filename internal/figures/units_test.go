package figures

import (
	"strings"
	"testing"
)

// TestUnitsCoverAllOrder pins the unit decomposition to the -all
// sequence: tables first, then every figure in the usage order. The
// sweep scheduler emits results in this order, so this list is also the
// stdout contract of `hwdpbench -all`.
func TestUnitsCoverAllOrder(t *testing.T) {
	want := []string{
		"table/1", "table/2", "table/area",
		"fig/1", "fig/2", "fig/3", "fig/4",
		"fig/11", "fig/12",
		"fig/13/FIO", "fig/13/DBBench", "fig/13/YCSB-A", "fig/13/YCSB-B",
		"fig/13/YCSB-C", "fig/13/YCSB-D", "fig/13/YCSB-E", "fig/13/YCSB-F",
		"fig/14", "fig/15", "fig/16", "fig/17",
		"fig/kpoold", "fig/pmshr", "fig/devices", "fig/prefetch",
		"fig/ssd", "fig/gctail",
	}
	units := Units(Quick(), nil)
	if len(units) != len(want) {
		t.Fatalf("units = %d, want %d", len(units), len(want))
	}
	for i, u := range units {
		if u.Name != want[i] {
			t.Fatalf("unit %d = %s, want %s", i, u.Name, want[i])
		}
		if u.Run == nil || u.Kind == "" || u.Fingerprint == "" {
			t.Fatalf("unit %s incomplete: %+v", u.Name, u)
		}
	}
}

// TestUnitFingerprints verifies the cache-key inputs react to the
// parameters that change results: the seed (any unit) and the thread
// restriction (Fig. 13 only).
func TestUnitFingerprints(t *testing.T) {
	p := Quick()
	seeded := p
	seeded.Seed = 7
	base := Units(p, nil)
	reseeded := Units(seeded, nil)
	for i := range base {
		if base[i].Fingerprint == "static" {
			if reseeded[i].Fingerprint != "static" {
				t.Fatalf("%s: static unit became seed-dependent", base[i].Name)
			}
			continue
		}
		if base[i].Fingerprint == reseeded[i].Fingerprint {
			t.Fatalf("%s: fingerprint ignores the seed", base[i].Name)
		}
	}
	threaded := Units(p, []int{1, 4})
	for i := range base {
		changed := base[i].Fingerprint != threaded[i].Fingerprint
		shard := strings.HasPrefix(base[i].Name, "fig/13/")
		if shard && !changed {
			t.Fatalf("%s: fingerprint ignores the thread restriction", base[i].Name)
		}
		if !shard && changed {
			t.Fatalf("%s: fingerprint depends on threads but the experiment does not", base[i].Name)
		}
	}
	// Shards of the same configuration must still key separately.
	seen := map[string]bool{}
	for _, u := range base {
		if strings.HasPrefix(u.Name, "fig/13/") {
			if seen[u.Fingerprint] {
				t.Fatalf("%s: fingerprint collides with another shard", u.Name)
			}
			seen[u.Fingerprint] = true
		}
	}
}

// TestFig13ShardAssembly verifies the per-workload shards concatenate to
// exactly the monolithic Fig13 rendering plus the separator newline —
// the property that lets the scheduler parallelize inside the figure
// without changing a byte of `-all` output. Small op counts: the cells'
// values only need to match between the two paths, not mean anything.
func TestFig13ShardAssembly(t *testing.T) {
	p := Quick()
	p.OpsPerThread, p.WarmupOps = 400, 150
	threads := []int{1}
	direct, err := Fig13(p, threads)
	if err != nil {
		t.Fatal(err)
	}
	var got strings.Builder
	for _, u := range Units(p, threads) {
		if !strings.HasPrefix(u.Name, "fig/13/") {
			continue
		}
		out, err := u.Run()
		if err != nil {
			t.Fatalf("%s: %v", u.Name, err)
		}
		got.WriteString(out)
	}
	if want := direct.String() + "\n"; got.String() != want {
		t.Fatalf("shard concatenation diverges from Fig13:\n got: %q\nwant: %q",
			got.String(), want)
	}
}

// TestUnitRunMatchesDirectCall spot-checks that a unit's output is the
// direct function's rendering plus the separator newline.
func TestUnitRunMatchesDirectCall(t *testing.T) {
	for _, u := range Units(Quick(), nil) {
		if u.Name != "table/1" {
			continue
		}
		out, err := u.Run()
		if err != nil {
			t.Fatal(err)
		}
		if out != TableI()+"\n" {
			t.Fatalf("unit output diverges from TableI():\n%q", out)
		}
		if !strings.HasSuffix(out, "\n\n") {
			t.Fatalf("unit output missing the blank-line separator: %q", out)
		}
		return
	}
	t.Fatal("table/1 unit not found")
}
