package figures

import (
	"fmt"
	"strings"

	"hwdp/internal/cpu"
	"hwdp/internal/kernel"
	"hwdp/internal/sim"
	"hwdp/internal/ssd"
	"hwdp/internal/workload"
)

// Fig13Cell is one (workload, threads) point.
type Fig13Cell struct {
	Workload string
	Threads  int
	OSDP     float64 // ops/s
	HWDP     float64
	Gain     float64 // HWDP/OSDP - 1
}

// Fig13Result is the throughput-improvement matrix.
type Fig13Result struct {
	Cells []Fig13Cell
}

// Fig13Workloads is the workload set of Figure 13.
var Fig13Workloads = []string{"FIO", "DBBench", "YCSB-A", "YCSB-B", "YCSB-C", "YCSB-D", "YCSB-E", "YCSB-F"}

// fig13Threads resolves the -threads restriction: nil means the paper's
// full 1..8 sweep.
func fig13Threads(threads []int) []int {
	if len(threads) == 0 {
		return []int{1, 2, 4, 8}
	}
	return threads
}

// Fig13 sweeps workloads × thread counts × schemes and reports HWDP's
// throughput gain over OSDP.
func Fig13(p Params, threads []int) (*Fig13Result, error) {
	res := &Fig13Result{}
	for _, name := range Fig13Workloads {
		cells, err := fig13Workload(p, name, fig13Threads(threads))
		if err != nil {
			return nil, err
		}
		res.Cells = append(res.Cells, cells...)
	}
	return res, nil
}

// fig13Workload runs one workload's thread sweep under both schemes.
// Each cell builds its own System from p, so shards share no state: the
// sweep scheduler runs one unit per workload in parallel and concatenates
// the row blocks back into the exact sequential table.
func fig13Workload(p Params, name string, threads []int) ([]Fig13Cell, error) {
	run := func(name string, scheme kernel.Scheme, n int) (float64, error) {
		sys := p.newSystem(scheme, ssd.ZSSD)
		opt := workload.RunOptions{OpsPerThread: p.OpsPerThread, WarmupOps: p.WarmupOps}
		var w workload.Workload
		switch name {
		case "FIO":
			fio, err := workload.SetupFIO(sys, "fio.dat", p.datasetPages(), sys.FastFlags())
			if err != nil {
				return 0, err
			}
			w = fio
		case "DBBench":
			st, err := buildKV(sys, p)
			if err != nil {
				return 0, err
			}
			w = workload.NewDBBenchReadRandom(sys, st)
		default: // "YCSB-X"
			st, err := buildKV(sys, p)
			if err != nil {
				return 0, err
			}
			y, err := workload.NewYCSB(sys, st, name[len(name)-1])
			if err != nil {
				return 0, err
			}
			if name == "YCSB-E" {
				opt.OpsPerThread /= 4 // scans touch many records per op
			}
			w = y
		}
		rs := workload.Run(sys, threadSet(sys, n), w, opt)
		m := workload.Merge(rs)
		if m.Errors > 0 {
			return 0, fmt.Errorf("figures: %d corrupt reads in %s", m.Errors, name)
		}
		return m.Throughput(), nil
	}
	var cells []Fig13Cell
	for _, n := range threads {
		o, err := run(name, kernel.OSDP, n)
		if err != nil {
			return nil, err
		}
		h, err := run(name, kernel.HWDP, n)
		if err != nil {
			return nil, err
		}
		cells = append(cells, Fig13Cell{
			Workload: name, Threads: n, OSDP: o, HWDP: h, Gain: h/o - 1,
		})
	}
	return cells, nil
}

// Gain returns the gain for one (workload, threads) cell, or -1.
func (r *Fig13Result) Gain(name string, threads int) float64 {
	for _, c := range r.Cells {
		if c.Workload == name && c.Threads == threads {
			return c.Gain
		}
	}
	return -1
}

// The table is rendered in three pieces so the sweep shards (one unit per
// workload) can emit their row blocks independently and still concatenate
// to the byte-identical sequential table.
const (
	fig13Header = "Figure 13: HWDP throughput improvement over OSDP (Z-SSD, 2:1 dataset:memory)\n" +
		"  workload   threads   OSDP(op/s)    HWDP(op/s)    gain\n"
	fig13Footer = "  (paper: FIO/DBBench +29.4%..+57.1%, YCSB +5.3%..+27.3%)\n"
)

// fig13Rows renders a block of cells as table rows.
func fig13Rows(cells []Fig13Cell) string {
	var b strings.Builder
	for _, c := range cells {
		fmt.Fprintf(&b, "  %-9s  %7d   %11.0f   %11.0f   %+5.1f%%\n",
			c.Workload, c.Threads, c.OSDP, c.HWDP, 100*c.Gain)
	}
	return b.String()
}

// String renders the Fig13Result as the paper-style text table.
func (r *Fig13Result) String() string {
	return fig13Header + fig13Rows(r.Cells) + fig13Footer
}

// Fig14Result is the YCSB-C 4-thread architectural comparison.
type Fig14Result struct {
	ThroughputNorm float64 // HWDP / OSDP
	IPCOSDP        float64
	IPCHWDP        float64
	IPCGain        float64
	L1Norm         float64 // HWDP misses per user instr / OSDP
	L2Norm         float64
	LLCNorm        float64
	BranchNorm     float64
	HWHandledFrac  float64 // fraction of misses handled in hardware
}

// Fig14 runs YCSB-C with 4 threads under both schemes and compares
// throughput, user-level IPC and miss events.
func Fig14(p Params) (*Fig14Result, error) {
	const threads = 4
	run := func(scheme kernel.Scheme) (float64, microRates, float64, error) {
		sys := p.newSystem(scheme, ssd.ZSSD)
		m, err := runYCSB(sys, p, 'C', threads)
		if err != nil {
			return 0, microRates{}, 0, err
		}
		mmuSt := sys.MMU.Stats()
		hwFrac := 0.0
		if tot := mmuSt.HWMisses + mmuSt.OSFaults; tot > 0 {
			hwFrac = float64(mmuSt.HWMisses-mmuSt.HWBounced) / float64(tot)
		}
		return m.Throughput(), userMicro(sys, threads), hwFrac, nil
	}
	osT, osM, _, err := run(kernel.OSDP)
	if err != nil {
		return nil, err
	}
	hwT, hwM, hwFrac, err := run(kernel.HWDP)
	if err != nil {
		return nil, err
	}
	return &Fig14Result{
		ThroughputNorm: hwT / osT,
		IPCOSDP:        osM.ipc,
		IPCHWDP:        hwM.ipc,
		IPCGain:        hwM.ipc/osM.ipc - 1,
		L1Norm:         hwM.l1 / osM.l1,
		L2Norm:         hwM.l2 / osM.l2,
		LLCNorm:        hwM.llc / osM.llc,
		BranchNorm:     hwM.br / osM.br,
		HWHandledFrac:  hwFrac,
	}, nil
}

// String renders the Fig14Result as the paper-style text table.
func (r *Fig14Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 14: YCSB-C, 4 threads — HWDP normalized to OSDP\n")
	fmt.Fprintf(&b, "  (a) throughput: %.2fx\n", r.ThroughputNorm)
	fmt.Fprintf(&b, "  (b) user IPC: %.3f -> %.3f (+%.1f%%, paper: +7.0%%)\n",
		r.IPCOSDP, r.IPCHWDP, 100*r.IPCGain)
	fmt.Fprintf(&b, "      miss events (per user instr, normalized): L1 %.2f  L2 %.2f  LLC %.2f  branch %.2f\n",
		r.L1Norm, r.L2Norm, r.LLCNorm, r.BranchNorm)
	fmt.Fprintf(&b, "      page misses handled in hardware: %.1f%% (paper: 99.9%%)\n",
		100*r.HWHandledFrac)
	return b.String()
}

// Fig15Result is the kernel-cost comparison (retired kernel instructions
// and cycles, including kpted/kpoold).
type Fig15Result struct {
	// Per scheme: app-thread kernel work plus background threads.
	OSDPAppInstr, OSDPBgInstr uint64
	HWDPAppInstr, HWDPBgInstr uint64
	OSDPKCycles, HWDPKCycles  int64
	InstrReduction            float64
	CycleReduction            float64
}

// Fig15 reuses the Fig. 14 setup and accounts kernel instructions/cycles
// by context.
func Fig15(p Params) (*Fig15Result, error) {
	const threads = 4
	run := func(scheme kernel.Scheme) (app cpu.Counters, bg cpu.Counters, err error) {
		sys := p.newSystem(scheme, ssd.ZSSD)
		if _, err = runYCSB(sys, p, 'C', threads); err != nil {
			return
		}
		for i := 0; i < threads; i++ {
			app.Add(sys.CPU.Thread(2 * i).Counters)
		}
		n := sys.Cfg.Cores * 2
		for _, id := range []int{n - 1, n - 3, n - 5} { // kpted, kpoold, kswapd
			bg.Add(sys.CPU.Thread(id).Counters)
		}
		return
	}
	osApp, osBg, err := run(kernel.OSDP)
	if err != nil {
		return nil, err
	}
	hwApp, hwBg, err := run(kernel.HWDP)
	if err != nil {
		return nil, err
	}
	r := &Fig15Result{
		OSDPAppInstr: osApp.KernelInstr, OSDPBgInstr: osBg.KernelInstr,
		HWDPAppInstr: hwApp.KernelInstr, HWDPBgInstr: hwBg.KernelInstr,
		OSDPKCycles: (osApp.KernelTime + osBg.KernelTime).ToCycles(),
		HWDPKCycles: (hwApp.KernelTime + hwBg.KernelTime).ToCycles(),
	}
	osTot := float64(r.OSDPAppInstr + r.OSDPBgInstr)
	hwTot := float64(r.HWDPAppInstr + r.HWDPBgInstr)
	r.InstrReduction = 1 - hwTot/osTot
	r.CycleReduction = 1 - float64(r.HWDPKCycles)/float64(r.OSDPKCycles)
	return r, nil
}

// String renders the Fig15Result as the paper-style text table.
func (r *Fig15Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 15: kernel-level retired instructions and cycles (YCSB-C, 4 threads)\n")
	b.WriteString("  scheme   kernel-in-app-threads   kpted/kpoold/kswapd   kernel cycles\n")
	fmt.Fprintf(&b, "  OSDP     %21d   %19d   %d\n", r.OSDPAppInstr, r.OSDPBgInstr, r.OSDPKCycles)
	fmt.Fprintf(&b, "  HWDP     %21d   %19d   %d\n", r.HWDPAppInstr, r.HWDPBgInstr, r.HWDPKCycles)
	fmt.Fprintf(&b, "  reduction: instructions %.1f%%, cycles %.1f%% (paper: 62.6%% instructions)\n",
		100*r.InstrReduction, 100*r.CycleReduction)
	return b.String()
}

// Fig16Row is one SPEC co-runner of the SMT experiment.
type Fig16Row struct {
	Kernel        string
	FIOGain       float64 // FIO throughput, HWDP / OSDP
	FIOInstrRatio float64 // FIO total (user+kernel) instructions, HWDP / OSDP
	SPECIPCOSDP   float64
	SPECIPCHWDP   float64
	SPECIPCGain   float64
}

// Fig16Result is the SMT co-scheduling experiment.
type Fig16Result struct{ Rows []Fig16Row }

// Fig16 pins an FIO thread and a compute kernel onto the two hardware
// threads of one physical core and compares schemes.
func Fig16(p Params) (*Fig16Result, error) {
	dur := 40 * sim.Millisecond
	run := func(scheme kernel.Scheme, spec *workload.Compute) (fioOps float64, fioInstr uint64, specIPC float64, err error) {
		sys := p.newSystem(scheme, ssd.ZSSD)
		fio, err := workload.SetupFIO(sys, "fio.dat", p.datasetPages(), sys.FastFlags())
		if err != nil {
			return 0, 0, 0, err
		}
		spec.Sys = sys
		a, b := sys.SMTPair(0)
		rs := workload.RunMixed(sys, []workload.Assignment{
			{Th: a, W: fio},
			{Th: b, W: spec},
		}, workload.RunOptions{Duration: dur})
		fioC := sys.CPU.Thread(0).Counters
		specC := sys.CPU.Thread(1).Counters
		return rs[0].Throughput(), fioC.UserInstr + fioC.KernelInstr, specC.UserIPC(), nil
	}
	res := &Fig16Result{}
	for _, spec := range workload.SPECKernels(nil) {
		osOps, osInstr, osIPC, err := run(kernel.OSDP, spec)
		if err != nil {
			return nil, err
		}
		hwOps, hwInstr, hwIPC, err := run(kernel.HWDP, spec)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig16Row{
			Kernel:        spec.Name,
			FIOGain:       hwOps / osOps,
			FIOInstrRatio: float64(hwInstr) / float64(osInstr),
			SPECIPCOSDP:   osIPC,
			SPECIPCHWDP:   hwIPC,
			SPECIPCGain:   hwIPC/osIPC - 1,
		})
	}
	return res, nil
}

// String renders the Fig16Result as the paper-style text table.
func (r *Fig16Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 16: SMT co-scheduling — FIO + compute kernel on one physical core\n")
	b.WriteString("  co-runner   FIO speedup   FIO instr ratio   SPEC IPC (OSDP→HWDP)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-9s   %9.2fx   %15.2f   %.2f → %.2f (+%.1f%%)\n",
			row.Kernel, row.FIOGain, row.FIOInstrRatio,
			row.SPECIPCOSDP, row.SPECIPCHWDP, 100*row.SPECIPCGain)
	}
	b.WriteString("  (paper: FIO ≥1.72x, FIO instructions down ≤42.4%, SPEC IPC up)\n")
	return b.String()
}
