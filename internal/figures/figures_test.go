package figures

import (
	"strings"
	"testing"

	"hwdp/internal/core"
)

type core_TracePhase = core.TracePhase

// The figure tests assert that each regenerated experiment reproduces the
// paper's *shape*: who wins, by roughly what factor, and in which
// direction trends move. Quick() parameters keep them unit-test fast.

func TestFig1TrendMoreFaultTimeWithLargerDatasets(t *testing.T) {
	r, err := Fig1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].PageFaultFrac <= r.Rows[i-1].PageFaultFrac {
			t.Fatalf("fault fraction not increasing: %+v", r.Rows)
		}
		if r.Rows[i].Throughput >= r.Rows[i-1].Throughput {
			t.Fatalf("throughput not decreasing: %+v", r.Rows)
		}
	}
	for _, row := range r.Rows {
		if row.ComputeFrac < 0 || row.ComputeFrac > 1 {
			t.Fatalf("compute fraction out of range: %+v", row)
		}
	}
	if !strings.Contains(r.String(), "demand-paging") {
		t.Fatal("render")
	}
}

func TestFig2Trend(t *testing.T) {
	r := Fig2()
	// Modern ULL SSD: tens of thousands of cycles; 2005 disk: tens of
	// millions — the paper's framing.
	last := r.Rows[len(r.Rows)-1]
	if last.LatencyCycles < 1e4 || last.LatencyCycles > 1e5 {
		t.Fatalf("2019 cycles = %e", last.LatencyCycles)
	}
	disk := r.Rows[2]
	if disk.LatencyCycles < 1e7 {
		t.Fatalf("2005 disk cycles = %e", disk.LatencyCycles)
	}
	if !strings.Contains(r.String(), "2019") {
		t.Fatal("render")
	}
}

func TestFig3OverheadShare(t *testing.T) {
	r, err := Fig3(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: aggregated overhead 76.3% of device time.
	if r.OverheadFrac < 0.70 || r.OverheadFrac > 0.85 {
		t.Fatalf("overhead = %.3f of device time", r.OverheadFrac)
	}
	// The decomposition must account for the measured latency.
	if diff := (float64(r.Measured) - r.Breakdown.Total()*1e6) / float64(r.Measured); diff > 0.02 || diff < -0.02 {
		t.Fatalf("breakdown (%f us) vs measured (%v)", r.Breakdown.Total(), r.Measured)
	}
	if !strings.Contains(r.String(), "device I/O") {
		t.Fatal("render")
	}
}

func TestFig4FaultsHalveThroughput(t *testing.T) {
	r, err := Fig4(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: OSDP has less than half the ideal throughput; our zipfian
	// scale gives ~0.55-0.65 — assert the qualitative collapse.
	if r.ThroughputNorm > 0.75 {
		t.Fatalf("throughput norm = %.2f, faults barely hurt", r.ThroughputNorm)
	}
	if r.IPCNorm >= 1 {
		t.Fatalf("IPC norm = %.2f, pollution missing", r.IPCNorm)
	}
	for name, v := range map[string]float64{
		"L1": r.L1Norm, "L2": r.L2Norm, "LLC": r.LLCNorm, "branch": r.BranchNorm,
	} {
		if v <= 1 {
			t.Fatalf("%s misses norm = %.2f, should rise with faults", name, v)
		}
	}
}

func TestFig11Reductions(t *testing.T) {
	r, err := Fig11(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: before-device -2.38us, after-device -6.16us.
	if b := r.BeforeReduction.Micros(); b < 2.0 || b > 2.8 {
		t.Fatalf("before reduction = %.2fus", b)
	}
	if a := r.AfterReduction.Micros(); a < 5.7 || a > 6.6 {
		t.Fatalf("after reduction = %.2fus", a)
	}
	if len(r.Timeline) < 6 {
		t.Fatalf("timeline phases = %d", len(r.Timeline))
	}
	// Command write dominates before-device (77.16ns).
	var cmdNS float64
	for _, ph := range r.Timeline {
		if strings.Contains(ph.Name, "cmd write") {
			cmdNS = ph.Dur.Nanos()
		}
	}
	if cmdNS < 77 || cmdNS > 78 {
		t.Fatalf("cmd write = %.2fns", cmdNS)
	}
}

func TestFig12LatencyReductionBand(t *testing.T) {
	r, err := Fig12(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatal("rows")
	}
	one, eight := r.Rows[0], r.Rows[3]
	// Paper: 37.0% at 1 thread, 27.0% at 8.
	if one.Reduction < 0.32 || one.Reduction > 0.43 {
		t.Fatalf("1-thread reduction = %.3f", one.Reduction)
	}
	if eight.Reduction < 0.22 || eight.Reduction > 0.34 {
		t.Fatalf("8-thread reduction = %.3f", eight.Reduction)
	}
	if eight.Reduction >= one.Reduction {
		t.Fatal("reduction must shrink with parallelism")
	}
}

func TestFig13GainBands(t *testing.T) {
	r, err := Fig13(Quick(), []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	// FIO and DBBench: uniform access, big gains (paper 29.4–57.1%).
	for _, w := range []string{"FIO", "DBBench"} {
		for _, n := range []int{1, 4} {
			g := r.Gain(w, n)
			if g < 0.25 || g > 0.70 {
				t.Errorf("%s@%d gain = %.3f", w, n, g)
			}
		}
	}
	// YCSB: realistic patterns, smaller gains (paper 5.3–27.3%).
	for _, w := range []string{"YCSB-A", "YCSB-B", "YCSB-C", "YCSB-D", "YCSB-F"} {
		for _, n := range []int{1, 4} {
			g := r.Gain(w, n)
			if g < 0.03 || g > 0.33 {
				t.Errorf("%s@%d gain = %.3f", w, n, g)
			}
		}
	}
	// Write-heavy mixes gain less than read-only at the same threads.
	if r.Gain("YCSB-A", 4) >= r.Gain("YCSB-C", 4) {
		t.Errorf("A (%.3f) should gain less than C (%.3f)",
			r.Gain("YCSB-A", 4), r.Gain("YCSB-C", 4))
	}
	// Gains shrink with parallelism.
	if r.Gain("FIO", 4) >= r.Gain("FIO", 1) {
		t.Error("FIO gain should shrink with threads")
	}
}

func TestFig14IPCGain(t *testing.T) {
	r, err := Fig14(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: +7.0% user IPC, most misses down, 99.9% hardware-handled.
	if r.IPCGain < 0.04 || r.IPCGain > 0.12 {
		t.Fatalf("IPC gain = %.3f", r.IPCGain)
	}
	if r.ThroughputNorm <= 1.0 {
		t.Fatalf("throughput norm = %.3f", r.ThroughputNorm)
	}
	for name, v := range map[string]float64{
		"L1": r.L1Norm, "L2": r.L2Norm, "LLC": r.LLCNorm, "branch": r.BranchNorm,
	} {
		if v >= 1 {
			t.Errorf("%s miss norm = %.3f, should fall under HWDP", name, v)
		}
	}
	if r.HWHandledFrac < 0.99 {
		t.Fatalf("hardware-handled fraction = %.4f", r.HWHandledFrac)
	}
}

func TestFig15KernelReduction(t *testing.T) {
	r, err := Fig15(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 62.6% fewer kernel instructions (HWDP includes kpted/kpoold).
	if r.InstrReduction < 0.50 || r.InstrReduction > 0.75 {
		t.Fatalf("instr reduction = %.3f", r.InstrReduction)
	}
	if r.CycleReduction < 0.50 || r.CycleReduction > 0.75 {
		t.Fatalf("cycle reduction = %.3f", r.CycleReduction)
	}
	// HWDP moves kernel work into the background threads.
	if r.HWDPBgInstr == 0 {
		t.Fatal("kpted/kpoold did no work under HWDP")
	}
	if r.HWDPAppInstr >= r.OSDPAppInstr {
		t.Fatal("app-thread kernel work did not fall")
	}
}

func TestFig16SMTCoScheduling(t *testing.T) {
	r, err := Fig16(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatal("rows")
	}
	for _, row := range r.Rows {
		// Paper: FIO >1.72x faster; our model lands ~1.6-1.75x.
		if row.FIOGain < 1.45 || row.FIOGain > 1.95 {
			t.Errorf("%s: FIO gain = %.2f", row.Kernel, row.FIOGain)
		}
		// FIO executes fewer total instructions under HWDP.
		if row.FIOInstrRatio >= 1 {
			t.Errorf("%s: FIO instr ratio = %.2f", row.Kernel, row.FIOInstrRatio)
		}
		// The co-running compute thread gets more issue slots.
		if row.SPECIPCGain <= 0 {
			t.Errorf("%s: SPEC IPC gain = %.3f", row.Kernel, row.SPECIPCGain)
		}
	}
}

func TestFig17DeviceScaling(t *testing.T) {
	r, err := Fig17(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatal("rows")
	}
	// Paper: -14% on Z-SSD, -44% on Optane DC PMM; benefit grows as the
	// device gets faster.
	z, pmm := r.Rows[0], r.Rows[2]
	if z.Reduction < 0.10 || z.Reduction > 0.20 {
		t.Fatalf("Z-SSD reduction = %.3f", z.Reduction)
	}
	if pmm.Reduction < 0.38 || pmm.Reduction > 0.52 {
		t.Fatalf("PMM reduction = %.3f", pmm.Reduction)
	}
	for i := 1; i < 3; i++ {
		if r.Rows[i].Reduction <= r.Rows[i-1].Reduction {
			t.Fatal("hardware benefit must grow as devices get faster")
		}
	}
}

func TestKpooldAblationBand(t *testing.T) {
	r, err := KpooldAblation(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 44.3–78.4% fewer synchronous-refill faults.
	if r.BouncesWithout == 0 {
		t.Fatal("ablation produced no bounces to reduce")
	}
	if r.Reduction < 0.35 || r.Reduction > 0.98 {
		t.Fatalf("reduction = %.3f", r.Reduction)
	}
}

func TestTablesRender(t *testing.T) {
	ti := TableI()
	for _, want := range []string{"LBA", "hardware", "kpted"} {
		if !strings.Contains(ti, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
	tii := TableII(Quick())
	if !strings.Contains(tii, "Z-SSD") || !strings.Contains(tii, "2.8GHz") {
		t.Errorf("Table II render:\n%s", tii)
	}
	at := AreaTable()
	if !strings.Contains(at, "PMSHR") || !strings.Contains(at, "0.004") {
		t.Errorf("area table render:\n%s", at)
	}
}

func TestAblationPMSHR(t *testing.T) {
	r, err := AblationPMSHR(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatal("rows")
	}
	// Tiny PMSHRs must backlog and lose throughput; the curve saturates by
	// the prototype's 32 entries.
	if r.Rows[0].Backlogged == 0 {
		t.Fatal("2-entry PMSHR did not backlog")
	}
	if r.Rows[0].Throughput >= r.Rows[3].Throughput {
		t.Fatalf("throughput not rising with PMSHR size: %+v", r.Rows)
	}
	sat32 := r.Rows[4].Throughput
	sat64 := r.Rows[5].Throughput
	if diff := (sat64 - sat32) / sat32; diff > 0.02 || diff < -0.02 {
		t.Fatalf("no saturation at 32 entries: 32→%f 64→%f", sat32, sat64)
	}
}

func TestAblationDeviceSweep(t *testing.T) {
	r, err := AblationDeviceSweep(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Reduction <= r.Rows[i-1].Reduction {
			t.Fatal("HWDP benefit must grow with faster devices")
		}
		if r.Rows[i].OverheadOfDev <= r.Rows[i-1].OverheadOfDev {
			t.Fatal("relative OS overhead must grow with faster devices")
		}
	}
	// On Optane DC PMM the OS overhead exceeds the device time itself
	// several times over — the paper's core motivation.
	if last := r.Rows[len(r.Rows)-1]; last.OverheadOfDev < 2 {
		t.Fatalf("PMM overhead/device = %.2f", last.OverheadOfDev)
	}
}

func TestAblationPrefetch(t *testing.T) {
	r, err := AblationPrefetch(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatal("rows")
	}
	// Sequential: latency must fall monotonically with degree.
	if !(r.Rows[2].MeanLat < r.Rows[1].MeanLat && r.Rows[1].MeanLat < r.Rows[0].MeanLat) {
		t.Fatalf("sequential prefetch not helping: %+v", r.Rows[:3])
	}
	// Degree 4 should at least halve the sequential miss latency.
	if float64(r.Rows[2].MeanLat) > 0.6*float64(r.Rows[0].MeanLat) {
		t.Fatalf("degree-4 sequential latency %v vs baseline %v", r.Rows[2].MeanLat, r.Rows[0].MeanLat)
	}
	// Random: benefit must be far smaller than sequential's.
	seqGain := float64(r.Rows[0].MeanLat) / float64(r.Rows[2].MeanLat)
	rndGain := float64(r.Rows[3].MeanLat) / float64(r.Rows[5].MeanLat)
	if rndGain > seqGain*0.75 {
		t.Fatalf("random gain %.2f too close to sequential %.2f", rndGain, seqGain)
	}
	if r.Rows[0].Prefetches != 0 || r.Rows[1].Prefetches == 0 {
		t.Fatalf("prefetch counts wrong: %+v", r.Rows)
	}
}

func TestResultRenders(t *testing.T) {
	// Exercise every String() with hand-built values (no experiment runs).
	f1 := &Fig1Result{Rows: []Fig1Row{{Ratio: 2, Throughput: 1000, ComputeFrac: 0.6, PageFaultFrac: 0.4}}}
	f11 := &Fig11Result{Timeline: []core_TracePhase{{Name: "PT update", Dur: 97 * 357}}}
	f12 := &Fig12Result{Rows: []Fig12Row{{Threads: 1, OSDP: 1000, HWDP: 600, Reduction: 0.4}}}
	f13 := &Fig13Result{Cells: []Fig13Cell{{Workload: "FIO", Threads: 1, OSDP: 1, HWDP: 2, Gain: 1}}}
	f14 := &Fig14Result{ThroughputNorm: 1.2, IPCGain: 0.07}
	f15 := &Fig15Result{InstrReduction: 0.626}
	f16 := &Fig16Result{Rows: []Fig16Row{{Kernel: "mcf-like", FIOGain: 1.7}}}
	f17 := &Fig17Result{Rows: []Fig17Row{{Device: "Z-SSD", Reduction: 0.14}}}
	kp := &KpooldResult{BouncesWithout: 100, BouncesWith: 40, Reduction: 0.6, Ops: 1000}
	pm := &PMSHRResult{Rows: []PMSHRRow{{Entries: 32, Throughput: 1}}}
	dv := &DeviceSweepResult{Rows: []DeviceSweepRow{{Device: "Z-SSD"}}}
	pf := &PrefetchResult{Rows: []PrefetchRow{{Pattern: "sequential", Degree: 4}}}
	for i, str := range []string{
		f1.String(), f11.String(), f12.String(), f13.String(), f14.String(),
		f15.String(), f16.String(), f17.String(), kp.String(), pm.String(),
		dv.String(), pf.String(),
	} {
		if len(str) < 20 {
			t.Errorf("render %d too short: %q", i, str)
		}
	}
	if f13.Gain("nope", 9) != -1 {
		t.Error("missing cell should be -1")
	}
}
