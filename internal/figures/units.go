package figures

import (
	"fmt"

	"hwdp/internal/sweep"
)

// Units decomposes the full `-all` regeneration — tables first, then
// every figure in the usage order — into named sweep units for the
// internal/sweep scheduler. Each unit builds its own System from the
// given Params, so units are independent and safe to run concurrently;
// the fingerprint captures every input that affects the unit's output
// (all Params fields including the seed, plus the thread restriction for
// Fig. 13), which is what makes the result cache sound.
//
// Fig. 13 dominates the aggregate runtime (8 workloads × thread sweep ×
// 2 schemes), so it is sharded into one unit per workload
// (fig/13/<workload>); the shards' row blocks concatenate back into the
// byte-identical sequential table, and a shard failure loses only that
// workload's rows.
//
// The threads slice restricts Fig. 13's thread sweep, exactly like the
// -threads flag; nil means the default 1,2,4,8.
func Units(p Params, threads []int) []sweep.Unit {
	fp := Fingerprint(p)
	stringer := func(run func() (fmt.Stringer, error)) func() (string, error) {
		return func() (string, error) {
			r, err := run()
			if err != nil {
				return "", err
			}
			// The trailing newline matches fmt.Println on the sequential
			// path, keeping one blank line between units.
			return r.String() + "\n", nil
		}
	}
	table := func(name, fingerprint string, render func() string) sweep.Unit {
		return sweep.Unit{
			Name: "table/" + name, Kind: "table", Fingerprint: fingerprint,
			Run: func() (string, error) { return render() + "\n", nil },
		}
	}
	figure := func(name, fingerprint string, run func() (fmt.Stringer, error)) sweep.Unit {
		return sweep.Unit{
			Name: "fig/" + name, Kind: "figure", Fingerprint: fingerprint,
			Run: stringer(run),
		}
	}
	fig13Shard := func(i int) sweep.Unit {
		workload := Fig13Workloads[i]
		first, last := i == 0, i == len(Fig13Workloads)-1
		return sweep.Unit{
			Name: "fig/13/" + workload, Kind: "figure",
			Fingerprint: fmt.Sprintf("%s threads=%v workload=%s", fp, threads, workload),
			Run: func() (string, error) {
				cells, err := fig13Workload(p, workload, fig13Threads(threads))
				if err != nil {
					return "", err
				}
				out := fig13Rows(cells)
				if first {
					out = fig13Header + out
				}
				if last {
					// Footer plus the blank-line separator every figure
					// unit ends with.
					out += fig13Footer + "\n"
				}
				return out, nil
			},
		}
	}
	units := []sweep.Unit{
		// Table I is generated from the PTE semantics alone and Table
		// area from the closed-form area model; neither depends on
		// Params, so their fingerprints are constant.
		table("1", "static", TableI),
		table("2", fp, func() string { return TableII(p) }),
		table("area", "static", AreaTable),
		figure("1", fp, func() (fmt.Stringer, error) { return Fig1(p) }),
		figure("2", "static", func() (fmt.Stringer, error) { return Fig2(), nil }),
		figure("3", fp, func() (fmt.Stringer, error) { return Fig3(p) }),
		figure("4", fp, func() (fmt.Stringer, error) { return Fig4(p) }),
		figure("11", fp, func() (fmt.Stringer, error) { return Fig11(p) }),
		figure("12", fp, func() (fmt.Stringer, error) { return Fig12(p) }),
	}
	for i := range Fig13Workloads {
		units = append(units, fig13Shard(i))
	}
	return append(units,
		figure("14", fp, func() (fmt.Stringer, error) { return Fig14(p) }),
		figure("15", fp, func() (fmt.Stringer, error) { return Fig15(p) }),
		figure("16", fp, func() (fmt.Stringer, error) { return Fig16(p) }),
		figure("17", fp, func() (fmt.Stringer, error) { return Fig17(p) }),
		figure("kpoold", fp, func() (fmt.Stringer, error) { return KpooldAblation(p) }),
		figure("pmshr", fp, func() (fmt.Stringer, error) { return AblationPMSHR(p) }),
		figure("devices", fp, func() (fmt.Stringer, error) { return AblationDeviceSweep(p) }),
		figure("prefetch", fp, func() (fmt.Stringer, error) { return AblationPrefetch(p) }),
		figure("ssd", fp, func() (fmt.Stringer, error) { return AblationSSDSteady(p) }),
		figure("gctail", fp, func() (fmt.Stringer, error) { return AblationGCTail(p) }),
	)
}

// Fingerprint serializes every Params field that can change experiment
// output. New fields must be added here, or the sweep cache would serve
// stale results for configurations that differ in the new field.
func Fingerprint(p Params) string {
	return fmt.Sprintf("mem=%dMiB ratio=%g ops=%d warmup=%d seed=%d ssd=%s fill=%g churn=%g",
		p.MemoryMB, p.DatasetRatio, p.OpsPerThread, p.WarmupOps, p.Seed,
		p.SSDBackend, p.SSDFill, p.SSDChurn)
}
