package figures

import (
	"fmt"
	"strings"

	"hwdp/internal/core"
	"hwdp/internal/kernel"
	"hwdp/internal/sim"
	"hwdp/internal/ssd"
	"hwdp/internal/workload"
)

// PMSHRRow is one PMSHR size of the design-space sweep.
type PMSHRRow struct {
	Entries    int
	Throughput float64
	MeanLat    sim.Time
	Backlogged uint64 // misses that waited for a PMSHR slot
	Coalesced  uint64
}

// PMSHRResult sweeps the PMSHR size — the structure whose 32 entries the
// prototype "empirically chooses" and which bounds the SMU's concurrent
// outstanding I/O.
type PMSHRResult struct{ Rows []PMSHRRow }

// AblationPMSHR runs 8-thread cold FIO at several PMSHR sizes.
func AblationPMSHR(p Params) (*PMSHRResult, error) {
	res := &PMSHRResult{}
	for _, entries := range []int{2, 4, 8, 16, 32, 64} {
		cfg := core.DefaultConfig(kernel.HWDP)
		cfg.Lanes = p.Lanes
		cfg.MemoryBytes = p.memoryBytes()
		cfg.Seed = p.Seed
		cfg.FSBlocks = uint64(p.datasetPages())*4 + (1 << 16)
		cfg.PMSHREntries = entries
		cfg.Kernel.KptedPeriod = sim.Time(p.MemoryMB) * 600 * sim.Microsecond
		sys := cfg.Build()
		fio, err := workload.SetupFIO(sys, "fio.dat", p.datasetPages(), sys.FastFlags())
		if err != nil {
			return nil, err
		}
		fio.Cold = true
		rs := workload.Run(sys, threadSet(sys, 8), fio,
			workload.RunOptions{OpsPerThread: p.OpsPerThread / 2, WarmupOps: p.WarmupOps / 2})
		m := workload.Merge(rs)
		st := sys.SMU.Stats()
		res.Rows = append(res.Rows, PMSHRRow{
			Entries:    entries,
			Throughput: m.Throughput(),
			MeanLat:    m.MeanLatency(),
			Backlogged: st.Backlogged,
			Coalesced:  st.Coalesced,
		})
	}
	return res, nil
}

// String renders the PMSHRResult as the paper-style text table.
func (r *PMSHRResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation: PMSHR size (8-thread cold FIO; prototype picks 32)\n")
	b.WriteString("  entries   throughput(op/s)   mean latency   backlogged   coalesced\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %7d   %16.0f   %12v   %10d   %9d\n",
			row.Entries, row.Throughput, row.MeanLat, row.Backlogged, row.Coalesced)
	}
	b.WriteString("  (tiny PMSHRs serialize misses in the backlog; ≥32 entries stop helping,\n")
	b.WriteString("   matching the paper's empirical choice)\n")
	return b.String()
}

// DeviceSweepRow is one device profile of the latency sweep.
type DeviceSweepRow struct {
	Device         string
	OSDP, HWDP     sim.Time
	Reduction      float64
	OverheadOfDev  float64 // OSDP overhead as a fraction of device time
	HWShareOfTotal float64 // SMU hardware time as a fraction of HWDP latency
}

// DeviceSweepResult extends Fig. 17's argument: as devices get faster the
// OS overhead fraction explodes and hardware handling matters more.
type DeviceSweepResult struct{ Rows []DeviceSweepRow }

// AblationDeviceSweep measures single-fault latency under OSDP and HWDP
// across the three device generations.
func AblationDeviceSweep(p Params) (*DeviceSweepResult, error) {
	res := &DeviceSweepResult{}
	for _, dev := range []ssd.Profile{ssd.ZSSD, ssd.OptaneSSD, ssd.OptaneDCPMM} {
		var lats [2]sim.Time
		for i, scheme := range []kernel.Scheme{kernel.OSDP, kernel.HWDP} {
			cfg := core.DefaultConfig(scheme)
			cfg.Lanes = p.Lanes
			cfg.MemoryBytes = p.memoryBytes()
			cfg.Device = dev
			cfg.DeviceJitter = false
			sys := cfg.Build()
			va, _, err := sys.MapFile("probe", 16, nil, sys.FastFlags())
			if err != nil {
				return nil, err
			}
			lats[i], _ = sys.MeasureSingleFault(sys.WorkloadThread(0), va)
		}
		c := kernel.DefaultCosts()
		hwTime := lats[1] - dev.Read4K
		res.Rows = append(res.Rows, DeviceSweepRow{
			Device: dev.Name, OSDP: lats[0], HWDP: lats[1],
			Reduction:      1 - float64(lats[1])/float64(lats[0]),
			OverheadOfDev:  float64(c.OSDPOverhead()) / float64(dev.Read4K),
			HWShareOfTotal: float64(hwTime) / float64(lats[1]),
		})
	}
	return res, nil
}

// String renders the DeviceSweepResult as the paper-style text table.
func (r *DeviceSweepResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation: device-generation sweep, single fault OSDP vs HWDP\n")
	b.WriteString("  device          OSDP         HWDP         reduction   OS-overhead/device\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-14s  %-11v  %-11v  %8.1f%%   %17.0f%%\n",
			row.Device, row.OSDP, row.HWDP, 100*row.Reduction, 100*row.OverheadOfDev)
	}
	b.WriteString("  (the faster the device, the larger the share the OS wastes — the\n")
	b.WriteString("   paper's core motivation)\n")
	return b.String()
}

// PrefetchRow is one (pattern, degree) cell of the prefetch ablation.
type PrefetchRow struct {
	Pattern    string
	Degree     int
	MeanLat    sim.Time
	Throughput float64
	Prefetches uint64
}

// PrefetchResult explores the future-work SMU prefetcher: it pays off on
// sequential scans and is useless (by design, never harmful to
// correctness) on random access — consistent with the paper disabling
// readahead for its random workloads.
type PrefetchResult struct{ Rows []PrefetchRow }

// AblationPrefetch runs sequential and random single-thread FIO at
// prefetch degrees 0, 1 and 4.
func AblationPrefetch(p Params) (*PrefetchResult, error) {
	res := &PrefetchResult{}
	for _, pattern := range []string{"sequential", "random"} {
		for _, degree := range []int{0, 1, 4} {
			cfg := core.DefaultConfig(kernel.HWDP)
			cfg.Lanes = p.Lanes
			cfg.MemoryBytes = p.memoryBytes()
			cfg.Seed = p.Seed
			cfg.FSBlocks = uint64(p.datasetPages())*4 + (1 << 16)
			cfg.PrefetchDegree = degree
			cfg.Kernel.KptedPeriod = sim.Time(p.MemoryMB) * 600 * sim.Microsecond
			sys := cfg.Build()
			fio, err := workload.SetupFIO(sys, "fio.dat", p.datasetPages(), sys.FastFlags())
			if err != nil {
				return nil, err
			}
			if pattern == "sequential" {
				fio.Sequential = true
			}
			rs := workload.Run(sys, threadSet(sys, 1), fio,
				workload.RunOptions{OpsPerThread: p.OpsPerThread, WarmupOps: p.WarmupOps / 4})
			m := workload.Merge(rs)
			res.Rows = append(res.Rows, PrefetchRow{
				Pattern: pattern, Degree: degree,
				MeanLat:    m.MeanLatency(),
				Throughput: m.Throughput(),
				Prefetches: sys.MMU.Stats().Prefetches,
			})
		}
	}
	return res, nil
}

// String renders the PrefetchResult as the paper-style text table.
func (r *PrefetchResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation: SMU sequential prefetcher (future work, Section V)\n")
	b.WriteString("  pattern      degree   mean latency   throughput(op/s)   prefetches\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-10s   %6d   %12v   %16.0f   %10d\n",
			row.Pattern, row.Degree, row.MeanLat, row.Throughput, row.Prefetches)
	}
	b.WriteString("  (prefetch slashes sequential miss latency; random patterns see no\n")
	b.WriteString("   benefit — why the paper's evaluation disables readahead)\n")
	return b.String()
}
