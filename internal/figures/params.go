// Package figures regenerates every table and figure of the paper's
// evaluation (and the motivation figures of Section II) on the simulated
// machine. Each FigNN function runs the experiment and returns a
// structured result whose String() prints the same rows/series the paper
// reports; cmd/hwdpbench and the repository benchmarks both call in here.
package figures

import (
	"fmt"

	"hwdp/internal/core"
	"hwdp/internal/kernel"
	"hwdp/internal/kvs"
	"hwdp/internal/sim"
	"hwdp/internal/ssd"
	"hwdp/internal/workload"
)

// Params scales the experiments. The paper's 32 GiB / 64 GiB setup is
// scaled down preserving the dataset:memory ratio; Ops counts trade
// precision for run time.
type Params struct {
	MemoryMB     int
	DatasetRatio float64 // dataset = ratio × memory
	OpsPerThread int
	WarmupOps    int
	Seed         uint64
	// Lanes shards the engine for parallel-in-run simulation (see
	// core.Config.Lanes); 0 or 1 is the sequential engine. Figure output
	// is byte-identical across lane counts.
	Lanes int
	// SSDBackend selects the device media model for every unit: "" or
	// "profile" keeps the latency-profile backend, "modeled" swaps in the
	// FTL/GC model (core.Config.SSDBackend; see docs/SSD.md). The
	// fresh-vs-steady figures (fig/ssd, fig/gctail) always run both and
	// ignore this field.
	SSDBackend string
	// SSDFill is the modeled backend's preconditioning fill fraction
	// (0 means the backend default of 1: the dataset ships on flash).
	SSDFill float64
	// SSDChurn is the modeled backend's preconditioning churn in
	// multiples of the filled capacity; 0 keeps the drive fresh. The
	// steady-state figures use max(SSDChurn, 2) for their aged rows.
	SSDChurn float64
}

// Default returns full-fidelity simulation-scale parameters: the run's
// access footprint comfortably exceeds memory, so throughput numbers are
// taken in eviction steady state like the paper's 128 GiB-footprint runs.
func Default() Params {
	return Params{MemoryMB: 32, DatasetRatio: 2, OpsPerThread: 9000, WarmupOps: 3500, Seed: 1}
}

// Quick returns reduced parameters for unit tests and -short benches.
func Quick() Params {
	return Params{MemoryMB: 16, DatasetRatio: 2, OpsPerThread: 4500, WarmupOps: 1800, Seed: 1}
}

func (p Params) memoryBytes() uint64 { return uint64(p.MemoryMB) << 20 }

func (p Params) datasetPages() int {
	return int(float64(p.memoryBytes()) * p.DatasetRatio / 4096)
}

// newSystem builds the standard evaluation machine for a scheme.
func (p Params) newSystem(scheme kernel.Scheme, dev ssd.Profile) *core.System {
	cfg := core.DefaultConfig(scheme)
	cfg.Lanes = p.Lanes
	cfg.MemoryBytes = p.memoryBytes()
	cfg.Device = dev
	cfg.Seed = p.Seed
	cfg.FSBlocks = uint64(p.datasetPages())*4 + (1 << 16)
	// Scale kpted so (period / memory rotation time) matches the paper's
	// 1 s on 32 GiB (rotation ≥ 10 s): small memories rotate in fractions
	// of a second.
	cfg.Kernel.KptedPeriod = sim.Time(p.MemoryMB) * 600 * sim.Microsecond
	p.ApplySSD(&cfg)
	return cfg.Build()
}

// ApplySSD threads the Params' SSD-backend selection into a machine
// config ("profile" normalizes to the default empty selector); exported
// for harnesses (hwdpbench's traced sweep) that assemble their own
// core.Config.
func (p Params) ApplySSD(cfg *core.Config) {
	if p.SSDBackend == "" || p.SSDBackend == "profile" {
		return
	}
	cfg.SSDBackend = p.SSDBackend
	cfg.SSDModeled.FillFrac = p.SSDFill
	cfg.SSDModeled.ChurnOverwrites = p.SSDChurn
}

// threadSet returns n workload threads pinned one per physical core.
func threadSet(sys *core.System, n int) []*kernel.Thread {
	ths := make([]*kernel.Thread, n)
	for i := range ths {
		ths[i] = sys.WorkloadThread(i)
	}
	return ths
}

// buildKV creates the dataset-sized record store mapped with the scheme's
// flags.
func buildKV(sys *core.System, p Params) (*kvs.Store, error) {
	return kvs.Create(sys.K, sys.FS, sys.Proc, "rocksdb.sst",
		uint64(p.datasetPages()), 0, 0, sys.FastFlags())
}

// runYCSB runs one YCSB variant and returns the merged result.
func runYCSB(sys *core.System, p Params, variant byte, threads int) (workload.Result, error) {
	st, err := buildKV(sys, p)
	if err != nil {
		return workload.Result{}, err
	}
	w, err := workload.NewYCSB(sys, st, variant)
	if err != nil {
		return workload.Result{}, err
	}
	rs := workload.Run(sys, threadSet(sys, threads), w,
		workload.RunOptions{OpsPerThread: p.OpsPerThread, WarmupOps: p.WarmupOps})
	m := workload.Merge(rs)
	if m.Errors > 0 {
		return m, fmt.Errorf("figures: %d corrupt reads in YCSB-%c", m.Errors, variant)
	}
	return m, nil
}
