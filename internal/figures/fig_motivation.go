package figures

import (
	"fmt"
	"strings"

	"hwdp/internal/core"
	"hwdp/internal/cpu"
	"hwdp/internal/kernel"
	"hwdp/internal/kvs"
	"hwdp/internal/metrics"
	"hwdp/internal/sim"
	"hwdp/internal/ssd"
	"hwdp/internal/workload"
)

// Fig1Row is one dataset:memory ratio of Figure 1.
type Fig1Row struct {
	Ratio         float64
	Throughput    float64
	ComputeFrac   float64 // fraction of thread time in user compute
	PageFaultFrac float64 // fraction in demand paging (faults, stalls, waits)
}

// Fig1Result is Figure 1: YCSB-C execution-time breakdown under OSDP as
// the dataset outgrows memory.
type Fig1Result struct{ Rows []Fig1Row }

// Fig1 runs YCSB-C at several dataset:memory ratios.
func Fig1(p Params) (*Fig1Result, error) {
	const threads = 4
	res := &Fig1Result{}
	for _, ratio := range []float64{0.5, 1, 2, 4} {
		pr := p
		pr.DatasetRatio = ratio
		// No warmup: the CPU counters cover the whole run, so the time
		// split is exact (and the cold-start faults are part of Figure 1's
		// story at ratios below 1).
		pr.OpsPerThread += pr.WarmupOps
		pr.WarmupOps = 0
		sys := pr.newSystem(kernel.OSDP, ssd.ZSSD)
		m, err := runYCSB(sys, pr, 'C', threads)
		if err != nil {
			return nil, err
		}
		var user, total sim.Time
		for i := 0; i < threads; i++ {
			c := sys.CPU.Thread(2 * i).Counters
			user += c.UserTime
			total += m.Elapsed
		}
		row := Fig1Row{
			Ratio:         ratio,
			Throughput:    m.Throughput(),
			ComputeFrac:   float64(user) / float64(total),
			PageFaultFrac: 1 - float64(user)/float64(total),
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the Fig1Result as the paper-style text table.
func (r *Fig1Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 1: YCSB-C execution time breakdown vs dataset:memory ratio (OSDP)\n")
	b.WriteString("  ratio   throughput(op/s)   compute%   demand-paging%\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %4.1f:1  %16.0f   %7.1f%%   %13.1f%%\n",
			row.Ratio, row.Throughput, 100*row.ComputeFrac, 100*row.PageFaultFrac)
	}
	return b.String()
}

// Fig2Row is one era of the CPU-vs-storage trend (Figure 2; background
// data from public specifications, not simulated).
type Fig2Row struct {
	Year          int
	CPUMHz        float64
	Storage       string
	ReadLatency   sim.Time
	LatencyCycles float64
}

// Fig2Result is the performance-trend table.
type Fig2Result struct{ Rows []Fig2Row }

// Fig2 returns the historical series behind Figure 2.
func Fig2() *Fig2Result {
	rows := []Fig2Row{
		{1985, 8, "HDD (ST-506 class)", 80 * sim.Millisecond, 0},
		{1995, 133, "HDD", 12 * sim.Millisecond, 0},
		{2005, 3200, "HDD (7200rpm)", 8 * sim.Millisecond, 0},
		{2010, 3300, "SATA SSD", 120 * sim.Microsecond, 0},
		{2015, 3500, "NVMe SSD", 80 * sim.Microsecond, 0},
		{2019, 4000, "ultra-low-latency SSD", sim.Micro(10.9), 0},
	}
	for i := range rows {
		rows[i].LatencyCycles = rows[i].ReadLatency.Seconds() * rows[i].CPUMHz * 1e6
	}
	return &Fig2Result{Rows: rows}
}

// String renders the Fig2Result as the paper-style text table.
func (r *Fig2Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 2: CPU vs storage performance trend (public specs)\n")
	b.WriteString("  year   CPU clock   storage                 read latency   latency in cycles\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %d  %7.0f MHz  %-22s %12v   %17.2e\n",
			row.Year, row.CPUMHz, row.Storage, row.ReadLatency, row.LatencyCycles)
	}
	return b.String()
}

// Fig3Result is Figure 3: the single OSDP page-fault latency breakdown.
type Fig3Result struct {
	Breakdown    *metrics.Breakdown
	DeviceTime   sim.Time
	Total        sim.Time
	OverheadFrac float64 // overhead / device time
	Measured     sim.Time
}

// Fig3 measures one OSDP fault end-to-end and decomposes it.
func Fig3(p Params) (*Fig3Result, error) {
	sys := p.newSystem(kernel.OSDP, ssd.ZSSD)
	sys.Cfg.DeviceJitter = false
	// Use a jitter-free machine for the exact single-fault measurement.
	cfg := sys.Cfg
	cfg.DeviceJitter = false
	sys = cfg.Build()
	va, _, err := sys.MapFile("probe", 16, nil, kernel.MmapFlags{})
	if err != nil {
		return nil, err
	}
	measured, _ := sys.MeasureSingleFault(sys.WorkloadThread(0), va)

	c := sys.K.Config().Costs
	dev := sys.Cfg.Device.Read4K
	bd := &metrics.Breakdown{Unit: "us"}
	bd.Add("exception entry", c.Exception.Micros())
	bd.Add("page table walk", (c.WalkInFault + sys.MMU.WalkLatency).Micros())
	bd.Add("fault handler entry (VMA)", c.HandlerEntry.Micros())
	bd.Add("page allocation", c.PageAlloc.Micros())
	bd.Add("I/O submission (block layer)", c.IOSubmit.Micros())
	bd.Add("device I/O", dev.Micros())
	bd.Add("interrupt delivery", c.InterruptDelivery.Micros())
	bd.Add("I/O completion", c.IOCompletion.Micros())
	bd.Add("context switch (wake+schedule)", c.WakeSchedule.Micros())
	bd.Add("OS metadata update (LRU,rmap)", c.MetadataUpdate.Micros())
	bd.Add("PTE install + return", c.PTEInstallReturn.Micros())
	over := c.OSDPOverhead()
	return &Fig3Result{
		Breakdown:    bd,
		DeviceTime:   dev,
		Total:        over + dev,
		OverheadFrac: float64(over) / float64(dev),
		Measured:     measured,
	}, nil
}

// String renders the Fig3Result as the paper-style text table.
func (r *Fig3Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 3: single OSDP page-fault latency breakdown (Z-SSD)\n")
	b.WriteString(r.Breakdown.String())
	fmt.Fprintf(&b, "  aggregated OS overhead = %.1f%% of device time (paper: 76.3%%)\n",
		100*r.OverheadFrac)
	fmt.Fprintf(&b, "  measured end-to-end fault latency: %v\n", r.Measured)
	return b.String()
}

// Fig4Result is Figure 4: ideal (no faults) vs OSDP on a memory-resident
// YCSB-C dataset.
type Fig4Result struct {
	IdealThroughput float64
	OSDPThroughput  float64
	ThroughputNorm  float64 // OSDP / ideal
	IPCNorm         float64 // OSDP user IPC / ideal user IPC
	L1Norm          float64 // misses per user instruction, OSDP / ideal
	L2Norm          float64
	LLCNorm         float64
	BranchNorm      float64
}

type microRates struct {
	ipc, l1, l2, llc, br float64
}

func userMicro(sys *core.System, threads int) microRates {
	var c cpu.Counters
	for i := 0; i < threads; i++ {
		c.Add(sys.CPU.Thread(2 * i).Counters)
	}
	per := 1 / float64(c.UserInstr)
	return microRates{
		ipc: c.UserIPC(),
		l1:  float64(c.L1Miss) * per,
		l2:  float64(c.L2Miss) * per,
		llc: float64(c.LLCMiss) * per,
		br:  float64(c.BranchMiss) * per,
	}
}

// Fig4 compares preloaded vs cold YCSB-C with the dataset sized to fit in
// memory; the access footprint (ops × record) exceeds the dataset, so
// cold-start faults dominate OSDP's run.
func Fig4(p Params) (*Fig4Result, error) {
	const threads = 4
	pr := p
	pr.DatasetRatio = 0.7 // fits in memory with room for the kernel
	// One dataset's worth of record accesses: under the zipfian mix a large
	// share of OSDP's ops are first-touch faults, the regime Figure 4
	// contrasts with the preloaded ideal.
	pr.OpsPerThread = pr.datasetPages() / threads
	pr.WarmupOps = 0

	run := func(populate bool) (workload.Result, microRates, error) {
		sys := pr.newSystem(kernel.OSDP, ssd.ZSSD)
		flags := sys.FastFlags()
		flags.Populate = populate
		st, err := kvs.Create(sys.K, sys.FS, sys.Proc, "rocksdb.sst",
			uint64(pr.datasetPages()), 0, 0, flags)
		if err != nil {
			return workload.Result{}, microRates{}, err
		}
		w, err := workload.NewYCSB(sys, st, 'C')
		if err != nil {
			return workload.Result{}, microRates{}, err
		}
		rs := workload.Run(sys, threadSet(sys, threads), w,
			workload.RunOptions{OpsPerThread: pr.OpsPerThread})
		m := workload.Merge(rs)
		if m.Errors > 0 {
			return m, microRates{}, fmt.Errorf("figures: %d corrupt reads", m.Errors)
		}
		return m, userMicro(sys, threads), nil
	}

	ideal, idealMicro, err := run(true)
	if err != nil {
		return nil, err
	}
	osdp, osdpMicro, err := run(false)
	if err != nil {
		return nil, err
	}
	return &Fig4Result{
		IdealThroughput: ideal.Throughput(),
		OSDPThroughput:  osdp.Throughput(),
		ThroughputNorm:  osdp.Throughput() / ideal.Throughput(),
		IPCNorm:         osdpMicro.ipc / idealMicro.ipc,
		L1Norm:          osdpMicro.l1 / idealMicro.l1,
		L2Norm:          osdpMicro.l2 / idealMicro.l2,
		LLCNorm:         osdpMicro.llc / idealMicro.llc,
		BranchNorm:      osdpMicro.br / idealMicro.br,
	}, nil
}

// String renders the Fig4Result as the paper-style text table.
func (r *Fig4Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 4: page-fault impact on YCSB-C (dataset fits in memory)\n")
	fmt.Fprintf(&b, "  (a) throughput: ideal %.0f op/s, OSDP %.0f op/s → normalized %.2f (paper: < 0.5)\n",
		r.IdealThroughput, r.OSDPThroughput, r.ThroughputNorm)
	fmt.Fprintf(&b, "  (b) user-level, OSDP normalized to ideal:\n")
	fmt.Fprintf(&b, "      IPC %.2f | L1 misses %.2f | L2 misses %.2f | LLC misses %.2f | branch misses %.2f\n",
		r.IPCNorm, r.L1Norm, r.L2Norm, r.LLCNorm, r.BranchNorm)
	return b.String()
}
