package figures

import (
	"fmt"
	"strings"

	"hwdp/internal/core"
	"hwdp/internal/kernel"
	"hwdp/internal/sim"
	"hwdp/internal/ssd/modeled"
	"hwdp/internal/workload"
)

// SSDSteadyRow is one device configuration of the fresh-vs-steady-state
// comparison.
type SSDSteadyRow struct {
	Backend    string // "profile", "modeled/fresh", "modeled/steady"
	Throughput float64
	MeanLat    sim.Time
	P50        sim.Time
	P999       sim.Time
	WriteAmp   float64 // 1 for the profile backend (no FTL)
	GCRuns     uint64
}

// SSDSteadyResult is the fresh-vs-steady-state figure: the same
// write-heavy cold FIO run against the latency-profile device, a fresh
// modeled device, and a churn-preconditioned modeled device. It makes
// the Amber/SimpleSSD argument concrete on this machine: fresh-drive
// numbers (profile or unaged FTL) undersell the tails a steady-state
// drive actually has.
type SSDSteadyResult struct {
	Rows  []SSDSteadyRow
	Churn float64
}

// steadyChurn returns the figure's aging knob: the Params' churn when
// set, else 2 full overwrites of the dataset.
func steadyChurn(p Params) float64 {
	if p.SSDChurn > 0 {
		return p.SSDChurn
	}
	return 2
}

// runSSDRow runs the figure's workload (8-thread cold randrw FIO, 30%
// writes) on one device configuration.
func runSSDRow(p Params, name string, configure func(*core.Config)) (SSDSteadyRow, error) {
	cfg := core.DefaultConfig(kernel.HWDP)
	cfg.Lanes = p.Lanes
	cfg.MemoryBytes = p.memoryBytes()
	cfg.Seed = p.Seed
	cfg.FSBlocks = uint64(p.datasetPages())*4 + (1 << 16)
	cfg.Kernel.KptedPeriod = sim.Time(p.MemoryMB) * 600 * sim.Microsecond
	configure(&cfg)
	sys := cfg.Build()
	fio, err := workload.SetupFIO(sys, "fio.dat", p.datasetPages(), sys.FastFlags())
	if err != nil {
		return SSDSteadyRow{}, err
	}
	fio.Cold = true
	fio.WriteFrac = 0.3
	rs := workload.Run(sys, threadSet(sys, 8), fio,
		workload.RunOptions{OpsPerThread: p.OpsPerThread / 2, WarmupOps: p.WarmupOps / 2})
	m := workload.Merge(rs)
	row := SSDSteadyRow{
		Backend:    name,
		Throughput: m.Throughput(),
		MeanLat:    m.MeanLatency(),
		P50:        sim.Time(m.Lat.Percentile(50)),
		P999:       sim.Time(m.Lat.Percentile(99.9)),
		WriteAmp:   1,
	}
	if len(sys.ModeledSSDs) > 0 {
		st := sys.ModeledSSDs[0].Stats()
		row.WriteAmp = st.WriteAmp()
		row.GCRuns = st.GCRuns
	}
	return row, nil
}

// AblationSSDSteady runs the fresh-vs-steady-state comparison.
func AblationSSDSteady(p Params) (*SSDSteadyResult, error) {
	churn := steadyChurn(p)
	res := &SSDSteadyResult{Churn: churn}
	rows := []struct {
		name      string
		configure func(*core.Config)
	}{
		{"profile", func(cfg *core.Config) {}},
		{"modeled/fresh", func(cfg *core.Config) {
			cfg.SSDBackend = "modeled"
			cfg.SSDModeled.FillFrac = 1
		}},
		{"modeled/steady", func(cfg *core.Config) {
			cfg.SSDBackend = "modeled"
			cfg.SSDModeled.FillFrac = 1
			cfg.SSDModeled.ChurnOverwrites = churn
		}},
	}
	for _, r := range rows {
		row, err := runSSDRow(p, r.name, r.configure)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the SSDSteadyResult as the paper-style text table.
func (r *SSDSteadyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: SSD backend, fresh vs steady state (8-thread cold randrw FIO, churn %gx)\n", r.Churn)
	b.WriteString("  backend          throughput(op/s)   mean lat       p50           p99.9         WA      GC runs\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-15s  %16.0f   %-12v   %-11v   %-11v   %5.2f   %7d\n",
			row.Backend, row.Throughput, row.MeanLat, row.P50, row.P999,
			row.WriteAmp, row.GCRuns)
	}
	b.WriteString("  (the profile and fresh-FTL rows are the optimistic fresh-drive numbers;\n")
	b.WriteString("   preconditioning wakes GC up, and write amplification plus relocation\n")
	b.WriteString("   stalls surface in the p99.9 tail the profile backend cannot produce)\n")
	return b.String()
}

// GCTailRow is one GC-policy configuration of the tail ablation.
type GCTailRow struct {
	Config   string // "profile", "greedy", "cost-benefit"
	P50      sim.Time
	P999     sim.Time
	WriteAmp float64
}

// GCTailResult is the GC-tail ablation: identical steady-state drives
// under the two victim policies, with the profile backend as the
// no-GC-possible baseline. The quantity under test is the tail
// (p99/p99.9) that garbage collection induces and the policy's ability
// to trim it.
type GCTailResult struct {
	Rows  []GCTailRow
	Churn float64
}

// AblationGCTail measures the GC-induced tail under both victim policies.
func AblationGCTail(p Params) (*GCTailResult, error) {
	churn := steadyChurn(p)
	res := &GCTailResult{Churn: churn}
	rows := []struct {
		name      string
		configure func(*core.Config)
	}{
		{"profile", func(cfg *core.Config) {}},
		{"greedy", func(cfg *core.Config) {
			cfg.SSDBackend = "modeled"
			cfg.SSDModeled.GCPolicy = modeled.Greedy
			cfg.SSDModeled.ChurnOverwrites = churn
		}},
		{"cost-benefit", func(cfg *core.Config) {
			cfg.SSDBackend = "modeled"
			cfg.SSDModeled.GCPolicy = modeled.CostBenefit
			cfg.SSDModeled.ChurnOverwrites = churn
		}},
	}
	for _, r := range rows {
		row, err := runSSDRow(p, r.name, r.configure)
		if err != nil {
			return nil, err
		}
		out := GCTailRow{
			Config:   r.name,
			P50:      row.P50,
			P999:     row.P999,
			WriteAmp: row.WriteAmp,
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

// String renders the GCTailResult as the paper-style text table.
func (r *GCTailResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: GC victim policy vs miss-latency tail (steady state, churn %gx)\n", r.Churn)
	b.WriteString("  config         p50           p99.9         WA\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s   %-11v   %-11v   %5.2f\n",
			row.Config, row.P50, row.P999, row.WriteAmp)
	}
	b.WriteString("  (GC relocation and erase occupy planes for milliseconds: the modeled\n")
	b.WriteString("   rows grow a p99.9 tail the GC-free profile device cannot express)\n")
	return b.String()
}
