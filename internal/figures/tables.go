package figures

import (
	"fmt"
	"strings"

	"hwdp/internal/area"
	"hwdp/internal/kernel"
	"hwdp/internal/pagetable"
	"hwdp/internal/smu"
	"hwdp/internal/ssd"
)

// TableI renders the PTE/PMD/PUD semantics (Table I), generated from the
// implementation itself so the table can never drift from the code.
func TableI() string {
	var b strings.Builder
	b.WriteString("Table I: PTE status by (LBA bit, present bit)\n")
	b.WriteString("  LBA  P  PFN field          meaning\n")
	rows := []struct {
		lba, p  bool
		payload string
	}{
		{false, false, "0s / swap payload"},
		{true, false, "SID+devID+LBA"},
		{true, true, "PFN"},
		{false, true, "PFN"},
	}
	for _, row := range rows {
		var e pagetable.Entry
		if row.lba {
			e |= pagetable.FlagLBA
		}
		if row.p {
			e |= pagetable.FlagPresent
		}
		fmt.Fprintf(&b, "  %3v  %v  %-18s %s\n", b01(row.lba), b01(row.p),
			row.payload, describeState(e.State()))
	}
	b.WriteString("  PMD/PUD: LBA=0 → no PTE below needs OS-metadata sync; LBA=1 → one or\n")
	b.WriteString("  more hardware-handled PTEs below await kpted.\n")
	return b.String()
}

func b01(v bool) string {
	if v {
		return "1"
	}
	return "0"
}

func describeState(s pagetable.State) string {
	switch s {
	case pagetable.StateNotPresentOS:
		return "non-resident, miss handled by OS"
	case pagetable.StateNotPresentLBA:
		return "non-resident, LBA-augmented, miss handled by hardware"
	case pagetable.StateResidentUnsynced:
		return "resident, hardware-handled, OS metadata not yet updated"
	case pagetable.StateResident:
		return "resident, identical to conventional PTE"
	}
	return "?"
}

// TableII renders the experimental configuration of the simulated machine
// against the paper's testbed.
func TableII(p Params) string {
	cfg := kernel.DefaultConfig(kernel.HWDP)
	var b strings.Builder
	b.WriteString("Table II: experimental configuration (paper testbed → simulation)\n")
	fmt.Fprintf(&b, "  CPU       Intel Xeon E5-2640v3 2.8GHz, 8 cores (HT) → 8 simulated cores x 2 SMT @ 2.8GHz\n")
	fmt.Fprintf(&b, "  Memory    DDR4 32GB → %d MiB simulated (ratios preserved; see DESIGN.md)\n", p.MemoryMB)
	fmt.Fprintf(&b, "  Storage   Samsung SZ985 Z-SSD → %s profile (%v 4KB read)\n",
		ssd.ZSSD.Name, ssd.ZSSD.Read4K)
	fmt.Fprintf(&b, "  OS        Linux 4.9.30 → kernel model (OSDP/SW-only/HWDP schemes)\n")
	fmt.Fprintf(&b, "  SMU       %d-entry PMSHR, free page queue depth 4096 (clamped to mem/16),\n",
		smu.PMSHREntries)
	fmt.Fprintf(&b, "            kpoold period %v, kpted period scaled with memory\n", cfg.KpooldPeriod)
	return b.String()
}

// AreaTable renders the Section VI-D area budget.
func AreaTable() string { return area.SMUReport(22).String() }
