package trace

import (
	"fmt"
	"sort"
	"strings"

	"hwdp/internal/metrics"
	"hwdp/internal/sim"
)

// Report renders the critical-path attribution tables: for each layer, how
// many misses charged time to it and the mean/p50/p99 time-in-layer, plus
// an "unattributed" row (end-to-end latency not covered by any span —
// pipeline stall waits, event-queue slack) and the end-to-end total. A
// second table breaks each layer into its named phases. All rows are
// rendered in a fixed, deterministic order.
func (t *Tracer) Report() string {
	if t == nil {
		return "tracing disabled\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "critical-path attribution over %d traced misses", len(t.misses))
	if t.kills > 0 {
		fmt.Fprintf(&sb, " (%d killed)", t.kills)
	}
	sb.WriteString("\n\n")

	sb.WriteString("time-in-layer per miss:\n")
	fmt.Fprintf(&sb, "  %-14s %8s %12s %12s %12s\n", "layer", "misses", "mean", "p50", "p99")
	for l := Layer(0); l < numLayers; l++ {
		writeHistRow(&sb, l.String(), t.layerH[l])
	}
	writeHistRow(&sb, "unattributed", t.otherH)
	writeHistRow(&sb, "TOTAL (e2e)", t.totalH)

	sb.WriteString("\nper-phase breakdown:\n")
	fmt.Fprintf(&sb, "  %-32s %8s %12s %12s %12s\n", "phase", "count", "mean", "p50", "p99")
	keys := make([]string, 0, len(t.phaseH))
	for k := range t.phaseH {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		writeHistRow32(&sb, k, t.phaseH[k])
	}

	sb.WriteString("\nmisses by cause:\n")
	counts := t.causeCounts()
	for c := Cause(0); c <= CauseBounced; c++ {
		if counts[c] > 0 {
			fmt.Fprintf(&sb, "  %-16s %8d\n", c, counts[c])
		}
	}
	return sb.String()
}

func (t *Tracer) causeCounts() map[Cause]int {
	counts := make(map[Cause]int)
	for _, m := range t.misses {
		counts[m.Cause]++
	}
	return counts
}

func writeHistRow(sb *strings.Builder, label string, h *metrics.Histogram) {
	fmt.Fprintf(sb, "  %-14s %8d %12s %12s %12s\n", label, h.Count(),
		sim.Time(h.Mean()), sim.Time(h.Percentile(50)), sim.Time(h.Percentile(99)))
}

func writeHistRow32(sb *strings.Builder, label string, h *metrics.Histogram) {
	fmt.Fprintf(sb, "  %-32s %8d %12s %12s %12s\n", label, h.Count(),
		sim.Time(h.Mean()), sim.Time(h.Percentile(50)), sim.Time(h.Percentile(99)))
}

// LayerStats exposes the per-layer attribution histogram (per-miss
// time-in-layer, picoseconds) for programmatic use; nil on a nil tracer
// or when no miss charged the layer.
func (t *Tracer) LayerStats(l Layer) *metrics.Histogram {
	if t == nil || l >= numLayers {
		return nil
	}
	return t.layerH[l]
}

// TotalStats exposes the end-to-end miss-latency histogram (picoseconds);
// nil on a nil tracer.
func (t *Tracer) TotalStats() *metrics.Histogram {
	if t == nil {
		return nil
	}
	return t.totalH
}
