// Package trace is the observability layer of the simulator: a
// low-overhead, seed-deterministic event tracer that follows every page
// miss through the layers it crosses — MMU walk, SMU (CAM lookup, free
// page fetch, NVMe command write, doorbell), the device (channel queueing
// and media time) and the kernel exception path — and records typed span
// events stamped with virtual time.
//
// The per-miss trace context (*Miss) is created by the MMU when a walk
// turns into a miss and threaded by value through the layers; each layer
// attaches the spans it is responsible for. When the miss finishes, the
// tracer folds the spans into per-layer and per-phase latency histograms
// (the critical-path attribution report) and keeps the full record for
// export as Chrome trace_event JSON (viewable in Perfetto or
// chrome://tracing) and for the flight-recorder ring consulted on
// postmortems.
//
// Tracing is off by default. Every method on *Tracer and *Miss is
// nil-receiver safe, and layers hold plain nil pointers when tracing is
// disabled, so the miss hot path performs no allocations and no work
// beyond a nil check (guarded by TestDisabledTracerAddsNoAllocations and
// BenchmarkDisabledTraceHooks).
//
// Determinism: the tracer reads only virtual time, assigns IDs in event
// order, and renders with stable iteration orders, so two runs of the same
// seed and config produce byte-identical trace JSON, reports and dumps.
package trace

import (
	"fmt"
	"strings"

	"hwdp/internal/metrics"
	"hwdp/internal/sim"
)

// Layer identifies the hardware or software component a span is charged
// to. The set mirrors the paper's latency breakdowns: who sits on the
// critical path of a page miss.
type Layer uint8

// Layers crossed by a page miss, in critical-path order.
const (
	// LayerMMU covers the TLB miss and the hardware page-table walk.
	LayerMMU Layer = iota
	// LayerSMU covers the Storage Management Unit: CAM lookup, free page
	// fetch, PMSHR bookkeeping, page-table update and MMU notification.
	LayerSMU
	// LayerNVMe covers the NVMe host-controller protocol work: command
	// write, submission-queue doorbell, completion-queue handling.
	LayerNVMe
	// LayerSSD covers the device itself: channel queue wait and media time.
	LayerSSD
	// LayerKernel covers the OS exception path: exception entry, fault
	// triage, block layer, context switches and metadata updates.
	LayerKernel

	numLayers
)

// String returns the layer's display name as used in reports and traces.
func (l Layer) String() string {
	switch l {
	case LayerMMU:
		return "mmu"
	case LayerSMU:
		return "smu"
	case LayerNVMe:
		return "nvme"
	case LayerSSD:
		return "ssd"
	case LayerKernel:
		return "kernel"
	}
	return "?"
}

// Cause classifies why (and how) a miss was handled.
type Cause uint8

// Miss causes. The creating layer sets an initial cause; layers downstream
// refine it (e.g. the kernel splits OS faults into major/minor, the SMU
// marks no-I/O zero fills). CauseBounced is sticky: once a hardware miss
// degrades to the OS path, later refinements keep the bounce visible.
const (
	// CauseUnknown is a miss whose handling path has not been classified
	// yet (e.g. an OS fault before triage).
	CauseUnknown Cause = iota
	// CauseHWMiss is a hardware-handled miss: pipeline stall + SMU.
	CauseHWMiss
	// CauseOSMajor is a conventional OS fault with device I/O.
	CauseOSMajor
	// CauseOSMinor is an OS fault satisfied from the page cache (or an
	// anonymous zero-fill) without device I/O.
	CauseOSMinor
	// CauseSWMiss is the SW-only scheme's software-SMU fault.
	CauseSWMiss
	// CauseAnonZeroFill is a first-touch anonymous miss the SMU served
	// without I/O via the reserved LBA constant.
	CauseAnonZeroFill
	// CauseBounced is a hardware miss that degraded to the OS exception
	// path (no free page, or an unrecoverable hardware I/O error).
	CauseBounced
)

// String returns the cause's display name as used in reports and traces.
func (c Cause) String() string {
	switch c {
	case CauseHWMiss:
		return "hw-miss"
	case CauseOSMajor:
		return "os-major"
	case CauseOSMinor:
		return "os-minor"
	case CauseSWMiss:
		return "sw-miss"
	case CauseAnonZeroFill:
		return "anon-zero-fill"
	case CauseBounced:
		return "hw-bounced"
	}
	return "unclassified"
}

// Span is one timed phase of a miss, charged to a layer. Spans are
// half-open [Start, End) intervals of virtual time; a zero-length span is
// an instantaneous marker.
type Span struct {
	Layer Layer
	Name  string
	Start sim.Time
	End   sim.Time
}

// Dur returns the span length.
func (s Span) Dur() sim.Time { return s.End - s.Start }

// Miss is the trace context of one page miss, created by the MMU and
// threaded through every layer that touches the miss. All methods are
// nil-receiver safe so disabled tracing costs a nil check.
type Miss struct {
	// ID is unique within a Tracer, assigned in creation (event) order.
	ID uint64
	// Core is the logical core (hardware thread) whose access missed.
	Core int
	// VA is the faulting virtual address.
	VA uint64
	// Cause is the current classification (see Cause).
	Cause Cause
	// Start and End bound the miss in virtual time; End is zero until the
	// miss finishes.
	Start, End sim.Time
	// Spans are the recorded phases, in recording order.
	Spans []Span
	// Killed marks a miss that ended in a SIGBUS kill.
	Killed bool

	t     *Tracer
	ended bool
}

// AddSpan records one timed phase. No-op on a nil miss.
//
//hwdp:coldpath tracing is off (nil receiver) in steady state; span recording only runs in single-miss experiments
func (m *Miss) AddSpan(layer Layer, name string, start, end sim.Time) {
	if m == nil {
		return
	}
	m.Spans = append(m.Spans, Span{Layer: layer, Name: name, Start: start, End: end})
}

// Mark records an instantaneous marker event. No-op on a nil miss.
//
//hwdp:coldpath tracing is off (nil receiver) in steady state; span recording only runs in single-miss experiments
func (m *Miss) Mark(layer Layer, name string, at sim.Time) {
	m.AddSpan(layer, name, at, at)
}

// SetCause reclassifies the miss. CauseBounced is sticky — once a miss
// bounced from hardware to the OS, the bounce stays the headline cause.
// No-op on a nil miss.
//
//hwdp:coldpath tracing is off (nil receiver) in steady state
func (m *Miss) SetCause(c Cause) {
	if m == nil || m.Cause == CauseBounced {
		return
	}
	m.Cause = c
}

// Finish ends the miss and hands it to the tracer for attribution and
// retention. Idempotent (the first call wins) and nil-safe, so shared
// completion paths may all call it.
//
//hwdp:coldpath tracing is off (nil receiver) in steady state; retirement only runs in single-miss experiments
func (m *Miss) Finish(end sim.Time) {
	if m == nil || m.ended {
		return
	}
	m.ended = true
	m.End = end
	m.t.retire(m)
}

// Total returns the end-to-end miss latency (zero while unfinished).
func (m *Miss) Total() sim.Time {
	if m == nil || !m.ended {
		return 0
	}
	return m.End - m.Start
}

// DefaultRingDepth is the flight recorder's default capacity in misses.
const DefaultRingDepth = 64

// maxPostmortems bounds how many kill dumps a run retains.
const maxPostmortems = 8

// Tracer collects finished miss records, maintains the per-layer and
// per-phase attribution histograms, and keeps the flight-recorder ring.
// It is single-threaded, like the simulation engine it observes.
type Tracer struct {
	nextID uint64
	misses []*Miss

	ring     []*Miss
	ringNext int

	postmortems []Postmortem
	kills       uint64

	layerH [numLayers]*metrics.Histogram
	phaseH map[string]*metrics.Histogram
	totalH *metrics.Histogram
	otherH *metrics.Histogram
}

// New returns a tracer with the given flight-recorder depth (<= 0 picks
// DefaultRingDepth).
func New(ringDepth int) *Tracer {
	if ringDepth <= 0 {
		ringDepth = DefaultRingDepth
	}
	t := &Tracer{
		ring:   make([]*Miss, 0, ringDepth),
		phaseH: make(map[string]*metrics.Histogram),
		totalH: metrics.NewHistogram(),
		otherH: metrics.NewHistogram(),
	}
	for i := range t.layerH {
		t.layerH[i] = metrics.NewHistogram()
	}
	return t
}

// Begin opens a miss context. Returns nil (and does nothing) on a nil
// tracer, so callers never need their own enabled check.
//
//hwdp:coldpath tracing is off (nil tracer) in steady state; per-miss records only exist in single-miss experiments
func (t *Tracer) Begin(core int, va uint64, cause Cause, start sim.Time) *Miss {
	if t == nil {
		return nil
	}
	t.nextID++
	return &Miss{ID: t.nextID, Core: core, VA: va, Cause: cause, Start: start, t: t}
}

// retire attributes and retains a finished miss.
func (t *Tracer) retire(m *Miss) {
	if t == nil {
		return
	}
	var perLayer [numLayers]sim.Time
	for _, s := range m.Spans {
		d := s.Dur()
		perLayer[s.Layer] += d
		key := s.Layer.String() + "/" + s.Name
		h, ok := t.phaseH[key]
		if !ok {
			h = metrics.NewHistogram()
			t.phaseH[key] = h
		}
		h.Record(int64(d))
	}
	var attributed sim.Time
	for l, d := range perLayer {
		if d > 0 {
			t.layerH[l].Record(int64(d))
			attributed += d
		}
	}
	total := m.End - m.Start
	t.totalH.Record(int64(total))
	if rest := total - attributed; rest > 0 {
		t.otherH.Record(int64(rest))
	}
	t.misses = append(t.misses, m)
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, m)
	} else {
		t.ring[t.ringNext] = m
		t.ringNext = (t.ringNext + 1) % cap(t.ring)
	}
}

// Misses returns every finished miss, in completion order.
func (t *Tracer) Misses() []*Miss {
	if t == nil {
		return nil
	}
	return t.misses
}

// Kills returns how many traced misses ended in a SIGBUS kill.
func (t *Tracer) Kills() uint64 {
	if t == nil {
		return 0
	}
	return t.kills
}

// Postmortem is a flight-recorder snapshot taken when a miss was killed:
// the kill's context plus the last misses that completed before it.
type Postmortem struct {
	// Reason describes the kill (e.g. "SIGBUS: unrecoverable read").
	Reason string
	// At is the virtual time of the kill.
	At sim.Time
	// Victim is the killed miss (possibly still unfinished at snapshot
	// time — its spans cover the path up to the kill).
	Victim *Miss
	// Recent are the flight-recorder contents at the kill, oldest first.
	Recent []*Miss
}

// String renders the postmortem as a human-readable dump.
func (p Postmortem) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "postmortem @ %v: %s\n", p.At, p.Reason)
	if p.Victim != nil {
		sb.WriteString("  victim:\n")
		renderMiss(&sb, p.Victim, "    ")
	}
	fmt.Fprintf(&sb, "  last %d completed misses:\n", len(p.Recent))
	for _, m := range p.Recent {
		renderMiss(&sb, m, "    ")
	}
	return sb.String()
}

// NoteKill records a SIGBUS kill: the victim miss is marked, and a
// flight-recorder snapshot is retained as a postmortem (up to 8 per run).
// Nil-safe in both receiver and victim.
func (t *Tracer) NoteKill(victim *Miss, reason string, at sim.Time) {
	if t == nil {
		return
	}
	t.kills++
	if victim != nil {
		victim.Killed = true
	}
	if len(t.postmortems) >= maxPostmortems {
		return
	}
	t.postmortems = append(t.postmortems, Postmortem{
		Reason: reason,
		At:     at,
		Victim: victim,
		Recent: t.ringSnapshot(),
	})
}

// Postmortems returns the retained kill dumps, in kill order.
func (t *Tracer) Postmortems() []Postmortem {
	if t == nil {
		return nil
	}
	return t.postmortems
}

// ringSnapshot copies the flight-recorder ring, oldest first.
func (t *Tracer) ringSnapshot() []*Miss {
	out := make([]*Miss, 0, len(t.ring))
	if len(t.ring) < cap(t.ring) {
		return append(out, t.ring...)
	}
	for i := 0; i < len(t.ring); i++ {
		out = append(out, t.ring[(t.ringNext+i)%len(t.ring)])
	}
	return out
}

// FlightDump renders the current flight-recorder contents (the last
// misses to complete) plus any retained postmortems.
func (t *Tracer) FlightDump() string {
	if t == nil {
		return "tracing disabled\n"
	}
	var sb strings.Builder
	recent := t.ringSnapshot()
	fmt.Fprintf(&sb, "flight recorder: last %d of %d traced misses\n", len(recent), len(t.misses))
	for _, m := range recent {
		renderMiss(&sb, m, "  ")
	}
	for _, p := range t.postmortems {
		sb.WriteString(p.String())
	}
	return sb.String()
}

func renderMiss(sb *strings.Builder, m *Miss, indent string) {
	total := "unfinished"
	if m.ended {
		total = m.Total().String()
	}
	killed := ""
	if m.Killed {
		killed = "  [KILLED]"
	}
	fmt.Fprintf(sb, "%smiss#%d core %d va %#x %s total %s%s\n",
		indent, m.ID, m.Core, m.VA, m.Cause, total, killed)
	for _, s := range m.Spans {
		fmt.Fprintf(sb, "%s  %-6s %-24s %10s  @%v\n",
			indent, s.Layer, s.Name, s.Dur(), s.Start)
	}
}
