package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hwdp/internal/sim"
)

// buildFixture populates a tracer with a fixed set of misses.
func buildFixture() *Tracer {
	t := New(4)
	for i := 0; i < 10; i++ {
		start := sim.Time(i) * 1000
		m := t.Begin(i%2, 0x1000*uint64(i+1), CauseHWMiss, start)
		m.AddSpan(LayerMMU, "tlb-miss+walk", start, start+100)
		m.AddSpan(LayerSMU, "req-regs+cam", start+100, start+110)
		m.AddSpan(LayerNVMe, "nvme-cmd-write", start+110, start+190)
		m.AddSpan(LayerSSD, "media read", start+200, start+700)
		m.AddSpan(LayerSMU, "pt-update", start+700, start+740)
		if i == 7 {
			m.SetCause(CauseBounced)
			m.AddSpan(LayerKernel, "exception-entry", start+740, start+800)
			m.SetCause(CauseOSMajor) // must not override the sticky bounce
		}
		m.Finish(start + 800)
	}
	victim := t.Begin(0, 0xdead000, CauseOSMajor, 99000)
	victim.AddSpan(LayerKernel, "exception-entry", 99000, 99100)
	t.NoteKill(victim, "SIGBUS: unrecoverable read", 99500)
	victim.Finish(99500)
	return t
}

func TestMissLifecycle(t *testing.T) {
	tr := buildFixture()
	if got := len(tr.Misses()); got != 11 {
		t.Fatalf("misses = %d, want 11", got)
	}
	m := tr.Misses()[0]
	if m.Total() != 800 {
		t.Errorf("total = %v, want 800", m.Total())
	}
	if m.ID != 1 {
		t.Errorf("first miss ID = %d, want 1", m.ID)
	}
	// Finish is idempotent.
	m.Finish(12345)
	if m.End != 800 || len(tr.Misses()) != 11 {
		t.Errorf("second Finish mutated the miss: end=%v misses=%d", m.End, len(tr.Misses()))
	}
	// Sticky bounce cause.
	if c := tr.Misses()[7].Cause; c != CauseBounced {
		t.Errorf("bounced miss cause = %v, want hw-bounced", c)
	}
	if tr.Kills() != 1 {
		t.Errorf("kills = %d, want 1", tr.Kills())
	}
}

func TestLayerAttribution(t *testing.T) {
	tr := buildFixture()
	// Every fixture miss charges exactly 100ps to the MMU.
	h := tr.LayerStats(LayerMMU)
	if h.Count() != 10 {
		t.Fatalf("MMU count = %d, want 10", h.Count())
	}
	if h.Percentile(50) != 100 || h.Percentile(99) != 100 {
		t.Errorf("MMU p50/p99 = %d/%d, want 100/100", h.Percentile(50), h.Percentile(99))
	}
	// SMU gets 10+40 = 50ps per miss across two spans.
	if got := tr.LayerStats(LayerSMU).Percentile(50); got != 50 {
		t.Errorf("SMU p50 = %d, want 50", got)
	}
	// Unattributed: total 800, spans cover 100+10+80+500+40 = 730 (+60
	// kernel for the bounced miss), so 70 (or 10) unattributed, plus the
	// victim's 400.
	if got := tr.otherH.Count(); got != 11 {
		t.Errorf("unattributed rows = %d, want 11", got)
	}
}

func TestFlightRecorderRing(t *testing.T) {
	tr := New(3)
	for i := 0; i < 5; i++ {
		m := tr.Begin(0, uint64(i), CauseHWMiss, sim.Time(i))
		m.Finish(sim.Time(i) + 1)
	}
	recent := tr.ringSnapshot()
	if len(recent) != 3 {
		t.Fatalf("ring size = %d, want 3", len(recent))
	}
	// Oldest first: misses 3, 4, 5 (IDs are 1-based).
	for i, m := range recent {
		if want := uint64(i + 3); m.ID != want {
			t.Errorf("ring[%d].ID = %d, want %d", i, m.ID, want)
		}
	}
	dump := tr.FlightDump()
	if !strings.Contains(dump, "last 3 of 5 traced misses") {
		t.Errorf("dump missing header:\n%s", dump)
	}
}

func TestPostmortemSnapshot(t *testing.T) {
	tr := buildFixture()
	pms := tr.Postmortems()
	if len(pms) != 1 {
		t.Fatalf("postmortems = %d, want 1", len(pms))
	}
	pm := pms[0]
	if pm.At != 99500 || pm.Victim == nil || !pm.Victim.Killed {
		t.Errorf("bad postmortem: %+v", pm)
	}
	if len(pm.Recent) != 4 { // ring depth 4
		t.Errorf("recent = %d, want 4", len(pm.Recent))
	}
	if !strings.Contains(pm.String(), "SIGBUS") {
		t.Errorf("postmortem dump missing reason:\n%s", pm.String())
	}
	if !strings.Contains(tr.FlightDump(), "[KILLED]") {
		t.Errorf("flight dump missing kill marker")
	}
}

func TestReportDeterministic(t *testing.T) {
	a, b := buildFixture().Report(), buildFixture().Report()
	if a != b {
		t.Fatalf("reports differ:\n%s\n---\n%s", a, b)
	}
	for _, want := range []string{"mmu", "smu", "nvme", "ssd", "kernel", "unattributed", "TOTAL (e2e)", "hw-bounced", "p50", "p99"} {
		if !strings.Contains(a, want) {
			t.Errorf("report missing %q:\n%s", want, a)
		}
	}
}

func TestChromeExportValidAndDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteChrome(&a, Process{Name: "HWDP", T: buildFixture()}); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, Process{Name: "HWDP", T: buildFixture()}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("chrome exports differ across identical fixtures")
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, a.String())
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var metas, completes, instants int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			metas++
		case "X":
			completes++
		case "i":
			instants++
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	// 1 process_name + 2 thread_name metas; 11 misses + their spans; 1 kill.
	if metas != 3 || instants != 1 || completes < 11 {
		t.Errorf("metas=%d completes=%d instants=%d", metas, completes, instants)
	}
}

func TestChromeMultiProcess(t *testing.T) {
	var buf bytes.Buffer
	err := WriteChrome(&buf,
		Process{Name: "OSDP", T: buildFixture()},
		Process{Name: "HWDP", T: nil})
	if err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `"OSDP"`) || !strings.Contains(s, `"HWDP"`) {
		t.Errorf("missing process names:\n%s", s)
	}
	if !json.Valid(buf.Bytes()) {
		t.Errorf("multi-process export is not valid JSON")
	}
}

func TestUsecFormatting(t *testing.T) {
	cases := []struct {
		ps   int64
		want string
	}{
		{0, "0.000000"},
		{1, "0.000001"},
		{1e6, "1.000000"},
		{1234567, "1.234567"},
		{10900 * 1e6, "10900.000000"},
	}
	for _, c := range cases {
		if got := usec(c.ps); got != c.want {
			t.Errorf("usec(%d) = %q, want %q", c.ps, got, c.want)
		}
	}
}

// TestDisabledTracerAddsNoAllocations pins the zero-alloc contract: with
// tracing off, every hook a layer may call is a nil check and nothing more.
func TestDisabledTracerAddsNoAllocations(t *testing.T) {
	var tr *Tracer
	var m *Miss
	allocs := testing.AllocsPerRun(1000, func() {
		m = tr.Begin(0, 0x1000, CauseHWMiss, 42)
		m.AddSpan(LayerSMU, "req-regs+cam", 42, 50)
		m.Mark(LayerSSD, "fault-transient", 60)
		m.SetCause(CauseBounced)
		m.Finish(100)
		tr.NoteKill(m, "x", 100)
		_ = tr.Misses()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %v times per op, want 0", allocs)
	}
	if m != nil {
		t.Fatal("nil tracer returned a non-nil miss")
	}
}

// BenchmarkDisabledTraceHooks is the perf guard the acceptance criteria
// ask for: run with -benchmem and expect 0 B/op, 0 allocs/op.
func BenchmarkDisabledTraceHooks(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := tr.Begin(0, 0x1000, CauseHWMiss, sim.Time(i))
		m.AddSpan(LayerMMU, "tlb-miss+walk", sim.Time(i), sim.Time(i)+100)
		m.SetCause(CauseOSMajor)
		m.Finish(sim.Time(i) + 800)
	}
}
