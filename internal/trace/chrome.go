package trace

import (
	"fmt"
	"io"
	"strconv"
)

// Process names one tracer for Chrome export. Each process becomes a
// Chrome "pid" (Perfetto renders them as separate process tracks), so one
// file can hold several schemes side by side.
type Process struct {
	// Name labels the process track (e.g. "HWDP", "OSDP").
	Name string
	// T is the tracer whose misses the track shows; nil tracers export
	// an empty track.
	T *Tracer
}

// WriteChrome writes the given tracers as Chrome trace_event JSON (the
// JSON-object format with a traceEvents array), loadable in Perfetto or
// chrome://tracing. Each miss becomes a complete ("X") event on its core's
// thread, with one nested complete event per span; kills appear as
// instant ("i") events. Timestamps are virtual time converted to
// microseconds (the format's unit) with fixed six-decimal formatting, so
// the output is byte-deterministic for a deterministic simulation.
func WriteChrome(w io.Writer, procs ...Process) error {
	bw := &errWriter{w: w}
	bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`)
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteString(",\n")
		} else {
			bw.WriteString("\n")
			first = false
		}
		bw.WriteString(s)
	}
	for pid, p := range procs {
		emit(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
			pid, quote(p.Name)))
		if p.T == nil {
			continue
		}
		cores := map[int]bool{}
		for _, m := range p.T.misses {
			if !cores[m.Core] {
				cores[m.Core] = true
				emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"core %d"}}`,
					pid, m.Core, m.Core))
			}
			emit(fmt.Sprintf(`{"name":%s,"cat":"miss","ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"args":{"id":%d,"va":"%#x","cause":%s,"killed":%t}}`,
				quote("miss "+m.Cause.String()), pid, m.Core,
				usec(int64(m.Start)), usec(int64(m.End-m.Start)), m.ID, m.VA, quote(m.Cause.String()), m.Killed))
			for _, s := range m.Spans {
				emit(fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"args":{"id":%d}}`,
					quote(s.Name), quote(s.Layer.String()), pid, m.Core,
					usec(int64(s.Start)), usec(int64(s.End-s.Start)), m.ID))
			}
		}
		for _, pm := range p.T.postmortems {
			tid := 0
			if pm.Victim != nil {
				tid = pm.Victim.Core
			}
			emit(fmt.Sprintf(`{"name":%s,"cat":"kill","ph":"i","s":"g","pid":%d,"tid":%d,"ts":%s}`,
				quote(pm.Reason), pid, tid, usec(int64(pm.At))))
		}
	}
	bw.WriteString("\n]}\n")
	return bw.err
}

// usec formats picoseconds as microseconds with fixed six decimals
// (sub-picosecond exact: 1 ps = 0.000001 µs).
func usec(ps int64) string {
	sign := ""
	if ps < 0 {
		sign = "-"
		ps = -ps
	}
	return fmt.Sprintf("%s%d.%06d", sign, ps/1e6, ps%1e6)
}

// quote JSON-escapes a string.
func quote(s string) string { return strconv.Quote(s) }

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) WriteString(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}
