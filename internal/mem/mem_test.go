package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNewSizing(t *testing.T) {
	m := New(1 << 20) // 1 MiB = 256 frames
	if m.Frames() != 256 {
		t.Fatalf("frames = %d", m.Frames())
	}
	if m.FreeFrames() != 256 {
		t.Fatalf("free = %d", m.FreeFrames())
	}
}

func TestNewTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New(100)
}

func TestAllocFreeCycle(t *testing.T) {
	m := New(4 * PageSize)
	var got []FrameID
	for i := 0; i < 4; i++ {
		f, err := m.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, f)
	}
	// Low frames first, deterministically.
	for i, f := range got {
		if f != FrameID(i) {
			t.Fatalf("alloc order = %v", got)
		}
	}
	if _, err := m.Alloc(); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("want OOM, got %v", err)
	}
	if err := m.Free(got[2]); err != nil {
		t.Fatal(err)
	}
	f, err := m.Alloc()
	if err != nil || f != got[2] {
		t.Fatalf("realloc = %d, %v", f, err)
	}
	if m.Allocs() != 5 || m.Frees() != 1 {
		t.Fatalf("allocs=%d frees=%d", m.Allocs(), m.Frees())
	}
}

func TestDoubleFree(t *testing.T) {
	m := New(2 * PageSize)
	f, _ := m.Alloc()
	if err := m.Free(f); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(f); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("double free: %v", err)
	}
	if err := m.Free(FrameID(9999)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("free of bogus frame: %v", err)
	}
}

func TestAllocN(t *testing.T) {
	m := New(8 * PageSize)
	fs := m.AllocN(5)
	if len(fs) != 5 {
		t.Fatalf("got %d frames", len(fs))
	}
	fs2 := m.AllocN(10) // only 3 left
	if len(fs2) != 3 {
		t.Fatalf("partial AllocN = %d", len(fs2))
	}
	if m.FreeFrames() != 0 {
		t.Fatal("should be empty")
	}
}

func TestDataLazyMaterialization(t *testing.T) {
	m := New(16 * PageSize)
	f, _ := m.Alloc()
	if m.ResidentBuffers() != 0 {
		t.Fatal("no buffer should exist before first touch")
	}
	b, err := m.Data(f)
	if err != nil || len(b) != PageSize {
		t.Fatalf("data: %v len=%d", err, len(b))
	}
	if m.ResidentBuffers() != 1 {
		t.Fatal("buffer not tracked")
	}
	b[0] = 0xAB
	b2, _ := m.Data(f)
	if b2[0] != 0xAB {
		t.Fatal("data not persistent")
	}
}

func TestDataOfUnallocated(t *testing.T) {
	m := New(2 * PageSize)
	if _, err := m.Data(0); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("want ErrBadFrame, got %v", err)
	}
	if _, err := m.Data(NoFrame); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("NoFrame: %v", err)
	}
}

func TestFreeDropsContents(t *testing.T) {
	m := New(2 * PageSize)
	f, _ := m.Alloc()
	_ = m.Fill(f, func(b []byte) { b[0] = 1 })
	_ = m.Free(f)
	f2, _ := m.Alloc()
	if f2 != f {
		t.Fatalf("expected frame reuse, got %d", f2)
	}
	b, _ := m.Data(f2)
	if b[0] != 0 {
		t.Fatal("contents leaked across free")
	}
}

func TestFill(t *testing.T) {
	m := New(2 * PageSize)
	f, _ := m.Alloc()
	err := m.Fill(f, func(b []byte) {
		for i := range b {
			b[i] = byte(i)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := m.Data(f)
	if b[255] != 255 {
		t.Fatal("fill did not write")
	}
	if err := m.Fill(FrameID(1), func([]byte) {}); err == nil {
		t.Fatal("fill of unallocated frame should fail")
	}
}

// Property: any sequence of allocs and frees conserves frames — free +
// allocated == total, and no frame is ever handed out twice concurrently.
func TestConservationProperty(t *testing.T) {
	f := func(ops []bool, seed uint64) bool {
		m := New(32 * PageSize)
		held := map[FrameID]bool{}
		s := seed
		for _, alloc := range ops {
			if alloc || len(held) == 0 {
				fr, err := m.Alloc()
				if err != nil {
					if m.FreeFrames() != 0 {
						return false
					}
					continue
				}
				if held[fr] {
					return false // double allocation
				}
				held[fr] = true
			} else {
				// Remove an arbitrary held frame deterministically.
				s = s*6364136223846793005 + 1
				i := int(s % uint64(len(held)))
				var victim FrameID
				for fr := range held {
					if i == 0 {
						victim = fr
						break
					}
					i--
				}
				delete(held, victim)
				if err := m.Free(victim); err != nil {
					return false
				}
			}
			if m.FreeFrames()+uint64(len(held)) != m.Frames() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
