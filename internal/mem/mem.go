// Package mem models the machine's physical memory: a page-frame allocator
// plus lazily materialized frame contents. Only resident frames hold a real
// 4 KiB buffer, so a simulated 256 MiB machine costs at most 256 MiB of host
// memory and usually far less (frames written by the device are materialized
// on first touch).
package mem

import (
	"errors"
	"fmt"
)

// PageSize is the base page size in bytes (4 KiB, matching the paper's
// experiments; NVMe reads of up to 8 KiB work without a PRP list).
const PageSize = 4096

// FrameID identifies a physical page frame (the PFN).
type FrameID uint64

// NoFrame is the sentinel for "no frame".
const NoFrame FrameID = ^FrameID(0)

// ErrOutOfMemory is returned when no free frame exists.
var ErrOutOfMemory = errors.New("mem: out of physical memory")

// ErrBadFrame is returned for operations on invalid or unallocated frames.
var ErrBadFrame = errors.New("mem: invalid frame")

// Memory is the physical memory of one simulated machine.
type Memory struct {
	frames    uint64
	freeList  []FrameID
	allocated []bool
	data      map[FrameID][]byte

	allocs uint64
	frees  uint64
}

// New creates a memory of the given size in bytes (rounded down to whole
// frames). It panics on a size smaller than one page, which is always a
// configuration bug.
func New(bytes uint64) *Memory {
	n := bytes / PageSize
	if n == 0 {
		panic("mem: memory smaller than one page")
	}
	m := &Memory{
		frames:    n,
		freeList:  make([]FrameID, 0, n),
		allocated: make([]bool, n),
		data:      make(map[FrameID][]byte),
	}
	// Push in reverse so low frames are handed out first (deterministic
	// and matches how a fresh kernel consumes its memory map).
	for i := int64(n) - 1; i >= 0; i-- {
		m.freeList = append(m.freeList, FrameID(i))
	}
	return m
}

// Frames returns the total number of page frames.
func (m *Memory) Frames() uint64 { return m.frames }

// FreeFrames returns the number of currently free frames.
func (m *Memory) FreeFrames() uint64 { return uint64(len(m.freeList)) }

// Allocs returns the cumulative number of successful allocations.
func (m *Memory) Allocs() uint64 { return m.allocs }

// Frees returns the cumulative number of frees.
func (m *Memory) Frees() uint64 { return m.frees }

// Alloc takes a free frame. It returns ErrOutOfMemory when memory is
// exhausted, which the kernel turns into page replacement.
func (m *Memory) Alloc() (FrameID, error) {
	if len(m.freeList) == 0 {
		return NoFrame, ErrOutOfMemory
	}
	f := m.freeList[len(m.freeList)-1]
	m.freeList = m.freeList[:len(m.freeList)-1]
	m.allocated[f] = true
	m.allocs++
	return f, nil
}

// AllocN takes up to n free frames, returning however many were available.
// The kernel uses it to refill the SMU free-page queue in batch.
func (m *Memory) AllocN(n int) []FrameID {
	if n > len(m.freeList) {
		n = len(m.freeList)
	}
	out := make([]FrameID, 0, n)
	for i := 0; i < n; i++ {
		f, err := m.Alloc()
		if err != nil {
			break
		}
		out = append(out, f)
	}
	return out
}

// Free returns a frame to the allocator and drops its contents.
func (m *Memory) Free(f FrameID) error {
	if uint64(f) >= m.frames || !m.allocated[f] {
		return fmt.Errorf("%w: free of %d", ErrBadFrame, f)
	}
	m.allocated[f] = false
	delete(m.data, f)
	m.freeList = append(m.freeList, f)
	m.frees++
	return nil
}

// Allocated reports whether the frame is currently allocated.
func (m *Memory) Allocated(f FrameID) bool {
	return uint64(f) < m.frames && m.allocated[f]
}

// Data returns the frame's 4 KiB buffer, materializing it zero-filled on
// first access. The frame must be allocated.
func (m *Memory) Data(f FrameID) ([]byte, error) {
	if !m.Allocated(f) {
		return nil, fmt.Errorf("%w: data of %d", ErrBadFrame, f)
	}
	b, ok := m.data[f]
	if !ok {
		b = make([]byte, PageSize)
		m.data[f] = b
	}
	return b, nil
}

// Fill overwrites the frame's contents via gen, which receives the (already
// materialized) buffer. The device model uses it to deposit DMA data.
func (m *Memory) Fill(f FrameID, gen func(buf []byte)) error {
	b, err := m.Data(f)
	if err != nil {
		return err
	}
	gen(b)
	return nil
}

// ResidentBuffers returns how many frames have materialized contents
// (a host-memory usage metric, not a simulation quantity).
func (m *Memory) ResidentBuffers() int { return len(m.data) }
