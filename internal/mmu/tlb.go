package mmu

import "hwdp/internal/pagetable"

// TLB is a set-associative translation lookaside buffer. Entries carry a
// reference to the backing PTE so the hardware can set dirty bits on write
// hits without a walk, and so invalidations on unmap/eviction keep the TLB
// coherent with the page table.
type TLB struct {
	sets int
	ways int
	ents [][]tlbEntry // [set][way]
	rr   []int        // round-robin replacement pointer per set

	hits      uint64
	misses    uint64
	evictions uint64
}

type tlbEntry struct {
	valid bool
	asid  uint32
	vpn   uint64
	pte   pagetable.EntryRef
}

// NewTLB builds a TLB with the given geometry. The default used by the
// machine model is 256 sets × 6 ways = 1536 entries, a Haswell-class
// two-level-TLB-equivalent capacity.
func NewTLB(sets, ways int) *TLB {
	if sets <= 0 || ways <= 0 {
		panic("mmu: bad TLB geometry")
	}
	t := &TLB{sets: sets, ways: ways, rr: make([]int, sets)}
	t.ents = make([][]tlbEntry, sets)
	for i := range t.ents {
		t.ents[i] = make([]tlbEntry, ways)
	}
	return t
}

// Entries returns the TLB capacity.
func (t *TLB) Entries() int { return t.sets * t.ways }

// Hits returns the cumulative hit count.
func (t *TLB) Hits() uint64 { return t.hits }

// Misses returns the cumulative miss count.
func (t *TLB) Misses() uint64 { return t.misses }

func (t *TLB) set(vpn uint64) int { return int(vpn % uint64(t.sets)) }

// Lookup finds a translation. ok is false on a miss.
func (t *TLB) Lookup(asid uint32, vpn uint64) (pagetable.EntryRef, bool) {
	s := t.ents[t.set(vpn)]
	for i := range s {
		if s[i].valid && s[i].asid == asid && s[i].vpn == vpn {
			t.hits++
			return s[i].pte, true
		}
	}
	t.misses++
	return pagetable.EntryRef{}, false
}

// Insert fills a translation, evicting round-robin within the set.
func (t *TLB) Insert(asid uint32, vpn uint64, pte pagetable.EntryRef) {
	si := t.set(vpn)
	s := t.ents[si]
	for i := range s {
		if s[i].valid && s[i].asid == asid && s[i].vpn == vpn {
			s[i].pte = pte
			return
		}
	}
	for i := range s {
		if !s[i].valid {
			s[i] = tlbEntry{valid: true, asid: asid, vpn: vpn, pte: pte}
			return
		}
	}
	w := t.rr[si]
	t.rr[si] = (w + 1) % t.ways
	s[w] = tlbEntry{valid: true, asid: asid, vpn: vpn, pte: pte}
	t.evictions++
}

// Invalidate drops one translation (TLB shootdown on unmap or page
// replacement).
func (t *TLB) Invalidate(asid uint32, vpn uint64) {
	s := t.ents[t.set(vpn)]
	for i := range s {
		if s[i].valid && s[i].asid == asid && s[i].vpn == vpn {
			s[i].valid = false
			return
		}
	}
}

// InvalidateASID drops all translations of one address space (context
// teardown / fork revert).
func (t *TLB) InvalidateASID(asid uint32) {
	for _, s := range t.ents {
		for i := range s {
			if s[i].asid == asid {
				s[i].valid = false
			}
		}
	}
}
