// Package mmu models the memory management unit: TLB, hardware page-table
// walker, and the paper's extension — during a walk the MMU checks both the
// present and LBA bits of the PTE; a non-present, LBA-augmented entry is
// dispatched to the SMU while the pipeline stalls, instead of raising a
// page-fault exception (Section III-B, "Page Miss Handling with
// LBA-augmented PTE").
package mmu

import (
	"fmt"

	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
	"hwdp/internal/smu"
	"hwdp/internal/trace"
)

// Outcome classifies how an access was satisfied.
type Outcome int

// Outcomes.
const (
	// OutcomeTLBHit: translation cached, no walk.
	OutcomeTLBHit Outcome = iota
	// OutcomeWalkHit: walk found a resident PTE.
	OutcomeWalkHit
	// OutcomeHW: non-present LBA-augmented PTE, handled by the SMU with the
	// pipeline stalled.
	OutcomeHW
	// OutcomeOSFault: exception raised; the OS fault handler resolved it
	// (either a conventional miss, or a hardware miss that failed for lack
	// of a free page).
	OutcomeOSFault
	// OutcomeBadAddr: no mapping exists at all (segfault).
	OutcomeBadAddr
)

// String returns the walk outcome's display name.
func (o Outcome) String() string {
	switch o {
	case OutcomeTLBHit:
		return "tlb-hit"
	case OutcomeWalkHit:
		return "walk-hit"
	case OutcomeHW:
		return "hw-miss"
	case OutcomeOSFault:
		return "os-fault"
	case OutcomeBadAddr:
		return "bad-addr"
	}
	return "?"
}

// CoreCarrier lets the access context (the kernel's thread) tell the MMU
// which logical core is faulting, for SMUs with per-core free page queues.
type CoreCarrier interface{ CoreID() int }

// TenantCarrier lets the access context (the kernel's thread) tell the MMU
// which fleet tenant is faulting, for per-tenant SMU accounting and QoS
// admission. Contexts that do not implement it are tenant 0 (the default
// single-tenant machine).
type TenantCarrier interface{ TenantID() int }

// OSFaultFunc raises a page-fault exception to the kernel. The kernel
// resolves the fault (possibly blocking the thread) and calls done; the
// MMU then re-walks. hwFailed distinguishes Table I row 1 faults from
// hardware misses bounced for lack of a free page (the kernel must refill
// the free page queue in that case). ms is the miss's trace context (nil
// when tracing is disabled); the kernel attaches its phase spans to it.
type OSFaultFunc func(ctx any, as *AddressSpace, va pagetable.VAddr, write, hwFailed bool, ms *trace.Miss, done func())

// AddressSpace couples a page table with an ASID for TLB tagging.
type AddressSpace struct {
	ASID  uint32
	Table *pagetable.Table
}

// Stats are the MMU's counters.
type Stats struct {
	Accesses   uint64
	TLBHits    uint64
	Walks      uint64
	WalkHits   uint64
	HWMisses   uint64
	OSFaults   uint64
	HWBounced  uint64 // hardware misses that fell back to the OS
	Prefetches uint64 // speculative next-page fetches issued
}

// Result is delivered to the access callback.
type Result struct {
	Outcome Outcome
	PTE     pagetable.Entry
}

// MMU is the per-machine translation hardware (the model folds all cores'
// MMUs into one component; contention effects live in the SMU and device).
type MMU struct {
	eng  *sim.Engine
	tlb  *TLB
	smus [8]*smu.SMU // indexed by socket ID (3-bit SID field of the PTE)

	// WalkLatency is charged on every TLB miss (the hardware walker's
	// memory accesses; calibrated to the paper's Fig. 3 walk share).
	WalkLatency sim.Time

	// DispatchHW controls whether non-present LBA-augmented PTEs are sent
	// to the SMU (HWDP) or raise an exception like any other miss (the
	// SW-only scheme of Fig. 17, where the kernel emulates the SMU).
	DispatchHW bool

	// PrefetchDegree enables the paper's future-work prefetching support:
	// after dispatching a hardware miss, the next N virtually-contiguous
	// LBA-augmented pages are fetched speculatively (nobody waits on them;
	// the SMU installs their PTEs when the blocks arrive). Zero disables.
	PrefetchDegree int

	// Tracer, when non-nil, opens a per-miss trace context on every walk
	// that misses and threads it through the SMU or the OS fault path.
	Tracer *trace.Tracer

	// OnDirty, when non-nil, fires on every clean→dirty PTE transition
	// (first write to a clean page). The kernel arms it for dirty-page
	// accounting when writeback throttling is configured; nil (the
	// default) costs nothing.
	OnDirty func()

	osFault OSFaultFunc
	stats   Stats

	// walkCb is the pre-bound runWalk callback and walkFree the walkReq
	// free list: together they make walk scheduling allocation-free (one
	// walkReq per in-flight walk, recycled forever). missFree and pfFree
	// recycle the SMU-dispatch continuations the same way (one missCont per
	// in-flight hardware miss, one prefetchCont per speculative fetch).
	walkCb   func(any)
	walkFree []*walkReq
	missFree []*missCont
	pfFree   []*prefetchCont
}

// walkReq carries a pending walk's arguments through the engine's pooled
// argument path, replacing a per-TLB-miss closure allocation.
type walkReq struct {
	ctx   any
	as    *AddressSpace
	va    pagetable.VAddr
	write bool
	done  func(Result)
	t0    sim.Time
}

// missCont carries a dispatched hardware miss's completion state through
// the SMU's pooled callback path (HandleMissArg + the missDone
// trampoline), replacing the per-miss closure the MMU used to allocate.
type missCont struct {
	m       *MMU
	ctx     any
	as      *AddressSpace
	va      pagetable.VAddr
	write   bool
	done    func(Result)
	retried bool
	t0      sim.Time
	core    int
	ms      *trace.Miss
	pte     pagetable.EntryRef
}

// prefetchCont carries one speculative prefetch's TLB-install state
// through HandleMissArg (nobody waits on a prefetch; only the TLB insert
// remains when the block arrives).
type prefetchCont struct {
	m   *MMU
	as  *AddressSpace
	va  pagetable.VAddr
	pte pagetable.EntryRef
}

// New builds an MMU with the default TLB geometry and walk latency.
func New(eng *sim.Engine) *MMU {
	m := &MMU{
		eng:         eng,
		tlb:         NewTLB(256, 6),
		WalkLatency: sim.Nano(30),
		DispatchHW:  true,
	}
	m.walkCb = m.runWalk
	return m
}

// TLB exposes the TLB (for shootdowns by the kernel).
func (m *MMU) TLB() *TLB { return m.tlb }

// Stats returns a copy of the counters.
func (m *MMU) Stats() Stats { return m.stats }

// AttachSMU registers the SMU serving a socket ID.
func (m *MMU) AttachSMU(s *smu.SMU) {
	if int(s.SID) >= len(m.smus) {
		panic(fmt.Sprintf("mmu: socket ID %d out of range", s.SID))
	}
	if m.smus[s.SID] != nil {
		panic(fmt.Sprintf("mmu: SMU for socket %d attached twice", s.SID))
	}
	m.smus[s.SID] = s
}

// SetOSFaultHandler installs the kernel's exception entry point.
func (m *MMU) SetOSFaultHandler(fn OSFaultFunc) { m.osFault = fn }

// Access translates va for the given address space. done fires when the
// translation (including any miss handling) completes; the elapsed virtual
// time is the access's translation latency. Write accesses set the dirty
// bit.
// The opaque ctx is handed to the OS fault handler unchanged (the kernel
// passes the faulting thread).
//
//hwdp:hotpath
func (m *MMU) Access(as *AddressSpace, va pagetable.VAddr, write bool, ctx any, done func(Result)) {
	m.stats.Accesses++
	vpn := va.PageNumber()
	if ref, ok := m.tlb.Lookup(as.ASID, vpn); ok {
		e := ref.Get()
		if e.Present() {
			m.stats.TLBHits++
			if write && !e.Dirty() {
				ref.Set(e.WithFlags(pagetable.FlagDirty))
				if m.OnDirty != nil {
					m.OnDirty()
				}
			}
			done(Result{OutcomeTLBHit, ref.Get()})
			return
		}
		// Stale entry (page was evicted): drop and walk.
		m.tlb.Invalidate(as.ASID, vpn)
	}
	m.stats.Walks++
	r := m.getWalkReq()
	r.ctx, r.as, r.va, r.write, r.done, r.t0 = ctx, as, va, write, done, m.eng.Now()
	m.eng.PostArg(m.WalkLatency, m.walkCb, r)
}

//hwdp:pool acquire walkreq
func (m *MMU) getWalkReq() *walkReq {
	if n := len(m.walkFree); n > 0 {
		r := m.walkFree[n-1]
		m.walkFree = m.walkFree[:n-1]
		return r
	}
	return new(walkReq)
}

//hwdp:pool release walkreq
func (m *MMU) putWalkReq(r *walkReq) {
	*r = walkReq{}
	m.walkFree = append(m.walkFree, r)
}

//hwdp:pool acquire misscont
func (m *MMU) getMissCont() *missCont {
	if n := len(m.missFree); n > 0 {
		c := m.missFree[n-1]
		m.missFree[n-1] = nil
		m.missFree = m.missFree[:n-1]
		return c
	}
	return new(missCont)
}

//hwdp:pool release misscont
func (m *MMU) putMissCont(c *missCont) {
	*c = missCont{}
	m.missFree = append(m.missFree, c)
}

//hwdp:pool acquire prefetchcont
func (m *MMU) getPrefetchCont() *prefetchCont {
	if n := len(m.pfFree); n > 0 {
		c := m.pfFree[n-1]
		m.pfFree[n-1] = nil
		m.pfFree = m.pfFree[:n-1]
		return c
	}
	return new(prefetchCont)
}

//hwdp:pool release prefetchcont
func (m *MMU) putPrefetchCont(c *prefetchCont) {
	*c = prefetchCont{}
	m.pfFree = append(m.pfFree, c)
}

// runWalk unpacks a pooled walkReq and starts the walk proper.
//
//hwdp:hotpath
func (m *MMU) runWalk(arg any) {
	r := arg.(*walkReq)
	ctx, as, va, write, done, t0 := r.ctx, r.as, r.va, r.write, r.done, r.t0
	m.putWalkReq(r)
	m.walk(ctx, as, va, write, done, false, t0, nil)
}

// walk resolves one page-table walk. t0 is when the TLB missed (the walk
// began); ms is the miss's trace context, nil until the walk turns out to
// be a miss (and always nil when tracing is disabled).
func (m *MMU) walk(ctx any, as *AddressSpace, va pagetable.VAddr, write bool, done func(Result), retried bool, t0 sim.Time, ms *trace.Miss) {
	core, tenant := 0, 0
	if cc, okc := ctx.(CoreCarrier); okc {
		core = cc.CoreID()
	}
	if tc, okt := ctx.(TenantCarrier); okt {
		tenant = tc.TenantID()
	}
	pud, pmd, pte, ok := as.Table.Walk(va)
	if !ok {
		// No page-table structure at all: a conventional OS fault (mmap'ed
		// but never populated — the OS allocates tables) or a segfault; the
		// kernel decides.
		m.raiseOS(ctx, as, va, write, false, done, retried, t0, core, ms)
		return
	}
	e := pte.Get()
	switch e.State() {
	case pagetable.StateResident, pagetable.StateResidentUnsynced:
		m.stats.WalkHits++
		flags := pagetable.FlagAccessed
		if write {
			flags |= pagetable.FlagDirty
			if m.OnDirty != nil && !e.Dirty() {
				m.OnDirty()
			}
		}
		pte.Set(e.WithFlags(flags))
		m.tlb.Insert(as.ASID, va.PageNumber(), pte)
		ms.Finish(m.eng.Now())
		done(Result{OutcomeWalkHit, pte.Get()})

	case pagetable.StateNotPresentLBA:
		if !m.DispatchHW {
			// SW-only scheme: the exception is raised and the kernel's
			// software SMU emulation takes over.
			m.raiseOS(ctx, as, va, write, false, done, retried, t0, core, ms)
			return
		}
		// Both checks in one walk step: present clear, LBA set → request
		// the SMU identified by the socket ID; the pipeline stalls.
		blk := e.Block()
		s := m.smus[blk.SID]
		if s == nil {
			panic(fmt.Sprintf("mmu: PTE names socket %d with no SMU", blk.SID))
		}
		m.stats.HWMisses++
		if ms == nil {
			ms = m.Tracer.Begin(core, uint64(va), trace.CauseHWMiss, t0)
		}
		if !retried {
			ms.AddSpan(trace.LayerMMU, "tlb-miss+walk", t0, m.eng.Now())
		}
		req := smu.Request{PUD: pud, PMD: pmd, PTE: pte, Block: blk, Prot: e.Prot(), Core: core, Tenant: tenant, Trace: ms}
		c := m.getMissCont()
		c.m, c.ctx, c.as, c.va, c.write, c.done = m, ctx, as, va, write, done
		c.retried, c.t0, c.core, c.ms, c.pte = retried, t0, core, ms, pte
		s.HandleMissArg(req, missDone, c)
		m.prefetch(as, va, core, tenant, s)

	case pagetable.StateNotPresentOS:
		m.raiseOS(ctx, as, va, write, false, done, retried, t0, core, ms)
	}
}

// prefetch speculatively dispatches the next virtually-contiguous
// LBA-augmented pages to the SMU. Failures (no free page) are silently
// dropped: a prefetch must never cause an OS fault.
func (m *MMU) prefetch(as *AddressSpace, va pagetable.VAddr, core, tenant int, s *smu.SMU) {
	for i := 1; i <= m.PrefetchDegree; i++ {
		nva := va.PageBase() + pagetable.VAddr(i)*4096
		pud, pmd, pte, ok := as.Table.Walk(nva)
		if !ok {
			return
		}
		e := pte.Get()
		if e.State() != pagetable.StateNotPresentLBA || e.Block().LBA == pagetable.AnonFirstTouch {
			return
		}
		blk := e.Block()
		if blk.SID != s.SID {
			return
		}
		m.stats.Prefetches++
		req := smu.Request{PUD: pud, PMD: pmd, PTE: pte, Block: blk, Prot: e.Prot(), Core: core, Tenant: tenant}
		pc := m.getPrefetchCont()
		pc.m, pc.as, pc.va, pc.pte = m, as, nva, pte
		s.HandleMissArg(req, prefetchDone, pc)
	}
}

// missDone resumes a dispatched walk when the SMU broadcasts its result
// (the HandleMissArg trampoline bound to a pooled missCont).
func missDone(arg any, res smu.Result, _ pagetable.Entry) {
	c := arg.(*missCont)
	m := c.m
	switch res {
	case smu.ResultOK:
		if c.write {
			// A freshly installed PTE is always clean.
			c.pte.Set(c.pte.Get().WithFlags(pagetable.FlagDirty))
			if m.OnDirty != nil {
				m.OnDirty()
			}
		}
		m.tlb.Insert(c.as.ASID, c.va.PageNumber(), c.pte)
		c.ms.Finish(m.eng.Now())
		done, pte := c.done, c.pte
		// Release before the callback: done may start another access that
		// reuses the record.
		m.putMissCont(c)
		done(Result{OutcomeHW, pte.Get()})
	default:
		// Free page queue empty (or I/O error): raise the
		// exception after all.
		m.stats.HWBounced++
		c.ms.SetCause(trace.CauseBounced)
		ctx, as, va, write, done := c.ctx, c.as, c.va, c.write, c.done
		retried, t0, core, ms := c.retried, c.t0, c.core, c.ms
		m.putMissCont(c)
		m.raiseOS(ctx, as, va, write, true, done, retried, t0, core, ms)
	}
}

// prefetchDone installs a speculatively fetched page's translation (the
// HandleMissArg trampoline bound to a pooled prefetchCont). Failures are
// dropped: a prefetch must never cause an OS fault.
func prefetchDone(arg any, res smu.Result, _ pagetable.Entry) {
	c := arg.(*prefetchCont)
	m := c.m
	if res == smu.ResultOK {
		m.tlb.Insert(c.as.ASID, c.va.PageNumber(), c.pte)
	}
	m.putPrefetchCont(c)
}

//hwdp:coldpath OS exception path: conventional faults and HW-miss bounces, not the steady-state hardware miss path
func (m *MMU) raiseOS(ctx any, as *AddressSpace, va pagetable.VAddr, write, hwFailed bool, done func(Result), retried bool, t0 sim.Time, core int, ms *trace.Miss) {
	if m.osFault == nil || retried {
		ms.Finish(m.eng.Now())
		done(Result{Outcome: OutcomeBadAddr})
		return
	}
	m.stats.OSFaults++
	if ms == nil {
		// Cause is refined by the kernel once it has triaged the fault.
		ms = m.Tracer.Begin(core, uint64(va), trace.CauseUnknown, t0)
		ms.AddSpan(trace.LayerMMU, "tlb-miss+walk", t0, m.eng.Now())
	}
	m.osFault(ctx, as, va, write, hwFailed, ms, func() {
		// Re-walk once the kernel resolved the fault; a second failure is
		// fatal for the access (the kernel would deliver SIGSEGV). The
		// overall access is reported as an OS fault regardless of how the
		// retry hits.
		m.walk(ctx, as, va, write, func(r Result) {
			if r.Outcome == OutcomeWalkHit || r.Outcome == OutcomeHW {
				r.Outcome = OutcomeOSFault
			}
			ms.Finish(m.eng.Now())
			done(r)
		}, true, t0, ms)
	})
}
