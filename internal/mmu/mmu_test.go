package mmu

import (
	"testing"
	"testing/quick"

	"hwdp/internal/mem"
	"hwdp/internal/nvme"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
	"hwdp/internal/smu"
	"hwdp/internal/ssd"
	"hwdp/internal/trace"
)

func TestTLBBasics(t *testing.T) {
	tlb := NewTLB(4, 2)
	if tlb.Entries() != 8 {
		t.Fatal("entries")
	}
	tbl := pagetable.New()
	_, _, pte := tbl.Ensure(0x1000)
	pte.Set(pagetable.MakePresent(7, pagetable.Prot{}, true))
	if _, ok := tlb.Lookup(1, 1); ok {
		t.Fatal("hit on empty TLB")
	}
	tlb.Insert(1, 1, pte)
	got, ok := tlb.Lookup(1, 1)
	if !ok || got.Get().PFN() != 7 {
		t.Fatal("lookup after insert")
	}
	// Different ASID, same VPN: miss.
	if _, ok := tlb.Lookup(2, 1); ok {
		t.Fatal("ASID not respected")
	}
	tlb.Invalidate(1, 1)
	if _, ok := tlb.Lookup(1, 1); ok {
		t.Fatal("invalidate failed")
	}
	if tlb.Hits() != 1 || tlb.Misses() != 3 {
		t.Fatalf("hits=%d misses=%d", tlb.Hits(), tlb.Misses())
	}
}

func TestTLBEvictionWithinSet(t *testing.T) {
	tlb := NewTLB(1, 2) // one set, two ways
	tbl := pagetable.New()
	var refs []pagetable.EntryRef
	for i := 0; i < 3; i++ {
		_, _, pte := tbl.Ensure(pagetable.VAddr(0x1000 * (i + 1)))
		refs = append(refs, pte)
		tlb.Insert(0, uint64(i), pte)
	}
	// First insert evicted (round-robin).
	if _, ok := tlb.Lookup(0, 0); ok {
		t.Fatal("way not evicted")
	}
	if _, ok := tlb.Lookup(0, 2); !ok {
		t.Fatal("newest entry missing")
	}
}

func TestTLBInsertUpdatesExisting(t *testing.T) {
	tlb := NewTLB(2, 2)
	tbl := pagetable.New()
	_, _, a := tbl.Ensure(0x1000)
	_, _, b := tbl.Ensure(0x2000)
	tlb.Insert(0, 5, a)
	tlb.Insert(0, 5, b) // same key: update, not duplicate
	got, ok := tlb.Lookup(0, 5)
	if !ok || got != b {
		t.Fatal("update failed")
	}
}

func TestTLBInvalidateASID(t *testing.T) {
	tlb := NewTLB(8, 2)
	tbl := pagetable.New()
	_, _, pte := tbl.Ensure(0x1000)
	tlb.Insert(1, 1, pte)
	tlb.Insert(2, 2, pte)
	tlb.InvalidateASID(1)
	if _, ok := tlb.Lookup(1, 1); ok {
		t.Fatal("asid 1 survived")
	}
	if _, ok := tlb.Lookup(2, 2); !ok {
		t.Fatal("asid 2 dropped")
	}
}

func TestTLBBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewTLB(0, 1)
}

// rig wires MMU + SMU + device for access-path tests.
type rig struct {
	eng *sim.Engine
	m   *MMU
	s   *smu.SMU
	as  *AddressSpace
}

func newRig(t *testing.T, freeFrames int) *rig {
	t.Helper()
	eng := sim.NewEngine()
	prof := ssd.ZSSD
	prof.JitterFrac = 0
	dev := ssd.New(eng, prof, sim.NewRand(1), nil)
	dev.AddNamespace(nvme.Namespace{ID: 1, Blocks: 1 << 30})
	s := smu.New(eng, 0, 4096)
	qp := nvme.NewQueuePair(1, 64)
	s.AttachDevice(0, dev, qp, 1)
	if freeFrames > 0 {
		fr := make([]smu.FrameRecord, freeFrames)
		for i := range fr {
			fr[i] = smu.RecordFor(mem.FrameID(1000 + i))
		}
		s.Refill(fr)
	}
	m := New(eng)
	m.AttachSMU(s)
	return &rig{eng: eng, m: m, s: s, as: &AddressSpace{ASID: 1, Table: pagetable.New()}}
}

func TestAccessResidentPage(t *testing.T) {
	r := newRig(t, 8)
	r.as.Table.Set(0x1000, pagetable.MakePresent(5, pagetable.Prot{Write: true}, true))
	var res Result
	r.m.Access(r.as, 0x1000, false, nil, func(x Result) { res = x })
	r.eng.Run()
	if res.Outcome != OutcomeWalkHit {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if r.eng.Now() != r.m.WalkLatency {
		t.Fatalf("walk latency = %v", r.eng.Now())
	}
	// Second access: TLB hit, instantaneous.
	start := r.eng.Now()
	r.m.Access(r.as, 0x1234, false, nil, func(x Result) { res = x })
	r.eng.Run()
	if res.Outcome != OutcomeTLBHit {
		t.Fatalf("second access = %v", res.Outcome)
	}
	if r.eng.Now() != start {
		t.Fatal("TLB hit should cost no simulated time")
	}
}

func TestWriteSetsDirty(t *testing.T) {
	r := newRig(t, 8)
	r.as.Table.Set(0x1000, pagetable.MakePresent(5, pagetable.Prot{Write: true}, true))
	r.m.Access(r.as, 0x1000, true, nil, func(Result) {})
	r.eng.Run()
	e, _ := r.as.Table.Lookup(0x1000)
	if !e.Dirty() {
		t.Fatal("walk write did not set dirty")
	}
	// Dirty via TLB-hit write too.
	r.as.Table.Set(0x2000, pagetable.MakePresent(6, pagetable.Prot{Write: true}, true))
	r.m.Access(r.as, 0x2000, false, nil, func(Result) {})
	r.eng.Run()
	r.m.Access(r.as, 0x2000, true, nil, func(Result) {})
	r.eng.Run()
	e, _ = r.as.Table.Lookup(0x2000)
	if !e.Dirty() {
		t.Fatal("TLB-hit write did not set dirty")
	}
}

func TestHWMissPath(t *testing.T) {
	r := newRig(t, 8)
	blk := pagetable.BlockAddr{SID: 0, DeviceID: 0, LBA: 42}
	r.as.Table.Set(0x5000, pagetable.MakeLBA(blk, pagetable.Prot{User: true}))
	var res Result
	r.m.Access(r.as, 0x5000, false, nil, func(x Result) { res = x })
	r.eng.Run()
	if res.Outcome != OutcomeHW {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if res.PTE.State() != pagetable.StateResidentUnsynced {
		t.Fatalf("pte state = %v", res.PTE.State())
	}
	// Total latency = walk + SMU before + device + SMU after.
	want := r.m.WalkLatency + r.s.Timing().BeforeDevice() + ssd.ZSSD.Read4K + r.s.Timing().AfterDevice()
	if got := r.eng.Now(); got != want {
		t.Fatalf("latency = %v, want %v", got, want)
	}
	// Next access to the same page: TLB hit.
	r.m.Access(r.as, 0x5000, false, nil, func(x Result) { res = x })
	r.eng.Run()
	if res.Outcome != OutcomeTLBHit {
		t.Fatalf("after fill = %v", res.Outcome)
	}
	if st := r.m.Stats(); st.HWMisses != 1 || st.OSFaults != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOSFaultPath(t *testing.T) {
	r := newRig(t, 8)
	r.as.Table.Set(0x7000, pagetable.MakeSwap(9, pagetable.Prot{}))
	faults := 0
	r.m.SetOSFaultHandler(func(ctx any, as *AddressSpace, va pagetable.VAddr, write, hwFailed bool, ms *trace.Miss, done func()) {
		faults++
		if hwFailed {
			t.Fatal("conventional fault flagged as hw-failed")
		}
		// Kernel installs the mapping after its handling latency.
		r.eng.After(sim.Micro(20), func() {
			as.Table.Set(va.PageBase(), pagetable.MakePresent(77, pagetable.Prot{}, true))
			done()
		})
	})
	var res Result
	r.m.Access(r.as, 0x7000, false, nil, func(x Result) { res = x })
	r.eng.Run()
	if res.Outcome != OutcomeOSFault || faults != 1 {
		t.Fatalf("outcome = %v faults = %d", res.Outcome, faults)
	}
	if res.PTE.PFN() != 77 {
		t.Fatalf("pfn = %d", res.PTE.PFN())
	}
}

func TestHWMissBouncesToOSWhenNoFreePage(t *testing.T) {
	r := newRig(t, 0) // empty free page queue
	blk := pagetable.BlockAddr{SID: 0, DeviceID: 0, LBA: 3}
	r.as.Table.Set(0x9000, pagetable.MakeLBA(blk, pagetable.Prot{}))
	hwFailedSeen := false
	r.m.SetOSFaultHandler(func(ctx any, as *AddressSpace, va pagetable.VAddr, write, hwFailed bool, ms *trace.Miss, done func()) {
		hwFailedSeen = hwFailed
		r.eng.After(sim.Micro(15), func() {
			as.Table.Set(va.PageBase(), pagetable.MakePresent(55, pagetable.Prot{}, true))
			done()
		})
	})
	var res Result
	r.m.Access(r.as, 0x9000, false, nil, func(x Result) { res = x })
	r.eng.Run()
	if res.Outcome != OutcomeOSFault {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if !hwFailedSeen {
		t.Fatal("kernel not told the hardware path failed (it must refill the queue)")
	}
	if st := r.m.Stats(); st.HWBounced != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBadAddress(t *testing.T) {
	r := newRig(t, 8)
	var res Result
	r.m.Access(r.as, 0xDEAD000, false, nil, func(x Result) { res = x })
	r.eng.Run()
	if res.Outcome != OutcomeBadAddr {
		t.Fatalf("outcome = %v", res.Outcome)
	}
}

func TestStaleTLBEntryRewalks(t *testing.T) {
	r := newRig(t, 8)
	r.as.Table.Set(0x1000, pagetable.MakePresent(5, pagetable.Prot{}, true))
	r.m.Access(r.as, 0x1000, false, nil, func(Result) {})
	r.eng.Run()
	// Kernel evicts the page but forgets the shootdown (stale TLB entry).
	r.as.Table.Set(0x1000, pagetable.MakeLBA(pagetable.BlockAddr{LBA: 1}, pagetable.Prot{}))
	var res Result
	r.m.Access(r.as, 0x1000, false, nil, func(x Result) { res = x })
	r.eng.Run()
	if res.Outcome != OutcomeHW {
		t.Fatalf("stale entry outcome = %v", res.Outcome)
	}
}

func TestCoalescedAccessesOneDeviceRead(t *testing.T) {
	r := newRig(t, 8)
	blk := pagetable.BlockAddr{SID: 0, DeviceID: 0, LBA: 4}
	r.as.Table.Set(0x4000, pagetable.MakeLBA(blk, pagetable.Prot{}))
	n := 0
	for i := 0; i < 4; i++ {
		r.m.Access(r.as, 0x4000, false, nil, func(x Result) {
			if x.Outcome != OutcomeHW {
				t.Fatalf("outcome = %v", x.Outcome)
			}
			n++
		})
	}
	r.eng.Run()
	if n != 4 {
		t.Fatalf("completions = %d", n)
	}
	if st := r.s.Stats(); st.Handled != 1 || st.Coalesced != 3 {
		t.Fatalf("smu stats = %+v", st)
	}
}

func TestDoubleAttachSMUPanics(t *testing.T) {
	r := newRig(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	r.m.AttachSMU(smu.New(r.eng, 0, 8))
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{
		OutcomeTLBHit: "tlb-hit", OutcomeWalkHit: "walk-hit", OutcomeHW: "hw-miss",
		OutcomeOSFault: "os-fault", OutcomeBadAddr: "bad-addr", Outcome(9): "?",
	} {
		if o.String() != want {
			t.Errorf("%d = %q", o, o.String())
		}
	}
}

// Property: TLB lookups never return an entry for a different (asid, vpn).
func TestTLBCorrectnessProperty(t *testing.T) {
	tbl := pagetable.New()
	f := func(keys []uint16) bool {
		tlb := NewTLB(8, 2)
		inserted := map[[2]uint32]pagetable.EntryRef{}
		for i, k := range keys {
			asid := uint32(k % 3)
			vpn := uint64(k % 64)
			_, _, pte := tbl.Ensure(pagetable.VAddr(uint64(i+1) * 0x1000))
			tlb.Insert(asid, vpn, pte)
			inserted[[2]uint32{asid, uint32(vpn)}] = pte
		}
		for key, want := range inserted {
			got, ok := tlb.Lookup(key[0], uint64(key[1]))
			if ok && got != want {
				return false // wrong translation is never acceptable
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
