package mmu

import (
	"testing"

	"hwdp/internal/mem"
	"hwdp/internal/nvme"
	"hwdp/internal/pagetable"
	"hwdp/internal/sim"
	"hwdp/internal/smu"
	"hwdp/internal/ssd"
)

// TestAccessMissAllocationBudget pins the MMU side of the steady-state
// hardware miss path — TLB miss, pooled walk request, page-table walk,
// miss dispatch through the pooled continuation (HandleMissArg + the
// missDone trampoline), TLB fill and completion callback — at zero
// allocations, complementing the SMU-side pin in internal/smu. This is
// the regression guard for the de-closured walk path: reintroducing a
// per-miss closure in walk or prefetch trips it immediately.
func TestAccessMissAllocationBudget(t *testing.T) {
	eng := sim.NewEngine()
	prof := ssd.ZSSD
	prof.JitterFrac = 0
	dev := ssd.New(eng, prof, sim.NewRand(1), nil)
	dev.AddNamespace(nvme.Namespace{ID: 1, Blocks: 1 << 30})
	s := smu.New(eng, 0, 4096)
	qp := nvme.NewQueuePair(1, 64)
	s.AttachDevice(0, dev, qp, 1)
	m := New(eng)
	m.AttachSMU(s)
	as := &AddressSpace{ASID: 1, Table: pagetable.New()}

	recs := make([]smu.FrameRecord, 1<<12)
	for i := range recs {
		recs[i] = smu.RecordFor(mem.FrameID(1000 + i))
	}
	s.Refill(recs)

	// Pre-build the page-table structure for a rotating set of pages so
	// the measured runs never extend the radix tree.
	const pages = 64
	vas := make([]pagetable.VAddr, pages)
	ptes := make([]pagetable.EntryRef, pages)
	blks := make([]pagetable.BlockAddr, pages)
	for i := range vas {
		vas[i] = pagetable.VAddr(0x100000 + i*4096)
		_, _, pte := as.Table.Ensure(vas[i])
		ptes[i] = pte
		blks[i] = pagetable.BlockAddr{LBA: uint64(42 + i)}
	}
	done := false
	complete := func(Result) { done = true }
	iter := 0

	got := testing.AllocsPerRun(500, func() {
		if s.FreeQueue().Len()+s.FreeQueue().Buffered() < 8 {
			s.Refill(recs)
		}
		i := iter % pages
		iter++
		// Rearm the page: back to LBA state, out of the TLB, so every
		// iteration takes the full hardware miss path.
		ptes[i].Set(pagetable.MakeLBA(blks[i], pagetable.Prot{}))
		m.tlb.Invalidate(as.ASID, vas[i].PageNumber())
		done = false
		m.Access(as, vas[i], false, nil, complete)
		for !done && eng.Step() {
		}
		if !done {
			t.Fatal("miss never completed")
		}
	})
	if got != 0 {
		t.Fatalf("steady-state MMU miss path allocates %.1f objects/op, want 0", got)
	}
}
