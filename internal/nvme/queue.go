package nvme

import (
	"errors"
	"fmt"
)

// ErrQueueFull is returned when the submission queue cannot accept another
// entry.
var ErrQueueFull = errors.New("nvme: submission queue full")

// Namespace is a storage volume organized into logical blocks, typically
// managed by a single file system (paper, Section III-C footnote).
type Namespace struct {
	ID     uint32
	Blocks uint64 // capacity in logical blocks
}

// QueuePair is one NVMe I/O submission/completion queue pair. The paper's
// OS allocates a dedicated, isolated pair for the SMU, separate from the
// OS-managed pairs; both kinds are instances of this type.
//
// The host side writes commands at the SQ tail and rings the SQ tail
// doorbell; the device pops from the SQ head, and posts completions at the
// CQ tail with the current phase tag. The host consumes completions by
// comparing phase tags, then rings the CQ head doorbell.
type QueuePair struct {
	ID    uint16
	depth int

	sq     []Command
	sqTail int // host-owned
	sqHead int // device-owned

	cq      []Completion
	cqTail  int  // device-owned
	cqHead  int  // host-owned
	phase   bool // device's current phase tag
	hostPhs bool // phase the host expects next

	// Interrupts disabled is how the SMU's queue pair runs (completions are
	// detected by snooping the CQ memory write instead).
	InterruptsEnabled bool

	submitted uint64
	completed uint64
}

// NewQueuePair creates a queue pair with the given entry count (both
// queues). Depth must be at least 2 (one slot is lost to the full/empty
// distinction, as in a real ring).
func NewQueuePair(id uint16, depth int) *QueuePair {
	if depth < 2 {
		panic("nvme: queue depth must be >= 2")
	}
	return &QueuePair{
		ID:                id,
		depth:             depth,
		sq:                make([]Command, depth),
		cq:                make([]Completion, depth),
		phase:             true,
		hostPhs:           true,
		InterruptsEnabled: true,
	}
}

// Depth returns the configured queue depth.
func (q *QueuePair) Depth() int { return q.depth }

// SQFull reports whether the submission ring has no free slot.
func (q *QueuePair) SQFull() bool { return (q.sqTail+1)%q.depth == q.sqHead }

// SQOutstanding returns the number of commands submitted but not yet popped
// by the device.
func (q *QueuePair) SQOutstanding() int {
	return (q.sqTail - q.sqHead + q.depth) % q.depth
}

// Submit writes a command at the SQ tail and advances it — the host's
// "single 64 bytes cacheline write to memory". The caller must then ring
// the SQ doorbell on the controller for the device to notice.
func (q *QueuePair) Submit(c Command) error {
	if q.SQFull() {
		//hwdp:ignore hotalloc error construction on the queue-full return only; the SMU sizes its isolated queue to PMSHR depth and panics on this error
		return fmt.Errorf("%w: qid %d", ErrQueueFull, q.ID)
	}
	// Encode/decode through the wire format so tests exercise it.
	wire := c.Encode()
	dec, err := Decode(wire)
	if err != nil {
		return err
	}
	// The trace context is simulator metadata, not wire data: carry it
	// across the round trip explicitly.
	dec.Trace = c.Trace
	q.sq[q.sqTail] = dec
	q.sqTail = (q.sqTail + 1) % q.depth
	q.submitted++
	return nil
}

// PopSQ removes the command at the SQ head (device side). ok is false when
// the queue is empty.
func (q *QueuePair) PopSQ() (Command, bool) {
	if q.sqHead == q.sqTail {
		return Command{}, false
	}
	c := q.sq[q.sqHead]
	q.sqHead = (q.sqHead + 1) % q.depth
	return c, true
}

// PostCompletion appends a completion entry with the device's phase tag
// (device side). The device flips its phase each time the CQ wraps.
func (q *QueuePair) PostCompletion(cp Completion) {
	cp.SQID = q.ID
	cp.SQHead = uint16(q.sqHead)
	cp.Phase = q.phase
	q.cq[q.cqTail] = cp
	q.cqTail = (q.cqTail + 1) % q.depth
	if q.cqTail == 0 {
		q.phase = !q.phase
	}
	q.completed++
}

// PollCQ returns the completion at the CQ head if its phase tag matches the
// host's expected phase (host side). It does not consume the entry.
func (q *QueuePair) PollCQ() (Completion, bool) {
	cp := q.cq[q.cqHead]
	if cp.Phase != q.hostPhs {
		return Completion{}, false
	}
	return cp, true
}

// ConsumeCQ advances the CQ head past one polled entry — the paper's
// completion unit "progressing NVMe CQ pointer, ringing CQ doorbell,
// updating the CQ phase register if necessary".
func (q *QueuePair) ConsumeCQ() {
	q.cqHead = (q.cqHead + 1) % q.depth
	if q.cqHead == 0 {
		q.hostPhs = !q.hostPhs
	}
}

// Submitted returns the cumulative submission count.
func (q *QueuePair) Submitted() uint64 { return q.submitted }

// Completed returns the cumulative completion count.
func (q *QueuePair) Completed() uint64 { return q.completed }
