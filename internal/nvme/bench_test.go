package nvme

import "testing"

func BenchmarkCommandEncodeDecode(b *testing.B) {
	c := Command{Opcode: OpRead, CID: 7, NSID: 1, PRP1: 0x1000, SLBA: 99}
	for i := 0; i < b.N; i++ {
		wire := c.Encode()
		if _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueuePairRoundTrip(b *testing.B) {
	q := NewQueuePair(1, 64)
	for i := 0; i < b.N; i++ {
		_ = q.Submit(Command{Opcode: OpRead, CID: uint16(i)})
		c, _ := q.PopSQ()
		q.PostCompletion(Completion{CID: c.CID})
		if _, ok := q.PollCQ(); ok {
			q.ConsumeCQ()
		}
	}
}

// TestQueuePairRoundTripDelivery asserts the correctness of the loop the
// benchmark above measures: a submitted command pops back intact and its
// completion is observed exactly once with the matching CID.
func TestQueuePairRoundTripDelivery(t *testing.T) {
	q := NewQueuePair(1, 64)
	if err := q.Submit(Command{Opcode: OpRead, CID: 77, SLBA: 123}); err != nil {
		t.Fatalf("submit failed on empty queue: %v", err)
	}
	c, ok := q.PopSQ()
	if !ok || c.CID != 77 || c.SLBA != 123 {
		t.Fatalf("popped %+v ok=%v, want CID 77 SLBA 123", c, ok)
	}
	q.PostCompletion(Completion{CID: c.CID, Status: StatusSuccess})
	cp, ok := q.PollCQ()
	if !ok || cp.CID != 77 || !cp.OK() {
		t.Fatalf("completion %+v ok=%v", cp, ok)
	}
	q.ConsumeCQ()
	if _, ok := q.PollCQ(); ok {
		t.Fatal("completion delivered twice")
	}
}
