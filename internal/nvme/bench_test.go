package nvme

import "testing"

func BenchmarkCommandEncodeDecode(b *testing.B) {
	c := Command{Opcode: OpRead, CID: 7, NSID: 1, PRP1: 0x1000, SLBA: 99}
	for i := 0; i < b.N; i++ {
		wire := c.Encode()
		if _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueuePairRoundTrip(b *testing.B) {
	q := NewQueuePair(1, 64)
	for i := 0; i < b.N; i++ {
		_ = q.Submit(Command{Opcode: OpRead, CID: uint16(i)})
		c, _ := q.PopSQ()
		q.PostCompletion(Completion{CID: c.CID})
		if _, ok := q.PollCQ(); ok {
			q.ConsumeCQ()
		}
	}
}
